#!/usr/bin/env python3
"""Fail if kernel benchmark rows regressed vs the committed baseline.

Usage: check_bench_regression.py bench/BASELINE_perf.json BENCH_perf.json

Absolute ns/call is machine-dependent, so comparing raw numbers against a
baseline measured elsewhere would fail on any runner change.  Instead each
kernel row's new/old ratio is normalized by the median ratio across all
kernel rows (the machine-speed factor); a row whose normalized ratio
exceeds the threshold got slower relative to its peers — a real, local
regression rather than a slow runner.
"""
import json
import sys

THRESHOLD = 1.25  # >25% speed-normalized regression fails the job
PREFIX = "tomo kernel/"


SPEEDUP_FLOOR = 0.8  # -j4 sim speedup may not drop below 80% of baseline


def load(path):
    with open(path) as f:
        return json.load(f)


def kernel_rows(doc):
    return {
        b["name"]: b["ns_per_call"]
        for b in doc["benchmarks"]
        if b["name"].startswith(PREFIX) and b["ns_per_call"]
    }


def check_sim_speedup(base_doc, new_doc):
    """Compare sim_run_paper.speedup_j4, but only on like hardware.

    The -j4/-j1 ratio is a property of the core count, not of the code:
    a 2-core runner cannot reproduce a 4-domain speedup measured on 8
    cores.  Skip the comparison unless both files record a host
    cpu_cores and they match (older baselines predate the host block).
    """
    base_sim = base_doc.get("sim_run_paper")
    new_sim = new_doc.get("sim_run_paper")
    if not base_sim or not new_sim:
        print("sim speedup gate: skipped (sim_run_paper missing)")
        return True
    base_cores = (base_doc.get("host") or {}).get("cpu_cores")
    new_cores = (new_doc.get("host") or {}).get("cpu_cores")
    if base_cores is None or new_cores is None:
        print("sim speedup gate: skipped (host cpu_cores not recorded)")
        return True
    if base_cores != new_cores:
        print(
            "sim speedup gate: skipped (cpu_cores differ: baseline %d, new %d)"
            % (base_cores, new_cores)
        )
        return True
    old, new = base_sim.get("speedup_j4"), new_sim.get("speedup_j4")
    if not old or not new:
        print("sim speedup gate: skipped (speedup_j4 missing)")
        return True
    ok = new >= old * SPEEDUP_FLOOR
    print(
        "sim speedup gate: speedup_j4 %.2fx vs baseline %.2fx (floor %.2fx)%s"
        % (new, old, old * SPEEDUP_FLOOR, "" if ok else "  REGRESSED")
    )
    return ok


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip())
        return 2
    base_path, new_path = sys.argv[1], sys.argv[2]
    base_doc, new_doc = load(base_path), load(new_path)
    base, new = kernel_rows(base_doc), kernel_rows(new_doc)
    missing = sorted(set(base) - set(new))
    if missing:
        # a kernel row silently dropped from the bench dodges the gate
        print("kernel rows missing from %s:" % new_path)
        for name in missing:
            print("  " + name)
        return 1
    common = sorted(set(base) & set(new))
    if not common:
        print("no common kernel rows between %s and %s" % (base_path, new_path))
        return 1
    ratios = {name: new[name] / base[name] for name in common}
    speed = sorted(ratios.values())[len(ratios) // 2]
    print("machine-speed factor (median new/old): %.3f" % speed)
    print("%-50s%12s%12s%12s" % ("kernel row", "old ns", "new ns", "norm"))
    failed = []
    for name in common:
        norm = ratios[name] / speed
        flag = "  REGRESSED" if norm > THRESHOLD else ""
        print("%-50s%12.0f%12.0f%12.2f%s" % (name, base[name], new[name], norm, flag))
        if norm > THRESHOLD:
            failed.append(name)
    print()
    sim_ok = check_sim_speedup(base_doc, new_doc)
    if failed or not sim_ok:
        print()
        if failed:
            print(
                "%d kernel row(s) regressed >%d%% vs %s (speed-normalized)"
                % (len(failed), round((THRESHOLD - 1) * 100), base_path)
            )
        if not sim_ok:
            print("sim_run_paper.speedup_j4 regressed vs %s" % base_path)
        return 1
    print()
    print(
        "all kernel rows within %d%% of baseline (speed-normalized)"
        % round((THRESHOLD - 1) * 100)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
