#!/usr/bin/env python3
"""Fail if kernel benchmark rows regressed vs the committed baseline.

Usage: check_bench_regression.py bench/BASELINE_perf.json BENCH_perf.json

Absolute ns/call is machine-dependent, so comparing raw numbers against a
baseline measured elsewhere would fail on any runner change.  Instead each
kernel row's new/old ratio is normalized by the median ratio across all
kernel rows (the machine-speed factor); a row whose normalized ratio
exceeds the threshold got slower relative to its peers — a real, local
regression rather than a slow runner.
"""
import json
import sys

THRESHOLD = 1.25  # >25% speed-normalized regression fails the job
PREFIX = "tomo kernel/"


def kernel_rows(path):
    with open(path) as f:
        doc = json.load(f)
    return {
        b["name"]: b["ns_per_call"]
        for b in doc["benchmarks"]
        if b["name"].startswith(PREFIX) and b["ns_per_call"]
    }


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip())
        return 2
    base_path, new_path = sys.argv[1], sys.argv[2]
    base, new = kernel_rows(base_path), kernel_rows(new_path)
    missing = sorted(set(base) - set(new))
    if missing:
        # a kernel row silently dropped from the bench dodges the gate
        print("kernel rows missing from %s:" % new_path)
        for name in missing:
            print("  " + name)
        return 1
    common = sorted(set(base) & set(new))
    if not common:
        print("no common kernel rows between %s and %s" % (base_path, new_path))
        return 1
    ratios = {name: new[name] / base[name] for name in common}
    speed = sorted(ratios.values())[len(ratios) // 2]
    print("machine-speed factor (median new/old): %.3f" % speed)
    print("%-50s%12s%12s%12s" % ("kernel row", "old ns", "new ns", "norm"))
    failed = []
    for name in common:
        norm = ratios[name] / speed
        flag = "  REGRESSED" if norm > THRESHOLD else ""
        print("%-50s%12.0f%12.0f%12.2f%s" % (name, base[name], new[name], norm, flag))
        if norm > THRESHOLD:
            failed.append(name)
    if failed:
        print()
        print(
            "%d kernel row(s) regressed >%d%% vs %s (speed-normalized)"
            % (len(failed), round((THRESHOLD - 1) * 100), base_path)
        )
        return 1
    print()
    print(
        "all kernel rows within %d%% of baseline (speed-normalized)"
        % round((THRESHOLD - 1) * 100)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
