module Bitset = Tomo_util.Bitset

let interval_statuses (result : Run.result) ~interval =
  if interval < 0 || interval >= result.Run.t_intervals then
    invalid_arg "Trace_io.interval_statuses: interval out of range";
  let n_paths = Array.length result.Run.path_good in
  let good = Bitset.create n_paths in
  Array.iteri
    (fun p row -> if Bitset.get row interval then Bitset.set good p)
    result.Run.path_good;
  good

let write ppf (result : Run.result) =
  let n_paths = Array.length result.Run.path_good in
  Format.fprintf ppf "tomo-trace v1@.";
  Format.fprintf ppf "paths %d@." n_paths;
  for t = 0 to result.Run.t_intervals - 1 do
    let good = interval_statuses result ~interval:t in
    let buf = Bytes.make n_paths '0' in
    Bitset.iter (fun p -> Bytes.set buf p '1') good;
    Format.fprintf ppf "tick %d %s@." t (Bytes.to_string buf)
  done

let to_string result =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  write ppf result;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let save path result =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let ppf = Format.formatter_of_out_channel oc in
      write ppf result;
      Format.pp_print_flush ppf ())
