(** Experiment execution: simulate [T] intervals of congestion and
    measurement over an overlay, keeping both the hidden truth (per-
    interval link states, per-epoch factor probabilities) and the
    observable data (per-interval path statuses).

    The tomography algorithms only ever see the observable part; the
    truth is for scoring. *)

type measurement =
  | Ideal
      (** a path is congested iff one of its links is (Separability +
          perfect E2E Monitoring — the paper's experimental setting) *)
  | Probes of { per_path : int; f : float }
      (** packet-level probing with the loss model of {!Probe} *)

type dynamics =
  | Stationary
  | Redraw_every of int
      (** the paper's "No Stationarity": re-draw the congestion
          probabilities of the congestible links every [k] intervals *)

type epoch = {
  length : int;
  probs : float array;
  model : Factor_model.t;
      (** the factor model those probabilities induce, built once at
          simulation time and reused by the [true_*] accessors *)
}

type result = {
  overlay : Tomo_topology.Overlay.t;
  t_intervals : int;
  link_congested : Tomo_util.Bitset.t array;
      (** per interval: bit [e] set iff link [e] congested — ground
          truth for inference scoring *)
  path_good : Tomo_util.Bitset.t array;
      (** per path: bit [t] set iff the path was measured good in
          interval [t] — the observable input to tomography *)
  epochs : epoch list;  (** factor probabilities per stretch of time *)
}

(** [run ~scenario ~dynamics ~measurement ~t_intervals ~rng] simulates the
    experiment.  The per-epoch probability draws run sequentially, then
    the intervals fan out over the default {!Tomo_par.Pool}: every
    interval derives private congestion-state and loss streams from its
    index ([Rng.split_int]), so the result is bit-identical whatever the
    pool size or schedule ([-j1 == -jN]).  @raise Invalid_argument if
    [t_intervals <= 0] or [Redraw_every k] with [k <= 0]. *)
val run :
  scenario:Scenario.t ->
  dynamics:dynamics ->
  measurement:measurement ->
  t_intervals:int ->
  rng:Tomo_util.Rng.t ->
  result

(** Ground truth over the whole experiment (time-averaged over epochs
    when dynamics are non-stationary), in closed form from the factor
    probabilities. *)

val true_link_marginal : result -> int -> float
val true_good_prob : result -> int array -> float
val true_congestion_prob : result -> int array -> float

(** [true_congested_links result ~interval] is the list of links actually
    congested in an interval. *)
val true_congested_links : result -> interval:int -> int list
