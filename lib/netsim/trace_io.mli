(** Replayable measurement traces: the observable half of a simulation
    run serialized one measurement interval per line, in arrival order.

    This is the wire format the streaming engine's replay source
    ({!Tomo_stream.Source}) consumes — line-oriented so a trace can be
    replayed from a file, piped through stdin, or later fed from a
    socket without framing changes:

    {v
    tomo-trace v1
    paths <n>
    tick <t> <status-string>       (one per interval, in time order)
    v}

    The status string has one character per {e path}, ['1'] = good,
    ['0'] = congested — the transpose of {!Tomo.Observations_io}'s
    batch format, because a streaming consumer receives whole intervals,
    not whole path histories. *)

(** [interval_statuses result ~interval] is one interval's column of path
    statuses (bit [p] set iff path [p] was good) — the batch a streaming
    source would deliver for that tick.
    @raise Invalid_argument if the interval is out of range. *)
val interval_statuses :
  Run.result -> interval:int -> Tomo_util.Bitset.t

val write : Format.formatter -> Run.result -> unit
val to_string : Run.result -> string
val save : string -> Run.result -> unit
