module Overlay = Tomo_topology.Overlay
module Bitset = Tomo_util.Bitset
module Rng = Tomo_util.Rng
module Obs = Tomo_obs
module Pool = Tomo_par.Pool

let c_intervals = Obs.Metrics.counter "sim_intervals"
let c_epochs = Obs.Metrics.counter "sim_epochs"
let c_probe_packets = Obs.Metrics.counter "sim_probe_packets"

type measurement = Ideal | Probes of { per_path : int; f : float }
type dynamics = Stationary | Redraw_every of int
type epoch = { length : int; probs : float array; model : Factor_model.t }

type result = {
  overlay : Overlay.t;
  t_intervals : int;
  link_congested : Bitset.t array;
  path_good : Bitset.t array;
  epochs : epoch list;
}

(* Simulate one interval in isolation.  All randomness comes from child
   generators derived by [Rng.split_int] from the interval index, so the
   interval can run on any domain, in any order, and produce exactly the
   same bits — the invariant behind -j1 == -jN. *)
let simulate_interval ~ov ~n_links ~n_paths ~measurement ~state_rng ~loss_rng
    ~model t =
  let st_rng = Rng.split_int state_rng t in
  let congested = Factor_model.draw_interval model st_rng in
  let good = Bitset.create n_paths in
  (match measurement with
  | Ideal ->
      Array.iter
        (fun (p : Overlay.path) ->
          let is_congested =
            Array.exists (Bitset.get congested) p.Overlay.links
          in
          if not is_congested then Bitset.set good p.Overlay.id)
        ov.Overlay.paths
  | Probes { per_path; f } ->
      Obs.Metrics.incr ~by:(per_path * n_paths) c_probe_packets;
      let ls_rng = Rng.split_int loss_rng t in
      let losses =
        Array.init n_links (fun e ->
            Probe.loss_rate ls_rng ~congested:(Bitset.get congested e))
      in
      Array.iter
        (fun (p : Overlay.path) ->
          let congested_measured =
            Probe.measure_path ls_rng ~losses ~links:p.Overlay.links
              ~n_probes:per_path ~f
          in
          if not congested_measured then Bitset.set good p.Overlay.id)
        ov.Overlay.paths);
  (congested, good)

let run ~scenario ~dynamics ~measurement ~t_intervals ~rng =
  if t_intervals <= 0 then invalid_arg "Run.run: no intervals";
  Obs.Trace.with_span "netsim.run" @@ fun () ->
  if Obs.Trace.enabled () then
    Obs.Trace.add_attr "t_intervals" (string_of_int t_intervals);
  let epoch_len =
    match dynamics with
    | Stationary -> t_intervals
    | Redraw_every k ->
        if k <= 0 then invalid_arg "Run.run: non-positive epoch";
        k
  in
  let ov = Scenario.overlay scenario in
  let n_links = Overlay.n_links ov and n_paths = Overlay.n_paths ov in
  let prob_rng = Rng.split rng ~label:"probs" in
  let state_rng = Rng.split rng ~label:"states" in
  let loss_rng = Rng.split rng ~label:"loss" in
  (* Sequential prologue: the per-epoch probability draws consume
     [prob_rng] in epoch order (exactly as the interleaved loop used
     to), and each epoch's factor model is built once here — both so the
     interval fan-out below needs no shared mutable state and so the
     [true_*] accessors can reuse the models instead of rebuilding one
     per epoch per query. *)
  let n_epochs = (t_intervals + epoch_len - 1) / epoch_len in
  let epochs =
    let rev = ref [] in
    for k = 0 to n_epochs - 1 do
      Obs.Metrics.incr c_epochs;
      let probs = Scenario.draw_probs scenario prob_rng in
      let length = min epoch_len (t_intervals - (k * epoch_len)) in
      rev := { length; probs; model = Factor_model.make ov probs } :: !rev
    done;
    List.rev !rev
  in
  let epoch_models = Array.of_list (List.map (fun e -> e.model) epochs) in
  let columns =
    Obs.Trace.with_span "netsim.simulate" (fun () ->
        Obs.Metrics.incr ~by:t_intervals c_intervals;
        (* One task per interval over the domain pool; each writes only
           its own slot of the result array, and its good-path column is
           a private bitset, so no two domains ever share a word. *)
        Pool.parallel_map
          (fun t ->
            simulate_interval ~ov ~n_links ~n_paths ~measurement ~state_rng
              ~loss_rng
              ~model:epoch_models.(t / epoch_len)
              t)
          (Array.init t_intervals (fun t -> t)))
  in
  (* Transpose the per-interval good columns into the per-path bit rows
     the estimators consume — sequentially, after the fan-out, so the
     packed words of each row are written by one domain only. *)
  let link_congested = Array.map fst columns in
  let path_good = Array.init n_paths (fun _ -> Bitset.create t_intervals) in
  Array.iteri
    (fun t (_, good) ->
      (* [iter] walks set bits word-by-word; [p] comes straight from the
         column so the per-write bounds check is redundant. *)
      Bitset.iter (fun p -> Bitset.unsafe_set path_good.(p) t) good)
    columns;
  { overlay = ov; t_intervals; link_congested; path_good; epochs }

(* Time-weighted average of a per-epoch quantity, over the factor
   models cached at simulation time (rebuilding them here cost
   O(epochs) [Factor_model.make] validations per query — per link, per
   subset — which dominated peer-report scoring). *)
let epoch_average result f =
  let total = float_of_int result.t_intervals in
  List.fold_left
    (fun acc e -> acc +. (float_of_int e.length /. total *. f e.model))
    0.0 result.epochs

let true_link_marginal result e =
  epoch_average result (fun m -> Factor_model.link_marginal m e)

let true_good_prob result s =
  epoch_average result (fun m -> Factor_model.good_prob m s)

let true_congestion_prob result s =
  epoch_average result (fun m -> Factor_model.congestion_prob m s)

let true_congested_links result ~interval =
  if interval < 0 || interval >= result.t_intervals then
    invalid_arg "Run.true_congested_links: interval out of range";
  Bitset.to_list result.link_congested.(interval)
