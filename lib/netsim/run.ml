module Overlay = Tomo_topology.Overlay
module Bitset = Tomo_util.Bitset
module Rng = Tomo_util.Rng
module Obs = Tomo_obs

let c_intervals = Obs.Metrics.counter "sim_intervals"
let c_epochs = Obs.Metrics.counter "sim_epochs"
let c_probe_packets = Obs.Metrics.counter "sim_probe_packets"

type measurement = Ideal | Probes of { per_path : int; f : float }
type dynamics = Stationary | Redraw_every of int
type epoch = { length : int; probs : float array }

type result = {
  overlay : Overlay.t;
  t_intervals : int;
  link_congested : Bitset.t array;
  path_good : Bitset.t array;
  epochs : epoch list;
}

let run ~scenario ~dynamics ~measurement ~t_intervals ~rng =
  if t_intervals <= 0 then invalid_arg "Run.run: no intervals";
  Obs.Trace.with_span "netsim.run" @@ fun () ->
  if Obs.Trace.enabled () then
    Obs.Trace.add_attr "t_intervals" (string_of_int t_intervals);
  let epoch_len =
    match dynamics with
    | Stationary -> t_intervals
    | Redraw_every k ->
        if k <= 0 then invalid_arg "Run.run: non-positive epoch";
        k
  in
  let ov = Scenario.overlay scenario in
  let n_links = Overlay.n_links ov and n_paths = Overlay.n_paths ov in
  let prob_rng = Rng.split rng ~label:"probs" in
  let state_rng = Rng.split rng ~label:"states" in
  let loss_rng = Rng.split rng ~label:"loss" in
  let link_congested = Array.init t_intervals (fun _ -> Bitset.create n_links) in
  let path_good = Array.init n_paths (fun _ -> Bitset.create t_intervals) in
  let epochs = ref [] in
  let model = ref None in
  Obs.Trace.with_span "netsim.simulate" (fun () ->
  Obs.Metrics.incr ~by:t_intervals c_intervals;
  for t = 0 to t_intervals - 1 do
    if t mod epoch_len = 0 then begin
      Obs.Metrics.incr c_epochs;
      let probs = Scenario.draw_probs scenario prob_rng in
      let len = min epoch_len (t_intervals - t) in
      epochs := { length = len; probs } :: !epochs;
      model := Some (Factor_model.make ov probs)
    end;
    let m = Option.get !model in
    let congested = Factor_model.draw_interval m state_rng in
    link_congested.(t) <- congested;
    (match measurement with
    | Ideal ->
        Array.iter
          (fun (p : Overlay.path) ->
            let is_congested =
              Array.exists (Bitset.get congested) p.Overlay.links
            in
            if not is_congested then Bitset.set path_good.(p.Overlay.id) t)
          ov.Overlay.paths
    | Probes { per_path; f } ->
        Obs.Metrics.incr ~by:(per_path * n_paths) c_probe_packets;
        let losses =
          Array.init n_links (fun e ->
              Probe.loss_rate loss_rng ~congested:(Bitset.get congested e))
        in
        Array.iter
          (fun (p : Overlay.path) ->
            let congested_measured =
              Probe.measure_path loss_rng ~losses ~links:p.Overlay.links
                ~n_probes:per_path ~f
            in
            if not congested_measured then
              Bitset.set path_good.(p.Overlay.id) t)
          ov.Overlay.paths)
  done);
  {
    overlay = ov;
    t_intervals;
    link_congested;
    path_good;
    epochs = List.rev !epochs;
  }

(* Time-weighted average of a per-epoch quantity. *)
let epoch_average result f =
  let total = float_of_int result.t_intervals in
  List.fold_left
    (fun acc e ->
      let m = Factor_model.make result.overlay e.probs in
      acc +. (float_of_int e.length /. total *. f m))
    0.0 result.epochs

let true_link_marginal result e =
  epoch_average result (fun m -> Factor_model.link_marginal m e)

let true_good_prob result s =
  epoch_average result (fun m -> Factor_model.good_prob m s)

let true_congestion_prob result s =
  epoch_average result (fun m -> Factor_model.congestion_prob m s)

let true_congested_links result ~interval =
  if interval < 0 || interval >= result.t_intervals then
    invalid_arg "Run.true_congested_links: interval out of range";
  Bitset.to_list result.link_congested.(interval)
