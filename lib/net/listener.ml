module Obs = Tomo_obs

type t = {
  fd : Unix.file_descr;
  listen : Obs.Exporter.listen;
  on_accept : Unix.file_descr -> unit;
  mutable stopped : bool;
  mutable thread : Thread.t option;
}

let listen t = t.listen

let rec accept_loop t =
  match Unix.accept t.fd with
  | client, _ ->
      (try t.on_accept client
       with e ->
         Obs.Sink.record_error
           ("ingest accept failed: " ^ Printexc.to_string e);
         (try Unix.close client with Unix.Unix_error _ -> ()));
      if not t.stopped then accept_loop t
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      if not t.stopped then accept_loop t
  | exception Unix.Unix_error _ ->
      (* listening socket closed by [stop], or torn down at exit *)
      ()

let start listen ~on_accept =
  let fd = Obs.Exporter.bind listen in
  let t = { fd; listen; on_accept; stopped = false; thread = None } in
  Obs.Events.emit "ingest_listening"
    [ ("addr", Obs.Exporter.listen_to_string listen) ];
  t.thread <- Some (Thread.create accept_loop t);
  t

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close t.fd with Unix.Unix_error _ -> ());
    (match t.listen with
    | Obs.Exporter.Unix_sock path -> (
        try Unix.unlink path with Unix.Unix_error _ -> ())
    | Obs.Exporter.Tcp _ -> ());
    (match t.thread with Some th -> Thread.join th | None -> ());
    Obs.Events.emit "ingest_stopped"
      [ ("addr", Obs.Exporter.listen_to_string t.listen) ]
  end
