module Bitset = Tomo_util.Bitset
module Obs = Tomo_obs
module Stream = Tomo_stream

let c_frames = Obs.Metrics.counter "net_frames_total"
let c_bytes = Obs.Metrics.counter "net_bytes_total"
let g_peers = Obs.Metrics.gauge "net_peers_active"
let h_queue = Obs.Metrics.histogram "net_queue_depth"

type policy = Block | Drop_peer

let policy_of_string = function
  | "block" -> Ok Block
  | "drop" -> Ok Drop_peer
  | s -> Error (Printf.sprintf "unknown ingest policy %S (block|drop)" s)

let policy_to_string = function Block -> "block" | Drop_peer -> "drop"

(* Raised inside a reader thread to drop its peer with a reason;
   [Quit] is the silent exit used when the hub is shutting down. *)
exception Peer_error of string
exception Quit

type peer = {
  fd : Unix.file_descr;
  queue : Bitset.t Queue.t;
  qm : Mutex.t;
  q_not_full : Condition.t;
  mutable queued : int;
  mutable name : string;  (** [""] until the peer registered *)
  mutable engine : Stream.Engine.t option;
  mutable to_skip : int;  (** re-sent ticks already in the snapshot *)
  mutable eof : bool;  (** stream ended cleanly *)
  mutable dropped : string option;
  mutable last_estimate : Stream.Engine.estimate option;
  mutable ticks : int;  (** ticks ingested from this connection *)
  mutable finalized : bool;
  mutable closed : bool;
  mutable thread : Thread.t option;
}

type t = {
  model : Tomo.Model.t;
  window : int;
  select_config : Tomo.Algorithm1.config option;
  pool : Tomo_par.Pool.t option;
  queue_capacity : int;
  policy : policy;
  idle_timeout : float;
  snapshot_dir : string option;
  report_dir : string option;
  snapshot_every : int;
  bounded : bool;  (** was [max_ticks] given? *)
  budget : int Atomic.t;  (** remaining global tick budget *)
  stop : bool Atomic.t;
  m : Mutex.t;  (** guards everything below (never held with a [qm]) *)
  wake : Condition.t;  (** pokes the drain loop *)
  mutable peers : peer list;
  mutable next_anon : int;
  mutable running : bool;
  mutable s_frames : int;
  mutable s_bytes : int;
  mutable s_connected : int;
  mutable s_dropped : int;
  mutable s_ticks : int;
  mutable s_reports : int;
  mutable ticker : Thread.t option;
}

type stats = {
  frames_total : int;
  bytes_total : int;
  peers_connected : int;
  peers_active : int;
  peers_dropped : int;
  ticks_ingested : int;
  reports_written : int;
}

let create ?select_config ?pool ?(queue_capacity = 64) ?(policy = Block)
    ?(idle_timeout = 0.) ?(snapshot_dir : string option)
    ?(report_dir : string option) ?(snapshot_every = 1) ?max_ticks ~model
    ~window () =
  if queue_capacity <= 0 then
    invalid_arg "Tomo_net.Hub.create: queue_capacity must be positive";
  if snapshot_every <= 0 then
    invalid_arg "Tomo_net.Hub.create: snapshot_every must be positive";
  {
    model;
    window;
    select_config;
    pool;
    queue_capacity;
    policy;
    idle_timeout;
    snapshot_dir;
    report_dir;
    snapshot_every;
    bounded = max_ticks <> None;
    budget = Atomic.make (Option.value ~default:max_int max_ticks);
    stop = Atomic.make false;
    m = Mutex.create ();
    wake = Condition.create ();
    peers = [];
    next_anon = 0;
    running = false;
    s_frames = 0;
    s_bytes = 0;
    s_connected = 0;
    s_dropped = 0;
    s_ticks = 0;
    s_reports = 0;
    ticker = None;
  }

let request_stop t = Atomic.set t.stop true
let stopping t = Atomic.get t.stop

let is_active p = Option.is_some p.engine && not p.finalized

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let refresh_peer_gauge_locked t =
  let active = List.length (List.filter is_active t.peers) in
  Obs.Metrics.set_gauge g_peers (float_of_int active)

let wake_drain t =
  Mutex.lock t.m;
  Condition.broadcast t.wake;
  Mutex.unlock t.m

let display_name p = if p.name = "" then "<unregistered>" else p.name

(* Peer names become snapshot/report filenames, so anything outside
   [A-Za-z0-9_.-] is flattened before it can traverse paths. *)
let sanitize_name s =
  let s = if String.length s > 64 then String.sub s 0 64 else s in
  let s =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '-' -> c
        | _ -> '_')
      s
  in
  if s = "" || s = "." || s = ".." then "anon" else s

let close_peer t p =
  locked t (fun () ->
      if not p.closed then begin
        p.closed <- true;
        (try Unix.shutdown p.fd Unix.SHUTDOWN_ALL
         with Unix.Unix_error _ -> ());
        try Unix.close p.fd with Unix.Unix_error _ -> ()
      end)

(* ------------------------------------------------------------------ *)
(* Registration (first frame): name, snapshot restore, engine           *)
(* ------------------------------------------------------------------ *)

let register t p ~announced =
  let name, restored =
    locked t (fun () ->
        let name =
          match announced with
          | Some n -> sanitize_name n
          | None ->
              t.next_anon <- t.next_anon + 1;
              Printf.sprintf "peer-%d" t.next_anon
        in
        if List.exists (fun q -> q != p && q.name = name) t.peers then
          raise (Peer_error (Printf.sprintf "duplicate peer name %S" name));
        let fresh () =
          ( Stream.Engine.create ?select_config:t.select_config
              ~model:t.model ~window:t.window (),
            0 )
        in
        let engine, skip =
          match t.snapshot_dir with
          | Some dir ->
              let path = Filename.concat dir (name ^ ".snap") in
              if Sys.file_exists path then (
                try
                  let snap = Stream.Snapshot.load path in
                  ( Stream.Engine.of_snapshot ?select_config:t.select_config
                      ~model:t.model snap,
                    snap.Stream.Snapshot.ticks )
                with Failure msg | Invalid_argument msg ->
                  raise
                    (Peer_error
                       (Printf.sprintf "snapshot restore failed: %s" msg)))
              else fresh ()
          | None -> fresh ()
        in
        p.name <- name;
        p.engine <- Some engine;
        p.to_skip <- skip;
        refresh_peer_gauge_locked t;
        (name, skip))
  in
  Obs.Events.emit "peer_connect"
    [ ("peer", name); ("restored_ticks", string_of_int restored) ]

(* ------------------------------------------------------------------ *)
(* Reader thread: blocking read → frame decode → record parse → queue  *)
(* ------------------------------------------------------------------ *)

let enqueue t p good =
  Mutex.lock p.qm;
  let accepted =
    match t.policy with
    | Block ->
        while
          p.queued >= t.queue_capacity
          && (not (stopping t))
          && p.dropped = None
        do
          Condition.wait p.q_not_full p.qm
        done;
        if stopping t || p.dropped <> None then `Quit else `Push
    | Drop_peer ->
        if p.queued >= t.queue_capacity then `Overflow else `Push
  in
  (if accepted = `Push then begin
     Queue.add good p.queue;
     p.queued <- p.queued + 1;
     Obs.Metrics.observe h_queue (float_of_int p.queued)
   end);
  Mutex.unlock p.qm;
  match accepted with
  | `Push -> wake_drain t
  | `Quit -> raise Quit
  | `Overflow ->
      raise
        (Peer_error
           (Printf.sprintf "queue overflow: %d ticks queued (policy drop)"
              t.queue_capacity))

let feed_record t p rcd payload =
  match Stream.Record.feed rcd payload with
  | Stream.Record.Blank | Stream.Record.Header -> ()
  | Stream.Record.Paths n ->
      if n <> t.model.Tomo.Model.n_paths then
        raise
          (Peer_error
             (Printf.sprintf "peer declares %d paths but the model has %d" n
                t.model.Tomo.Model.n_paths))
  | Stream.Record.Tick good ->
      if p.to_skip > 0 then p.to_skip <- p.to_skip - 1
      else enqueue t p good

let mark_eof t p =
  p.eof <- true;
  Obs.Events.emit "peer_eof"
    [ ("peer", display_name p); ("ticks", string_of_int p.ticks) ];
  wake_drain t

let mark_dropped t p reason =
  locked t (fun () ->
      if p.dropped = None && not p.eof then begin
        p.dropped <- Some reason;
        t.s_dropped <- t.s_dropped + 1
      end);
  Obs.Events.emit "peer_dropped"
    [ ("peer", display_name p); ("reason", reason) ];
  (* A reader parked in the Block wait must re-check [dropped]. *)
  Mutex.lock p.qm;
  Condition.broadcast p.q_not_full;
  Mutex.unlock p.qm;
  wake_drain t

let reader t p () =
  let buf = Bytes.create 65536 in
  let dec = Frame.create () in
  let rcd = ref None in
  let handle_payload payload =
    match !rcd with
    | Some r -> feed_record t p r payload
    | None ->
        (* First frame: an optional [peer <name>] hello. *)
        let words =
          String.split_on_char ' ' (String.trim payload)
          |> List.filter (( <> ) "")
        in
        let announced, consume =
          match words with
          | [ "peer"; name ] -> (Some name, true)
          | _ -> (None, false)
        in
        register t p ~announced;
        let r = Stream.Record.create ~origin:("peer:" ^ p.name) () in
        rcd := Some r;
        if not consume then feed_record t p r payload
  in
  let rec loop () =
    let n =
      try Unix.read p.fd buf 0 (Bytes.length buf) with
      | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          raise
            (Peer_error
               (Printf.sprintf "idle for more than %gs" t.idle_timeout))
      | Unix.Unix_error _ when stopping t -> raise Quit
    in
    if stopping t then raise Quit;
    if n = 0 then begin
      if not (Frame.at_boundary dec) then
        raise (Peer_error "connection closed mid-frame")
      else mark_eof t p
    end
    else begin
      Obs.Metrics.incr ~by:n c_bytes;
      let before = Frame.frames_decoded dec in
      Frame.feed dec buf ~len:n;
      let decoded = Frame.frames_decoded dec - before in
      Obs.Metrics.incr ~by:decoded c_frames;
      locked t (fun () ->
          t.s_bytes <- t.s_bytes + n;
          t.s_frames <- t.s_frames + decoded);
      let rec drain () =
        match Frame.next dec with
        | None -> ()
        | Some payload ->
            handle_payload payload;
            drain ()
      in
      drain ();
      loop ()
    end
  in
  (try loop () with
  | Quit -> ()
  | Peer_error msg -> mark_dropped t p msg
  | Failure msg ->
      Obs.Events.emit "frame_error"
        [ ("peer", display_name p); ("error", msg) ];
      mark_dropped t p msg
  | Unix.Unix_error (e, _, _) ->
      mark_dropped t p ("read failed: " ^ Unix.error_message e));
  close_peer t p

let attach t fd =
  if stopping t then (try Unix.close fd with Unix.Unix_error _ -> ())
  else begin
    if t.idle_timeout > 0. then
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.idle_timeout;
    let p =
      {
        fd;
        queue = Queue.create ();
        qm = Mutex.create ();
        q_not_full = Condition.create ();
        queued = 0;
        name = "";
        engine = None;
        to_skip = 0;
        eof = false;
        dropped = None;
        last_estimate = None;
        ticks = 0;
        finalized = false;
        closed = false;
        thread = None;
      }
    in
    locked t (fun () ->
        t.peers <- p :: t.peers;
        t.s_connected <- t.s_connected + 1);
    p.thread <- Some (Thread.create (reader t p) ())
  end

(* ------------------------------------------------------------------ *)
(* Drain loop: splice ready queues, ingest per peer over the pool       *)
(* ------------------------------------------------------------------ *)

(* Reserve up to [n] ticks from the global budget (exact [max_ticks]
   cut even with several peers draining concurrently). *)
let rec reserve t n =
  if n <= 0 then 0
  else
    let r = Atomic.get t.budget in
    let take = min n r in
    if take = 0 then 0
    else if Atomic.compare_and_set t.budget r (r - take) then take
    else reserve t n

let splice q n =
  let rec go acc n =
    if n = 0 then List.rev acc
    else
      match Queue.take_opt q with
      | None -> List.rev acc
      | Some x -> go (x :: acc) (n - 1)
  in
  go [] n

let snapshot_path t p = Filename.concat (Option.get t.snapshot_dir) (p.name ^ ".snap")

let maybe_snapshot t p engine =
  match t.snapshot_dir with
  | Some _ when Stream.Engine.ticks engine mod t.snapshot_every = 0 ->
      Stream.Snapshot.save (snapshot_path t p)
        (Stream.Engine.snapshot engine)
  | _ -> ()

let ingest_batch t (p, batch) =
  let engine = Option.get p.engine in
  List.iter
    (fun good ->
      (match Stream.Engine.ingest ?pool:t.pool engine good with
      | Some est -> p.last_estimate <- Some est
      | None -> ());
      p.ticks <- p.ticks + 1;
      maybe_snapshot t p engine)
    batch;
  List.length batch

let write_file_atomic path contents =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir "tomo_report" ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents);
  Sys.rename tmp path

(* Final snapshot always; a report only when the peer's stream ended
   cleanly and the hub was not cut short by [max_ticks]. *)
let finalize t ~allow_report p =
  if not p.finalized then begin
    p.finalized <- true;
    (match p.engine with
    | Some engine -> (
        (match t.snapshot_dir with
        | Some _ when Stream.Engine.ticks engine > 0 ->
            Stream.Snapshot.save (snapshot_path t p)
              (Stream.Engine.snapshot engine)
        | _ -> ());
        match (t.report_dir, p.last_estimate) with
        | Some dir, Some est
          when allow_report && p.eof && p.dropped = None ->
            write_file_atomic
              (Filename.concat dir (p.name ^ ".report"))
              (Stream.Engine.report_to_string ~window:t.window est);
            locked t (fun () -> t.s_reports <- t.s_reports + 1)
        | _ -> ())
    | None -> ());
    close_peer t p;
    locked t (fun () -> refresh_peer_gauge_locked t)
  end

let collect_work t =
  let peers = locked t (fun () -> t.peers) in
  List.filter_map
    (fun p ->
      if p.finalized || Option.is_none p.engine then None
      else begin
        Mutex.lock p.qm;
        let take = reserve t p.queued in
        let batch = splice p.queue take in
        p.queued <- p.queued - List.length batch;
        if batch <> [] then Condition.broadcast p.q_not_full;
        Mutex.unlock p.qm;
        if batch = [] then None else Some (p, batch)
      end)
    peers

let finalize_ready t ~allow_report =
  let peers = locked t (fun () -> t.peers) in
  List.iter
    (fun p ->
      if (not p.finalized) && Option.is_some p.engine then begin
        Mutex.lock p.qm;
        let idle = p.queued = 0 in
        Mutex.unlock p.qm;
        if idle && (p.eof || p.dropped <> None) then
          finalize t ~allow_report p
      end)
    peers

let budget_spent t = t.bounded && Atomic.get t.budget = 0

let run t =
  t.running <- true;
  t.ticker <-
    Some
      (Thread.create
         (fun () ->
           (* Periodic unconditional broadcast: heals any missed wakeup
              and surfaces [request_stop] (which, being signal-safe,
              cannot broadcast itself) within ~100 ms. *)
           while t.running do
             Thread.delay 0.1;
             wake_drain t
           done)
         ());
  let rec loop () =
    if stopping t || budget_spent t then ()
    else begin
      let work = collect_work t in
      if work <> [] then begin
        let ingested =
          Tomo_par.Pool.parallel_map ?pool:t.pool (ingest_batch t)
            (Array.of_list work)
        in
        locked t (fun () ->
            t.s_ticks <- t.s_ticks + Array.fold_left ( + ) 0 ingested);
        finalize_ready t ~allow_report:true;
        loop ()
      end
      else begin
        finalize_ready t ~allow_report:true;
        Mutex.lock t.m;
        if not (stopping t) then Condition.wait t.wake t.m;
        Mutex.unlock t.m;
        loop ()
      end
    end
  in
  loop ();
  let cut = budget_spent t in
  Atomic.set t.stop true;
  (* Release parked readers and pop the blocked ones out of read(2). *)
  let peers = locked t (fun () -> t.peers) in
  List.iter
    (fun p ->
      Mutex.lock p.qm;
      Condition.broadcast p.q_not_full;
      Mutex.unlock p.qm;
      try Unix.shutdown p.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    peers;
  List.iter
    (fun p -> match p.thread with Some th -> Thread.join th | None -> ())
    peers;
  (* On a [max_ticks] cut, queued-but-uningested ticks exist: the final
     snapshot captures exactly the ingested prefix and no report is
     written, so a restart resumes bit-identically. *)
  List.iter (fun p -> finalize t ~allow_report:(not cut) p) peers;
  t.running <- false;
  (match t.ticker with Some th -> Thread.join th | None -> ());
  t.ticker <- None

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

let stats t =
  locked t (fun () ->
      {
        frames_total = t.s_frames;
        bytes_total = t.s_bytes;
        peers_connected = t.s_connected;
        peers_active = List.length (List.filter is_active t.peers);
        peers_dropped = t.s_dropped;
        ticks_ingested = t.s_ticks;
        reports_written = t.s_reports;
      })

let status_json t =
  let peers = locked t (fun () -> t.peers) in
  let b = Buffer.create 256 in
  Buffer.add_string b "{\"peers\":[";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char b ',';
      Mutex.lock p.qm;
      let queued = p.queued in
      Mutex.unlock p.qm;
      let state =
        if p.finalized then "finalized"
        else if p.dropped <> None then "dropped"
        else if p.eof then "eof"
        else "active"
      in
      (* Names are sanitized to [A-Za-z0-9_.-], so no JSON escaping is
         needed. *)
      Printf.bprintf b
        "{\"name\":\"%s\",\"ticks\":%d,\"queued\":%d,\"state\":\"%s\"}"
        (display_name p) p.ticks queued state)
    (List.rev peers);
  let s = stats t in
  Printf.bprintf b
    "],\"ticks_ingested\":%d,\"frames_total\":%d,\"bytes_total\":%d,\"peers_dropped\":%d,\"reports_written\":%d}"
    s.ticks_ingested s.frames_total s.bytes_total s.peers_dropped
    s.reports_written;
  Buffer.contents b
