(** The ingestion hub: N concurrent framed-trace peers multiplexed into
    per-peer sharded {!Tomo_stream.Engine}s.

    Threading model (see DESIGN.md):
    - one {e reader systhread per peer} does the blocking I/O: read,
      {!Frame} decode, {!Tomo_stream.Record} parse, push the tick's
      bitset onto the peer's bounded queue;
    - the {e drain loop} ({!run}, on the caller's thread) splices every
      ready peer's queued ticks out and ingests them over
      {!Tomo_par.Pool.parallel_map} — one task per peer, each ingesting
      its ticks {e in order} into its own engine, so the cross-peer
      schedule can never change any peer's numbers and a socket-fed
      report is bit-identical to [serve --replay] of the same trace;
    - a {e ticker systhread} polls the stop flag and idle peers every
      ~100 ms and broadcasts the drain loop's condition variable, so
      {!request_stop} stays async-signal-safe (it only flips an
      [Atomic]).

    Backpressure: each peer's queue holds at most [queue_capacity]
    ticks.  Policy {!Block} parks the reader thread until the drain
    loop catches up — the kernel socket buffer then fills and the
    sender's writes stall, i.e. ordinary TCP backpressure.  Policy
    {!Drop_peer} disconnects the slow peer instead ([peer_dropped]
    event, [reason=overflow]), protecting the rest of the fleet.

    Crash recovery: with [snapshot_dir], every peer's engine state is
    saved (atomically) every [snapshot_every] ticks and at shutdown as
    [<dir>/<peer>.snap]; a reconnecting peer of the same name is
    restored from its snapshot and the first [ticks] re-sent ticks are
    skipped, so a killed-and-restarted hub produces byte-identical
    per-peer reports to one that never stopped.

    A peer announces itself with an optional first frame [peer <name>]
    ([A-Za-z0-9_.-] only — anything else is mapped to [_] before the
    name becomes a snapshot filename); unnamed peers get [peer-<k>]
    and therefore no cross-restart identity. *)

(** What to do with a peer whose queue is full. *)
type policy = Block | Drop_peer

val policy_of_string : string -> (policy, string) result
val policy_to_string : policy -> string

type t

(** [create ~model ~window ()] builds an idle hub (no listener — pass
    {!attach} as the {!Listener}'s [on_accept]).

    @param queue_capacity per-peer bounded queue, in ticks (default 64).
    @param policy full-queue behaviour (default {!Block}).
    @param idle_timeout seconds of peer silence before it is dropped
      ([reason=idle]); 0 (the default) waits forever.
    @param snapshot_dir directory for per-peer [<name>.snap] files —
      also where reconnecting peers are restored from.
    @param report_dir directory for per-peer [<name>.report] files
      (tomo-report v1), written when a peer's stream ends cleanly.
    @param snapshot_every snapshot cadence in ticks (default 1).
    @param max_ticks stop the whole hub after ingesting exactly this
      many ticks across all peers — the deterministic stand-in for a
      mid-stream kill ({!run} finalizes snapshots but writes no
      reports). *)
val create :
  ?select_config:Tomo.Algorithm1.config ->
  ?pool:Tomo_par.Pool.t ->
  ?queue_capacity:int ->
  ?policy:policy ->
  ?idle_timeout:float ->
  ?snapshot_dir:string ->
  ?report_dir:string ->
  ?snapshot_every:int ->
  ?max_ticks:int ->
  model:Tomo.Model.t ->
  window:int ->
  unit ->
  t

(** Adopt an accepted connection: spawns the peer's reader thread.
    Intended as [Listener.start ~on_accept:(Hub.attach hub)]. *)
val attach : t -> Unix.file_descr -> unit

(** Ask {!run} to wind down.  Only flips an [Atomic] — safe to call
    from a signal handler. *)
val request_stop : t -> unit

(** The drain loop: ingest queued ticks until {!request_stop} or the
    [max_ticks] budget is spent, then release every reader, finalize
    every peer (final snapshot; report only for cleanly ended peers
    when not cut by [max_ticks]), and return.  Call once. *)
val run : t -> unit

(** Unconditional lifetime totals (unlike {!Tomo_obs.Metrics}, these
    count even with telemetry disabled — tests read them). *)
type stats = {
  frames_total : int;
  bytes_total : int;
  peers_connected : int;  (** lifetime accepts *)
  peers_active : int;  (** currently registered, not yet finalized *)
  peers_dropped : int;  (** idle / overflow / protocol-error drops *)
  ticks_ingested : int;
  reports_written : int;
}

val stats : t -> stats

(** Per-peer view as a JSON object, served under the CLI's [/status]:
    [{"peers":[{"name":..,"ticks":..,"queued":..,"state":
    "active"|"eof"|"dropped"|"finalized"},..],"ticks_ingested":..,
    "frames_total":..}]. *)
val status_json : t -> string
