(** The tomo-trace v1 wire framing: length-prefixed records.

    Each frame is a 4-byte big-endian payload length followed by the
    payload bytes; a framed trace stream carries exactly the records of
    the [tomo-trace v1] file format ({!Tomo_stream.Record}), one record
    per frame, plus the optional [peer <name>] hello the ingestion
    plane uses for snapshot identity.

    {!decoder} is incremental and partial-read-tolerant: bytes may be
    fed in any fragmentation — a frame torn at every byte boundary, or
    many frames concatenated in one read — and the decoded frame
    sequence is identical ([decode ∘ encode = id], property-tested in
    [test_net]).  Oversized or zero-length frames poison the decoder:
    the offending {!feed} raises, and every later call re-raises, so a
    misbehaving peer cannot resynchronize into garbage. *)

(** Payloads above this many bytes are rejected (4 MiB — a tick record
    for a million-path trace still fits). *)
val default_max_payload : int

(** [encode payload] is the wire bytes of one frame.
    @raise Invalid_argument if [payload] is empty or longer than
    [max_payload] (default {!default_max_payload}). *)
val encode : ?max_payload:int -> string -> string

(** [encode_into buf payload] appends the frame to [buf] — how the
    [send-trace] client batches many records per [write]. *)
val encode_into : ?max_payload:int -> Buffer.t -> string -> unit

type decoder

val create : ?max_payload:int -> unit -> decoder

(** [feed dec bytes ~off ~len] consumes one received chunk.
    @raise Failure on a zero-length or oversized frame header (and on
    every call after one, see above). *)
val feed : ?off:int -> ?len:int -> decoder -> Bytes.t -> unit

val feed_string : decoder -> string -> unit

(** Next fully decoded payload, in arrival order. *)
val next : decoder -> string option

(** [at_boundary dec] is [true] iff no partial frame is buffered — a
    clean EOF must land here, otherwise the stream was truncated
    mid-frame. *)
val at_boundary : decoder -> bool

(** Undecoded bytes currently buffered (partial frame + queue). *)
val pending : decoder -> int

(** Fully decoded frames over the decoder's lifetime. *)
val frames_decoded : decoder -> int

(** Total bytes ever fed. *)
val bytes_fed : decoder -> int
