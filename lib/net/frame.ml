let default_max_payload = 4 * 1024 * 1024

let check_payload ~max_payload payload =
  let n = String.length payload in
  if n = 0 then invalid_arg "Tomo_net.Frame.encode: empty payload";
  if n > max_payload then
    invalid_arg
      (Printf.sprintf
         "Tomo_net.Frame.encode: payload of %d bytes exceeds cap %d" n
         max_payload)

let encode_into ?(max_payload = default_max_payload) buf payload =
  check_payload ~max_payload payload;
  let n = String.length payload in
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (n land 0xff));
  Buffer.add_string buf payload

let encode ?max_payload payload =
  let buf = Buffer.create (String.length payload + 4) in
  encode_into ?max_payload buf payload;
  Buffer.contents buf

(* The incremental state is just "how many header bytes so far" plus
   "how much of the announced payload so far"; feeding is a byte-wise
   fold, so any fragmentation of the input produces the same frames. *)
type decoder = {
  max_payload : int;
  header : Bytes.t;  (** 4-byte big-endian length, filling up *)
  mutable header_got : int;
  mutable body : Bytes.t;  (** scratch for the current payload *)
  mutable body_want : int;  (** announced length; 0 = reading header *)
  mutable body_got : int;
  frames : string Queue.t;
  mutable poisoned : string option;
  mutable frames_decoded : int;
  mutable bytes_fed : int;
}

let create ?(max_payload = default_max_payload) () =
  {
    max_payload;
    header = Bytes.create 4;
    header_got = 0;
    body = Bytes.create 0;
    body_want = 0;
    body_got = 0;
    frames = Queue.create ();
    poisoned = None;
    frames_decoded = 0;
    bytes_fed = 0;
  }

let poison d msg =
  d.poisoned <- Some msg;
  failwith msg

let begin_body d =
  let b = Bytes.get_uint8 d.header in
  let len = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  if len = 0 then poison d "frame error: zero-length frame";
  if len > d.max_payload then
    poison d
      (Printf.sprintf "frame error: %d-byte frame exceeds cap %d" len
         d.max_payload);
  d.header_got <- 0;
  d.body_want <- len;
  d.body_got <- 0;
  if Bytes.length d.body < len then d.body <- Bytes.create len

let feed ?(off = 0) ?len d bytes =
  (match d.poisoned with Some msg -> failwith msg | None -> ());
  let len = match len with Some l -> l | None -> Bytes.length bytes - off in
  if off < 0 || len < 0 || off + len > Bytes.length bytes then
    invalid_arg "Tomo_net.Frame.feed: off/len out of range";
  d.bytes_fed <- d.bytes_fed + len;
  let pos = ref off in
  let stop = off + len in
  while !pos < stop do
    if d.body_want = 0 then begin
      (* Header bytes, one or more. *)
      let take = min (4 - d.header_got) (stop - !pos) in
      Bytes.blit bytes !pos d.header d.header_got take;
      d.header_got <- d.header_got + take;
      pos := !pos + take;
      if d.header_got = 4 then begin_body d
    end
    else begin
      let take = min (d.body_want - d.body_got) (stop - !pos) in
      Bytes.blit bytes !pos d.body d.body_got take;
      d.body_got <- d.body_got + take;
      pos := !pos + take;
      if d.body_got = d.body_want then begin
        Queue.add (Bytes.sub_string d.body 0 d.body_want) d.frames;
        d.frames_decoded <- d.frames_decoded + 1;
        d.body_want <- 0;
        d.body_got <- 0
      end
    end
  done

let feed_string d s = feed d (Bytes.unsafe_of_string s)
let next d = Queue.take_opt d.frames
let at_boundary d = d.header_got = 0 && d.body_want = 0

let pending d =
  let queued =
    Queue.fold (fun acc f -> acc + String.length f) 0 d.frames
  in
  queued + d.header_got + d.body_got

let frames_decoded d = d.frames_decoded
let bytes_fed d = d.bytes_fed
