(** Accepting ingestion peers: a TCP or Unix-domain listening socket
    (bound via {!Tomo_obs.Exporter.bind}, so ingestion and telemetry
    accept identical ["HOST:PORT" | "PORT" | path] address syntax) plus
    one accept systhread handing each connection to a callback.

    The callback runs on the accept thread and must return quickly —
    the {!Hub} just registers the peer and spawns its reader thread.
    Accept-loop errors on an individual connection are counted and
    dropped; the loop only exits on {!stop}. *)

type t

(** [start listen ~on_accept] binds, listens, and starts accepting.
    @raise Unix.Unix_error if the address cannot be bound. *)
val start :
  Tomo_obs.Exporter.listen -> on_accept:(Unix.file_descr -> unit) -> t

val listen : t -> Tomo_obs.Exporter.listen

(** Close the listening socket (unlinking a Unix socket path) and join
    the accept thread.  Already-accepted connections are untouched.
    Idempotent. *)
val stop : t -> unit
