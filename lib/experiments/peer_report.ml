module Overlay = Tomo_topology.Overlay

type peer = {
  peer_as : int;
  n_links : int;
  expected_congested : float;
  ci_lo : float;
  ci_hi : float;
  n_identifiable : int;
  n_ambiguous : int;
  ambiguous_links : int array;
  worst_pair : (int * int * float) option;
}

let build ~model ~engine ~overlay ~resamples ~rng =
  let cis =
    if resamples > 1 then
      Some
        (Tomo.Confidence.link_marginal_cis engine ~resamples ~level:0.9 ~rng)
    else None
  in
  let ambiguous = Tomo.Prob_engine.ambiguous_links engine in
  let corr_sets = Overlay.correlation_sets overlay in
  Array.to_list corr_sets
  |> List.filter_map (fun links ->
         if Array.length links = 0 then None
         else begin
           let peer_as =
             overlay.Overlay.links.(links.(0)).Overlay.owner_as
           in
           (* A structurally ambiguous link shares its complete path set
              with another link: "how congested is this link" is not an
              answerable query, so we mark it instead of summing a point
              estimate that silently attributes its class's congestion
              to it. *)
           let ambig =
             Array.to_list links
             |> List.filter (Tomo_util.Bitset.get ambiguous)
             |> Array.of_list
           in
           let answerable e = not (Tomo_util.Bitset.get ambiguous e) in
           let expected, lo, hi =
             Array.fold_left
               (fun (e, l, h) link ->
                 if not (answerable link) then (e, l, h)
                 else
                   let p = Tomo.Prob_engine.link_marginal engine link in
                   match cis with
                   | Some cis ->
                       ( e +. p,
                         l +. cis.(link).Tomo.Confidence.lo,
                         h +. cis.(link).Tomo.Confidence.hi )
                   | None -> (e +. p, l +. p, h +. p))
               (0.0, 0.0, 0.0) links
           in
           let n_identifiable =
             Array.fold_left
               (fun a link ->
                 if
                   answerable link
                   && Tomo.Prob_engine.link_identifiable engine link
                 then a + 1
                 else a)
               0 links
           in
           (* Strongest identifiable pairwise correlation within the
              peer. *)
           let worst_pair = ref None in
           let corr = model.Tomo.Model.corr_of_link.(links.(0)) in
           Array.iteri
             (fun i a ->
               Array.iteri
                 (fun j b ->
                   if j > i then
                     match
                       Tomo.Prob_engine.congestion_prob engine ~corr
                         [| a; b |]
                     with
                     | Some p when p > 0.01 -> (
                         match !worst_pair with
                         | Some (_, _, best) when best >= p -> ()
                         | _ -> worst_pair := Some (a, b, p))
                     | _ -> ())
                 links)
             links;
           Some
             {
               peer_as;
               n_links = Array.length links;
               expected_congested = expected;
               ci_lo = lo;
               ci_hi = hi;
               n_identifiable;
               n_ambiguous = Array.length ambig;
               ambiguous_links = ambig;
               worst_pair = !worst_pair;
             }
         end)
  |> List.sort (fun a b ->
         compare b.expected_congested a.expected_congested)

let render ppf ~top peers =
  Format.fprintf ppf
    "%-8s%7s%14s%20s%14s%7s  %s@." "peer AS" "links" "E[#congested]"
    "90% CI" "identifiable" "ambig" "strongest correlation";
  Format.fprintf ppf "%s@." (String.make 99 '-');
  List.iteri
    (fun i p ->
      if i < top then begin
        Format.fprintf ppf "%-8d%7d%14.3f%9.3f-%-10.3f%10d/%-3d%7d"
          p.peer_as p.n_links p.expected_congested p.ci_lo p.ci_hi
          p.n_identifiable p.n_links p.n_ambiguous;
        (match p.worst_pair with
        | Some (a, b, prob) ->
            Format.fprintf ppf "  links (%d,%d) fail together %.0f%%" a b
              (100.0 *. prob)
        | None -> Format.fprintf ppf "  -");
        Format.fprintf ppf "@."
      end)
    peers;
  let total_ambig =
    List.fold_left (fun a p -> a + p.n_ambiguous) 0 peers
  in
  if total_ambig > 0 then
    Format.fprintf ppf
      "(%d link estimates withheld: structurally ambiguous — \
       indistinguishable path sets)@."
      total_ambig
