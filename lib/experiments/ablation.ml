module Bitset = Tomo_util.Bitset
module Scenario = Tomo_netsim.Scenario
module Run = Tomo_netsim.Run
module Obs = Tomo_obs
module Pool = Tomo_par.Pool

type subset_row = {
  max_subset_size : int;
  n_vars : int;
  n_rows : int;
  n_identifiable : int;
  links_mae : float;
  seconds : float;
}

let subset_size_sweep ~scale ~seed ~sizes =
  let w =
    Workload.prepare
      (Workload.spec ~scale ~seed Workload.Brite Scenario.No_independence)
  in
  (* Sizes share the prepared workload read-only; each cell's timing is
     its own wall clock, so parallel rows stay meaningful per row. *)
  Pool.map_list
    (fun size ->
      Obs.Trace.with_span "ablation.subset_size"
        ~attrs:[ ("max_subset_size", string_of_int size) ]
      @@ fun () ->
      let config =
        { Tomo.Algorithm1.default_config with max_subset_size = size }
      in
      let t0 = Unix.gettimeofday () in
      let r, engine =
        Tomo.Correlation_complete.compute ~config w.Workload.model
          w.Workload.obs
      in
      let seconds = Unix.gettimeofday () -. t0 in
      let n_identifiable =
        Tomo.Algorithm1.n_identifiable engine.Tomo.Prob_engine.selection
      in
      {
        max_subset_size = size;
        n_vars = r.Tomo.Pc_result.n_vars;
        n_rows = r.Tomo.Pc_result.n_rows;
        n_identifiable;
        links_mae = Fig4.mean_link_error w r;
        seconds;
      })
    sizes

type probe_row = {
  probes_per_path : int option;
  status_flip_frac : float;
  links_mae : float;
}

let probe_sweep ~scale ~seed ~budgets =
  let ideal =
    Workload.prepare (Workload.spec ~scale ~seed Workload.Brite Scenario.Random)
  in
  let flip_frac (w : Workload.prepared) =
    let n_paths = Array.length w.Workload.run.Run.path_good in
    let t = w.Workload.run.Run.t_intervals in
    let flips = ref 0 in
    Array.iteri
      (fun p row ->
        let ideal_row = ideal.Workload.run.Run.path_good.(p) in
        for i = 0 to t - 1 do
          if Bitset.get row i <> Bitset.get ideal_row i then incr flips
        done)
      w.Workload.run.Run.path_good;
    float_of_int !flips /. float_of_int (n_paths * t)
  in
  let cell (w : Workload.prepared) =
    let r, _ = Tomo.Correlation_complete.compute w.Workload.model w.Workload.obs in
    Fig4.mean_link_error w r
  in
  let ideal_row =
    {
      probes_per_path = None;
      status_flip_frac = 0.0;
      links_mae = cell ideal;
    }
  in
  ideal_row
  :: Pool.map_list
       (fun budget ->
         Obs.Trace.with_span "ablation.probe_budget"
           ~attrs:[ ("probes_per_path", string_of_int budget) ]
         @@ fun () ->
         let w =
           Workload.prepare
             (Workload.spec ~scale ~seed
                ~measurement:(Run.Probes { per_path = budget; f = 0.01 })
                Workload.Brite Scenario.Random)
         in
         {
           probes_per_path = Some budget;
           status_flip_frac = flip_frac w;
           links_mae = cell w;
         })
       budgets

type fallback_row = {
  strategy : string;
  fallback_links : int;
  fallback_mae : float;
  overall_mae : float;
}

let fallback_sweep ~scale ~seed =
  let w =
    Workload.prepare
      (Workload.spec ~scale ~seed Workload.Sparse Scenario.No_independence)
  in
  let _, engine =
    Tomo.Correlation_complete.compute w.Workload.model w.Workload.obs
  in
  let eff =
    Bitset.to_list engine.Tomo.Prob_engine.selection.Tomo.Algorithm1.effective
  in
  List.map
    (fun (name, strategy) ->
      let est e = Tomo.Prob_engine.link_marginal_with strategy engine e in
      let fallback_errs =
        List.filter_map
          (fun e ->
            if Tomo.Prob_engine.link_identifiable engine e then None
            else Some (abs_float (est e -. w.Workload.truth_marginals.(e))))
          eff
      in
      let overall_errs =
        List.map
          (fun e -> abs_float (est e -. w.Workload.truth_marginals.(e)))
          eff
      in
      let mean = function
        | [] -> 0.0
        | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
      in
      {
        strategy = name;
        fallback_links = List.length fallback_errs;
        fallback_mae = mean fallback_errs;
        overall_mae = mean overall_errs;
      })
    [ ("whole", `Whole); ("split", `Split); ("adaptive", `Adaptive) ]

type interval_row = { t_intervals : int; links_mae : float }

let interval_sweep ~scale ~seed ~lengths =
  Pool.map_list
    (fun t ->
      Obs.Trace.with_span "ablation.interval_length"
        ~attrs:[ ("t_intervals", string_of_int t) ]
      @@ fun () ->
      let w =
        Workload.prepare
          (Workload.spec ~scale ~seed ~t_override:t Workload.Brite
             Scenario.No_independence)
      in
      let r, _ =
        Tomo.Correlation_complete.compute w.Workload.model w.Workload.obs
      in
      { t_intervals = t; links_mae = Fig4.mean_link_error w r })
    lengths

let hr ppf width = Format.fprintf ppf "%s@." (String.make width '-')

let render_subset_rows ppf rows =
  Format.fprintf ppf
    "@.Ablation: subset-size budget (§4 complexity control) — \
     Correlation-complete,@.No-Independence, Brite@.";
  hr ppf 78;
  Format.fprintf ppf "%-12s%10s%10s%16s%14s%12s@." "max |E|" "vars" "rows"
    "identifiable" "links MAE" "seconds";
  hr ppf 78;
  List.iter
    (fun r ->
      Format.fprintf ppf "%-12d%10d%10d%16d%14.4f%12.2f@."
        r.max_subset_size r.n_vars r.n_rows r.n_identifiable r.links_mae
        r.seconds)
    rows

let render_fallback_rows ppf rows =
  Format.fprintf ppf
    "@.Ablation: chain-link fallback strategy — Correlation-complete,@.\
     No-Independence, Sparse@.";
  hr ppf 70;
  Format.fprintf ppf "%-12s%18s%18s%16s@." "strategy" "fallback links"
    "fallback MAE" "overall MAE";
  hr ppf 70;
  List.iter
    (fun r ->
      Format.fprintf ppf "%-12s%18d%18.4f%16.4f@." r.strategy
        r.fallback_links r.fallback_mae r.overall_mae)
    rows

let render_probe_rows ppf rows =
  Format.fprintf ppf
    "@.Sensitivity: E2E Monitoring under packet probing — \
     Correlation-complete, Random, Brite@.";
  hr ppf 64;
  Format.fprintf ppf "%-18s%22s%16s@." "probes/path" "status flips"
    "links MAE";
  hr ppf 64;
  List.iter
    (fun r ->
      (match r.probes_per_path with
      | None -> Format.fprintf ppf "%-18s" "ideal"
      | Some b -> Format.fprintf ppf "%-18d" b);
      Format.fprintf ppf "%21.2f%%%16.4f@." (100.0 *. r.status_flip_frac)
        r.links_mae)
    rows

let render_interval_rows ppf rows =
  Format.fprintf ppf
    "@.Convergence: accuracy vs experiment length — Correlation-complete,@.\
     No-Independence, Brite@.";
  hr ppf 40;
  Format.fprintf ppf "%-14s%16s@." "intervals" "links MAE";
  hr ppf 40;
  List.iter
    (fun r -> Format.fprintf ppf "%-14d%16.4f@." r.t_intervals r.links_mae)
    rows
