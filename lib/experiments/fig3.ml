module Bitset = Tomo_util.Bitset
module Scenario = Tomo_netsim.Scenario
module Obs = Tomo_obs
module Pool = Tomo_par.Pool

type algorithm = Sparsity | Bayesian_independence | Bayesian_correlation

let algorithm_to_string = function
  | Sparsity -> "Sparsity"
  | Bayesian_independence -> "Bayesian-Independence"
  | Bayesian_correlation -> "Bayesian-Correlation"

let algorithms = [ Sparsity; Bayesian_independence; Bayesian_correlation ]

type cell = { detection : float; false_positive : float }
type row = { label : string; cells : (algorithm * cell) list }

let scenarios ~scale ~seed =
  [
    ( "Random Congestion",
      Workload.spec ~scale ~seed Workload.Brite Scenario.Random );
    ( "Concentrated Congestion",
      Workload.spec ~scale ~seed Workload.Brite Scenario.Concentrated );
    ( "No Independence",
      Workload.spec ~scale ~seed Workload.Brite Scenario.No_independence );
    ( "No Stationarity",
      Workload.spec ~scale ~seed ~nonstationary:true Workload.Brite
        Scenario.No_independence );
    ( "Sparse Topology",
      Workload.spec ~scale ~seed Workload.Sparse Scenario.Random );
  ]

let run_cell (w : Workload.prepared) algorithm =
  Obs.Trace.with_span "fig3.cell"
    ~attrs:[ ("algorithm", algorithm_to_string algorithm) ]
  @@ fun () ->
  let model = w.Workload.model and obs = w.Workload.obs in
  (* Probability Computation happens once, over the whole experiment —
     exactly how CLINK-style algorithms operate. *)
  let infer =
    match algorithm with
    | Sparsity ->
        fun ~congested_paths ~good_paths ->
          Tomo.Sparsity.infer model ~congested_paths ~good_paths
    | Bayesian_independence ->
        let pc = Tomo.Independence_pc.compute model obs in
        fun ~congested_paths ~good_paths ->
          Tomo.Bayesian.infer_independence model
            ~marginals:pc.Tomo.Pc_result.marginals ~congested_paths
            ~good_paths
    | Bayesian_correlation ->
        let _, engine = Tomo.Correlation_complete.compute model obs in
        fun ~congested_paths ~good_paths ->
          Tomo.Bayesian.infer_correlation model ~engine ~congested_paths
            ~good_paths
  in
  let t = Tomo.Observations.t_intervals obs in
  let detections = ref [] and false_positives = ref [] in
  for interval = 0 to t - 1 do
    let congested_paths =
      Tomo.Observations.congested_paths_at obs ~interval
    in
    let good_paths = Tomo.Observations.good_paths_at obs ~interval in
    let inferred = infer ~congested_paths ~good_paths in
    let actual = w.Workload.run.Tomo_netsim.Run.link_congested.(interval) in
    detections := Tomo.Metrics.detection_rate ~actual ~inferred :: !detections;
    false_positives :=
      Tomo.Metrics.false_positive_rate ~actual ~inferred :: !false_positives
  done;
  let mean l = Option.value ~default:0.0 (Tomo.Metrics.mean_opt l) in
  { detection = mean !detections; false_positive = mean !false_positives }

(* Scenario columns are embarrassingly parallel: each derives its own
   Rng stream from the spec seed (Workload.prepare splits it), so the
   pool schedule cannot change the numbers.  Cells within a scenario
   share the prepared workload read-only. *)
let run ~scale ~seed =
  Pool.map_list
    (fun (label, spec) ->
      Obs.Trace.with_span "fig3.scenario" ~attrs:[ ("scenario", label) ]
      @@ fun () ->
      let w = Workload.prepare spec in
      let cells = Pool.map_list (fun a -> (a, run_cell w a)) algorithms in
      { label; cells })
    (scenarios ~scale ~seed)

let run_averaged ~scale ~seeds =
  match Pool.map_list (fun seed -> run ~scale ~seed) seeds with
  | [] -> invalid_arg "Fig3.run_averaged: no seeds"
  | acc :: rest ->
      let add rows rows' =
        List.map2
          (fun r r' ->
            {
              r with
              cells =
                List.map2
                  (fun (a, c) (_, c') ->
                    ( a,
                      {
                        detection = c.detection +. c'.detection;
                        false_positive = c.false_positive +. c'.false_positive;
                      } ))
                  r.cells r'.cells;
            })
          rows rows'
      in
      (* Per-seed runs computed in parallel above; the sums fold in seed
         order, so the average is bit-identical to the sequential one. *)
      let total = List.fold_left add acc rest in
      let n = float_of_int (List.length seeds) in
      List.map
        (fun r ->
          {
            r with
            cells =
              List.map
                (fun (a, c) ->
                  ( a,
                    {
                      detection = c.detection /. n;
                      false_positive = c.false_positive /. n;
                    } ))
                r.cells;
          })
        total
