(** Experiment workloads: glue between the topology generators, the
    simulator and the tomography core.

    A {!spec} names everything the paper's §3.2 setup varies — topology
    family, congestion scenario, stationarity, scale, seed — and
    {!prepare} turns it into a ready-to-analyze bundle: overlay, core
    model (correlation sets = one per AS), simulation run, observations,
    and closed-form truth. *)

type topology = Brite | Sparse

val topology_to_string : topology -> string

(** Experiment scale.  [Paper] matches §3.2 (≈1000-link Brite / ≈2000-link
    Sparse, 1500 paths, 1000 intervals); the smaller presets keep the
    same structure at a fraction of the cost for tests and benches. *)
type scale = Small | Medium | Paper

val scale_to_string : scale -> string
val scale_of_string : string -> (scale, string) result

type spec = {
  topology : topology;
  scenario : Tomo_netsim.Scenario.kind;
  nonstationary : bool;
      (** redraw factor probabilities and activations every few intervals *)
  scale : scale;
  seed : int;
  measurement : Tomo_netsim.Run.measurement;
  t_override : int option;
      (** replace the scale's interval count (convergence sweeps) *)
}

(** [spec ?scale ?seed ?nonstationary ?measurement ?t_override topology
    scenario] fills defaults: Medium scale, seed 1, stationary, ideal
    measurement, scale-determined interval count. *)
val spec :
  ?scale:scale ->
  ?seed:int ->
  ?nonstationary:bool ->
  ?measurement:Tomo_netsim.Run.measurement ->
  ?t_override:int ->
  topology ->
  Tomo_netsim.Scenario.kind ->
  spec

type prepared = {
  spec : spec;
  overlay : Tomo_topology.Overlay.t;
  model : Tomo.Model.t;
  run : Tomo_netsim.Run.result;
  obs : Tomo.Observations.t;
  truth_marginals : float array;  (** closed-form per-link truth *)
}

(** [t_intervals scale] is the experiment length for a scale. *)
val t_intervals : scale -> int

(** [prepare spec] generates, simulates and packages the workload. *)
val prepare : spec -> prepared

(** [generate_overlay spec] is just the deterministic topology half of
    {!prepare} — what a streaming consumer needs to rebuild the model a
    replayed trace was measured on, without re-running the simulation. *)
val generate_overlay : spec -> Tomo_topology.Overlay.t

(** [model_of_overlay overlay] builds the tomography view: link/path
    incidence plus one correlation set per AS that owns links. *)
val model_of_overlay : Tomo_topology.Overlay.t -> Tomo.Model.t

(** [observations_of_run run] re-packages simulator output as core
    observations. *)
val observations_of_run : Tomo_netsim.Run.result -> Tomo.Observations.t
