module Overlay = Tomo_topology.Overlay
module Brite_gen = Tomo_topology.Brite
module Sparse_gen = Tomo_topology.Sparse_topo
module Scenario = Tomo_netsim.Scenario
module Run = Tomo_netsim.Run
module Rng = Tomo_util.Rng
module Obs = Tomo_obs

let c_prepared = Obs.Metrics.counter "workloads_prepared"

type topology = Brite | Sparse

let topology_to_string = function Brite -> "brite" | Sparse -> "sparse"

type scale = Small | Medium | Paper

let scale_to_string = function
  | Small -> "small"
  | Medium -> "medium"
  | Paper -> "paper"

let scale_of_string = function
  | "small" -> Ok Small
  | "medium" -> Ok Medium
  | "paper" -> Ok Paper
  | s -> Error (Printf.sprintf "unknown scale %S (small|medium|paper)" s)

type spec = {
  topology : topology;
  scenario : Scenario.kind;
  nonstationary : bool;
  scale : scale;
  seed : int;
  measurement : Run.measurement;
  t_override : int option;
}

let spec ?(scale = Medium) ?(seed = 1) ?(nonstationary = false)
    ?(measurement = Run.Ideal) ?t_override topology scenario =
  { topology; scenario; nonstationary; scale; seed; measurement; t_override }

type prepared = {
  spec : spec;
  overlay : Overlay.t;
  model : Tomo.Model.t;
  run : Run.result;
  obs : Tomo.Observations.t;
  truth_marginals : float array;
}

let t_intervals = function Small -> 200 | Medium -> 400 | Paper -> 1000

let brite_params = function
  | Small ->
      { Brite_gen.default with Brite_gen.n_ases = 40; n_paths = 150 }
  | Medium ->
      { Brite_gen.default with Brite_gen.n_ases = 80; n_paths = 450 }
  | Paper -> Brite_gen.default

let sparse_params = function
  | Small ->
      { Sparse_gen.default with Sparse_gen.n_ases = 120; n_paths = 150 }
  | Medium ->
      { Sparse_gen.default with Sparse_gen.n_ases = 250; n_paths = 450 }
  | Paper -> Sparse_gen.default

let model_of_overlay overlay =
  let paths =
    Array.map (fun (p : Overlay.path) -> p.Overlay.links) overlay.Overlay.paths
  in
  Tomo.Model.make ~n_links:(Overlay.n_links overlay) ~paths
    ~corr_sets:(Overlay.correlation_sets overlay)

let observations_of_run (run : Run.result) =
  Tomo.Observations.make ~t_intervals:run.Run.t_intervals
    ~path_good:run.Run.path_good

let generate_overlay spec =
  match spec.topology with
  | Brite ->
      Brite_gen.generate ~params:(brite_params spec.scale) ~seed:spec.seed ()
  | Sparse ->
      Sparse_gen.generate ~params:(sparse_params spec.scale) ~seed:spec.seed
        ()

let prepare spec =
  Obs.Trace.with_span "workload.prepare" @@ fun () ->
  Obs.Metrics.incr c_prepared;
  if Obs.Trace.enabled () then begin
    Obs.Trace.add_attr "topology" (topology_to_string spec.topology);
    Obs.Trace.add_attr "scale" (scale_to_string spec.scale);
    Obs.Trace.add_attr "seed" (string_of_int spec.seed)
  end;
  let overlay = generate_overlay spec in
  let rng = Rng.create (spec.seed * 613 + 17) in
  let scenario =
    Scenario.make overlay ~kind:spec.scenario ~frac:0.1
      ~rng:(Rng.split rng ~label:"scenario")
  in
  let t =
    match spec.t_override with
    | Some t -> t
    | None -> t_intervals spec.scale
  in
  (* "the congestion probabilities of links change every few time
     intervals" (§3.2) — a handful of intervals per epoch, so long-run
     averages genuinely mislead per-interval inference. *)
  let dynamics =
    if spec.nonstationary then Run.Redraw_every (max 2 (t / 200))
    else Run.Stationary
  in
  (* [Run.run] fans its interval loop over the same domain pool the
     experiment engine uses for cell fan-out; the pool supports nested
     parallel_map (outer waiters lend a hand), so cells and intervals
     share one worker budget without deadlock or oversubscription. *)
  let run =
    Run.run ~scenario ~dynamics ~measurement:spec.measurement ~t_intervals:t
      ~rng:(Rng.split rng ~label:"run")
  in
  let model = model_of_overlay overlay in
  let obs = observations_of_run run in
  let truth_marginals =
    Obs.Trace.with_span "workload.truth_marginals" (fun () ->
        Array.init (Overlay.n_links overlay) (fun e ->
            Run.true_link_marginal run e))
  in
  { spec; overlay; model; run; obs; truth_marginals }
