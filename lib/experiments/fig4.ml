module Bitset = Tomo_util.Bitset
module Stats = Tomo_util.Stats
module Scenario = Tomo_netsim.Scenario
module Run = Tomo_netsim.Run
module Obs = Tomo_obs
module Pool = Tomo_par.Pool

type algorithm = Independence | Correlation_heuristic | Correlation_complete

let algorithm_to_string = function
  | Independence -> "Independence"
  | Correlation_heuristic -> "Correlation-heuristic"
  | Correlation_complete -> "Correlation-complete"

let algorithms =
  [ Independence; Correlation_heuristic; Correlation_complete ]

let scenarios ~topology ~scale ~seed =
  (* §5.4: "in each of these scenarios, the congestion probability of
     each link changes every few time intervals" — non-stationarity is
     layered on top of every Fig. 4 scenario. *)
  [
    ( "Random Congestion",
      Workload.spec ~scale ~seed ~nonstationary:true topology
        Scenario.Random );
    ( "Concentrated Congestion",
      Workload.spec ~scale ~seed ~nonstationary:true topology
        Scenario.Concentrated );
    ( "No Independence",
      Workload.spec ~scale ~seed ~nonstationary:true topology
        Scenario.No_independence );
  ]

let run_pc (w : Workload.prepared) algorithm =
  Obs.Trace.with_span "fig4.pc"
    ~attrs:[ ("algorithm", algorithm_to_string algorithm) ]
  @@ fun () ->
  let model = w.Workload.model and obs = w.Workload.obs in
  match algorithm with
  | Independence -> (Tomo.Independence_pc.compute model obs, None)
  | Correlation_heuristic ->
      let r, eng = Tomo.Correlation_heuristic.compute model obs in
      (r, Some eng)
  | Correlation_complete ->
      let r, eng = Tomo.Correlation_complete.compute model obs in
      (r, Some eng)

let link_errors (w : Workload.prepared) (r : Tomo.Pc_result.t) =
  let over = Tomo.Pc_result.potentially_congested r in
  Tomo.Metrics.abs_errors ~truth:w.Workload.truth_marginals
    ~estimate:r.Tomo.Pc_result.marginals ~over

let mean_link_error w r =
  let errs = link_errors w r in
  if Array.length errs = 0 then 0.0 else Stats.mean errs

type mae_row = { label : string; cells : (algorithm * float) list }

(* Parallel over scenario columns, then over algorithm cells within one:
   every cell re-derives its randomness from the spec seed, so the
   schedule cannot perturb the figure. *)
let run_mae ~topology ~scale ~seed =
  Pool.map_list
    (fun (label, spec) ->
      Obs.Trace.with_span "fig4.scenario" ~attrs:[ ("scenario", label) ]
      @@ fun () ->
      let w = Workload.prepare spec in
      let cells =
        Pool.map_list
          (fun a ->
            let r, _ = run_pc w a in
            (a, mean_link_error w r))
          algorithms
      in
      { label; cells })
    (scenarios ~topology ~scale ~seed)

let run_mae_averaged ~topology ~scale ~seeds =
  match Pool.map_list (fun seed -> run_mae ~topology ~scale ~seed) seeds with
  | [] -> invalid_arg "Fig4.run_mae_averaged: no seeds"
  | acc :: rest ->
      let add rows rows' =
        List.map2
          (fun r r' ->
            {
              r with
              cells =
                List.map2
                  (fun (a, v) (_, v') -> (a, v +. v'))
                  r.cells r'.cells;
            })
          rows rows'
      in
      (* Sums fold in seed order: bit-identical to the sequential run. *)
      let total = List.fold_left add acc rest in
      let n = float_of_int (List.length seeds) in
      List.map
        (fun r ->
          { r with cells = List.map (fun (a, v) -> (a, v /. n)) r.cells })
        total

let run_cdf ~scale ~seed ~steps =
  Obs.Trace.with_span "fig4.cdf" @@ fun () ->
  let spec =
    Workload.spec ~scale ~seed ~nonstationary:true Workload.Sparse
      Scenario.No_independence
  in
  let w = Workload.prepare spec in
  Pool.map_list
    (fun a ->
      let r, _ = run_pc w a in
      let errs = link_errors w r in
      let curve =
        if Array.length errs = 0 then [ (0.0, 1.0) ]
        else Stats.cdf_curve errs ~steps ~max_x:1.0
      in
      (a, curve))
    algorithms

type subsets_cell = {
  links_mae : float;
  subsets_mae : float;
  n_subsets_scored : int;
}

(* Score the identifiable correlation subsets of size >= 2: compare the
   engine's congestion probability against the simulator's closed form. *)
let score_subsets (w : Workload.prepared) engine =
  let reg = engine.Tomo.Prob_engine.selection.Tomo.Algorithm1.registry in
  let errs = ref [] in
  for v = 0 to Tomo.Eqn.n_vars reg - 1 do
    let s = Tomo.Eqn.subset_of_var reg v in
    if Array.length s.Tomo.Subsets.links >= 2 then begin
      match
        Tomo.Prob_engine.congestion_prob engine ~corr:s.Tomo.Subsets.corr
          s.Tomo.Subsets.links
      with
      | Some est ->
          let truth =
            Run.true_congestion_prob w.Workload.run s.Tomo.Subsets.links
          in
          errs := abs_float (est -. truth) :: !errs
      | None -> ()
    end
  done;
  !errs

let run_subsets ~scale ~seed =
  Pool.map_list
    (fun topology ->
      Obs.Trace.with_span "fig4.subsets"
        ~attrs:[ ("topology", Workload.topology_to_string topology) ]
      @@ fun () ->
      let spec =
        Workload.spec ~scale ~seed ~nonstationary:true topology
          Scenario.No_independence
      in
      let w = Workload.prepare spec in
      let r, eng = run_pc w Correlation_complete in
      let engine = Option.get eng in
      let subset_errs = score_subsets w engine in
      let subsets_mae =
        match subset_errs with
        | [] -> 0.0
        | es -> Stats.mean (Array.of_list es)
      in
      ( Workload.topology_to_string topology,
        {
          links_mae = mean_link_error w r;
          subsets_mae;
          n_subsets_scored = List.length subset_errs;
        } ))
    [ Workload.Brite; Workload.Sparse ]
