(** The operator-facing deliverable of the paper's scenario (§1): per
    peer, how frequently its links are congested.

    This is what the source ISP actually consumes: a ranking of peers by
    expected simultaneous congested links, each with a bootstrap
    confidence interval, plus the strongest identified intra-peer
    correlations (useful for the "how well does the peer react to
    exceptional situations" question — a peer whose links fail together
    has a shared bottleneck). *)

type peer = {
  peer_as : int;
  n_links : int;
  expected_congested : float;
      (** sum of link congestion probabilities: the expected number of
          simultaneously congested links of this peer *)
  ci_lo : float;
  ci_hi : float;
  n_identifiable : int;  (** links with uniquely determined estimates *)
  n_ambiguous : int;
      (** links whose estimate is withheld: they share their complete
          path set with another effective link, so no estimator can
          attribute congestion to them specifically
          ({!Tomo.Prob_engine.ambiguous_links}) *)
  ambiguous_links : int array;  (** the withheld links, ascending *)
  worst_pair : (int * int * float) option;
      (** most correlated identifiable link pair (a, b, P(both
          congested)) if any has joint probability above 1% *)
}

(** [build ~model ~engine ~overlay ~resamples ~rng] computes the report.
    [resamples = 0] skips the bootstrap (CIs collapse onto the point
    estimate).  Structurally ambiguous links are excluded from the
    expected-congestion sums and CIs — the per-link query is
    unanswerable — and reported in [n_ambiguous] / [ambiguous_links]
    instead. *)
val build :
  model:Tomo.Model.t ->
  engine:Tomo.Prob_engine.t ->
  overlay:Tomo_topology.Overlay.t ->
  resamples:int ->
  rng:Tomo_util.Rng.t ->
  peer list

(** [render ppf ~top peers] prints the top-[top] peers by expected
    congestion. *)
val render : Format.formatter -> top:int -> peer list -> unit
