module Rng = Tomo_util.Rng
module Obs = Tomo_obs

let c_generated = Obs.Metrics.counter "topologies_generated"

type params = {
  n_ases : int;
  extra_edge_frac : float;
  routers_lo : int;
  routers_hi : int;
  n_paths : int;
  n_vantages : int;
  border_attach_frac : float;
}

let default =
  {
    n_ases = 700;
    extra_edge_frac = 0.04;
    routers_lo = 3;
    routers_hi = 6;
    n_paths = 1500;
    n_vantages = 3;
    border_attach_frac = 0.5;
  }

let generate ?(params = default) ~seed () =
  Obs.Trace.with_span "sparse_topo.generate" @@ fun () ->
  let rng = Rng.create seed in
  let topo_rng = Rng.split rng ~label:"internet" in
  let path_rng = Rng.split rng ~label:"paths" in
  let inet =
    (* attach = 1 gives a tree; the extra edges make it "almost" a tree,
       matching the thin, barely-intersecting view a traceroute campaign
       produces. *)
    Gen_common.generate_internet topo_rng ~n_ases:params.n_ases ~attach:1
      ~extra_edge_frac:params.extra_edge_frac ~routers_lo:params.routers_lo
      ~routers_hi:params.routers_hi
  in
  let source_as = Gen_common.hub_as inet in
  let b = Overlay.Builder.create ~n_ases:params.n_ases ~source_as in
  let n_src_routers = Graph.n_nodes inet.Gen_common.internals.(source_as) in
  let vantages =
    Array.init (min params.n_vantages n_src_routers) (fun _ ->
        Rng.int path_rng n_src_routers)
  in
  let added = ref 0 and tries = ref 0 in
  let max_tries = params.n_paths * 30 in
  while !added < params.n_paths && !tries < max_tries do
    incr tries;
    let dest_as = Rng.int path_rng params.n_ases in
    if dest_as <> source_as then begin
      match
        Graph.shortest_path ~rng:path_rng inet.Gen_common.as_graph
          ~src:source_as ~dst:dest_as
      with
      | None -> ()
      | Some as_route -> (
          let vantage_router = Rng.choose path_rng vantages in
          (* At AS-level granularity most traceroutes end on the
             inter-domain link into the destination AS (border attach);
             the rest terminate at an internal router. *)
          let entry_border =
            match List.rev as_route with
            | last :: prev :: _ ->
                let _, entry =
                  if prev < last then
                    Hashtbl.find inet.Gen_common.borders (prev, last)
                  else
                    let e, x =
                      Hashtbl.find inet.Gen_common.borders (last, prev)
                    in
                    (x, e)
                in
                Some entry
            | _ -> None
          in
          let dest_router =
            match entry_border with
            | Some r when Rng.bool path_rng ~p:params.border_attach_frac
              ->
                r
            | _ ->
                Rng.int path_rng
                  (Graph.n_nodes inet.Gen_common.internals.(dest_as))
          in
          match
            Gen_common.expand_route b inet path_rng ~vantage_router
              ~dest_router ~as_route
          with
          | None -> ()
          | Some links -> (
              match Overlay.Builder.add_path b links with
              | Some _ -> incr added
              | None -> ()))
    end
  done;
  let ov = Overlay.Builder.finalize b in
  Obs.Metrics.incr c_generated;
  if Obs.Trace.enabled () then begin
    Obs.Trace.add_attr "links" (string_of_int (Overlay.n_links ov));
    Obs.Trace.add_attr "paths" (string_of_int (Overlay.n_paths ov))
  end;
  ov
