let default_tol = 1e-8

module Obs = Tomo_obs

(* Algorithm 2 observability: how often the null space advances by the
   paper's incremental update vs. a from-scratch recomputation, and how
   many candidate rows the update rejects as dependent. *)
let c_recomputes = Obs.Metrics.counter "nullspace_recomputes"
let c_incremental = Obs.Metrics.counter "nullspace_incremental_updates"
let c_rejections = Obs.Metrics.counter "nullspace_dependent_rejections"

let basis ?tol m =
  Obs.Metrics.incr c_recomputes;
  let { Gauss.reduced; pivot_cols; rank } = Gauss.rref ?tol m in
  let n = Matrix.cols m in
  let is_pivot = Array.make n false in
  let pivot_row = Array.make n (-1) in
  List.iteri
    (fun row col ->
      is_pivot.(col) <- true;
      pivot_row.(col) <- row)
    pivot_cols;
  let free_cols =
    List.filter (fun j -> not is_pivot.(j)) (List.init n (fun j -> j))
  in
  let p = n - rank in
  let out = Matrix.make n p 0.0 in
  List.iteri
    (fun k fc ->
      (* Basis vector k: free variable [fc] = 1, pivot variables read off
         the reduced system. *)
      Matrix.set out fc k 1.0;
      Array.iteri
        (fun col piv ->
          if piv >= 0 then
            Matrix.set out col k (-.Matrix.get reduced piv fc))
        pivot_row)
    free_cols;
  out

let nullity ?tol m = Matrix.cols (basis ?tol m)

let in_row_space ?(tol = default_tol) n i =
  let p = Matrix.cols n in
  let rec go j = j >= p || (abs_float (Matrix.get n i j) <= tol && go (j + 1)) in
  go 0

let row_dot_cols n r =
  (* r · N for a row vector r of length rows(N). *)
  Matrix.vec_mul r n

let reduces_rank ?(tol = default_tol) n r =
  if Matrix.cols n = 0 then false
  else
    let v = row_dot_cols n r in
    Array.exists (fun x -> abs_float x > tol) v

let update_incidence ?(tol = default_tol) n idxs =
  let nvars = Matrix.rows n and p = Matrix.cols n in
  Array.iter
    (fun i ->
      if i < 0 || i >= nvars then
        invalid_arg "Nullspace.update_incidence: index out of range")
    idxs;
  if p = 0 then None
  else begin
    (* v = r · N where r is the incidence row: sum the rows of N named by
       idxs. *)
    let v = Array.make p 0.0 in
    Array.iter
      (fun i ->
        for k = 0 to p - 1 do
          v.(k) <- v.(k) +. Matrix.get n i k
        done)
      idxs;
    let j = ref 0 in
    for k = 1 to p - 1 do
      if abs_float v.(k) > abs_float v.(!j) then j := k
    done;
    if abs_float v.(!j) <= tol then begin
      Obs.Metrics.incr c_rejections;
      None
    end
    else begin
      Obs.Metrics.incr c_incremental;
      let pivot = v.(!j) in
      let nj = Matrix.col n !j in
      let out = Matrix.make nvars (p - 1) 0.0 in
      let dst = ref 0 in
      for k = 0 to p - 1 do
        if k <> !j then begin
          let coeff = v.(k) /. pivot in
          for i = 0 to nvars - 1 do
            Matrix.set out i !dst (Matrix.get n i k -. (coeff *. nj.(i)))
          done;
          incr dst
        end
      done;
      Some out
    end
  end

let update ?(tol = default_tol) n r =
  let nvars = Matrix.rows n and p = Matrix.cols n in
  if Array.length r <> nvars then invalid_arg "Nullspace.update: bad row";
  if p = 0 then n
  else begin
    let v = row_dot_cols n r in
    (* Pivot on the column with the largest |r · N_j|. *)
    let j = ref 0 in
    for k = 1 to p - 1 do
      if abs_float v.(k) > abs_float v.(!j) then j := k
    done;
    if abs_float v.(!j) <= tol then begin
      Obs.Metrics.incr c_rejections;
      n
    end
    else begin
      Obs.Metrics.incr c_incremental;
      let pivot = v.(!j) in
      let nj = Matrix.col n !j in
      let out = Matrix.make nvars (p - 1) 0.0 in
      let dst = ref 0 in
      for k = 0 to p - 1 do
        if k <> !j then begin
          let coeff = v.(k) /. pivot in
          for i = 0 to nvars - 1 do
            Matrix.set out i !dst (Matrix.get n i k -. (coeff *. nj.(i)))
          done;
          incr dst
        end
      done;
      out
    end
  end
