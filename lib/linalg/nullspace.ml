let default_tol = 1e-8

module Obs = Tomo_obs
module Rng = Tomo_util.Rng

(* Algorithm 2 observability: how often the null space advances by the
   paper's incremental update vs. a from-scratch recomputation, and how
   many candidate rows the update rejects as dependent. *)
let c_recomputes = Obs.Metrics.counter "nullspace_recomputes"
let c_incremental = Obs.Metrics.counter "nullspace_incremental_updates"
let c_rejections = Obs.Metrics.counter "nullspace_dependent_rejections"

(* Witness-prefilter observability: how many candidate rows the random
   projections rejected without touching the basis, how many fell
   through to the exact test, and how much work each witness dot cost
   (the number of summed entries). *)
let c_wit_rejections = Obs.Metrics.counter "alg1_witness_rejections"
let c_wit_passes = Obs.Metrics.counter "alg1_witness_passes"
let h_wit_nnz = Obs.Metrics.histogram "witness_dot_nnz"

(* Basis extraction from a reduced row-echelon form, abstracted over how
   the reduced matrix is read — the dense path reads a [Matrix.t], the
   sparse path reads the [Sparse.t] directly (no dense materialization
   of the reduced system). *)
let extract_basis ~n ~rank ~pivot_cols ~get =
  let is_pivot = Array.make n false in
  let pivot_row = Array.make n (-1) in
  List.iteri
    (fun row col ->
      is_pivot.(col) <- true;
      pivot_row.(col) <- row)
    pivot_cols;
  let free_cols =
    List.filter (fun j -> not is_pivot.(j)) (List.init n (fun j -> j))
  in
  let p = n - rank in
  let out = Matrix.make n p 0.0 in
  List.iteri
    (fun k fc ->
      (* Basis vector k: free variable [fc] = 1, pivot variables read off
         the reduced system. *)
      Matrix.set out fc k 1.0;
      Array.iteri
        (fun col piv ->
          if piv >= 0 then Matrix.set out col k (-.get piv fc))
        pivot_row)
    free_cols;
  out

let basis ?tol ?(backend = `Auto) m =
  Obs.Metrics.incr c_recomputes;
  let nr = Matrix.rows m and n = Matrix.cols m in
  let use_sparse =
    match backend with
    | `Sparse -> true
    | `Dense -> false
    | `Auto ->
        nr * n >= Sparse.auto_size_floor
        &&
        let nnz = ref 0 in
        for i = 0 to nr - 1 do
          for j = 0 to n - 1 do
            if Matrix.unsafe_get m i j <> 0.0 then incr nnz
          done
        done;
        Sparse.prefers_sparse ~rows:nr ~cols:n ~nnz:!nnz
  in
  if use_sparse then
    let { Sparse_gauss.reduced; pivot_cols; rank } =
      Sparse_gauss.rref ?tol (Sparse.of_matrix m)
    in
    extract_basis ~n ~rank ~pivot_cols ~get:(fun piv fc ->
        Sparse.get reduced piv fc)
  else
    let { Gauss.reduced; pivot_cols; rank } = Gauss.rref_dense ?tol m in
    extract_basis ~n ~rank ~pivot_cols ~get:(fun piv fc ->
        Matrix.get reduced piv fc)

let nullity ?tol m = Matrix.cols (basis ?tol m)

let in_row_space ?(tol = default_tol) n i =
  let p = Matrix.cols n in
  let rec go j = j >= p || (abs_float (Matrix.get n i j) <= tol && go (j + 1)) in
  go 0

let row_dot_cols n r =
  (* r · N for a row vector r of length rows(N). *)
  Matrix.vec_mul r n

let reduces_rank ?(tol = default_tol) n r =
  if Matrix.cols n = 0 then false
  else
    let v = row_dot_cols n r in
    Array.exists (fun x -> abs_float x > tol) v

(* Pivot selection shared by every update variant: the index of the
   largest |v.(k)| over v.(0..p-1), or None when that maximum is within
   [tol] of zero (the row is dependent; the counters are bumped here so
   the callers stay branch-free). *)
let pick_pivot ~tol v p =
  let j = ref 0 in
  for k = 1 to p - 1 do
    if abs_float v.(k) > abs_float v.(!j) then j := k
  done;
  if abs_float v.(!j) <= tol then begin
    Obs.Metrics.incr c_rejections;
    None
  end
  else begin
    Obs.Metrics.incr c_incremental;
    Some !j
  end

(* The column-elimination kernel behind [update] and [update_incidence]:
   project every non-pivot column of [n] against the pivot column [j]
   and write the result straight into a fresh [nvars × (p-1)] matrix.
   Reads the pivot column in place — no [Matrix.col] scratch vector —
   and skips the inner loop entirely when a coefficient is zero (an
   incidence row misses most columns).  When the pivot column itself is
   sparse — the common case for incidence bases — only its nonzero rows
   are projected; the rest copy across unchanged, which is exactly what
   the dense arithmetic computes for them ([x −. coeff · 0 = x]). *)
let eliminate_matrix n v j =
  let nvars = Matrix.rows n and p = Matrix.cols n in
  let pivot = v.(j) in
  let nnz = ref 0 in
  for i = 0 to nvars - 1 do
    if Matrix.unsafe_get n i j <> 0.0 then incr nnz
  done;
  let sparse = 2 * !nnz < nvars in
  let idx =
    if not sparse then [||]
    else begin
      let a = Array.make (max 1 !nnz) 0 in
      let k = ref 0 in
      for i = 0 to nvars - 1 do
        if Matrix.unsafe_get n i j <> 0.0 then begin
          a.(!k) <- i;
          incr k
        end
      done;
      a
    end
  in
  let out = Matrix.make nvars (p - 1) 0.0 in
  let dst = ref 0 in
  for k = 0 to p - 1 do
    if k <> j then begin
      let coeff = v.(k) /. pivot in
      if coeff = 0.0 then
        for i = 0 to nvars - 1 do
          Matrix.unsafe_set out i !dst (Matrix.unsafe_get n i k)
        done
      else if sparse then begin
        for i = 0 to nvars - 1 do
          Matrix.unsafe_set out i !dst (Matrix.unsafe_get n i k)
        done;
        for m = 0 to !nnz - 1 do
          let i = Array.unsafe_get idx m in
          Matrix.unsafe_set out i !dst
            (Matrix.unsafe_get n i k -. (coeff *. Matrix.unsafe_get n i j))
        done
      end
      else
        for i = 0 to nvars - 1 do
          Matrix.unsafe_set out i !dst
            (Matrix.unsafe_get n i k -. (coeff *. Matrix.unsafe_get n i j))
        done;
      incr dst
    end
  done;
  out

let update_incidence ?(tol = default_tol) n idxs =
  let nvars = Matrix.rows n and p = Matrix.cols n in
  Array.iter
    (fun i ->
      if i < 0 || i >= nvars then
        invalid_arg "Nullspace.update_incidence: index out of range")
    idxs;
  if p = 0 then None
  else begin
    (* v = r · N where r is the incidence row: sum the rows of N named by
       idxs. *)
    let v = Array.make p 0.0 in
    Array.iter
      (fun i ->
        for k = 0 to p - 1 do
          v.(k) <- v.(k) +. Matrix.unsafe_get n i k
        done)
      idxs;
    match pick_pivot ~tol v p with
    | None -> None
    | Some j -> Some (eliminate_matrix n v j)
  end

let basis_of_incidence ?tol ~rows ~cols idxs =
  Obs.Metrics.incr c_recomputes;
  if cols = 0 then Matrix.make 0 0 0.0
  else if rows = 0 then Matrix.identity cols
  else
    let sp = Sparse.of_incidence ~rows ~cols idxs in
    let { Sparse_gauss.reduced; pivot_cols; rank } =
      Sparse_gauss.rref ?tol sp
    in
    extract_basis ~n:cols ~rank ~pivot_cols ~get:(fun piv fc ->
        Sparse.get reduced piv fc)

let update ?(tol = default_tol) n r =
  let nvars = Matrix.rows n and p = Matrix.cols n in
  if Array.length r <> nvars then invalid_arg "Nullspace.update: bad row";
  if p = 0 then n
  else begin
    let v = row_dot_cols n r in
    match pick_pivot ~tol v p with
    | None -> n
    | Some j -> eliminate_matrix n v j
  end

(* ------------------------------------------------------------------ *)
(* In-place tracker                                                     *)
(* ------------------------------------------------------------------ *)

(* Algorithm 1 feeds thousands of candidate rows through the update; the
   functional API above allocates an [nvars × (p-1)] matrix per accepted
   row (and a scratch pivot column per call).  The tracker instead keeps
   the basis as [p] column vectors and eliminates in place: an accepted
   row costs one pass over the touched columns and zero allocation, and
   a per-variable non-zero count (the Hamming weight Algorithm 1 sorts
   by) is maintained incrementally during the same pass. *)
(* ---- Witness prefilter ----

   A candidate row [r] is dependent iff [r · N = 0].  Testing that
   exactly costs O(nnz(r) · p); with ~98% of candidates dependent, that
   projection is where Algorithm 1 and the correlation pipelines spend
   their time.  The tracker therefore keeps [k] witness vectors
   [u_c = N · g_c] for random coefficient vectors [g_c]: since
   [r · u_c = (r · N) · g_c], a dependent row has every witness dot at
   rounding-noise scale, and the dot is a plain sum of [nnz(r)] floats.
   If all [k] dots are within the witness tolerance the row is rejected
   in O(k · nnz(r)); if any fires, the exact test runs — so a dependent
   row can never be falsely *accepted*, and an independent row is
   falsely rejected only if all [k] random projections of a vector with
   an above-tolerance entry cancel below [wtol ≪ tol] simultaneously.
   Eliminations apply the same projection to each witness as to every
   basis column ([u' = u − (r·u / pivot) · n_j]), so the invariant
   [u_c = N · g_c] is maintained in place at O(nnz(pivot column)) per
   accepted row. *)

let env_witness_k () =
  match Sys.getenv_opt "TOMO_WITNESS_K" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v >= 0 -> min v 16
      | _ -> 2)
  | None -> 2

let default_k = ref (env_witness_k ())
let default_witness_k () = !default_k
let set_default_witness_k k = default_k := min (max 0 k) 16

(* Witness coefficients are drawn from seeded streams keyed only by the
   tracker dimension and witness index, so a tracker's behaviour never
   depends on how many trackers the process created before it (streaming
   and batch runs build different numbers of trackers and must still
   make bit-identical decisions). *)
let witness_base_seed = 0x5749544e (* "WITN" *)

let draw_witness_g ~dim ~columns c =
  let rng = Rng.split_int (Rng.split_int (Rng.create witness_base_seed) dim) c in
  let g = Array.make (max 1 columns) 0.0 in
  for k = 0 to columns - 1 do
    let m = Rng.uniform rng ~lo:0.5 ~hi:1.5 in
    g.(k) <- (if Rng.bool rng ~p:0.5 then m else -.m)
  done;
  g

(* Column storage is one flat unboxed block: logical column [k] is the
   [nvars]-float slice of [colbuf] starting at [col_off.(k)].  Dropping
   a column is an O(p) shuffle of offsets (the freed slice parks at the
   tail for reuse), and the elimination loops stream contiguous floats
   instead of chasing one boxed array per column. *)
type tracker = {
  nvars : int;
  tol : float;
  wtol : float; (* witness-dot rejection threshold, ≪ tol *)
  mutable p : int;
  colbuf : float array; (* flat column block, nvars · initial-p floats *)
  col_off : int array; (* col_off.(0..p-1): base offset of column k *)
  v : float array; (* scratch for r · N, length nvars *)
  weights : int array; (* weights.(i) = #{k | |col k at row i| > tol} *)
  idx : int array; (* scratch: nonzero rows of the pivot column *)
  wit_u : float array array; (* wit_u.(c) = N · wit_g.(c), length nvars *)
  wit_g : float array array; (* coefficients, first [p] entries live *)
  wit_dot : float array; (* scratch: r · u_c for the row under test *)
}

let default_witness_tol_factor = 1e-4

let make_tracker ~tol ~witness_k ~witness_tol ~nvars ~p ~colbuf ~weights =
  let k = match witness_k with Some k -> min (max 0 k) 16 | None -> !default_k in
  let wtol =
    match witness_tol with Some w -> w | None -> tol *. default_witness_tol_factor
  in
  let col_off = Array.init (max 1 p) (fun k -> k * nvars) in
  let wit_g = Array.init k (fun c -> draw_witness_g ~dim:nvars ~columns:p c) in
  let wit_u =
    Array.init k (fun c ->
        let g = wit_g.(c) in
        let u = Array.make (max 1 nvars) 0.0 in
        for i = 0 to nvars - 1 do
          let acc = ref 0.0 in
          for kk = 0 to p - 1 do
            acc := !acc +. (g.(kk) *. colbuf.((kk * nvars) + i))
          done;
          u.(i) <- !acc
        done;
        u)
  in
  {
    nvars;
    tol;
    wtol;
    p;
    colbuf;
    col_off;
    v = Array.make (max 1 (max p nvars)) 0.0;
    weights;
    idx = Array.make (max 1 nvars) 0;
    wit_u;
    wit_g;
    wit_dot = Array.make (max 1 k) 0.0;
  }

let tracker ?(tol = default_tol) ?witness_k ?witness_tol nvars =
  if nvars < 0 then invalid_arg "Nullspace.tracker: negative dimension";
  let colbuf = Array.make (max 1 (nvars * nvars)) 0.0 in
  for k = 0 to nvars - 1 do
    colbuf.((k * nvars) + k) <- 1.0
  done;
  let weights = Array.make nvars (if 1.0 > tol then 1 else 0) in
  make_tracker ~tol ~witness_k ~witness_tol ~nvars ~p:nvars ~colbuf ~weights

let tracker_of_matrix ?(tol = default_tol) ?witness_k ?witness_tol m =
  let nvars = Matrix.rows m and p = Matrix.cols m in
  let colbuf = Array.make (max 1 (p * nvars)) 0.0 in
  for k = 0 to p - 1 do
    for i = 0 to nvars - 1 do
      colbuf.((k * nvars) + i) <- Matrix.get m i k
    done
  done;
  let weights = Array.make nvars 0 in
  for i = 0 to nvars - 1 do
    let w = ref 0 in
    for k = 0 to p - 1 do
      if abs_float colbuf.((k * nvars) + i) > tol then incr w
    done;
    weights.(i) <- !w
  done;
  make_tracker ~tol ~witness_k ~witness_tol ~nvars ~p ~colbuf ~weights

let witness_count t = Array.length t.wit_u

(* Worst absolute deviation of any maintained witness from a from-
   scratch recomputation [N · g_c] — the drift the in-place updates
   accumulate.  O(k · nvars · p); testing / diagnostics only. *)
let witness_defect t =
  let worst = ref 0.0 in
  for c = 0 to Array.length t.wit_u - 1 do
    let u = t.wit_u.(c) and g = t.wit_g.(c) in
    for i = 0 to t.nvars - 1 do
      let acc = ref 0.0 in
      for k = 0 to t.p - 1 do
        acc := !acc +. (g.(k) *. t.colbuf.(t.col_off.(k) + i))
      done;
      let d = abs_float (!acc -. u.(i)) in
      if d > !worst then worst := d
    done
  done;
  !worst

let dim t = t.p
let row_weight t i = t.weights.(i)

(* Shared in-place elimination: [t.v.(0..p-1)] holds r · N.  Consumes
   the pivot column, projects the others in place, and keeps [weights]
   current by watching each element cross the tolerance threshold.  Rows
   where the pivot column is exactly zero are untouched by the dense
   arithmetic ([x −. coeff · 0 = x], no weight transition), so when the
   pivot column is sparse — it usually is over incidence systems — only
   its nonzero rows are visited. *)
let eliminate_in_place t j =
  let p = t.p and nvars = t.nvars and tol = t.tol in
  let v = t.v in
  let pivot = v.(j) in
  let buf = t.colbuf in
  let nj = t.col_off.(j) in
  let idx = t.idx in
  let nnz = ref 0 in
  for i = 0 to nvars - 1 do
    let x = Array.unsafe_get buf (nj + i) in
    if x <> 0.0 then begin
      Array.unsafe_set idx !nnz i;
      incr nnz
    end;
    if abs_float x > tol then t.weights.(i) <- t.weights.(i) - 1
  done;
  let nnz = !nnz in
  (* Witnesses ride the same pivot-column pass: [u − (r·u / pivot) · n_j]
     is exactly the projection applied to every remaining column, so the
     invariant [u_c = N' · g_c] survives the elimination.  [wit_dot]
     holds [r · u_c] from the prefilter that ran on this row. *)
  for c = 0 to Array.length t.wit_u - 1 do
    let coeff = Array.unsafe_get t.wit_dot c /. pivot in
    if coeff <> 0.0 then begin
      let u = t.wit_u.(c) in
      for m = 0 to nnz - 1 do
        let i = Array.unsafe_get idx m in
        Array.unsafe_set u i
          (Array.unsafe_get u i -. (coeff *. Array.unsafe_get buf (nj + i)))
      done
    end;
    (* Drop the consumed coefficient, keeping [wit_g] parallel to
       [cols]. *)
    let g = t.wit_g.(c) in
    for k = j to p - 2 do
      g.(k) <- g.(k + 1)
    done
  done;
  let sparse = 2 * nnz < nvars in
  for k = 0 to p - 1 do
    if k <> j then begin
      let coeff = Array.unsafe_get v k /. pivot in
      if coeff <> 0.0 then begin
        let ck = t.col_off.(k) in
        if sparse then
          for m = 0 to nnz - 1 do
            let i = Array.unsafe_get idx m in
            let old_v = Array.unsafe_get buf (ck + i) in
            let new_v =
              old_v -. (coeff *. Array.unsafe_get buf (nj + i))
            in
            Array.unsafe_set buf (ck + i) new_v;
            let was_nz = abs_float old_v > tol
            and is_nz = abs_float new_v > tol in
            if was_nz && not is_nz then t.weights.(i) <- t.weights.(i) - 1
            else if is_nz && not was_nz then
              t.weights.(i) <- t.weights.(i) + 1
          done
        else
          for i = 0 to nvars - 1 do
            let old_v = Array.unsafe_get buf (ck + i) in
            let new_v =
              old_v -. (coeff *. Array.unsafe_get buf (nj + i))
            in
            Array.unsafe_set buf (ck + i) new_v;
            let was_nz = abs_float old_v > tol
            and is_nz = abs_float new_v > tol in
            if was_nz && not is_nz then t.weights.(i) <- t.weights.(i) - 1
            else if is_nz && not was_nz then
              t.weights.(i) <- t.weights.(i) + 1
          done
      end
    end
  done;
  (* Drop the consumed pivot column, preserving the order of the rest
     (the functional API keeps order too, so both paths yield the same
     basis).  Only offsets move — no floats are copied; the freed slice
     parks at the tail for potential reuse. *)
  for k = j to p - 2 do
    t.col_off.(k) <- t.col_off.(k + 1)
  done;
  t.col_off.(p - 1) <- nj;
  t.p <- p - 1

(* The O(k · nnz) fast path: every witness dot within [wtol] ⇒ reject
   without touching the basis.  [dot r u_c] is supplied by the caller
   (an incidence row sums [nnz] entries of [u_c]; a dense row is a full
   dot product).  Fills [t.wit_dot] for {!eliminate_in_place}. *)
let witness_rejects t ~nnz dot =
  let k = Array.length t.wit_u in
  if k = 0 then false
  else begin
    if Obs.Metrics.enabled () then
      Obs.Metrics.observe h_wit_nnz (float_of_int nnz);
    let all_small = ref true in
    for c = 0 to k - 1 do
      let d = dot t.wit_u.(c) in
      t.wit_dot.(c) <- d;
      if abs_float d > t.wtol then all_small := false
    done;
    if !all_small then begin
      Obs.Metrics.incr c_wit_rejections;
      Obs.Metrics.incr c_rejections;
      true
    end
    else begin
      Obs.Metrics.incr c_wit_passes;
      false
    end
  end

let incidence_dot idxs u =
  let acc = ref 0.0 in
  Array.iter (fun i -> acc := !acc +. Array.unsafe_get u i) idxs;
  !acc

let add_incidence t idxs =
  Array.iter
    (fun i ->
      if i < 0 || i >= t.nvars then
        invalid_arg "Nullspace.add_incidence: index out of range")
    idxs;
  let p = t.p in
  if p = 0 then false
  else if witness_rejects t ~nnz:(Array.length idxs) (incidence_dot idxs) then
    false
  else begin
    let v = t.v in
    Array.fill v 0 p 0.0;
    let buf = t.colbuf and off = t.col_off in
    Array.iter
      (fun i ->
        for k = 0 to p - 1 do
          v.(k) <-
            v.(k) +. Array.unsafe_get buf (Array.unsafe_get off k + i)
        done)
      idxs;
    match pick_pivot ~tol:t.tol v p with
    | None -> false
    | Some j ->
        eliminate_in_place t j;
        true
  end

let dense_dot ~n r u =
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (Array.unsafe_get r i *. Array.unsafe_get u i)
  done;
  !acc

let add_row t r =
  if Array.length r <> t.nvars then invalid_arg "Nullspace.add_row: bad row";
  let p = t.p in
  if p = 0 then false
  else if witness_rejects t ~nnz:t.nvars (dense_dot ~n:t.nvars r) then false
  else begin
    let v = t.v in
    let buf = t.colbuf in
    for k = 0 to p - 1 do
      let ck = t.col_off.(k) in
      let acc = ref 0.0 in
      for i = 0 to t.nvars - 1 do
        acc :=
          !acc +. (Array.unsafe_get r i *. Array.unsafe_get buf (ck + i))
      done;
      v.(k) <- !acc
    done;
    match pick_pivot ~tol:t.tol v p with
    | None -> false
    | Some j ->
        eliminate_in_place t j;
        true
  end

let to_matrix t =
  Matrix.init t.nvars t.p (fun i k -> t.colbuf.(t.col_off.(k) + i))
