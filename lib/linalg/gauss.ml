module Obs = Tomo_obs

type rref = { reduced : Matrix.t; pivot_cols : int list; rank : int }

let default_tol = 1e-10

let c_dense = Obs.Metrics.counter "dense_rref_calls"

(* The elimination runs directly on the flat row-major buffer: each row
   is a contiguous stride-[nc] slice addressed by its base offset, so
   the hot loops stream unboxed floats with no per-element bounds
   checks.  The floating-point operation sequence is exactly the one
   the boxed reference kernel performs (same pivoting, same order), so
   results are bit-identical — test/test_differential.ml holds that
   line against the naive float-array-array oracle. *)
let rref_dense ?(tol = default_tol) m =
  Obs.Metrics.incr c_dense;
  let a = Matrix.copy m in
  let nr = Matrix.rows a and nc = Matrix.cols a in
  let d = Matrix.buffer a in
  let scale = max 1.0 (Matrix.max_abs a) in
  let threshold = tol *. scale in
  let pivots = ref [] in
  let r = ref 0 in
  let j = ref 0 in
  while !r < nr && !j < nc do
    (* Partial pivoting: bring the largest entry of column !j (rows >= !r)
       to the pivot position. *)
    let best = ref !r in
    let best_abs = ref (abs_float (Array.unsafe_get d ((!r * nc) + !j))) in
    for i = !r + 1 to nr - 1 do
      let v = abs_float (Array.unsafe_get d ((i * nc) + !j)) in
      if v > !best_abs then begin
        best := i;
        best_abs := v
      end
    done;
    if !best_abs <= threshold then begin
      (* Numerically zero column below row !r: clean it and move on. *)
      for i = !r to nr - 1 do
        Array.unsafe_set d ((i * nc) + !j) 0.0
      done;
      incr j
    end
    else begin
      Matrix.swap_rows a !r !best;
      let rbase = !r * nc in
      let pivot = Array.unsafe_get d (rbase + !j) in
      for k = 0 to nc - 1 do
        Array.unsafe_set d (rbase + k)
          (Array.unsafe_get d (rbase + k) /. pivot)
      done;
      for i = 0 to nr - 1 do
        if i <> !r then begin
          let ibase = i * nc in
          let factor = Array.unsafe_get d (ibase + !j) in
          if factor <> 0.0 then
            for k = 0 to nc - 1 do
              Array.unsafe_set d (ibase + k)
                (Array.unsafe_get d (ibase + k)
                -. (factor *. Array.unsafe_get d (rbase + k)))
            done
        end
      done;
      pivots := !j :: !pivots;
      incr r;
      incr j
    end
  done;
  { reduced = a; pivot_cols = List.rev !pivots; rank = !r }

let rref_sparse ?tol m =
  let { Sparse_gauss.reduced; pivot_cols; rank } =
    Sparse_gauss.rref ?tol (Sparse.of_matrix m)
  in
  { reduced = Sparse.to_matrix reduced; pivot_cols; rank }

(* Auto-routing entry point: count the nonzeros once (the dense kernel
   scans the matrix for [max_abs] anyway) and hand incidence-sparse
   systems to the sparse kernel.  Both kernels perform the identical
   sequence of floating-point operations on nonzero entries, so callers
   cannot observe the routing except through speed. *)
let rref ?tol m =
  let nr = Matrix.rows m and nc = Matrix.cols m in
  if nr * nc < Sparse.auto_size_floor then rref_dense ?tol m
  else begin
    let nnz = ref 0 in
    for i = 0 to nr - 1 do
      for j = 0 to nc - 1 do
        if Matrix.unsafe_get m i j <> 0.0 then incr nnz
      done
    done;
    if Sparse.prefers_sparse ~rows:nr ~cols:nc ~nnz:!nnz then
      rref_sparse ?tol m
    else rref_dense ?tol m
  end

let rank ?tol m = (rref ?tol m).rank

let solve ?(tol = default_tol) a b =
  let n = Matrix.rows a in
  if Matrix.cols a <> n then invalid_arg "Gauss.solve: matrix not square";
  if Array.length b <> n then invalid_arg "Gauss.solve: size mismatch";
  let aug = Matrix.init n (n + 1) (fun i j ->
      if j < n then Matrix.get a i j else b.(i))
  in
  let { reduced; rank; _ } = rref ~tol aug in
  if rank < n then failwith "Gauss.solve: singular matrix";
  Array.init n (fun i -> Matrix.get reduced i n)

let inverse ?(tol = default_tol) a =
  let n = Matrix.rows a in
  if Matrix.cols a <> n then invalid_arg "Gauss.inverse: matrix not square";
  let aug = Matrix.init n (2 * n) (fun i j ->
      if j < n then Matrix.get a i j else if j - n = i then 1.0 else 0.0)
  in
  let { reduced; pivot_cols; rank } = rref ~tol aug in
  (* [A|I] always has full row rank; A is singular exactly when one of
     the n pivots lands in the identity half. *)
  if rank < n || List.exists (fun j -> j >= n) pivot_cols then
    failwith "Gauss.inverse: singular matrix";
  Matrix.init n n (fun i j -> Matrix.get reduced i (n + j))
