(** Conjugate-gradient least squares for sparse 0/1 systems.

    The tomography equation systems have rows that are incidence vectors:
    each row is the set of correlation-subset variables appearing in one
    equation, with all coefficients equal to 1.  CGLS solves
    [min ‖A·x − b‖₂] for such systems without ever materializing [A];
    started from [x = 0] it converges to the *minimum-norm* least-squares
    solution, whose identifiable coordinates (decided separately via
    {!Nullspace}) equal those of every other minimizer.

    The four CG work vectors are preallocated per domain and reused
    across calls (only the returned solution is freshly allocated), so
    repeated solves — one per probability computation in the experiment
    harness — do not churn the allocator, and concurrent solves from
    tomo_par workers each use their own scratch. *)

(** [solve ~n_vars ~rows ~b ?max_iter ?tol ()] where [rows.(i)] lists the
    variable indices of equation [i] (coefficient 1 each) and [b.(i)] its
    right-hand side.  Iterates until the normal-equation residual norm
    falls below [tol] (relative to its initial value, default [1e-12]) or
    [max_iter] iterations (default [4 · n_vars + 100]).
    @raise Invalid_argument on size mismatch or an out-of-range index. *)
val solve :
  n_vars:int ->
  rows:int array array ->
  b:float array ->
  ?max_iter:int ->
  ?tol:float ->
  unit ->
  float array

(** [solve_sparse ~a ~b ()] is {!solve} over a general sparse system
    [a] ({!Sparse.t}, arbitrary coefficients).  On an incidence matrix
    built with {!Sparse.of_incidence} (all coefficients exactly [1.0])
    it performs the identical floating-point operations as [solve], so
    the two entry points are interchangeable bit for bit — this is how
    the probability-computation solves route through the sparse layer.
    @raise Invalid_argument on size mismatch. *)
val solve_sparse :
  a:Sparse.t ->
  b:float array ->
  ?max_iter:int ->
  ?tol:float ->
  unit ->
  float array
