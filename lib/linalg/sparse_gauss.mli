(** Gaussian elimination over {!Sparse} storage.

    Same algorithm as {!Gauss.rref} — partial pivoting on the largest
    absolute entry of the column (selected among the stored nonzeros),
    rank decisions at a tolerance relative to the largest input entry —
    but every row operation walks only the stored entries.  The
    floating-point operations performed on nonzero entries are exactly
    the dense kernel's, and the entries the dense kernel merely copies
    (a zero in the pivot row contributes [x −. coeff ·. 0.0 = x]) are
    skipped, so the reduced matrix is bit-identical to
    {!Gauss.rref}'s up to the sign of zero entries.  On the tomography
    incidence systems (≥95% zeros at paper scale) the stored work is a
    small fraction of the dense sweep. *)

(** Result of [rref], mirroring {!Gauss.rref}. *)
type rref = {
  reduced : Sparse.t;  (** the reduced row-echelon form *)
  pivot_cols : int list;  (** pivot column indices, in row order *)
  rank : int;
}

(** Default tolerance, identical to {!Gauss.rref}'s ([1e-10]). *)
val default_tol : float

(** [rref ?tol a] computes the reduced row-echelon form of a copy of
    [a].  [tol] (default [1e-10]) scales with the largest absolute input
    entry exactly as in {!Gauss.rref}. *)
val rref : ?tol:float -> Sparse.t -> rref

(** [rank ?tol a] is the numerical rank. *)
val rank : ?tol:float -> Sparse.t -> int

(** [select_independent ?tol ~cols rows] marks the greedy in-order
    linearly independent subset of the 0/1 incidence rows [rows]
    (each an array of column indices over [cols] variables):
    [keep.(i)] is true iff row [i] is independent of rows [0..i-1] —
    exactly the rows an incremental rank test fed row by row would
    accept, computed as a single forward elimination in row space
    (no row pivoting, so the accepted set is order-determined).
    [tol] (default [1e-8], matching {!Nullspace}'s) bounds the residual
    entry magnitude treated as zero.  Used to batch Algorithm 1's
    seed phase into one elimination. *)
val select_independent :
  ?tol:float -> cols:int -> int array array -> bool array
