(** Null-space bases and the paper's incremental update (Algorithm 2).

    Algorithm 1 of the paper grows an equation system one row at a time
    and must know, after each addition, whether the candidate row
    increased the rank — equivalently, whether it shrank the null space.
    Recomputing a null-space basis from scratch on every iteration would
    be cubically expensive; Algorithm 2 instead projects the current basis
    against the new row in [O(n·p)].  Both the from-scratch construction
    and the incremental update live here. *)

(** [basis ?tol ?backend m] is an [n × p] matrix whose columns span the
    null space of the [r × n] matrix [m] ([p] = nullity).  When the null
    space is trivial the result has [0] columns.

    [backend] picks the elimination kernel: [`Auto] (default) applies
    {!Sparse.prefers_sparse} — big, sparse systems eliminate via
    {!Sparse_gauss} and extract the basis straight from the sparse
    reduced form, everything else stays on {!Gauss.rref_dense};
    [`Dense] and [`Sparse] force a kernel (benchmarks and equivalence
    tests).  All three produce the same basis bit for bit. *)
val basis :
  ?tol:float -> ?backend:[ `Auto | `Dense | `Sparse ] -> Matrix.t -> Matrix.t

(** [nullity ?tol m] is [cols (basis m)]. *)
val nullity : ?tol:float -> Matrix.t -> int

(** [in_row_space ?tol n i] decides whether the [i]-th coordinate is
    identifiable given a null-space basis [n]: true iff row [i] of [n] is
    (numerically) zero, i.e. the unit vector [eᵢ] lies in the row space of
    the original system. *)
val in_row_space : ?tol:float -> Matrix.t -> int -> bool

(** [reduces_rank ?tol n r] is true iff adding row [r] to the system whose
    null space is spanned by [n] would increase the system's rank, i.e.
    [‖r · N‖ > 0] (line 13 of Algorithm 1). *)
val reduces_rank : ?tol:float -> Matrix.t -> float array -> bool

(** [update ?tol n r] is the paper's Algorithm 2 (NullSpaceUpdate): given
    [n] ([n_vars × p]) spanning the null space of [R], returns a matrix
    spanning the null space of [R] with row [r] appended.

    If [r · N = 0] (the row is linearly dependent on the system), the
    basis is returned unchanged.  Otherwise one basis column is consumed:
    we pivot on the column [j] maximizing [|r · N_j|] (the paper uses the
    first column; pivoting is numerically safer and spans the same space)
    and project the remaining columns:
    [N' = (I − N_j · (r·N_j)⁻¹ · r) · N_{others}]. *)
val update : ?tol:float -> Matrix.t -> float array -> Matrix.t

(** [update_incidence ?tol n idxs] is {!update} specialized to an
    incidence row (coefficient 1 at each index of [idxs], 0 elsewhere) —
    the only row shape the tomography systems produce.  Returns [None]
    when the row is linearly dependent on the current system (the
    null space is unchanged), [Some n'] when it shrank it by one column.
    The dependence test costs [O(|idxs| · p)] instead of [O(n · p)]. *)
val update_incidence :
  ?tol:float -> Matrix.t -> int array -> Matrix.t option

(** {1 In-place tracker}

    The functional updates above allocate an [nvars × (p-1)] matrix per
    accepted row.  Algorithm 1 accepts hundreds of rows per selection,
    so its hot loop uses this stateful variant instead: the basis lives
    as [p] column vectors, an accepted row eliminates in place (zero
    allocation), and the per-variable non-zero count the selection loop
    sorts by (its Hamming weight) is maintained incrementally during the
    same elimination pass.  Both representations perform the identical
    sequence of floating-point operations, so a tracker fed row by row
    yields bitwise the same basis as folding {!update} /
    {!update_incidence}. *)

type tracker

(** [tracker ?tol n] starts from the identity basis: the null space of
    the empty system over [n] variables. *)
val tracker : ?tol:float -> int -> tracker

(** [tracker_of_matrix ?tol m] adopts the columns of [m] ([nvars × p])
    as the starting basis. *)
val tracker_of_matrix : ?tol:float -> Matrix.t -> tracker

(** Current nullity [p]. *)
val dim : tracker -> int

(** [row_weight t i] is the number of basis columns whose [i]-th entry
    exceeds the tolerance — Algorithm 1's SortByHammingWeight key —
    maintained incrementally, O(1) to read. *)
val row_weight : tracker -> int -> int

(** [add_incidence t idxs] applies Algorithm 2 in place for an incidence
    row.  [true] if the row was independent (nullity shrank by one),
    [false] if it was rejected as dependent. *)
val add_incidence : tracker -> int array -> bool

(** [add_row t r] is {!add_incidence} for an arbitrary dense row. *)
val add_row : tracker -> float array -> bool

(** Snapshot the current basis as an [nvars × p] matrix. *)
val to_matrix : tracker -> Matrix.t
