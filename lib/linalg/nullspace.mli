(** Null-space bases and the paper's incremental update (Algorithm 2).

    Algorithm 1 of the paper grows an equation system one row at a time
    and must know, after each addition, whether the candidate row
    increased the rank — equivalently, whether it shrank the null space.
    Recomputing a null-space basis from scratch on every iteration would
    be cubically expensive; Algorithm 2 instead projects the current basis
    against the new row in [O(n·p)].  Both the from-scratch construction
    and the incremental update live here. *)

(** [basis ?tol ?backend m] is an [n × p] matrix whose columns span the
    null space of the [r × n] matrix [m] ([p] = nullity).  When the null
    space is trivial the result has [0] columns.

    [backend] picks the elimination kernel: [`Auto] (default) applies
    {!Sparse.prefers_sparse} — big, sparse systems eliminate via
    {!Sparse_gauss} and extract the basis straight from the sparse
    reduced form, everything else stays on {!Gauss.rref_dense};
    [`Dense] and [`Sparse] force a kernel (benchmarks and equivalence
    tests).  All three produce the same basis bit for bit. *)
val basis :
  ?tol:float -> ?backend:[ `Auto | `Dense | `Sparse ] -> Matrix.t -> Matrix.t

(** [nullity ?tol m] is [cols (basis m)]. *)
val nullity : ?tol:float -> Matrix.t -> int

(** [in_row_space ?tol n i] decides whether the [i]-th coordinate is
    identifiable given a null-space basis [n]: true iff row [i] of [n] is
    (numerically) zero, i.e. the unit vector [eᵢ] lies in the row space of
    the original system. *)
val in_row_space : ?tol:float -> Matrix.t -> int -> bool

(** [reduces_rank ?tol n r] is true iff adding row [r] to the system whose
    null space is spanned by [n] would increase the system's rank, i.e.
    [‖r · N‖ > 0] (line 13 of Algorithm 1). *)
val reduces_rank : ?tol:float -> Matrix.t -> float array -> bool

(** [update ?tol n r] is the paper's Algorithm 2 (NullSpaceUpdate): given
    [n] ([n_vars × p]) spanning the null space of [R], returns a matrix
    spanning the null space of [R] with row [r] appended.

    If [r · N = 0] (the row is linearly dependent on the system), the
    basis is returned unchanged.  Otherwise one basis column is consumed:
    we pivot on the column [j] maximizing [|r · N_j|] (the paper uses the
    first column; pivoting is numerically safer and spans the same space)
    and project the remaining columns:
    [N' = (I − N_j · (r·N_j)⁻¹ · r) · N_{others}]. *)
val update : ?tol:float -> Matrix.t -> float array -> Matrix.t

(** [update_incidence ?tol n idxs] is {!update} specialized to an
    incidence row (coefficient 1 at each index of [idxs], 0 elsewhere) —
    the only row shape the tomography systems produce.  Returns [None]
    when the row is linearly dependent on the current system (the
    null space is unchanged), [Some n'] when it shrank it by one column.
    The dependence test costs [O(|idxs| · p)] instead of [O(n · p)]. *)
val update_incidence :
  ?tol:float -> Matrix.t -> int array -> Matrix.t option

(** [basis_of_incidence ?tol ~rows ~cols idxs] is the null-space basis
    of the 0/1 incidence system with [rows] rows over [cols] variables
    ([idxs.(i)] lists row [i]'s columns), eliminated in one
    {!Sparse_gauss.rref} pass instead of row-by-row updates — the
    batched seed-phase path of Algorithm 1.  [rows = 0] yields the
    identity basis. *)
val basis_of_incidence :
  ?tol:float -> rows:int -> cols:int -> int array array -> Matrix.t

(** {1 In-place tracker}

    The functional updates above allocate an [nvars × (p-1)] matrix per
    accepted row.  Algorithm 1 accepts hundreds of rows per selection,
    so its hot loop uses this stateful variant instead: the basis lives
    as [p] column vectors, an accepted row eliminates in place (zero
    allocation), and the per-variable non-zero count the selection loop
    sorts by (its Hamming weight) is maintained incrementally during the
    same elimination pass.  Both representations perform the identical
    sequence of floating-point operations, so a tracker fed row by row
    yields bitwise the same basis as folding {!update} /
    {!update_incidence}. *)

type tracker

(** {2 Witness prefilter}

    A candidate row [r] is dependent iff [r · N = 0]; testing that
    exactly costs [O(nnz(r) · p)].  The tracker additionally maintains
    [k] witness vectors [u_c = N · g_c] for seeded random coefficient
    vectors [g_c]: because [r · u_c = (r · N) · g_c], a dependent row
    has every witness dot at rounding-noise scale, and each dot is a
    plain sum of [nnz(r)] floats.  When all [k] dots are within the
    witness tolerance ([tol · 1e-4] by default, well below the noise a
    truly independent row produces), the row is rejected in
    [O(k · nnz(r))] without touching the basis; when any witness fires,
    the exact projection runs unchanged.  A dependent row therefore can
    never be falsely accepted — every acceptance is vetted by the exact
    test — and the accepted eliminations are bit-identical with the
    prefilter on or off, so a tracker at [witness_k = 0] and one at the
    default produce the same selections bit for bit (enforced by the
    qcheck parity battery and the bench startup gate).

    [k] defaults to [TOMO_WITNESS_K] (2 when unset; 0 disables the
    prefilter).  The witness coefficients are derived from seeded
    {!Tomo_util.Rng.split_int} streams keyed by the tracker dimension
    and witness index only, so decisions never depend on how many
    trackers the process created before. *)

(** Process default for [k], initialized from [TOMO_WITNESS_K]. *)
val default_witness_k : unit -> int

val set_default_witness_k : int -> unit

(** [tracker ?tol ?witness_k ?witness_tol n] starts from the identity
    basis: the null space of the empty system over [n] variables.
    [witness_k] overrides {!default_witness_k}; [witness_tol] overrides
    the witness-dot rejection threshold ([tol · 1e-4]). *)
val tracker : ?tol:float -> ?witness_k:int -> ?witness_tol:float -> int -> tracker

(** [tracker_of_matrix ?tol ?witness_k ?witness_tol m] adopts the
    columns of [m] ([nvars × p]) as the starting basis and initializes
    the witnesses to [m · g_c]. *)
val tracker_of_matrix :
  ?tol:float -> ?witness_k:int -> ?witness_tol:float -> Matrix.t -> tracker

(** Number of witness vectors this tracker maintains. *)
val witness_count : tracker -> int

(** [witness_defect t] is the largest absolute deviation of any
    maintained witness entry from a from-scratch recomputation
    [N · g_c] — the floating-point drift of the in-place updates.
    [O(k · nvars · p)]; intended for tests and diagnostics. *)
val witness_defect : tracker -> float

(** Current nullity [p]. *)
val dim : tracker -> int

(** [row_weight t i] is the number of basis columns whose [i]-th entry
    exceeds the tolerance — Algorithm 1's SortByHammingWeight key —
    maintained incrementally, O(1) to read. *)
val row_weight : tracker -> int -> int

(** [add_incidence t idxs] applies Algorithm 2 in place for an incidence
    row.  [true] if the row was independent (nullity shrank by one),
    [false] if it was rejected as dependent. *)
val add_incidence : tracker -> int array -> bool

(** [add_row t r] is {!add_incidence} for an arbitrary dense row. *)
val add_row : tracker -> float array -> bool

(** Snapshot the current basis as an [nvars × p] matrix. *)
val to_matrix : tracker -> Matrix.t
