module Obs = Tomo_obs

let c_solves = Obs.Metrics.counter "cgls_solves"
let c_iterations = Obs.Metrics.counter "cgls_iterations"
let h_residual = Obs.Metrics.histogram "cgls_final_residual"

let solve ~n_vars ~rows ~b ?max_iter ?(tol = 1e-12) () =
  let m = Array.length rows in
  if Array.length b <> m then invalid_arg "Cgls.solve: size mismatch";
  Array.iter
    (Array.iter (fun j ->
         if j < 0 || j >= n_vars then
           invalid_arg "Cgls.solve: variable index out of range"))
    rows;
  let max_iter =
    match max_iter with Some n -> n | None -> (4 * n_vars) + 100
  in
  let x = Array.make n_vars 0.0 in
  if m = 0 || n_vars = 0 then x
  else Obs.Trace.with_span "cgls.solve" @@ fun () ->
  begin
    (* A·v for incidence rows: per-row sum of selected coordinates. *)
    let apply_a v out =
      Array.iteri
        (fun i row ->
          let acc = ref 0.0 in
          Array.iter (fun j -> acc := !acc +. v.(j)) row;
          out.(i) <- !acc)
        rows
    in
    (* Aᵀ·w: scatter row values onto their variables. *)
    let apply_at w out =
      Array.fill out 0 n_vars 0.0;
      Array.iteri
        (fun i row ->
          let wi = w.(i) in
          if wi <> 0.0 then Array.iter (fun j -> out.(j) <- out.(j) +. wi) row)
        rows
    in
    let dot a b =
      let acc = ref 0.0 in
      Array.iteri (fun i ai -> acc := !acc +. (ai *. b.(i))) a;
      !acc
    in
    let r = Array.copy b in
    let s = Array.make n_vars 0.0 in
    apply_at r s;
    let p = Array.copy s in
    let q = Array.make m 0.0 in
    let gamma = ref (dot s s) in
    let target = tol *. sqrt !gamma in
    let iters = ref 0 in
    (try
       for _ = 1 to max_iter do
         if sqrt !gamma <= target || !gamma = 0.0 then raise Exit;
         incr iters;
         apply_a p q;
         let qq = dot q q in
         if qq <= 0.0 then raise Exit;
         let alpha = !gamma /. qq in
         Array.iteri (fun j pj -> x.(j) <- x.(j) +. (alpha *. pj)) p;
         Array.iteri (fun i qi -> r.(i) <- r.(i) -. (alpha *. qi)) q;
         apply_at r s;
         let gamma' = dot s s in
         let beta = gamma' /. !gamma in
         Array.iteri (fun j sj -> p.(j) <- sj +. (beta *. p.(j))) s;
         gamma := gamma'
       done
     with Exit -> ());
    Obs.Metrics.incr c_solves;
    Obs.Metrics.incr ~by:!iters c_iterations;
    if Obs.Metrics.enabled () then begin
      Obs.Metrics.observe h_residual (sqrt (dot r r));
      Obs.Trace.add_attr "iterations" (string_of_int !iters)
    end;
    x
  end
