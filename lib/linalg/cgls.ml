module Obs = Tomo_obs

let c_solves = Obs.Metrics.counter "cgls_solves"
let c_iterations = Obs.Metrics.counter "cgls_iterations"
let h_residual = Obs.Metrics.histogram "cgls_final_residual"

(* Per-domain scratch vectors, grown on demand and reused across solves:
   the experiment harness calls [solve] once per probability computation
   and previously allocated the four CG work vectors every time.  The
   buffers may be longer than the live prefix, so every loop below runs
   over explicit [m] / [n_vars] bounds.  Domain-local storage keeps
   parallel solves (tomo_par) from sharing a buffer. *)
type scratch = {
  mutable sr : float array; (* residual, length >= m *)
  mutable ss : float array; (* normal-equation residual, length >= n_vars *)
  mutable sp : float array; (* search direction, length >= n_vars *)
  mutable sq : float array; (* A·p, length >= m *)
}

let scratch_key : scratch Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { sr = [||]; ss = [||]; sp = [||]; sq = [||] })

let ensure a n = if Array.length a >= n then a else Array.make n 0.0

(* The CG iteration, abstracted over the matrix application: [solve]
   instantiates it with incidence closures (coefficient 1 per index),
   [solve_sparse] with general sparse rows.  Multiplying by a stored
   coefficient of exactly 1.0 is the identity, so an incidence system
   routed through either entry point yields bit-identical solutions. *)
let solve_core ~m ~n_vars ~apply_a ~apply_at ~b ~max_iter ~tol =
  let max_iter =
    match max_iter with Some n -> n | None -> (4 * n_vars) + 100
  in
  let x = Array.make n_vars 0.0 in
  if m = 0 || n_vars = 0 then x
  else Obs.Trace.with_span "cgls.solve" @@ fun () ->
  begin
    let ws = Domain.DLS.get scratch_key in
    ws.sr <- ensure ws.sr m;
    ws.ss <- ensure ws.ss n_vars;
    ws.sp <- ensure ws.sp n_vars;
    ws.sq <- ensure ws.sq m;
    let r = ws.sr and s = ws.ss and p = ws.sp and q = ws.sq in
    let dot a b n =
      let acc = ref 0.0 in
      for i = 0 to n - 1 do
        acc := !acc +. (Array.unsafe_get a i *. Array.unsafe_get b i)
      done;
      !acc
    in
    Array.blit b 0 r 0 m;
    apply_at r s;
    Array.blit s 0 p 0 n_vars;
    let gamma = ref (dot s s n_vars) in
    let target = tol *. sqrt !gamma in
    let iters = ref 0 in
    (try
       for _ = 1 to max_iter do
         if sqrt !gamma <= target || !gamma = 0.0 then raise Exit;
         incr iters;
         apply_a p q;
         let qq = dot q q m in
         if qq <= 0.0 then raise Exit;
         let alpha = !gamma /. qq in
         for j = 0 to n_vars - 1 do
           Array.unsafe_set x j
             (Array.unsafe_get x j +. (alpha *. Array.unsafe_get p j))
         done;
         for i = 0 to m - 1 do
           Array.unsafe_set r i
             (Array.unsafe_get r i -. (alpha *. Array.unsafe_get q i))
         done;
         apply_at r s;
         let gamma' = dot s s n_vars in
         let beta = gamma' /. !gamma in
         for j = 0 to n_vars - 1 do
           Array.unsafe_set p j
             (Array.unsafe_get s j +. (beta *. Array.unsafe_get p j))
         done;
         gamma := gamma'
       done
     with Exit -> ());
    Obs.Metrics.incr c_solves;
    Obs.Metrics.incr ~by:!iters c_iterations;
    if Obs.Metrics.enabled () then begin
      Obs.Metrics.observe h_residual (sqrt (dot r r m));
      Obs.Trace.add_attr "iterations" (string_of_int !iters)
    end;
    x
  end

let solve ~n_vars ~rows ~b ?max_iter ?(tol = 1e-12) () =
  let m = Array.length rows in
  if Array.length b <> m then invalid_arg "Cgls.solve: size mismatch";
  Array.iter
    (Array.iter (fun j ->
         if j < 0 || j >= n_vars then
           invalid_arg "Cgls.solve: variable index out of range"))
    rows;
  (* A·v for incidence rows: per-row sum of selected coordinates. *)
  let apply_a v out =
    for i = 0 to m - 1 do
      let row = Array.unsafe_get rows i in
      let acc = ref 0.0 in
      Array.iter (fun j -> acc := !acc +. Array.unsafe_get v j) row;
      Array.unsafe_set out i !acc
    done
  in
  (* Aᵀ·w: scatter row values onto their variables. *)
  let apply_at w out =
    Array.fill out 0 n_vars 0.0;
    for i = 0 to m - 1 do
      let wi = Array.unsafe_get w i in
      if wi <> 0.0 then
        Array.iter
          (fun j ->
            Array.unsafe_set out j (Array.unsafe_get out j +. wi))
          (Array.unsafe_get rows i)
    done
  in
  solve_core ~m ~n_vars ~apply_a ~apply_at ~b ~max_iter ~tol

let solve_sparse ~a ~b ?max_iter ?(tol = 1e-12) () =
  let m = Sparse.rows a and n_vars = Sparse.cols a in
  if Array.length b <> m then
    invalid_arg "Cgls.solve_sparse: size mismatch";
  (* Freeze the system into flat CSR once per solve: the CG iteration
     sweeps A hundreds of times, and the packed arrays replace two
     pointer chases per row per sweep with contiguous streaming.  Per-
     row entry order is preserved by [to_csr], so the accumulation
     order — hence every float — is identical to the row-view loops. *)
  let csr = Sparse.to_csr a in
  let rp = csr.Sparse.row_ptr
  and ci = csr.Sparse.col_idx
  and vs = csr.Sparse.values in
  let apply_a v out =
    for i = 0 to m - 1 do
      let acc = ref 0.0 in
      for k = Array.unsafe_get rp i to Array.unsafe_get rp (i + 1) - 1 do
        acc :=
          !acc
          +. (Array.unsafe_get vs k
              *. Array.unsafe_get v (Array.unsafe_get ci k))
      done;
      Array.unsafe_set out i !acc
    done
  in
  let apply_at w out =
    Array.fill out 0 n_vars 0.0;
    for i = 0 to m - 1 do
      let wi = Array.unsafe_get w i in
      if wi <> 0.0 then
        for k = Array.unsafe_get rp i to Array.unsafe_get rp (i + 1) - 1 do
          let j = Array.unsafe_get ci k in
          Array.unsafe_set out j
            (Array.unsafe_get out j +. (wi *. Array.unsafe_get vs k))
        done
    done
  in
  solve_core ~m ~n_vars ~apply_a ~apply_at ~b ~max_iter ~tol
