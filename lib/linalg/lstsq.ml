type result = { solution : float array; rank : int; residual_norm : float }

module Obs = Tomo_obs

let c_solves = Obs.Metrics.counter "lstsq_solves"
let h_residual = Obs.Metrics.histogram "lstsq_residual_norm"

let solve ?tol a b =
  if Array.length b <> Matrix.rows a then
    invalid_arg "Lstsq.solve: size mismatch";
  Obs.Trace.with_span "lstsq.solve" @@ fun () ->
  let qr = Qr.decompose ?tol a in
  let y = Qr.apply_qt qr b in
  let x = Qr.solve_r qr y in
  let r = Matrix.mul_vec a x in
  let residual = ref 0.0 in
  Array.iteri (fun i ri ->
      let d = ri -. b.(i) in
      residual := !residual +. (d *. d))
    r;
  Obs.Metrics.incr c_solves;
  Obs.Metrics.observe h_residual (sqrt !residual);
  { solution = x; rank = qr.Qr.rank; residual_norm = sqrt !residual }
