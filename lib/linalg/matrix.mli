(** Dense row-major matrices over [float].

    This is the numeric substrate for the tomography equation systems:
    0/1 incidence matrices of path sets vs. correlation subsets, their
    null spaces, and the least-squares solves that recover log
    good-probabilities.  Dimensions in this reproduction are at most a few
    thousand, so a straightforward dense representation is both simpler
    and fast enough. *)

type t

(** [make rows cols x] is a [rows × cols] matrix filled with [x]. *)
val make : int -> int -> float -> t

(** [init rows cols f] fills entry [(i, j)] with [f i j]. *)
val init : int -> int -> (int -> int -> float) -> t

(** [identity n] is the [n × n] identity. *)
val identity : int -> t

(** [of_rows rows] builds a matrix from row vectors.
    @raise Invalid_argument if rows have unequal lengths or there are no
    rows. *)
val of_rows : float array array -> t

(** [to_rows m] is the matrix as an array of fresh row arrays. *)
val to_rows : t -> float array array

val rows : t -> int
val cols : t -> int

(** [get m i j] / [set m i j x]: bounds-checked element access. *)
val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

(** [unsafe_get m i j] / [unsafe_set m i j x]: element access with no
    bounds check, for inner-loop kernels whose indices are validated
    once outside the loop (e.g. {!Nullspace}).  Out-of-range indices are
    undefined behaviour. *)
val unsafe_get : t -> int -> int -> float

val unsafe_set : t -> int -> int -> float -> unit

(** [copy m] is a deep copy. *)
val copy : t -> t

(** [row m i] is a fresh copy of row [i]. *)
val row : t -> int -> float array

(** [col m j] is a fresh copy of column [j]. *)
val col : t -> int -> float array

(** [transpose m] is a fresh transpose. *)
val transpose : t -> t

(** [mul a b] is the matrix product.  @raise Invalid_argument on inner
    dimension mismatch. *)
val mul : t -> t -> t

(** [mul_vec m v] is [m · v] as a fresh array. *)
val mul_vec : t -> float array -> float array

(** [vec_mul v m] is [vᵀ · m] as a fresh array. *)
val vec_mul : float array -> t -> float array

(** [add a b] / [sub a b] / [scale c a]: elementwise operations. *)
val add : t -> t -> t

val sub : t -> t -> t
val scale : float -> t -> t

(** [max_abs m] is the largest absolute entry (0 for empty matrices). *)
val max_abs : t -> float

(** [frobenius m] is the Frobenius norm. *)
val frobenius : t -> float

(** [equal_approx ~tol a b] is true iff dimensions match and entries agree
    within [tol]. *)
val equal_approx : tol:float -> t -> t -> bool

(** [swap_cols m j k] swaps two columns in place. *)
val swap_cols : t -> int -> int -> unit

(** [drop_col m j] is a fresh matrix without column [j]. *)
val drop_col : t -> int -> t

(** [pp] prints the matrix with aligned columns (debugging aid). *)
val pp : Format.formatter -> t -> unit
