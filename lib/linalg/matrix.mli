(** Dense row-major matrices over [float].

    This is the numeric substrate for the tomography equation systems:
    0/1 incidence matrices of path sets vs. correlation subsets, their
    null spaces, and the least-squares solves that recover log
    good-probabilities.  Storage is a single unboxed [float array] in
    row-major order (see the {e Flat-memory access} section below), so
    row traversals stream contiguous memory and kernels can take O(1)
    aliasing row views instead of copying. *)

type t

(** [make rows cols x] is a [rows × cols] matrix filled with [x]. *)
val make : int -> int -> float -> t

(** [init rows cols f] fills entry [(i, j)] with [f i j]. *)
val init : int -> int -> (int -> int -> float) -> t

(** [identity n] is the [n × n] identity. *)
val identity : int -> t

(** [of_rows rows] builds a matrix from row vectors.
    @raise Invalid_argument if rows have unequal lengths or there are no
    rows; the message carries a [file:line:] prefix naming the rejection
    site (the same shape as the {!Observations_io} loader errors). *)
val of_rows : float array array -> t

(** [to_rows m] is the matrix as an array of fresh row arrays. *)
val to_rows : t -> float array array

val rows : t -> int
val cols : t -> int

(** [get m i j] / [set m i j x]: bounds-checked element access. *)
val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

(** [unsafe_get m i j] / [unsafe_set m i j x]: element access with no
    bounds check, for inner-loop kernels whose indices are validated
    once outside the loop (e.g. {!Nullspace}).  Out-of-range indices are
    undefined behaviour. *)
val unsafe_get : t -> int -> int -> float

val unsafe_set : t -> int -> int -> float -> unit

(** [copy m] is a deep copy. *)
val copy : t -> t

(** {2 Flat-memory access}

    Storage is one unboxed [float array] in row-major order with stride
    [cols m]: entry [(i, j)] lives at index [i * cols m + j] of
    {!buffer}.  A row view is therefore just an offset into the shared
    buffer — O(1) to obtain, never copied, and {e aliasing}: writes
    through the buffer are visible in the matrix and vice versa.
    Kernels that hold a view across calls must not interleave it with
    operations that reallocate (none of the in-place operations do). *)

(** [buffer m] is the underlying flat storage (aliasing, not a copy). *)
val buffer : t -> float array

(** [stride m] is the row stride of {!buffer}, equal to [cols m]. *)
val stride : t -> int

(** [row_base m i] is the index of entry [(i, 0)] in {!buffer}. *)
val row_base : t -> int -> int

(** [row_view m i] is [(buffer m, row_base m i)]: an O(1) aliasing view
    of row [i].  Mutations through the returned buffer are visible in
    [m]; use {!row} for a fresh copy. *)
val row_view : t -> int -> float array * int

(** [swap_rows m i j] swaps two rows in place. *)
val swap_rows : t -> int -> int -> unit

(** [row m i] is a fresh copy of row [i]. *)
val row : t -> int -> float array

(** [col m j] is a fresh copy of column [j]. *)
val col : t -> int -> float array

(** [transpose m] is a fresh transpose. *)
val transpose : t -> t

(** [mul a b] is the matrix product.  @raise Invalid_argument on inner
    dimension mismatch. *)
val mul : t -> t -> t

(** [mul_vec m v] is [m · v] as a fresh array. *)
val mul_vec : t -> float array -> float array

(** [vec_mul v m] is [vᵀ · m] as a fresh array. *)
val vec_mul : float array -> t -> float array

(** [add a b] / [sub a b] / [scale c a]: elementwise operations. *)
val add : t -> t -> t

val sub : t -> t -> t
val scale : float -> t -> t

(** [max_abs m] is the largest absolute entry (0 for empty matrices). *)
val max_abs : t -> float

(** [frobenius m] is the Frobenius norm. *)
val frobenius : t -> float

(** [equal_approx ~tol a b] is true iff dimensions match and entries agree
    within [tol]. *)
val equal_approx : tol:float -> t -> t -> bool

(** [swap_cols m j k] swaps two columns in place. *)
val swap_cols : t -> int -> int -> unit

(** [drop_col m j] is a fresh matrix without column [j]. *)
val drop_col : t -> int -> t

(** [pp] prints the matrix with aligned columns (debugging aid). *)
val pp : Format.formatter -> t -> unit
