module Obs = Tomo_obs

(* Kernel observability: how often the sparse elimination runs and how
   sparse its inputs actually are, so BENCH_perf.json trajectories show
   whether the density threshold routes the paper-scale systems here. *)
let c_rrefs = Obs.Metrics.counter "sparse_rref_calls"
let h_nnz = Obs.Metrics.histogram "sparse_rref_input_nnz"
let h_density = Obs.Metrics.histogram "sparse_rref_input_density"

type rref = { reduced : Sparse.t; pivot_cols : int list; rank : int }

let default_tol = 1e-10

let rref ?(tol = default_tol) m =
  Obs.Metrics.incr c_rrefs;
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.observe h_nnz (float_of_int (Sparse.nnz m));
    Obs.Metrics.observe h_density (Sparse.density m)
  end;
  let a = Sparse.copy m in
  let nr = Sparse.rows a and nc = Sparse.cols a in
  let scale = max 1.0 (Sparse.max_abs a) in
  let threshold = tol *. scale in
  let pivots = ref [] in
  let r = ref 0 in
  let j = ref 0 in
  while !r < nr && !j < nc do
    (* Partial pivoting: largest entry of column !j among rows >= !r,
       first occurrence winning ties — the same scan order as the dense
       kernel, over stored entries only.  The probes ride each row's
       monotone cursor: !j only ever advances. *)
    let best = ref !r in
    let best_abs = ref (abs_float (Sparse.probe_mono a !r !j)) in
    for i = !r + 1 to nr - 1 do
      let v = abs_float (Sparse.probe_mono a i !j) in
      if v > !best_abs then begin
        best := i;
        best_abs := v
      end
    done;
    if !best_abs <= threshold then begin
      (* Numerically zero column below row !r: drop its entries (the
         dense kernel writes 0.0 over them) and move on. *)
      Sparse.drop_col_entries a !j ~from_row:!r;
      incr j
    end
    else begin
      Sparse.swap_rows a !r !best;
      let pivot = Sparse.get a !r !j in
      Sparse.div_row a !r pivot;
      for i = 0 to nr - 1 do
        if i <> !r then begin
          let factor = Sparse.probe_mono a i !j in
          if factor <> 0.0 then
            Sparse.sub_scaled_row a ~dst:i ~src:!r ~coeff:factor
        end
      done;
      pivots := !j :: !pivots;
      incr r;
      incr j
    end
  done;
  { reduced = a; pivot_cols = List.rev !pivots; rank = !r }

let rank ?tol m = (rref ?tol m).rank
