module Obs = Tomo_obs

(* Kernel observability: how often the sparse elimination runs and how
   sparse its inputs actually are, so BENCH_perf.json trajectories show
   whether the density threshold routes the paper-scale systems here. *)
let c_rrefs = Obs.Metrics.counter "sparse_rref_calls"
let h_nnz = Obs.Metrics.histogram "sparse_rref_input_nnz"
let h_density = Obs.Metrics.histogram "sparse_rref_input_density"

type rref = { reduced : Sparse.t; pivot_cols : int list; rank : int }

let default_tol = 1e-10

let rref ?(tol = default_tol) m =
  Obs.Metrics.incr c_rrefs;
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.observe h_nnz (float_of_int (Sparse.nnz m));
    Obs.Metrics.observe h_density (Sparse.density m)
  end;
  let a = Sparse.copy m in
  let nr = Sparse.rows a and nc = Sparse.cols a in
  let scale = max 1.0 (Sparse.max_abs a) in
  let threshold = tol *. scale in
  let pivots = ref [] in
  let r = ref 0 in
  let j = ref 0 in
  while !r < nr && !j < nc do
    (* Partial pivoting: largest entry of column !j among rows >= !r,
       first occurrence winning ties — the same scan order as the dense
       kernel, over stored entries only.  The probes ride each row's
       monotone cursor: !j only ever advances. *)
    let best = ref !r in
    let best_abs = ref (abs_float (Sparse.probe_mono a !r !j)) in
    for i = !r + 1 to nr - 1 do
      let v = abs_float (Sparse.probe_mono a i !j) in
      if v > !best_abs then begin
        best := i;
        best_abs := v
      end
    done;
    if !best_abs <= threshold then begin
      (* Numerically zero column below row !r: drop its entries (the
         dense kernel writes 0.0 over them) and move on. *)
      Sparse.drop_col_entries a !j ~from_row:!r;
      incr j
    end
    else begin
      Sparse.swap_rows a !r !best;
      let pivot = Sparse.get a !r !j in
      Sparse.div_row a !r pivot;
      for i = 0 to nr - 1 do
        if i <> !r then begin
          let factor = Sparse.probe_mono a i !j in
          if factor <> 0.0 then
            Sparse.sub_scaled_row a ~dst:i ~src:!r ~coeff:factor
        end
      done;
      pivots := !j :: !pivots;
      incr r;
      incr j
    end
  done;
  { reduced = a; pivot_cols = List.rev !pivots; rank = !r }

let rank ?tol m = (rref ?tol m).rank

(* Greedy in-order independence over 0/1 incidence rows: [keep.(i)] is
   true iff row [i] is linearly independent of rows [0..i-1] — the set
   an incremental rank test (Algorithm 2 fed row by row) would accept,
   computed here as one forward elimination in row space.  Accepted
   rows are reduced against the pivot rows gathered so far and stored
   sparsely, normalized to a unit leading entry; each incoming row
   costs O(cols + fill) instead of O(cols · nullity).  No row swaps:
   pivot rows keep arrival order, which is what makes the accepted set
   the *greedy* one rather than a pivoting-dependent one. *)
let select_independent ?(tol = 1e-8) ~cols rows =
  let nr = Array.length rows in
  let keep = Array.make nr false in
  if cols > 0 then begin
    Array.iter
      (fun idxs ->
        Array.iter
          (fun j ->
            if j < 0 || j >= cols then
              invalid_arg "Sparse_gauss.select_independent: index out of range")
          idxs)
      rows;
    let scratch = Array.make cols 0.0 in
    let mark = Array.make cols false in
    let touched = Array.make cols 0 in
    let nt = ref 0 in
    let touch j =
      if not mark.(j) then begin
        mark.(j) <- true;
        touched.(!nt) <- j;
        incr nt
      end
    in
    (* piv_cols.(j) / piv_vals.(j): the pivot row whose leading column
       is [j], as parallel (column, value) arrays with value 1 at [j]. *)
    let piv_cols : int array array = Array.make cols [||] in
    let piv_vals : float array array = Array.make cols [||] in
    let has_piv = Array.make cols false in
    for ri = 0 to nr - 1 do
      Array.iter
        (fun j ->
          touch j;
          scratch.(j) <- scratch.(j) +. 1.0)
        rows.(ri);
      let lead = ref (-1) in
      let j = ref 0 in
      while !lead < 0 && !j < cols do
        let x = scratch.(!j) in
        if mark.(!j) && x <> 0.0 then begin
          if has_piv.(!j) then begin
            (* Eliminate against the stored pivot row; its unit leading
               entry makes the cancellation at column !j exact. *)
            let pc = piv_cols.(!j) and pv = piv_vals.(!j) in
            for m = 0 to Array.length pc - 1 do
              let c = Array.unsafe_get pc m in
              touch c;
              scratch.(c) <- scratch.(c) -. (x *. Array.unsafe_get pv m)
            done;
            scratch.(!j) <- 0.0
          end
          else if abs_float x > tol then lead := !j
          else scratch.(!j) <- 0.0
        end;
        if !lead < 0 then incr j
      done;
      if !lead >= 0 then begin
        keep.(ri) <- true;
        let lead = !lead in
        let pivot = scratch.(lead) in
        let nnz = ref 0 in
        for c = lead to cols - 1 do
          if mark.(c) && scratch.(c) <> 0.0 then incr nnz
        done;
        let pc = Array.make !nnz 0 and pv = Array.make !nnz 0.0 in
        let m = ref 0 in
        for c = lead to cols - 1 do
          if mark.(c) && scratch.(c) <> 0.0 then begin
            pc.(!m) <- c;
            pv.(!m) <- scratch.(c) /. pivot;
            incr m
          end
        done;
        piv_cols.(lead) <- pc;
        piv_vals.(lead) <- pv;
        has_piv.(lead) <- true
      end;
      (* Reset the scratch row for the next candidate. *)
      for m = 0 to !nt - 1 do
        let c = touched.(m) in
        scratch.(c) <- 0.0;
        mark.(c) <- false
      done;
      nt := 0
    done
  end;
  keep
