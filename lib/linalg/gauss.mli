(** Gaussian elimination: reduced row-echelon form, rank, and exact solves
    of square systems.

    Pivoting is partial (largest absolute entry in the column) and rank
    decisions use a tolerance relative to the largest entry encountered,
    which is appropriate for the 0/1 incidence matrices produced by the
    tomography equation builder. *)

(** Result of [rref]. *)
type rref = {
  reduced : Matrix.t;  (** the reduced row-echelon form *)
  pivot_cols : int list;  (** pivot column indices, in row order *)
  rank : int;
}

(** Default pivot tolerance ([1e-10]), shared with
    {!Sparse_gauss.rref}. *)
val default_tol : float

(** [rref ?tol m] computes the reduced row-echelon form.  [tol] (default
    [1e-10]) is the relative threshold below which a pivot candidate is
    treated as zero.

    Routing: matrices with at least {!Sparse.auto_size_floor} entries
    whose density is at or below {!Sparse.density_threshold} are
    eliminated by the sparse kernel ({!Sparse_gauss.rref}); everything
    else walks the dense rows.  Both kernels perform the identical
    floating-point operations on nonzero entries, so the result is the
    same bit for bit (up to the sign of zero entries) whichever path
    runs. *)
val rref : ?tol:float -> Matrix.t -> rref

(** [rref_dense ?tol m] forces the dense kernel (benchmarks and
    equivalence tests). *)
val rref_dense : ?tol:float -> Matrix.t -> rref

(** [rref_sparse ?tol m] forces the sparse kernel regardless of density:
    converts, eliminates via {!Sparse_gauss.rref}, converts back. *)
val rref_sparse : ?tol:float -> Matrix.t -> rref

(** [rank ?tol m] is the numerical rank. *)
val rank : ?tol:float -> Matrix.t -> int

(** [solve ?tol a b] solves the square system [a · x = b].
    @raise Invalid_argument if [a] is not square or sizes mismatch.
    @raise Failure if [a] is singular at tolerance [tol]. *)
val solve : ?tol:float -> Matrix.t -> float array -> float array

(** [inverse ?tol a] is the inverse of a square matrix.
    @raise Failure if singular. *)
val inverse : ?tol:float -> Matrix.t -> Matrix.t
