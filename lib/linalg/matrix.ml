type t = { r : int; c : int; data : float array }

let make r c x =
  if r < 0 || c < 0 then invalid_arg "Matrix.make: negative dimension";
  { r; c; data = Array.make (r * c) x }

let init r c f =
  if r < 0 || c < 0 then invalid_arg "Matrix.init: negative dimension";
  let data = Array.make (r * c) 0.0 in
  for i = 0 to r - 1 do
    for j = 0 to c - 1 do
      data.((i * c) + j) <- f i j
    done
  done;
  { r; c; data }

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

(* Diagnostics in the same [file:line: message] shape as the
   Observations_io loaders, so a bad fixture names its rejection site. *)
let fail_at (file, line, _, _) msg =
  invalid_arg (Printf.sprintf "%s:%d: %s" file line msg)

let of_rows rows_arr =
  let r = Array.length rows_arr in
  if r = 0 then
    fail_at __POS__
      "Matrix.of_rows: empty row array — the column count cannot be \
       inferred (use Matrix.make 0 c for a 0-row matrix)";
  let c = Array.length rows_arr.(0) in
  Array.iteri
    (fun i row ->
      if Array.length row <> c then
        fail_at __POS__
          (Printf.sprintf
             "Matrix.of_rows: ragged rows — row %d has %d columns, row 0 \
              has %d"
             i (Array.length row) c))
    rows_arr;
  init r c (fun i j -> rows_arr.(i).(j))

let rows m = m.r
let cols m = m.c

let check m i j =
  if i < 0 || i >= m.r || j < 0 || j >= m.c then
    invalid_arg "Matrix: index out of range"

let get m i j =
  check m i j;
  m.data.((i * m.c) + j)

let set m i j x =
  check m i j;
  m.data.((i * m.c) + j) <- x

let unsafe_get m i j = Array.unsafe_get m.data ((i * m.c) + j)
let unsafe_set m i j x = Array.unsafe_set m.data ((i * m.c) + j) x

let copy m = { m with data = Array.copy m.data }

(* Flat-memory access: rows live contiguously at stride [cols m] inside
   one unboxed float array, so a "row view" is just (buffer, offset) —
   O(1), no copy, aliasing the matrix.  Kernels (Gauss, CGLS, the
   differential harness) fetch [buffer] once and index rows by
   [row_base]; mutating through the buffer mutates the matrix. *)
let buffer m = m.data
let stride m = m.c

let row_base m i =
  if i < 0 || i >= m.r then invalid_arg "Matrix.row_base: out of range";
  i * m.c

let row_view m i = (m.data, row_base m i)

let swap_rows m i j =
  if i < 0 || i >= m.r || j < 0 || j >= m.r then
    invalid_arg "Matrix.swap_rows: out of range";
  if i <> j then begin
    let a = i * m.c and b = j * m.c in
    for k = 0 to m.c - 1 do
      let tmp = Array.unsafe_get m.data (a + k) in
      Array.unsafe_set m.data (a + k) (Array.unsafe_get m.data (b + k));
      Array.unsafe_set m.data (b + k) tmp
    done
  end

let row m i =
  if i < 0 || i >= m.r then invalid_arg "Matrix.row: out of range";
  Array.sub m.data (i * m.c) m.c

let col m j =
  if j < 0 || j >= m.c then invalid_arg "Matrix.col: out of range";
  Array.init m.r (fun i -> m.data.((i * m.c) + j))

let to_rows m = Array.init m.r (row m)
let transpose m = init m.c m.r (fun i j -> m.data.((j * m.c) + i))

let mul a b =
  if a.c <> b.r then invalid_arg "Matrix.mul: dimension mismatch";
  let out = make a.r b.c 0.0 in
  for i = 0 to a.r - 1 do
    for k = 0 to a.c - 1 do
      let aik = a.data.((i * a.c) + k) in
      if aik <> 0.0 then
        for j = 0 to b.c - 1 do
          out.data.((i * b.c) + j) <-
            out.data.((i * b.c) + j) +. (aik *. b.data.((k * b.c) + j))
        done
    done
  done;
  out

let mul_vec m v =
  if Array.length v <> m.c then invalid_arg "Matrix.mul_vec: length mismatch";
  Array.init m.r (fun i ->
      let acc = ref 0.0 in
      for j = 0 to m.c - 1 do
        acc := !acc +. (m.data.((i * m.c) + j) *. v.(j))
      done;
      !acc)

let vec_mul v m =
  if Array.length v <> m.r then invalid_arg "Matrix.vec_mul: length mismatch";
  Array.init m.c (fun j ->
      let acc = ref 0.0 in
      for i = 0 to m.r - 1 do
        acc := !acc +. (v.(i) *. m.data.((i * m.c) + j))
      done;
      !acc)

let elementwise name f a b =
  if a.r <> b.r || a.c <> b.c then
    invalid_arg (name ^ ": dimension mismatch");
  { a with data = Array.mapi (fun i x -> f x b.data.(i)) a.data }

let add a b = elementwise "Matrix.add" ( +. ) a b
let sub a b = elementwise "Matrix.sub" ( -. ) a b
let scale c m = { m with data = Array.map (fun x -> c *. x) m.data }

let max_abs m =
  Array.fold_left (fun acc x -> max acc (abs_float x)) 0.0 m.data

let frobenius m =
  sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 m.data)

let equal_approx ~tol a b =
  a.r = b.r && a.c = b.c
  && Array.for_all2 (fun x y -> abs_float (x -. y) <= tol) a.data b.data

let swap_cols m j k =
  if j < 0 || j >= m.c || k < 0 || k >= m.c then
    invalid_arg "Matrix.swap_cols: out of range";
  if j <> k then
    for i = 0 to m.r - 1 do
      let tmp = m.data.((i * m.c) + j) in
      m.data.((i * m.c) + j) <- m.data.((i * m.c) + k);
      m.data.((i * m.c) + k) <- tmp
    done

let drop_col m j =
  if j < 0 || j >= m.c then invalid_arg "Matrix.drop_col: out of range";
  init m.r (m.c - 1) (fun i k ->
      if k < j then m.data.((i * m.c) + k) else m.data.((i * m.c) + k + 1))

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.r - 1 do
    Format.fprintf ppf "[";
    for j = 0 to m.c - 1 do
      Format.fprintf ppf "%8.4f%s" m.data.((i * m.c) + j)
        (if j = m.c - 1 then "" else " ")
    done;
    Format.fprintf ppf "]";
    if i < m.r - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
