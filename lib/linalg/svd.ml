type t = { u : Matrix.t; sigma : float array; v : Matrix.t }

module Obs = Tomo_obs

let c_decompositions = Obs.Metrics.counter "svd_decompositions"
let c_sweeps = Obs.Metrics.counter "svd_jacobi_sweeps"

(* One-sided Jacobi: rotate column pairs of a working copy W (initially
   A) and accumulate the rotations in V, until all column pairs are
   numerically orthogonal. Then sigma_j = ||W_j|| and U_j = W_j/sigma_j. *)
let decompose ?(eps = 1e-12) ?(max_sweeps = 60) a =
  let m = Matrix.rows a and n = Matrix.cols a in
  if m < n then invalid_arg "Svd.decompose: need rows >= cols";
  Obs.Trace.with_span "svd.decompose" @@ fun () ->
  let w = Matrix.copy a in
  let v = Matrix.identity n in
  let col_dot j k =
    let acc = ref 0.0 in
    for i = 0 to m - 1 do
      acc := !acc +. (Matrix.get w i j *. Matrix.get w i k)
    done;
    !acc
  in
  let rotate c s j k =
    (* columns (j,k) <- (c·j - s·k, s·j + c·k) in both W and V *)
    for i = 0 to m - 1 do
      let wj = Matrix.get w i j and wk = Matrix.get w i k in
      Matrix.set w i j ((c *. wj) -. (s *. wk));
      Matrix.set w i k ((s *. wj) +. (c *. wk))
    done;
    for i = 0 to n - 1 do
      let vj = Matrix.get v i j and vk = Matrix.get v i k in
      Matrix.set v i j ((c *. vj) -. (s *. vk));
      Matrix.set v i k ((s *. vj) +. (c *. vk))
    done
  in
  let converged = ref false and sweeps = ref 0 in
  while (not !converged) && !sweeps < max_sweeps do
    incr sweeps;
    converged := true;
    for j = 0 to n - 2 do
      for k = j + 1 to n - 1 do
        let ajj = col_dot j j and akk = col_dot k k and ajk = col_dot j k in
        if abs_float ajk > eps *. sqrt (ajj *. akk) && ajk <> 0.0 then begin
          converged := false;
          (* Jacobi rotation zeroing the (j,k) inner product. *)
          let tau = (akk -. ajj) /. (2.0 *. ajk) in
          let t =
            let sign = if tau >= 0.0 then 1.0 else -1.0 in
            sign /. (abs_float tau +. sqrt (1.0 +. (tau *. tau)))
          in
          let c = 1.0 /. sqrt (1.0 +. (t *. t)) in
          let s = c *. t in
          rotate c s j k
        end
      done
    done
  done;
  Obs.Metrics.incr c_decompositions;
  Obs.Metrics.incr ~by:!sweeps c_sweeps;
  let sigma = Array.init n (fun j -> sqrt (max 0.0 (col_dot j j))) in
  (* Sort singular values descending, permuting W's and V's columns. *)
  let order = Array.init n (fun j -> j) in
  Array.sort (fun a b -> compare sigma.(b) sigma.(a)) order;
  let sigma_sorted = Array.map (fun j -> sigma.(j)) order in
  let u = Matrix.make m n 0.0 in
  let v_sorted = Matrix.make n n 0.0 in
  Array.iteri
    (fun dst src ->
      let s = sigma.(src) in
      for i = 0 to m - 1 do
        Matrix.set u i dst
          (if s > 0.0 then Matrix.get w i src /. s else 0.0)
      done;
      for i = 0 to n - 1 do
        Matrix.set v_sorted i dst (Matrix.get v i src)
      done)
    order;
  { u; sigma = sigma_sorted; v = v_sorted }

let reconstruct t =
  let n = Array.length t.sigma in
  let scaled =
    Matrix.init (Matrix.rows t.u) n (fun i j ->
        Matrix.get t.u i j *. t.sigma.(j))
  in
  Matrix.mul scaled (Matrix.transpose t.v)

let rank ?(tol = 1e-8) t =
  let top = Array.fold_left max 0.0 t.sigma in
  if top = 0.0 then 0
  else
    Array.fold_left
      (fun acc s -> if s > tol *. top then acc + 1 else acc)
      0 t.sigma

let nullspace_basis ?tol t =
  let r = rank ?tol t in
  let n = Array.length t.sigma in
  Matrix.init n (n - r) (fun i j -> Matrix.get t.v i (r + j))

let condition t =
  let top = Array.fold_left max 0.0 t.sigma in
  let bottom =
    Array.fold_left
      (fun acc s -> if s > 0.0 then min acc s else acc)
      infinity t.sigma
  in
  if top = 0.0 then 0.0
  else if Array.exists (fun s -> s = 0.0) t.sigma then infinity
  else top /. bottom
