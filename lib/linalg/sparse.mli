(** Sparse row-compressed matrices over [float].

    The incidence systems driving the tomography pipeline are ≥95% zeros
    at paper scale: each equation touches the handful of
    correlation-subset variables its path set induces, out of hundreds.
    This module stores each row as parallel [(col, value)] arrays sorted
    by column with an explicit live-prefix length (per-row nnz), so the
    elimination kernels ({!Sparse_gauss}) touch only stored entries.

    Invariants: within a row, columns are strictly increasing over the
    live prefix and stored values are never exactly [0.0] (an entry that
    cancels to zero is dropped, matching what the dense kernels compute
    for it).  All operations preserve these invariants. *)

type t

(** [create rows cols] is an all-zero matrix (every row empty). *)
val create : int -> int -> t

(** [of_matrix m] stores the entries of [m] that are not exactly [0.0]. *)
val of_matrix : Matrix.t -> t

(** [to_matrix a] is the dense round-trip. *)
val to_matrix : t -> Matrix.t

(** [of_incidence ~rows ~cols idxs] builds the 0/1 incidence matrix whose
    row [i] has coefficient [1.0] at each index of [idxs.(i)].  Indices
    may be unsorted but must be distinct and in range.
    @raise Invalid_argument on an out-of-range index. *)
val of_incidence : rows:int -> cols:int -> int array array -> t

val rows : t -> int
val cols : t -> int

(** [copy a] is a deep copy. *)
val copy : t -> t

(** [get a i j] is the entry at [(i, j)] ([0.0] when unstored);
    bounds-checked, O(log row-nnz). *)
val get : t -> int -> int -> float

(** [row_nnz a i] is the number of stored entries of row [i]. *)
val row_nnz : t -> int -> int

(** [nnz a] is the total number of stored entries. *)
val nnz : t -> int

(** [density a] is [nnz / (rows · cols)] ([0.0] for empty shapes). *)
val density : t -> float

(** [max_abs a] is the largest absolute stored entry (0 when empty). *)
val max_abs : t -> float

(** [iter_row a i f] applies [f col value] over the stored entries of row
    [i] in increasing column order. *)
val iter_row : t -> int -> (int -> float -> unit) -> unit

(** [probe_mono a i j] is [get a i j] for elimination-kernel loops whose
    probed column only ever advances: each row resumes the scan from a
    cursor, making the probe amortized O(1).  Contract: per row,
    successive calls must use non-decreasing [j] (any in-place mutation
    of the row resets its cursor and re-establishes the invariant
    lazily).  No bounds checks. *)
val probe_mono : t -> int -> int -> float

(** [row_view a i] is [(cols, vals, nnz)]: the row's live arrays, of
    which the first [nnz] entries are the stored row.  Shared with the
    matrix, not copied — callers must not mutate.  For inner-loop
    kernels ({!Cgls}) whose indices are validated once outside the
    loop. *)
val row_view : t -> int -> int array * float array * int

(** {1 Frozen flat CSR snapshot}

    Read-only kernels that sweep an unchanging system many times (CGLS
    runs hundreds of A·v / Aᵀ·w passes per solve) want the classic flat
    CSR layout: every stored column and value packed into two contiguous
    unboxed arrays, rows delimited by [row_ptr].  The snapshot is
    decoupled from the mutable matrix — later mutations of [t] do not
    show through. *)
type csr = private {
  csr_rows : int;
  csr_cols : int;
  row_ptr : int array;  (** length [csr_rows + 1]; row [i] occupies
                            [row_ptr.(i) .. row_ptr.(i+1) - 1] *)
  col_idx : int array;  (** row-major column indices, per-row ascending *)
  values : float array;  (** parallel to [col_idx] *)
}

(** [to_csr a] snapshots [a] into flat CSR form.  Per-row entry order is
    preserved, so kernels that switch from {!row_view} loops to the flat
    arrays perform the identical floating-point operation sequence. *)
val to_csr : t -> csr

(** [swap_rows a i j] exchanges two rows in place, O(1). *)
val swap_rows : t -> int -> int -> unit

(** [scale_row a i s] multiplies row [i] by [s] in place (entries that
    underflow to exactly [0.0] are dropped). *)
val scale_row : t -> int -> float -> unit

(** [div_row a i s] divides row [i] by [s] in place — the pivot
    normalisation step.  Kept distinct from [scale_row (1/s)] because
    [x /. s] and [x *. (1 /. s)] differ in the last ulp, and the sparse
    kernel must reproduce the dense kernel's division bit for bit. *)
val div_row : t -> int -> float -> unit

(** [sub_scaled_row a ~dst ~src ~coeff] performs the elimination step
    [row_dst ← row_dst − coeff · row_src] in place, merging the two
    structures.  The arithmetic on stored entries is exactly the dense
    kernel's [x −. (coeff ·. y)], so results are bit-identical to the
    dense path (entries the dense code leaves untouched are zeros on both
    sides).  The merge runs through a per-matrix scratch buffer recycled
    by pointer swap, so steady-state elimination allocates nothing. *)
val sub_scaled_row : t -> dst:int -> src:int -> coeff:float -> unit

(** [drop_col_entries a j ~from_row] removes the column-[j] entry of every
    row [i ≥ from_row] — the sparse analogue of the dense kernel zeroing
    a numerically dead pivot column. *)
val drop_col_entries : t -> int -> from_row:int -> unit

(** {1 Routing policy}

    The dense entry points ({!Gauss.rref}, {!Nullspace.basis}) switch to
    the sparse kernel automatically when the input is big enough for the
    asymptotics to win and sparse enough for the stored work to be small.
    The density threshold is process-global: settable here, initialised
    from [TOMO_SPARSE_THRESHOLD] (a float in [0, 1]; [0] disables the
    sparse path entirely). *)

(** Matrices with fewer than [auto_size_floor] entries always stay on the
    dense kernel — below it the dense sweep is cache-resident and the
    sparse bookkeeping is pure overhead. *)
val auto_size_floor : int

(** Current density threshold (default [0.25]): auto-routed inputs take
    the sparse kernel when [density ≤ threshold]. *)
val density_threshold : unit -> float

(** [set_density_threshold t] clamps [t] to [0, 1] and installs it. *)
val set_density_threshold : float -> unit

(** [prefers_sparse ~rows ~cols ~nnz] is the routing predicate used by
    the auto entry points. *)
val prefers_sparse : rows:int -> cols:int -> nnz:int -> bool

(** [pp] prints stored entries as [(i, j) = v] lines (debugging aid). *)
val pp : Format.formatter -> t -> unit
