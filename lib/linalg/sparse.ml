type row = {
  mutable nnz : int;
  mutable cols : int array; (* strictly increasing over cols.(0..nnz-1) *)
  mutable vals : float array; (* never exactly 0.0 in the live prefix *)
  mutable cursor : int; (* resume point for [probe_mono]; see below *)
}

type t = {
  r : int;
  c : int;
  rows : row array;
  (* Merge scratch for [sub_scaled_row], grown on demand and recycled
     by pointer swap with the destination row, so the elimination inner
     loop allocates nothing once the buffers have warmed up.  Per
     matrix, like every other mutation right: a [t] is only ever
     mutated from one domain. *)
  mutable sc : int array;
  mutable sv : float array;
}

let empty_row () = { nnz = 0; cols = [||]; vals = [||]; cursor = 0 }

let create r c =
  if r < 0 || c < 0 then invalid_arg "Sparse.create: negative dimension";
  {
    r;
    c;
    rows = Array.init r (fun _ -> empty_row ());
    sc = [||];
    sv = [||];
  }

let rows a = a.r
let cols a = a.c

let of_matrix m =
  let r = Matrix.rows m and c = Matrix.cols m in
  let a = create r c in
  (* Single pass per row through shared scratch. *)
  let sc = Array.make (max 1 c) 0 and sv = Array.make (max 1 c) 0.0 in
  for i = 0 to r - 1 do
    let n = ref 0 in
    for j = 0 to c - 1 do
      let v = Matrix.unsafe_get m i j in
      if v <> 0.0 then begin
        Array.unsafe_set sc !n j;
        Array.unsafe_set sv !n v;
        incr n
      end
    done;
    if !n > 0 then
      a.rows.(i) <-
        {
          nnz = !n;
          cols = Array.sub sc 0 !n;
          vals = Array.sub sv 0 !n;
          cursor = 0;
        }
  done;
  a

let to_matrix a =
  let m = Matrix.make a.r a.c 0.0 in
  for i = 0 to a.r - 1 do
    let row = a.rows.(i) in
    for k = 0 to row.nnz - 1 do
      Matrix.unsafe_set m i row.cols.(k) row.vals.(k)
    done
  done;
  m

let of_incidence ~rows:r ~cols:c idxs =
  if Array.length idxs <> r then
    invalid_arg "Sparse.of_incidence: row count mismatch";
  let a = create r c in
  Array.iteri
    (fun i idx ->
      Array.iter
        (fun j ->
          if j < 0 || j >= c then
            invalid_arg "Sparse.of_incidence: index out of range")
        idx;
      let n = Array.length idx in
      if n > 0 then begin
        let cs = Array.copy idx in
        let sorted = ref true in
        for k = 1 to n - 1 do
          if cs.(k - 1) >= cs.(k) then sorted := false
        done;
        if not !sorted then Array.sort compare cs;
        for k = 1 to n - 1 do
          if cs.(k - 1) = cs.(k) then
            invalid_arg "Sparse.of_incidence: duplicate index"
        done;
        a.rows.(i) <-
          { nnz = n; cols = cs; vals = Array.make n 1.0; cursor = 0 }
      end)
    idxs;
  a

let copy a =
  {
    a with
    rows =
      Array.map
        (fun row ->
          {
            nnz = row.nnz;
            cols = Array.sub row.cols 0 row.nnz;
            vals = Array.sub row.vals 0 row.nnz;
            cursor = 0;
          })
        a.rows;
    (* Private scratch: sharing the merge buffers across copies would
       let two matrices on two domains race on them. *)
    sc = [||];
    sv = [||];
  }

(* Index of column [j] in the live prefix of [row], or -1.  The range
   precheck matters: the elimination kernel probes every row once per
   pivot column, and on banded systems almost every probe misses the
   row's column span entirely. *)
let find_col row j =
  if
    row.nnz = 0
    || j < Array.unsafe_get row.cols 0
    || j > Array.unsafe_get row.cols (row.nnz - 1)
  then -1
  else begin
    let lo = ref 0 and hi = ref (row.nnz - 1) and found = ref (-1) in
    while !found < 0 && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let cm = Array.unsafe_get row.cols mid in
      if cm = j then found := mid
      else if cm < j then lo := mid + 1
      else hi := mid - 1
    done;
    !found
  end

let get a i j =
  if i < 0 || i >= a.r || j < 0 || j >= a.c then
    invalid_arg "Sparse: index out of range";
  let row = a.rows.(i) in
  let k = find_col row j in
  if k < 0 then 0.0 else row.vals.(k)

(* Monotone probe for the elimination kernel: the pivot column only ever
   advances, so each row keeps a cursor into its sorted column list and
   resumes from it — amortized O(1) per probe against O(log nnz) for
   [get].  Contract: per row, successive [probe_mono] calls use
   non-decreasing [j]; any mutation of the row resets its cursor, after
   which the lazy re-advance restores the invariant. *)
let probe_mono a i j =
  let row = Array.unsafe_get a.rows i in
  let n = row.nnz in
  let c = ref row.cursor in
  while !c < n && Array.unsafe_get row.cols !c < j do
    incr c
  done;
  row.cursor <- !c;
  if !c < n && Array.unsafe_get row.cols !c = j then
    Array.unsafe_get row.vals !c
  else 0.0

let row_nnz a i =
  if i < 0 || i >= a.r then invalid_arg "Sparse.row_nnz: out of range";
  a.rows.(i).nnz

let nnz a = Array.fold_left (fun acc row -> acc + row.nnz) 0 a.rows

let density a =
  let total = a.r * a.c in
  if total = 0 then 0.0 else float_of_int (nnz a) /. float_of_int total

let max_abs a =
  let best = ref 0.0 in
  Array.iter
    (fun row ->
      for k = 0 to row.nnz - 1 do
        let v = abs_float (Array.unsafe_get row.vals k) in
        if v > !best then best := v
      done)
    a.rows;
  !best

let iter_row a i f =
  if i < 0 || i >= a.r then invalid_arg "Sparse.iter_row: out of range";
  let row = a.rows.(i) in
  for k = 0 to row.nnz - 1 do
    f row.cols.(k) row.vals.(k)
  done

let row_view a i =
  if i < 0 || i >= a.r then invalid_arg "Sparse.row_view: out of range";
  let row = a.rows.(i) in
  (row.cols, row.vals, row.nnz)

(* ------------------------------------------------------------------ *)
(* Frozen flat CSR snapshot                                            *)
(* ------------------------------------------------------------------ *)

(* The mutable per-row representation above is what elimination needs
   (O(1) row swaps, fill-in per row); iteration-heavy read-only kernels
   (CGLS runs hundreds of passes over an unchanging system) want the
   classic flat CSR instead: all columns and values packed into two
   contiguous unboxed arrays, rows delimited by [row_ptr].  One pointer
   chase per *solve* instead of two per *row per iteration*, and the
   inner loops stream cache-line-adjacent memory. *)
type csr = {
  csr_rows : int;
  csr_cols : int;
  row_ptr : int array; (* length csr_rows + 1 *)
  col_idx : int array; (* length nnz, row-major, per-row ascending *)
  values : float array; (* parallel to col_idx *)
}

let to_csr a =
  let row_ptr = Array.make (a.r + 1) 0 in
  for i = 0 to a.r - 1 do
    row_ptr.(i + 1) <- row_ptr.(i) + a.rows.(i).nnz
  done;
  let n = row_ptr.(a.r) in
  let col_idx = Array.make (max 1 n) 0 in
  let values = Array.make (max 1 n) 0.0 in
  for i = 0 to a.r - 1 do
    let row = a.rows.(i) in
    Array.blit row.cols 0 col_idx row_ptr.(i) row.nnz;
    Array.blit row.vals 0 values row_ptr.(i) row.nnz
  done;
  { csr_rows = a.r; csr_cols = a.c; row_ptr; col_idx; values }

let swap_rows a i j =
  if i < 0 || i >= a.r || j < 0 || j >= a.r then
    invalid_arg "Sparse.swap_rows: out of range";
  if i <> j then begin
    let tmp = a.rows.(i) in
    a.rows.(i) <- a.rows.(j);
    a.rows.(j) <- tmp
  end

let scale_row a i s =
  if i < 0 || i >= a.r then invalid_arg "Sparse.scale_row: out of range";
  let row = a.rows.(i) in
  let dst = ref 0 in
  for k = 0 to row.nnz - 1 do
    let v = Array.unsafe_get row.vals k *. s in
    if v <> 0.0 then begin
      row.cols.(!dst) <- Array.unsafe_get row.cols k;
      row.vals.(!dst) <- v;
      incr dst
    end
  done;
  row.nnz <- !dst;
  row.cursor <- 0

let div_row a i s =
  if i < 0 || i >= a.r then invalid_arg "Sparse.div_row: out of range";
  let row = a.rows.(i) in
  let dst = ref 0 in
  for k = 0 to row.nnz - 1 do
    let v = Array.unsafe_get row.vals k /. s in
    if v <> 0.0 then begin
      row.cols.(!dst) <- Array.unsafe_get row.cols k;
      row.vals.(!dst) <- v;
      incr dst
    end
  done;
  row.nnz <- !dst;
  row.cursor <- 0

let sub_scaled_row a ~dst ~src ~coeff =
  if dst < 0 || dst >= a.r || src < 0 || src >= a.r then
    invalid_arg "Sparse.sub_scaled_row: out of range";
  if dst = src then invalid_arg "Sparse.sub_scaled_row: dst = src";
  let d = a.rows.(dst) and s = a.rows.(src) in
  let cap = d.nnz + s.nnz in
  (* Merge into the matrix scratch, then swap buffers with the
     destination row: zero allocation per call once the scratch has
     grown to the working fill level. *)
  if Array.length a.sc < cap then begin
    let grown = max cap (max 8 (2 * Array.length a.sc)) in
    a.sc <- Array.make grown 0;
    a.sv <- Array.make grown 0.0
  end;
  let oc = a.sc and ov = a.sv in
  let di = ref 0 and si = ref 0 and o = ref 0 in
  let push c v =
    if v <> 0.0 then begin
      Array.unsafe_set oc !o c;
      Array.unsafe_set ov !o v;
      incr o
    end
  in
  while !di < d.nnz && !si < s.nnz do
    let dc = Array.unsafe_get d.cols !di
    and sc = Array.unsafe_get s.cols !si in
    if dc < sc then begin
      push dc (Array.unsafe_get d.vals !di);
      incr di
    end
    else if sc < dc then begin
      (* The dense kernel computes [0.0 −. coeff ·. y] here. *)
      push sc (0.0 -. (coeff *. Array.unsafe_get s.vals !si));
      incr si
    end
    else begin
      push dc
        (Array.unsafe_get d.vals !di -. (coeff *. Array.unsafe_get s.vals !si));
      incr di;
      incr si
    end
  done;
  while !di < d.nnz do
    push (Array.unsafe_get d.cols !di) (Array.unsafe_get d.vals !di);
    incr di
  done;
  while !si < s.nnz do
    push
      (Array.unsafe_get s.cols !si)
      (0.0 -. (coeff *. Array.unsafe_get s.vals !si));
    incr si
  done;
  a.sc <- d.cols;
  a.sv <- d.vals;
  d.cols <- oc;
  d.vals <- ov;
  d.nnz <- !o;
  d.cursor <- 0

let drop_col_entries a j ~from_row =
  if j < 0 || j >= a.c then
    invalid_arg "Sparse.drop_col_entries: out of range";
  for i = max 0 from_row to a.r - 1 do
    let row = a.rows.(i) in
    let k = find_col row j in
    if k >= 0 then begin
      for m = k to row.nnz - 2 do
        row.cols.(m) <- row.cols.(m + 1);
        row.vals.(m) <- row.vals.(m + 1)
      done;
      row.nnz <- row.nnz - 1;
      row.cursor <- 0
    end
  done

(* ------------------------------------------------------------------ *)
(* Routing policy                                                      *)
(* ------------------------------------------------------------------ *)

let auto_size_floor = 4096
let default_density_threshold = 0.25

let clamp01 x = max 0.0 (min 1.0 x)

let threshold =
  ref
    (match Sys.getenv_opt "TOMO_SPARSE_THRESHOLD" with
    | Some s -> (
        match float_of_string_opt (String.trim s) with
        | Some v -> clamp01 v
        | None -> default_density_threshold)
    | None -> default_density_threshold)

let density_threshold () = !threshold
let set_density_threshold t = threshold := clamp01 t

let prefers_sparse ~rows ~cols ~nnz =
  let total = rows * cols in
  total >= auto_size_floor
  && float_of_int nnz <= !threshold *. float_of_int total

let pp ppf a =
  Format.fprintf ppf "@[<v>%dx%d, %d nnz" a.r a.c (nnz a);
  for i = 0 to a.r - 1 do
    iter_row a i (fun j v -> Format.fprintf ppf "@,(%d, %d) = %g" i j v)
  done;
  Format.fprintf ppf "@]"
