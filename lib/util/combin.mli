(** Combinatorial enumeration.

    Algorithm 1 of the paper enumerates correlation subsets (subsets of a
    correlation set up to a configured size) and path sets (subsets of the
    candidate path pool, in increasing size, under a count cap).  These
    helpers provide that enumeration without materializing power sets. *)

(** [choose n k] is the binomial coefficient, saturating at [max_int]
    when the computation would overflow native ints.  Overflow is
    detected {e before} each multiplication, so the result is never a
    silently wrapped value; the guard is conservative — a value whose
    intermediate product overflows saturates even if the exact result
    would fit.  [0] when [k < 0] or [k > n]. *)
val choose : int -> int -> int

(** [iter_combinations xs k f] applies [f] to every size-[k] combination
    of the elements of [xs], each passed as a fresh array in the original
    element order.  Combinations are produced in lexicographic index
    order. *)
val iter_combinations : 'a array -> int -> ('a array -> unit) -> unit

(** [combinations xs k] materializes [iter_combinations] as a list. *)
val combinations : 'a array -> int -> 'a array list

(** [iter_sized xs ~size ~limit f] applies [f] to the size-[size]
    combinations of [xs] in lexicographic index order, stopping before
    the visit that would exceed [limit] or when [f] returns [`Stop].
    Returns the number of combinations visited (each visit also counts
    into the [combin_subsets_visited] metric, like
    {!iter_subsets_by_size}). *)
val iter_sized :
  'a array ->
  size:int ->
  limit:int ->
  ('a array -> [ `Stop | `Continue ]) ->
  int

(** [iter_subsets_by_size xs ~max_size ~limit f] applies [f] to non-empty
    subsets of [xs] in increasing size (size 1 first), stopping after
    [limit] subsets or size [max_size], whichever comes first.  [f]
    returns [`Stop] to abort the enumeration early, [`Continue] to keep
    going.  Returns the number of subsets visited. *)
val iter_subsets_by_size :
  'a array ->
  max_size:int ->
  limit:int ->
  ('a array -> [ `Stop | `Continue ]) ->
  int

(** [subsets_up_to xs ~max_size ~limit] materializes the enumeration of
    [iter_subsets_by_size] as a list. *)
val subsets_up_to : 'a array -> max_size:int -> limit:int -> 'a array list
