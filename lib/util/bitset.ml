type t = { len : int; words : int array }

let bits_per_word = Sys.int_size
let word_bits = bits_per_word

let create len =
  if len < 0 then invalid_arg "Bitset.create: negative capacity";
  { len; words = Array.make ((len + bits_per_word - 1) / bits_per_word) 0 }

let length t = t.len

let check t i =
  if i < 0 || i >= t.len then invalid_arg "Bitset: index out of range"

let set t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let clear t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl b)

let assign t i b = if b then set t i else clear t i

let get t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) land (1 lsl b) <> 0

(* Unchecked variants for inner loops whose indices are validated once
   outside the loop (the netsim transpose sets one bit per set path per
   interval; the bounds are pinned by construction). *)
let unsafe_set t i =
  let w = i / bits_per_word and b = i mod bits_per_word in
  Array.unsafe_set t.words w (Array.unsafe_get t.words w lor (1 lsl b))

let unsafe_get t i =
  let w = i / bits_per_word and b = i mod bits_per_word in
  Array.unsafe_get t.words w land (1 lsl b) <> 0

(* Bits beyond [len] in the last word must stay zero so that [count],
   [equal] and friends can work word-wise. [mask_tail] re-establishes that
   invariant after whole-word operations such as [set_all]. *)
let mask_tail t =
  let r = t.len mod bits_per_word in
  if r <> 0 && Array.length t.words > 0 then begin
    let last = Array.length t.words - 1 in
    t.words.(last) <- t.words.(last) land ((1 lsl r) - 1)
  end

(* Testing hook: true iff the tail invariant holds.  Every exported
   operation must preserve it; the word-level ops rely on both operands
   satisfying it (e.g. [union_into] never revives a tail bit because
   neither side has one set). *)
let invariant t =
  let r = t.len mod bits_per_word in
  r = 0
  || Array.length t.words = 0
  || t.words.(Array.length t.words - 1) land lnot ((1 lsl r) - 1) = 0

let set_all t =
  Array.fill t.words 0 (Array.length t.words) (-1);
  mask_tail t

let clear_all t = Array.fill t.words 0 (Array.length t.words) 0
let copy t = { len = t.len; words = Array.copy t.words }

(* SWAR popcount over the two 32-bit halves of a word: ~a dozen
   straight-line integer ops, against up to [bits_per_word] iterations of
   the classic clear-lowest-bit loop on dense words (interval-status rows
   are mostly ones under low congestion). *)
let popcount32 x =
  let x = x - ((x lsr 1) land 0x55555555) in
  let x = (x land 0x33333333) + ((x lsr 2) land 0x33333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F in
  (* OCaml ints are 63-bit, so the multiply does not truncate at 32 bits
     the way the classic C idiom assumes — mask the byte-sum out
     explicitly or the carried high bytes leak into the count. *)
  (x * 0x01010101) lsr 24 land 0xFF

let popcount x =
  popcount32 (x land 0xFFFFFFFF) + popcount32 ((x lsr 32) land 0x7FFFFFFF)

let count t =
  let acc = ref 0 in
  for i = 0 to Array.length t.words - 1 do
    acc := !acc + popcount (Array.unsafe_get t.words i)
  done;
  !acc

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let equal a b =
  a.len = b.len
  && Array.length a.words = Array.length b.words
  &&
  let rec go i =
    i >= Array.length a.words || (a.words.(i) = b.words.(i) && go (i + 1))
  in
  go 0

let check_same a b =
  if a.len <> b.len then invalid_arg "Bitset: capacity mismatch"

let copy_into ~into src =
  check_same into src;
  Array.blit src.words 0 into.words 0 (Array.length src.words)

let inter_into ~into src =
  check_same into src;
  for i = 0 to Array.length into.words - 1 do
    Array.unsafe_set into.words i
      (Array.unsafe_get into.words i land Array.unsafe_get src.words i)
  done

let union_into ~into src =
  check_same into src;
  for i = 0 to Array.length into.words - 1 do
    Array.unsafe_set into.words i
      (Array.unsafe_get into.words i lor Array.unsafe_get src.words i)
  done

let diff_into ~into src =
  check_same into src;
  for i = 0 to Array.length into.words - 1 do
    Array.unsafe_set into.words i
      (Array.unsafe_get into.words i land lnot (Array.unsafe_get src.words i))
  done

let inter a b =
  let r = copy a in
  inter_into ~into:r b;
  r

let union a b =
  let r = copy a in
  union_into ~into:r b;
  r

let diff a b =
  let r = copy a in
  diff_into ~into:r b;
  r

let count_inter a b =
  check_same a b;
  let acc = ref 0 in
  for i = 0 to Array.length a.words - 1 do
    acc :=
      !acc
      + popcount (Array.unsafe_get a.words i land Array.unsafe_get b.words i)
  done;
  !acc

let disjoint a b =
  check_same a b;
  let rec go i =
    i >= Array.length a.words
    || (a.words.(i) land b.words.(i) = 0 && go (i + 1))
  in
  go 0

let subset a b =
  check_same a b;
  let rec go i =
    i >= Array.length a.words
    || (a.words.(i) land lnot b.words.(i) = 0 && go (i + 1))
  in
  go 0

(* Word-level iterators: the raw packed words, for hot loops (the netsim
   transpose, bulk statistics) that want one visit per word rather than
   one per bit.  The tail word of a partial last block carries the
   invariant above — its bits past [length] are zero. *)
let iter_words f t =
  for w = 0 to Array.length t.words - 1 do
    f w (Array.unsafe_get t.words w)
  done

let fold_words f init t =
  let acc = ref init in
  for w = 0 to Array.length t.words - 1 do
    acc := f !acc w (Array.unsafe_get t.words w)
  done;
  !acc

(* Per set bit: isolate the lowest one ([x land (-x)]) and recover its
   index as popcount(bit − 1) — all-ones below a power of two.  Cost is
   proportional to the number of set bits, not the capacity. *)
let iter f t =
  let words = t.words in
  for w = 0 to Array.length words - 1 do
    let x = ref (Array.unsafe_get words w) in
    if !x <> 0 then begin
      let base = w * bits_per_word in
      while !x <> 0 do
        let b = !x land - !x in
        f (base + popcount (b - 1));
        x := !x lxor b
      done
    end
  done

let fold f init t =
  let acc = ref init in
  iter (fun i -> acc := f !acc i) t;
  !acc

let to_list t = List.rev (fold (fun acc i -> i :: acc) [] t)

let of_list n l =
  let t = create n in
  List.iter (set t) l;
  t

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Format.pp_print_int)
    (to_list t)
