type t = { state : Random.State.t; seed : int }

let create seed = { state = Random.State.make [| seed; 0x746f6d6f |]; seed }

(* The splitmix64 finalizer: a full-avalanche 64-bit mix, so every bit
   of the input affects every bit of the output.  Hashtbl.hash (the
   previous implementation) truncates to ~30 bits and collides across
   thousands of parallel task labels; two colliding children would share
   an entire random stream. *)
let splitmix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

(* FNV-1a over the label bytes: cheap, order-sensitive, no truncation. *)
let fnv1a64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

let split t ~label =
  let z = splitmix64 (Int64.add (Int64.of_int t.seed) 0x9e3779b97f4a7c15L) in
  let mixed = splitmix64 (Int64.logxor z (fnv1a64 label)) in
  create (Int64.to_int mixed land max_int)

(* Integer-keyed split for hot loops that derive one child per index
   (e.g. one stream per simulated interval): same construction as
   [split] but the key is mixed directly, skipping the string render and
   FNV pass.  Distinct from every [split ~label] stream because the key
   goes through an extra odd-constant multiply before the final mix. *)
let split_int t key =
  let z = splitmix64 (Int64.add (Int64.of_int t.seed) 0x9e3779b97f4a7c15L) in
  let k = splitmix64 (Int64.mul (Int64.of_int key) 0xff51afd7ed558ccdL) in
  let mixed = splitmix64 (Int64.logxor z k) in
  create (Int64.to_int mixed land max_int)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  Random.State.int t.state bound

let float t bound = Random.State.float t.state bound

let uniform t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.uniform: hi < lo";
  lo +. Random.State.float t.state (hi -. lo)

let bool t ~p =
  if p <= 0. then false
  else if p >= 1. then true
  else Random.State.float t.state 1.0 < p

let exponential t ~rate =
  if rate <= 0. then invalid_arg "Rng.exponential: non-positive rate";
  let u = 1.0 -. Random.State.float t.state 1.0 in
  -.log u /. rate

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int t.state (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(Random.State.int t.state (Array.length a))

let sample t a k =
  let n = Array.length a in
  if k < 0 || k > n then invalid_arg "Rng.sample: bad sample size";
  let idx = Array.init n (fun i -> i) in
  (* Partial Fisher-Yates: only the first [k] positions need settling. *)
  for i = 0 to k - 1 do
    let j = i + Random.State.int t.state (n - i) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  Array.init k (fun i -> a.(idx.(i)))

let pick_weighted t weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Rng.pick_weighted: weights sum to zero";
  let x = Random.State.float t.state total in
  let rec go i acc =
    if i = Array.length weights - 1 then i
    else
      let acc = acc +. weights.(i) in
      if x < acc then i else go (i + 1) acc
  in
  go 0 0.0
