(** Reproducible pseudo-random number generation.

    Every stochastic component of the reproduction (topology generation,
    congestion scenarios, packet drops) draws from an explicit [Rng.t] so
    that experiments are replayable from a single integer seed.  [split]
    derives statistically independent child generators, which lets the
    experiment harness give each scenario and each figure its own stream
    without cross-contamination when one component changes how many draws
    it makes. *)

type t

(** [create seed] is a fresh generator determined by [seed]. *)
val create : int -> t

(** [split t ~label] derives a child generator from [t]'s seed and
    [label].  The same [(seed, label)] pair always yields the same child;
    different labels yield independent streams.  The child seed is
    produced by a full-width splitmix64-style finalizer over the parent
    seed and an FNV-1a hash of the label, so thousands of parallel task
    labels (one per scenario cell or averaged seed) do not collide the
    way a truncated [Hashtbl.hash] would. *)
val split : t -> label:string -> t

(** [split_int t key] derives a child generator keyed by an integer —
    the allocation-free analogue of [split] for loops that need one
    independent stream per index (one per simulated interval, say).
    The same [(seed, key)] pair always yields the same child; the
    derivation depends only on [t]'s seed, never on how many draws [t]
    has made, so children can be derived in any order (or in parallel)
    without perturbing each other. *)
val split_int : t -> int -> t

(** [int t bound] is uniform in [0, bound).  @raise Invalid_argument if
    [bound <= 0]. *)
val int : t -> int -> int

(** [float t bound] is uniform in [0, bound). *)
val float : t -> float -> float

(** [uniform t ~lo ~hi] is uniform in [lo, hi). *)
val uniform : t -> lo:float -> hi:float -> float

(** [bool t ~p] is [true] with probability [p] (clamped to [0,1]). *)
val bool : t -> p:float -> bool

(** [exponential t ~rate] samples an exponential variate. *)
val exponential : t -> rate:float -> float

(** [shuffle t a] permutes [a] in place, uniformly. *)
val shuffle : t -> 'a array -> unit

(** [choose t a] is a uniformly chosen element of [a].
    @raise Invalid_argument on an empty array. *)
val choose : t -> 'a array -> 'a

(** [sample t a k] is [k] distinct elements of [a], uniformly without
    replacement.  @raise Invalid_argument if [k > Array.length a] or
    [k < 0]. *)
val sample : t -> 'a array -> int -> 'a array

(** [pick_weighted t weights] is an index sampled proportionally to
    [weights] (non-negative, not all zero). *)
val pick_weighted : t -> float array -> int
