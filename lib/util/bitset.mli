(** Fixed-capacity mutable bit sets.

    Used throughout the tomography pipeline to store per-interval path
    statuses (a [T]-bit row per path) and link/path incidence masks.  All
    operations are total: indices are checked and out-of-range indices
    raise [Invalid_argument]. *)

type t

(** [create n] is a bit set of capacity [n] with all bits cleared. *)
val create : int -> t

(** [length t] is the capacity [t] was created with. *)
val length : t -> int

(** [set t i] sets bit [i]. *)
val set : t -> int -> unit

(** [clear t i] clears bit [i]. *)
val clear : t -> int -> unit

(** [assign t i b] sets bit [i] to [b]. *)
val assign : t -> int -> bool -> unit

(** [get t i] is the value of bit [i]. *)
val get : t -> int -> bool

(** [unsafe_set t i] / [unsafe_get t i]: bit access with no bounds
    check, for inner-loop kernels whose indices are validated once
    outside the loop (e.g. the netsim column→row transpose).
    Out-of-range indices are undefined behaviour. *)
val unsafe_set : t -> int -> unit

val unsafe_get : t -> int -> bool

(** [set_all t] sets every bit. *)
val set_all : t -> unit

(** [clear_all t] clears every bit. *)
val clear_all : t -> unit

(** [copy t] is a fresh bit set equal to [t]. *)
val copy : t -> t

(** [count t] is the number of set bits. *)
val count : t -> int

(** [is_empty t] is [true] iff no bit is set. *)
val is_empty : t -> bool

(** [equal a b] is [true] iff [a] and [b] have the same capacity and the
    same bits set. *)
val equal : t -> t -> bool

(** [copy_into ~into src] overwrites [into] with the bits of [src]
    without allocating (a word-level blit).
    @raise Invalid_argument if capacities differ. *)
val copy_into : into:t -> t -> unit

(** [inter_into ~into src] replaces [into] with [into ∧ src].
    @raise Invalid_argument if capacities differ. *)
val inter_into : into:t -> t -> unit

(** [union_into ~into src] replaces [into] with [into ∨ src].
    @raise Invalid_argument if capacities differ. *)
val union_into : into:t -> t -> unit

(** [diff_into ~into src] replaces [into] with [into ∧ ¬src].
    @raise Invalid_argument if capacities differ. *)
val diff_into : into:t -> t -> unit

(** [inter a b] is a fresh bit set [a ∧ b]. *)
val inter : t -> t -> t

(** [union a b] is a fresh bit set [a ∨ b]. *)
val union : t -> t -> t

(** [diff a b] is a fresh bit set [a ∧ ¬b]. *)
val diff : t -> t -> t

(** [count_inter a b] is [count (inter a b)] without allocating. *)
val count_inter : t -> t -> int

(** [disjoint a b] is [true] iff [a] and [b] share no set bit. *)
val disjoint : t -> t -> bool

(** [subset a b] is [true] iff every bit set in [a] is set in [b]. *)
val subset : t -> t -> bool

(** [iter f t] applies [f] to the index of every set bit, in increasing
    order.  Cost is proportional to the number of words plus the number
    of set bits (lowest-set-bit extraction), not to the capacity. *)
val iter : (int -> unit) -> t -> unit

(** [iter_words f t] applies [f w word] to every packed word in index
    order, including zero words.  Bit [b] of word [w] is bit
    [w * word_bits + b] of the set; bits at or beyond [length t] in the
    last word are always zero (the tail invariant). *)
val iter_words : (int -> int -> unit) -> t -> unit

(** [fold_words f init t] folds [f acc w word] over the packed words in
    index order (same conventions as {!iter_words}). *)
val fold_words : ('a -> int -> int -> 'a) -> 'a -> t -> 'a

(** [word_bits] is the number of bits per packed word ([Sys.int_size]). *)
val word_bits : int

(** [invariant t] is [true] iff the internal tail invariant holds: every
    bit at index ≥ [length t] in the last packed word is zero.  Exposed
    for the property-test battery; every exported operation preserves
    it. *)
val invariant : t -> bool

(** [fold f init t] folds [f] over the indices of set bits in increasing
    order. *)
val fold : ('a -> int -> 'a) -> 'a -> t -> 'a

(** [to_list t] is the increasing list of set-bit indices. *)
val to_list : t -> int list

(** [of_list n l] is a capacity-[n] bit set with exactly the bits in [l]
    set. *)
val of_list : int -> int list -> t

(** [pp] prints a bit set as the list of its set indices. *)
val pp : Format.formatter -> t -> unit
