let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty sample")

let mean xs =
  check_nonempty "Stats.mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  check_nonempty "Stats.variance" xs;
  let n = Array.length xs in
  if n = 1 then 0.0
  else
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0.0 xs in
    ss /. float_of_int (n - 1)

let stddev xs = sqrt (variance xs)

let check_no_nan name xs =
  if Array.exists Float.is_nan xs then invalid_arg (name ^ ": NaN sample")

let quantile xs q =
  check_nonempty "Stats.quantile" xs;
  check_no_nan "Stats.quantile" xs;
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) and hi = int_of_float (ceil pos) in
  if lo = hi then sorted.(lo)
  else
    let frac = pos -. float_of_int lo in
    ((1.0 -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))

let median xs = quantile xs 0.5

let minimum xs =
  check_nonempty "Stats.minimum" xs;
  check_no_nan "Stats.minimum" xs;
  Array.fold_left min xs.(0) xs

let maximum xs =
  check_nonempty "Stats.maximum" xs;
  check_no_nan "Stats.maximum" xs;
  Array.fold_left max xs.(0) xs

let mean_abs_error a b =
  if Array.length a <> Array.length b then
    invalid_arg "Stats.mean_abs_error: length mismatch";
  check_nonempty "Stats.mean_abs_error" a;
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. abs_float (x -. b.(i))) a;
  !acc /. float_of_int (Array.length a)

let cdf xs ~points =
  check_nonempty "Stats.cdf" xs;
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  (* Count of samples <= x by binary search for the rightmost index. *)
  let count_le x =
    let rec go lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if sorted.(mid) <= x then go (mid + 1) hi else go lo mid
    in
    go 0 n
  in
  Array.to_list points
  |> List.map (fun x -> (x, float_of_int (count_le x) /. float_of_int n))

let cdf_curve xs ~steps ~max_x =
  if steps <= 0 then invalid_arg "Stats.cdf_curve: non-positive steps";
  let points =
    Array.init (steps + 1) (fun i ->
        max_x *. float_of_int i /. float_of_int steps)
  in
  cdf xs ~points

let histogram ?(out_of_range = `Clamp) xs ~bins ~lo ~hi =
  if bins <= 0 then invalid_arg "Stats.histogram: non-positive bins";
  if hi <= lo then invalid_arg "Stats.histogram: hi <= lo";
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  Array.iter
    (fun x ->
      if not (Float.is_nan x) then begin
        (* floor, not int_of_float: truncation toward zero would send
           any x in (lo - width, lo) to bin 0 as if it were in range. *)
        let b = int_of_float (floor ((x -. lo) /. width)) in
        let in_range = b >= 0 && b < bins in
        match out_of_range with
        | `Drop -> if in_range then counts.(b) <- counts.(b) + 1
        | `Clamp ->
            let b = max 0 (min (bins - 1) b) in
            counts.(b) <- counts.(b) + 1
      end)
    xs;
  counts
