let choose n k =
  if k < 0 || k > n then 0
  else
    let k = min k (n - k) in
    let rec go acc i =
      if i > k then acc
      else
        (* The partial product [acc = C(n-k+i-1, i-1)] grows monotonically,
           so the first step whose multiplication would exceed [max_int]
           proves the final value does too (up to the conservative slack of
           the pre-division factor): saturate before wrapping.  Checking
           [acc' < acc] after the fact is unsound — a wrapped product can
           land positive and larger than [acc]. *)
        let m = n - k + i in
        if acc > max_int / m then max_int else go (acc * m / i) (i + 1)
    in
    go 1 1

let iter_combinations xs k f =
  let n = Array.length xs in
  if k >= 0 && k <= n then
    if k = 0 then f [||]
    else begin
      let idx = Array.init k (fun i -> i) in
      let emit () = f (Array.map (fun i -> xs.(i)) idx) in
      (* Standard lexicographic successor on index vectors. *)
      let rec advance () =
        emit ();
        let rec bump j =
          if j < 0 then false
          else if idx.(j) < n - k + j then begin
            idx.(j) <- idx.(j) + 1;
            for l = j + 1 to k - 1 do
              idx.(l) <- idx.(l - 1) + 1
            done;
            true
          end
          else bump (j - 1)
        in
        if bump (k - 1) then advance ()
      in
      advance ()
    end

let combinations xs k =
  let acc = ref [] in
  iter_combinations xs k (fun c -> acc := c :: !acc);
  List.rev !acc

exception Stop

let c_subsets_visited = Tomo_obs.Metrics.counter "combin_subsets_visited"

let iter_sized xs ~size ~limit f =
  let visited = ref 0 in
  (try
     iter_combinations xs size (fun c ->
         if !visited >= limit then raise Stop;
         incr visited;
         match f c with `Stop -> raise Stop | `Continue -> ())
   with Stop -> ());
  Tomo_obs.Metrics.incr ~by:!visited c_subsets_visited;
  !visited

let iter_subsets_by_size xs ~max_size ~limit f =
  let visited = ref 0 in
  (try
     let size_cap = min max_size (Array.length xs) in
     for k = 1 to size_cap do
       iter_combinations xs k (fun c ->
           if !visited >= limit then raise Stop;
           incr visited;
           match f c with `Stop -> raise Stop | `Continue -> ())
     done
   with Stop -> ());
  Tomo_obs.Metrics.incr ~by:!visited c_subsets_visited;
  !visited

let subsets_up_to xs ~max_size ~limit =
  let acc = ref [] in
  let (_ : int) =
    iter_subsets_by_size xs ~max_size ~limit (fun c ->
        acc := c :: !acc;
        `Continue)
  in
  List.rev !acc
