(** Descriptive statistics used by the evaluation harness.

    Everything operates on plain [float array] samples; no function
    mutates its input. *)

(** [mean xs] is the arithmetic mean.  @raise Invalid_argument on an empty
    sample. *)
val mean : float array -> float

(** [variance xs] is the unbiased sample variance (0 for singleton
    samples). *)
val variance : float array -> float

(** [stddev xs] is [sqrt (variance xs)]. *)
val stddev : float array -> float

(** [quantile xs q] is the [q]-quantile ([0 <= q <= 1]) using linear
    interpolation between order statistics.  @raise Invalid_argument on
    an empty sample, [q] outside [0,1], or a NaN sample (NaN admits no
    order statistic; rejecting beats silently sorting it first). *)
val quantile : float array -> float -> float

(** [median xs] is [quantile xs 0.5]. *)
val median : float array -> float

(** [minimum xs] / [maximum xs].  @raise Invalid_argument on an empty
    sample or a NaN sample (the polymorphic [min]/[max] fold would
    otherwise return NaN from [minimum] but skip it in [maximum] —
    rejection keeps the pair consistent). *)
val minimum : float array -> float

val maximum : float array -> float

(** [mean_abs_error a b] is the mean of [|a.(i) - b.(i)|].
    @raise Invalid_argument on length mismatch or empty input. *)
val mean_abs_error : float array -> float array -> float

(** [cdf xs ~points] evaluates the empirical CDF of [xs] at each of
    [points], returning [(x, F(x))] pairs.  [F(x)] is the fraction of
    samples [<= x]. *)
val cdf : float array -> points:float array -> (float * float) list

(** [cdf_curve xs ~steps ~max_x] is the CDF sampled at [steps + 1] evenly
    spaced points from [0] to [max_x]. *)
val cdf_curve : float array -> steps:int -> max_x:float -> (float * float) list

(** [histogram ?out_of_range xs ~bins ~lo ~hi] counts samples per bin
    over [bins] equal-width bins covering [lo, hi).  Out-of-range
    samples (on either end, [x = hi] included) are handled per
    [out_of_range]: [`Clamp] (default) counts them in the nearest edge
    bin, [`Drop] excludes them.  NaN samples are always dropped. *)
val histogram :
  ?out_of_range:[ `Clamp | `Drop ] ->
  float array ->
  bins:int ->
  lo:float ->
  hi:float ->
  int array
