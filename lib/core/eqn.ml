module Bitset = Tomo_util.Bitset

type registry = {
  by_key : (string, int) Hashtbl.t;
  mutable subsets : Subsets.t option array;  (* dynamic array *)
  mutable count : int;
}

let registry () =
  { by_key = Hashtbl.create 256; subsets = Array.make 64 None; count = 0 }

let n_vars reg = reg.count
let find reg s = Hashtbl.find_opt reg.by_key (Subsets.key s)

let add reg s =
  let k = Subsets.key s in
  match Hashtbl.find_opt reg.by_key k with
  | Some v -> v
  | None ->
      let v = reg.count in
      Hashtbl.add reg.by_key k v;
      if v >= Array.length reg.subsets then begin
        let grown = Array.make (2 * Array.length reg.subsets) None in
        Array.blit reg.subsets 0 grown 0 (Array.length reg.subsets);
        reg.subsets <- grown
      end;
      reg.subsets.(v) <- Some s;
      reg.count <- v + 1;
      v

let subset_of_var reg v =
  if v < 0 || v >= reg.count then
    invalid_arg "Eqn.subset_of_var: unknown variable";
  Option.get reg.subsets.(v)

type row = { paths : int array; vars : int array }

let induced_subsets model ~effective ~links =
  let by_corr = Hashtbl.create 8 in
  let order = ref [] in
  Bitset.iter
    (fun e ->
      if Bitset.get effective e then begin
        let c = model.Model.corr_of_link.(e) in
        match Hashtbl.find_opt by_corr c with
        | Some es -> Hashtbl.replace by_corr c (e :: es)
        | None ->
            Hashtbl.add by_corr c [ e ];
            order := c :: !order
      end)
    links;
  List.rev_map
    (fun c ->
      let es = Array.of_list (List.rev (Hashtbl.find by_corr c)) in
      Subsets.make model ~corr:c es)
    !order

let build_row model ~effective reg ~paths ~lookup =
  let links = Model.links_of_paths model paths in
  let subsets = induced_subsets model ~effective ~links in
  if subsets = [] then None
  else begin
    let rec resolve acc = function
      | [] -> Some (List.rev acc)
      | s :: rest -> (
          match lookup reg s with
          | Some v -> resolve (v :: acc) rest
          | None -> None)
    in
    match resolve [] subsets with
    | None -> None
    | Some vars ->
        let vars = Array.of_list vars in
        Array.sort compare vars;
        Some { paths; vars }
  end

let row model ~effective reg ~paths =
  build_row model ~effective reg ~paths ~lookup:find

(* A resolver is a frozen-registry fast path for [row].  [row] pays, per
   candidate path set, a [Bitset] union over all links, a hash table
   keyed by {!Subsets.key} *strings* (built with [Printf.sprintf] per
   lookup), and one {!Subsets.make} validation per induced subset.
   Algorithm 1 materializes tens of thousands of candidate rows per
   selection against a registry that no longer grows, so those per-row
   allocations dominate the whole selection once the linear algebra is
   out of the way.  The resolver hoists them: effective links are
   pre-filtered per path, subsets resolve through a hash table keyed by
   their sorted link arrays (structural hashing, no strings), and the
   union/grouping scratch is reused across calls with a generation
   stamp.  The produced rows are identical to [row]'s — same
   [Some]/[None] decisions, same sorted [vars] — because both compute
   the same set of induced subsets [Links(P) ∩ C]. *)
type resolver = {
  rz_fallback : (paths:int array -> row option) option;
      (* engaged when some correlation set is too large for the mask
         encoding; [row_fast] then just delegates to [build_row] *)
  rz_by_mask : (int, int) Hashtbl.t array;
      (* per correlation set: within-set link mask -> variable *)
  rz_path_eff : int array array;  (* per path: its effective links *)
  rz_corr_of_link : int array;
  rz_pos_of_link : int array;  (* bit position within its correlation set *)
  rz_link_stamp : int array;  (* per link: generation of last visit *)
  rz_corr_stamp : int array;  (* per correlation set: generation *)
  rz_corr_mask : int array;  (* accumulated subset mask per set *)
  rz_corr_order : int array;  (* correlation sets in first-seen order *)
  mutable rz_gen : int;
}

let resolver model ~effective reg =
  let n_links = model.Model.n_links in
  let n_corr = Model.n_corr_sets model in
  (* A subset within correlation set [c] is keyed by the bitmask of its
     links' positions in [corr_sets.(c)] — order-independent, so it can
     be accumulated during the union scan with no sorting or per-group
     allocation.  Needs every correlation set to fit one word. *)
  let too_wide = ref false in
  let pos_of_link = Array.make n_links 0 in
  for c = 0 to n_corr - 1 do
    let links = Model.corr_set_links model c in
    if Array.length links > Sys.int_size - 2 then too_wide := true
    else Array.iteri (fun i e -> pos_of_link.(e) <- i) links
  done;
  let fallback =
    if !too_wide then
      Some (fun ~paths -> build_row model ~effective reg ~paths ~lookup:find)
    else None
  in
  let by_mask = Array.init n_corr (fun _ -> Hashtbl.create 16) in
  if not !too_wide then
    for v = 0 to reg.count - 1 do
      match reg.subsets.(v) with
      | Some s ->
          let mask =
            Array.fold_left
              (fun m e -> m lor (1 lsl pos_of_link.(e)))
              0 s.Subsets.links
          in
          Hashtbl.replace by_mask.(s.Subsets.corr) mask v
      | None -> ()
    done;
  let path_eff =
    Array.init model.Model.n_paths (fun p ->
        let row = model.Model.path_links.(p) in
        (* Size the array exactly with one word-level popcount pass, then
           fill it in ascending order — no intermediate list. *)
        let n = Bitset.count_inter row effective in
        let a = Array.make n 0 in
        let i = ref 0 in
        Bitset.iter
          (fun e ->
            if Bitset.unsafe_get effective e then begin
              Array.unsafe_set a !i e;
              incr i
            end)
          row;
        a)
  in
  {
    rz_fallback = fallback;
    rz_by_mask = by_mask;
    rz_path_eff = path_eff;
    rz_corr_of_link = model.Model.corr_of_link;
    rz_pos_of_link = pos_of_link;
    rz_link_stamp = Array.make n_links 0;
    rz_corr_stamp = Array.make n_corr 0;
    rz_corr_mask = Array.make n_corr 0;
    rz_corr_order = Array.make n_corr 0;
    rz_gen = 0;
  }

let row_fast rz ~paths =
  match rz.rz_fallback with
  | Some f -> f ~paths
  | None ->
      let gen = rz.rz_gen + 1 in
      rz.rz_gen <- gen;
      (* One scan: dedup the paths' effective links by stamp and fold
         each straight into its correlation set's subset mask. *)
      let stamp = rz.rz_link_stamp in
      let corr_of = rz.rz_corr_of_link and pos_of = rz.rz_pos_of_link in
      let n_groups = ref 0 in
      Array.iter
        (fun p ->
          let ls = rz.rz_path_eff.(p) in
          for i = 0 to Array.length ls - 1 do
            let e = Array.unsafe_get ls i in
            if Array.unsafe_get stamp e <> gen then begin
              Array.unsafe_set stamp e gen;
              let c = Array.unsafe_get corr_of e in
              if rz.rz_corr_stamp.(c) <> gen then begin
                rz.rz_corr_stamp.(c) <- gen;
                rz.rz_corr_mask.(c) <- 0;
                rz.rz_corr_order.(!n_groups) <- c;
                incr n_groups
              end;
              rz.rz_corr_mask.(c) <-
                rz.rz_corr_mask.(c) lor (1 lsl Array.unsafe_get pos_of e)
            end
          done)
        paths;
      let n_groups = !n_groups in
      if n_groups = 0 then None
      else begin
        let vars = Array.make n_groups 0 in
        let ok = ref true in
        let g = ref 0 in
        while !ok && !g < n_groups do
          let c = rz.rz_corr_order.(!g) in
          (match Hashtbl.find_opt rz.rz_by_mask.(c) rz.rz_corr_mask.(c) with
          | Some v -> vars.(!g) <- v
          | None -> ok := false);
          incr g
        done;
        if not !ok then None
        else begin
          (* Insertion sort: a row touches a handful of subsets. *)
          for i = 1 to n_groups - 1 do
            let x = vars.(i) in
            let j = ref (i - 1) in
            while !j >= 0 && vars.(!j) > x do
              vars.(!j + 1) <- vars.(!j);
              decr j
            done;
            vars.(!j + 1) <- x
          done;
          Some { paths; vars }
        end
      end

let row_grow model ~effective reg ~paths =
  build_row model ~effective reg ~paths ~lookup:(fun reg s ->
      Some (add reg s))

let register_single_path_vars model ~effective reg =
  let before = n_vars reg in
  for p = 0 to model.Model.n_paths - 1 do
    let links = model.Model.path_links.(p) in
    List.iter
      (fun s -> ignore (add reg s))
      (induced_subsets model ~effective ~links)
  done;
  n_vars reg - before
