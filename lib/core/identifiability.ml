module Bitset = Tomo_util.Bitset
module Combin = Tomo_util.Combin
module Obs = Tomo_obs

(* How many effective links the analysis classified as structurally
   ambiguous (cumulative across analyses, like the other pipeline
   counters). *)
let c_ambiguous = Obs.Metrics.counter "ident_ambiguous_links"

type link_class = { representative : int; links : int array }

type corr_stats = {
  corr : int;
  n_effective : int;
  n_ambiguous : int;
  n_signatures : int;
  min_signature : int;
  inducible_by_size : int array option;
  max_identifiable_size : int option;
  pruned_sizes : int;
}

type t = {
  max_size : int;
  n_effective : int;
  classes : link_class array;
  ambiguous : Bitset.t;
  corr : corr_stats array;
}

let default_max_size = 3
let default_budget = 20_000

let covered_links model =
  let eff = Bitset.create model.Model.n_links in
  for e = 0 to model.Model.n_links - 1 do
    if not (Bitset.is_empty model.Model.link_paths.(e)) then Bitset.set eff e
  done;
  eff

(* A stable hashtable key for a bit set: its packed words.  All
   [link_paths] share the capacity [n_paths], so equal keys mean equal
   sets. *)
let bitset_key b =
  let buf = Buffer.create 64 in
  Bitset.iter_words
    (fun _ w ->
      Buffer.add_string buf (string_of_int w);
      Buffer.add_char buf ',')
    b;
  Buffer.contents buf

let ambiguity_classes model ~effective =
  let tbl : (string, int list ref) Hashtbl.t =
    Hashtbl.create model.Model.n_links
  in
  let order = ref [] in
  for e = model.Model.n_links - 1 downto 0 do
    if Bitset.get effective e then begin
      let key = bitset_key model.Model.link_paths.(e) in
      match Hashtbl.find_opt tbl key with
      | Some cell -> cell := e :: !cell
      | None ->
          let cell = ref [ e ] in
          Hashtbl.add tbl key cell;
          order := (e, cell) :: !order
    end
  done;
  (* [order] holds one entry per distinct path set; downto traversal
     makes both the entry order and each member list ascending. *)
  let classes =
    List.filter_map
      (fun (_, cell) ->
        match !cell with
        | _ :: _ :: _ as members ->
            let links = Array.of_list members in
            Some { representative = links.(0); links }
        | _ -> None)
      (List.sort (fun (a, _) (b, _) -> compare b a) !order)
  in
  let classes = Array.of_list (List.rev classes) in
  let n_ambiguous =
    Array.fold_left (fun a c -> a + Array.length c.links) 0 classes
  in
  Obs.Metrics.incr ~by:n_ambiguous c_ambiguous;
  classes

let ambiguous_of_classes model classes =
  let b = Bitset.create model.Model.n_links in
  Array.iter
    (fun c -> Array.iter (fun e -> Bitset.set b e) c.links)
    classes;
  b

let ambiguous_links model ~effective =
  ambiguous_of_classes model (ambiguity_classes model ~effective)

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

(* Per-correlation-set signature closure.

   For a subset [E] of the effective links of one correlation set, the
   candidate path pool is [Paths(E) \ Paths(Ē)] — the paths whose trace
   on the set (their "signature") is contained in [E].  [E] can appear
   in an equation iff every link of [E] is covered by such a path, i.e.
   iff [E] is a union of path signatures.  So the inducible subsets of
   size ≤ [max_size] are exactly the union-closure of the distinct
   signatures of size ≤ [max_size] — computable without ever fanning
   out the [C(n,k)] combinations. *)
type closure = {
  cl_eff : int array;
  cl_n_sigs : int;
  cl_min_sig : int;  (** 0 when the set has no signatures at all *)
  cl_witness : bool array;
      (** per size 1..max_size: true unless provably no inducible subset
          of that size exists *)
  cl_nodes : int list option;
      (** every inducible subset as a link-position mask; [None] when the
          node budget was hit or the set is too wide to mask *)
}

let close model ~effective ~corr ~max_size ~budget ~need_nodes =
  let all = Model.corr_set_links model corr in
  let n_eff = ref 0 in
  Array.iter (fun e -> if Bitset.get effective e then incr n_eff) all;
  let eff = Array.make !n_eff 0 in
  let j = ref 0 in
  Array.iter
    (fun e ->
      if Bitset.get effective e then begin
        eff.(!j) <- e;
        incr j
      end)
    all;
  let n = Array.length eff in
  let witness = Array.make (max 1 max_size) false in
  if n = 0 then
    { cl_eff = eff; cl_n_sigs = 0; cl_min_sig = 0; cl_witness = witness;
      cl_nodes = Some [] }
  else if n > Sys.int_size then begin
    (* Too wide for an int mask: fall back to the minimum-signature
       bound, which is still exact in the pruning direction (no subset
       smaller than every signature can be a union of signatures). *)
    let min_sig = ref max_int and any = ref false in
    let count_on_set p =
      let c = ref 0 in
      Array.iter
        (fun e -> if Bitset.get model.Model.link_paths.(e) p then incr c)
        eff;
      !c
    in
    let seen_sizes = Hashtbl.create 8 in
    Bitset.iter
      (fun p ->
        let s = count_on_set p in
        if s > 0 then begin
          any := true;
          if s < !min_sig then min_sig := s;
          Hashtbl.replace seen_sizes s ()
        end)
      (Model.paths_of_links model eff);
    let min_sig = if !any then !min_sig else 0 in
    for k = 1 to min max_size n do
      witness.(k - 1) <- min_sig > 0 && k >= min_sig
    done;
    { cl_eff = eff; cl_n_sigs = Hashtbl.length seen_sizes;
      cl_min_sig = min_sig; cl_witness = witness; cl_nodes = None }
  end
  else begin
    (* Distinct path signatures on the set, as position masks. *)
    let path_mask = Hashtbl.create 64 in
    Array.iteri
      (fun i e ->
        Bitset.iter
          (fun p ->
            let cur =
              match Hashtbl.find_opt path_mask p with Some m -> m | None -> 0
            in
            Hashtbl.replace path_mask p (cur lor (1 lsl i)))
          model.Model.link_paths.(e))
      eff;
    let sig_tbl = Hashtbl.create 64 in
    Hashtbl.iter (fun _ m -> Hashtbl.replace sig_tbl m ()) path_mask;
    let n_sigs = Hashtbl.length sig_tbl in
    let min_sig = ref 0 in
    let small_sigs = ref [] in
    Hashtbl.iter
      (fun m () ->
        let s = popcount m in
        if !min_sig = 0 || s < !min_sig then min_sig := s;
        if s <= max_size then small_sigs := m :: !small_sigs)
      sig_tbl;
    let small_sigs = List.sort compare !small_sigs in
    let size_cap = min max_size n in
    let unproven () =
      let u = ref false in
      for k = 1 to size_cap do
        if not witness.(k - 1) then u := true
      done;
      !u
    in
    let seen = Hashtbl.create 256 in
    let q = Queue.create () in
    let capped = ref false in
    let visit m =
      if not (Hashtbl.mem seen m) then
        if Hashtbl.length seen >= budget then capped := true
        else begin
          Hashtbl.add seen m ();
          witness.(popcount m - 1) <- true;
          Queue.add m q
        end
    in
    List.iter visit small_sigs;
    while
      (not (Queue.is_empty q))
      && (not !capped)
      && (need_nodes || unproven ())
    do
      let u = Queue.pop q in
      List.iter
        (fun s ->
          let v = u lor s in
          if v <> u && popcount v <= max_size then visit v)
        small_sigs
    done;
    if !capped then
      (* Unknown territory: anything not yet proven inducible may still
         be — never claim emptiness off a truncated closure. *)
      for k = 1 to size_cap do
        witness.(k - 1) <- true
      done;
    let nodes =
      if !capped then None
      else if need_nodes || Queue.is_empty q then
        Some (Hashtbl.fold (fun m () acc -> m :: acc) seen [])
      else None (* early exit: the closure is incomplete by design *)
    in
    { cl_eff = eff; cl_n_sigs = n_sigs; cl_min_sig = !min_sig;
      cl_witness = witness; cl_nodes = nodes }
  end

let inducible_size_witness ?(budget = default_budget) model ~effective ~corr
    ~max_size =
  (close model ~effective ~corr ~max_size ~budget ~need_nodes:false)
    .cl_witness

let coverage_key model cl_eff mask =
  let cov = Bitset.create model.Model.n_paths in
  let m = ref mask in
  while !m <> 0 do
    let low = !m land - !m in
    let i = popcount (low - 1) in
    Bitset.union_into ~into:cov model.Model.link_paths.(cl_eff.(i));
    m := !m land (!m - 1)
  done;
  bitset_key cov

let corr_stats_of model ~effective ~ambiguous ~max_size ~budget c =
  let cl = close model ~effective ~corr:c ~max_size ~budget ~need_nodes:true in
  let n = Array.length cl.cl_eff in
  let n_amb =
    Array.fold_left
      (fun a e -> if Bitset.get ambiguous e then a + 1 else a)
      0 cl.cl_eff
  in
  let size_cap = min max_size n in
  let pruned_sizes = ref 0 in
  for k = 1 to size_cap do
    if not cl.cl_witness.(k - 1) then incr pruned_sizes
  done;
  let inducible_by_size, max_ident =
    match cl.cl_nodes with
    | None -> (None, None)
    | Some nodes ->
        let counts = Array.make (max 1 max_size) 0 in
        List.iter (fun m -> counts.(popcount m - 1) <- counts.(popcount m - 1) + 1) nodes;
        (* Distinguishability of the candidate subsets: two subsets with
           the same path coverage produce the same observable footprint.
           Scanning in increasing size, the first coverage collision
           bounds the maximal identifiable size from above. *)
        let sorted =
          List.sort
            (fun a b -> compare (popcount a) (popcount b))
            nodes
        in
        let cov_tbl = Hashtbl.create 256 in
        let collision = ref None in
        List.iter
          (fun m ->
            if !collision = None then begin
              let key = coverage_key model cl.cl_eff m in
              if Hashtbl.mem cov_tbl key then collision := Some (popcount m)
              else Hashtbl.add cov_tbl key m
            end)
          sorted;
        let k_max =
          match !collision with Some s -> s - 1 | None -> size_cap
        in
        (Some counts, Some k_max)
  in
  {
    corr = c;
    n_effective = n;
    n_ambiguous = n_amb;
    n_signatures = cl.cl_n_sigs;
    min_signature = cl.cl_min_sig;
    inducible_by_size;
    max_identifiable_size = max_ident;
    pruned_sizes = !pruned_sizes;
  }

let analyze ?(max_size = default_max_size) ?(budget = default_budget) model
    ~effective =
  if max_size < 1 then invalid_arg "Identifiability.analyze: max_size < 1";
  let classes = ambiguity_classes model ~effective in
  let ambiguous = ambiguous_of_classes model classes in
  let corr =
    Array.init (Model.n_corr_sets model) (fun c ->
        corr_stats_of model ~effective ~ambiguous ~max_size ~budget c)
  in
  let n_effective = Bitset.count effective in
  { max_size; n_effective; classes; ambiguous; corr }

let link_ambiguous t e = Bitset.get t.ambiguous e

let pp ppf t =
  let n_ambiguous = Bitset.count t.ambiguous in
  Format.fprintf ppf "ambiguous links: %d of %d effective (%d classes)@."
    n_ambiguous t.n_effective (Array.length t.classes);
  if Array.length t.classes = 0 then
    Format.fprintf ppf "condition 1 (distinct path sets): SATISFIED@."
  else begin
    Format.fprintf ppf "condition 1 (distinct path sets): VIOLATED@.";
    Array.iteri
      (fun i c ->
        if i < 8 then
          Format.fprintf ppf "  class %d: links {%s} share one path set@." i
            (String.concat ","
               (Array.to_list (Array.map string_of_int c.links))))
      t.classes;
    if Array.length t.classes > 8 then
      Format.fprintf ppf "  ... and %d more classes@."
        (Array.length t.classes - 8)
  end;
  let n_sets = Array.length t.corr in
  let active =
    Array.fold_left
      (fun a (s : corr_stats) -> if s.n_effective > 0 then a + 1 else a)
      0 t.corr
  in
  let exact =
    Array.fold_left
      (fun a (s : corr_stats) -> if s.inducible_by_size <> None then a + 1 else a)
      0 t.corr
  in
  Format.fprintf ppf
    "correlation sets: %d (%d with effective links, %d exact closures)@."
    n_sets active exact;
  let total_slots = ref 0 and pruned_slots = ref 0 in
  Array.iter
    (fun (s : corr_stats) ->
      if s.n_effective > 0 then begin
        total_slots := !total_slots + min t.max_size s.n_effective;
        pruned_slots := !pruned_slots + s.pruned_sizes
      end)
    t.corr;
  Format.fprintf ppf "prunable size slots: %d of %d@." !pruned_slots
    !total_slots;
  for k = 1 to t.max_size do
    let inducible = ref 0 and enumerable = ref 0 in
    Array.iter
      (fun (s : corr_stats) ->
        match s.inducible_by_size with
        | Some counts when s.n_effective >= k ->
            inducible := !inducible + counts.(k - 1);
            let c = Combin.choose s.n_effective k in
            if c < max_int - !enumerable then enumerable := !enumerable + c
        | _ -> ())
      t.corr;
    Format.fprintf ppf "  size %d: %d inducible of %d enumerable subsets@." k
      !inducible !enumerable
  done;
  let hist = Array.make (t.max_size + 1) 0 in
  let unknown = ref 0 in
  Array.iter
    (fun (s : corr_stats) ->
      if s.n_effective > 0 then
        match s.max_identifiable_size with
        | Some k -> hist.(min k t.max_size) <- hist.(min k t.max_size) + 1
        | None -> incr unknown)
    t.corr;
  Format.fprintf ppf "max identifiable size (per set with effective links):";
  Array.iteri (fun k c -> Format.fprintf ppf " %d:%d" k c) hist;
  if !unknown > 0 then Format.fprintf ppf " unknown:%d" !unknown;
  Format.fprintf ppf "@."
