(** Solving the Probability Computation system and reading probabilities
    out of it (paper §5.3–5.4).

    Given the path sets selected by {!Algorithm1}, each contributes one
    linear equation in the logs of the subset good-probabilities; the
    right-hand sides are the (smoothed) empirical log-frequencies from
    {!Observations}.  The system is solved by minimum-norm least squares
    ({!Tomo_linalg.Cgls}); variables whose null-space row vanishes are
    uniquely determined ("identifiable"), the rest are reported from the
    minimum-norm solution and flagged.

    From the good probabilities, congestion probabilities of link sets
    follow by inclusion–exclusion within a correlation set and by
    independence across correlation sets (Assumption 5). *)

type t = {
  selection : Algorithm1.selection;
  values : float array;  (** per variable: log good-probability *)
  identifiable : bool array;  (** per variable *)
  obs : Observations.t;
      (** kept for the fallback marginal's observable dependence test *)
}

(** [solve selection obs] estimates every variable of the selected
    system. *)
val solve : Algorithm1.selection -> Observations.t -> t

(** [solve_with_counts selection obs ~counts] is [solve] with the
    right-hand side built from externally maintained all-good counts:
    [counts.(i)] must be [Observations.all_good_count obs rows.(i).paths]
    for the [i]-th selected row.  The streaming engine maintains these
    incrementally per tick instead of recounting window intersections;
    given correct counts the result is bit-identical to [solve].
    @raise Invalid_argument unless there is exactly one count per row. *)
val solve_with_counts :
  Algorithm1.selection -> Observations.t -> counts:int array -> t

(** [good_prob t s] is [P(all links of s good)] if [s] is a registered,
    identifiable variable. *)
val good_prob : t -> Subsets.t -> float option

(** [good_prob_est t s] also answers for registered but unidentifiable
    variables, from the minimum-norm solution. *)
val good_prob_est : t -> Subsets.t -> float option

(** Fallback strategy for links whose singleton good-probability is not
    expressible (chain links).  [`Whole] reports the containing subset's
    marginal (the Correlation-heuristic rule — biased up); [`Split]
    splits the subset's log good-probability evenly (unbiased for
    independent-alike chains, biased down for correlated ones);
    [`Adaptive] (the default) interpolates using the observed
    co-congestion of separating witness paths and quotient estimates
    from identifiable super/sub-set pairs. *)
type fallback = [ `Whole | `Split | `Adaptive ]

(** [link_marginal ?chain_split t e] is the link's congestion probability
    [P(X_e = 1)]:
    - [0] for links outside the potentially congested set (they are
      certified good or unobserved);
    - [1 − exp z] for a registered singleton;
    - for an effective link whose singleton was never expressible (e.g. a
      chain link always observed together with a neighbour), a fallback
      from the smallest registered subset [S] containing it: with
      [chain_split] (default), the subset's log good-probability is
      split evenly across its links ([1 − G_S^{1/|S|}] — unbiased for
      independent-alike chains); without it, the raw subset marginal
      [1 − G_S] (the cruder rule the Correlation-heuristic baseline
      uses).  Either way the link is flagged unidentifiable. *)
val link_marginal : ?chain_split:bool -> t -> int -> float

(** [link_marginal_with strategy t e] selects the chain-link fallback
    explicitly (the ablation knob behind [tomo_cli fallback]);
    [link_marginal] is [`Adaptive] / [`Whole] via [chain_split]. *)
val link_marginal_with : fallback -> t -> int -> float

(** [link_identifiable t e] is [true] iff [link_marginal] returned a
    uniquely determined value (always-good links count as
    identifiable). *)
val link_identifiable : t -> int -> bool

(** [congestion_prob t ~corr links] is [P(all links congested)] for a set
    of links in one correlation set, by inclusion–exclusion; [None] if a
    needed good-probability is not identifiable. *)
val congestion_prob : t -> corr:int -> int array -> float option

(** [set_congestion_prob t links] generalizes to links spanning several
    correlation sets (independent across sets, so probabilities
    multiply). *)
val set_congestion_prob : t -> int array -> float option

(** [pattern_logprob t ~corr ~congested ~good] is
    [log P(∩ congested X=1, ∩ good X=0)] within a correlation set —
    the building block of the Bayesian-Correlation MAP scoring.  Uses
    exact inclusion–exclusion when every needed good-probability is
    identifiable, otherwise an independence approximation from the link
    marginals.  The result is clamped to [log 1e-12]. *)
val pattern_logprob :
  t -> corr:int -> congested:int array -> good:int array -> float

(** [n_rows t] / [n_vars t]: system dimensions (reported by the
    experiments, cf. the paper's "minimum number of equations" claim). *)
val n_rows : t -> int

val n_vars : t -> int

(** [ambiguous_links t] is the set of structurally ambiguous effective
    links of the solved system: links sharing their complete path set
    with another effective link ({!Identifiability.ambiguous_links}).
    No estimator — this one included — can attribute congestion to such
    a link rather than to its class mates, so point estimates for them
    are not answerable queries. *)
val ambiguous_links : t -> Tomo_util.Bitset.t
