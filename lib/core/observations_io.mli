(** Plain-text serialization of path observations.

    Real deployments collect path statuses continuously; this format lets
    a measurement pipeline hand data to the tomography engine (and lets
    experiments archive what was observed).  Line-oriented, versioned:

    {v
    tomo-observations v1
    paths <n> intervals <t>
    row <path-id> <status-string>      (one per path)
    v}

    The status string has one character per interval, ['1'] = good,
    ['0'] = congested. *)

val write : Format.formatter -> Observations.t -> unit
val to_string : Observations.t -> string

(** [of_string ?filename s] parses and validates.
    @raise Failure with a ["file:line: ..."]-anchored message on
    malformed input — truncated files (fewer rows than declared), ragged
    rows (wrong status-string length), duplicate or out-of-range row ids,
    and bad status characters are all reported with the offending line
    number.  [filename] (default ["<string>"]) prefixes the message. *)
val of_string : ?filename:string -> string -> Observations.t

val save : string -> Observations.t -> unit

(** [load path] is [of_string ~filename:path] on the file contents, so
    errors point into the file. *)
val load : string -> Observations.t
