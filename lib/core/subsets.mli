(** Correlation subsets (paper §5.2).

    A correlation subset is a non-empty subset of one correlation set;
    the unknowns of the Probability Computation system are the good
    probabilities [P(∩_{e ∈ E} X_e = 0)] of the *potentially congested*
    correlation subsets.  This module provides the canonical subset
    value, the potentially-congested analysis, and the enumeration of
    candidate subsets up to a configured size. *)

type t = private {
  corr : int;  (** correlation-set index *)
  links : int array;  (** sorted, non-empty *)
}

(** [make model ~corr links] canonicalizes and validates: links must be
    non-empty, distinct, and all members of correlation set [corr]. *)
val make : Model.t -> corr:int -> int array -> t

val compare : t -> t -> int
val equal : t -> t -> bool

(** [key s] is a canonical string key (for hash tables). *)
val key : t -> string

val pp : Format.formatter -> t -> unit

(** [effective_links model obs] marks the links on which unknowns can
    live: links traversed by at least one path and by no always-good
    path.  A link on an always-good path is certified good for the whole
    experiment (Separability), so its good probability is 1 and it
    vanishes from every equation; a link traversed by no path can never
    appear in an equation at all. *)
val effective_links : Model.t -> Observations.t -> Tomo_util.Bitset.t

(** [effective_corr_set model ~effective c] is correlation set [c]
    restricted to effective links (sorted). *)
val effective_corr_set :
  Model.t -> effective:Tomo_util.Bitset.t -> int -> int array

(** [complement model ~effective s] is the paper's [Ē]: the other
    effective links of the same correlation set. *)
val complement : Model.t -> effective:Tomo_util.Bitset.t -> t -> int array

(** [candidate_paths model ~effective s] is [Paths(E) \ Paths(Ē)] — the
    paths that traverse [s] but avoid its complement; all equations
    "about" [s] use path sets drawn from this pool (Alg. 1, line 3). *)
val candidate_paths :
  Model.t -> effective:Tomo_util.Bitset.t -> t -> Tomo_util.Bitset.t

(** [inducible model ~effective s] decides whether [s] can appear in an
    equation at all: every link of [s] must be traversed by some path
    avoiding the complement [Ē], otherwise no path set induces exactly
    [s] on its correlation set. *)
val inducible : Model.t -> effective:Tomo_util.Bitset.t -> t -> bool

(** [enumerate model ~effective ~max_size ~limit_per_set] lists, per
    correlation set, the inducible potentially congested subsets of size
    [<= max_size] (at most [limit_per_set] per correlation set),
    singletons first.  Per correlation set at most [limit_per_set * 4]
    subsets are visited; stopping early — by the find cap or the visit
    budget — truncates Ê and counts once into the
    [subsets_enumeration_capped] metric.

    When identifiability pruning is enabled (the default), subset sizes
    that {!Identifiability.inducible_size_witness} proves empty are
    skipped without fanning out their combinations; the skipped visits
    are still charged against the visit budget, so the enumerated list
    and every truncation decision are bit-identical to the exhaustive
    fan-out.  Skipped visits count into the [ident_pruned_sets]
    metric. *)
val enumerate :
  Model.t ->
  effective:Tomo_util.Bitset.t ->
  max_size:int ->
  limit_per_set:int ->
  t list

(** [set_ident_prune b] enables or disables the identifiability pruner
    process-wide (results are bit-identical either way; only the work
    done differs).  The initial value honours [TOMO_IDENT_PRUNE=0]; the
    CLI's [--ident-prune] flag routes here. *)
val set_ident_prune : bool -> unit

val ident_prune_enabled : unit -> bool
