module Bitset = Tomo_util.Bitset
module Cgls = Tomo_linalg.Cgls
module Sparse = Tomo_linalg.Sparse
module Obs = Tomo_obs

let c_solves = Obs.Metrics.counter "prob_engine_solves"

type t = {
  selection : Algorithm1.selection;
  values : float array;
  identifiable : bool array;
  obs : Observations.t;
}

let solve_b (selection : Algorithm1.selection) obs b =
  Obs.Trace.with_span "prob_engine.solve" @@ fun () ->
  Obs.Metrics.incr c_solves;
  let n = Eqn.n_vars selection.Algorithm1.registry in
  let rows =
    Array.map (fun r -> r.Eqn.vars) selection.Algorithm1.rows
  in
  (* Incidence coefficients are exactly 1.0, so the sparse CGLS path
     performs the same floating-point operations as the index-list one. *)
  let a = Sparse.of_incidence ~rows:(Array.length rows) ~cols:n rows in
  let values = Cgls.solve_sparse ~a ~b () in
  let identifiable =
    Array.init n (fun v -> Algorithm1.identifiable selection v)
  in
  { selection; values; identifiable; obs }

let solve (selection : Algorithm1.selection) obs =
  let b =
    Array.map
      (fun r -> Observations.log_all_good_prob obs r.Eqn.paths)
      selection.Algorithm1.rows
  in
  solve_b selection obs b

let solve_with_counts (selection : Algorithm1.selection) obs ~counts =
  let n_rows = Array.length selection.Algorithm1.rows in
  if Array.length counts <> n_rows then
    invalid_arg "Prob_engine.solve_with_counts: one count per row expected";
  let t = Observations.t_intervals obs in
  let b =
    Array.map
      (fun count -> Observations.smoothed_log_prob ~t_intervals:t ~count)
      counts
  in
  solve_b selection obs b

let clamp01 x = max 0.0 (min 1.0 x)

let var_of t s = Eqn.find t.selection.Algorithm1.registry s

let good_prob_est t s =
  match var_of t s with
  | None -> None
  | Some v -> Some (clamp01 (exp t.values.(v)))

let good_prob t s =
  match var_of t s with
  | Some v when t.identifiable.(v) -> Some (clamp01 (exp t.values.(v)))
  | Some _ | None -> None

let model t = t.selection.Algorithm1.model
let effective t = t.selection.Algorithm1.effective

(* Smallest registered subset containing link [e] (its own singleton if
   registered). Returns the variable index. *)
let smallest_var_containing t e =
  let m = model t in
  let c = m.Model.corr_of_link.(e) in
  let singleton = Subsets.make m ~corr:c [| e |] in
  match var_of t singleton with
  | Some v -> Some v
  | None ->
      let best = ref None in
      for v = 0 to Eqn.n_vars t.selection.Algorithm1.registry - 1 do
        let s = Eqn.subset_of_var t.selection.Algorithm1.registry v in
        if
          s.Subsets.corr = c
          && Array.exists (fun x -> x = e) s.Subsets.links
        then
          match !best with
          | Some (_, size) when size <= Array.length s.Subsets.links -> ()
          | _ -> best := Some (v, Array.length s.Subsets.links)
      done;
      Option.map fst !best

(* Observable dependence between two links of a chain subset: pick
   witness paths p ∋ a and q ∋ b sharing as few links as possible, and
   measure the excess joint congestion of Y_p and Y_q over independence,
   normalized by its maximum. 0 = the witnesses congest independently,
   1 = they always congest together. *)
let link_dependence t a b =
  let m = model t in
  let eff = effective t in
  let best = ref None in
  (* One scratch bit set reused across the whole (p, q) witness sweep:
     [copy_into] overwrites it wholesale each round, so the inner loop
     allocates nothing. *)
  let scratch = Bitset.create m.Model.n_links in
  Bitset.iter
    (fun p ->
      Bitset.iter
        (fun q ->
          (* The witnesses must separate the two links: a path containing
             both cannot tell their congestion apart. *)
          if
            p <> q
            && (not (Bitset.get m.Model.path_links.(p) b))
            && not (Bitset.get m.Model.path_links.(q) a)
          then begin
            (* Only shared *effective* links can fake a dependence
               between the witnesses; exonerated shared links never
               congest. *)
            let shared_eff =
              Bitset.copy_into ~into:scratch m.Model.path_links.(p);
              Bitset.inter_into ~into:scratch m.Model.path_links.(q);
              Bitset.inter_into ~into:scratch eff;
              (* the links under test sit on both sides by construction,
                 so discount them *)
              Bitset.clear scratch a;
              Bitset.clear scratch b;
              Bitset.count scratch
            in
            match !best with
            | Some (_, _, s) when s <= shared_eff -> ()
            | _ -> best := Some (p, q, shared_eff)
          end)
        m.Model.link_paths.(b))
    m.Model.link_paths.(a);
  match !best with
  | None -> None
  | Some (p, q, shared_eff) when shared_eff = 0 ->
      let tt = float_of_int (Observations.t_intervals t.obs) in
      let gp = float_of_int (Observations.all_good_count t.obs [| p |]) /. tt
      and gq = float_of_int (Observations.all_good_count t.obs [| q |]) /. tt
      and gpq =
        float_of_int (Observations.all_good_count t.obs [| p; q |]) /. tt
      in
      let cp = 1.0 -. gp and cq = 1.0 -. gq in
      let joint = 1.0 -. gp -. gq +. gpq in
      let indep = cp *. cq in
      let cap = min cp cq -. indep in
      (* A small cap amplifies sampling noise into spurious dependence;
         demand both a solid cap and a strong signal before leaving the
         independent-split reading. *)
      if cap <= 0.05 then Some 0.0
      else
        let rho = max 0.0 (min 1.0 ((joint -. indep) /. cap)) in
        Some (if rho < 0.5 then 0.0 else rho)
  | Some _ -> None (* no clean witnesses: stay with the split *)

(* Quotient estimates for an inexpressible singleton: whenever two
   variables B and B∪{e} are both identifiable, G_{B∪e}/G_B equals G_e
   exactly when e shares no congestion cause with B — e.g. a destination
   cluster where two paths branch after a common upstream link.  Collect
   every such quotient and take the median. *)
let quotient_good_prob t e =
  let m = model t in
  let reg = t.selection.Algorithm1.registry in
  let c = m.Model.corr_of_link.(e) in
  let quotients = ref [] in
  for v = 0 to Eqn.n_vars reg - 1 do
    if t.identifiable.(v) then begin
      let s = Eqn.subset_of_var reg v in
      if
        s.Subsets.corr = c
        && Array.length s.Subsets.links >= 2
        && Array.exists (fun x -> x = e) s.Subsets.links
      then begin
        let b_links =
          Array.of_list
            (List.filter (fun x -> x <> e)
               (Array.to_list s.Subsets.links))
        in
        match var_of t (Subsets.make m ~corr:c b_links) with
        | Some vb when t.identifiable.(vb) ->
            quotients := exp (t.values.(v) -. t.values.(vb)) :: !quotients
        | Some _ | None -> ()
      end
    end
  done;
  match List.sort compare !quotients with
  | [] -> None
  | qs -> Some (clamp01 (List.nth qs (List.length qs / 2)))

type fallback = [ `Whole | `Split | `Adaptive ]

let link_marginal_with strategy t e =
  let m = model t in
  if e < 0 || e >= m.Model.n_links then
    invalid_arg "Prob_engine.link_marginal: link out of range";
  if not (Bitset.get (effective t) e) then 0.0
  else
    match smallest_var_containing t e with
    | Some v -> (
        let s = Eqn.subset_of_var t.selection.Algorithm1.registry v in
        let size = Array.length s.Subsets.links in
        if size = 1 then clamp01 (1.0 -. exp t.values.(v))
        else
          match strategy with
          | `Whole -> clamp01 (1.0 -. exp t.values.(v))
          | `Split ->
              clamp01 (1.0 -. exp (t.values.(v) /. float_of_int size))
          | `Adaptive -> (
              (* Unidentifiable chain link. Observed witness-path
                 dependence decides the reading: correlated chains take
                 the whole-subset marginal; otherwise a quotient estimate
                 if the branching structure offers one, else an even
                 log-space split. *)
              let rho =
                Array.fold_left
                  (fun acc x ->
                    if x = e then acc
                    else
                      match link_dependence t e x with
                      | Some d -> max acc d
                      | None -> acc)
                  0.0 s.Subsets.links
              in
              if rho >= 0.5 then
                let k = float_of_int size in
                let z = t.values.(v) *. (rho +. ((1.0 -. rho) /. k)) in
                clamp01 (1.0 -. exp z)
              else
                match quotient_good_prob t e with
                | Some g -> clamp01 (1.0 -. g)
                | None ->
                    let k = float_of_int size in
                    clamp01 (1.0 -. exp (t.values.(v) /. k))))
    | None -> 0.0

let link_marginal ?(chain_split = true) t e =
  link_marginal_with (if chain_split then `Adaptive else `Whole) t e

let link_identifiable t e =
  let m = model t in
  if not (Bitset.get (effective t) e) then true
  else
    let c = m.Model.corr_of_link.(e) in
    match var_of t (Subsets.make m ~corr:c [| e |]) with
    | Some v -> t.identifiable.(v)
    | None -> false

(* Σ_{A ⊆ set} (−1)^{|A|} G(A ∪ base): the inclusion–exclusion core used
   for both congestion probabilities and pattern probabilities. [get]
   fetches a good-probability or None. *)
let inclusion_exclusion ~get ~set ~base =
  let k = Array.length set in
  if k > 20 then invalid_arg "Prob_engine: subset too large";
  let total = ref 0.0 in
  (try
     for mask = 0 to (1 lsl k) - 1 do
       let members = ref (Array.to_list base) and bits = ref 0 in
       for i = 0 to k - 1 do
         if mask land (1 lsl i) <> 0 then begin
           members := set.(i) :: !members;
           incr bits
         end
       done;
       let g =
         match !members with
         | [] -> Some 1.0
         | ms -> get (Array.of_list ms)
       in
       match g with
       | None -> raise Exit
       | Some g ->
           let sign = if !bits mod 2 = 0 then 1.0 else -1.0 in
           total := !total +. (sign *. g)
     done;
     Some !total
   with Exit -> None)

let congestion_prob t ~corr links =
  let m = model t in
  (* Links outside the effective set are never congested: if any member
     is not effective, the joint congestion probability is 0. *)
  if Array.exists (fun e -> not (Bitset.get (effective t) e)) links then
    Some 0.0
  else
    let get ms = good_prob t (Subsets.make m ~corr ms) in
    Option.map clamp01 (inclusion_exclusion ~get ~set:links ~base:[||])

let set_congestion_prob t links =
  let m = model t in
  let by_corr = Hashtbl.create 4 in
  Array.iter
    (fun e ->
      let c = m.Model.corr_of_link.(e) in
      let prev = try Hashtbl.find by_corr c with Not_found -> [] in
      Hashtbl.replace by_corr c (e :: prev))
    links;
  Hashtbl.fold
    (fun c es acc ->
      match acc with
      | None -> None
      | Some p -> (
          match congestion_prob t ~corr:c (Array.of_list es) with
          | None -> None
          | Some q -> Some (p *. q)))
    by_corr (Some 1.0)

let log_floor = log 1e-12

let pattern_logprob t ~corr ~congested ~good =
  let m = model t in
  let exact =
    let get ms = good_prob t (Subsets.make m ~corr ms) in
    inclusion_exclusion ~get ~set:congested ~base:good
  in
  match exact with
  | Some p when p > 0.0 -> max log_floor (log (min 1.0 p))
  | Some _ -> log_floor
  | None ->
      (* Independence fallback from link marginals. *)
      let acc = ref 0.0 in
      Array.iter
        (fun e ->
          let p = min (1.0 -. 1e-12) (max 1e-12 (link_marginal t e)) in
          acc := !acc +. log p)
        congested;
      Array.iter
        (fun e ->
          let p = min (1.0 -. 1e-12) (max 1e-12 (link_marginal t e)) in
          acc := !acc +. log (1.0 -. p))
        good;
      max log_floor !acc

let n_rows t = Array.length t.selection.Algorithm1.rows
let n_vars t = Eqn.n_vars t.selection.Algorithm1.registry

let ambiguous_links t =
  Identifiability.ambiguous_links (model t) ~effective:(effective t)
