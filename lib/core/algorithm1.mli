(** The paper's Algorithm 1: selection of path sets (§5.3).

    The goal is a *minimum* set of linearly independent equations that
    pins down as many correlation-subset good-probabilities as possible,
    without enumerating all [2^{|P*|}] path sets:

    + enumerate the potentially congested correlation subsets [Ê]
      (variable registry; truncated to a configurable subset size — the
      complexity-control knob of §4 — plus every subset a single-path
      equation induces);
    + seed [P̂] with one path set per subset [E]:
      [Paths(E) \ Paths(Ē)] (lines 1–5) — the greedy independent subset
      of the seed rows is found by one forward elimination and its null
      space by one batched sparse rref, not row-by-row updates;
    + maintain a null-space basis [N] of the selected system and
      repeatedly add a path set whose row reduces the null space, trying
      subsets in decreasing Hamming weight of their [N]-row and, within a
      subset [E], candidate path sets [P ⊆ Paths(E) \ Paths(Ē)] in
      increasing size (lines 8–22); each accepted row updates [N]
      incrementally via Algorithm 2 ({!Tomo_linalg.Nullspace.update});
    + stop when [N] runs out of columns or no candidate makes progress.

    Because the row space only ever grows, a candidate row once found
    dependent stays dependent; each candidate is therefore visited at
    most once across all outer iterations (a per-subset cursor), which
    keeps the scan linear in the candidate budget. *)

type config = {
  max_subset_size : int;
      (** largest correlation-subset size enumerated as a target
          variable (default 3) *)
  limit_per_set : int;
      (** max target subsets per correlation set (default 500) *)
  max_pathset_size : int;
      (** largest candidate path set tried per subset (default 8;
          the paper enumerates all subset sizes, accepting a [2^{n₂}]
          term — this is the truncation that keeps it practical) *)
  max_candidates_per_subset : int;
      (** candidate path sets enumerated per subset (default 300) *)
  tol : float;  (** numerical tolerance for rank decisions *)
  witness_k : int option;
      (** witness vectors for the independence prefilter ([None] =
          {!Tomo_linalg.Nullspace.default_witness_k}, i.e. the
          [TOMO_WITNESS_K] default; [Some 0] forces the exact path).
          Selections are bit-identical whatever the value — the
          prefilter only short-circuits dependent rows. *)
}

val default_config : config

type selection = {
  model : Model.t;
  effective : Tomo_util.Bitset.t;  (** potentially congested links *)
  registry : Eqn.registry;
  rows : Eqn.row array;  (** the selected, linearly independent system *)
  nullspace : Tomo_linalg.Matrix.t;
      (** basis of the null space of the selected system; a variable is
          identifiable iff its row here is zero *)
}

(** [select ?config model obs] runs the algorithm.  [obs] is only used to
    decide which paths are always good (potentially-congested analysis);
    the selection itself is purely structural. *)
val select : ?config:config -> Model.t -> Observations.t -> selection

(** [identifiable sel v] tests whether variable [v] is uniquely
    determined by the selected system. *)
val identifiable : selection -> int -> bool

(** [n_identifiable sel] counts identifiable variables. *)
val n_identifiable : selection -> int
