module Bitset = Tomo_util.Bitset
module Combin = Tomo_util.Combin
module Matrix = Tomo_linalg.Matrix
module Nullspace = Tomo_linalg.Nullspace
module Sparse_gauss = Tomo_linalg.Sparse_gauss

let src = Logs.Src.create "tomo.algorithm1" ~doc:"Path-set selection"

module Log = (val Logs.src_log src : Logs.LOG)
module Obs = Tomo_obs

let c_selections = Obs.Metrics.counter "alg1_selections"
let c_equations = Obs.Metrics.counter "equations_formed"
let c_rows_rejected = Obs.Metrics.counter "equations_rejected_dependent"
let c_candidates = Obs.Metrics.counter "alg1_candidate_rows_materialized"
let g_unknowns = Obs.Metrics.gauge "alg1_unknowns"
let g_nullity = Obs.Metrics.gauge "alg1_final_nullity"

type config = {
  max_subset_size : int;
  limit_per_set : int;
  max_pathset_size : int;
  max_candidates_per_subset : int;
  tol : float;
  witness_k : int option;
}

let default_config =
  {
    max_subset_size = 3;
    limit_per_set = 500;
    max_pathset_size = 8;
    max_candidates_per_subset = 300;
    tol = 1e-8;
    witness_k = None;
  }

type selection = {
  model : Model.t;
  effective : Bitset.t;
  registry : Eqn.registry;
  rows : Eqn.row array;
  nullspace : Matrix.t;
}

(* Per-variable candidate state: rows enumerated lazily from subsets of
   the pool Paths(E) \ Paths(Ē), with a cursor over rows already tested.
   A row found dependent can never become independent again (the row
   space only grows), so the cursor never moves backwards. *)
type cand_state = {
  mutable cands : Eqn.row array option;  (* None = not yet materialized *)
  mutable cursor : int;
}

(* [pool] is the variable's candidate-path pool, Paths(E) \ Paths(Ē) —
   already computed once by the seed phase and reused here instead of
   re-deriving it from the model. *)
let materialize_candidates cfg resolver ~pool =
  let acc = ref [] and n = ref 0 in
  let (_ : int) =
    Combin.iter_subsets_by_size pool ~max_size:cfg.max_pathset_size
      ~limit:cfg.max_candidates_per_subset (fun paths ->
        (match Eqn.row_fast resolver ~paths with
        | Some r ->
            acc := r :: !acc;
            incr n
        | None -> ());
        `Continue)
  in
  Obs.Metrics.incr ~by:!n c_candidates;
  Array.of_list (List.rev !acc)

let select ?(config = default_config) model obs =
  Obs.Trace.with_span "algorithm1.select" @@ fun () ->
  Obs.Metrics.incr c_selections;
  let cfg = config in
  let effective = Subsets.effective_links model obs in
  let registry = Eqn.registry () in
  (* Ê: every subset a single-path equation induces, plus the enumerated
     target subsets up to the configured size. *)
  let (_ : int) = Eqn.register_single_path_vars model ~effective registry in
  let targets =
    Subsets.enumerate model ~effective ~max_size:cfg.max_subset_size
      ~limit_per_set:cfg.limit_per_set
  in
  List.iter (fun s -> ignore (Eqn.add registry s)) targets;
  let n = Eqn.n_vars registry in
  if n = 0 then
    {
      model;
      effective;
      registry;
      rows = [||];
      nullspace = Matrix.make 0 0 0.0;
    }
  else begin
    Obs.Metrics.set_gauge g_unknowns (float_of_int n);
    if Obs.Trace.enabled () then
      Obs.Trace.add_attr "unknowns" (string_of_int n);
    Log.debug (fun m ->
        m "starting selection over %d unknowns (%d target subsets enumerated)"
          n (List.length targets));
    (* Lines 1-5: seed with Paths(E) \ Paths(Ē) for every subset E.  The
       pool is kept for the grow phase, which enumerates its subsets —
       previously it was recomputed from the model per variable.

       The seed system is not grown row by row: all seed rows are
       collected first, the greedy in-order independent subset is found
       by one forward elimination ({!Sparse_gauss.select_independent} —
       the same accept/reject decisions an incremental rank test makes),
       and the survivors are eliminated in a single sparse rref whose
       null space becomes the tracker's starting basis.  The per-row
       O(nvars · p) updates at maximal [p] — the most expensive phase of
       the old loop — collapse into one batched elimination. *)
    let seed_pools = Array.make n [||] in
    let rows = ref [] in
    (* Registry frozen from here on ([Eqn.row] only looks up), so the
       fast resolver is valid for the seed rows and every candidate. *)
    let resolver = Eqn.resolver model ~effective registry in
    let tracker =
      Obs.Trace.with_span "algorithm1.seed" (fun () ->
          let seed_rows = ref [] and n_seed = ref 0 in
          for v = 0 to n - 1 do
            let s = Eqn.subset_of_var registry v in
            let pool = Subsets.candidate_paths model ~effective s in
            if not (Bitset.is_empty pool) then begin
              let paths = Array.of_list (Bitset.to_list pool) in
              seed_pools.(v) <- paths;
              match Eqn.row_fast resolver ~paths with
              | Some row ->
                  seed_rows := row :: !seed_rows;
                  incr n_seed
              | None -> ()
            end
          done;
          let seed_rows = Array.of_list (List.rev !seed_rows) in
          let keep =
            Sparse_gauss.select_independent ~tol:cfg.tol ~cols:n
              (Array.map (fun r -> r.Eqn.vars) seed_rows)
          in
          let kept = ref [] and n_kept = ref 0 in
          Array.iteri
            (fun i row ->
              if keep.(i) then begin
                kept := row :: !kept;
                incr n_kept;
                Obs.Metrics.incr c_equations
              end
              else Obs.Metrics.incr c_rows_rejected)
            seed_rows;
          rows := !kept;
          let kept_vars =
            let a = Array.make !n_kept [||] in
            let i = ref (!n_kept - 1) in
            List.iter
              (fun r ->
                a.(!i) <- r.Eqn.vars;
                decr i)
              !kept;
            a
          in
          let basis =
            Nullspace.basis_of_incidence ~tol:cfg.tol ~rows:!n_kept ~cols:n
              kept_vars
          in
          Nullspace.tracker_of_matrix ~tol:cfg.tol ?witness_k:cfg.witness_k
            basis)
    in
    let try_add row =
      if Nullspace.add_incidence tracker row.Eqn.vars then begin
        rows := row :: !rows;
        Obs.Metrics.incr c_equations;
        true
      end
      else begin
        Obs.Metrics.incr c_rows_rejected;
        false
      end
    in
    (* Lines 8-22: grow the system guided by the null space. *)
    let states =
      Array.init n (fun _ -> { cands = None; cursor = 0 })
    in
    let candidates_of v =
      let st = states.(v) in
      match st.cands with
      | Some c -> c
      | None ->
          let c = materialize_candidates cfg resolver ~pool:seed_pools.(v) in
          st.cands <- Some c;
          c
    in
    let continue_ = ref true in
    Obs.Trace.with_span "algorithm1.grow" (fun () ->
    while !continue_ && Nullspace.dim tracker > 0 do
      (* SortByHammingWeight: try subsets whose N-row has the most
         non-zero entries first.  The weights are maintained by the
         tracker during elimination — reading them is O(n), not the
         O(n·p) recount this loop used to pay per iteration. *)
      let order =
        Array.init n (fun v -> (v, Nullspace.row_weight tracker v))
      in
      Array.sort (fun (_, a) (_, b) -> compare b a) order;
      let progress = ref false in
      let i = ref 0 in
      while (not !progress) && !i < n do
        let v, w = order.(!i) in
        incr i;
        if w > 0 then begin
          let cands = candidates_of v in
          let st = states.(v) in
          while (not !progress) && st.cursor < Array.length cands do
            let row = cands.(st.cursor) in
            st.cursor <- st.cursor + 1;
            if try_add row then progress := true
          done
        end
      done;
      if not !progress then continue_ := false
    done);
    let nullspace = Nullspace.to_matrix tracker in
    Obs.Metrics.set_gauge g_nullity (float_of_int (Matrix.cols nullspace));
    let rows = Array.of_list (List.rev !rows) in
    Log.debug (fun m ->
        m
          "selection done: %d effective links, %d unknowns, %d equations, \
           nullity %d"
          (Bitset.count effective) n (Array.length rows)
          (Matrix.cols nullspace));
    { model; effective; registry; rows; nullspace }
  end

let identifiable sel v =
  if Eqn.n_vars sel.registry = 0 then false
  else Nullspace.in_row_space ~tol:1e-6 sel.nullspace v

let n_identifiable sel =
  let n = Eqn.n_vars sel.registry in
  let count = ref 0 in
  for v = 0 to n - 1 do
    if identifiable sel v then incr count
  done;
  !count
