(** Structural identifiability analysis (Bartolini et al., "On
    Fundamental Bounds of Failure Identifiability by Boolean Network
    Tomography").

    Everything a Boolean monitor sees about a link set is the set of
    paths it touches: two link sets covering exactly the same paths are
    indistinguishable by any observation.  From the routing matrix alone
    this module derives

    - a per-link classification: a link sharing its complete path set
      with another effective link is {e ambiguous} — no estimator can
      attribute congestion to it rather than to its class mates
      (the paper's Condition 1, generalized from the first offending
      pair to full ambiguity classes with representatives);
    - per-correlation-set bounds on the candidate subsets: which subset
      sizes admit {e any} inducible subset (the pruning bound
      {!Subsets.enumerate} consults before fanning out combinations),
      exact inducible-subset counts, and the maximal size [k] below
      which all candidate subsets are pairwise distinguishable.

    The per-set analysis rests on one structural fact: a subset [E] of a
    correlation set is inducible iff it is a union of path
    {e signatures} (traces of paths on the set's effective links), so
    the inducible subsets are the union-closure of the signatures — a
    set usually far smaller than the [C(n,k)] fan-out. *)

type link_class = {
  representative : int;  (** smallest link of the class *)
  links : int array;  (** all links sharing one path set, ascending *)
}

type corr_stats = {
  corr : int;
  n_effective : int;
  n_ambiguous : int;  (** effective links of the set in some ambiguity class *)
  n_signatures : int;  (** distinct path signatures on the set *)
  min_signature : int;  (** smallest signature size; [0] if uncovered *)
  inducible_by_size : int array option;
      (** exact count of inducible subsets per size [1..max_size];
          [None] when the closure budget was exhausted *)
  max_identifiable_size : int option;
      (** largest [k <= max_size] such that all inducible subsets of
          size [<= k] have pairwise-distinct path coverage; [None] when
          the closure was truncated *)
  pruned_sizes : int;
      (** sizes in [1..min max_size n_effective] with provably no
          inducible subset — the slots {!Subsets.enumerate} skips *)
}

type t = {
  max_size : int;
  n_effective : int;
  classes : link_class array;  (** ambiguity classes of size >= 2 *)
  ambiguous : Tomo_util.Bitset.t;  (** links in some class *)
  corr : corr_stats array;
}

val default_max_size : int

(** [covered_links model] is the purely structural stand-in for
    {!Subsets.effective_links} when no observations exist (the CLI's
    per-topology analysis): every link traversed by at least one
    path. *)
val covered_links : Model.t -> Tomo_util.Bitset.t

(** [ambiguity_classes model ~effective] groups the effective links by
    their complete path sets and returns the classes with two or more
    members, ordered by representative.  Counts the member links into
    the [ident_ambiguous_links] metric. *)
val ambiguity_classes : Model.t -> effective:Tomo_util.Bitset.t -> link_class array

(** [ambiguous_links model ~effective] is the set of links in some
    ambiguity class. *)
val ambiguous_links : Model.t -> effective:Tomo_util.Bitset.t -> Tomo_util.Bitset.t

(** [inducible_size_witness model ~effective ~corr ~max_size] is, per
    subset size [1..max_size], whether correlation set [corr] {e may}
    contain an inducible subset of that size: [false] is a proof of
    emptiness (safe to skip the whole size), [true] is not a proof of
    existence.  Sound under any [budget]: when the union-closure
    exceeds the node budget, every undecided size reports [true]. *)
val inducible_size_witness :
  ?budget:int ->
  Model.t ->
  effective:Tomo_util.Bitset.t ->
  corr:int ->
  max_size:int ->
  bool array

(** [analyze model ~effective] runs the full analysis: ambiguity
    classes plus per-correlation-set closure statistics. *)
val analyze :
  ?max_size:int -> ?budget:int -> Model.t -> effective:Tomo_util.Bitset.t -> t

val link_ambiguous : t -> int -> bool

(** Human-readable summary (the [tomo_cli identifiability] output). *)
val pp : Format.formatter -> t -> unit
