module Bitset = Tomo_util.Bitset

type t = {
  t_intervals : int;
  path_good : Bitset.t array;
  counts : int array;  (* per path: number of good intervals *)
  scratch : Bitset.t option Atomic.t;
      (* leased by all_good_count; a concurrent holder makes the next
         caller allocate a private one instead of blocking *)
}

let make ~t_intervals ~path_good =
  if t_intervals <= 0 then invalid_arg "Observations.make: no intervals";
  if Array.length path_good = 0 then
    invalid_arg "Observations.make: no paths";
  Array.iter
    (fun b ->
      if Bitset.length b <> t_intervals then
        invalid_arg "Observations.make: status row has wrong capacity")
    path_good;
  {
    t_intervals;
    path_good;
    counts = Array.map Bitset.count path_good;
    scratch = Atomic.make (Some (Bitset.create t_intervals));
  }

let create ~t_intervals ~n_paths =
  if n_paths <= 0 then invalid_arg "Observations.create: no paths";
  make ~t_intervals
    ~path_good:(Array.init n_paths (fun _ -> Bitset.create t_intervals))

let t_intervals t = t.t_intervals
let n_paths t = Array.length t.path_good

let check_path t p =
  if p < 0 || p >= n_paths t then
    invalid_arg "Observations: path out of range"

let check_interval t i =
  if i < 0 || i >= t.t_intervals then
    invalid_arg "Observations: interval out of range"

let good_in_interval t ~path ~interval =
  check_path t path;
  Bitset.get t.path_good.(path) interval

let set_interval_statuses t ~interval ~good =
  check_interval t interval;
  if Bitset.length good <> n_paths t then
    invalid_arg "Observations.set_interval_statuses: wrong capacity";
  for p = 0 to n_paths t - 1 do
    let was = Bitset.get t.path_good.(p) interval in
    let now = Bitset.get good p in
    if was <> now then begin
      Bitset.assign t.path_good.(p) interval now;
      t.counts.(p) <- t.counts.(p) + (if now then 1 else -1)
    end
  done

let good_count t ~path =
  check_path t path;
  t.counts.(path)

(* Run [f] on a scratch bit set of arbitrary prior content (callers
   overwrite it wholesale before reading).  The cached one is leased with
   a single atomic exchange; if another domain holds it we fall back to a
   fresh allocation, so concurrent readers stay correct. *)
let with_scratch t f =
  match Atomic.exchange t.scratch None with
  | Some b ->
      let r = f b in
      Atomic.set t.scratch (Some b);
      r
  | None -> f (Bitset.create t.t_intervals)

let all_good_count t paths =
  match Array.length paths with
  | 0 -> t.t_intervals
  | 1 ->
      check_path t paths.(0);
      t.counts.(paths.(0))
  | _ ->
      check_path t paths.(0);
      with_scratch t (fun acc ->
          (* One word-level blit seeds the intersection — no clear pass,
             no bit-at-a-time copy. *)
          Bitset.copy_into ~into:acc t.path_good.(paths.(0));
          Array.iter
            (fun p ->
              check_path t p;
              Bitset.inter_into ~into:acc t.path_good.(p))
            paths;
          Bitset.count acc)

let smoothed_log_prob ~t_intervals ~count =
  log ((float_of_int count +. 0.5) /. (float_of_int t_intervals +. 1.0))

let log_all_good_prob t paths =
  smoothed_log_prob ~t_intervals:t.t_intervals ~count:(all_good_count t paths)

let good_frac t ~path =
  check_path t path;
  float_of_int t.counts.(path) /. float_of_int t.t_intervals

let always_good t ~path =
  check_path t path;
  t.counts.(path) = t.t_intervals

let good_paths_at t ~interval =
  check_interval t interval;
  let b = Bitset.create (n_paths t) in
  Array.iteri
    (fun p row -> if Bitset.get row interval then Bitset.set b p)
    t.path_good;
  b

let congested_paths_at t ~interval =
  let good = good_paths_at t ~interval in
  let b = Bitset.create (n_paths t) in
  Bitset.set_all b;
  Bitset.diff_into ~into:b good;
  b

let resample t rng =
  let draw =
    Array.init t.t_intervals (fun _ -> Tomo_util.Rng.int rng t.t_intervals)
  in
  let path_good =
    Array.map
      (fun row ->
        let fresh = Bitset.create t.t_intervals in
        Array.iteri
          (fun dst src -> if Bitset.get row src then Bitset.set fresh dst)
          draw;
        fresh)
      t.path_good
  in
  make ~t_intervals:t.t_intervals ~path_good
