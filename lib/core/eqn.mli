(** Equation construction: the paper's [Row(P, Ê)] and [Matrix(P̂, Ê)]
    (§5.2), over a registry of correlation-subset variables.

    Applying Eq. 1 to a path set [P] gives

    [log P(∩_{p∈P} Y_p = 0) = Σ_C log P(∩_{e ∈ Links(P)∩C} X_e = 0)]

    i.e. an incidence row over the variables [z_E] with [E = Links(P) ∩ C]
    for each correlation set [C] the path set touches (restricted to
    effective links — the good probability of a link certified good is 1
    and drops out).  A row is representable only if every induced subset
    is a registered variable; when variable enumeration is truncated for
    tractability (§4's complexity control), rows inducing unregistered
    subsets are skipped ([row] returns [None]). *)

type registry

val registry : unit -> registry
val n_vars : registry -> int

(** [find reg s] / [add reg s]: lookup / get-or-create the variable index
    of a subset. *)
val find : registry -> Subsets.t -> int option

val add : registry -> Subsets.t -> int

(** [subset_of_var reg v] inverts the registry.
    @raise Invalid_argument on an unknown index. *)
val subset_of_var : registry -> int -> Subsets.t

(** A representable equation: the path set and the variables of its
    incidence row (sorted, distinct). *)
type row = { paths : int array; vars : int array }

(** [induced_subsets model ~effective ~links] groups the effective links
    of a link set by correlation set, yielding the subsets
    [Links(P) ∩ C] of Eq. 1. *)
val induced_subsets :
  Model.t -> effective:Tomo_util.Bitset.t -> links:Tomo_util.Bitset.t ->
  Subsets.t list

(** [row model ~effective reg ~paths] builds the equation for a path set,
    or [None] if some induced subset is not registered or the path set
    touches no effective link. *)
val row :
  Model.t -> effective:Tomo_util.Bitset.t -> registry -> paths:int array ->
  row option

(** A frozen-registry fast path for {!row}: pre-filters each path's
    effective links, resolves induced subsets through a hash table keyed
    by their sorted link arrays (no string keys), and reuses scratch
    buffers across calls.  Build it once the registry stops growing. *)
type resolver

val resolver :
  Model.t -> effective:Tomo_util.Bitset.t -> registry -> resolver

(** [row_fast rz ~paths] returns exactly what {!row} would — the same
    [Some]/[None] decision and the same sorted [vars] — at a fraction of
    the per-call cost.  Must not be used after the registry grows. *)
val row_fast : resolver -> paths:int array -> row option

(** [row_grow] is [row] but registers missing induced subsets instead of
    failing; only returns [None] when the path set touches no effective
    link. *)
val row_grow :
  Model.t -> effective:Tomo_util.Bitset.t -> registry -> paths:int array ->
  row option

(** [register_single_path_vars model ~effective reg] registers the
    induced subsets of every single path — the variables any single-path
    equation needs; returns how many variables were added. *)
val register_single_path_vars :
  Model.t -> effective:Tomo_util.Bitset.t -> registry -> int
