module Bitset = Tomo_util.Bitset
module Matrix = Tomo_linalg.Matrix
module Nullspace = Tomo_linalg.Nullspace

type config = { max_pairs : int }

let default_config = { max_pairs = 30_000 }

let compute ?(config = default_config) model obs =
  let effective = Subsets.effective_links model obs in
  let registry = Eqn.registry () in
  let pools =
    Baseline_rows.pools model ~effective ~max_pairs:config.max_pairs
  in
  let rows = ref [] in
  Array.iter
    (fun paths ->
      match Eqn.row_grow model ~effective registry ~paths with
      | Some row -> rows := row :: !rows
      | None -> ())
    pools;
  let rows = Array.of_list (List.rev !rows) in
  let n_vars = Eqn.n_vars registry in
  (* Null space over the full (redundant) system: dependent rows leave it
     unchanged, so feeding every row through the in-place tracker is
     exact — and its witness prefilter rejects the redundant bulk of the
     baseline pool in O(nnz) per row instead of O(nnz · p). *)
  let nullspace =
    let tr = Nullspace.tracker n_vars in
    Array.iter (fun row -> ignore (Nullspace.add_incidence tr row.Eqn.vars)) rows;
    Nullspace.to_matrix tr
  in
  let selection =
    {
      Algorithm1.model;
      effective;
      registry;
      rows;
      nullspace;
    }
  in
  let engine = Prob_engine.solve selection obs in
  let n_links = model.Model.n_links in
  (* The IMC'10 heuristic reports per-link probabilities with the crude
     whole-subset rule for unexpressible singletons; Correlation-complete
     refines that (chain splitting) — one of the reasons it does better
     on sparse topologies. *)
  let marginals =
    Array.init n_links (Prob_engine.link_marginal ~chain_split:false engine)
  in
  let identifiable =
    Array.init n_links (Prob_engine.link_identifiable engine)
  in
  ( {
      Pc_result.marginals;
      identifiable;
      effective;
      n_vars;
      n_rows = Array.length rows;
    },
    engine )
