module Bitset = Tomo_util.Bitset

let write ppf obs =
  let n = Observations.n_paths obs in
  let t = Observations.t_intervals obs in
  Format.fprintf ppf "tomo-observations v1@.";
  Format.fprintf ppf "paths %d intervals %d@." n t;
  for p = 0 to n - 1 do
    let buf = Bytes.make t '0' in
    for i = 0 to t - 1 do
      if Observations.good_in_interval obs ~path:p ~interval:i then
        Bytes.set buf i '1'
    done;
    Format.fprintf ppf "row %d %s@." p (Bytes.to_string buf)
  done

let to_string obs =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  write ppf obs;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

(* Every parse error points at [filename:lineno] so a truncated or ragged
   measurement archive names the offending line, not just its content —
   the streaming replay sources reuse this parser and surface the same
   diagnostics. *)
let fail ~filename ~lineno fmt =
  Format.kasprintf
    (fun msg -> failwith (Printf.sprintf "%s:%d: %s" filename lineno msg))
    fmt

let parse_status_bits ~filename ~lineno ~expected bits =
  if String.length bits <> expected then
    fail ~filename ~lineno
      "ragged row: expected %d status characters, got %d" expected
      (String.length bits);
  let b = Bitset.create expected in
  String.iteri
    (fun i c ->
      match c with
      | '1' -> Bitset.set b i
      | '0' -> ()
      | c ->
          fail ~filename ~lineno "bad status character %C (expected 0 or 1)"
            c)
    bits;
  b

let of_string ?(filename = "<string>") s =
  let lines =
    String.split_on_char '\n' s
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "")
  in
  let words l = String.split_on_char ' ' l |> List.filter (( <> ) "") in
  let int_of lineno w =
    match int_of_string_opt w with
    | Some v -> v
    | None -> fail ~filename ~lineno "expected integer, got %S" w
  in
  match lines with
  | (_, header) :: rest when header = "tomo-observations v1" ->
      let n_paths = ref 0 and t_intervals = ref 0 in
      let header_seen = ref false in
      let rows = ref [] and n_rows = ref 0 in
      let last_lineno = ref 1 in
      List.iter
        (fun (lineno, line) ->
          last_lineno := lineno;
          match words line with
          | [ "paths"; n; "intervals"; t ] ->
              if !header_seen then
                fail ~filename ~lineno "duplicate 'paths ... intervals' line";
              header_seen := true;
              n_paths := int_of lineno n;
              t_intervals := int_of lineno t;
              if !n_paths <= 0 || !t_intervals <= 0 then
                fail ~filename ~lineno
                  "expected positive path and interval counts, got %d and %d"
                  !n_paths !t_intervals
          | "row" :: _ when not !header_seen ->
              fail ~filename ~lineno
                "row before the 'paths ... intervals' line"
          | [ "row"; id; bits ] ->
              let id = int_of lineno id in
              if id < 0 || id >= !n_paths then
                fail ~filename ~lineno "row id %d out of range [0, %d)" id
                  !n_paths;
              if List.mem_assoc id !rows then
                fail ~filename ~lineno "duplicate row %d" id;
              let b =
                parse_status_bits ~filename ~lineno ~expected:!t_intervals
                  bits
              in
              rows := (id, b) :: !rows;
              incr n_rows
          | _ -> fail ~filename ~lineno "unrecognized line %S" line)
        rest;
      if not !header_seen then
        fail ~filename ~lineno:!last_lineno
          "missing 'paths ... intervals' line";
      if !n_rows <> !n_paths then
        fail ~filename ~lineno:!last_lineno
          "truncated input: expected %d rows, found %d" !n_paths !n_rows;
      let path_good = Array.make !n_paths (Bitset.create 1) in
      List.iter (fun (id, b) -> path_good.(id) <- b) !rows;
      Observations.make ~t_intervals:!t_intervals ~path_good
  | (lineno, header) :: _ ->
      fail ~filename ~lineno "unknown observations format: %S" header
  | [] -> fail ~filename ~lineno:1 "empty observations file"

let save path obs =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let ppf = Format.formatter_of_out_channel oc in
      write ppf obs;
      Format.pp_print_flush ppf ())

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string ~filename:path (In_channel.input_all ic))
