module Bitset = Tomo_util.Bitset
module Combin = Tomo_util.Combin
module Obs = Tomo_obs

(* §4 complexity control observability: how many correlation subsets the
   enumeration produced, and how often a correlation set hit the
   per-set cap (truncating Ê, which trades completeness for time). *)
let c_enumerated = Obs.Metrics.counter "subsets_enumerated"
let c_capped = Obs.Metrics.counter "subsets_enumeration_capped"

type t = { corr : int; links : int array }

let make model ~corr links =
  if Array.length links = 0 then invalid_arg "Subsets.make: empty subset";
  if corr < 0 || corr >= Model.n_corr_sets model then
    invalid_arg "Subsets.make: bad correlation set";
  let sorted = Array.copy links in
  Array.sort compare sorted;
  Array.iteri
    (fun i e ->
      if i > 0 && sorted.(i - 1) = e then
        invalid_arg "Subsets.make: duplicate link";
      if model.Model.corr_of_link.(e) <> corr then
        invalid_arg "Subsets.make: link outside correlation set")
    sorted;
  { corr; links = sorted }

let compare a b =
  match Stdlib.compare a.corr b.corr with
  | 0 -> Stdlib.compare a.links b.links
  | c -> c

let equal a b = compare a b = 0

let key s =
  Printf.sprintf "%d:%s" s.corr
    (String.concat "," (Array.to_list (Array.map string_of_int s.links)))

let pp ppf s =
  Format.fprintf ppf "{C%d:%a}" s.corr
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Format.pp_print_int)
    (Array.to_list s.links)

let effective_links model obs =
  let n_links = model.Model.n_links in
  let eff = Bitset.create n_links in
  (* Start from links that are observed at all. *)
  for e = 0 to n_links - 1 do
    if not (Bitset.is_empty model.Model.link_paths.(e)) then Bitset.set eff e
  done;
  (* Remove links certified good by an always-good path. *)
  for p = 0 to model.Model.n_paths - 1 do
    if Observations.always_good obs ~path:p then
      Bitset.diff_into ~into:eff model.Model.path_links.(p)
  done;
  eff

let effective_corr_set model ~effective c =
  Array.of_list
    (List.filter
       (fun e -> Bitset.get effective e)
       (Array.to_list (Model.corr_set_links model c)))

let complement model ~effective s =
  let in_subset = Hashtbl.create 8 in
  Array.iter (fun e -> Hashtbl.add in_subset e ()) s.links;
  Array.of_list
    (List.filter
       (fun e -> not (Hashtbl.mem in_subset e))
       (Array.to_list (effective_corr_set model ~effective s.corr)))

let candidate_paths model ~effective s =
  let pool = Model.paths_of_links model s.links in
  let comp = complement model ~effective s in
  Bitset.diff_into ~into:pool (Model.paths_of_links model comp);
  pool

let inducible model ~effective s =
  let pool = candidate_paths model ~effective s in
  Array.for_all
    (fun e -> not (Bitset.disjoint pool model.Model.link_paths.(e)))
    s.links

let enumerate model ~effective ~max_size ~limit_per_set =
  if max_size < 1 then invalid_arg "Subsets.enumerate: max_size < 1";
  if limit_per_set < 1 then invalid_arg "Subsets.enumerate: bad limit";
  let acc = ref [] in
  for c = 0 to Model.n_corr_sets model - 1 do
    let eff = effective_corr_set model ~effective c in
    if Array.length eff > 0 then begin
      let found = ref 0 in
      let (_ : int) =
        Combin.iter_subsets_by_size eff ~max_size
          ~limit:(limit_per_set * 4) (fun links ->
            if !found >= limit_per_set then begin
              Obs.Metrics.incr c_capped;
              `Stop
            end
            else begin
              let s = make model ~corr:c links in
              if inducible model ~effective s then begin
                acc := s :: !acc;
                incr found
              end;
              `Continue
            end)
      in
      Obs.Metrics.incr ~by:!found c_enumerated
    end
  done;
  List.rev !acc
