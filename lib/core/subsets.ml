module Bitset = Tomo_util.Bitset
module Combin = Tomo_util.Combin
module Obs = Tomo_obs

(* §4 complexity control observability: how many correlation subsets the
   enumeration produced, how often a correlation set's enumeration was
   truncated (by the per-set find cap or by the visit budget — either
   way Ê lost completeness), and how many combination visits the
   identifiability pruner saved. *)
let c_enumerated = Obs.Metrics.counter "subsets_enumerated"
let c_capped = Obs.Metrics.counter "subsets_enumeration_capped"
let c_pruned = Obs.Metrics.counter "ident_pruned_sets"

(* The identifiability pruner is a pure skip of provably empty work, so
   it defaults on; TOMO_IDENT_PRUNE=0 (or --ident-prune false) restores
   the exhaustive fan-out for parity runs. *)
let ident_prune =
  ref
    (match Sys.getenv_opt "TOMO_IDENT_PRUNE" with
    | Some "0" -> false
    | _ -> true)

let set_ident_prune b = ident_prune := b
let ident_prune_enabled () = !ident_prune

type t = { corr : int; links : int array }

let make model ~corr links =
  if Array.length links = 0 then invalid_arg "Subsets.make: empty subset";
  if corr < 0 || corr >= Model.n_corr_sets model then
    invalid_arg "Subsets.make: bad correlation set";
  let sorted = Array.copy links in
  Array.sort compare sorted;
  Array.iteri
    (fun i e ->
      if i > 0 && sorted.(i - 1) = e then
        invalid_arg "Subsets.make: duplicate link";
      if model.Model.corr_of_link.(e) <> corr then
        invalid_arg "Subsets.make: link outside correlation set")
    sorted;
  { corr; links = sorted }

let compare a b =
  match Stdlib.compare a.corr b.corr with
  | 0 -> Stdlib.compare a.links b.links
  | c -> c

let equal a b = compare a b = 0

let key s =
  Printf.sprintf "%d:%s" s.corr
    (String.concat "," (Array.to_list (Array.map string_of_int s.links)))

let pp ppf s =
  Format.fprintf ppf "{C%d:%a}" s.corr
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Format.pp_print_int)
    (Array.to_list s.links)

let effective_links model obs =
  let n_links = model.Model.n_links in
  let eff = Bitset.create n_links in
  (* Start from links that are observed at all. *)
  for e = 0 to n_links - 1 do
    if not (Bitset.is_empty model.Model.link_paths.(e)) then Bitset.set eff e
  done;
  (* Remove links certified good by an always-good path. *)
  for p = 0 to model.Model.n_paths - 1 do
    if Observations.always_good obs ~path:p then
      Bitset.diff_into ~into:eff model.Model.path_links.(p)
  done;
  eff

(* Both filters sit on the enumeration hot path (once per visited
   subset via [candidate_paths]); they fill a counted array directly
   instead of round-tripping through lists. *)
let effective_corr_set model ~effective c =
  let all = Model.corr_set_links model c in
  let n = ref 0 in
  Array.iter (fun e -> if Bitset.get effective e then incr n) all;
  let out = Array.make !n 0 in
  let j = ref 0 in
  Array.iter
    (fun e ->
      if Bitset.get effective e then begin
        out.(!j) <- e;
        incr j
      end)
    all;
  out

let complement model ~effective s =
  (* [s.links] and the correlation set are both sorted ascending, so
     membership is a linear merge. *)
  let all = Model.corr_set_links model s.corr in
  let links = s.links in
  let nl = Array.length links in
  let keep e i = Bitset.get effective e && (!i >= nl || links.(!i) <> e) in
  let n = ref 0 in
  let i = ref 0 in
  Array.iter
    (fun e ->
      while !i < nl && links.(!i) < e do
        incr i
      done;
      if keep e i then incr n)
    all;
  let out = Array.make !n 0 in
  let j = ref 0 in
  i := 0;
  Array.iter
    (fun e ->
      while !i < nl && links.(!i) < e do
        incr i
      done;
      if keep e i then begin
        out.(!j) <- e;
        incr j
      end)
    all;
  out

let candidate_paths model ~effective s =
  let pool = Model.paths_of_links model s.links in
  let comp = complement model ~effective s in
  Bitset.diff_into ~into:pool (Model.paths_of_links model comp);
  pool

let inducible model ~effective s =
  let pool = candidate_paths model ~effective s in
  Array.for_all
    (fun e -> not (Bitset.disjoint pool model.Model.link_paths.(e)))
    s.links

(* Enumeration state machine, per correlation set.  The semantics the
   pruner must preserve exactly: subsets are visited by size then
   lexicographic order; each visit first checks the [limit_per_set * 4]
   visit budget (stop when exhausted), then the [limit_per_set] find cap
   (stop when reached), then runs the inducibility test.  Either early
   stop with unvisited subsets remaining truncates Ê and counts once
   into [subsets_enumeration_capped] (the budget path used to be
   silently uncounted).

   When pruning is on, [Identifiability.inducible_size_witness] proves
   some sizes contain no inducible subset at all; those sizes are
   skipped without generating their combinations, but their would-be
   visits are still charged against the budget ([Combin.choose]
   arithmetic instead of iteration), so the surviving visit sequence —
   and with it every found subset, counter and truncation decision — is
   bit-identical to the exhaustive fan-out. *)
let enumerate model ~effective ~max_size ~limit_per_set =
  if max_size < 1 then invalid_arg "Subsets.enumerate: max_size < 1";
  if limit_per_set < 1 then invalid_arg "Subsets.enumerate: bad limit";
  let prune = !ident_prune in
  let acc = ref [] in
  for c = 0 to Model.n_corr_sets model - 1 do
    let eff = effective_corr_set model ~effective c in
    let n = Array.length eff in
    if n > 0 then begin
      let witness =
        if prune then
          Some
            (Identifiability.inducible_size_witness model ~effective ~corr:c
               ~max_size)
        else None
      in
      let budget = limit_per_set * 4 in
      let size_cap = min max_size n in
      let visited = ref 0 in
      let found = ref 0 in
      let truncated = ref false in
      let stop = ref false in
      let k = ref 1 in
      while (not !stop) && !k <= size_cap do
        let total = Combin.choose n !k in
        let remaining = budget - !visited in
        if remaining <= 0 || !found >= limit_per_set then begin
          (* The next visit (size [k] is non-empty) would have stopped
             the exhaustive enumeration here. *)
          truncated := true;
          stop := true
        end
        else begin
          let skip =
            match witness with Some w -> not w.(!k - 1) | None -> false
          in
          if skip then begin
            (* Provably nothing inducible in this size: charge the
               budget arithmetically instead of fanning out. *)
            Obs.Metrics.incr ~by:(min total remaining) c_pruned;
            if total >= remaining then begin
              visited := budget;
              if total > remaining then begin
                truncated := true;
                stop := true
              end
            end
            else visited := !visited + total
          end
          else begin
            let visited_k =
              Combin.iter_sized eff ~size:!k ~limit:remaining (fun links ->
                  if !found >= limit_per_set then begin
                    truncated := true;
                    stop := true;
                    `Stop
                  end
                  else begin
                    let s = make model ~corr:c links in
                    if inducible model ~effective s then begin
                      acc := s :: !acc;
                      incr found
                    end;
                    `Continue
                  end)
            in
            visited := !visited + visited_k;
            if (not !stop) && visited_k < total && visited_k >= remaining
            then begin
              truncated := true;
              stop := true
            end
          end
        end;
        incr k
      done;
      if !truncated then Obs.Metrics.incr c_capped;
      Obs.Metrics.incr ~by:!found c_enumerated
    end
  done;
  List.rev !acc
