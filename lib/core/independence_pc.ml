module Bitset = Tomo_util.Bitset
module Cgls = Tomo_linalg.Cgls
module Matrix = Tomo_linalg.Matrix
module Sparse = Tomo_linalg.Sparse
module Nullspace = Tomo_linalg.Nullspace

type config = { max_pairs : int }

let default_config = { max_pairs = 30_000 }

let compute ?(config = default_config) model obs =
  let effective = Subsets.effective_links model obs in
  let n_links = model.Model.n_links in
  (* Variables: effective links only; others have good probability 1. *)
  let var_of_link = Array.make n_links (-1) in
  let n_vars = ref 0 in
  Bitset.iter
    (fun e ->
      var_of_link.(e) <- !n_vars;
      incr n_vars)
    effective;
  let n_vars = !n_vars in
  let marginals = Array.make n_links 0.0 in
  let identifiable = Array.make n_links true in
  if n_vars = 0 then
    { Pc_result.marginals; identifiable; effective; n_vars = 0; n_rows = 0 }
  else begin
    let pools = Baseline_rows.pools model ~effective ~max_pairs:config.max_pairs in
    let rows = ref [] and rhs = ref [] in
    Array.iter
      (fun paths ->
        let links = Model.links_of_paths model paths in
        let vars = ref [] in
        Bitset.iter
          (fun e -> if var_of_link.(e) >= 0 then vars := var_of_link.(e) :: !vars)
          links;
        match !vars with
        | [] -> ()
        | vs ->
            rows := Array.of_list (List.rev vs) :: !rows;
            rhs := Observations.log_all_good_prob obs paths :: !rhs)
      pools;
    let rows = Array.of_list (List.rev !rows) in
    let b = Array.of_list (List.rev !rhs) in
    (* Baseline rows form a 0/1 incidence system; route it through the
       sparse layer (bit-identical to the index-list CGLS). *)
    let a = Sparse.of_incidence ~rows:(Array.length rows) ~cols:n_vars rows in
    let z = Cgls.solve_sparse ~a ~b () in
    (* Identifiability via the incidence null space of the system; the
       tracker's witness prefilter makes the redundant rows O(nnz). *)
    let nullspace =
      let tr = Nullspace.tracker n_vars in
      Array.iter (fun row -> ignore (Nullspace.add_incidence tr row)) rows;
      Nullspace.to_matrix tr
    in
    for e = 0 to n_links - 1 do
      let v = var_of_link.(e) in
      if v >= 0 then begin
        marginals.(e) <- max 0.0 (min 1.0 (1.0 -. exp z.(v)));
        identifiable.(e) <- Nullspace.in_row_space ~tol:1e-6 nullspace v
      end
    done;
    {
      Pc_result.marginals;
      identifiable;
      effective;
      n_vars;
      n_rows = Array.length rows;
    }
  end
