(** Path observations over [T] intervals and the empirical probability
    estimates the equation systems are built from.

    The observable input to every algorithm in the paper is, per interval
    [t], which paths were good and which congested ([Y_p(t)],
    Assumption 2).  From those, Probability Computation needs empirical
    estimates of [P(∩_{p ∈ P} Y_p = 0)] — the probability that all paths
    of a set were simultaneously good — which it takes logs of to get
    linear equations (Eq. 1, footnote 3).

    Frequencies are smoothed with an add-half (Krichevsky–Trofimov) rule,
    [(count + 1/2) / (T + 1)], so the logarithm is defined even for path
    sets never observed jointly good.

    Observations are mutable at interval granularity:
    {!set_interval_statuses} replaces one interval's column of path
    statuses and incrementally maintains per-path good counts, which is
    what lets the streaming engine ({!Tomo_stream}) run a sliding window
    without recounting.  Counts-dependent reads ([good_frac],
    [always_good], singleton [all_good_count]) are O(1).

    Concurrency: mutation is single-writer, but read-only queries
    (including [all_good_count], which used to share one scratch bit set)
    are safe from multiple domains — the scratch is leased atomically and
    a concurrent reader falls back to a private allocation. *)

type t

(** [make ~t_intervals ~path_good] wraps per-path status rows: bit [t] of
    [path_good.(p)] must be set iff path [p] was good during interval
    [t].  @raise Invalid_argument if a row has the wrong capacity or
    there are no paths/intervals. *)
val make : t_intervals:int -> path_good:Tomo_util.Bitset.t array -> t

(** [create ~t_intervals ~n_paths] is an all-congested observation matrix
    (every status bit clear) — the empty sliding window the streaming
    engine fills in place. *)
val create : t_intervals:int -> n_paths:int -> t

val t_intervals : t -> int
val n_paths : t -> int

(** [good_in_interval t ~path ~interval]: status of one cell. *)
val good_in_interval : t -> path:int -> interval:int -> bool

(** [set_interval_statuses t ~interval ~good] replaces interval
    [interval]'s column: path [p] is recorded good iff bit [p] of [good]
    is set.  Per-path good counts are updated incrementally (only cells
    that change are touched).  @raise Invalid_argument if [good] is not
    sized to [n_paths t] or the interval is out of range. *)
val set_interval_statuses :
  t -> interval:int -> good:Tomo_util.Bitset.t -> unit

(** [good_count t ~path] is the number of intervals in which the path was
    good, O(1) from the maintained counts. *)
val good_count : t -> path:int -> int

(** [all_good_count t paths] is the number of intervals in which every
    path in [paths] was good.  [all_good_count t [||]] = [t_intervals]. *)
val all_good_count : t -> int array -> int

(** [smoothed_log_prob ~t_intervals ~count] is the add-half smoothed
    log-frequency [log ((count + 1/2) / (T + 1))] — exposed so callers
    holding incrementally maintained counts (the streaming engine) build
    bit-identical right-hand sides to {!log_all_good_prob}. *)
val smoothed_log_prob : t_intervals:int -> count:int -> float

(** [log_all_good_prob t paths] is [log ((count + 1/2) / (T + 1))] where
    [count = all_good_count t paths]. *)
val log_all_good_prob : t -> int array -> float

(** [good_frac t ~path] is the unsmoothed fraction of intervals in which
    the path was good. *)
val good_frac : t -> path:int -> float

(** [always_good t ~path] is [true] iff the path was good in every
    interval — such paths certify all their links good (Separability). *)
val always_good : t -> path:int -> bool

(** [congested_paths_at t ~interval] is the set of paths congested during
    one interval (the Boolean-Inference input [P^c(t)]). *)
val congested_paths_at : t -> interval:int -> Tomo_util.Bitset.t

(** [good_paths_at t ~interval] is its complement. *)
val good_paths_at : t -> interval:int -> Tomo_util.Bitset.t

(** [resample t rng] draws an interval bootstrap replicate: [T] intervals
    sampled from [t] with replacement (iid resampling is consistent with
    the paper's model of intervals as iid draws of the congestion
    state).  Used by {!Confidence} to put error bars on estimated
    probabilities. *)
val resample : t -> Tomo_util.Rng.t -> t
