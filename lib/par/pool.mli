(** Fixed-size domain pool for embarrassingly parallel experiment loops.

    The experiment harness averages many independent seeds and scenario
    cells; each task derives its own {!Tomo_util.Rng} stream from the
    spec seed, so tasks share no mutable state and the parallel schedule
    cannot change the numbers — [parallel_map] is bit-identical to
    [Array.map], only faster.

    Design:
    - a fixed set of worker domains ([jobs - 1] of them) blocks on a
      condition variable waiting for batches of tasks;
    - tasks are claimed in contiguous {e chunks} (guided
      self-scheduling: each grab takes [remaining / (2 * jobs)] indices,
      at least one), so fine-grained batches pay O(jobs log n) lock and
      condition-variable round-trips rather than one per task; chunking
      only changes who runs which index, never the per-index results, so
      [-j1] and [-jN] stay bit-identical;
    - the {e caller participates}: [parallel_map] claims tasks from its
      own batch while waiting, so a task may itself call [parallel_map]
      (nested use) without deadlock — the nested caller simply drains
      its own batch, with idle workers helping;
    - results are written into a preallocated slot per index, so output
      order always matches input order regardless of completion order;
    - the first exception a task raises is re-raised in the caller (with
      its original backtrace) after the batch drains;
    - at [jobs = 1] no domains are spawned and every combinator runs
      plain sequential code.

    Observability (via {!Tomo_obs.Metrics}, off unless a sink is
    configured): counters [pool_tasks_run], [pool_parallel_batches],
    [pool_sequential_batches]; gauges [pool_jobs], [pool_queue_depth];
    histograms [pool_task_wait_s] (enqueue-to-claim latency) and
    [pool_batch_s] (whole-batch wall clock). *)

type t

(** [create ~jobs ()] spawns a pool executing up to [jobs] tasks
    concurrently ([jobs - 1] worker domains plus the calling domain).
    [jobs] is clamped to at least 1; at 1 the pool is a sequential
    fallback with no domains. *)
val create : jobs:int -> unit -> t

(** Concurrency of the pool (worker domains + the participating caller). *)
val jobs : t -> int

(** [shutdown t] asks the workers to exit and joins their domains.
    Idempotent.  Submitting to a shut-down pool raises
    [Invalid_argument]. *)
val shutdown : t -> unit

(** [default_jobs ()] is the pool size used when none is given
    explicitly: [TOMO_JOBS] if set to a positive integer, otherwise
    [max 1 (Domain.recommended_domain_count () - 1)] (one domain is left
    for the OS / the caller's siblings). *)
val default_jobs : unit -> int

(** The process-wide shared pool, created on first use with
    {!default_jobs} and shut down automatically at exit. *)
val default : unit -> t

(** [set_default_jobs n] replaces the process-wide pool with one of
    [n] jobs (shutting down the previous one, if created).  This is what
    [tomo_cli -j N] calls before running a command. *)
val set_default_jobs : int -> unit

(** [parallel_map ?pool f xs] is [Array.map f xs] with the applications
    distributed over the pool (the {!default} one unless [pool] is
    given).  Order-preserving; exceptions propagate. *)
val parallel_map : ?pool:t -> ('a -> 'b) -> 'a array -> 'b array

(** [parallel_iter ?pool f xs] runs [f] on every element, in parallel,
    returning when all are done. *)
val parallel_iter : ?pool:t -> ('a -> unit) -> 'a array -> unit

(** [map_list ?pool f xs] is [List.map f xs] through {!parallel_map}. *)
val map_list : ?pool:t -> ('a -> 'b) -> 'a list -> 'b list
