module Obs = Tomo_obs

let c_tasks = Obs.Metrics.counter "pool_tasks_run"
let c_batches = Obs.Metrics.counter "pool_parallel_batches"
let c_sequential = Obs.Metrics.counter "pool_sequential_batches"
let g_jobs = Obs.Metrics.gauge "pool_jobs"
let g_queue_depth = Obs.Metrics.gauge "pool_queue_depth"
let h_task_wait = Obs.Metrics.histogram "pool_task_wait_s"
let h_batch = Obs.Metrics.histogram "pool_batch_s"

(* A batch is one parallel_map call: [n] independent tasks claimed by
   index.  Workers and the submitting caller race to claim contiguous
   index chunks; the caller blocks on [done_c] (claiming whenever
   possible) until [completed = n]. *)
type batch = {
  run : int -> unit;
  n : int;
  mutable next : int;
  mutable completed : int;
  enqueued_at : float;
}

type t = {
  jobs : int;
  m : Mutex.t;
  work : Condition.t; (* new batch available, or shutdown *)
  done_c : Condition.t; (* a task finished *)
  mutable open_batches : batch list; (* batches with unclaimed tasks *)
  mutable closed : bool;
  mutable domains : unit Domain.t list;
}

let jobs t = t.jobs

(* Number of still-unclaimed tasks across open batches (for the queue
   depth gauge). Called with [t.m] held. *)
let queue_depth t =
  List.fold_left (fun acc b -> acc + (b.n - b.next)) 0 t.open_batches

(* Claim a contiguous chunk of task indices, preferring [own] so a
   nested caller always drives its own batch.  Guided self-scheduling:
   each grab takes [remaining / (2 * jobs)] indices (at least one), so a
   large batch costs O(jobs log n) claims and condition-variable
   round-trips instead of one per task, while the shrinking tail keeps
   skewed task durations balanced.  Called with [t.m] held. *)
let claim ?own t =
  let from b =
    if b.next < b.n then begin
      let start = b.next in
      let remaining = b.n - start in
      let len = min remaining (max 1 (remaining / (2 * t.jobs))) in
      b.next <- start + len;
      if b.next >= b.n then
        t.open_batches <- List.filter (fun b' -> b' != b) t.open_batches;
      Some (b, start, len)
    end
    else None
  in
  match own with
  | Some b when b.next < b.n -> from b
  | _ ->
      let rec go = function
        | [] -> None
        | b :: rest -> ( match from b with Some c -> Some c | None -> go rest)
      in
      go t.open_batches

let run_claimed t (b, start, len) =
  if Obs.Metrics.enabled () then
    Obs.Metrics.observe h_task_wait (Unix.gettimeofday () -. b.enqueued_at);
  (* [run] stores its own result/exception; it must not raise. *)
  for i = start to start + len - 1 do
    b.run i
  done;
  Obs.Metrics.incr ~by:len c_tasks;
  Mutex.lock t.m;
  b.completed <- b.completed + len;
  Condition.broadcast t.done_c;
  Mutex.unlock t.m

let worker t =
  let rec loop () =
    Mutex.lock t.m;
    let rec await () =
      match claim t with
      | Some c ->
          Mutex.unlock t.m;
          run_claimed t c;
          loop ()
      | None ->
          if t.closed then Mutex.unlock t.m
          else begin
            Condition.wait t.work t.m;
            await ()
          end
    in
    await ()
  in
  loop ()

let create ~jobs () =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      m = Mutex.create ();
      work = Condition.create ();
      done_c = Condition.create ();
      open_batches = [];
      closed = false;
      domains = [];
    }
  in
  if jobs > 1 then
    t.domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  Obs.Metrics.set_gauge g_jobs (float_of_int jobs);
  t

let shutdown t =
  Mutex.lock t.m;
  let domains = t.domains in
  t.closed <- true;
  t.domains <- [];
  Condition.broadcast t.work;
  Mutex.unlock t.m;
  List.iter Domain.join domains

(* ------------------------------------------------------------------ *)
(* Default pool                                                        *)
(* ------------------------------------------------------------------ *)

let default_jobs () =
  match Sys.getenv_opt "TOMO_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ ->
          failwith
            (Printf.sprintf "TOMO_JOBS: expected a positive integer, got %S" s))
  | None -> max 1 (Domain.recommended_domain_count () - 1)

let default_pool : t option ref = ref None
let exit_hook = ref false

(* Blocked worker domains would keep the runtime alive at exit (the
   main domain joins every spawned domain on shutdown); drain whatever
   default pool is current once the main domain is done.  Every path
   that installs a default pool must call this — [set_default_jobs]
   used to skip it, so calling it before any [default ()] left worker
   domains parked on the condition variable forever and hung the
   process at exit. *)
let ensure_exit_hook () =
  if not !exit_hook then begin
    exit_hook := true;
    at_exit (fun () ->
        match !default_pool with
        | Some t -> shutdown t
        | None -> ())
  end

let default () =
  match !default_pool with
  | Some t when not t.closed -> t
  | _ ->
      let t = create ~jobs:(default_jobs ()) () in
      default_pool := Some t;
      ensure_exit_hook ();
      t

let set_default_jobs n =
  let before =
    match !default_pool with
    | Some t ->
        shutdown t;
        Some t.jobs
    | None -> None
  in
  default_pool := Some (create ~jobs:n ());
  ensure_exit_hook ();
  Obs.Events.emit "pool_resize"
    [
      ( "from",
        match before with Some j -> string_of_int j | None -> "none" );
      ("jobs", string_of_int n);
    ]

(* ------------------------------------------------------------------ *)
(* Combinators                                                         *)
(* ------------------------------------------------------------------ *)

let sequential_map f xs =
  Obs.Metrics.incr c_sequential;
  Array.map f xs

let parallel_map ?pool f xs =
  let n = Array.length xs in
  let t = match pool with Some t -> t | None -> default () in
  if t.jobs = 1 || n <= 1 then sequential_map f xs
  else begin
    let results = Array.make n None in
    let first_exn = Mutex.create () in
    let exn : (exn * Printexc.raw_backtrace) option ref = ref None in
    let run i =
      match f xs.(i) with
      | v -> results.(i) <- Some v
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          Mutex.lock first_exn;
          if !exn = None then exn := Some (e, bt);
          Mutex.unlock first_exn
    in
    let b =
      { run; n; next = 0; completed = 0; enqueued_at = Unix.gettimeofday () }
    in
    Mutex.lock t.m;
    if t.closed then begin
      Mutex.unlock t.m;
      invalid_arg "Pool.parallel_map: pool is shut down"
    end;
    t.open_batches <- t.open_batches @ [ b ];
    if Obs.Metrics.enabled () then
      Obs.Metrics.set_gauge g_queue_depth (float_of_int (queue_depth t));
    Condition.broadcast t.work;
    (* Participate: claim (preferring our own batch) until every task of
       [b] has completed — possibly executed by a worker. *)
    let rec drive () =
      if b.completed < b.n then
        match claim ~own:b t with
        | Some c ->
            Mutex.unlock t.m;
            run_claimed t c;
            Mutex.lock t.m;
            drive ()
        | None ->
            Condition.wait t.done_c t.m;
            drive ()
    in
    drive ();
    Mutex.unlock t.m;
    Obs.Metrics.incr c_batches;
    if Obs.Metrics.enabled () then
      Obs.Metrics.observe h_batch (Unix.gettimeofday () -. b.enqueued_at);
    (match !exn with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map
      (function
        | Some v -> v
        | None ->
            (* only reachable when a sibling task raised first *)
            assert false)
      results
  end

let parallel_iter ?pool f xs = ignore (parallel_map ?pool f xs : unit array)

let map_list ?pool f xs =
  Array.to_list (parallel_map ?pool f (Array.of_list xs))
