module Bitset = Tomo_util.Bitset
module Obs = Tomo_obs
module Pool = Tomo_par.Pool

let c_ticks = Obs.Metrics.counter "stream_ticks"
let c_estimates = Obs.Metrics.counter "stream_estimates"
let c_reselects = Obs.Metrics.counter "stream_reselects"
let g_occupancy = Obs.Metrics.gauge "stream_window_occupancy"
let g_capacity = Obs.Metrics.gauge "stream_window_capacity"
let h_tick = Obs.Metrics.histogram "stream_tick_s"
let h_solve = Obs.Metrics.histogram "stream_solve_s"
let h_corrset = Obs.Metrics.histogram "stream_corrset_solve_s"

(* Per-tick stage latencies for the serve loop's profile: ingest is the
   window push + incremental count update, reselect the (occasional)
   Algorithm 1 re-run, solve the estimate, snapshot the atomic save.
   Summing the four stage histograms' sums recovers ~all of
   [stream_tick_s] + snapshot time, so a latency regression names its
   stage. *)
let h_stage_ingest = Obs.Metrics.histogram "stream_stage_ingest_s"
let h_stage_reselect = Obs.Metrics.histogram "stream_stage_reselect_s"
let h_stage_solve = Obs.Metrics.histogram "stream_stage_solve_s"
let h_stage_snapshot = Obs.Metrics.histogram "stream_stage_snapshot_s"

(* The engine's cached view of the selected equation system.  [counts]
   is maintained incrementally: pushing a batch changes exactly one ring
   slot, so each row's all-good count moves by the difference between the
   evicted and the fresh column.  [always_good] records the observation
   input the selection was derived from — Algorithm 1 reads observations
   only through the always-good path set, so the selection stays valid
   exactly as long as that set does. *)
type selection_state = {
  selection : Tomo.Algorithm1.selection;
  row_masks : Bitset.t array;  (* per row: its path set over paths *)
  counts : int array;  (* per row: all-good count over the window *)
  always_good : Bitset.t;
}

type t = {
  model : Tomo.Model.t;
  select_config : Tomo.Algorithm1.config option;
  window : Window.t;
  mutable sel : selection_state option;
  (* Per-engine lifetime stats behind [status] — the global Metrics
     counters aggregate across engines and reset with the registry, so
     the status view keeps its own. *)
  mutable n_estimates : int;
  mutable n_reselects : int;
  mutable last_estimate_tick : int;  (* -1 = none yet *)
  mutable last_rows : int;
  mutable last_vars : int;
}

type estimate = {
  tick : int;
  result : Tomo.Pc_result.t;
  engine : Tomo.Prob_engine.t;
}

let create ?select_config ~model ~window () =
  if window <= 0 then invalid_arg "Engine.create: no window capacity";
  {
    model;
    select_config;
    window = Window.create ~capacity:window ~n_paths:model.Tomo.Model.n_paths;
    sel = None;
    n_estimates = 0;
    n_reselects = 0;
    last_estimate_tick = -1;
    last_rows = 0;
    last_vars = 0;
  }

let window t = t.window
let ticks t = Window.ticks t.window

let snapshot t = Snapshot.capture t.window

let of_snapshot ?select_config ~model snap =
  if snap.Snapshot.n_paths <> model.Tomo.Model.n_paths then
    invalid_arg
      (Printf.sprintf
         "Engine.of_snapshot: snapshot has %d paths, model has %d"
         snap.Snapshot.n_paths model.Tomo.Model.n_paths);
  {
    model;
    select_config;
    window = Snapshot.window_of snap;
    sel = None;
    n_estimates = 0;
    n_reselects = 0;
    last_estimate_tick = -1;
    last_rows = 0;
    last_vars = 0;
  }

let paths_mask n_paths paths =
  let b = Bitset.create n_paths in
  Array.iter (fun p -> Bitset.set b p) paths;
  b

let build_selection t ~always =
  Obs.Trace.with_span "stream.reselect" @@ fun () ->
  Obs.Metrics.incr c_reselects;
  t.n_reselects <- t.n_reselects + 1;
  Obs.Events.emit "reselect"
    [
      ("tick", string_of_int (Window.ticks t.window));
      ("always_good", string_of_int (Bitset.count always));
    ];
  let t0 = Unix.gettimeofday () in
  let selection =
    Tomo.Algorithm1.select ?config:t.select_config t.model
      (Window.observations t.window)
  in
  let n_paths = t.model.Tomo.Model.n_paths in
  let rows = selection.Tomo.Algorithm1.rows in
  let row_masks =
    Array.map (fun r -> paths_mask n_paths r.Tomo.Eqn.paths) rows
  in
  let counts = Array.make (Array.length rows) 0 in
  Window.iter_columns
    (fun col ->
      Array.iteri
        (fun i mask ->
          if Bitset.subset mask col then counts.(i) <- counts.(i) + 1)
        row_masks)
    t.window;
  if Obs.Metrics.enabled () then
    Obs.Metrics.observe h_stage_reselect (Unix.gettimeofday () -. t0);
  { selection; row_masks; counts; always_good = always }

(* Refresh [sel.counts] after one ring slot was replaced. *)
let update_counts sel ~evicted ~fresh =
  Array.iteri
    (fun i mask ->
      let was = Bitset.subset mask evicted
      and now = Bitset.subset mask fresh in
      if was <> now then
        sel.counts.(i) <- (sel.counts.(i) + if now then 1 else -1))
    sel.row_masks

let solve ?pool t =
  Obs.Trace.with_span "stream.solve" @@ fun () ->
  let s = Option.get t.sel in
  let obs = Window.observations t.window in
  let t0 = Unix.gettimeofday () in
  let engine =
    Tomo.Prob_engine.solve_with_counts s.selection obs ~counts:s.counts
  in
  if Obs.Metrics.enabled () then
    Obs.Metrics.observe h_solve (Unix.gettimeofday () -. t0);
  (* Marginal extraction fans out per correlation set: each set's links
     are independent reads of the solved engine, and the correlation
     sets partition the links, so the scatter below writes every link
     exactly once and the schedule cannot change any value. *)
  let n_links = t.model.Tomo.Model.n_links in
  let marginals = Array.make n_links 0.0 in
  let identifiable = Array.make n_links true in
  let per_set =
    Pool.parallel_map ?pool
      (fun c ->
        let t1 = Unix.gettimeofday () in
        let links = Tomo.Model.corr_set_links t.model c in
        let cells =
          Array.map
            (fun e ->
              ( Tomo.Prob_engine.link_marginal engine e,
                Tomo.Prob_engine.link_identifiable engine e ))
            links
        in
        if Obs.Metrics.enabled () then
          Obs.Metrics.observe h_corrset (Unix.gettimeofday () -. t1);
        (links, cells))
      (Array.init (Tomo.Model.n_corr_sets t.model) Fun.id)
  in
  Array.iter
    (fun (links, cells) ->
      Array.iteri
        (fun i e ->
          let m, ident = cells.(i) in
          marginals.(e) <- m;
          identifiable.(e) <- ident)
        links)
    per_set;
  Obs.Metrics.incr c_estimates;
  if Obs.Metrics.enabled () then
    Obs.Metrics.observe h_stage_solve (Unix.gettimeofday () -. t0);
  let n_vars = Tomo.Eqn.n_vars s.selection.Tomo.Algorithm1.registry in
  let n_rows = Array.length s.selection.Tomo.Algorithm1.rows in
  t.n_estimates <- t.n_estimates + 1;
  t.last_estimate_tick <- Window.ticks t.window;
  t.last_rows <- n_rows;
  t.last_vars <- n_vars;
  {
    tick = Window.ticks t.window;
    result =
      {
        Tomo.Pc_result.marginals;
        identifiable;
        effective = s.selection.Tomo.Algorithm1.effective;
        n_vars;
        n_rows;
      };
    engine;
  }

let ensure_selection t =
  let always = Window.always_good_paths t.window in
  match t.sel with
  | Some s when Bitset.equal s.always_good always -> ()
  | _ -> t.sel <- Some (build_selection t ~always)

let ingest ?pool t good =
  Obs.Trace.with_span "stream.tick" @@ fun () ->
  let t0 = Unix.gettimeofday () in
  Obs.Metrics.incr c_ticks;
  let evicted = Window.push t.window good in
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.set_gauge g_occupancy
      (float_of_int (Window.occupancy t.window));
    Obs.Metrics.set_gauge g_capacity
      (float_of_int (Window.capacity t.window))
  end;
  let est =
    if not (Window.is_full t.window) then begin
      if Obs.Metrics.enabled () then
        Obs.Metrics.observe h_stage_ingest (Unix.gettimeofday () -. t0);
      None
    end
    else begin
      (match (t.sel, evicted) with
      | Some s, Some evicted
        when Bitset.equal s.always_good (Window.always_good_paths t.window)
        ->
          update_counts s ~evicted ~fresh:good;
          if Obs.Metrics.enabled () then
            Obs.Metrics.observe h_stage_ingest (Unix.gettimeofday () -. t0)
      | _ ->
          (* The ingest stage ends where re-selection begins: charge the
             push + count bookkeeping here, the Algorithm 1 re-run to
             [stream_stage_reselect_s] inside [build_selection]. *)
          if Obs.Metrics.enabled () then
            Obs.Metrics.observe h_stage_ingest (Unix.gettimeofday () -. t0);
          ensure_selection t);
      Some (solve ?pool t)
    end
  in
  if Obs.Metrics.enabled () then
    Obs.Metrics.observe h_tick (Unix.gettimeofday () -. t0);
  est

let current ?pool t =
  if not (Window.is_full t.window) then None
  else begin
    ensure_selection t;
    Some (solve ?pool t)
  end

let run ?pool ?snapshot_out ?(snapshot_every = 1) ?max_ticks t source
    ~on_tick =
  if snapshot_every <= 0 then
    invalid_arg "Engine.run: non-positive snapshot interval";
  let budget = match max_ticks with Some k -> k | None -> max_int in
  let save_snapshot path =
    let t0 = Unix.gettimeofday () in
    Snapshot.save path (snapshot t);
    if Obs.Metrics.enabled () then
      Obs.Metrics.observe h_stage_snapshot (Unix.gettimeofday () -. t0)
  in
  let maybe_snapshot () =
    match snapshot_out with
    | Some path when Window.ticks t.window mod snapshot_every = 0 ->
        save_snapshot path
    | _ -> ()
  in
  let rec loop last n =
    if n >= budget then last
    else
      match Source.next source with
      | None -> last
      | Some good ->
          let est = ingest ?pool t good in
          on_tick t est;
          maybe_snapshot ();
          loop (match est with Some _ -> est | None -> last) (n + 1)
  in
  let last = loop None 0 in
  (* Always leave a snapshot at the stopping point, so a shutdown that
     falls between snapshot cadence ticks still resumes exactly here. *)
  (match snapshot_out with
  | Some path -> save_snapshot path
  | None -> ());
  last

(* ------------------------------------------------------------------ *)
(* Status snapshot (for the telemetry exporter)                        *)
(* ------------------------------------------------------------------ *)

type status = {
  st_ticks : int;
  st_occupancy : int;
  st_capacity : int;
  st_full : bool;
  st_estimates : int;
  st_reselects : int;
  st_last_estimate_tick : int option;
  st_last_rows : int option;
  st_last_vars : int option;
}

(* A status is an immutable copy of the engine's scalar state: the serve
   loop captures one per tick and publishes it, so the exporter thread
   renders a consistent snapshot without ever touching live engine
   internals. *)
let status t =
  {
    st_ticks = Window.ticks t.window;
    st_occupancy = Window.occupancy t.window;
    st_capacity = Window.capacity t.window;
    st_full = Window.is_full t.window;
    st_estimates = t.n_estimates;
    st_reselects = t.n_reselects;
    st_last_estimate_tick =
      (if t.last_estimate_tick < 0 then None else Some t.last_estimate_tick);
    st_last_rows = (if t.last_estimate_tick < 0 then None else Some t.last_rows);
    st_last_vars = (if t.last_estimate_tick < 0 then None else Some t.last_vars);
  }

let json_escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_opt_int buf = function
  | None -> Buffer.add_string buf "null"
  | Some v -> Buffer.add_string buf (string_of_int v)

let status_json ?uptime_s ?snapshot_age_s ?last_error st =
  let b = Buffer.create 256 in
  Printf.bprintf b
    "{\"status\":\"%s\",\"ticks\":%d,\"window\":{\"occupancy\":%d,\
     \"capacity\":%d,\"full\":%s}"
    (if st.st_full then "ok" else "warming_up")
    st.st_ticks st.st_occupancy st.st_capacity
    (if st.st_full then "true" else "false");
  Printf.bprintf b ",\"estimates\":%d,\"reselects\":%d" st.st_estimates
    st.st_reselects;
  Buffer.add_string b ",\"last_estimate\":";
  (match st.st_last_estimate_tick with
  | None -> Buffer.add_string b "null"
  | Some tick ->
      Printf.bprintf b "{\"tick\":%d,\"rows\":" tick;
      add_opt_int b st.st_last_rows;
      Buffer.add_string b ",\"vars\":";
      add_opt_int b st.st_last_vars;
      Buffer.add_char b '}');
  (match uptime_s with
  | None -> ()
  | Some u -> Printf.bprintf b ",\"uptime_s\":%.3f" u);
  Buffer.add_string b ",\"snapshot_age_s\":";
  (match snapshot_age_s with
  | None -> Buffer.add_string b "null"
  | Some a -> Printf.bprintf b "%.3f" a);
  Buffer.add_string b ",\"last_error\":";
  (match last_error with
  | None -> Buffer.add_string b "null"
  | Some e ->
      Buffer.add_char b '"';
      json_escape b e;
      Buffer.add_char b '"');
  Buffer.add_char b '}';
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Diffable final report                                                *)
(* ------------------------------------------------------------------ *)

let report_to_string ~window est =
  let r = est.result in
  let n_links = Array.length r.Tomo.Pc_result.marginals in
  let buf = Buffer.create (n_links * 32) in
  Buffer.add_string buf "tomo-report v1\n";
  Buffer.add_string buf
    (Printf.sprintf "ticks %d window %d links %d\n" est.tick window n_links);
  Buffer.add_string buf
    (Printf.sprintf "rows %d vars %d\n" r.Tomo.Pc_result.n_rows
       r.Tomo.Pc_result.n_vars);
  for e = 0 to n_links - 1 do
    Buffer.add_string buf
      (Printf.sprintf "link %d %.17g %d\n" e
         r.Tomo.Pc_result.marginals.(e)
         (if r.Tomo.Pc_result.identifiable.(e) then 1 else 0))
  done;
  Buffer.contents buf
