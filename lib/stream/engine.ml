module Bitset = Tomo_util.Bitset
module Obs = Tomo_obs
module Pool = Tomo_par.Pool

let c_ticks = Obs.Metrics.counter "stream_ticks"
let c_estimates = Obs.Metrics.counter "stream_estimates"
let c_reselects = Obs.Metrics.counter "stream_reselects"
let g_occupancy = Obs.Metrics.gauge "stream_window_occupancy"
let g_capacity = Obs.Metrics.gauge "stream_window_capacity"
let h_tick = Obs.Metrics.histogram "stream_tick_s"
let h_solve = Obs.Metrics.histogram "stream_solve_s"
let h_corrset = Obs.Metrics.histogram "stream_corrset_solve_s"

(* The engine's cached view of the selected equation system.  [counts]
   is maintained incrementally: pushing a batch changes exactly one ring
   slot, so each row's all-good count moves by the difference between the
   evicted and the fresh column.  [always_good] records the observation
   input the selection was derived from — Algorithm 1 reads observations
   only through the always-good path set, so the selection stays valid
   exactly as long as that set does. *)
type selection_state = {
  selection : Tomo.Algorithm1.selection;
  row_masks : Bitset.t array;  (* per row: its path set over paths *)
  counts : int array;  (* per row: all-good count over the window *)
  always_good : Bitset.t;
}

type t = {
  model : Tomo.Model.t;
  select_config : Tomo.Algorithm1.config option;
  window : Window.t;
  mutable sel : selection_state option;
}

type estimate = {
  tick : int;
  result : Tomo.Pc_result.t;
  engine : Tomo.Prob_engine.t;
}

let create ?select_config ~model ~window () =
  if window <= 0 then invalid_arg "Engine.create: no window capacity";
  {
    model;
    select_config;
    window = Window.create ~capacity:window ~n_paths:model.Tomo.Model.n_paths;
    sel = None;
  }

let window t = t.window
let ticks t = Window.ticks t.window

let snapshot t = Snapshot.capture t.window

let of_snapshot ?select_config ~model snap =
  if snap.Snapshot.n_paths <> model.Tomo.Model.n_paths then
    invalid_arg
      (Printf.sprintf
         "Engine.of_snapshot: snapshot has %d paths, model has %d"
         snap.Snapshot.n_paths model.Tomo.Model.n_paths);
  { model; select_config; window = Snapshot.window_of snap; sel = None }

let paths_mask n_paths paths =
  let b = Bitset.create n_paths in
  Array.iter (fun p -> Bitset.set b p) paths;
  b

let build_selection t ~always =
  Obs.Trace.with_span "stream.reselect" @@ fun () ->
  Obs.Metrics.incr c_reselects;
  let selection =
    Tomo.Algorithm1.select ?config:t.select_config t.model
      (Window.observations t.window)
  in
  let n_paths = t.model.Tomo.Model.n_paths in
  let rows = selection.Tomo.Algorithm1.rows in
  let row_masks =
    Array.map (fun r -> paths_mask n_paths r.Tomo.Eqn.paths) rows
  in
  let counts = Array.make (Array.length rows) 0 in
  Window.iter_columns
    (fun col ->
      Array.iteri
        (fun i mask ->
          if Bitset.subset mask col then counts.(i) <- counts.(i) + 1)
        row_masks)
    t.window;
  { selection; row_masks; counts; always_good = always }

(* Refresh [sel.counts] after one ring slot was replaced. *)
let update_counts sel ~evicted ~fresh =
  Array.iteri
    (fun i mask ->
      let was = Bitset.subset mask evicted
      and now = Bitset.subset mask fresh in
      if was <> now then
        sel.counts.(i) <- (sel.counts.(i) + if now then 1 else -1))
    sel.row_masks

let solve ?pool t =
  Obs.Trace.with_span "stream.solve" @@ fun () ->
  let s = Option.get t.sel in
  let obs = Window.observations t.window in
  let t0 = Unix.gettimeofday () in
  let engine =
    Tomo.Prob_engine.solve_with_counts s.selection obs ~counts:s.counts
  in
  if Obs.Metrics.enabled () then
    Obs.Metrics.observe h_solve (Unix.gettimeofday () -. t0);
  (* Marginal extraction fans out per correlation set: each set's links
     are independent reads of the solved engine, and the correlation
     sets partition the links, so the scatter below writes every link
     exactly once and the schedule cannot change any value. *)
  let n_links = t.model.Tomo.Model.n_links in
  let marginals = Array.make n_links 0.0 in
  let identifiable = Array.make n_links true in
  let per_set =
    Pool.parallel_map ?pool
      (fun c ->
        let t1 = Unix.gettimeofday () in
        let links = Tomo.Model.corr_set_links t.model c in
        let cells =
          Array.map
            (fun e ->
              ( Tomo.Prob_engine.link_marginal engine e,
                Tomo.Prob_engine.link_identifiable engine e ))
            links
        in
        if Obs.Metrics.enabled () then
          Obs.Metrics.observe h_corrset (Unix.gettimeofday () -. t1);
        (links, cells))
      (Array.init (Tomo.Model.n_corr_sets t.model) Fun.id)
  in
  Array.iter
    (fun (links, cells) ->
      Array.iteri
        (fun i e ->
          let m, ident = cells.(i) in
          marginals.(e) <- m;
          identifiable.(e) <- ident)
        links)
    per_set;
  Obs.Metrics.incr c_estimates;
  {
    tick = Window.ticks t.window;
    result =
      {
        Tomo.Pc_result.marginals;
        identifiable;
        effective = s.selection.Tomo.Algorithm1.effective;
        n_vars = Tomo.Eqn.n_vars s.selection.Tomo.Algorithm1.registry;
        n_rows = Array.length s.selection.Tomo.Algorithm1.rows;
      };
    engine;
  }

let ensure_selection t =
  let always = Window.always_good_paths t.window in
  match t.sel with
  | Some s when Bitset.equal s.always_good always -> ()
  | _ -> t.sel <- Some (build_selection t ~always)

let ingest ?pool t good =
  Obs.Trace.with_span "stream.tick" @@ fun () ->
  let t0 = Unix.gettimeofday () in
  Obs.Metrics.incr c_ticks;
  let evicted = Window.push t.window good in
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.set_gauge g_occupancy
      (float_of_int (Window.occupancy t.window));
    Obs.Metrics.set_gauge g_capacity
      (float_of_int (Window.capacity t.window))
  end;
  let est =
    if not (Window.is_full t.window) then None
    else begin
      (match (t.sel, evicted) with
      | Some s, Some evicted
        when Bitset.equal s.always_good (Window.always_good_paths t.window)
        ->
          update_counts s ~evicted ~fresh:good
      | _ -> ensure_selection t);
      Some (solve ?pool t)
    end
  in
  if Obs.Metrics.enabled () then
    Obs.Metrics.observe h_tick (Unix.gettimeofday () -. t0);
  est

let current ?pool t =
  if not (Window.is_full t.window) then None
  else begin
    ensure_selection t;
    Some (solve ?pool t)
  end

let run ?pool ?snapshot_out ?(snapshot_every = 1) ?max_ticks t source
    ~on_tick =
  if snapshot_every <= 0 then
    invalid_arg "Engine.run: non-positive snapshot interval";
  let budget = match max_ticks with Some k -> k | None -> max_int in
  let maybe_snapshot () =
    match snapshot_out with
    | Some path when Window.ticks t.window mod snapshot_every = 0 ->
        Snapshot.save path (snapshot t)
    | _ -> ()
  in
  let rec loop last n =
    if n >= budget then last
    else
      match Source.next source with
      | None -> last
      | Some good ->
          let est = ingest ?pool t good in
          on_tick t est;
          maybe_snapshot ();
          loop (match est with Some _ -> est | None -> last) (n + 1)
  in
  let last = loop None 0 in
  (* Always leave a snapshot at the stopping point, so a shutdown that
     falls between snapshot cadence ticks still resumes exactly here. *)
  (match snapshot_out with
  | Some path -> Snapshot.save path (snapshot t)
  | None -> ());
  last

(* ------------------------------------------------------------------ *)
(* Diffable final report                                                *)
(* ------------------------------------------------------------------ *)

let report_to_string ~window est =
  let r = est.result in
  let n_links = Array.length r.Tomo.Pc_result.marginals in
  let buf = Buffer.create (n_links * 32) in
  Buffer.add_string buf "tomo-report v1\n";
  Buffer.add_string buf
    (Printf.sprintf "ticks %d window %d links %d\n" est.tick window n_links);
  Buffer.add_string buf
    (Printf.sprintf "rows %d vars %d\n" r.Tomo.Pc_result.n_rows
       r.Tomo.Pc_result.n_vars);
  for e = 0 to n_links - 1 do
    Buffer.add_string buf
      (Printf.sprintf "link %d %.17g %d\n" e
         r.Tomo.Pc_result.marginals.(e)
         (if r.Tomo.Pc_result.identifiable.(e) then 1 else 0))
  done;
  Buffer.contents buf
