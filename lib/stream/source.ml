module Bitset = Tomo_util.Bitset
module Obs = Tomo_obs

module type S = sig
  type conn

  val n_paths : conn -> int
  val next : conn -> Bitset.t option
  val close : conn -> unit
end

type t = Source : (module S with type conn = 'c) * 'c -> t

let n_paths (Source ((module M), conn)) = M.n_paths conn
let next (Source ((module M), conn)) = M.next conn
let close (Source ((module M), conn)) = M.close conn

let fold source f init =
  let rec go acc =
    match next source with None -> acc | Some good -> go (f acc good)
  in
  go init

let drop source n =
  let rec go dropped =
    if dropped >= n then dropped
    else match next source with None -> dropped | Some _ -> go (dropped + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* tomo-trace v1 over an input channel (file, stdin, or later a socket
   stream — anything line-oriented).  The record grammar itself lives
   in {!Record}, shared with the socket ingestion plane.               *)
(* ------------------------------------------------------------------ *)

type trace_conn = {
  ic : in_channel;
  owns_channel : bool;
  rcd : Record.t;
  mutable closed : bool;
  mutable eof : bool;
}

module Trace_source = struct
  type conn = trace_conn

  let n_paths c = Option.value ~default:0 (Record.n_paths c.rcd)

  (* Feed lines until one carries a tick batch; [None] = clean EOF. *)
  let rec next c =
    if c.closed || c.eof then None
    else
      match In_channel.input_line c.ic with
      | None ->
          c.eof <- true;
          Obs.Events.emit "source_eof"
            [
              ("source", Record.origin c.rcd);
              ("ticks", string_of_int (Record.next_tick c.rcd));
            ];
          None
      | Some line -> (
          match Record.feed c.rcd line with
          | Record.Tick good -> Some good
          | Record.Blank | Record.Header | Record.Paths _ -> next c)

  let close c =
    if not c.closed then begin
      c.closed <- true;
      if c.owns_channel then close_in c.ic
    end
end

let of_trace_channel ?(filename = "<channel>") ?(owns_channel = false) ic =
  let rcd = Record.create ~origin:filename () in
  let conn = { ic; owns_channel; rcd; closed = false; eof = false } in
  (* Validate the header and path count eagerly, so a wrong file fails
     at open time rather than on the first [next]. *)
  let rec eat_until_paths saw_header =
    match In_channel.input_line ic with
    | None ->
        if saw_header then
          Record.fail rcd "truncated trace: missing 'paths <n>' line"
        else Record.fail_at ~origin:filename ~lineno:1 "empty trace"
    | Some line -> (
        match Record.feed rcd line with
        | Record.Paths _ -> ()
        | Record.Header -> eat_until_paths true
        | Record.Blank -> eat_until_paths saw_header
        | Record.Tick _ -> assert false (* unreachable before Paths *))
  in
  eat_until_paths false;
  Obs.Events.emit "source_open"
    [
      ("source", filename);
      ("paths", string_of_int (Option.get (Record.n_paths rcd)));
    ];
  Source ((module Trace_source), conn)

let of_trace_file path =
  if path = "-" then of_trace_channel ~filename:"<stdin>" stdin
  else
    of_trace_channel ~filename:path ~owns_channel:true (open_in path)

(* ------------------------------------------------------------------ *)
(* Replaying a batch observations matrix interval by interval           *)
(* ------------------------------------------------------------------ *)

type obs_conn = { obs : Tomo.Observations.t; mutable cursor : int }

module Obs_source = struct
  type conn = obs_conn

  let n_paths c = Tomo.Observations.n_paths c.obs

  let next c =
    if c.cursor >= Tomo.Observations.t_intervals c.obs then None
    else begin
      let good =
        Tomo.Observations.good_paths_at c.obs ~interval:c.cursor
      in
      c.cursor <- c.cursor + 1;
      Some good
    end

  let close _ = ()
end

let of_observations obs =
  Obs.Events.emit "source_open"
    [
      ("source", "<observations>");
      ("paths", string_of_int (Tomo.Observations.n_paths obs));
    ];
  Source ((module Obs_source), { obs; cursor = 0 })

let of_observations_file path = of_observations (Tomo.Observations_io.load path)

(* ------------------------------------------------------------------ *)
(* Format sniffing: accept either replayable format by header           *)
(* ------------------------------------------------------------------ *)

let of_replay_file path =
  if path = "-" then of_trace_file path
  else
    let header =
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> try input_line ic with End_of_file -> "")
    in
    match String.trim header with
    | "tomo-observations v1" -> of_observations_file path
    | "tomo-trace v1" -> of_trace_file path
    | "" ->
        failwith
          (Printf.sprintf
             "%s: empty or truncated replay file — expected a \
              'tomo-trace v1' or 'tomo-observations v1' header"
             path)
    | other ->
        Record.fail_at ~origin:path ~lineno:1
          "unknown replay format %S (expected 'tomo-trace v1' or \
           'tomo-observations v1')"
          other
