module Bitset = Tomo_util.Bitset
module Obs = Tomo_obs

module type S = sig
  type conn

  val n_paths : conn -> int
  val next : conn -> Bitset.t option
  val close : conn -> unit
end

type t = Source : (module S with type conn = 'c) * 'c -> t

let n_paths (Source ((module M), conn)) = M.n_paths conn
let next (Source ((module M), conn)) = M.next conn
let close (Source ((module M), conn)) = M.close conn

let fold source f init =
  let rec go acc =
    match next source with None -> acc | Some good -> go (f acc good)
  in
  go init

let drop source n =
  let rec go dropped =
    if dropped >= n then dropped
    else match next source with None -> dropped | Some _ -> go (dropped + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* tomo-trace v1 over an input channel (file, stdin, or later a socket
   stream — anything line-oriented)                                     *)
(* ------------------------------------------------------------------ *)

let fail ~filename ~lineno fmt =
  Format.kasprintf
    (fun msg -> failwith (Printf.sprintf "%s:%d: %s" filename lineno msg))
    fmt

type trace_conn = {
  ic : in_channel;
  filename : string;
  owns_channel : bool;
  paths : int;
  mutable lineno : int;
  mutable next_tick : int;
  mutable closed : bool;
  mutable eof : bool;
}

let input_trimmed_line conn =
  match In_channel.input_line conn.ic with
  | None -> None
  | Some l ->
      conn.lineno <- conn.lineno + 1;
      Some (String.trim l)

(* Skip blank lines; [None] = clean end of stream. *)
let rec next_payload_line conn =
  match input_trimmed_line conn with
  | None -> None
  | Some "" -> next_payload_line conn
  | Some l -> Some l

let words l = String.split_on_char ' ' l |> List.filter (( <> ) "")

module Trace_source = struct
  type conn = trace_conn

  let n_paths c = c.paths

  let parse_batch c line =
    match words line with
    | [ "tick"; id; bits ] ->
        let id =
          match int_of_string_opt id with
          | Some v -> v
          | None ->
              fail ~filename:c.filename ~lineno:c.lineno
                "expected integer tick id, got %S" id
        in
        if id <> c.next_tick then
          fail ~filename:c.filename ~lineno:c.lineno
            "out-of-order tick: expected %d, got %d (truncated or \
             reordered trace?)"
            c.next_tick id;
        if String.length bits <> c.paths then
          fail ~filename:c.filename ~lineno:c.lineno
            "ragged tick: expected %d status characters, got %d" c.paths
            (String.length bits);
        let good = Bitset.create c.paths in
        String.iteri
          (fun p ch ->
            match ch with
            | '1' -> Bitset.set good p
            | '0' -> ()
            | ch ->
                fail ~filename:c.filename ~lineno:c.lineno
                  "bad status character %C (expected 0 or 1)" ch)
          bits;
        c.next_tick <- c.next_tick + 1;
        good
    | _ ->
        fail ~filename:c.filename ~lineno:c.lineno "unrecognized line %S"
          line

  let next c =
    if c.closed || c.eof then None
    else
      match next_payload_line c with
      | None ->
          c.eof <- true;
          Obs.Events.emit "source_eof"
            [
              ("source", c.filename);
              ("ticks", string_of_int c.next_tick);
            ];
          None
      | Some line -> Some (parse_batch c line)

  let close c =
    if not c.closed then begin
      c.closed <- true;
      if c.owns_channel then close_in c.ic
    end
end

let of_trace_channel ?(filename = "<channel>") ?(owns_channel = false) ic =
  let conn =
    {
      ic;
      filename;
      owns_channel;
      paths = 0;
      lineno = 0;
      next_tick = 0;
      closed = false;
      eof = false;
    }
  in
  (match next_payload_line conn with
  | Some "tomo-trace v1" -> ()
  | Some l ->
      fail ~filename ~lineno:conn.lineno "unknown trace format: %S" l
  | None -> fail ~filename ~lineno:1 "empty trace");
  let paths =
    match next_payload_line conn with
    | Some l -> (
        match words l with
        | [ "paths"; n ] -> (
            match int_of_string_opt n with
            | Some v when v > 0 -> v
            | _ ->
                fail ~filename ~lineno:conn.lineno
                  "expected a positive path count, got %S" n)
        | _ ->
            fail ~filename ~lineno:conn.lineno
              "expected 'paths <n>', got %S" l)
    | None ->
        fail ~filename ~lineno:conn.lineno "truncated trace: missing \
                                            'paths <n>' line"
  in
  let conn = { conn with paths } in
  Obs.Events.emit "source_open"
    [ ("source", filename); ("paths", string_of_int paths) ];
  Source ((module Trace_source), conn)

let of_trace_file path =
  if path = "-" then of_trace_channel ~filename:"<stdin>" stdin
  else
    of_trace_channel ~filename:path ~owns_channel:true (open_in path)

(* ------------------------------------------------------------------ *)
(* Replaying a batch observations matrix interval by interval           *)
(* ------------------------------------------------------------------ *)

type obs_conn = { obs : Tomo.Observations.t; mutable cursor : int }

module Obs_source = struct
  type conn = obs_conn

  let n_paths c = Tomo.Observations.n_paths c.obs

  let next c =
    if c.cursor >= Tomo.Observations.t_intervals c.obs then None
    else begin
      let good =
        Tomo.Observations.good_paths_at c.obs ~interval:c.cursor
      in
      c.cursor <- c.cursor + 1;
      Some good
    end

  let close _ = ()
end

let of_observations obs =
  Obs.Events.emit "source_open"
    [
      ("source", "<observations>");
      ("paths", string_of_int (Tomo.Observations.n_paths obs));
    ];
  Source ((module Obs_source), { obs; cursor = 0 })

let of_observations_file path = of_observations (Tomo.Observations_io.load path)
