module Bitset = Tomo_util.Bitset
module Obs = Tomo_obs

let c_saved = Obs.Metrics.counter "stream_snapshots_saved"
let c_restored = Obs.Metrics.counter "stream_snapshots_restored"

type t = {
  n_paths : int;
  capacity : int;
  ticks : int;
  columns : Bitset.t array;  (* the filled slots, in slot order *)
}

let capture window =
  {
    n_paths = Window.n_paths window;
    capacity = Window.capacity window;
    ticks = Window.ticks window;
    columns =
      Array.init (Window.occupancy window) (fun slot ->
          Bitset.copy (Window.column window ~slot));
  }

let window_of t =
  Obs.Metrics.incr c_restored;
  Window.restore ~capacity:t.capacity ~n_paths:t.n_paths ~ticks:t.ticks
    ~columns:(Array.map Bitset.copy t.columns)

(* ------------------------------------------------------------------ *)
(* Serialization: versioned text payload + FNV-1a 64 checksum           *)
(* ------------------------------------------------------------------ *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a64 s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  !h

let payload t =
  let buf = Buffer.create (t.capacity * (t.n_paths + 16)) in
  Buffer.add_string buf "tomo-snapshot v1\n";
  Buffer.add_string buf
    (Printf.sprintf "paths %d capacity %d ticks %d\n" t.n_paths t.capacity
       t.ticks);
  Array.iteri
    (fun slot col ->
      let bits = Bytes.make t.n_paths '0' in
      Bitset.iter (fun p -> Bytes.set bits p '1') col;
      Buffer.add_string buf
        (Printf.sprintf "col %d %s\n" slot (Bytes.to_string bits)))
    t.columns;
  Buffer.contents buf

let to_string t =
  let p = payload t in
  Printf.sprintf "%schecksum fnv1a64 %016Lx\n" p (fnv1a64 p)

let corrupt ~filename fmt =
  Format.kasprintf
    (fun msg -> failwith (Printf.sprintf "%s: corrupted snapshot: %s" filename msg))
    fmt

let of_string ?(filename = "<string>") s =
  (* The checksum line covers every byte before it; locate it first so a
     torn write (partial file, no trailer) is rejected before parsing. *)
  let marker = "checksum fnv1a64 " in
  let marker_at =
    let rec find i =
      if i < 0 then None
      else if
        i + String.length marker <= String.length s
        && String.sub s i (String.length marker) = marker
        && (i = 0 || s.[i - 1] = '\n')
      then Some i
      else find (i - 1)
    in
    find (String.length s - 1)
  in
  let payload_s, declared =
    match marker_at with
    | None -> corrupt ~filename "missing checksum trailer"
    | Some i ->
        let rest =
          String.sub s
            (i + String.length marker)
            (String.length s - i - String.length marker)
        in
        let hex = String.trim rest in
        let declared =
          try Int64.of_string ("0x" ^ hex)
          with _ -> corrupt ~filename "malformed checksum %S" hex
        in
        (String.sub s 0 i, declared)
  in
  let actual = fnv1a64 payload_s in
  if actual <> declared then
    corrupt ~filename "checksum mismatch (declared %016Lx, computed %016Lx)"
      declared actual;
  let lines =
    String.split_on_char '\n' payload_s |> List.filter (fun l -> l <> "")
  in
  let words l = String.split_on_char ' ' l |> List.filter (( <> ) "") in
  let int_of w =
    match int_of_string_opt w with
    | Some v -> v
    | None -> corrupt ~filename "expected integer, got %S" w
  in
  match lines with
  | version :: header :: cols when version = "tomo-snapshot v1" ->
      let n_paths, capacity, ticks =
        match words header with
        | [ "paths"; n; "capacity"; w; "ticks"; k ] ->
            (int_of n, int_of w, int_of k)
        | _ -> corrupt ~filename "bad header %S" header
      in
      if n_paths <= 0 || capacity <= 0 || ticks < 0 then
        corrupt ~filename "non-positive dimensions in header";
      let filled = min ticks capacity in
      let columns = Array.make filled (Bitset.create 1) in
      let seen = Array.make filled false in
      List.iter
        (fun line ->
          match words line with
          | [ "col"; slot; bits ] ->
              let slot = int_of slot in
              if slot < 0 || slot >= filled then
                corrupt ~filename "column slot %d out of range [0, %d)" slot
                  filled;
              if seen.(slot) then corrupt ~filename "duplicate slot %d" slot;
              if String.length bits <> n_paths then
                corrupt ~filename
                  "ragged column %d: expected %d status characters, got %d"
                  slot n_paths (String.length bits);
              let b = Bitset.create n_paths in
              String.iteri
                (fun p c ->
                  match c with
                  | '1' -> Bitset.set b p
                  | '0' -> ()
                  | c -> corrupt ~filename "bad status character %C" c)
                bits;
              seen.(slot) <- true;
              columns.(slot) <- b
          | _ -> corrupt ~filename "unrecognized line %S" line)
        cols;
      if not (Array.for_all Fun.id seen) then
        corrupt ~filename "truncated snapshot: expected %d columns" filled;
      { n_paths; capacity; ticks; columns }
  | first :: _ -> corrupt ~filename "unknown snapshot format: %S" first
  | [] -> corrupt ~filename "empty snapshot"

(* Write-to-temp then rename, so a crash mid-save (the scenario snapshots
   exist for) can never leave a half-written file at the target path. *)
(* Wall-clock of the last successful [save] in this process, feeding the
   exporter's snapshot-age health field.  A single boxed-ref store, so a
   concurrent reader on the exporter thread sees either the old or the
   new timestamp, never a torn one. *)
let last_saved : float option ref = ref None
let last_saved_at () = !last_saved

let save path t =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir "tomo_snapshot" ".tmp" in
  let oc = open_out tmp in
  (try
     output_string oc (to_string t);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path;
  Obs.Metrics.incr c_saved;
  last_saved := Some (Unix.gettimeofday ());
  Obs.Events.emit "snapshot_written"
    [ ("path", path); ("ticks", string_of_int t.ticks) ]

let load path =
  let ic = open_in path in
  let t =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> of_string ~filename:path (In_channel.input_all ic))
  in
  Obs.Events.emit "snapshot_restored"
    [ ("path", path); ("ticks", string_of_int t.ticks) ];
  t
