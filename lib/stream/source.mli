(** Measurement sources: where the online engine's per-interval batches
    come from.

    A batch is one measurement interval's column of path statuses — a
    {!Tomo_util.Bitset.t} over paths, bit [p] set iff path [p] was
    measured good.  Sources are abstracted behind the {!S} signature
    (packed as a first-class module in {!t}), so the built-in replay
    sources — a [tomo-trace v1] file/stdin stream
    ({!Tomo_netsim.Trace_io}'s format) and an interval-by-interval
    replay of a batch observations matrix — can later be joined by a
    socket-backed implementation without touching the engine. *)

(** What a source implementation provides. *)
module type S = sig
  type conn

  val n_paths : conn -> int

  (** [next conn] blocks until the next interval batch is available and
      returns its column of path statuses; [None] means the stream ended
      cleanly.  @raise Failure on malformed input (with a
      [file:line]-anchored message for the replay sources). *)
  val next : conn -> Tomo_util.Bitset.t option

  val close : conn -> unit
end

(** A connected source: an implementation packed with its connection. *)
type t = Source : (module S with type conn = 'c) * 'c -> t

val n_paths : t -> int
val next : t -> Tomo_util.Bitset.t option
val close : t -> unit

(** [fold source f init] drains the source, folding [f] over every
    batch. *)
val fold : t -> ('a -> Tomo_util.Bitset.t -> 'a) -> 'a -> 'a

(** [drop source n] discards up to [n] batches and returns how many were
    actually available — how a restored engine fast-forwards a replay
    source past the intervals its snapshot already contains. *)
val drop : t -> int -> int

(** [of_trace_channel ?filename ?owns_channel ic] reads [tomo-trace v1]
    from a channel, validating the header eagerly and each tick lazily
    (ragged/out-of-order/garbage lines raise [Failure] anchored at
    [filename:line]).  [owns_channel] (default [false]) closes [ic] on
    {!close}. *)
val of_trace_channel :
  ?filename:string -> ?owns_channel:bool -> in_channel -> t

(** [of_trace_file path] opens a [tomo-trace v1] file, or stdin when
    [path] is ["-"]. *)
val of_trace_file : string -> t

(** [of_observations obs] replays a batch observation matrix one interval
    at a time, in time order — the bridge from archived
    {!Tomo.Observations_io} files to the streaming engine. *)
val of_observations : Tomo.Observations.t -> t

(** [of_observations_file path] is {!of_observations} over
    [Tomo.Observations_io.load] (sharing its [file:line]-anchored
    diagnostics for truncated or ragged archives). *)
val of_observations_file : string -> t

(** [of_replay_file path] sniffs the header line and dispatches to
    {!of_trace_file} ([tomo-trace v1]) or {!of_observations_file}
    ([tomo-observations v1]); ["-"] always reads a trace from stdin.
    An empty/truncated file or an unknown header raises [Failure]
    naming both accepted formats — the sniffer behind
    [tomo_cli serve --replay]. *)
val of_replay_file : string -> t
