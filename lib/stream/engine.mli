(** The online sliding-window tomography engine.

    Ingests path-observation batches one measurement interval at a time
    (from any {!Source}), maintains a bounded sliding {!Window}, and
    re-estimates Correlation-complete congestion probabilities per tick
    by reusing the batch machinery ({!Tomo.Algorithm1} +
    {!Tomo.Prob_engine}) — never from scratch:

    - the equation-system {e selection} is cached and recomputed only
      when the window's always-good path set changes (the only
      observation input Algorithm 1 reads);
    - the per-row all-good {e counts} feeding the right-hand sides are
      updated incrementally from the evicted/fresh column pair each
      push ({!Tomo.Prob_engine.solve_with_counts});
    - marginal extraction fans out per correlation set over
      {!Tomo_par.Pool}.

    Because every cached quantity is a deterministic function of the
    window contents, a full-window estimate is bit-identical to running
    the batch pipeline ({!Tomo.Correlation_complete.compute}) on those
    same intervals, and an engine restored from a {!Snapshot} continues
    bit-identically to one that never stopped.

    Observability (via {!Tomo_obs.Metrics}, off unless a sink is
    configured): counters [stream_ticks], [stream_estimates],
    [stream_reselects]; gauges [stream_window_occupancy],
    [stream_window_capacity]; histograms [stream_tick_s] (whole-tick
    latency), [stream_solve_s] (CGLS solve), [stream_corrset_solve_s]
    (per-correlation-set marginal extraction), and the per-tick stage
    profile [stream_stage_ingest_s] / [stream_stage_reselect_s] /
    [stream_stage_solve_s] / [stream_stage_snapshot_s] (window push +
    count bookkeeping, Algorithm 1 re-run, estimate, atomic snapshot
    save).  Lifecycle events (via {!Tomo_obs.Events}, off unless
    configured): [reselect], plus [source_open]/[source_eof] from
    {!Source} and [snapshot_written]/[snapshot_restored] from
    {!Snapshot}. *)

type t

(** One full-window estimate. *)
type estimate = {
  tick : int;  (** total intervals ingested when this was computed *)
  result : Tomo.Pc_result.t;
  engine : Tomo.Prob_engine.t;
      (** the solved system, for subset/pattern queries *)
}

(** [create ?select_config ~model ~window ()] is an empty engine whose
    sliding window holds [window] intervals.
    @raise Invalid_argument if [window <= 0]. *)
val create :
  ?select_config:Tomo.Algorithm1.config ->
  model:Tomo.Model.t ->
  window:int ->
  unit ->
  t

val window : t -> Window.t

(** Total intervals ingested over the engine's lifetime (survives
    snapshot/restore). *)
val ticks : t -> int

(** [ingest ?pool t good] feeds one interval batch (bit [p] set iff path
    [p] measured good; ownership transfers to the window).  Returns the
    refreshed estimate, or [None] while the window is still warming
    up. *)
val ingest : ?pool:Tomo_par.Pool.t -> t -> Tomo_util.Bitset.t -> estimate option

(** [current ?pool t] re-estimates from the window as it stands (e.g.
    right after a restore, without waiting for the next batch); [None]
    while warming up. *)
val current : ?pool:Tomo_par.Pool.t -> t -> estimate option

(** [snapshot t] captures resumable state; see {!Snapshot}. *)
val snapshot : t -> Snapshot.t

(** [of_snapshot ?select_config ~model snap] resumes: the next estimate
    is bit-identical to an engine that never stopped.
    @raise Invalid_argument if the snapshot's path count does not match
    the model. *)
val of_snapshot :
  ?select_config:Tomo.Algorithm1.config ->
  model:Tomo.Model.t ->
  Snapshot.t ->
  t

(** [run ?pool ?snapshot_out ?snapshot_every ?max_ticks t source ~on_tick]
    is the service loop: drain [source] through {!ingest}, calling
    [on_tick] after every batch.  With [snapshot_out], a snapshot is
    written (atomically) every [snapshot_every] ticks (default 1) and
    once more at the stopping point.  [max_ticks] bounds how many
    batches {e this call} processes — the deterministic stand-in for a
    mid-stream kill.  Returns the last full-window estimate this call
    produced, if any.
    @raise Invalid_argument if [snapshot_every <= 0]. *)
val run :
  ?pool:Tomo_par.Pool.t ->
  ?snapshot_out:string ->
  ?snapshot_every:int ->
  ?max_ticks:int ->
  t ->
  Source.t ->
  on_tick:(t -> estimate option -> unit) ->
  estimate option

(** An immutable copy of the engine's scalar state, captured on the
    engine's own thread ({!status}) and safe to hand to the telemetry
    exporter's thread afterwards. *)
type status = {
  st_ticks : int;
  st_occupancy : int;
  st_capacity : int;
  st_full : bool;
  st_estimates : int;  (** estimates this engine computed (lifetime) *)
  st_reselects : int;  (** Algorithm 1 re-runs this engine performed *)
  st_last_estimate_tick : int option;  (** [None] before the first *)
  st_last_rows : int option;
  st_last_vars : int option;
}

val status : t -> status

(** [status_json ?uptime_s ?snapshot_age_s ?last_error st] renders the
    status as the stable JSON object served at [/healthz] and
    [/status]: [{"status":"ok"|"warming_up","ticks":..,"window":
    {"occupancy":..,"capacity":..,"full":..},"estimates":..,
    "reselects":..,"last_estimate":{..}|null,("uptime_s":..,)
    "snapshot_age_s":..|null,"last_error":..|null}]. *)
val status_json :
  ?uptime_s:float ->
  ?snapshot_age_s:float ->
  ?last_error:string ->
  status ->
  string

(** [report_to_string ~window est] renders the estimate in the stable,
    diffable [tomo-report v1] text format ([%.17g] marginals, so equal
    reports mean bit-equal floats) used by [tomo_cli serve] /
    [batch-report] and the CI streaming smoke job. *)
val report_to_string : window:int -> estimate -> string
