module Bitset = Tomo_util.Bitset

let header_magic = "tomo-trace v1"

type state = Expect_header | Expect_paths | Expect_ticks

type t = {
  origin : string;
  mutable lineno : int;
  mutable state : state;
  mutable paths : int;
  mutable next_tick : int;
}

type event = Blank | Header | Paths of int | Tick of Bitset.t

let create ?(origin = "<record>") () =
  { origin; lineno = 0; state = Expect_header; paths = 0; next_tick = 0 }

let origin t = t.origin
let lineno t = t.lineno
let n_paths t = if t.state = Expect_ticks then Some t.paths else None
let next_tick t = t.next_tick

let fail_at ~origin ~lineno fmt =
  Format.kasprintf
    (fun msg -> failwith (Printf.sprintf "%s:%d: %s" origin lineno msg))
    fmt

let fail t fmt = fail_at ~origin:t.origin ~lineno:t.lineno fmt

let words l = String.split_on_char ' ' l |> List.filter (( <> ) "")

let parse_tick t id bits =
  let id =
    match int_of_string_opt id with
    | Some v -> v
    | None -> fail t "expected integer tick id, got %S" id
  in
  if id <> t.next_tick then
    fail t
      "out-of-order tick: expected %d, got %d (truncated or reordered \
       trace?)"
      t.next_tick id;
  if String.length bits <> t.paths then
    fail t "ragged tick: expected %d status characters, got %d" t.paths
      (String.length bits);
  let good = Bitset.create t.paths in
  String.iteri
    (fun p ch ->
      match ch with
      | '1' -> Bitset.set good p
      | '0' -> ()
      | ch -> fail t "bad status character %C (expected 0 or 1)" ch)
    bits;
  t.next_tick <- t.next_tick + 1;
  good

let feed t record =
  t.lineno <- t.lineno + 1;
  let line = String.trim record in
  if line = "" then Blank
  else
    match t.state with
    | Expect_header ->
        if line = header_magic then begin
          t.state <- Expect_paths;
          Header
        end
        else fail t "unknown trace format: %S" line
    | Expect_paths -> (
        match words line with
        | [ "paths"; n ] -> (
            match int_of_string_opt n with
            | Some v when v > 0 ->
                t.paths <- v;
                t.state <- Expect_ticks;
                Paths v
            | _ -> fail t "expected a positive path count, got %S" n)
        | _ -> fail t "expected 'paths <n>', got %S" line)
    | Expect_ticks -> (
        match words line with
        | [ "tick"; id; bits ] -> Tick (parse_tick t id bits)
        | _ -> fail t "unrecognized line %S" line)
