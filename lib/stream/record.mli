(** The [tomo-trace v1] record grammar, shared by every transport.

    A trace stream is a sequence of text records:

    {v
    tomo-trace v1          (header, exactly once, first)
    paths <n>              (path count, exactly once, second)
    tick <i> <statuses>    (one per interval, i ascending from 0)
    v}

    The file/stdin replay source ({!Source.of_trace_file}) feeds one
    {e line} per record; the socket ingestion plane ([Tomo_net]) feeds
    one {e frame payload} per record.  Both go through this parser, so
    the two transports cannot drift: a malformed record produces the
    same [Failure] with the same [origin:line]-anchored message whether
    it arrived from a file or a peer. *)

type t

type event =
  | Blank  (** empty (or all-whitespace) record; skipped *)
  | Header  (** the [tomo-trace v1] magic was accepted *)
  | Paths of int  (** the declared path count *)
  | Tick of Tomo_util.Bitset.t
      (** one interval batch, bit [p] set iff path [p] measured good *)

(** [create ~origin ()] is a parser expecting the header record next.
    [origin] (default ["<record>"]) anchors diagnostics — a file path
    for replay, a peer name for sockets. *)
val create : ?origin:string -> unit -> t

val origin : t -> string

(** Records fed so far (= the line number of the last record). *)
val lineno : t -> int

(** [Some n] once the [paths] record has been parsed. *)
val n_paths : t -> int option

(** The tick id the next [tick] record must carry. *)
val next_tick : t -> int

(** [feed t record] parses one record (leading/trailing whitespace is
    trimmed first).
    @raise Failure on malformed input, out-of-order or ragged ticks,
    or records violating the header/paths/ticks order — anchored at
    [origin:line]. *)
val feed : t -> string -> event

(** [fail_at ~origin ~lineno fmt] raises [Failure "origin:lineno: ..."]
    — the anchored-diagnostic convention shared by the replay sources
    and the socket decoder. *)
val fail_at :
  origin:string -> lineno:int -> ('a, Format.formatter, unit, 'b) format4 -> 'a

(** [fail t fmt] is {!fail_at} at the parser's current position. *)
val fail : t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
