module Bitset = Tomo_util.Bitset

type t = {
  capacity : int;
  n_paths : int;
  columns : Bitset.t array;  (* ring slot -> that interval's good paths *)
  obs : Tomo.Observations.t;  (* row view over the same slots *)
  mutable ticks : int;
}

let create ~capacity ~n_paths =
  if capacity <= 0 then invalid_arg "Window.create: no capacity";
  if n_paths <= 0 then invalid_arg "Window.create: no paths";
  {
    capacity;
    n_paths;
    columns = Array.init capacity (fun _ -> Bitset.create n_paths);
    obs = Tomo.Observations.create ~t_intervals:capacity ~n_paths;
    ticks = 0;
  }

let capacity t = t.capacity
let n_paths t = t.n_paths
let ticks t = t.ticks
let occupancy t = min t.ticks t.capacity
let is_full t = t.ticks >= t.capacity
let observations t = t.obs

(* The slot the next batch lands in; once the ring is full this is also
   the slot holding the oldest interval. *)
let cursor t = t.ticks mod t.capacity

let push t good =
  if Bitset.length good <> t.n_paths then
    invalid_arg "Window.push: batch has wrong path capacity";
  let slot = cursor t in
  let evicted = if is_full t then Some t.columns.(slot) else None in
  Tomo.Observations.set_interval_statuses t.obs ~interval:slot ~good;
  t.columns.(slot) <- good;
  t.ticks <- t.ticks + 1;
  evicted

let column t ~slot =
  if slot < 0 || slot >= occupancy t then
    invalid_arg "Window.column: slot out of range";
  t.columns.(slot)

let iter_columns f t =
  for slot = 0 to occupancy t - 1 do
    f t.columns.(slot)
  done

let always_good_paths t =
  let b = Bitset.create t.n_paths in
  let full = occupancy t in
  for p = 0 to t.n_paths - 1 do
    if Tomo.Observations.good_count t.obs ~path:p = full then Bitset.set b p
  done;
  b

let restore ~capacity ~n_paths ~ticks ~columns =
  if ticks < 0 then invalid_arg "Window.restore: negative tick count";
  let t = create ~capacity ~n_paths in
  let filled = min ticks capacity in
  if Array.length columns <> filled then
    invalid_arg
      (Printf.sprintf "Window.restore: expected %d columns, got %d" filled
         (Array.length columns));
  Array.iteri
    (fun slot good ->
      if Bitset.length good <> n_paths then
        invalid_arg "Window.restore: column has wrong path capacity";
      Tomo.Observations.set_interval_statuses t.obs ~interval:slot ~good;
      t.columns.(slot) <- good)
    columns;
  t.ticks <- ticks;
  t
