(** A bounded sliding window of measurement intervals, stored as a ring
    of per-interval {!Tomo_util.Bitset} columns (good paths per tick)
    backed by an in-place {!Tomo.Observations} row view of the same
    slots.

    Pushing a batch overwrites the slot holding the oldest interval and
    returns the evicted column, so a consumer (the engine's per-path-set
    congestion counters) can update incrementally instead of recounting
    the window.  Per-path good counts are maintained inside the
    observations themselves ({!Tomo.Observations.set_interval_statuses}).

    Slot order is ring order, not time order — every estimator read from
    the window ([all_good_count], [always_good], equation right-hand
    sides) is invariant under interval permutation, which is what makes
    the windowed estimates exactly equal to a batch run over the same
    intervals. *)

type t

(** [create ~capacity ~n_paths] is an empty window (all paths congested
    in every slot until pushed).  @raise Invalid_argument on non-positive
    sizes. *)
val create : capacity:int -> n_paths:int -> t

val capacity : t -> int
val n_paths : t -> int

(** [ticks t] is the total number of batches ever pushed (not capped by
    the capacity). *)
val ticks : t -> int

(** [occupancy t] is [min (ticks t) (capacity t)]: how many slots hold
    real intervals. *)
val occupancy : t -> int

val is_full : t -> bool

(** [observations t] is the live row view over the window's slots.  The
    window mutates it in place on every {!push}; treat it as read-only
    and do not retain it across pushes when exact-interval reads
    matter. *)
val observations : t -> Tomo.Observations.t

(** [push t good] ingests one interval batch (bit [p] set iff path [p]
    good), taking ownership of [good].  Returns the evicted column when
    the window was already full, [None] during warm-up.
    @raise Invalid_argument if [good] is not sized to [n_paths t]. *)
val push : t -> Tomo_util.Bitset.t -> Tomo_util.Bitset.t option

(** [column t ~slot] is the stored column of a filled slot (read-only).
    @raise Invalid_argument if the slot is not filled. *)
val column : t -> slot:int -> Tomo_util.Bitset.t

(** [iter_columns f t] applies [f] to every filled column, in slot
    order. *)
val iter_columns : (Tomo_util.Bitset.t -> unit) -> t -> unit

(** [always_good_paths t] is the set of paths good in every filled slot
    (O(paths) from the maintained counts) — the only observation-derived
    input {!Tomo.Algorithm1.select} depends on, so the engine re-selects
    only when this set changes. *)
val always_good_paths : t -> Tomo_util.Bitset.t

(** [restore ~capacity ~n_paths ~ticks ~columns] rebuilds a window from
    snapshot state: [columns] holds the [min ticks capacity] filled
    slots in slot order.  @raise Invalid_argument on inconsistent
    shapes. *)
val restore :
  capacity:int ->
  n_paths:int ->
  ticks:int ->
  columns:Tomo_util.Bitset.t array ->
  t
