(** Durable engine state: everything a restarted server needs to resume
    the stream bit-identically.

    A snapshot captures the sliding window (ring columns in slot order)
    plus the global tick counter.  Nothing else is needed: the engine's
    cached selection and per-row counts are deterministic functions of
    the window contents, so {!Engine.of_snapshot} rebuilds them and the
    subsequent estimates are bit-for-bit equal to an uninterrupted run
    (asserted by [test_stream]'s qcheck property and the CI smoke job).

    Serialized as versioned text with an FNV-1a 64 checksum trailer
    covering every preceding byte:

    {v
    tomo-snapshot v1
    paths <n> capacity <w> ticks <k>
    col <slot> <status-string>       (one per filled slot)
    checksum fnv1a64 <16 hex digits>
    v}

    {!save} writes to a temp file and renames, so a crash mid-save never
    corrupts the previous snapshot; {!load} rejects torn, truncated or
    bit-flipped files with [Failure "...: corrupted snapshot: ..."]. *)

type t = {
  n_paths : int;
  capacity : int;
  ticks : int;
  columns : Tomo_util.Bitset.t array;
}

(** [capture window] copies the window state out (the live window may
    keep mutating afterwards). *)
val capture : Window.t -> t

(** [window_of t] rebuilds a live window. *)
val window_of : t -> Window.t

val to_string : t -> string

(** @raise Failure on any corruption: missing/malformed/mismatching
    checksum, bad header, ragged/duplicate/missing columns. *)
val of_string : ?filename:string -> string -> t

(** Atomic (write + rename) save.  Emits a [snapshot_written] event and
    stamps {!last_saved_at}. *)
val save : string -> t -> unit

(** Emits a [snapshot_restored] event on success. *)
val load : string -> t

(** Wall-clock time of the last successful {!save} in this process
    ([None] if none yet) — the exporter derives the [/healthz]
    snapshot-age field from it.  Safe to read from another thread. *)
val last_saved_at : unit -> float option
