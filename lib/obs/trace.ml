type span = {
  name : string;
  attrs : (string * string) list;
  start_s : float;
  duration_s : float;
  children : span list;
}

(* A span still running: attrs and children accumulate in reverse. *)
type open_span = {
  o_name : string;
  mutable o_attrs : (string * string) list;
  o_start : float;
  mutable o_children : span list;
}

let enabled_flag = ref false

(* Each domain keeps its own open-span stack (tomo_par workers trace
   their tasks as independent roots); completed roots merge into one
   process-global list under [fin_lock]. *)
let stack_key : open_span list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let fin_lock = Mutex.create ()
let finished : span list ref = ref [] (* completed roots, newest first *)
let n_finished = ref 0
let max_roots : int option ref = ref None
let dropped = ref 0
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

(* Keep the newest [n] roots of the newest-first list.  O(n) per call,
   but only runs when the cap is exceeded and [n] is the cap. *)
let truncate_newest n l =
  let rec go i = function
    | [] -> []
    | _ when i >= n -> []
    | x :: rest -> x :: go (i + 1) rest
  in
  go 0 l

let set_max_roots cap =
  (match cap with
  | Some n when n <= 0 -> invalid_arg "Trace.set_max_roots: non-positive cap"
  | _ -> ());
  Mutex.lock fin_lock;
  max_roots := cap;
  (match cap with
  | Some n when !n_finished > n ->
      dropped := !dropped + (!n_finished - n);
      finished := truncate_newest n !finished;
      n_finished := n
  | _ -> ());
  Mutex.unlock fin_lock

let dropped_roots () = !dropped

let reset () =
  Domain.DLS.get stack_key := [];
  Mutex.lock fin_lock;
  finished := [];
  n_finished := 0;
  dropped := 0;
  Mutex.unlock fin_lock

let now () = Unix.gettimeofday ()

let close o =
  {
    name = o.o_name;
    attrs = List.rev o.o_attrs;
    start_s = o.o_start;
    duration_s = now () -. o.o_start;
    children = List.rev o.o_children;
  }

let with_span ?attrs name f =
  if not !enabled_flag then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let o =
      {
        o_name = name;
        o_attrs = (match attrs with None -> [] | Some l -> List.rev l);
        o_start = now ();
        o_children = [];
      }
    in
    stack := o :: !stack;
    let finish () =
      (* Pop down to [o]: anything above it was left open by an escaping
         exception and is discarded with it. *)
      let rec pop = function
        | top :: rest -> if top == o then rest else pop rest
        | [] -> []
      in
      stack := pop !stack;
      let s = close o in
      match !stack with
      | parent :: _ -> parent.o_children <- s :: parent.o_children
      | [] ->
          Mutex.lock fin_lock;
          finished := s :: !finished;
          incr n_finished;
          (match !max_roots with
          | Some cap when !n_finished > cap ->
              dropped := !dropped + (!n_finished - cap);
              finished := truncate_newest cap !finished;
              n_finished := cap
          | _ -> ());
          Mutex.unlock fin_lock
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let add_attr k v =
  if !enabled_flag then
    match !(Domain.DLS.get stack_key) with
    | o :: _ -> o.o_attrs <- (k, v) :: o.o_attrs
    | [] -> ()

let roots () =
  Mutex.lock fin_lock;
  let r = List.rev !finished in
  Mutex.unlock fin_lock;
  r

let take_roots () =
  Mutex.lock fin_lock;
  let r = List.rev !finished in
  finished := [];
  n_finished := 0;
  Mutex.unlock fin_lock;
  r
