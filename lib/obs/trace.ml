type span = {
  name : string;
  attrs : (string * string) list;
  start_s : float;
  duration_s : float;
  children : span list;
}

(* A span still running: attrs and children accumulate in reverse. *)
type open_span = {
  o_name : string;
  mutable o_attrs : (string * string) list;
  o_start : float;
  mutable o_children : span list;
}

let enabled_flag = ref false

(* Each domain keeps its own open-span stack (tomo_par workers trace
   their tasks as independent roots); completed roots merge into one
   process-global list under [fin_lock]. *)
let stack_key : open_span list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let fin_lock = Mutex.create ()
let finished : span list ref = ref [] (* completed roots, newest first *)
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

let reset () =
  Domain.DLS.get stack_key := [];
  Mutex.lock fin_lock;
  finished := [];
  Mutex.unlock fin_lock

let now () = Unix.gettimeofday ()

let close o =
  {
    name = o.o_name;
    attrs = List.rev o.o_attrs;
    start_s = o.o_start;
    duration_s = now () -. o.o_start;
    children = List.rev o.o_children;
  }

let with_span ?attrs name f =
  if not !enabled_flag then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let o =
      {
        o_name = name;
        o_attrs = (match attrs with None -> [] | Some l -> List.rev l);
        o_start = now ();
        o_children = [];
      }
    in
    stack := o :: !stack;
    let finish () =
      (* Pop down to [o]: anything above it was left open by an escaping
         exception and is discarded with it. *)
      let rec pop = function
        | top :: rest -> if top == o then rest else pop rest
        | [] -> []
      in
      stack := pop !stack;
      let s = close o in
      match !stack with
      | parent :: _ -> parent.o_children <- s :: parent.o_children
      | [] ->
          Mutex.lock fin_lock;
          finished := s :: !finished;
          Mutex.unlock fin_lock
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let add_attr k v =
  if !enabled_flag then
    match !(Domain.DLS.get stack_key) with
    | o :: _ -> o.o_attrs <- (k, v) :: o.o_attrs
    | [] -> ()

let roots () =
  Mutex.lock fin_lock;
  let r = List.rev !finished in
  Mutex.unlock fin_lock;
  r
