(* Structured JSONL event log for long-lived processes: one JSON object
   per line, appended as lifecycle events happen (source open/EOF,
   re-selection, snapshot written/restored, pool resize, ...).  Unlike
   Trace spans — which measure durations and are drained in bulk on
   flush — events are point-in-time facts written immediately, so a
   crashed daemon's log still ends at the crash.

   Disabled (the default) emission is a single branch.  Writes take a
   mutex so events from worker domains and the exporter thread
   interleave as whole lines, never torn. *)

let lock = Mutex.create ()
let out : out_channel option ref = ref None
let owns : bool ref = ref false
let path_ref : string option ref = ref None
let enabled_flag = ref false

let enabled () = !enabled_flag

(* ------------------------------------------------------------------ *)
(* Rendering (pure, exposed for the escaping property test)            *)
(* ------------------------------------------------------------------ *)

(* UTF-8 passes through untouched (JSON strings are unicode); only the
   structural characters and control bytes need escaping. *)
let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let line ~ts event attrs =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "{\"ts\":";
  Buffer.add_string buf (Printf.sprintf "%.6f" ts);
  Buffer.add_string buf ",\"event\":\"";
  escape buf event;
  Buffer.add_char buf '"';
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf ",\"";
      escape buf k;
      Buffer.add_string buf "\":\"";
      escape buf v;
      Buffer.add_char buf '"')
    attrs;
  Buffer.add_char buf '}';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Configuration and emission                                          *)
(* ------------------------------------------------------------------ *)

let close () =
  Mutex.lock lock;
  (match !out with
  | Some oc ->
      (try Stdlib.flush oc with Sys_error _ -> ());
      if !owns then close_out_noerr oc
  | None -> ());
  out := None;
  owns := false;
  path_ref := None;
  enabled_flag := false;
  Mutex.unlock lock

let configure = function
  | None -> close ()
  | Some path ->
      close ();
      Mutex.lock lock;
      (if path = "-" then begin
         out := Some stderr;
         owns := false
       end
       else begin
         out :=
           Some (open_out_gen [ Open_creat; Open_append; Open_text ] 0o644 path);
         owns := true
       end);
      path_ref := Some path;
      enabled_flag := true;
      Mutex.unlock lock

let configured_path () = !path_ref

let emit ?ts event attrs =
  if !enabled_flag then begin
    let ts = match ts with Some t -> t | None -> Unix.gettimeofday () in
    let l = line ~ts event attrs in
    Mutex.lock lock;
    (match !out with
    | Some oc -> (
        try
          output_string oc l;
          output_char oc '\n';
          Stdlib.flush oc
        with Sys_error msg ->
          Sink.record_error ("cannot write event log: " ^ msg);
          Printf.eprintf "tomo_obs: cannot write event log: %s\n%!" msg)
    | None -> ());
    Mutex.unlock lock
  end
