(** Hierarchical timed spans.

    A span covers the execution of a code region.  Spans opened while
    another span is running become its children, giving a tree per
    top-level region — the instrumented pipeline renders as

    {v
    fig4.scenario                                  12.3 ms
      brite.generate                                2.1 ms
      netsim.run                                    4.0 ms
      algorithm1.select                             3.9 ms
    v}

    Tracing is off by default.  While disabled, [with_span] is a single
    branch followed by a tail call of the thunk: no clock read, no
    allocation.  Enable it with [set_enabled] (done by {!Sink.init} when
    [TOMO_TRACE] or [--trace] asks for it).

    The open-span stack is per-{e domain} (domain-local storage): a task
    running on a tomo_par worker traces as its own root tree, never
    corrupting another domain's stack.  Completed roots from every
    domain merge into one process-global list, so [roots ()] sees the
    whole program; with parallelism enabled their relative order follows
    completion time rather than submission order. *)

type span = {
  name : string;
  attrs : (string * string) list;  (** in the order they were attached *)
  start_s : float;  (** seconds since the Unix epoch *)
  duration_s : float;
  children : span list;  (** in execution order *)
}

val enabled : unit -> bool
val set_enabled : bool -> unit

(** [with_span ?attrs name f] runs [f ()] inside a span named [name].
    The span is closed (and attached to its parent, or recorded as a
    root) when [f] returns or raises.  Note that an [?attrs] literal is
    evaluated by the caller even when tracing is disabled; hot call
    sites should omit it and use [add_attr] instead. *)
val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a

(** Attach an attribute to the innermost open span.  No-op when tracing
    is disabled or no span is open. *)
val add_attr : string -> string -> unit

(** Completed top-level spans, oldest first. *)
val roots : unit -> span list

(** Like {!roots}, but also clears the completed-root list (in-flight
    spans are untouched) — the drain a periodic flusher uses so a
    long-lived process never re-emits a span and holds no more memory
    than one flush interval's worth of roots. *)
val take_roots : unit -> span list

(** [set_max_roots (Some n)] bounds the completed-root list to the [n]
    newest roots; older ones are dropped as new roots finish (count
    them with {!dropped_roots}).  [None] (the default) keeps
    everything, which is right for batch runs but leaks in a daemon
    that never drains.  Applies retroactively to already-recorded
    roots.
    @raise Invalid_argument if [n <= 0]. *)
val set_max_roots : int option -> unit

(** Roots discarded by the {!set_max_roots} cap since the last
    {!reset}. *)
val dropped_roots : unit -> int

(** Drop all recorded and in-flight spans (and the dropped-root
    count). *)
val reset : unit -> unit
