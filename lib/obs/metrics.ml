(* Counters are lock-free atomics so parallel experiment tasks (see
   tomo_par) can record without contention; gauges and histograms are
   multi-word and take [lock] instead — they sit off the hot paths. *)
type counter = int Atomic.t
type gauge = { mutable g : float; mutable g_set : bool }

let lock = Mutex.create ()

(* Log-scale buckets: slot [i] has upper bound 2^(i - underflow_slots);
   slot 0 is the underflow bucket for values <= 0. *)
let n_slots = 97
let underflow_slots = 48

type histogram = {
  slots : int array; (* n_slots *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type instrument = C of counter | G of gauge | H of histogram

let enabled_flag = ref false
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b
let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64

let register name make describe =
  Mutex.lock lock;
  let i =
    match Hashtbl.find_opt registry name with
    | Some i -> i
    | None ->
        let i = make () in
        Hashtbl.add registry name i;
        i
  in
  Mutex.unlock lock;
  describe i

let kind_error name =
  invalid_arg
    (Printf.sprintf "Metrics: %S already registered as another kind" name)

let counter name =
  register name
    (fun () -> C (Atomic.make 0))
    (function C c -> c | _ -> kind_error name)

let incr ?(by = 1) c =
  if !enabled_flag then ignore (Atomic.fetch_and_add c by : int)

let counter_value c = Atomic.get c

let gauge name =
  register name
    (fun () -> G { g = 0.0; g_set = false })
    (function G g -> g | _ -> kind_error name)

let set_gauge g v =
  if !enabled_flag then begin
    Mutex.lock lock;
    g.g <- v;
    g.g_set <- true;
    Mutex.unlock lock
  end

let gauge_value g = if g.g_set then Some g.g else None

let histogram name =
  register name
    (fun () ->
      H
        {
          slots = Array.make n_slots 0;
          h_count = 0;
          h_sum = 0.0;
          h_min = infinity;
          h_max = neg_infinity;
        })
    (function H h -> h | _ -> kind_error name)

let slot_of v =
  if v <= 0.0 || Float.is_nan v then 0
  else
    let _, e = Float.frexp v in
    (* v ∈ [2^(e-1), 2^e): upper bound 2^e, slot e + underflow_slots. *)
    max 1 (min (n_slots - 1) (e + underflow_slots))

let slot_upper i =
  if i = 0 then 0.0 else Float.ldexp 1.0 (i - underflow_slots)

let observe h v =
  if !enabled_flag then begin
    let s = slot_of v in
    Mutex.lock lock;
    h.slots.(s) <- h.slots.(s) + 1;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v;
    Mutex.unlock lock
  end

type histogram_stats = {
  count : int;
  sum : float;
  min_v : float;
  max_v : float;
  buckets : (float * int) list;
}

(* Caller must hold [lock]. *)
let histogram_stats_unlocked h =
  let buckets = ref [] in
  for i = n_slots - 1 downto 0 do
    if h.slots.(i) > 0 then buckets := (slot_upper i, h.slots.(i)) :: !buckets
  done;
  {
    count = h.h_count;
    sum = h.h_sum;
    min_v = h.h_min;
    max_v = h.h_max;
    buckets = !buckets;
  }

let histogram_stats h =
  Mutex.lock lock;
  let s = histogram_stats_unlocked h in
  Mutex.unlock lock;
  s

(* Quantile estimation from the power-of-two buckets: find the bucket
   holding the q-th ranked observation and interpolate linearly inside
   it (the Prometheus histogram_quantile convention).  The bucket's
   lower edge is half its upper bound — exact for this bucket layout —
   and the estimate is clamped to the recorded min/max, so p50/p95/p99
   can never step outside the observed range. *)
let quantile s q =
  if s.count = 0 then nan
  else if q <= 0.0 then s.min_v
  else if q >= 1.0 then s.max_v
  else begin
    let rank = q *. float_of_int s.count in
    let rec find cum = function
      | [] -> s.max_v
      | (ub, n) :: rest ->
          let cum' = cum +. float_of_int n in
          if cum' >= rank then
            if ub <= 0.0 then (* underflow bucket: no width to split *)
              Float.min 0.0 s.max_v
            else
              let lo = ub /. 2.0 in
              lo +. ((ub -. lo) *. ((rank -. cum) /. float_of_int n))
          else find cum' rest
    in
    let v = find 0.0 s.buckets in
    Float.max s.min_v (Float.min s.max_v v)
  end

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_stats) list;
}

let snapshot () =
  let cs = ref [] and gs = ref [] and hs = ref [] in
  Mutex.lock lock;
  Hashtbl.iter
    (fun name -> function
      | C c -> cs := (name, Atomic.get c) :: !cs
      | G g -> if g.g_set then gs := (name, g.g) :: !gs
      | H h -> hs := (name, histogram_stats_unlocked h) :: !hs)
    registry;
  Mutex.unlock lock;
  let by_name (a, _) (b, _) = String.compare a b in
  {
    counters = List.sort by_name !cs;
    gauges = List.sort by_name !gs;
    histograms = List.sort by_name !hs;
  }

let reset () =
  Mutex.lock lock;
  Hashtbl.iter
    (fun _ -> function
      | C c -> Atomic.set c 0
      | G g ->
          g.g <- 0.0;
          g.g_set <- false
      | H h ->
          Array.fill h.slots 0 n_slots 0;
          h.h_count <- 0;
          h.h_sum <- 0.0;
          h.h_min <- infinity;
          h.h_max <- neg_infinity)
    registry;
  Mutex.unlock lock
