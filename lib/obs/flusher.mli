(** Periodic {!Sink.flush} on a background thread, so a long-lived
    serve loop's metrics file / trace JSONL are current on a cadence
    instead of only at exit.  {!Sink.flush} is idempotent and
    thread-safe, so the flusher composes with explicit and at_exit
    flushes without emitting anything twice.  Counter
    [telemetry_flushes] counts completed periodic flushes. *)

type t

(** [start ~period_s ()] begins flushing every [period_s] seconds.
    @raise Invalid_argument if [period_s <= 0] or not finite. *)
val start : period_s:float -> unit -> t

(** Stop the thread (joins; takes at most ~50 ms) and, unless
    [~final_flush:false], flush once more so nothing recorded since the
    last period is lost.  Idempotent. *)
val stop : ?final_flush:bool -> t -> unit
