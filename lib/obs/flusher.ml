(* Periodic sink flusher: a daemon that only exports at_exit is blind
   while it runs.  One background systhread calls [Sink.flush] every
   [period_s], so the metrics file, trace JSONL and human table stay
   current for the process's whole lifetime.  [Sink.flush] is
   thread-safe and drains spans exactly once, so the flusher composes
   with explicit flushes and the at_exit flush without duplication.

   The sleep is chopped into short naps so [stop] takes effect in at
   most [nap_s], not a whole period. *)

let nap_s = 0.05

type t = {
  period_s : float;
  mutable stopped : bool;
  mutable thread : Thread.t option;
}

let c_flushes = Metrics.counter "telemetry_flushes"

let rec loop t slept =
  if not t.stopped then
    if slept >= t.period_s then begin
      Sink.flush ();
      Metrics.incr c_flushes;
      loop t 0.0
    end
    else begin
      Thread.delay (Float.min nap_s (t.period_s -. slept));
      loop t (slept +. nap_s)
    end

let start ~period_s () =
  if not (Float.is_finite period_s) || period_s <= 0.0 then
    invalid_arg "Flusher.start: non-positive period";
  let t = { period_s; stopped = false; thread = None } in
  t.thread <- Some (Thread.create (fun () -> loop t 0.0) ());
  t

let stop ?(final_flush = true) t =
  if not t.stopped then begin
    t.stopped <- true;
    (match t.thread with Some th -> Thread.join th | None -> ());
    if final_flush then Sink.flush ()
  end
