type trace_mode = Trace_off | Trace_human | Trace_jsonl of string

let mode = ref Trace_off
let metrics_path : string option ref = ref None
let exit_hook_registered = ref false
let trace_mode () = !mode
let metrics_out () = !metrics_path

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let json_escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let json_string buf s =
  Buffer.add_char buf '"';
  json_escape buf s;
  Buffer.add_char buf '"'

(* JSON has no infinities; clamp degenerate histogram bounds to null. *)
let json_float buf v =
  if Float.is_finite v then Buffer.add_string buf (Printf.sprintf "%.17g" v)
  else Buffer.add_string buf "null"

let json_fields buf fields =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, emit) ->
      if i > 0 then Buffer.add_char buf ',';
      json_string buf k;
      Buffer.add_char buf ':';
      emit buf)
    fields;
  Buffer.add_char buf '}'

(* ------------------------------------------------------------------ *)
(* Span rendering                                                      *)
(* ------------------------------------------------------------------ *)

let pp_duration ppf s =
  if s >= 1.0 then Format.fprintf ppf "%8.2f s " s
  else if s >= 1e-3 then Format.fprintf ppf "%8.2f ms" (s *. 1e3)
  else Format.fprintf ppf "%8.1f us" (s *. 1e6)

let pp_attrs ppf = function
  | [] -> ()
  | attrs ->
      Format.fprintf ppf "  {%s}"
        (String.concat ", "
           (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) attrs))

let rec pp_span_at depth ppf (s : Trace.span) =
  Format.fprintf ppf "%s%-*s%a%a@."
    (String.make (2 * depth) ' ')
    (max 1 (48 - (2 * depth)))
    s.Trace.name pp_duration s.Trace.duration_s pp_attrs s.Trace.attrs;
  List.iter (pp_span_at (depth + 1) ppf) s.Trace.children

let pp_roots ppf = function
  | [] -> Format.fprintf ppf "(no spans recorded)@."
  | roots -> List.iter (pp_span_at 0 ppf) roots

let pp_span_tree ppf () = pp_roots ppf (Trace.roots ())

let spans_jsonl buf spans =
  let rec emit path (s : Trace.span) =
    let path =
      if path = "" then s.Trace.name else path ^ "/" ^ s.Trace.name
    in
    json_fields buf
      [
        ("path", fun b -> json_string b path);
        ("name", fun b -> json_string b s.Trace.name);
        ("start_s", fun b -> json_float b s.Trace.start_s);
        ("duration_s", fun b -> json_float b s.Trace.duration_s);
        ( "attrs",
          fun b ->
            json_fields b
              (List.map
                 (fun (k, v) -> (k, fun b -> json_string b v))
                 s.Trace.attrs) );
      ];
    Buffer.add_char buf '\n';
    List.iter (emit path) s.Trace.children
  in
  List.iter (emit "") spans

(* ------------------------------------------------------------------ *)
(* Metrics rendering                                                   *)
(* ------------------------------------------------------------------ *)

let pp_metrics_table ppf () =
  let snap = Metrics.snapshot () in
  if snap.Metrics.counters <> [] then begin
    Format.fprintf ppf "counters:@.";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "  %-42s%14d@." name v)
      snap.Metrics.counters
  end;
  if snap.Metrics.gauges <> [] then begin
    Format.fprintf ppf "gauges:@.";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "  %-42s%14g@." name v)
      snap.Metrics.gauges
  end;
  if snap.Metrics.histograms <> [] then begin
    Format.fprintf ppf "histograms:@.";
    List.iter
      (fun (name, (h : Metrics.histogram_stats)) ->
        if h.Metrics.count = 0 then
          Format.fprintf ppf "  %-42s%14s@." name "(empty)"
        else
          Format.fprintf ppf
            "  %-42scount=%d sum=%g min=%g max=%g p50=%.3g p95=%.3g \
             p99=%.3g@."
            name h.Metrics.count h.Metrics.sum h.Metrics.min_v
            h.Metrics.max_v
            (Metrics.quantile h 0.50)
            (Metrics.quantile h 0.95)
            (Metrics.quantile h 0.99))
      snap.Metrics.histograms
  end;
  if
    snap.Metrics.counters = [] && snap.Metrics.gauges = []
    && snap.Metrics.histograms = []
  then Format.fprintf ppf "(no metrics registered)@."

let snapshot_json (snap : Metrics.snapshot) =
  let buf = Buffer.create 512 in
  json_fields buf
    [
      ( "counters",
        fun b ->
          json_fields b
            (List.map
               (fun (name, v) ->
                 (name, fun b -> Buffer.add_string b (string_of_int v)))
               snap.Metrics.counters) );
      ( "gauges",
        fun b ->
          json_fields b
            (List.map
               (fun (name, v) -> (name, fun b -> json_float b v))
               snap.Metrics.gauges) );
      ( "histograms",
        fun b ->
          json_fields b
            (List.map
               (fun (name, (h : Metrics.histogram_stats)) ->
                 ( name,
                   fun b ->
                     json_fields b
                       [
                         ( "count",
                           fun b ->
                             Buffer.add_string b
                               (string_of_int h.Metrics.count) );
                         ("sum", fun b -> json_float b h.Metrics.sum);
                         ("min", fun b -> json_float b h.Metrics.min_v);
                         ("max", fun b -> json_float b h.Metrics.max_v);
                         ( "p50",
                           fun b -> json_float b (Metrics.quantile h 0.50) );
                         ( "p95",
                           fun b -> json_float b (Metrics.quantile h 0.95) );
                         ( "p99",
                           fun b -> json_float b (Metrics.quantile h 0.99) );
                         ( "buckets",
                           fun b ->
                             Buffer.add_char b '[';
                             List.iteri
                               (fun i (ub, n) ->
                                 if i > 0 then Buffer.add_char b ',';
                                 Buffer.add_char b '[';
                                 json_float b ub;
                                 Buffer.add_char b ',';
                                 Buffer.add_string b (string_of_int n);
                                 Buffer.add_char b ']')
                               h.Metrics.buckets;
                             Buffer.add_char b ']' );
                       ] ))
               snap.Metrics.histograms) );
    ];
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Configuration and flushing                                          *)
(* ------------------------------------------------------------------ *)

let flushed_once = ref false
let flush_lock = Mutex.create ()
let last_error_ref : string option ref = ref None
let last_error () = !last_error_ref
let record_error msg = last_error_ref := Some msg

(* A sink that cannot be written must not take the results down with
   it: report, remember (for /healthz), and carry on. *)
let nonfatal what f =
  try f ()
  with Sys_error msg ->
    record_error (Printf.sprintf "cannot write %s: %s" what msg);
    Printf.eprintf "tomo_obs: cannot write %s: %s\n%!" what msg

(* Atomic write for snapshot-shaped outputs: a scrape or kill between
   open and close must never observe a torn file, so write a sibling
   temp file and rename it over the target. *)
let write_atomic path content =
  match path with
  | "-" ->
      output_string stdout content;
      Stdlib.flush stdout
  | path ->
      let dir = Filename.dirname path in
      let tmp = Filename.temp_file ~temp_dir:dir ".tomo_metrics" ".tmp" in
      let oc = open_out tmp in
      (try
         output_string oc content;
         close_out oc
       with e ->
         close_out_noerr oc;
         (try Sys.remove tmp with Sys_error _ -> ());
         raise e);
      Sys.rename tmp path

(* The body runs under [flush_lock]: a periodic flusher thread and an
   exiting main thread may both call [flush], and each completed span /
   metric must be emitted exactly once.  [take_roots] (not [roots] +
   [reset]) does the draining — reset would also clear another
   thread's open-span stack state and re-zero drop counters. *)
let flush () =
  Mutex.lock flush_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock flush_lock) @@ fun () ->
  flushed_once := true;
  (match !mode with
  | Trace_off -> ()
  | Trace_human ->
      let roots = Trace.take_roots () in
      let ppf = Format.std_formatter in
      Format.fprintf ppf "@.--- trace ---------------------------------@.";
      pp_roots ppf roots;
      if Metrics.enabled () then begin
        Format.fprintf ppf "--- metrics -------------------------------@.";
        pp_metrics_table ppf ()
      end;
      Format.pp_print_flush ppf ()
  | Trace_jsonl path ->
      let roots = Trace.take_roots () in
      if roots <> [] then begin
        let buf = Buffer.create 1024 in
        spans_jsonl buf roots;
        if path = "-" then (
          output_string stderr (Buffer.contents buf);
          Stdlib.flush stderr)
        else
          nonfatal ("trace file " ^ path) (fun () ->
              let oc =
                open_out_gen [ Open_creat; Open_append; Open_text ] 0o644 path
              in
              Fun.protect
                ~finally:(fun () -> close_out oc)
                (fun () -> output_string oc (Buffer.contents buf)))
      end);
  match !metrics_path with
  | None -> ()
  | Some path ->
      nonfatal ("metrics file " ^ path) (fun () ->
          write_atomic path (snapshot_json (Metrics.snapshot ()) ^ "\n"))

let mode_of_env () =
  match Sys.getenv_opt "TOMO_TRACE" with
  | None | Some "" | Some "0" | Some "off" -> Trace_off
  | Some "1" | Some "human" | Some "tree" -> Trace_human
  | Some "json" | Some "jsonl" -> Trace_jsonl "-"
  | Some path -> Trace_jsonl path

let metrics_out_of_env () =
  match Sys.getenv_opt "TOMO_METRICS_OUT" with
  | None | Some "" -> None
  | Some path -> Some path

let init ?trace ?metrics_out () =
  mode := (match trace with Some m -> m | None -> mode_of_env ());
  metrics_path :=
    (match metrics_out with Some p -> Some p | None -> metrics_out_of_env ());
  Trace.set_enabled (!mode <> Trace_off);
  (* A human trace without a metrics file still collects (and prints)
     metrics; JSON-lines traces leave metrics to TOMO_METRICS_OUT. *)
  Metrics.set_enabled (!metrics_path <> None || !mode = Trace_human);
  if (!mode <> Trace_off || !metrics_path <> None) && not !exit_hook_registered
  then begin
    exit_hook_registered := true;
    (* Only flush at exit if nothing flushed explicitly, or new spans
       accumulated since — avoids printing everything twice. *)
    at_exit (fun () ->
        if (not !flushed_once) || Trace.roots () <> [] then flush ())
  end
