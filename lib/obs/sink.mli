(** Export sinks for {!Trace} spans and {!Metrics} snapshots.

    Configuration comes from two environment variables (or explicit
    [init] arguments, which the CLI's [--trace] / [--metrics-out] flags
    use):

    - [TOMO_TRACE]: unset, ["0"] or ["off"] — tracing disabled;
      ["1"], ["human"] or ["tree"] — print a span tree on flush;
      ["json"] or ["jsonl"] — spans as JSON lines on stderr;
      any other value — spans as JSON lines appended to that file path.
    - [TOMO_METRICS_OUT]: a file path (["-"] for stdout) that receives
      one JSON object with every registered counter, gauge and
      histogram on flush.

    [init] enables {!Trace} / {!Metrics} recording as needed and
    registers an [at_exit] flush, so any binary that calls
    [Sink.init ()] once at startup gets observability for free.  When
    neither sink is configured nothing is enabled and the instrumented
    code runs at its uninstrumented speed. *)

type trace_mode =
  | Trace_off
  | Trace_human  (** span tree + metrics table on stdout *)
  | Trace_jsonl of string  (** JSON lines to a path, ["-"] = stderr *)

(** [init ?trace ?metrics_out ()] configures the sinks.  Omitted
    arguments fall back to the environment variables above.  Idempotent;
    may be called again (e.g. once from [main], once after CLI parsing)
    — the last call wins. *)
val init : ?trace:trace_mode -> ?metrics_out:string -> unit -> unit

val trace_mode : unit -> trace_mode
val metrics_out : unit -> string option

(** Render every completed root span as an indented tree. *)
val pp_span_tree : Format.formatter -> unit -> unit

(** Render the current metrics snapshot as aligned tables. *)
val pp_metrics_table : Format.formatter -> unit -> unit

(** One JSON object per span (pre-order), one per line.  Each line
    carries [path] (slash-joined ancestry), [name], [start_s],
    [duration_s] and [attrs]. *)
val spans_jsonl : Buffer.t -> Trace.span list -> unit

(** The snapshot as a single JSON object:
    [{"counters":{...},"gauges":{...},"histograms":{...}}].  Each
    histogram carries [p50]/[p95]/[p99] estimated from its
    power-of-two buckets ({!Metrics.quantile}); [null] when empty. *)
val snapshot_json : Metrics.snapshot -> string

(** Write everything to the configured sinks, draining recorded spans.
    Thread-safe and idempotent: concurrent callers serialize on an
    internal lock, spans are emitted exactly once
    ({!Trace.take_roots}), and the metrics file is rewritten atomically
    (temp file + rename) so a concurrent scrape or a kill mid-write
    never observes a torn JSON file.  Called automatically at exit
    after [init]; a periodic {!Flusher} calls it on a cadence. *)
val flush : unit -> unit

(** The most recent sink write failure ([None] if none) — surfaced in
    the exporter's [/healthz] as [last_error]. *)
val last_error : unit -> string option

(** Record an error for {!last_error} (used by the exporter and event
    log for their own write failures). *)
val record_error : string -> unit
