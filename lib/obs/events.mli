(** Structured JSONL event log for engine lifecycle events.

    Where {!Trace} answers "how long did this region take" and
    {!Metrics} answers "how much of this happened", the event log
    answers "what happened, and when": one JSON object per line,
    written (and flushed) the moment the event is emitted, so the log
    of a crashed daemon still ends at the crash.  The serve loop emits
    [source_open] / [source_eof], [reselect], [snapshot_written] /
    [snapshot_restored] and [pool_resize]; anything may emit its own.

    Disabled by default: [emit] is a single branch until [configure]
    installs an output.  Emission is thread-safe — concurrent events
    interleave as whole lines. *)

(** [configure (Some path)] starts appending events to [path] (["-"]
    for stderr); [configure None] flushes and closes.  Reconfiguring
    closes the previous output first. *)
val configure : string option -> unit

val enabled : unit -> bool

(** The path given to [configure], if any. *)
val configured_path : unit -> string option

(** [emit ?ts event attrs] appends
    [{"ts":<seconds>,"event":<event>,"k":"v",...}].  [ts] defaults to
    now.  No-op while unconfigured; write failures print a warning and
    are otherwise swallowed (telemetry must not take the engine
    down). *)
val emit : ?ts:float -> string -> (string * string) list -> unit

(** Pure renderer behind [emit], exposed for escaping tests: the JSONL
    line (no trailing newline) for one event. *)
val line : ts:float -> string -> (string * string) list -> string

(** Flush and close the output (idempotent). *)
val close : unit -> unit
