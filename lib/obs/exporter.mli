(** Scrapeable live-telemetry endpoint: a minimal HTTP server (stdlib
    [Unix] + one systhread, no dependencies) over a Unix-domain or TCP
    socket.

    Routes:
    - [/metrics] — the {!Metrics} registry in Prometheus text format:
      counters, gauges, and histograms with cumulative power-of-two
      [le] buckets, so [histogram_quantile(0.95, ...)] works as usual;
    - [/healthz] — the [health] callback's JSON (tick progress, window
      fill, snapshot age, last sink error — composed by the serve
      loop), or a minimal [{"status":"ok",...}] when none is given;
    - [/status] — the [status] callback's JSON engine view, 404 if
      none.

    The accept loop only reads (the registry is thread-safe; callbacks
    must be), so scraping a running engine cannot change its results —
    the streaming==batch bit-identity gate holds with an exporter
    attached.  Counters [telemetry_scrapes] / [telemetry_scrape_errors]
    count requests, and so appear in their own scrape output. *)

type t

type listen =
  | Unix_sock of string  (** filesystem path *)
  | Tcp of string * int  (** host, port *)

(** ["HOST:PORT"], [":PORT"] and ["PORT"] parse as TCP (host defaults
    to 127.0.0.1); anything else is a Unix-socket path. *)
val listen_of_string : string -> (listen, string) result

val listen_to_string : listen -> string

(** [bind l] binds and listens on [l], returning the listening socket
    (backlog 16).  A stale Unix socket file at the path is removed
    first; TCP sockets get [SO_REUSEADDR].  Shared with the ingestion
    plane ([Tomo_net.Listener]), so telemetry and ingestion accept
    identical address syntax.  @raise Unix.Unix_error on bind
    failures. *)
val bind : listen -> Unix.file_descr

(** Bind and start serving on a background thread.  [health] / [status]
    return complete JSON bodies and are called on the exporter thread —
    they must be thread-safe (read an immutable published snapshot, not
    live engine internals).  A stale Unix socket file at the path is
    removed first; other bind failures raise [Unix.Unix_error].
    Stop with {!stop} — or don't: an abandoned exporter dies with the
    process. *)
val start :
  ?health:(unit -> string) -> ?status:(unit -> string) -> listen -> t

(** Close the listening socket (unlinking a Unix socket path) and join
    the serving thread.  Idempotent. *)
val stop : t -> unit

val started_at : t -> float

(** Pure renderer behind [/metrics], exposed for golden tests. *)
val prometheus_of_snapshot : Metrics.snapshot -> string
