(* Scrapeable telemetry endpoint: a minimal HTTP/1.0 server over a Unix
   or TCP socket (stdlib [Unix] + [Thread] only, no web framework)
   serving the live metrics registry and process health.

     /metrics  Prometheus text format (counters, gauges, histograms
               with cumulative power-of-two buckets)
     /healthz  JSON health view (caller-supplied body — the serve loop
               reports tick progress, window fill, snapshot age and
               the last sink error)
     /status   JSON engine-status view (caller-supplied), 404 if none

   The accept loop runs on its own systhread and only ever *reads*
   shared state — the metrics registry is already thread-safe, and the
   health/status callbacks are documented to be — so attaching an
   exporter cannot perturb engine results.  Requests are served
   serially: scrapes are small and rare, and one slow client must not
   be able to hold a second one's connection open forever (a 5 s socket
   timeout bounds the damage either way). *)

let c_scrapes = Metrics.counter "telemetry_scrapes"
let c_scrape_errors = Metrics.counter "telemetry_scrape_errors"

(* ------------------------------------------------------------------ *)
(* Listen addresses                                                    *)
(* ------------------------------------------------------------------ *)

type listen = Unix_sock of string | Tcp of string * int

let listen_to_string = function
  | Unix_sock p -> p
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

(* "HOST:PORT" or ":PORT" is TCP; anything else is a Unix socket path
   (a bare "PORT" digit-string is also TCP on localhost, so
   "--listen 9090" does what it looks like). *)
let listen_of_string s =
  let is_port p =
    match int_of_string_opt p with
    | Some v when v > 0 && v < 65536 -> Some v
    | _ -> None
  in
  match String.rindex_opt s ':' with
  | Some i when not (String.contains s '/') -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match is_port port with
      | Some p -> Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
      | None -> Error (Printf.sprintf "bad port in listen address %S" s))
  | None when is_port s <> None -> Ok (Tcp ("127.0.0.1", Option.get (is_port s)))
  | _ ->
      if s = "" then Error "empty listen address" else Ok (Unix_sock s)

(* ------------------------------------------------------------------ *)
(* Prometheus text rendering (pure, golden-tested)                     *)
(* ------------------------------------------------------------------ *)

(* Prometheus metric names admit [a-zA-Z0-9_:]; registry names use
   dots in a few tests, so map anything else to '_'. *)
let prom_name n =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    n

let prom_float v =
  if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_nan v then "NaN"
  else
    let s = Printf.sprintf "%.17g" v in
    (* shortest round-trip representation keeps the output stable *)
    let short = Printf.sprintf "%g" v in
    if float_of_string short = v then short else s

let prometheus_of_snapshot (snap : Metrics.snapshot) =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let n = prom_name name in
      Printf.bprintf b "# TYPE %s counter\n%s %d\n" n n v)
    snap.Metrics.counters;
  List.iter
    (fun (name, v) ->
      let n = prom_name name in
      Printf.bprintf b "# TYPE %s gauge\n%s %s\n" n n (prom_float v))
    snap.Metrics.gauges;
  List.iter
    (fun (name, (h : Metrics.histogram_stats)) ->
      let n = prom_name name in
      Printf.bprintf b "# TYPE %s histogram\n" n;
      let cum = ref 0 in
      List.iter
        (fun (ub, count) ->
          cum := !cum + count;
          Printf.bprintf b "%s_bucket{le=\"%s\"} %d\n" n (prom_float ub) !cum)
        h.Metrics.buckets;
      Printf.bprintf b "%s_bucket{le=\"+Inf\"} %d\n" n h.Metrics.count;
      Printf.bprintf b "%s_sum %s\n" n
        (prom_float (if h.Metrics.count = 0 then 0.0 else h.Metrics.sum));
      Printf.bprintf b "%s_count %d\n" n h.Metrics.count)
    snap.Metrics.histograms;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* HTTP plumbing                                                       *)
(* ------------------------------------------------------------------ *)

type t = {
  fd : Unix.file_descr;
  listen : listen;
  health : (unit -> string) option;
  status : (unit -> string) option;
  started_at : float;
  mutable stopped : bool;
  mutable thread : Thread.t option;
}

let started_at t = t.started_at

let default_health t () =
  let b = Buffer.create 64 in
  Printf.bprintf b "{\"status\":\"ok\",\"uptime_s\":%.3f"
    (Unix.gettimeofday () -. t.started_at);
  (match Sink.last_error () with
  | None -> Buffer.add_string b ",\"last_error\":null"
  | Some e ->
      Buffer.add_string b ",\"last_error\":\"";
      Buffer.add_string b
        (String.concat "\\\"" (String.split_on_char '"' e));
      Buffer.add_char b '"');
  Buffer.add_char b '}';
  Buffer.contents b

let respond t path =
  match path with
  | "/metrics" ->
      ( 200,
        "text/plain; version=0.0.4; charset=utf-8",
        prometheus_of_snapshot (Metrics.snapshot ()) )
  | "/healthz" ->
      ( 200,
        "application/json",
        (match t.health with Some f -> f () | None -> default_health t ()) )
  | "/status" -> (
      match t.status with
      | Some f -> (200, "application/json", f ())
      | None -> (404, "text/plain", "no status view configured\n"))
  | "/" | "" ->
      (200, "text/plain", "tomo telemetry: /metrics /healthz /status\n")
  | _ -> (404, "text/plain", "not found\n")

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | _ -> "Error"

let http_response code content_type body =
  Printf.sprintf
    "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    code (status_text code) content_type (String.length body) body

(* Read until the blank line ending the request head (or 8 KiB, or the
   socket timeout); we only ever need the request line. *)
let read_head fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let rec go () =
    if Buffer.length buf > 8192 then ()
    else
      let n = Unix.read fd chunk 0 (Bytes.length chunk) in
      if n > 0 then begin
        Buffer.add_subbytes buf chunk 0 n;
        let s = Buffer.contents buf in
        let have_blank =
          let rec find i =
            i + 3 < String.length s
            && ((s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r'
                 && s.[i + 3] = '\n')
               || find (i + 1))
          in
          find 0
        in
        if not have_blank then go ()
      end
  in
  (try go () with Unix.Unix_error _ | Sys_error _ -> ());
  Buffer.contents buf

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      let n = Unix.write fd b off (len - off) in
      if n > 0 then go (off + n)
  in
  try go 0 with Unix.Unix_error _ -> ()

let serve_client t client =
  Unix.setsockopt_float client Unix.SO_RCVTIMEO 5.0;
  Unix.setsockopt_float client Unix.SO_SNDTIMEO 5.0;
  let head = read_head client in
  let request_line =
    match String.index_opt head '\r' with
    | Some i -> String.sub head 0 i
    | None -> (
        match String.index_opt head '\n' with
        | Some i -> String.sub head 0 i
        | None -> head)
  in
  let response =
    match String.split_on_char ' ' request_line with
    | [ "GET"; target; _ ] | [ "GET"; target ] ->
        let path =
          match String.index_opt target '?' with
          | Some i -> String.sub target 0 i
          | None -> target
        in
        Metrics.incr c_scrapes;
        let code, ctype, body = respond t path in
        http_response code ctype body
    | _ :: _ :: _ ->
        Metrics.incr c_scrape_errors;
        http_response 405 "text/plain" "only GET is served here\n"
    | _ ->
        Metrics.incr c_scrape_errors;
        http_response 400 "text/plain" "malformed request\n"
  in
  write_all client response

let rec accept_loop t =
  match Unix.accept t.fd with
  | client, _ ->
      (try serve_client t client
       with e ->
         Metrics.incr c_scrape_errors;
         Sink.record_error
           ("telemetry request failed: " ^ Printexc.to_string e));
      (try Unix.shutdown client Unix.SHUTDOWN_ALL
       with Unix.Unix_error _ -> ());
      (try Unix.close client with Unix.Unix_error _ -> ());
      if not t.stopped then accept_loop t
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      if not t.stopped then accept_loop t
  | exception Unix.Unix_error _ ->
      (* listening socket closed by [stop], or torn down at exit *)
      ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let bind = function
  | Unix_sock path ->
      (* A stale socket file from a previous run would make bind fail;
         only ever remove something that actually is a socket. *)
      (match Unix.lstat path with
      | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
      | _ -> ()
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 16;
      fd
  | Tcp (host, port) ->
      let addr =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      Unix.listen fd 16;
      fd

let start ?health ?status listen =
  let fd = bind listen in
  let t =
    {
      fd;
      listen;
      health;
      status;
      started_at = Unix.gettimeofday ();
      stopped = false;
      thread = None;
    }
  in
  Events.emit "exporter_listening" [ ("addr", listen_to_string listen) ];
  t.thread <- Some (Thread.create accept_loop t);
  t

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    (* Closing the listening socket pops the accept loop out of its
       blocking accept; the thread then sees [stopped] and returns. *)
    (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close t.fd with Unix.Unix_error _ -> ());
    (match t.listen with
    | Unix_sock path -> (
        try Unix.unlink path with Unix.Unix_error _ -> ())
    | Tcp _ -> ());
    (match t.thread with Some th -> Thread.join th | None -> ());
    Events.emit "exporter_stopped" [ ("addr", listen_to_string t.listen) ]
  end
