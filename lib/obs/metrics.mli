(** Process-global registry of named counters, gauges and log-scale
    histograms.

    Instruments are interned by name: [counter "equations_formed"]
    returns the same handle everywhere, so modules can register their
    instruments at load time and tests or exporters can look them up by
    name.  Registering the same name as two different instrument kinds
    raises [Invalid_argument].

    Recording is off by default.  While disabled, [incr] / [set_gauge] /
    [observe] are a single branch and return — no allocation, no hash
    lookup (handles hold their cells directly).  Enable with
    [set_enabled] (done by {!Sink.init} when a metrics sink is
    configured).  Reads ([counter_value], [snapshot], …) work regardless
    of the enabled flag.

    All recording operations are safe to call from multiple domains
    (tomo_par workers record into the same registry): counters are
    lock-free atomics; gauges, histograms and registration take a short
    internal lock. *)

type counter
type gauge
type histogram

val enabled : unit -> bool
val set_enabled : bool -> unit

val counter : string -> counter
val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit

(** [None] until the gauge is first set. *)
val gauge_value : gauge -> float option

(** Histograms bucket observations by power of two: the bucket with
    upper bound [2^e] holds values in [[2^(e-1), 2^e)].  Non-positive
    values land in a dedicated underflow bucket (upper bound [0.]). *)
val histogram : string -> histogram

val observe : histogram -> float -> unit

type histogram_stats = {
  count : int;
  sum : float;
  min_v : float;  (** [infinity] when [count = 0] *)
  max_v : float;  (** [neg_infinity] when [count = 0] *)
  buckets : (float * int) list;
      (** non-empty buckets as [(upper_bound, count)], ascending *)
}

val histogram_stats : histogram -> histogram_stats

(** [quantile stats q] estimates the [q]-quantile ([0. <= q <= 1.])
    from the power-of-two buckets by linear interpolation inside the
    bucket holding the ranked observation (each bucket's lower edge is
    half its upper bound), clamped to the recorded min/max.  [nan] when
    the histogram is empty.  This is the estimator behind the exported
    p50/p95/p99: exact to within one bucket (a factor-of-2 bound on the
    value, tight in practice for latencies that cluster). *)
val quantile : histogram_stats -> float -> float

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;  (** only gauges that were set *)
  histograms : (string * histogram_stats) list;
}

(** Everything registered, each section sorted by name.  Counters appear
    even at zero so exported snapshots have a stable shape. *)
val snapshot : unit -> snapshot

(** Zero every instrument; registrations and handles stay valid. *)
val reset : unit -> unit
