(* Tests for the network ingestion plane: the length-prefixed frame
   codec (decode ∘ encode = id under any fragmentation, torn frames at
   every byte boundary, oversized/zero-length rejection) and the Hub
   end-to-end over real sockets — a socket-fed peer's report must be
   byte-identical to driving the engine directly, a hub killed by its
   tick budget and restarted from snapshots must be bit-identical to an
   uninterrupted run, and misbehaving peers (garbage frames, half-open
   connections, queue overflow) must be dropped without perturbing the
   others. *)

module Bitset = Tomo_util.Bitset
module Rng = Tomo_util.Rng
module Engine = Tomo_stream.Engine
module Frame = Tomo_net.Frame
module Hub = Tomo_net.Hub
module Listener = Tomo_net.Listener

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Frame codec                                                         *)
(* ------------------------------------------------------------------ *)

let drain_frames dec =
  let rec go acc =
    match Frame.next dec with None -> List.rev acc | Some f -> go (f :: acc)
  in
  go []

let wire_of payloads =
  let b = Buffer.create 256 in
  List.iter (Frame.encode_into b) payloads;
  Buffer.contents b

let payloads_gen =
  QCheck.Gen.(
    list_size (int_range 1 8)
      (string_size (int_range 1 40) ~gen:(char_range '\000' '\255')))

let payloads_arb =
  QCheck.make ~print:(fun ps -> String.concat "|" (List.map String.escaped ps))
    payloads_gen

(* decode(encode(xs)) = xs when the whole wire arrives in one read. *)
let frame_roundtrip_qcheck =
  QCheck.Test.make ~count:200 ~name:"frame roundtrip, one read"
    payloads_arb
    (fun payloads ->
      let dec = Frame.create () in
      Frame.feed_string dec (wire_of payloads);
      drain_frames dec = payloads && Frame.at_boundary dec)

(* ... and when the wire is torn at every byte boundary: for each split
   point, feeding the two halves yields the same frames. *)
let frame_torn_qcheck =
  QCheck.Test.make ~count:50 ~name:"frame roundtrip, torn at every byte"
    payloads_arb
    (fun payloads ->
      let wire = wire_of payloads in
      let ok = ref true in
      for cut = 0 to String.length wire do
        let dec = Frame.create () in
        Frame.feed_string dec (String.sub wire 0 cut);
        Frame.feed_string dec
          (String.sub wire cut (String.length wire - cut));
        if drain_frames dec <> payloads || not (Frame.at_boundary dec) then
          ok := false
      done;
      !ok)

(* ... and byte-at-a-time (maximal fragmentation). *)
let frame_bytewise_qcheck =
  QCheck.Test.make ~count:100 ~name:"frame roundtrip, byte at a time"
    payloads_arb
    (fun payloads ->
      let wire = wire_of payloads in
      let dec = Frame.create () in
      String.iter (fun c -> Frame.feed_string dec (String.make 1 c)) wire;
      drain_frames dec = payloads && Frame.at_boundary dec)

let test_frame_rejections () =
  (* encode refuses empty and oversized payloads *)
  (match Frame.encode "" with
  | _ -> Alcotest.fail "empty payload accepted"
  | exception Invalid_argument _ -> ());
  (match Frame.encode ~max_payload:4 "12345" with
  | _ -> Alcotest.fail "oversized payload accepted"
  | exception Invalid_argument _ -> ());
  (* a header announcing more than the cap poisons the decoder *)
  let dec = Frame.create ~max_payload:16 () in
  let huge = "\x00\x00\x01\x00" (* 256 bytes *) in
  (match Frame.feed_string dec huge with
  | _ -> Alcotest.fail "oversized frame accepted"
  | exception Failure msg ->
      check_bool "names the cap" true (contains ~needle:"exceeds cap" msg));
  (* ... and stays poisoned: the peer cannot resynchronize *)
  (match Frame.feed_string dec (Frame.encode "ok") with
  | _ -> Alcotest.fail "poisoned decoder recovered"
  | exception Failure _ -> ());
  (* a zero-length frame is a protocol error too *)
  let dec = Frame.create () in
  (match Frame.feed_string dec "\x00\x00\x00\x00" with
  | _ -> Alcotest.fail "zero-length frame accepted"
  | exception Failure _ -> ());
  (* a clean stream ends at a boundary; a torn one does not *)
  let dec = Frame.create () in
  Frame.feed_string dec (Frame.encode "hello");
  check_bool "boundary after full frame" true (Frame.at_boundary dec);
  Frame.feed_string dec "\x00\x00";
  check_bool "mid-header is not a boundary" false (Frame.at_boundary dec);
  check_int "frames_decoded" 1 (Frame.frames_decoded dec);
  check_int "bytes_fed" (String.length (Frame.encode "hello") + 2)
    (Frame.bytes_fed dec)

(* ------------------------------------------------------------------ *)
(* Shared scaffolding for the hub tests                                *)
(* ------------------------------------------------------------------ *)

let shuffled_prefix rng n k =
  let a = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.sub a 0 k

let random_model rng =
  let n_links = 4 + Rng.int rng 6 in
  let n_paths = 3 + Rng.int rng 5 in
  let paths =
    Array.init n_paths (fun _ ->
        let k = 1 + Rng.int rng (min 4 n_links) in
        shuffled_prefix rng n_links k)
  in
  let sets = ref [] and i = ref 0 in
  while !i < n_links do
    let k = min (n_links - !i) (1 + Rng.int rng 3) in
    sets := Array.init k (fun j -> !i + j) :: !sets;
    i := !i + k
  done;
  Tomo.Model.make ~n_links ~paths
    ~corr_sets:(Array.of_list (List.rev !sets))

let random_column rng n_paths =
  let b = Bitset.create n_paths in
  for p = 0 to n_paths - 1 do
    if Rng.bool rng ~p:0.7 then Bitset.set b p
  done;
  b

let bits_of col n_paths =
  String.init n_paths (fun p -> if Bitset.get col p then '1' else '0')

(* The framed records a well-behaved peer sends for [cols]. *)
let trace_frames ?peer ~n_paths cols =
  let records = ref [] in
  Option.iter (fun name -> records := [ "peer " ^ name ]) peer;
  records := "tomo-trace v1" :: !records;
  records := Printf.sprintf "paths %d" n_paths :: !records;
  Array.iteri
    (fun i col ->
      records :=
        Printf.sprintf "tick %d %s" i (bits_of col n_paths) :: !records)
    cols;
  wire_of (List.rev !records)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_tmpdir f =
  let dir = Filename.temp_file "tomo_net_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> try rm_rf dir with Sys_error _ -> ()) (fun () -> f dir)

let write_all fd s =
  let b = Bytes.of_string s in
  let off = ref 0 in
  while !off < Bytes.length b do
    off := !off + Unix.write fd b !off (Bytes.length b - !off)
  done

(* A peer over a socketpair: hands the server end to [attach], writes
   [wire] from a client thread, then half-closes. *)
let spawn_peer ?(close_after = true) hub wire =
  let server, client =
    Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  Hub.attach hub server;
  let th =
    Thread.create
      (fun () ->
        (try write_all client wire
         with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ());
        if close_after then
          try Unix.close client with Unix.Unix_error _ -> ())
      ()
  in
  (th, client)

let wait_for ?(timeout = 20.) pred what =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () -. t0 > timeout then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay 0.01;
      go ()
    end
  in
  go ()

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* The reference: drive an engine directly over the same columns. *)
let expected_report ~model ~window cols =
  let engine = Engine.create ~model ~window () in
  let last =
    Array.fold_left
      (fun last col ->
        match Engine.ingest engine (Bitset.copy col) with
        | Some e -> Some e
        | None -> last)
      None cols
  in
  Engine.report_to_string ~window (Option.get last)

(* ------------------------------------------------------------------ *)
(* Hub: socket-fed == direct, per-peer isolation                       *)
(* ------------------------------------------------------------------ *)

let test_hub_matches_direct () =
  let rng = Rng.create 11 in
  let model = random_model rng in
  let n_paths = model.Tomo.Model.n_paths in
  let window = 4 and total = 12 in
  let cols_a = Array.init total (fun _ -> random_column rng n_paths) in
  let cols_b = Array.init total (fun _ -> random_column rng n_paths) in
  with_tmpdir (fun dir ->
      let hub = Hub.create ~model ~window ~report_dir:dir () in
      let runner = Thread.create Hub.run hub in
      let th_a, _ =
        spawn_peer hub (trace_frames ~peer:"alpha" ~n_paths cols_a)
      in
      let th_b, _ =
        spawn_peer hub (trace_frames ~peer:"beta" ~n_paths cols_b)
      in
      wait_for
        (fun () -> (Hub.stats hub).Hub.reports_written = 2)
        "both reports";
      Hub.request_stop hub;
      Thread.join runner;
      Thread.join th_a;
      Thread.join th_b;
      let s = Hub.stats hub in
      check_int "ticks" (2 * total) s.Hub.ticks_ingested;
      check_int "dropped" 0 s.Hub.peers_dropped;
      Alcotest.(check string)
        "alpha socket report == direct engine report"
        (expected_report ~model ~window cols_a)
        (read_file (Filename.concat dir "alpha.report"));
      Alcotest.(check string)
        "beta socket report == direct engine report"
        (expected_report ~model ~window cols_b)
        (read_file (Filename.concat dir "beta.report")))

(* Kill the hub mid-ingest via its tick budget, restart it from the
   snapshot directory, re-send the full trace: the final report must be
   byte-identical to an uninterrupted run. *)
let test_hub_kill_restore () =
  let rng = Rng.create 23 in
  let model = random_model rng in
  let n_paths = model.Tomo.Model.n_paths in
  let window = 4 and total = 14 and cut = 9 in
  let cols = Array.init total (fun _ -> random_column rng n_paths) in
  let wire = trace_frames ~peer:"gamma" ~n_paths cols in
  with_tmpdir (fun dir ->
      (* run 1: cut after [cut] ticks — Hub.run returns on its own *)
      let hub1 =
        Hub.create ~model ~window ~snapshot_dir:dir ~report_dir:dir
          ~max_ticks:cut ()
      in
      let runner1 = Thread.create Hub.run hub1 in
      let th1, _ = spawn_peer hub1 wire in
      Thread.join runner1;
      Thread.join th1;
      let s1 = Hub.stats hub1 in
      check_int "cut at the budget" cut s1.Hub.ticks_ingested;
      check_int "no report from the cut run" 0 s1.Hub.reports_written;
      check_bool "snapshot exists" true
        (Sys.file_exists (Filename.concat dir "gamma.snap"));
      (* run 2: restore, re-send everything (skip fast-forwards) *)
      let hub2 =
        Hub.create ~model ~window ~snapshot_dir:dir ~report_dir:dir ()
      in
      let runner2 = Thread.create Hub.run hub2 in
      let th2, _ = spawn_peer hub2 wire in
      wait_for
        (fun () -> (Hub.stats hub2).Hub.reports_written = 1)
        "resumed report";
      Hub.request_stop hub2;
      Thread.join runner2;
      Thread.join th2;
      check_int "only the tail was re-ingested" (total - cut)
        (Hub.stats hub2).Hub.ticks_ingested;
      Alcotest.(check string)
        "kill+restore report == uninterrupted report"
        (expected_report ~model ~window cols)
        (read_file (Filename.concat dir "gamma.report")))

(* A peer sending a well-framed but garbage record is dropped; a peer
   racing it on another socket is untouched. *)
let test_hub_garbage_peer_isolated () =
  let rng = Rng.create 37 in
  let model = random_model rng in
  let n_paths = model.Tomo.Model.n_paths in
  let window = 3 and total = 8 in
  let cols = Array.init total (fun _ -> random_column rng n_paths) in
  with_tmpdir (fun dir ->
      let hub = Hub.create ~model ~window ~report_dir:dir () in
      let runner = Thread.create Hub.run hub in
      let th_bad, _ =
        spawn_peer hub
          (wire_of [ "peer evil"; "tomo-trace v1"; "paths nope" ])
      in
      let th_ugly, _ =
        (* raw garbage: a frame header announcing 2 GiB *)
        spawn_peer hub "\x7f\xff\xff\xff overflow!"
      in
      let th_good, _ =
        spawn_peer hub (trace_frames ~peer:"good" ~n_paths cols)
      in
      wait_for
        (fun () ->
          let s = Hub.stats hub in
          s.Hub.reports_written = 1 && s.Hub.peers_dropped = 2)
        "good report + two drops";
      Hub.request_stop hub;
      Thread.join runner;
      List.iter Thread.join [ th_bad; th_ugly; th_good ];
      Alcotest.(check string)
        "good peer unperturbed"
        (expected_report ~model ~window cols)
        (read_file (Filename.concat dir "good.report"));
      check_bool "no report for the garbage peer" false
        (Sys.file_exists (Filename.concat dir "evil.report")))

(* A half-open peer (connects, sends a prefix, then goes silent) is
   reaped by the idle timeout. *)
let test_hub_idle_timeout () =
  let rng = Rng.create 41 in
  let model = random_model rng in
  let hub = Hub.create ~model ~window:3 ~idle_timeout:0.2 () in
  let runner = Thread.create Hub.run hub in
  let th, client =
    spawn_peer ~close_after:false hub
      (wire_of [ "peer sleepy"; "tomo-trace v1" ])
  in
  wait_for
    (fun () -> (Hub.stats hub).Hub.peers_dropped = 1)
    "idle peer dropped";
  Hub.request_stop hub;
  Thread.join runner;
  Thread.join th;
  (try Unix.close client with Unix.Unix_error _ -> ());
  check_int "dropped" 1 (Hub.stats hub).Hub.peers_dropped

(* With the drop policy and no draining (the hub loop never runs), a
   blaster overflows its bounded queue and is disconnected. *)
let test_hub_overflow_drop_policy () =
  let rng = Rng.create 43 in
  let model = random_model rng in
  let n_paths = model.Tomo.Model.n_paths in
  let total = 50 in
  let cols = Array.init total (fun _ -> random_column rng n_paths) in
  let hub =
    Hub.create ~model ~window:3 ~queue_capacity:2 ~policy:Hub.Drop_peer ()
  in
  let th, _ = spawn_peer hub (trace_frames ~peer:"blaster" ~n_paths cols) in
  wait_for
    (fun () -> (Hub.stats hub).Hub.peers_dropped = 1)
    "overflowing peer dropped";
  Thread.join th;
  (* a post-hoc run must still shut down cleanly *)
  Hub.request_stop hub;
  Hub.run hub;
  check_int "dropped" 1 (Hub.stats hub).Hub.peers_dropped

(* ------------------------------------------------------------------ *)
(* Listener: accepts on a real Unix socket                             *)
(* ------------------------------------------------------------------ *)

let test_listener_accepts () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "ingest.sock" in
      let accepted = ref 0 in
      let m = Mutex.create () in
      let listener =
        Listener.start (Tomo_obs.Exporter.Unix_sock path)
          ~on_accept:(fun fd ->
            Mutex.lock m;
            incr accepted;
            Mutex.unlock m;
            Unix.close fd)
      in
      let connect () =
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        Unix.close fd
      in
      connect ();
      connect ();
      wait_for
        (fun () ->
          Mutex.lock m;
          let n = !accepted in
          Mutex.unlock m;
          n = 2)
        "two accepts";
      Listener.stop listener;
      check_bool "socket file unlinked" false (Sys.file_exists path))

let () =
  Tomo_par.Pool.set_default_jobs 1;
  Alcotest.run "net"
    [
      ( "frame",
        [
          QCheck_alcotest.to_alcotest frame_roundtrip_qcheck;
          QCheck_alcotest.to_alcotest frame_torn_qcheck;
          QCheck_alcotest.to_alcotest frame_bytewise_qcheck;
          Alcotest.test_case "rejections and boundaries" `Quick
            test_frame_rejections;
        ] );
      ( "hub",
        [
          Alcotest.test_case "socket report == direct report" `Quick
            test_hub_matches_direct;
          Alcotest.test_case "kill + snapshot restore is bit-identical"
            `Quick test_hub_kill_restore;
          Alcotest.test_case "garbage peers dropped, good peer isolated"
            `Quick test_hub_garbage_peer_isolated;
          Alcotest.test_case "half-open peer reaped by idle timeout" `Quick
            test_hub_idle_timeout;
          Alcotest.test_case "queue overflow drops under drop policy" `Quick
            test_hub_overflow_drop_policy;
        ] );
      ( "listener",
        [ Alcotest.test_case "accepts over a Unix socket" `Quick test_listener_accepts ] );
    ]
