(* Tests for the observability library: span trees, the metrics
   registry and the JSON export shape.  Trace and Metrics hold
   process-global state, so every test restores the disabled default on
   the way out. *)

module Trace = Tomo_obs.Trace
module Metrics = Tomo_obs.Metrics
module Sink = Tomo_obs.Sink
module Events = Tomo_obs.Events
module Exporter = Tomo_obs.Exporter
module Flusher = Tomo_obs.Flusher
module Engine = Tomo_stream.Engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let with_tracing f =
  Trace.set_enabled true;
  Trace.reset ();
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.reset ())
    f

let with_metrics f =
  Metrics.set_enabled true;
  Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  with_tracing @@ fun () ->
  let r =
    Trace.with_span "outer" (fun () ->
        Trace.with_span "first" (fun () -> ()) ;
        Trace.with_span "second" (fun () ->
            Trace.with_span "grandchild" (fun () -> ()));
        17)
  in
  check_int "thunk result passes through" 17 r;
  match Trace.roots () with
  | [ outer ] ->
      check_string "root name" "outer" outer.Trace.name;
      (match outer.Trace.children with
      | [ a; b ] ->
          check_string "children in execution order (1)" "first" a.Trace.name;
          check_string "children in execution order (2)" "second" b.Trace.name;
          check_int "grandchild attached" 1 (List.length b.Trace.children)
      | l -> Alcotest.failf "expected 2 children, got %d" (List.length l))
  | l -> Alcotest.failf "expected 1 root, got %d" (List.length l)

let test_span_timing_monotonic () =
  with_tracing @@ fun () ->
  Trace.with_span "parent" (fun () ->
      Trace.with_span "child" (fun () ->
          (* Make the child take a measurable amount of time. *)
          let s = ref 0.0 in
          for i = 1 to 20_000 do
            s := !s +. sqrt (float_of_int i)
          done;
          ignore !s));
  match Trace.roots () with
  | [ p ] ->
      let c = List.hd p.Trace.children in
      check_bool "durations are non-negative" true
        (p.Trace.duration_s >= 0.0 && c.Trace.duration_s >= 0.0);
      check_bool "child starts at or after parent" true
        (c.Trace.start_s >= p.Trace.start_s);
      check_bool "child fits inside parent" true
        (c.Trace.duration_s <= p.Trace.duration_s +. 1e-9)
  | _ -> Alcotest.fail "expected exactly one root"

let test_span_attrs () =
  with_tracing @@ fun () ->
  Trace.with_span "s" ~attrs:[ ("k", "v") ] (fun () ->
      Trace.add_attr "n" "42");
  match Trace.roots () with
  | [ s ] ->
      check_bool "literal attr recorded" true
        (List.mem_assoc "k" s.Trace.attrs);
      check_string "add_attr recorded" "42" (List.assoc "n" s.Trace.attrs)
  | _ -> Alcotest.fail "expected exactly one root"

let test_span_exception_safe () =
  with_tracing @@ fun () ->
  (try
     Trace.with_span "outer" (fun () ->
         Trace.with_span "thrower" (fun () -> failwith "boom"))
   with Failure _ -> ());
  (* Both spans must have been closed despite the exception, and a new
     root must attach at the top level, not under a leaked open span. *)
  Trace.with_span "after" (fun () -> ());
  match Trace.roots () with
  | [ outer; after ] ->
      check_string "failed root closed" "outer" outer.Trace.name;
      check_int "thrower closed under outer" 1
        (List.length outer.Trace.children);
      check_string "subsequent span is a root" "after" after.Trace.name
  | l -> Alcotest.failf "expected 2 roots, got %d" (List.length l)

let test_span_disabled_noop () =
  Trace.set_enabled false;
  Trace.reset ();
  let r = Trace.with_span "ignored" ~attrs:[ ("a", "b") ] (fun () -> 3) in
  Trace.add_attr "also" "ignored";
  check_int "thunk still runs" 3 r;
  check_int "nothing recorded" 0 (List.length (Trace.roots ()))

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_counter_arithmetic () =
  with_metrics @@ fun () ->
  let c = Metrics.counter "test_obs.c1" in
  check_int "starts at zero" 0 (Metrics.counter_value c);
  Metrics.incr c;
  Metrics.incr ~by:5 c;
  check_int "1 + 5" 6 (Metrics.counter_value c);
  let c' = Metrics.counter "test_obs.c1" in
  Metrics.incr c';
  check_int "same name interns to the same cell" 7 (Metrics.counter_value c)

let test_kind_mismatch () =
  let _ = Metrics.counter "test_obs.kind" in
  Alcotest.check_raises "counter name reused as gauge"
    (Invalid_argument
       "Metrics: \"test_obs.kind\" already registered as another kind")
    (fun () -> ignore (Metrics.gauge "test_obs.kind"))

let test_gauge () =
  with_metrics @@ fun () ->
  let g = Metrics.gauge "test_obs.g1" in
  check_bool "unset gauge reads None" true (Metrics.gauge_value g = None);
  Metrics.set_gauge g 2.5;
  Metrics.set_gauge g 4.0;
  check_bool "last write wins" true (Metrics.gauge_value g = Some 4.0)

let test_histogram () =
  with_metrics @@ fun () ->
  let h = Metrics.histogram "test_obs.h1" in
  List.iter (Metrics.observe h) [ 3.0; 3.5; 0.75; -1.0 ];
  let s = Metrics.histogram_stats h in
  check_int "count" 4 s.Metrics.count;
  Alcotest.(check (float 1e-9)) "sum" 6.25 s.Metrics.sum;
  Alcotest.(check (float 1e-9)) "min" (-1.0) s.Metrics.min_v;
  Alcotest.(check (float 1e-9)) "max" 3.5 s.Metrics.max_v;
  (* 3.0 and 3.5 share the (2,4] bucket; 0.75 lands in (0.5,1];
     -1.0 lands in the dedicated underflow bucket (upper bound 0). *)
  check_bool "power-of-two bucket (2,4] holds both" true
    (List.mem (4.0, 2) s.Metrics.buckets);
  check_bool "bucket (0.5,1]" true (List.mem (1.0, 1) s.Metrics.buckets);
  check_bool "underflow bucket" true (List.mem (0.0, 1) s.Metrics.buckets)

let test_metrics_disabled_noop () =
  Metrics.set_enabled false;
  let c = Metrics.counter "test_obs.disabled_c" in
  let h = Metrics.histogram "test_obs.disabled_h" in
  Metrics.reset ();
  Metrics.incr ~by:100 c;
  Metrics.observe h 1.0;
  check_int "counter unchanged while disabled" 0 (Metrics.counter_value c);
  check_int "histogram unchanged while disabled" 0
    (Metrics.histogram_stats h).Metrics.count

let test_snapshot_shape () =
  with_metrics @@ fun () ->
  let c = Metrics.counter "test_obs.snap_b" in
  let _zero = Metrics.counter "test_obs.snap_a" in
  Metrics.incr c;
  let snap = Metrics.snapshot () in
  let names = List.map fst snap.Metrics.counters in
  check_bool "zero counters included" true
    (List.mem "test_obs.snap_a" names);
  check_bool "counters sorted by name" true
    (names = List.sort compare names)

(* ------------------------------------------------------------------ *)
(* Sink: JSON shapes                                                   *)
(* ------------------------------------------------------------------ *)

(* A syntax check that needs no JSON parser: balanced braces/brackets
   outside string literals, and no trailing garbage. *)
let json_balanced s =
  let depth = ref 0 and in_str = ref false and esc = ref false in
  let ok = ref true in
  String.iter
    (fun ch ->
      if !esc then esc := false
      else if !in_str then begin
        if ch = '\\' then esc := true else if ch = '"' then in_str := false
      end
      else
        match ch with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
            decr depth;
            if !depth < 0 then ok := false
        | _ -> ())
    s;
  !ok && !depth = 0 && not !in_str

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_spans_jsonl_shape () =
  with_tracing @@ fun () ->
  Trace.with_span "root" (fun () ->
      Trace.with_span "leaf" ~attrs:[ ("k", "v\"quoted\"") ] (fun () -> ()));
  let buf = Buffer.create 256 in
  Sink.spans_jsonl buf (Trace.roots ());
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  check_int "one line per span" 2 (List.length lines);
  List.iter
    (fun l -> check_bool "each line is balanced JSON" true (json_balanced l))
    lines;
  let root_line = List.nth lines 0 and leaf_line = List.nth lines 1 in
  check_bool "root precedes its child (pre-order)" true
    (contains ~needle:"\"path\":\"root\"" root_line);
  check_bool "child path is slash-joined" true
    (contains ~needle:"\"path\":\"root/leaf\"" leaf_line);
  check_bool "attr values are escaped" true
    (contains ~needle:"\"k\":\"v\\\"quoted\\\"\"" leaf_line);
  List.iter
    (fun field ->
      check_bool (field ^ " present on every line") true
        (List.for_all (contains ~needle:("\"" ^ field ^ "\":")) lines))
    [ "path"; "name"; "start_s"; "duration_s"; "attrs" ]

let test_snapshot_json_shape () =
  with_metrics @@ fun () ->
  let c = Metrics.counter "test_obs.json_c" in
  let h = Metrics.histogram "test_obs.json_h" in
  Metrics.incr ~by:3 c;
  Metrics.observe h 2.0;
  let json = Sink.snapshot_json (Metrics.snapshot ()) in
  check_bool "balanced JSON object" true (json_balanced json);
  check_bool "counter exported with its value" true
    (contains ~needle:"\"test_obs.json_c\":3" json);
  List.iter
    (fun needle -> check_bool needle true (contains ~needle json))
    [
      "\"counters\":";
      "\"gauges\":";
      "\"histograms\":";
      "\"test_obs.json_h\":";
      "\"count\":1";
      "\"buckets\":";
    ]

(* ------------------------------------------------------------------ *)
(* Streaming engine metrics reach the same sink                        *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Quantile estimation from power-of-two buckets                       *)
(* ------------------------------------------------------------------ *)

let stats ~count ~sum ~min_v ~max_v buckets =
  { Metrics.count; sum; min_v; max_v; buckets }

let check_float = Alcotest.(check (float 1e-9))

let test_quantile_edges () =
  let empty = stats ~count:0 ~sum:0.0 ~min_v:infinity ~max_v:neg_infinity [] in
  check_bool "empty histogram has no quantiles" true
    (Float.is_nan (Metrics.quantile empty 0.5));
  let s = stats ~count:4 ~sum:3.0 ~min_v:0.6 ~max_v:0.95 [ (1.0, 4) ] in
  check_float "q=0 is the min" 0.6 (Metrics.quantile s 0.0);
  check_float "q=1 is the max" 0.95 (Metrics.quantile s 1.0);
  (* rank 2 of 4 in (0.5,1]: 0.5 + 0.5 * 2/4 *)
  check_float "median interpolates inside the bucket" 0.75
    (Metrics.quantile s 0.5);
  (* rank 3.96 interpolates to 0.995, past the recorded max — clamp *)
  check_float "estimate clamps to the recorded max" 0.95
    (Metrics.quantile s 0.99)

let test_quantile_multibucket () =
  let s =
    stats ~count:4 ~sum:7.7 ~min_v:0.8 ~max_v:3.9
      [ (1.0, 1); (2.0, 1); (4.0, 2) ]
  in
  (* rank 2 falls on the (1,2] bucket's last observation *)
  check_float "p50 from the middle bucket" 2.0 (Metrics.quantile s 0.5);
  (* rank 3 is halfway through the (2,4] bucket *)
  check_float "p75 from the top bucket" 3.0 (Metrics.quantile s 0.75);
  check_bool "quantiles are monotone in q" true
    (Metrics.quantile s 0.25 <= Metrics.quantile s 0.5
    && Metrics.quantile s 0.5 <= Metrics.quantile s 0.95)

let test_quantile_underflow () =
  let s =
    stats ~count:4 ~sum:(-4.0) ~min_v:(-3.0) ~max_v:0.9
      [ (0.0, 2); (1.0, 2) ]
  in
  (* the underflow bucket has no width to interpolate over *)
  check_float "underflow bucket pins to 0" 0.0 (Metrics.quantile s 0.25)

let test_quantile_observed () =
  with_metrics @@ fun () ->
  let h = Metrics.histogram "test_obs.quant_h" in
  for i = 1 to 100 do
    Metrics.observe h (float_of_int i *. 0.001)
  done;
  let s = Metrics.histogram_stats h in
  let p50 = Metrics.quantile s 0.5
  and p95 = Metrics.quantile s 0.95
  and p99 = Metrics.quantile s 0.99 in
  check_bool "estimates stay inside the observed range" true
    (s.Metrics.min_v <= p50 && p99 <= s.Metrics.max_v);
  check_bool "p50 <= p95 <= p99" true (p50 <= p95 && p95 <= p99);
  (* true p50 is 0.0505; bucket interpolation is within a factor of 2 *)
  check_bool "p50 within its bucket's factor-of-2 bound" true
    (p50 >= 0.0505 /. 2.0 && p50 <= 0.0505 *. 2.0)

(* ------------------------------------------------------------------ *)
(* Bounded root retention and draining                                 *)
(* ------------------------------------------------------------------ *)

let test_root_cap () =
  with_tracing @@ fun () ->
  Fun.protect ~finally:(fun () -> Trace.set_max_roots None) @@ fun () ->
  Alcotest.check_raises "cap must be positive"
    (Invalid_argument "Trace.set_max_roots: non-positive cap") (fun () ->
      Trace.set_max_roots (Some 0));
  for i = 1 to 3 do
    Trace.with_span (Printf.sprintf "r%d" i) (fun () -> ())
  done;
  (* retroactive: the cap trims already-recorded roots, oldest first *)
  Trace.set_max_roots (Some 2);
  (match Trace.roots () with
  | [ a; b ] ->
      check_string "newest survive (1)" "r2" a.Trace.name;
      check_string "newest survive (2)" "r3" b.Trace.name
  | l -> Alcotest.failf "expected 2 roots, got %d" (List.length l));
  check_int "retroactive drop counted" 1 (Trace.dropped_roots ());
  (* steady state: each new root past the cap drops the oldest *)
  for i = 4 to 6 do
    Trace.with_span (Printf.sprintf "r%d" i) (fun () -> ())
  done;
  check_int "cap holds under new roots" 2 (List.length (Trace.roots ()));
  check_int "drops accumulate" 4 (Trace.dropped_roots ());
  match Trace.roots () with
  | [ a; b ] ->
      check_string "oldest evicted first (1)" "r5" a.Trace.name;
      check_string "oldest evicted first (2)" "r6" b.Trace.name
  | l -> Alcotest.failf "expected 2 roots, got %d" (List.length l)

let test_take_roots_drains () =
  with_tracing @@ fun () ->
  Trace.with_span "one" (fun () -> ());
  Trace.with_span "two" (fun () -> ());
  let drained = Trace.take_roots () in
  check_int "take returns everything, oldest first" 2 (List.length drained);
  check_string "order preserved" "one" (List.hd drained).Trace.name;
  check_int "list is emptied" 0 (List.length (Trace.roots ()));
  (* spans completed after a drain show up in the next one *)
  Trace.with_span "three" (fun () -> ());
  check_int "new roots accumulate again" 1 (List.length (Trace.take_roots ()))

let test_take_roots_leaves_open_spans () =
  with_tracing @@ fun () ->
  Trace.with_span "outer" (fun () ->
      Trace.with_span "inner" (fun () -> ());
      (* inner closed under the still-open outer: not a root yet *)
      check_int "no finished roots while outer is open" 0
        (List.length (Trace.take_roots ())));
  match Trace.roots () with
  | [ outer ] ->
      check_string "outer completes intact after the drain" "outer"
        outer.Trace.name;
      check_int "child survived" 1 (List.length outer.Trace.children)
  | l -> Alcotest.failf "expected 1 root, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Event log                                                           *)
(* ------------------------------------------------------------------ *)

let test_event_line_golden () =
  check_string "stable JSONL shape"
    "{\"ts\":12.500000,\"event\":\"reselect\",\"tick\":\"40\"}"
    (Events.line ~ts:12.5 "reselect" [ ("tick", "40") ]);
  check_string "no attrs"
    "{\"ts\":0.000000,\"event\":\"source_eof\"}"
    (Events.line ~ts:0.0 "source_eof" [])

let event_escaping_prop =
  QCheck.Test.make ~count:500 ~name:"event lines are single balanced JSON"
    QCheck.(triple string string string)
    (fun (event, k, v) ->
      let l = Events.line ~ts:1.0 event [ (k, v) ] in
      json_balanced l
      && String.for_all (fun c -> Char.code c >= 0x20) l)

let test_event_file_round_trip () =
  let tmp = Filename.temp_file "tomo_events" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
  @@ fun () ->
  Events.configure (Some tmp);
  check_bool "configured" true (Events.enabled ());
  Events.emit ~ts:1.0 "alpha" [];
  Events.emit ~ts:2.0 "beta" [ ("k", "line\nbreak") ];
  Events.close ();
  Events.close ();
  (* idempotent *)
  check_bool "closed" true (not (Events.enabled ()));
  Events.emit ~ts:3.0 "dropped" [];
  (* no-op once closed *)
  let ic = open_in tmp in
  let lines = In_channel.input_lines ic in
  close_in ic;
  check_int "one line per event, none after close" 2 (List.length lines);
  List.iter
    (fun l -> check_bool "balanced JSON line" true (json_balanced l))
    lines;
  check_bool "events appear in emission order" true
    (contains ~needle:"\"event\":\"alpha\"" (List.nth lines 0)
    && contains ~needle:"\"event\":\"beta\"" (List.nth lines 1));
  check_bool "newline in attr value escaped" true
    (contains ~needle:"line\\nbreak" (List.nth lines 1))

(* ------------------------------------------------------------------ *)
(* Flush: idempotent, atomic, drains exactly once                      *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_flush_idempotent_atomic () =
  let dir = Filename.temp_file "tomo_flush" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let tpath = Filename.concat dir "trace.jsonl" in
  let mpath = Filename.concat dir "metrics.json" in
  Fun.protect ~finally:(fun () ->
      Sink.init ~trace:Sink.Trace_off ();
      Metrics.set_enabled false;
      Trace.set_enabled false;
      Trace.reset ();
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
  @@ fun () ->
  Sink.init ~trace:(Sink.Trace_jsonl tpath) ~metrics_out:mpath ();
  Metrics.set_enabled true;
  Trace.with_span "flush_once" (fun () -> ());
  Metrics.incr ~by:7 (Metrics.counter "test_obs.flush_c");
  Sink.flush ();
  Sink.flush ();
  (* span drained by the first flush, so the second writes nothing *)
  let trace_lines =
    String.split_on_char '\n' (read_file tpath)
    |> List.filter (fun l -> l <> "")
  in
  check_int "span emitted exactly once across two flushes" 1
    (List.length trace_lines);
  let mjson = read_file mpath in
  check_bool "metrics file is balanced JSON" true (json_balanced mjson);
  check_bool "counter present" true
    (contains ~needle:"\"test_obs.flush_c\":7" mjson);
  (* atomic write must not leave temp litter behind *)
  let leftovers =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> f <> "trace.jsonl" && f <> "metrics.json")
  in
  check_int "no temp files left by the atomic rename" 0
    (List.length leftovers)

(* ------------------------------------------------------------------ *)
(* Flusher: periodic background flushing                               *)
(* ------------------------------------------------------------------ *)

let test_flusher_periodic () =
  Alcotest.check_raises "period must be positive"
    (Invalid_argument "Flusher.start: non-positive period") (fun () ->
      ignore (Flusher.start ~period_s:0.0 ()));
  let mpath = Filename.temp_file "tomo_flusher" ".json" in
  Fun.protect ~finally:(fun () ->
      Sink.init ~trace:Sink.Trace_off ();
      Metrics.set_enabled false;
      try Sys.remove mpath with Sys_error _ -> ())
  @@ fun () ->
  Sink.init ~trace:Sink.Trace_off ~metrics_out:mpath ();
  Metrics.set_enabled true;
  let flushes = Metrics.counter "telemetry_flushes" in
  let before = Metrics.counter_value flushes in
  let f = Flusher.start ~period_s:0.02 () in
  Thread.delay 0.1;
  Flusher.stop f;
  Flusher.stop f;
  (* idempotent *)
  check_bool "flushed at least once on the cadence" true
    (Metrics.counter_value flushes > before);
  check_bool "metrics file written while running" true
    (json_balanced (read_file mpath))

(* ------------------------------------------------------------------ *)
(* Exporter: Prometheus rendering and the HTTP round trip              *)
(* ------------------------------------------------------------------ *)

let test_prometheus_golden () =
  let snap =
    {
      Metrics.counters = [ ("stream_ticks", 60); ("test.odd-name", 2) ];
      gauges = [ ("stream_window_occupancy", 40.0) ];
      histograms =
        [
          ( "stream_stage_solve_s",
            stats ~count:3 ~sum:0.046875 ~min_v:0.01 ~max_v:0.02
              [ (0.015625, 2); (0.03125, 1) ] );
          ( "empty_h",
            stats ~count:0 ~sum:0.0 ~min_v:infinity ~max_v:neg_infinity [] );
        ];
    }
  in
  check_string "prometheus text exposition"
    "# TYPE stream_ticks counter\n\
     stream_ticks 60\n\
     # TYPE test_odd_name counter\n\
     test_odd_name 2\n\
     # TYPE stream_window_occupancy gauge\n\
     stream_window_occupancy 40\n\
     # TYPE stream_stage_solve_s histogram\n\
     stream_stage_solve_s_bucket{le=\"0.015625\"} 2\n\
     stream_stage_solve_s_bucket{le=\"0.03125\"} 3\n\
     stream_stage_solve_s_bucket{le=\"+Inf\"} 3\n\
     stream_stage_solve_s_sum 0.046875\n\
     stream_stage_solve_s_count 3\n\
     # TYPE empty_h histogram\n\
     empty_h_bucket{le=\"+Inf\"} 0\n\
     empty_h_sum 0\n\
     empty_h_count 0\n"
    (Exporter.prometheus_of_snapshot snap)

let test_listen_of_string () =
  let ok l = Ok l in
  check_bool ":port is localhost TCP" true
    (Exporter.listen_of_string ":9100" = ok (Exporter.Tcp ("127.0.0.1", 9100)));
  check_bool "bare port is localhost TCP" true
    (Exporter.listen_of_string "9100" = ok (Exporter.Tcp ("127.0.0.1", 9100)));
  check_bool "host:port keeps the host" true
    (Exporter.listen_of_string "localhost:9100"
    = ok (Exporter.Tcp ("localhost", 9100)));
  check_bool "a path is a unix socket" true
    (Exporter.listen_of_string "/tmp/foo.sock"
    = ok (Exporter.Unix_sock "/tmp/foo.sock"));
  check_bool "relative path too" true
    (Exporter.listen_of_string "telemetry.sock"
    = ok (Exporter.Unix_sock "telemetry.sock"));
  check_bool "empty is an error" true
    (match Exporter.listen_of_string "" with Error _ -> true | Ok _ -> false);
  check_bool "out-of-range port is an error" true
    (match Exporter.listen_of_string ":99999" with
    | Error _ -> true
    | Ok _ -> false)

let http_get sock_path path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () ->
      try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_UNIX sock_path);
  let req = "GET " ^ path ^ " HTTP/1.0\r\n\r\n" in
  ignore (Unix.write_substring fd req 0 (String.length req));
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 1024 in
  let rec go () =
    let n = Unix.read fd chunk 0 1024 in
    if n > 0 then begin
      Buffer.add_subbytes buf chunk 0 n;
      go ()
    end
  in
  (try go () with Unix.Unix_error _ -> ());
  Buffer.contents buf

let test_exporter_round_trip () =
  with_metrics @@ fun () ->
  let sock = Filename.temp_file "tomo_exp" ".sock" in
  Sys.remove sock;
  let exp =
    Exporter.start
      ~health:(fun () -> "{\"status\":\"ok\",\"ticks\":7}")
      (Exporter.Unix_sock sock)
  in
  Fun.protect ~finally:(fun () -> Exporter.stop exp) @@ fun () ->
  let h = Metrics.histogram "test_obs.exp_h" in
  Metrics.observe h 0.25;
  let resp = http_get sock "/metrics" in
  check_bool "scrape succeeds" true (contains ~needle:"200 OK" resp);
  (* 0.25 lands in the [0.25, 0.5) bucket, upper bound 0.5 *)
  check_bool "histogram in prometheus form" true
    (contains ~needle:"test_obs_exp_h_bucket{le=\"0.5\"} 1" resp);
  check_bool "scrapes count themselves" true
    (contains ~needle:"telemetry_scrapes" resp);
  let health = http_get sock "/healthz" in
  check_bool "health callback body passes through" true
    (contains ~needle:"\"ticks\":7" health);
  check_bool "health is JSON" true
    (contains ~needle:"application/json" health);
  let missing = http_get sock "/nope" in
  check_bool "unknown path is 404" true (contains ~needle:"404" missing);
  let status = http_get sock "/status" in
  check_bool "no status view configured means 404" true
    (contains ~needle:"404" status);
  Exporter.stop exp;
  check_bool "socket file removed on stop" true (not (Sys.file_exists sock));
  Exporter.stop exp (* idempotent *)

(* ------------------------------------------------------------------ *)
(* Engine status view                                                  *)
(* ------------------------------------------------------------------ *)

let test_status_json_golden () =
  let st =
    {
      Engine.st_ticks = 60;
      st_occupancy = 40;
      st_capacity = 40;
      st_full = true;
      st_estimates = 21;
      st_reselects = 1;
      st_last_estimate_tick = Some 60;
      st_last_rows = Some 565;
      st_last_vars = Some 595;
    }
  in
  check_string "full engine"
    "{\"status\":\"ok\",\"ticks\":60,\"window\":{\"occupancy\":40,\
     \"capacity\":40,\"full\":true},\"estimates\":21,\"reselects\":1,\
     \"last_estimate\":{\"tick\":60,\"rows\":565,\"vars\":595},\
     \"uptime_s\":1.500,\"snapshot_age_s\":0.250,\"last_error\":null}"
    (Engine.status_json ~uptime_s:1.5 ~snapshot_age_s:0.25 st);
  let warming =
    {
      st with
      Engine.st_ticks = 12;
      st_occupancy = 12;
      st_full = false;
      st_estimates = 0;
      st_last_estimate_tick = None;
      st_last_rows = None;
      st_last_vars = None;
    }
  in
  check_string "warming up, with a sink error"
    "{\"status\":\"warming_up\",\"ticks\":12,\"window\":{\"occupancy\":12,\
     \"capacity\":40,\"full\":false},\"estimates\":0,\"reselects\":1,\
     \"last_estimate\":null,\"snapshot_age_s\":null,\
     \"last_error\":\"boom \\\"quoted\\\"\"}"
    (Engine.status_json ~last_error:"boom \"quoted\"" warming)

let test_engine_status () =
  let model = Tomo.Toy.case1 () in
  let engine = Engine.create ~model ~window:2 () in
  let st0 = Engine.status engine in
  check_bool "fresh engine is warming up" true (not st0.Engine.st_full);
  check_bool "no estimate yet" true (st0.Engine.st_last_estimate_tick = None);
  for _ = 1 to 3 do
    let col = Tomo_util.Bitset.create model.Tomo.Model.n_paths in
    Tomo_util.Bitset.set_all col;
    ignore (Engine.ingest engine col)
  done;
  let st = Engine.status engine in
  check_int "ticks counted" 3 st.Engine.st_ticks;
  check_int "occupancy is the window fill" 2 st.Engine.st_occupancy;
  check_bool "full once warmed" true st.Engine.st_full;
  check_int "estimates counted" 2 st.Engine.st_estimates;
  check_bool "last estimate stamped with its tick" true
    (st.Engine.st_last_estimate_tick = Some 3);
  check_bool "rows/vars recorded" true
    (st.Engine.st_last_rows <> None && st.Engine.st_last_vars <> None)

let test_stream_metrics_exported () =
  with_metrics @@ fun () ->
  let model = Tomo.Toy.case1 () in
  let engine = Tomo_stream.Engine.create ~model ~window:2 () in
  for _ = 1 to 3 do
    let col = Tomo_util.Bitset.create model.Tomo.Model.n_paths in
    Tomo_util.Bitset.set_all col;
    ignore (Tomo_stream.Engine.ingest engine col)
  done;
  let json = Sink.snapshot_json (Metrics.snapshot ()) in
  check_bool "balanced JSON" true (json_balanced json);
  (* counters count what happened: 3 ingests, 2 full-window estimates *)
  check_bool "stream_ticks counted" true
    (contains ~needle:"\"stream_ticks\":3" json);
  check_bool "stream_estimates counted" true
    (contains ~needle:"\"stream_estimates\":2" json);
  (* window gauges reflect the steady state *)
  check_bool "occupancy gauge" true
    (contains ~needle:"\"stream_window_occupancy\":2" json);
  check_bool "capacity gauge" true
    (contains ~needle:"\"stream_window_capacity\":2" json);
  (* latency histograms observed at least once, including the per-tick
     stage profile behind the exporter's /metrics view *)
  List.iter
    (fun h -> check_bool h true (contains ~needle:("\"" ^ h ^ "\":") json))
    [
      "stream_tick_s";
      "stream_solve_s";
      "stream_stage_ingest_s";
      "stream_stage_solve_s";
      "stream_stage_reselect_s";
    ]

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "nesting and result passthrough" `Quick
            test_span_nesting;
          Alcotest.test_case "timing monotonicity" `Quick
            test_span_timing_monotonic;
          Alcotest.test_case "attributes" `Quick test_span_attrs;
          Alcotest.test_case "exception safety" `Quick
            test_span_exception_safe;
          Alcotest.test_case "disabled mode records nothing" `Quick
            test_span_disabled_noop;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter arithmetic and interning" `Quick
            test_counter_arithmetic;
          Alcotest.test_case "kind mismatch rejected" `Quick
            test_kind_mismatch;
          Alcotest.test_case "gauges" `Quick test_gauge;
          Alcotest.test_case "histogram stats and buckets" `Quick
            test_histogram;
          Alcotest.test_case "disabled mode records nothing" `Quick
            test_metrics_disabled_noop;
          Alcotest.test_case "snapshot shape" `Quick test_snapshot_shape;
          Alcotest.test_case "quantile edge cases" `Quick test_quantile_edges;
          Alcotest.test_case "quantile across buckets" `Quick
            test_quantile_multibucket;
          Alcotest.test_case "quantile underflow bucket" `Quick
            test_quantile_underflow;
          Alcotest.test_case "quantile on observed data" `Quick
            test_quantile_observed;
        ] );
      ( "sink",
        [
          Alcotest.test_case "spans as JSON lines" `Quick
            test_spans_jsonl_shape;
          Alcotest.test_case "metrics snapshot as JSON" `Quick
            test_snapshot_json_shape;
          Alcotest.test_case "streaming engine metrics exported" `Quick
            test_stream_metrics_exported;
          Alcotest.test_case "flush is idempotent and atomic" `Quick
            test_flush_idempotent_atomic;
        ] );
      ( "trace retention",
        [
          Alcotest.test_case "max_roots caps and counts drops" `Quick
            test_root_cap;
          Alcotest.test_case "take_roots drains exactly once" `Quick
            test_take_roots_drains;
          Alcotest.test_case "take_roots leaves open spans" `Quick
            test_take_roots_leaves_open_spans;
        ] );
      ( "events",
        [
          Alcotest.test_case "line shape is stable" `Quick
            test_event_line_golden;
          QCheck_alcotest.to_alcotest event_escaping_prop;
          Alcotest.test_case "file round trip" `Quick
            test_event_file_round_trip;
        ] );
      ( "exporter",
        [
          Alcotest.test_case "prometheus text golden" `Quick
            test_prometheus_golden;
          Alcotest.test_case "listen address parsing" `Quick
            test_listen_of_string;
          Alcotest.test_case "HTTP round trip over a unix socket" `Quick
            test_exporter_round_trip;
          Alcotest.test_case "periodic flusher" `Quick test_flusher_periodic;
        ] );
      ( "engine status",
        [
          Alcotest.test_case "status_json golden" `Quick
            test_status_json_golden;
          Alcotest.test_case "status tracks the engine" `Quick
            test_engine_status;
        ] );
    ]
