(* Tests for the observability library: span trees, the metrics
   registry and the JSON export shape.  Trace and Metrics hold
   process-global state, so every test restores the disabled default on
   the way out. *)

module Trace = Tomo_obs.Trace
module Metrics = Tomo_obs.Metrics
module Sink = Tomo_obs.Sink

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let with_tracing f =
  Trace.set_enabled true;
  Trace.reset ();
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.reset ())
    f

let with_metrics f =
  Metrics.set_enabled true;
  Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  with_tracing @@ fun () ->
  let r =
    Trace.with_span "outer" (fun () ->
        Trace.with_span "first" (fun () -> ()) ;
        Trace.with_span "second" (fun () ->
            Trace.with_span "grandchild" (fun () -> ()));
        17)
  in
  check_int "thunk result passes through" 17 r;
  match Trace.roots () with
  | [ outer ] ->
      check_string "root name" "outer" outer.Trace.name;
      (match outer.Trace.children with
      | [ a; b ] ->
          check_string "children in execution order (1)" "first" a.Trace.name;
          check_string "children in execution order (2)" "second" b.Trace.name;
          check_int "grandchild attached" 1 (List.length b.Trace.children)
      | l -> Alcotest.failf "expected 2 children, got %d" (List.length l))
  | l -> Alcotest.failf "expected 1 root, got %d" (List.length l)

let test_span_timing_monotonic () =
  with_tracing @@ fun () ->
  Trace.with_span "parent" (fun () ->
      Trace.with_span "child" (fun () ->
          (* Make the child take a measurable amount of time. *)
          let s = ref 0.0 in
          for i = 1 to 20_000 do
            s := !s +. sqrt (float_of_int i)
          done;
          ignore !s));
  match Trace.roots () with
  | [ p ] ->
      let c = List.hd p.Trace.children in
      check_bool "durations are non-negative" true
        (p.Trace.duration_s >= 0.0 && c.Trace.duration_s >= 0.0);
      check_bool "child starts at or after parent" true
        (c.Trace.start_s >= p.Trace.start_s);
      check_bool "child fits inside parent" true
        (c.Trace.duration_s <= p.Trace.duration_s +. 1e-9)
  | _ -> Alcotest.fail "expected exactly one root"

let test_span_attrs () =
  with_tracing @@ fun () ->
  Trace.with_span "s" ~attrs:[ ("k", "v") ] (fun () ->
      Trace.add_attr "n" "42");
  match Trace.roots () with
  | [ s ] ->
      check_bool "literal attr recorded" true
        (List.mem_assoc "k" s.Trace.attrs);
      check_string "add_attr recorded" "42" (List.assoc "n" s.Trace.attrs)
  | _ -> Alcotest.fail "expected exactly one root"

let test_span_exception_safe () =
  with_tracing @@ fun () ->
  (try
     Trace.with_span "outer" (fun () ->
         Trace.with_span "thrower" (fun () -> failwith "boom"))
   with Failure _ -> ());
  (* Both spans must have been closed despite the exception, and a new
     root must attach at the top level, not under a leaked open span. *)
  Trace.with_span "after" (fun () -> ());
  match Trace.roots () with
  | [ outer; after ] ->
      check_string "failed root closed" "outer" outer.Trace.name;
      check_int "thrower closed under outer" 1
        (List.length outer.Trace.children);
      check_string "subsequent span is a root" "after" after.Trace.name
  | l -> Alcotest.failf "expected 2 roots, got %d" (List.length l)

let test_span_disabled_noop () =
  Trace.set_enabled false;
  Trace.reset ();
  let r = Trace.with_span "ignored" ~attrs:[ ("a", "b") ] (fun () -> 3) in
  Trace.add_attr "also" "ignored";
  check_int "thunk still runs" 3 r;
  check_int "nothing recorded" 0 (List.length (Trace.roots ()))

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_counter_arithmetic () =
  with_metrics @@ fun () ->
  let c = Metrics.counter "test_obs.c1" in
  check_int "starts at zero" 0 (Metrics.counter_value c);
  Metrics.incr c;
  Metrics.incr ~by:5 c;
  check_int "1 + 5" 6 (Metrics.counter_value c);
  let c' = Metrics.counter "test_obs.c1" in
  Metrics.incr c';
  check_int "same name interns to the same cell" 7 (Metrics.counter_value c)

let test_kind_mismatch () =
  let _ = Metrics.counter "test_obs.kind" in
  Alcotest.check_raises "counter name reused as gauge"
    (Invalid_argument
       "Metrics: \"test_obs.kind\" already registered as another kind")
    (fun () -> ignore (Metrics.gauge "test_obs.kind"))

let test_gauge () =
  with_metrics @@ fun () ->
  let g = Metrics.gauge "test_obs.g1" in
  check_bool "unset gauge reads None" true (Metrics.gauge_value g = None);
  Metrics.set_gauge g 2.5;
  Metrics.set_gauge g 4.0;
  check_bool "last write wins" true (Metrics.gauge_value g = Some 4.0)

let test_histogram () =
  with_metrics @@ fun () ->
  let h = Metrics.histogram "test_obs.h1" in
  List.iter (Metrics.observe h) [ 3.0; 3.5; 0.75; -1.0 ];
  let s = Metrics.histogram_stats h in
  check_int "count" 4 s.Metrics.count;
  Alcotest.(check (float 1e-9)) "sum" 6.25 s.Metrics.sum;
  Alcotest.(check (float 1e-9)) "min" (-1.0) s.Metrics.min_v;
  Alcotest.(check (float 1e-9)) "max" 3.5 s.Metrics.max_v;
  (* 3.0 and 3.5 share the (2,4] bucket; 0.75 lands in (0.5,1];
     -1.0 lands in the dedicated underflow bucket (upper bound 0). *)
  check_bool "power-of-two bucket (2,4] holds both" true
    (List.mem (4.0, 2) s.Metrics.buckets);
  check_bool "bucket (0.5,1]" true (List.mem (1.0, 1) s.Metrics.buckets);
  check_bool "underflow bucket" true (List.mem (0.0, 1) s.Metrics.buckets)

let test_metrics_disabled_noop () =
  Metrics.set_enabled false;
  let c = Metrics.counter "test_obs.disabled_c" in
  let h = Metrics.histogram "test_obs.disabled_h" in
  Metrics.reset ();
  Metrics.incr ~by:100 c;
  Metrics.observe h 1.0;
  check_int "counter unchanged while disabled" 0 (Metrics.counter_value c);
  check_int "histogram unchanged while disabled" 0
    (Metrics.histogram_stats h).Metrics.count

let test_snapshot_shape () =
  with_metrics @@ fun () ->
  let c = Metrics.counter "test_obs.snap_b" in
  let _zero = Metrics.counter "test_obs.snap_a" in
  Metrics.incr c;
  let snap = Metrics.snapshot () in
  let names = List.map fst snap.Metrics.counters in
  check_bool "zero counters included" true
    (List.mem "test_obs.snap_a" names);
  check_bool "counters sorted by name" true
    (names = List.sort compare names)

(* ------------------------------------------------------------------ *)
(* Sink: JSON shapes                                                   *)
(* ------------------------------------------------------------------ *)

(* A syntax check that needs no JSON parser: balanced braces/brackets
   outside string literals, and no trailing garbage. *)
let json_balanced s =
  let depth = ref 0 and in_str = ref false and esc = ref false in
  let ok = ref true in
  String.iter
    (fun ch ->
      if !esc then esc := false
      else if !in_str then begin
        if ch = '\\' then esc := true else if ch = '"' then in_str := false
      end
      else
        match ch with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
            decr depth;
            if !depth < 0 then ok := false
        | _ -> ())
    s;
  !ok && !depth = 0 && not !in_str

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_spans_jsonl_shape () =
  with_tracing @@ fun () ->
  Trace.with_span "root" (fun () ->
      Trace.with_span "leaf" ~attrs:[ ("k", "v\"quoted\"") ] (fun () -> ()));
  let buf = Buffer.create 256 in
  Sink.spans_jsonl buf (Trace.roots ());
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  check_int "one line per span" 2 (List.length lines);
  List.iter
    (fun l -> check_bool "each line is balanced JSON" true (json_balanced l))
    lines;
  let root_line = List.nth lines 0 and leaf_line = List.nth lines 1 in
  check_bool "root precedes its child (pre-order)" true
    (contains ~needle:"\"path\":\"root\"" root_line);
  check_bool "child path is slash-joined" true
    (contains ~needle:"\"path\":\"root/leaf\"" leaf_line);
  check_bool "attr values are escaped" true
    (contains ~needle:"\"k\":\"v\\\"quoted\\\"\"" leaf_line);
  List.iter
    (fun field ->
      check_bool (field ^ " present on every line") true
        (List.for_all (contains ~needle:("\"" ^ field ^ "\":")) lines))
    [ "path"; "name"; "start_s"; "duration_s"; "attrs" ]

let test_snapshot_json_shape () =
  with_metrics @@ fun () ->
  let c = Metrics.counter "test_obs.json_c" in
  let h = Metrics.histogram "test_obs.json_h" in
  Metrics.incr ~by:3 c;
  Metrics.observe h 2.0;
  let json = Sink.snapshot_json (Metrics.snapshot ()) in
  check_bool "balanced JSON object" true (json_balanced json);
  check_bool "counter exported with its value" true
    (contains ~needle:"\"test_obs.json_c\":3" json);
  List.iter
    (fun needle -> check_bool needle true (contains ~needle json))
    [
      "\"counters\":";
      "\"gauges\":";
      "\"histograms\":";
      "\"test_obs.json_h\":";
      "\"count\":1";
      "\"buckets\":";
    ]

(* ------------------------------------------------------------------ *)
(* Streaming engine metrics reach the same sink                        *)
(* ------------------------------------------------------------------ *)

let test_stream_metrics_exported () =
  with_metrics @@ fun () ->
  let model = Tomo.Toy.case1 () in
  let engine = Tomo_stream.Engine.create ~model ~window:2 () in
  for _ = 1 to 3 do
    let col = Tomo_util.Bitset.create model.Tomo.Model.n_paths in
    Tomo_util.Bitset.set_all col;
    ignore (Tomo_stream.Engine.ingest engine col)
  done;
  let json = Sink.snapshot_json (Metrics.snapshot ()) in
  check_bool "balanced JSON" true (json_balanced json);
  (* counters count what happened: 3 ingests, 2 full-window estimates *)
  check_bool "stream_ticks counted" true
    (contains ~needle:"\"stream_ticks\":3" json);
  check_bool "stream_estimates counted" true
    (contains ~needle:"\"stream_estimates\":2" json);
  (* window gauges reflect the steady state *)
  check_bool "occupancy gauge" true
    (contains ~needle:"\"stream_window_occupancy\":2" json);
  check_bool "capacity gauge" true
    (contains ~needle:"\"stream_window_capacity\":2" json);
  (* latency histograms observed at least once *)
  List.iter
    (fun h -> check_bool h true (contains ~needle:("\"" ^ h ^ "\":") json))
    [ "stream_tick_s"; "stream_solve_s" ]

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "nesting and result passthrough" `Quick
            test_span_nesting;
          Alcotest.test_case "timing monotonicity" `Quick
            test_span_timing_monotonic;
          Alcotest.test_case "attributes" `Quick test_span_attrs;
          Alcotest.test_case "exception safety" `Quick
            test_span_exception_safe;
          Alcotest.test_case "disabled mode records nothing" `Quick
            test_span_disabled_noop;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter arithmetic and interning" `Quick
            test_counter_arithmetic;
          Alcotest.test_case "kind mismatch rejected" `Quick
            test_kind_mismatch;
          Alcotest.test_case "gauges" `Quick test_gauge;
          Alcotest.test_case "histogram stats and buckets" `Quick
            test_histogram;
          Alcotest.test_case "disabled mode records nothing" `Quick
            test_metrics_disabled_noop;
          Alcotest.test_case "snapshot shape" `Quick test_snapshot_shape;
        ] );
      ( "sink",
        [
          Alcotest.test_case "spans as JSON lines" `Quick
            test_spans_jsonl_shape;
          Alcotest.test_case "metrics snapshot as JSON" `Quick
            test_snapshot_json_shape;
          Alcotest.test_case "streaming engine metrics exported" `Quick
            test_stream_metrics_exported;
        ] );
    ]
