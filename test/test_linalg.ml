(* Tests for the dense linear-algebra substrate, including the paper's
   Algorithm 2 (incremental null-space update). *)

module Matrix = Tomo_linalg.Matrix
module Gauss = Tomo_linalg.Gauss
module Qr = Tomo_linalg.Qr
module Lstsq = Tomo_linalg.Lstsq
module Nullspace = Tomo_linalg.Nullspace
module Rng = Tomo_util.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-7))

let random_matrix rng r c =
  Matrix.init r c (fun _ _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0)

(* A random 0/1 matrix with a prescribed rank bound, built as a product of
   0/1-ish factors; mimics tomography incidence structure. *)
let random_low_rank rng r c rank =
  let a = random_matrix rng r rank and b = random_matrix rng rank c in
  Matrix.mul a b

(* ------------------------------------------------------------------ *)
(* Matrix                                                              *)
(* ------------------------------------------------------------------ *)

let test_matrix_basic () =
  let m = Matrix.init 2 3 (fun i j -> float_of_int ((i * 3) + j)) in
  check_int "rows" 2 (Matrix.rows m);
  check_int "cols" 3 (Matrix.cols m);
  checkf "get" 5.0 (Matrix.get m 1 2);
  Matrix.set m 1 2 9.0;
  checkf "set" 9.0 (Matrix.get m 1 2);
  Alcotest.check_raises "bounds"
    (Invalid_argument "Matrix: index out of range") (fun () ->
      ignore (Matrix.get m 2 0))

let test_matrix_mul () =
  let a = Matrix.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Matrix.of_rows [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  let c = Matrix.mul a b in
  checkf "c00" 19.0 (Matrix.get c 0 0);
  checkf "c01" 22.0 (Matrix.get c 0 1);
  checkf "c10" 43.0 (Matrix.get c 1 0);
  checkf "c11" 50.0 (Matrix.get c 1 1)

let test_matrix_vec () =
  let a = Matrix.of_rows [| [| 1.; 2.; 3. |]; [| 0.; 1.; 0. |] |] in
  let v = Matrix.mul_vec a [| 1.; 1.; 1. |] in
  checkf "mul_vec 0" 6.0 v.(0);
  checkf "mul_vec 1" 1.0 v.(1);
  let w = Matrix.vec_mul [| 1.; 2. |] a in
  checkf "vec_mul 0" 1.0 w.(0);
  checkf "vec_mul 1" 4.0 w.(1);
  checkf "vec_mul 2" 3.0 w.(2)

let test_matrix_transpose () =
  let a = Matrix.of_rows [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let t = Matrix.transpose a in
  check_int "t rows" 3 (Matrix.rows t);
  checkf "t(2,1)" 6.0 (Matrix.get t 2 1)

let test_matrix_drop_swap () =
  let a = Matrix.of_rows [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  Matrix.swap_cols a 0 2;
  checkf "swapped" 3.0 (Matrix.get a 0 0);
  let d = Matrix.drop_col a 1 in
  check_int "dropped cols" 2 (Matrix.cols d);
  checkf "drop keeps order" 1.0 (Matrix.get d 0 1)

(* ---- Flat-storage edge cases ---- *)

let test_matrix_degenerate_shapes () =
  let z = Matrix.make 0 5 0.0 in
  check_int "0-row rows" 0 (Matrix.rows z);
  check_int "0-row cols" 5 (Matrix.cols z);
  check_bool "0-row to_rows" true (Matrix.to_rows z = [||]);
  let n = Matrix.make 3 0 0.0 in
  check_int "0-col rows" 3 (Matrix.rows n);
  check_bool "0-col row is empty" true (Matrix.row n 1 = [||]);
  checkf "0-col max_abs" 0.0 (Matrix.max_abs n);
  let one = Matrix.make 1 1 7.5 in
  checkf "1x1 get" 7.5 (Matrix.get one 0 0);
  let buf, off = Matrix.row_view one 0 in
  checkf "1x1 row view" 7.5 buf.(off);
  check_int "1x1 stride" 1 (Matrix.stride one)

let test_matrix_row_view_aliases () =
  let m = Matrix.init 3 4 (fun i j -> float_of_int ((10 * i) + j)) in
  (* A row view is the live buffer: writes through it are visible in the
     parent... *)
  let buf, off = Matrix.row_view m 1 in
  check_int "row base" off (Matrix.row_base m 1);
  buf.(off + 2) <- 99.0;
  checkf "write through view visible" 99.0 (Matrix.get m 1 2);
  check_bool "buffer is the storage" true (buf == Matrix.buffer m);
  (* ...whereas [row] / [to_rows] hand out copies. *)
  let r = Matrix.row m 1 in
  r.(0) <- -1.0;
  checkf "row copy does not alias" 10.0 (Matrix.get m 1 0);
  (Matrix.to_rows m).(0).(0) <- -1.0;
  checkf "to_rows does not alias" 0.0 (Matrix.get m 0 0)

let check_invalid_arg_with name needles f =
  match f () with
  | exception Invalid_argument msg ->
      List.iter
        (fun needle ->
          let found =
            let nl = String.length needle and ml = String.length msg in
            let rec go i =
              i + nl <= ml && (String.sub msg i nl = needle || go (i + 1))
            in
            go 0
          in
          check_bool (name ^ ": mentions " ^ needle) true found)
        needles
  | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")

let test_matrix_of_rows_rejections () =
  (* Both rejections carry a [file:line:] prefix naming the check site,
     matching the Observations_io loader style. *)
  check_invalid_arg_with "empty"
    [ "matrix.ml:"; "empty row array"; "Matrix.make 0 c" ]
    (fun () -> Matrix.of_rows [||]);
  check_invalid_arg_with "ragged"
    [ "matrix.ml:"; "ragged rows"; "row 1 has 3 columns, row 0 has 2" ]
    (fun () -> Matrix.of_rows [| [| 1.; 2. |]; [| 1.; 2.; 3. |] |])

let prop_transpose_involution =
  QCheck.Test.make ~name:"transpose is an involution" ~count:50
    QCheck.(pair (int_range 1 12) (int_range 1 12))
    (fun (r, c) ->
      let rng = Rng.create (r + (100 * c)) in
      let m = random_matrix rng r c in
      Matrix.equal_approx ~tol:0.0 m (Matrix.transpose (Matrix.transpose m)))

let prop_mul_identity =
  QCheck.Test.make ~name:"A·I = A and I·A = A" ~count:50
    QCheck.(pair (int_range 1 10) (int_range 1 10))
    (fun (r, c) ->
      let rng = Rng.create (r + (57 * c)) in
      let m = random_matrix rng r c in
      Matrix.equal_approx ~tol:1e-12 m (Matrix.mul m (Matrix.identity c))
      && Matrix.equal_approx ~tol:1e-12 m (Matrix.mul (Matrix.identity r) m))

(* ------------------------------------------------------------------ *)
(* Gauss                                                               *)
(* ------------------------------------------------------------------ *)

let test_gauss_rank () =
  let full = Matrix.of_rows [| [| 1.; 0. |]; [| 0.; 1. |] |] in
  check_int "identity rank" 2 (Gauss.rank full);
  let deficient =
    Matrix.of_rows [| [| 1.; 2. |]; [| 2.; 4. |]; [| 3.; 6. |] |]
  in
  check_int "rank-1 matrix" 1 (Gauss.rank deficient)

let test_gauss_solve () =
  let a = Matrix.of_rows [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let x = Gauss.solve a [| 5.; 10. |] in
  checkf "x0" 1.0 x.(0);
  checkf "x1" 3.0 x.(1)

let test_gauss_singular () =
  let a = Matrix.of_rows [| [| 1.; 1. |]; [| 2.; 2. |] |] in
  Alcotest.check_raises "singular" (Failure "Gauss.solve: singular matrix")
    (fun () -> ignore (Gauss.solve a [| 1.; 2. |]))

let test_gauss_inverse () =
  let a = Matrix.of_rows [| [| 4.; 7. |]; [| 2.; 6. |] |] in
  let inv = Gauss.inverse a in
  let prod = Matrix.mul a inv in
  check_bool "A·A⁻¹ = I" true
    (Matrix.equal_approx ~tol:1e-9 prod (Matrix.identity 2))

let prop_gauss_solve_random =
  QCheck.Test.make ~name:"Gauss.solve solves random well-conditioned systems"
    ~count:100 (QCheck.int_range 1 15) (fun n ->
      let rng = Rng.create (n * 31) in
      (* Diagonally dominant => nonsingular and well conditioned. *)
      let a =
        Matrix.init n n (fun i j ->
            if i = j then 10.0 +. Rng.float rng 1.0
            else Rng.uniform rng ~lo:(-1.0) ~hi:1.0)
      in
      let x_true = Array.init n (fun _ -> Rng.uniform rng ~lo:(-5.) ~hi:5.) in
      let b = Matrix.mul_vec a x_true in
      let x = Gauss.solve a b in
      Array.for_all2 (fun u v -> abs_float (u -. v) < 1e-6) x x_true)

let prop_rank_product_bound =
  QCheck.Test.make ~name:"rank(AB) <= min(rank A, rank B) via low-rank build"
    ~count:50
    QCheck.(triple (int_range 2 10) (int_range 2 10) (int_range 1 4))
    (fun (r, c, k) ->
      let rng = Rng.create ((r * 1000) + (c * 10) + k) in
      let m = random_low_rank rng r c (min k (min r c)) in
      Gauss.rank m <= min k (min r c))

(* ------------------------------------------------------------------ *)
(* QR / least squares                                                  *)
(* ------------------------------------------------------------------ *)

let test_qr_reconstruct () =
  let rng = Rng.create 17 in
  let a = random_matrix rng 6 4 in
  let t = Qr.decompose a in
  check_int "full rank" 4 t.Qr.rank;
  let q = Qr.q t and r = Qr.r t in
  (* Q·R should equal A with its columns permuted by perm. *)
  let ap =
    Matrix.init 6 4 (fun i j -> Matrix.get a i t.Qr.perm.(j))
  in
  check_bool "QR = A·P" true
    (Matrix.equal_approx ~tol:1e-8 ap (Matrix.mul q r))

let test_qr_orthogonal () =
  let rng = Rng.create 23 in
  let a = random_matrix rng 5 5 in
  let t = Qr.decompose a in
  let q = Qr.q t in
  let qtq = Matrix.mul (Matrix.transpose q) q in
  check_bool "QᵀQ = I" true
    (Matrix.equal_approx ~tol:1e-8 qtq (Matrix.identity 5))

let test_lstsq_exact () =
  let a = Matrix.of_rows [| [| 1.; 0. |]; [| 0.; 1. |]; [| 1.; 1. |] |] in
  let b = [| 1.; 2.; 3. |] in
  let { Lstsq.solution; rank; residual_norm } = Lstsq.solve a b in
  check_int "rank" 2 rank;
  checkf "x0" 1.0 solution.(0);
  checkf "x1" 2.0 solution.(1);
  checkf "consistent system residual" 0.0 residual_norm

let test_lstsq_overdetermined () =
  (* Fit y = c over observations 1, 2, 3: least squares mean. *)
  let a = Matrix.of_rows [| [| 1. |]; [| 1. |]; [| 1. |] |] in
  let { Lstsq.solution; _ } = Lstsq.solve a [| 1.; 2.; 3. |] in
  checkf "mean fit" 2.0 solution.(0)

let test_lstsq_rank_deficient () =
  (* x0 + x1 = 2 twice: any (a, 2-a) minimizes; basic solution picks one
     and must reproduce the rhs. *)
  let a = Matrix.of_rows [| [| 1.; 1. |]; [| 1.; 1. |] |] in
  let { Lstsq.solution; rank; residual_norm } = Lstsq.solve a [| 2.; 2. |] in
  check_int "rank 1" 1 rank;
  checkf "residual 0" 0.0 residual_norm;
  checkf "sum constraint" 2.0 (solution.(0) +. solution.(1))

let prop_lstsq_residual_orthogonal =
  QCheck.Test.make
    ~name:"least-squares residual orthogonal to column space" ~count:60
    QCheck.(pair (int_range 2 12) (int_range 1 8))
    (fun (m, n) ->
      let n = min n m in
      let rng = Rng.create ((m * 131) + n) in
      let a = random_matrix rng m n in
      let b = Array.init m (fun _ -> Rng.uniform rng ~lo:(-2.) ~hi:2.) in
      let { Lstsq.solution; _ } = Lstsq.solve a b in
      let r = Matrix.mul_vec a solution in
      let resid = Array.mapi (fun i ri -> ri -. b.(i)) r in
      let atr = Matrix.vec_mul resid a in
      Array.for_all (fun x -> abs_float x < 1e-6) atr)

(* ------------------------------------------------------------------ *)
(* Null space + Algorithm 2                                            *)
(* ------------------------------------------------------------------ *)

let test_nullspace_basic () =
  (* x + y + z = 0 has a 2-dimensional null space. *)
  let m = Matrix.of_rows [| [| 1.; 1.; 1. |] |] in
  let n = Nullspace.basis m in
  check_int "nullity" 2 (Matrix.cols n);
  let prod = Matrix.mul m n in
  checkf "R·N = 0" 0.0 (Matrix.max_abs prod)

let test_nullspace_trivial () =
  let m = Matrix.identity 3 in
  check_int "identity nullity" 0 (Nullspace.nullity m)

let test_in_row_space () =
  (* System x0 + x1 = b1, x0 = b2 identifies both x0 and x1; the system
     x0 + x1 alone identifies neither. *)
  let full = Matrix.of_rows [| [| 1.; 1. |]; [| 1.; 0. |] |] in
  let nfull = Nullspace.basis full in
  check_bool "x0 identifiable" true (Nullspace.in_row_space nfull 0);
  check_bool "x1 identifiable" true (Nullspace.in_row_space nfull 1);
  let partial = Matrix.of_rows [| [| 1.; 1. |] |] in
  let np = Nullspace.basis partial in
  check_bool "x0 not identifiable" false (Nullspace.in_row_space np 0);
  check_bool "x1 not identifiable" false (Nullspace.in_row_space np 1)

let test_reduces_rank () =
  let m = Matrix.of_rows [| [| 1.; 1.; 0. |] |] in
  let n = Nullspace.basis m in
  check_bool "dependent row does not reduce" false
    (Nullspace.reduces_rank n [| 2.; 2.; 0. |]);
  check_bool "independent row reduces" true
    (Nullspace.reduces_rank n [| 0.; 0.; 1. |])

let test_update_matches_recompute () =
  let m = Matrix.of_rows [| [| 1.; 1.; 0.; 0. |]; [| 0.; 0.; 1.; 1. |] |] in
  let n = Nullspace.basis m in
  check_int "initial nullity" 2 (Matrix.cols n);
  let r = [| 1.; 0.; 1.; 0. |] in
  let n' = Nullspace.update n r in
  check_int "nullity drops by one" 1 (Matrix.cols n');
  (* The updated basis must be annihilated by all three rows. *)
  let m3 =
    Matrix.of_rows
      [| [| 1.; 1.; 0.; 0. |]; [| 0.; 0.; 1.; 1. |]; [| 1.; 0.; 1.; 0. |] |]
  in
  checkf "R'·N' = 0" 0.0 (Matrix.max_abs (Matrix.mul m3 n'));
  (* And have the same span dimension as a from-scratch basis. *)
  check_int "same nullity as recompute" (Nullspace.nullity m3)
    (Matrix.cols n')

let test_update_dependent_row_noop () =
  let m = Matrix.of_rows [| [| 1.; 1.; 0. |]; [| 0.; 1.; 1. |] |] in
  let n = Nullspace.basis m in
  let sum_row = [| 1.; 2.; 1. |] in
  let n' = Nullspace.update n sum_row in
  check_int "dependent row keeps nullity" (Matrix.cols n) (Matrix.cols n')

let prop_update_equals_recompute =
  QCheck.Test.make
    ~name:"Algorithm 2 update ≡ from-scratch basis (nullity & annihilation)"
    ~count:80
    QCheck.(triple (int_range 1 6) (int_range 2 8) (int_range 0 1000))
    (fun (r, c, seed) ->
      let rng = Rng.create seed in
      (* Random 0/1 matrix to mimic incidence rows. *)
      let m =
        Matrix.init r c (fun _ _ -> if Rng.bool rng ~p:0.4 then 1.0 else 0.0)
      in
      let extra =
        Array.init c (fun _ -> if Rng.bool rng ~p:0.4 then 1.0 else 0.0)
      in
      let n = Nullspace.basis m in
      let n' = Nullspace.update n extra in
      let stacked =
        Matrix.init (r + 1) c (fun i j ->
            if i < r then Matrix.get m i j else extra.(j))
      in
      let expect = Nullspace.nullity stacked in
      Matrix.cols n' = expect
      && (Matrix.cols n' = 0
         || Matrix.max_abs (Matrix.mul stacked n') < 1e-7))

let prop_rank_nullity =
  QCheck.Test.make ~name:"rank + nullity = columns" ~count:80
    QCheck.(triple (int_range 1 10) (int_range 1 10) (int_range 0 1000))
    (fun (r, c, seed) ->
      let rng = Rng.create (seed + 424242) in
      let m =
        Matrix.init r c (fun _ _ -> if Rng.bool rng ~p:0.35 then 1.0 else 0.0)
      in
      Gauss.rank m + Nullspace.nullity m = c)

let prop_basis_annihilated =
  QCheck.Test.make ~name:"R · basis(R) = 0" ~count:80
    QCheck.(triple (int_range 1 8) (int_range 1 10) (int_range 0 1000))
    (fun (r, c, seed) ->
      let rng = Rng.create (seed + 777) in
      let m = random_matrix rng r c in
      let n = Nullspace.basis m in
      Matrix.cols n = 0 || Matrix.max_abs (Matrix.mul m n) < 1e-7)

(* ------------------------------------------------------------------ *)
(* SVD                                                                 *)
(* ------------------------------------------------------------------ *)

module Svd = Tomo_linalg.Svd

let test_svd_reconstruct () =
  let rng = Rng.create 31 in
  let a = random_matrix rng 7 4 in
  let t = Svd.decompose a in
  check_bool "U·Σ·Vᵀ = A" true
    (Matrix.equal_approx ~tol:1e-8 a (Svd.reconstruct t));
  (* Descending singular values. *)
  let s = t.Svd.sigma in
  for i = 0 to Array.length s - 2 do
    if s.(i) < s.(i + 1) then Alcotest.fail "sigma not descending"
  done

let test_svd_orthogonality () =
  let rng = Rng.create 37 in
  let a = random_matrix rng 6 6 in
  let t = Svd.decompose a in
  let vtv = Matrix.mul (Matrix.transpose t.Svd.v) t.Svd.v in
  check_bool "VᵀV = I" true
    (Matrix.equal_approx ~tol:1e-8 vtv (Matrix.identity 6));
  let utu = Matrix.mul (Matrix.transpose t.Svd.u) t.Svd.u in
  check_bool "UᵀU = I (full rank)" true
    (Matrix.equal_approx ~tol:1e-8 utu (Matrix.identity 6))

let test_svd_rank_and_nullspace () =
  (* Rank-2 matrix built from two outer products. *)
  let rng = Rng.create 41 in
  let a = random_low_rank rng 6 5 2 in
  let t = Svd.decompose a in
  check_int "rank 2" 2 (Svd.rank t);
  let nsp = Svd.nullspace_basis t in
  check_int "nullity 3" 3 (Matrix.cols nsp);
  checkf "A·N = 0" 0.0 (Matrix.max_abs (Matrix.mul a nsp))

let test_svd_rejects_wide () =
  Alcotest.check_raises "wide matrices rejected"
    (Invalid_argument "Svd.decompose: need rows >= cols") (fun () ->
      ignore (Svd.decompose (Matrix.make 2 5 1.0)))

let test_svd_known_values () =
  (* diag(3, 2) has singular values 3 and 2; condition 1.5. *)
  let a = Matrix.of_rows [| [| 3.; 0. |]; [| 0.; 2. |] |] in
  let t = Svd.decompose a in
  checkf "sigma0" 3.0 t.Svd.sigma.(0);
  checkf "sigma1" 2.0 t.Svd.sigma.(1);
  checkf "condition" 1.5 (Svd.condition t)

let prop_svd_agrees_with_gauss_rank =
  QCheck.Test.make ~name:"SVD rank = Gaussian-elimination rank" ~count:60
    QCheck.(triple (int_range 1 8) (int_range 1 8) (int_range 0 5_000))
    (fun (m, n, seed) ->
      let m = max m n in
      (* ensure rows >= cols *)
      let rng = Rng.create (seed + 9_000) in
      let a =
        Matrix.init m n (fun _ _ -> if Rng.bool rng ~p:0.4 then 1.0 else 0.0)
      in
      Svd.rank (Svd.decompose a) = Gauss.rank a)

let prop_svd_nullspace_annihilated =
  QCheck.Test.make ~name:"A · svd-nullspace = 0" ~count:60
    QCheck.(pair (int_range 2 8) (int_range 0 5_000))
    (fun (n, seed) ->
      let rng = Rng.create (seed + 11_000) in
      let a = random_low_rank rng (n + 2) n (max 1 (n / 2)) in
      let t = Svd.decompose a in
      let nsp = Svd.nullspace_basis t in
      Matrix.cols nsp = 0 || Matrix.max_abs (Matrix.mul a nsp) < 1e-7)

(* ------------------------------------------------------------------ *)
(* CGLS                                                                *)
(* ------------------------------------------------------------------ *)

module Cgls = Tomo_linalg.Cgls

let test_cgls_exact () =
  (* x0 + x1 = 3; x0 = 1 — consistent square system over incidence
     rows. *)
  let x =
    Cgls.solve ~n_vars:2 ~rows:[| [| 0; 1 |]; [| 0 |] |] ~b:[| 3.; 1. |] ()
  in
  checkf "x0" 1.0 x.(0);
  checkf "x1" 2.0 x.(1)

let test_cgls_min_norm () =
  (* Single equation x0 + x1 = 2: minimizers form a line; CGLS from 0
     returns the minimum-norm point (1,1). *)
  let x = Cgls.solve ~n_vars:2 ~rows:[| [| 0; 1 |] |] ~b:[| 2.0 |] () in
  checkf "x0 = 1" 1.0 x.(0);
  checkf "x1 = 1" 1.0 x.(1)

let test_cgls_overdetermined_mean () =
  (* Three copies of x = b_i: least squares = mean. *)
  let x =
    Cgls.solve ~n_vars:1
      ~rows:[| [| 0 |]; [| 0 |]; [| 0 |] |]
      ~b:[| 1.0; 2.0; 6.0 |] ()
  in
  checkf "mean" 3.0 x.(0)

let test_cgls_validation () =
  Alcotest.check_raises "bad index"
    (Invalid_argument "Cgls.solve: variable index out of range") (fun () ->
      ignore (Cgls.solve ~n_vars:1 ~rows:[| [| 1 |] |] ~b:[| 1.0 |] ()));
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Cgls.solve: size mismatch") (fun () ->
      ignore (Cgls.solve ~n_vars:1 ~rows:[| [| 0 |] |] ~b:[||] ()))

let prop_cgls_matches_qr_least_squares =
  QCheck.Test.make ~name:"CGLS matches QR least squares on incidence rows"
    ~count:60
    QCheck.(triple (int_range 1 10) (int_range 1 8) (int_range 0 5_000))
    (fun (m, n, seed) ->
      let rng = Rng.create (seed + 13_000) in
      let rows =
        Array.init m (fun _ ->
            let r = ref [] in
            for j = n - 1 downto 0 do
              if Rng.bool rng ~p:0.5 then r := j :: !r
            done;
            Array.of_list !r)
      in
      let b = Array.init m (fun _ -> Rng.uniform rng ~lo:(-2.) ~hi:2.) in
      let x = Cgls.solve ~n_vars:n ~rows ~b () in
      let a =
        Matrix.init m n (fun i j ->
            if Array.exists (fun k -> k = j) rows.(i) then 1.0 else 0.0)
      in
      let { Lstsq.solution = y; _ } = Lstsq.solve a b in
      (* Both minimize ‖Ax − b‖: residuals must agree even when the
         minimizers differ (rank-deficient systems). *)
      let resid v =
        let r = Matrix.mul_vec a v in
        let acc = ref 0.0 in
        Array.iteri
          (fun i ri ->
            let d = ri -. b.(i) in
            acc := !acc +. (d *. d))
          r;
        !acc
      in
      abs_float (resid x -. resid y) < 1e-6)

(* ------------------------------------------------------------------ *)
(* Sparse storage + sparse elimination                                 *)
(* ------------------------------------------------------------------ *)

module Sparse = Tomo_linalg.Sparse
module Sparse_gauss = Tomo_linalg.Sparse_gauss

(* Exact per-entry equality (the bit-identity contract; OCaml [=] on
   floats, so -0.0 = 0.0 — the one divergence the kernels allow). *)
let matrices_exact a b =
  Matrix.rows a = Matrix.rows b
  && Matrix.cols a = Matrix.cols b
  &&
  let ok = ref true in
  for i = 0 to Matrix.rows a - 1 do
    for j = 0 to Matrix.cols a - 1 do
      if Matrix.get a i j <> Matrix.get b i j then ok := false
    done
  done;
  !ok

let matrices_close ~tol a b =
  Matrix.rows a = Matrix.rows b
  && Matrix.cols a = Matrix.cols b
  &&
  let ok = ref true in
  for i = 0 to Matrix.rows a - 1 do
    for j = 0 to Matrix.cols a - 1 do
      if abs_float (Matrix.get a i j -. Matrix.get b i j) > tol then
        ok := false
    done
  done;
  !ok

let random_incidence rng r c p =
  Matrix.init r c (fun _ _ -> if Rng.bool rng ~p then 1.0 else 0.0)

let test_sparse_roundtrip () =
  let rng = Rng.create 51 in
  let m =
    Matrix.init 7 9 (fun _ _ ->
        if Rng.bool rng ~p:0.3 then Rng.uniform rng ~lo:(-2.) ~hi:2. else 0.0)
  in
  let a = Sparse.of_matrix m in
  check_bool "round-trip" true (matrices_exact m (Sparse.to_matrix a));
  let expected_nnz = ref 0 in
  for i = 0 to 6 do
    for j = 0 to 8 do
      if Matrix.get m i j <> 0.0 then incr expected_nnz
    done
  done;
  check_int "nnz" !expected_nnz (Sparse.nnz a);
  checkf "density"
    (float_of_int !expected_nnz /. 63.0)
    (Sparse.density a);
  check_bool "copy is deep" true
    (let b = Sparse.copy a in
     Sparse.swap_rows b 0 1;
     matrices_exact m (Sparse.to_matrix a))

let test_sparse_of_incidence () =
  (* Unsorted indices are accepted and stored in column order. *)
  let a = Sparse.of_incidence ~rows:2 ~cols:5 [| [| 3; 0; 2 |]; [||] |] in
  let expect =
    Matrix.of_rows
      [| [| 1.; 0.; 1.; 1.; 0. |]; [| 0.; 0.; 0.; 0.; 0. |] |]
  in
  check_bool "incidence layout" true (matrices_exact expect (Sparse.to_matrix a));
  check_int "row 0 nnz" 3 (Sparse.row_nnz a 0);
  check_int "row 1 nnz" 0 (Sparse.row_nnz a 1);
  Alcotest.check_raises "duplicate index"
    (Invalid_argument "Sparse.of_incidence: duplicate index") (fun () ->
      ignore (Sparse.of_incidence ~rows:1 ~cols:4 [| [| 1; 1 |] |]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Sparse.of_incidence: index out of range") (fun () ->
      ignore (Sparse.of_incidence ~rows:1 ~cols:4 [| [| 4 |] |]))

let test_sparse_row_ops () =
  let m =
    Matrix.of_rows [| [| 2.; 0.; 4. |]; [| 0.; 3.; 6. |]; [| 1.; 1.; 0. |] |]
  in
  let a = Sparse.of_matrix m in
  Sparse.swap_rows a 0 2;
  check_bool "swap" true
    (matrices_exact
       (Matrix.of_rows
          [| [| 1.; 1.; 0. |]; [| 0.; 3.; 6. |]; [| 2.; 0.; 4. |] |])
       (Sparse.to_matrix a));
  Sparse.scale_row a 1 2.0;
  checkf "scale" 6.0 (Sparse.get a 1 1);
  Sparse.div_row a 1 3.0;
  checkf "div" 2.0 (Sparse.get a 1 1);
  (* dst ← dst − 2·src eliminates the (2,0) entry and fills (2,1). *)
  Sparse.sub_scaled_row a ~dst:2 ~src:0 ~coeff:2.0;
  checkf "eliminated" 0.0 (Sparse.get a 2 0);
  checkf "fill-in" (-2.0) (Sparse.get a 2 1);
  check_int "cancelled entry dropped" 2 (Sparse.row_nnz a 2);
  Sparse.drop_col_entries a 1 ~from_row:1;
  checkf "dropped" 0.0 (Sparse.get a 2 1);
  checkf "kept above from_row" 1.0 (Sparse.get a 0 1)

let test_sparse_routing_policy () =
  let saved = Sparse.density_threshold () in
  Fun.protect
    ~finally:(fun () -> Sparse.set_density_threshold saved)
    (fun () ->
      Sparse.set_density_threshold 0.25;
      check_bool "small stays dense" false
        (Sparse.prefers_sparse ~rows:10 ~cols:10 ~nnz:1);
      check_bool "big sparse routes sparse" true
        (Sparse.prefers_sparse ~rows:100 ~cols:100 ~nnz:500);
      check_bool "big dense stays dense" false
        (Sparse.prefers_sparse ~rows:100 ~cols:100 ~nnz:5000);
      Sparse.set_density_threshold 0.0;
      check_bool "zero threshold disables" false
        (Sparse.prefers_sparse ~rows:100 ~cols:100 ~nnz:1);
      Sparse.set_density_threshold 7.0;
      checkf "clamped to 1" 1.0 (Sparse.density_threshold ()))

let prop_sparse_rref_bit_identical_incidence =
  QCheck.Test.make
    ~name:"sparse rref ≡ dense rref on 0/1 incidence matrices (exact)"
    ~count:120
    QCheck.(triple (int_range 1 18) (int_range 1 24) (int_range 0 10_000))
    (fun (r, c, seed) ->
      let rng = Rng.create (seed + 17_000) in
      let m = random_incidence rng r c 0.2 in
      let d = Gauss.rref_dense m in
      let s = Sparse_gauss.rref (Sparse.of_matrix m) in
      d.Gauss.rank = s.Sparse_gauss.rank
      && d.Gauss.pivot_cols = s.Sparse_gauss.pivot_cols
      && matrices_exact d.Gauss.reduced
           (Sparse.to_matrix s.Sparse_gauss.reduced))

let prop_sparse_rref_matches_dense_random =
  QCheck.Test.make
    ~name:"sparse rref matches dense on dense-random controls (1e-9)"
    ~count:120
    QCheck.(triple (int_range 1 12) (int_range 1 12) (int_range 0 10_000))
    (fun (r, c, seed) ->
      let rng = Rng.create (seed + 19_000) in
      (* Half-dense real entries: well above the routing threshold, so
         this exercises the kernel itself, not the router. *)
      let m =
        Matrix.init r c (fun _ _ ->
            if Rng.bool rng ~p:0.5 then Rng.uniform rng ~lo:(-3.) ~hi:3.
            else 0.0)
      in
      let d = Gauss.rref_dense m in
      let s = Sparse_gauss.rref (Sparse.of_matrix m) in
      d.Gauss.rank = s.Sparse_gauss.rank
      && d.Gauss.pivot_cols = s.Sparse_gauss.pivot_cols
      && matrices_close ~tol:1e-9 d.Gauss.reduced
           (Sparse.to_matrix s.Sparse_gauss.reduced))

let prop_sparse_nullspace_same_kernel =
  QCheck.Test.make
    ~name:"sparse Nullspace.basis spans the same kernel as dense"
    ~count:80
    QCheck.(triple (int_range 1 10) (int_range 2 14) (int_range 0 10_000))
    (fun (r, c, seed) ->
      let rng = Rng.create (seed + 23_000) in
      let m = random_incidence rng r c 0.25 in
      let nd = Nullspace.basis ~backend:`Dense m in
      let ns = Nullspace.basis ~backend:`Sparse m in
      let p = Matrix.cols nd in
      Matrix.cols ns = p
      && (p = 0 || Matrix.max_abs (Matrix.mul m ns) < 1e-9)
      && (p = 0
         ||
         (* Mutual expressibility: stacking the two bases adds no new
            directions, so each spans the other. *)
         let both =
           Matrix.init c (2 * p) (fun i j ->
               if j < p then Matrix.get nd i j else Matrix.get ns i (j - p))
         in
         Gauss.rank both = p))

let prop_cgls_sparse_bit_identical =
  QCheck.Test.make
    ~name:"Cgls.solve_sparse ≡ Cgls.solve on incidence systems (exact)"
    ~count:80
    QCheck.(triple (int_range 1 10) (int_range 1 8) (int_range 0 10_000))
    (fun (m, n, seed) ->
      let rng = Rng.create (seed + 29_000) in
      let rows =
        Array.init m (fun _ ->
            let r = ref [] in
            for j = n - 1 downto 0 do
              if Rng.bool rng ~p:0.5 then r := j :: !r
            done;
            Array.of_list !r)
      in
      let b = Array.init m (fun _ -> Rng.uniform rng ~lo:(-2.) ~hi:2.) in
      let x = Cgls.solve ~n_vars:n ~rows ~b () in
      let a = Sparse.of_incidence ~rows:m ~cols:n rows in
      let y = Cgls.solve_sparse ~a ~b () in
      Array.for_all2 (fun u v -> u = v) x y)

(* Gauss edge cases pinning the kernels the sparse layer must mirror. *)

let test_gauss_edge_1x1 () =
  let one = Gauss.rref (Matrix.of_rows [| [| 5.0 |] |]) in
  check_int "1x1 rank" 1 one.Gauss.rank;
  checkf "normalized pivot" 1.0 (Matrix.get one.Gauss.reduced 0 0);
  check_bool "pivot col" true (one.Gauss.pivot_cols = [ 0 ]);
  let zero = Gauss.rref (Matrix.of_rows [| [| 0.0 |] |]) in
  check_int "1x1 zero rank" 0 zero.Gauss.rank;
  check_bool "no pivots" true (zero.Gauss.pivot_cols = [])

let test_gauss_all_zero () =
  let m = Matrix.make 3 4 0.0 in
  let d = Gauss.rref_dense m in
  let s = Sparse_gauss.rref (Sparse.of_matrix m) in
  check_int "zero rank (dense)" 0 d.Gauss.rank;
  check_int "zero rank (sparse)" 0 s.Sparse_gauss.rank;
  check_bool "reduced stays zero" true
    (matrices_exact m (Sparse.to_matrix s.Sparse_gauss.reduced));
  check_int "full nullity" 4 (Nullspace.nullity m)

let test_gauss_singular_inverse () =
  let a = Matrix.of_rows [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.check_raises "singular inverse"
    (Failure "Gauss.inverse: singular matrix") (fun () ->
      ignore (Gauss.inverse a));
  Alcotest.check_raises "singular solve"
    (Failure "Gauss.solve: singular matrix") (fun () ->
      ignore (Gauss.solve a [| 1.; 2. |]))

let test_gauss_tolerance_scaling () =
  (* The rank tolerance is relative to the largest entry, so scaling a
     matrix by 1e8 must not change rank or pivot choice — on either
     kernel. *)
  let rng = Rng.create 61 in
  let m = random_incidence rng 9 12 0.3 in
  let big = Matrix.init 9 12 (fun i j -> 1e8 *. Matrix.get m i j) in
  let d = Gauss.rref_dense m and dbig = Gauss.rref_dense big in
  check_int "dense rank invariant" d.Gauss.rank dbig.Gauss.rank;
  check_bool "dense pivots invariant" true
    (d.Gauss.pivot_cols = dbig.Gauss.pivot_cols);
  let s = Sparse_gauss.rref (Sparse.of_matrix m) in
  let sbig = Sparse_gauss.rref (Sparse.of_matrix big) in
  check_int "sparse rank invariant" s.Sparse_gauss.rank
    sbig.Sparse_gauss.rank;
  check_bool "sparse pivots invariant" true
    (s.Sparse_gauss.pivot_cols = sbig.Sparse_gauss.pivot_cols);
  check_int "dense = sparse" d.Gauss.rank s.Sparse_gauss.rank

(* ------------------------------------------------------------------ *)
(* Witness prefilter: the O(nnz) rejection must be invisible            *)
(* ------------------------------------------------------------------ *)

module Sgauss = Tomo_linalg.Sparse_gauss

let random_idxs rng n =
  let acc = ref [] in
  for j = n - 1 downto 0 do
    if Rng.bool rng ~p:0.35 then acc := j :: !acc
  done;
  match !acc with [] -> [| Rng.int rng n |] | l -> Array.of_list l

(* Bitwise tracker equality: same basis entries and same maintained
   column weights. *)
let trackers_agree a b =
  let ma = Nullspace.to_matrix a and mb = Nullspace.to_matrix b in
  matrices_exact ma mb
  &&
  let ok = ref true in
  for v = 0 to Matrix.rows ma - 1 do
    if Nullspace.row_weight a v <> Nullspace.row_weight b v then ok := false
  done;
  !ok

let prop_witness_parity_incidence =
  QCheck.Test.make
    ~name:"witness tracker ≡ exact tracker on random incidence streams"
    ~count:150
    QCheck.(triple (int_range 1 14) (int_range 1 50) (int_range 0 10_000))
    (fun (n, m, seed) ->
      let rng = Rng.create (seed + 31_000) in
      let wit = Nullspace.tracker ~witness_k:4 n in
      let exact = Nullspace.tracker ~witness_k:0 n in
      let ok =
        ref
          (Nullspace.witness_count wit = 4
          && Nullspace.witness_count exact = 0)
      in
      for _ = 1 to m do
        let idxs = random_idxs rng n in
        if Nullspace.add_incidence wit idxs
           <> Nullspace.add_incidence exact idxs
        then ok := false
      done;
      !ok && trackers_agree wit exact)

let prop_select_independent_matches_tracker =
  QCheck.Test.make
    ~name:"select_independent ≡ incremental tracker accept/reject"
    ~count:150
    QCheck.(triple (int_range 1 12) (int_range 1 40) (int_range 0 10_000))
    (fun (n, m, seed) ->
      let rng = Rng.create (seed + 37_000) in
      let rows = Array.init m (fun _ -> random_idxs rng n) in
      let keep = Sgauss.select_independent ~tol:1e-8 ~cols:n rows in
      let tr = Nullspace.tracker ~witness_k:0 n in
      let keep' = Array.map (Nullspace.add_incidence tr) rows in
      keep = keep')

(* Adversarial near-tolerance rows: a spanned row perturbed by
   [±tol·(1±ε)] sits right at the exact test's accept boundary.  The
   witness dot of such a row is [eps · u_c(i)] — tolerance-scale, far
   above the witness threshold [tol·1e-4] — so the prefilter must hand
   every one of them to the exact path and the two trackers must keep
   making identical decisions. *)
let test_witness_adversarial_near_tol () =
  let n = 10 and tol = 1e-8 in
  let rng = Rng.create 97 in
  let wit = Nullspace.tracker ~tol ~witness_k:3 n in
  let exact = Nullspace.tracker ~tol ~witness_k:0 n in
  let accepted = ref [] in
  for i = 0 to 5 do
    let r =
      Array.init n (fun j ->
          if j = i then 1.0
          else if Rng.bool rng ~p:0.3 then 1.0
          else 0.0)
    in
    let a = Nullspace.add_row wit r in
    let b = Nullspace.add_row exact r in
    check_bool "seed decision parity" b a;
    if a then accepted := r :: !accepted
  done;
  let spanned =
    (* a combination of accepted rows: exactly dependent *)
    let acc = Array.make n 0.0 in
    List.iter
      (fun r -> Array.iteri (fun j x -> acc.(j) <- acc.(j) +. x) r)
      !accepted;
    acc
  in
  List.iter
    (fun eps_scale ->
      for i = 0 to n - 1 do
        let r = Array.copy spanned in
        r.(i) <- r.(i) +. (tol *. eps_scale);
        let a = Nullspace.add_row wit r in
        let b = Nullspace.add_row exact r in
        check_bool "near-tol decision parity" b a
      done)
    [ 1.001; 0.999; -1.001; -0.999 ];
  check_bool "bases bitwise equal after adversarial stream" true
    (trackers_agree wit exact)

(* Degenerate pool: every row after the first is the same incidence row.
   The witness must reject the whole tail in O(nnz) without ever
   touching the basis, leaving both trackers bitwise equal. *)
let test_witness_all_dependent_pool () =
  let n = 8 in
  let wit = Nullspace.tracker ~witness_k:2 n in
  let exact = Nullspace.tracker ~witness_k:0 n in
  let row = [| 0; 2; 5 |] in
  check_bool "first accepted (witness)" true (Nullspace.add_incidence wit row);
  check_bool "first accepted (exact)" true
    (Nullspace.add_incidence exact row);
  for _ = 1 to 100 do
    check_bool "duplicate rejected (witness)" false
      (Nullspace.add_incidence wit row);
    check_bool "duplicate rejected (exact)" false
      (Nullspace.add_incidence exact row)
  done;
  check_bool "bases bitwise equal" true (trackers_agree wit exact);
  check_bool "witness invariant tight after rejects" true
    (Nullspace.witness_defect wit < 1e-9)

(* Long interleaving of accepts and rejects: the in-place witness
   updates must keep [u_c = N·g_c] to rounding noise. *)
let test_witness_defect_after_interleaving () =
  let n = 30 in
  let rng = Rng.create 211 in
  let wit = Nullspace.tracker ~witness_k:4 n in
  let exact = Nullspace.tracker ~witness_k:0 n in
  for _ = 1 to 300 do
    let idxs = random_idxs rng n in
    check_bool "interleaved decision parity"
      (Nullspace.add_incidence exact idxs)
      (Nullspace.add_incidence wit idxs)
  done;
  check_bool "bases bitwise equal" true (trackers_agree wit exact);
  check_bool "witness defect below 1e-6" true
    (Nullspace.witness_defect wit < 1e-6)

(* The TOMO_WITNESS_K default is a process-wide knob; trackers built
   while it is 0 run the exact path. *)
let test_witness_default_knob () =
  let saved = Nullspace.default_witness_k () in
  Fun.protect
    ~finally:(fun () -> Nullspace.set_default_witness_k saved)
    (fun () ->
      Nullspace.set_default_witness_k 0;
      check_int "k=0 disables" 0 (Nullspace.witness_count (Nullspace.tracker 5));
      Nullspace.set_default_witness_k 3;
      check_int "k=3 maintains 3 witnesses" 3
        (Nullspace.witness_count (Nullspace.tracker 5)))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "linalg"
    [
      ( "matrix",
        [
          Alcotest.test_case "basics" `Quick test_matrix_basic;
          Alcotest.test_case "multiplication" `Quick test_matrix_mul;
          Alcotest.test_case "matrix-vector" `Quick test_matrix_vec;
          Alcotest.test_case "transpose" `Quick test_matrix_transpose;
          Alcotest.test_case "swap/drop columns" `Quick
            test_matrix_drop_swap;
          Alcotest.test_case "degenerate shapes" `Quick
            test_matrix_degenerate_shapes;
          Alcotest.test_case "row-view aliasing" `Quick
            test_matrix_row_view_aliases;
          Alcotest.test_case "of_rows rejections" `Quick
            test_matrix_of_rows_rejections;
          qc prop_transpose_involution;
          qc prop_mul_identity;
        ] );
      ( "gauss",
        [
          Alcotest.test_case "rank" `Quick test_gauss_rank;
          Alcotest.test_case "solve" `Quick test_gauss_solve;
          Alcotest.test_case "singular detection" `Quick test_gauss_singular;
          Alcotest.test_case "inverse" `Quick test_gauss_inverse;
          qc prop_gauss_solve_random;
          qc prop_rank_product_bound;
        ] );
      ( "qr",
        [
          Alcotest.test_case "reconstruction" `Quick test_qr_reconstruct;
          Alcotest.test_case "orthogonality" `Quick test_qr_orthogonal;
          Alcotest.test_case "lstsq consistent" `Quick test_lstsq_exact;
          Alcotest.test_case "lstsq overdetermined" `Quick
            test_lstsq_overdetermined;
          Alcotest.test_case "lstsq rank-deficient" `Quick
            test_lstsq_rank_deficient;
          qc prop_lstsq_residual_orthogonal;
        ] );
      ( "nullspace",
        [
          Alcotest.test_case "basic basis" `Quick test_nullspace_basic;
          Alcotest.test_case "trivial null space" `Quick
            test_nullspace_trivial;
          Alcotest.test_case "identifiability test" `Quick test_in_row_space;
          Alcotest.test_case "rank-reduction test" `Quick test_reduces_rank;
          Alcotest.test_case "Algorithm 2 update" `Quick
            test_update_matches_recompute;
          Alcotest.test_case "Algorithm 2 dependent row" `Quick
            test_update_dependent_row_noop;
          qc prop_update_equals_recompute;
          qc prop_rank_nullity;
          qc prop_basis_annihilated;
        ] );
      ( "svd",
        [
          Alcotest.test_case "reconstruction" `Quick test_svd_reconstruct;
          Alcotest.test_case "orthogonality" `Quick test_svd_orthogonality;
          Alcotest.test_case "rank and null space" `Quick
            test_svd_rank_and_nullspace;
          Alcotest.test_case "wide matrices rejected" `Quick
            test_svd_rejects_wide;
          Alcotest.test_case "known singular values" `Quick
            test_svd_known_values;
          qc prop_svd_agrees_with_gauss_rank;
          qc prop_svd_nullspace_annihilated;
        ] );
      ( "cgls",
        [
          Alcotest.test_case "consistent system" `Quick test_cgls_exact;
          Alcotest.test_case "minimum norm" `Quick test_cgls_min_norm;
          Alcotest.test_case "overdetermined mean" `Quick
            test_cgls_overdetermined_mean;
          Alcotest.test_case "validation" `Quick test_cgls_validation;
          qc prop_cgls_matches_qr_least_squares;
        ] );
      ( "gauss-edge",
        [
          Alcotest.test_case "1x1 matrices" `Quick test_gauss_edge_1x1;
          Alcotest.test_case "all-zero matrix" `Quick test_gauss_all_zero;
          Alcotest.test_case "singular solve/inverse raise" `Quick
            test_gauss_singular_inverse;
          Alcotest.test_case "tolerance scales with magnitude" `Quick
            test_gauss_tolerance_scaling;
        ] );
      ( "sparse",
        [
          Alcotest.test_case "dense round-trip" `Quick test_sparse_roundtrip;
          Alcotest.test_case "of_incidence" `Quick test_sparse_of_incidence;
          Alcotest.test_case "row operations" `Quick test_sparse_row_ops;
          Alcotest.test_case "routing policy" `Quick
            test_sparse_routing_policy;
          qc prop_sparse_rref_bit_identical_incidence;
          qc prop_sparse_rref_matches_dense_random;
          qc prop_sparse_nullspace_same_kernel;
          qc prop_cgls_sparse_bit_identical;
        ] );
      ( "witness",
        [
          qc prop_witness_parity_incidence;
          qc prop_select_independent_matches_tracker;
          Alcotest.test_case "adversarial near-tolerance rows" `Quick
            test_witness_adversarial_near_tol;
          Alcotest.test_case "degenerate all-dependent pool" `Quick
            test_witness_all_dependent_pool;
          Alcotest.test_case "defect after long interleaving" `Quick
            test_witness_defect_after_interleaving;
          Alcotest.test_case "default-k knob" `Quick
            test_witness_default_knob;
        ] );
    ]
