(* Tests for graphs, the two-level overlay builder, and the Brite/Sparse
   topology generators. *)

module Graph = Tomo_topology.Graph
module Overlay = Tomo_topology.Overlay
module Gen_common = Tomo_topology.Gen_common
module Brite = Tomo_topology.Brite
module Sparse_topo = Tomo_topology.Sparse_topo
module Rng = Tomo_util.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Graph                                                               *)
(* ------------------------------------------------------------------ *)

let test_graph_basic () =
  let g = Graph.create 4 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 2;
  check_int "edges" 2 (Graph.n_edges g);
  check_bool "has 0-1" true (Graph.has_edge g 0 1);
  check_bool "symmetric" true (Graph.has_edge g 1 0);
  check_bool "no 0-2" false (Graph.has_edge g 0 2);
  check_int "degree 1" 2 (Graph.degree g 1);
  Alcotest.check_raises "self loop"
    (Invalid_argument "Graph.add_edge: self-loop") (fun () ->
      Graph.add_edge g 2 2);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Graph.add_edge: duplicate edge") (fun () ->
      Graph.add_edge g 0 1)

let test_graph_shortest_path () =
  let g = Graph.create 5 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 2;
  Graph.add_edge g 2 3;
  Graph.add_edge g 0 4;
  Graph.add_edge g 4 3;
  (match Graph.shortest_path g ~src:0 ~dst:3 with
  | Some p -> check_int "hop count" 3 (List.length p)
  | None -> Alcotest.fail "path expected");
  match Graph.shortest_path g ~src:0 ~dst:0 with
  | Some [ 0 ] -> ()
  | _ -> Alcotest.fail "trivial path expected"

let test_graph_disconnected () =
  let g = Graph.create 3 in
  Graph.add_edge g 0 1;
  check_bool "disconnected" false (Graph.connected g);
  (match Graph.shortest_path g ~src:0 ~dst:2 with
  | None -> ()
  | Some _ -> Alcotest.fail "no path expected");
  Graph.add_edge g 1 2;
  check_bool "connected" true (Graph.connected g)

let prop_shortest_path_valid =
  QCheck.Test.make ~name:"BFS returns a valid minimal path on random graphs"
    ~count:60 (QCheck.int_range 0 10_000) (fun seed ->
      let rng = Rng.create seed in
      let n = 3 + Rng.int rng 15 in
      let g = Graph.create n in
      (* Random connected-ish graph: spanning chain + random chords. *)
      for u = 1 to n - 1 do
        Graph.add_edge g u (Rng.int rng u)
      done;
      for _ = 1 to n / 2 do
        let u = Rng.int rng n and v = Rng.int rng n in
        if u <> v && not (Graph.has_edge g u v) then Graph.add_edge g u v
      done;
      let src = Rng.int rng n and dst = Rng.int rng n in
      match Graph.shortest_path ~rng g ~src ~dst with
      | None -> false (* connected by construction *)
      | Some nodes ->
          let rec consecutive = function
            | x :: (y :: _ as rest) ->
                Graph.has_edge g x y && consecutive rest
            | _ -> true
          in
          List.hd nodes = src
          && List.hd (List.rev nodes) = dst
          && consecutive nodes)

(* ------------------------------------------------------------------ *)
(* Overlay builder                                                     *)
(* ------------------------------------------------------------------ *)

let toy_builder () =
  let b = Overlay.Builder.create ~n_ases:3 ~source_as:0 in
  let f0 = Overlay.Builder.factor b ~owner:1 ~key:"f0" in
  let f1 = Overlay.Builder.factor b ~owner:1 ~key:"f1" in
  let l0 =
    Overlay.Builder.link b ~owner:1 ~key:"a" ~kind:Overlay.Inter
      ~factors:(fun () -> [| f0 |])
  in
  let l1 =
    Overlay.Builder.link b ~owner:1 ~key:"b" ~kind:Overlay.Intra
      ~factors:(fun () -> [| f0; f1 |])
  in
  (b, l0, l1)

let test_builder_dedup () =
  let b, l0, _ = toy_builder () in
  let l0' =
    Overlay.Builder.link b ~owner:1 ~key:"a" ~kind:Overlay.Inter
      ~factors:(fun () -> failwith "must not re-create")
  in
  check_int "link get-or-create" l0 l0';
  let f0 = Overlay.Builder.factor b ~owner:1 ~key:"f0" in
  let f0' = Overlay.Builder.factor b ~owner:1 ~key:"f0" in
  check_int "factor get-or-create" f0 f0'

let test_builder_foreign_factor_rejected () =
  let b, _, _ = toy_builder () in
  let foreign = Overlay.Builder.factor b ~owner:2 ~key:"g" in
  Alcotest.check_raises "cross-AS factor"
    (Invalid_argument "Builder.link: factor owned by a different AS")
    (fun () ->
      ignore
        (Overlay.Builder.link b ~owner:1 ~key:"evil" ~kind:Overlay.Inter
           ~factors:(fun () -> [| foreign |])))

let test_builder_path_dedup () =
  let b, l0, l1 = toy_builder () in
  (match Overlay.Builder.add_path b [| l0; l1 |] with
  | Some 0 -> ()
  | _ -> Alcotest.fail "first path gets id 0");
  (match Overlay.Builder.add_path b [| l0; l1 |] with
  | None -> ()
  | Some _ -> Alcotest.fail "duplicate path must be rejected");
  match Overlay.Builder.add_path b [| l1; l0 |] with
  | Some 1 -> ()
  | _ -> Alcotest.fail "distinct order is a distinct path"

let test_builder_prunes_unused () =
  let b, l0, l1 = toy_builder () in
  let _unused =
    Overlay.Builder.link b ~owner:2 ~key:"dead" ~kind:Overlay.Inter
      ~factors:(fun () -> [| Overlay.Builder.factor b ~owner:2 ~key:"df" |])
  in
  ignore (Overlay.Builder.add_path b [| l0; l1 |]);
  let t = Overlay.Builder.finalize b in
  check_int "only used links survive" 2 (Overlay.n_links t);
  check_int "only used factors survive" 2 t.Overlay.n_factors;
  Overlay.validate t

let test_correlation_sets_partition () =
  let b, l0, l1 = toy_builder () in
  ignore (Overlay.Builder.add_path b [| l0; l1 |]);
  let t = Overlay.Builder.finalize b in
  let cs = Overlay.correlation_sets t in
  check_int "one correlation set (single owning AS)" 1 (Array.length cs);
  check_int "it holds both links" 2 (Array.length cs.(0))

let test_links_sharing_factor () =
  let b, l0, l1 = toy_builder () in
  ignore (Overlay.Builder.add_path b [| l0; l1 |]);
  let t = Overlay.Builder.finalize b in
  let sharing = Overlay.links_sharing_factor t in
  (* f0 backs both links, f1 only one. *)
  let counts = Array.map Array.length sharing in
  Array.sort compare counts;
  Alcotest.(check (array int)) "factor sharing" [| 1; 2 |] counts

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let small_brite =
  {
    Brite.default with
    Brite.n_ases = 40;
    n_paths = 120;
    n_vantages = 2;
  }

let small_sparse =
  {
    Sparse_topo.default with
    Sparse_topo.n_ases = 120;
    n_paths = 120;
    n_vantages = 2;
  }

let test_brite_valid () =
  let t = Brite.generate ~params:small_brite ~seed:7 () in
  Overlay.validate t;
  check_bool "paths collected" true (Overlay.n_paths t >= 100);
  check_bool "links exist" true (Overlay.n_links t > 50)

let test_brite_deterministic () =
  let t1 = Brite.generate ~params:small_brite ~seed:3 () in
  let t2 = Brite.generate ~params:small_brite ~seed:3 () in
  check_int "same links" (Overlay.n_links t1) (Overlay.n_links t2);
  check_int "same paths" (Overlay.n_paths t1) (Overlay.n_paths t2);
  let t3 = Brite.generate ~params:small_brite ~seed:4 () in
  check_bool "different seed differs" true
    (Overlay.n_links t1 <> Overlay.n_links t3
    || t1.Overlay.paths <> t3.Overlay.paths)

let test_sparse_valid () =
  let t = Sparse_topo.generate ~params:small_sparse ~seed:7 () in
  Overlay.validate t;
  check_bool "paths collected" true (Overlay.n_paths t >= 100)

let coverage_counts (t : Overlay.t) =
  let cover = Array.make (Overlay.n_links t) 0 in
  Array.iter
    (fun (p : Overlay.path) ->
      Array.iter (fun l -> cover.(l) <- cover.(l) + 1) p.links)
    t.Overlay.paths;
  cover

let test_sparse_is_sparser_than_brite () =
  (* The defining contrast of the paper's §3.2: in the Sparse topology far
     fewer links are traversed by multiple paths. At this fixture size a
     single draw is noisy (any one seed can land either way), so compare
     the fraction of multi-covered links averaged over several seeds at
     equal path budget. *)
  let multi_frac t =
    let cover = coverage_counts t in
    let multi =
      Array.fold_left (fun a c -> if c >= 2 then a + 1 else a) 0 cover
    in
    float_of_int multi /. float_of_int (Array.length cover)
  in
  let seeds = [ 3; 5; 7; 11; 13 ] in
  let mean f =
    List.fold_left (fun a s -> a +. f s) 0.0 seeds
    /. float_of_int (List.length seeds)
  in
  let brite s = multi_frac (Brite.generate ~params:small_brite ~seed:s ()) in
  let sparse s =
    multi_frac (Sparse_topo.generate ~params:small_sparse ~seed:s ())
  in
  check_bool "sparse has lower multi-coverage" true
    (mean sparse < mean brite)

let test_paper_scale_defaults () =
  (* §3.2: "a representative Sparse topology of about 2000 links and a
     representative Brite topology of about 1000 links, each of them with
     1500 paths". Generous tolerances: the generators are random. *)
  let tb = Brite.generate ~seed:1 () in
  let ts = Sparse_topo.generate ~seed:1 () in
  check_bool "brite ~1000 links" true
    (Overlay.n_links tb > 700 && Overlay.n_links tb < 1400);
  check_bool "sparse ~2000 links" true
    (Overlay.n_links ts > 1500 && Overlay.n_links ts < 2600);
  check_int "brite 1500 paths" 1500 (Overlay.n_paths tb);
  check_int "sparse 1500 paths" 1500 (Overlay.n_paths ts)

let test_intra_links_share_factors () =
  (* Correlations must exist: some factor backs >= 2 links. *)
  let t = Brite.generate ~params:small_brite ~seed:5 () in
  let sharing = Overlay.links_sharing_factor t in
  let shared =
    Array.fold_left (fun a ls -> if Array.length ls >= 2 then a + 1 else a) 0
      sharing
  in
  check_bool "some shared factors" true (shared > 0)

let prop_generated_overlays_valid =
  QCheck.Test.make ~name:"generated overlays satisfy invariants" ~count:12
    (QCheck.int_range 0 1_000) (fun seed ->
      let tb =
        Brite.generate
          ~params:{ small_brite with Brite.n_paths = 60 }
          ~seed ()
      in
      let ts =
        Sparse_topo.generate
          ~params:{ small_sparse with Sparse_topo.n_paths = 60 }
          ~seed ()
      in
      Overlay.validate tb;
      Overlay.validate ts;
      true)

let prop_internet_connected =
  QCheck.Test.make ~name:"generated internets are connected" ~count:20
    (QCheck.int_range 0 1_000) (fun seed ->
      let rng = Rng.create seed in
      let inet =
        Gen_common.generate_internet rng ~n_ases:30 ~attach:2
          ~extra_edge_frac:0.1 ~routers_lo:2 ~routers_hi:5
      in
      Graph.connected inet.Gen_common.as_graph
      && Array.for_all Graph.connected inet.Gen_common.internals)

(* ------------------------------------------------------------------ *)
(* Overlay serialization                                               *)
(* ------------------------------------------------------------------ *)

module Overlay_io = Tomo_topology.Overlay_io

let overlays_equal (a : Overlay.t) (b : Overlay.t) =
  a.Overlay.n_ases = b.Overlay.n_ases
  && a.Overlay.source_as = b.Overlay.source_as
  && a.Overlay.n_factors = b.Overlay.n_factors
  && a.Overlay.factor_owner = b.Overlay.factor_owner
  && a.Overlay.links = b.Overlay.links
  && a.Overlay.paths = b.Overlay.paths

let test_io_roundtrip () =
  let t = Brite.generate ~params:small_brite ~seed:5 () in
  let t' = Overlay_io.of_string (Overlay_io.to_string t) in
  check_bool "roundtrip equality" true (overlays_equal t t')

let test_io_file_roundtrip () =
  let t = Sparse_topo.generate ~params:small_sparse ~seed:5 () in
  let path = Filename.temp_file "tomo_overlay" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Overlay_io.save path t;
      let t' = Overlay_io.load path in
      check_bool "file roundtrip" true (overlays_equal t t'))

let test_io_rejects_garbage () =
  (try
     ignore (Overlay_io.of_string "not an overlay");
     Alcotest.fail "garbage accepted"
   with Failure _ -> ());
  try
    ignore
      (Overlay_io.of_string
         "tomo-overlay v1\nases 2 source 0\nfactors 1\nfactor 0 \
          0\nlinks 1\nlink 0 1 inter 0\npaths 1\npath 0 0\n");
    (* link owned by AS 1 but factor owned by AS 0: validation must
       reject it *)
    Alcotest.fail "invalid overlay accepted"
  with Failure _ -> ()

let prop_io_roundtrip =
  QCheck.Test.make ~name:"overlay serialization roundtrips" ~count:10
    (QCheck.int_range 0 500) (fun seed ->
      let t =
        Brite.generate
          ~params:{ small_brite with Brite.n_paths = 50 }
          ~seed ()
      in
      overlays_equal t (Overlay_io.of_string (Overlay_io.to_string t)))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "topology"
    [
      ( "graph",
        [
          Alcotest.test_case "basics" `Quick test_graph_basic;
          Alcotest.test_case "shortest path" `Quick test_graph_shortest_path;
          Alcotest.test_case "disconnected" `Quick test_graph_disconnected;
          qc prop_shortest_path_valid;
        ] );
      ( "builder",
        [
          Alcotest.test_case "link/factor dedup" `Quick test_builder_dedup;
          Alcotest.test_case "cross-AS factors rejected" `Quick
            test_builder_foreign_factor_rejected;
          Alcotest.test_case "path dedup" `Quick test_builder_path_dedup;
          Alcotest.test_case "pruning" `Quick test_builder_prunes_unused;
          Alcotest.test_case "correlation sets" `Quick
            test_correlation_sets_partition;
          Alcotest.test_case "factor sharing map" `Quick
            test_links_sharing_factor;
        ] );
      ( "generators",
        [
          Alcotest.test_case "brite valid" `Quick test_brite_valid;
          Alcotest.test_case "brite deterministic" `Quick
            test_brite_deterministic;
          Alcotest.test_case "sparse valid" `Quick test_sparse_valid;
          Alcotest.test_case "sparse sparser than brite" `Quick
            test_sparse_is_sparser_than_brite;
          Alcotest.test_case "paper-scale defaults" `Slow
            test_paper_scale_defaults;
          Alcotest.test_case "intra links share factors" `Quick
            test_intra_links_share_factors;
          qc prop_generated_overlays_valid;
          qc prop_internet_connected;
        ] );
      ( "overlay_io",
        [
          Alcotest.test_case "string roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_io_file_roundtrip;
          Alcotest.test_case "rejects malformed input" `Quick
            test_io_rejects_garbage;
          qc prop_io_roundtrip;
        ] );
    ]
