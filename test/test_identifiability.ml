(* Identifiability analysis vs brute force.

   The module under test derives, from routing structure alone, (a)
   ambiguity classes — links sharing a complete path set — and (b)
   per-correlation-set existence/counts of inducible subsets via the
   union-closure of path signatures.  Both have obvious O(2^n) oracles
   on small random topologies: group links by their literal path sets,
   and test [Subsets.inducible] on every combination.  The properties
   here pin the closure to those oracles, and pin the enumeration
   pruner to the exhaustive fan-out it claims to be bit-identical
   to. *)

module Bitset = Tomo_util.Bitset
module Combin = Tomo_util.Combin
module Rng = Tomo_util.Rng
module Model = Tomo.Model
module Observations = Tomo.Observations
module Subsets = Tomo.Subsets
module Identifiability = Tomo.Identifiability

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let random_model rng =
  let n_links = 1 + Rng.int rng 10 in
  let n_corr = 1 + Rng.int rng n_links in
  let assignment = Array.init n_links (fun _ -> Rng.int rng n_corr) in
  let corr_sets =
    Array.init n_corr (fun c ->
        Array.of_list
          (List.filter (fun e -> assignment.(e) = c) (List.init n_links Fun.id)))
    |> Array.to_list
    |> List.filter (fun s -> Array.length s > 0)
    |> Array.of_list
  in
  let n_paths = 1 + Rng.int rng 8 in
  let paths =
    Array.init n_paths (fun _ ->
        let links =
          List.filter (fun _ -> Rng.bool rng ~p:0.4) (List.init n_links Fun.id)
        in
        match links with
        | [] -> [| Rng.int rng n_links |]
        | l -> Array.of_list l)
  in
  Model.make ~n_links ~paths ~corr_sets

let random_effective rng m =
  let eff = Bitset.create m.Model.n_links in
  for e = 0 to m.Model.n_links - 1 do
    if Rng.bool rng ~p:0.7 then Bitset.set eff e
  done;
  eff

(* O(C(n,k)) oracle: does correlation set [c] admit any inducible subset
   of each size, and how many? *)
let brute_counts m ~effective ~corr ~max_size =
  let links = Subsets.effective_corr_set m ~effective corr in
  Array.init max_size (fun i ->
      let k = i + 1 in
      List.length
        (List.filter
           (fun ls ->
             Subsets.inducible m ~effective (Subsets.make m ~corr ls))
           (Combin.combinations links k)))

(* On models this small the union-closure never hits its node budget, so
   the witness is exact: [true] iff an inducible subset of that size
   exists. *)
let prop_witness_matches_oracle =
  QCheck.Test.make ~name:"size witness equals brute-force existence"
    ~count:100 QCheck.small_int (fun seed ->
      let rng = Rng.create (31337 * (seed + 1)) in
      let m = random_model rng in
      let eff = random_effective rng m in
      let max_size = 3 in
      let ok = ref true in
      for c = 0 to Model.n_corr_sets m - 1 do
        let witness =
          Identifiability.inducible_size_witness m ~effective:eff ~corr:c
            ~max_size
        in
        let counts = brute_counts m ~effective:eff ~corr:c ~max_size in
        let n = Array.length (Subsets.effective_corr_set m ~effective:eff c) in
        for k = 1 to min max_size n do
          if witness.(k - 1) <> (counts.(k - 1) > 0) then ok := false
        done
      done;
      !ok)

let prop_analyze_counts_match_oracle =
  QCheck.Test.make ~name:"closure subset counts equal brute force"
    ~count:60 QCheck.small_int (fun seed ->
      let rng = Rng.create (65537 * (seed + 1)) in
      let m = random_model rng in
      let eff = random_effective rng m in
      let t = Identifiability.analyze m ~effective:eff in
      Array.for_all
        (fun (s : Identifiability.corr_stats) ->
          match s.Identifiability.inducible_by_size with
          | None -> true (* budget-capped: no exact claim made *)
          | Some counts ->
              counts
              = brute_counts m ~effective:eff ~corr:s.Identifiability.corr
                  ~max_size:t.Identifiability.max_size)
        t.Identifiability.corr)

let prop_ambiguity_classes_match_oracle =
  QCheck.Test.make ~name:"ambiguity classes equal path-set grouping"
    ~count:100 QCheck.small_int (fun seed ->
      let rng = Rng.create (2063 * (seed + 1)) in
      let m = random_model rng in
      let eff = random_effective rng m in
      let classes = Identifiability.ambiguity_classes m ~effective:eff in
      (* Oracle: group effective links by their literal path lists. *)
      let groups = Hashtbl.create 16 in
      for e = 0 to m.Model.n_links - 1 do
        if Bitset.get eff e then begin
          let key =
            String.concat ","
              (List.map string_of_int (Bitset.to_list m.Model.link_paths.(e)))
          in
          Hashtbl.replace groups key
            (match Hashtbl.find_opt groups key with
            | Some es -> e :: es
            | None -> [ e ])
        end
      done;
      let expected =
        Hashtbl.fold
          (fun _ es acc ->
            match es with _ :: _ :: _ -> List.rev es :: acc | _ -> acc)
          groups []
        |> List.sort compare
      in
      let actual =
        Array.to_list classes
        |> List.map (fun c -> Array.to_list c.Identifiability.links)
        |> List.sort compare
      in
      actual = expected
      && Array.for_all
           (fun (c : Identifiability.link_class) ->
             c.Identifiability.representative = c.Identifiability.links.(0))
           classes)

(* The documented guarantee of [max_identifiable_size]: below it, every
   pair of inducible subsets has distinct path coverage. *)
let prop_max_identifiable_size_sound =
  QCheck.Test.make ~name:"subsets below max identifiable size distinct"
    ~count:60 QCheck.small_int (fun seed ->
      let rng = Rng.create (7507 * (seed + 1)) in
      let m = random_model rng in
      let eff = random_effective rng m in
      let t = Identifiability.analyze m ~effective:eff in
      Array.for_all
        (fun (s : Identifiability.corr_stats) ->
          match s.Identifiability.max_identifiable_size with
          | None | Some 0 -> true
          | Some k_max ->
              let links =
                Subsets.effective_corr_set m ~effective:eff
                  s.Identifiability.corr
              in
              let inducible =
                List.concat_map
                  (fun k ->
                    List.filter
                      (fun ls ->
                        Subsets.inducible m ~effective:eff
                          (Subsets.make m ~corr:s.Identifiability.corr ls))
                      (Combin.combinations links k))
                  (List.init k_max (fun i -> i + 1))
              in
              let coverages =
                List.map
                  (fun ls -> Bitset.to_list (Model.paths_of_links m ls))
                  inducible
              in
              List.length (List.sort_uniq compare coverages)
              = List.length coverages)
        t.Identifiability.corr)

(* The pruner's contract: the enumerated subset list and the truncation
   counter are bit-identical with pruning on and off, including under
   tight find caps and visit budgets. *)
let enumerate_with ~prune m ~effective ~max_size ~limit_per_set =
  let saved = Subsets.ident_prune_enabled () in
  Subsets.set_ident_prune prune;
  Fun.protect
    ~finally:(fun () -> Subsets.set_ident_prune saved)
    (fun () ->
      Tomo_obs.Metrics.set_enabled true;
      Tomo_obs.Metrics.reset ();
      let subsets = Subsets.enumerate m ~effective ~max_size ~limit_per_set in
      let capped =
        Tomo_obs.Metrics.counter_value
          (Tomo_obs.Metrics.counter "subsets_enumeration_capped")
      in
      Tomo_obs.Metrics.set_enabled false;
      Tomo_obs.Metrics.reset ();
      (List.map Subsets.key subsets, capped))

let prop_pruned_enumeration_identical =
  QCheck.Test.make ~name:"pruned enumeration bit-identical to exhaustive"
    ~count:100
    QCheck.(pair small_int (int_range 1 6))
    (fun (seed, limit_per_set) ->
      let rng = Rng.create (9973 * (seed + 1)) in
      let m = random_model rng in
      let eff = random_effective rng m in
      enumerate_with ~prune:true m ~effective:eff ~max_size:3 ~limit_per_set
      = enumerate_with ~prune:false m ~effective:eff ~max_size:3
          ~limit_per_set)

(* End-to-end: the full Correlation-complete pipeline over random
   observations must produce bit-identical estimates either way. *)
let prop_pruned_estimates_identical =
  QCheck.Test.make ~name:"pruned pipeline estimates bit-identical"
    ~count:25 QCheck.small_int (fun seed ->
      let rng = Rng.create (524287 * (seed + 1)) in
      let m = random_model rng in
      let t_intervals = 12 in
      let obs = Observations.create ~t_intervals ~n_paths:m.Model.n_paths in
      for i = 0 to t_intervals - 1 do
        let good = Bitset.create m.Model.n_paths in
        for p = 0 to m.Model.n_paths - 1 do
          if Rng.bool rng ~p:0.7 then Bitset.set good p
        done;
        Observations.set_interval_statuses obs ~interval:i ~good
      done;
      let compute prune =
        let saved = Subsets.ident_prune_enabled () in
        Subsets.set_ident_prune prune;
        Fun.protect
          ~finally:(fun () -> Subsets.set_ident_prune saved)
          (fun () -> fst (Tomo.Correlation_complete.compute m obs))
      in
      let on = compute true and off = compute false in
      let open Tomo.Pc_result in
      Array.for_all2
        (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
        on.marginals off.marginals
      && on.identifiable = off.identifiable
      && on.n_rows = off.n_rows
      && on.n_vars = off.n_vars)

(* Deterministic spot checks on hand-built topologies. *)

let test_chain_not_identifiable () =
  (* Two links in series on one path: indistinguishable — one class. *)
  let m =
    Model.make ~n_links:2 ~paths:[| [| 0; 1 |] |] ~corr_sets:[| [| 0; 1 |] |]
  in
  let eff = Identifiability.covered_links m in
  let classes = Identifiability.ambiguity_classes m ~effective:eff in
  check_int "one class" 1 (Array.length classes);
  check_int "representative" 0 classes.(0).Identifiability.representative;
  let t = Identifiability.analyze m ~effective:eff in
  check_bool "link 0 ambiguous" true (Identifiability.link_ambiguous t 0);
  check_bool "link 1 ambiguous" true (Identifiability.link_ambiguous t 1);
  (* Only the pair {0,1} is inducible: one signature of size 2. *)
  let w = Identifiability.inducible_size_witness m ~effective:eff ~corr:0 ~max_size:3 in
  check_bool "no singleton inducible" false w.(0);
  check_bool "the pair is inducible" true w.(1)

let test_star_identifiable () =
  (* Three links, each with a private path: Condition 1 holds, every
     subset inducible. *)
  let m =
    Model.make ~n_links:3
      ~paths:[| [| 0 |]; [| 1 |]; [| 2 |] |]
      ~corr_sets:[| [| 0; 1; 2 |] |]
  in
  let eff = Identifiability.covered_links m in
  check_int "no ambiguity classes" 0
    (Array.length (Identifiability.ambiguity_classes m ~effective:eff));
  let t = Identifiability.analyze m ~effective:eff in
  match t.Identifiability.corr.(0).Identifiability.inducible_by_size with
  | Some counts ->
      Alcotest.(check (array int)) "all subsets inducible" [| 3; 3; 1 |] counts
  | None -> Alcotest.fail "closure unexpectedly capped"

let test_uncovered_links_excluded () =
  (* A link with no paths is neither effective nor ambiguous. *)
  let m =
    Model.make ~n_links:3
      ~paths:[| [| 0 |]; [| 0 |] |]
      ~corr_sets:[| [| 0; 1; 2 |] |]
  in
  let eff = Identifiability.covered_links m in
  check_bool "covered" true (Bitset.get eff 0);
  check_bool "uncovered 1" false (Bitset.get eff 1);
  check_bool "uncovered 2" false (Bitset.get eff 2);
  let t = Identifiability.analyze m ~effective:eff in
  check_int "one effective link" 1 t.Identifiability.n_effective;
  check_int "no classes" 0 (Array.length t.Identifiability.classes)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "identifiability"
    [
      ( "oracle",
        [
          qc prop_witness_matches_oracle;
          qc prop_analyze_counts_match_oracle;
          qc prop_ambiguity_classes_match_oracle;
          qc prop_max_identifiable_size_sound;
        ] );
      ( "pruning",
        [
          qc prop_pruned_enumeration_identical;
          qc prop_pruned_estimates_identical;
        ] );
      ( "topologies",
        [
          Alcotest.test_case "chain is one ambiguity class" `Quick
            test_chain_not_identifiable;
          Alcotest.test_case "star satisfies Condition 1" `Quick
            test_star_identifiable;
          Alcotest.test_case "uncovered links excluded" `Quick
            test_uncovered_links_excluded;
        ] );
    ]
