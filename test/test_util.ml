(* Tests for the utility substrate: bit sets, RNG, statistics and
   combinatorics. *)

module Bitset = Tomo_util.Bitset
module Rng = Tomo_util.Rng
module Stats = Tomo_util.Stats
module Combin = Tomo_util.Combin

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Bitset                                                              *)
(* ------------------------------------------------------------------ *)

let test_bitset_basic () =
  let b = Bitset.create 130 in
  check_int "empty count" 0 (Bitset.count b);
  check_bool "is_empty" true (Bitset.is_empty b);
  Bitset.set b 0;
  Bitset.set b 63;
  Bitset.set b 64;
  Bitset.set b 129;
  check_int "count after sets" 4 (Bitset.count b);
  check_bool "get 63" true (Bitset.get b 63);
  check_bool "get 62" false (Bitset.get b 62);
  Bitset.clear b 63;
  check_bool "cleared" false (Bitset.get b 63);
  check_int "count after clear" 3 (Bitset.count b)

let test_bitset_set_all () =
  let b = Bitset.create 70 in
  Bitset.set_all b;
  check_int "all bits set" 70 (Bitset.count b);
  Bitset.clear_all b;
  check_int "all cleared" 0 (Bitset.count b)

let test_bitset_bounds () =
  let b = Bitset.create 10 in
  Alcotest.check_raises "set out of range"
    (Invalid_argument "Bitset: index out of range") (fun () ->
      Bitset.set b 10);
  Alcotest.check_raises "negative index"
    (Invalid_argument "Bitset: index out of range") (fun () ->
      ignore (Bitset.get b (-1)))

let test_bitset_ops () =
  let a = Bitset.of_list 100 [ 1; 5; 64; 99 ] in
  let b = Bitset.of_list 100 [ 5; 64; 70 ] in
  check_int "inter" 2 (Bitset.count (Bitset.inter a b));
  check_int "union" 5 (Bitset.count (Bitset.union a b));
  check_int "diff" 2 (Bitset.count (Bitset.diff a b));
  check_int "count_inter" 2 (Bitset.count_inter a b);
  check_bool "not disjoint" false (Bitset.disjoint a b);
  check_bool "disjoint" true
    (Bitset.disjoint a (Bitset.of_list 100 [ 0; 2 ]));
  check_bool "subset yes" true
    (Bitset.subset (Bitset.of_list 100 [ 5; 64 ]) a);
  check_bool "subset no" false (Bitset.subset b a)

let test_bitset_iteration () =
  let a = Bitset.of_list 200 [ 3; 77; 150 ] in
  Alcotest.(check (list int)) "to_list" [ 3; 77; 150 ] (Bitset.to_list a);
  check_int "fold sum" 230 (Bitset.fold ( + ) 0 a)

(* ---- Flat-word battery ----

   The word-level kernels ([*_into], [copy_into], the word iterators and
   the packed [iter]/[count]) all rely on one storage invariant: bits
   past [len] in the last word stay zero.  Exercise every operation at
   the boundary lengths where the tail mask matters — 0, one bit, one
   word minus one, exactly one word, just past it, and a multi-word
   set. *)

let boundary_lengths = [ 0; 1; 62; 63; 64; 127; 128; 200 ]

let len_and_lists_gen =
  QCheck.Gen.(
    oneofl boundary_lengths >>= fun len ->
    let idx =
      if len = 0 then return []
      else list_size (int_bound 60) (int_bound (len - 1))
    in
    pair idx idx >>= fun (a, b) -> return (len, a, b))

let len_and_lists = QCheck.make len_and_lists_gen

let prop_bitset_word_ops_invariant =
  QCheck.Test.make
    ~name:"word-level ops preserve the tail invariant at boundary lengths"
    ~count:300 len_and_lists (fun (len, la, lb) ->
      let a = Bitset.of_list len la and b = Bitset.of_list len lb in
      let after op =
        let t = Bitset.copy a in
        op t;
        Bitset.invariant t
      in
      Bitset.invariant a
      && after (fun t -> Bitset.union_into ~into:t b)
      && after (fun t -> Bitset.inter_into ~into:t b)
      && after (fun t -> Bitset.diff_into ~into:t b)
      && after (fun t -> Bitset.copy_into ~into:t b)
      && after Bitset.set_all
      && after Bitset.clear_all
      &&
      let s = Bitset.copy a in
      Bitset.set_all s;
      Bitset.count s = len)

let prop_bitset_inplace_equals_fresh =
  QCheck.Test.make
    ~name:"in-place word ops agree with the allocating versions" ~count:300
    len_and_lists (fun (len, la, lb) ->
      let a = Bitset.of_list len la and b = Bitset.of_list len lb in
      let via op_into fresh =
        let t = Bitset.copy a in
        op_into t;
        Bitset.equal t fresh
      in
      via (fun t -> Bitset.union_into ~into:t b) (Bitset.union a b)
      && via (fun t -> Bitset.inter_into ~into:t b) (Bitset.inter a b)
      && via (fun t -> Bitset.diff_into ~into:t b) (Bitset.diff a b)
      && via (fun t -> Bitset.copy_into ~into:t b) b
      && Bitset.count_inter a b = Bitset.count (Bitset.inter a b))

(* Reconstruct the membership list straight from the packed words: the
   iterators hand over (word index, word) pairs, so any stray tail bit
   or mis-based word index shows up as a list mismatch. *)
let bits_of_words t =
  let acc = ref [] in
  Bitset.iter_words
    (fun wi w ->
      for b = Bitset.word_bits - 1 downto 0 do
        if (w lsr b) land 1 = 1 then
          acc := ((wi * Bitset.word_bits) + b) :: !acc
      done)
    t;
  List.sort compare !acc

(* Naive one-bit-at-a-time popcount — the oracle for the SWAR count. *)
let slow_popcount w =
  let n = ref 0 in
  for b = 0 to Sys.int_size - 1 do
    n := !n + ((w lsr b) land 1)
  done;
  !n

let prop_bitset_word_iterators =
  QCheck.Test.make ~name:"word iterators expose exactly the stored bits"
    ~count:300 len_and_lists (fun (len, la, _) ->
      let a = Bitset.of_list len la in
      bits_of_words a = Bitset.to_list a
      && Bitset.fold_words (fun acc _ w -> acc + slow_popcount w) 0 a
         = Bitset.count a)

let prop_bitset_iter_matches_to_list =
  QCheck.Test.make
    ~name:"packed iter visits set bits in ascending order" ~count:300
    len_and_lists (fun (len, la, _) ->
      let a = Bitset.of_list len la in
      let acc = ref [] in
      Bitset.iter (fun i -> acc := i :: !acc) a;
      List.rev !acc = Bitset.to_list a)

let prop_bitset_unsafe_agrees =
  QCheck.Test.make ~name:"unsafe_set/unsafe_get agree with checked access"
    ~count:200 len_and_lists (fun (len, la, _) ->
      let a = Bitset.of_list len la in
      let b = Bitset.create len in
      List.iter (Bitset.unsafe_set b) (List.sort_uniq compare la);
      Bitset.equal a b
      && List.for_all
           (fun i -> Bitset.unsafe_get a i = Bitset.get a i)
           (List.init len (fun i -> i)))

let bitset_list_gen =
  QCheck.Gen.(list_size (int_bound 40) (int_bound 199))

let prop_bitset_roundtrip =
  QCheck.Test.make ~name:"bitset of_list/to_list roundtrip" ~count:200
    (QCheck.make bitset_list_gen) (fun l ->
      let dedup = List.sort_uniq compare l in
      Bitset.to_list (Bitset.of_list 200 l) = dedup)

let prop_bitset_demorgan =
  QCheck.Test.make ~name:"bitset |a∪b| = |a|+|b|-|a∩b|" ~count:200
    QCheck.(pair (make bitset_list_gen) (make bitset_list_gen))
    (fun (la, lb) ->
      let a = Bitset.of_list 200 la and b = Bitset.of_list 200 lb in
      Bitset.count (Bitset.union a b)
      = Bitset.count a + Bitset.count b - Bitset.count_inter a b)

let prop_bitset_diff_disjoint =
  QCheck.Test.make ~name:"bitset diff is disjoint from subtrahend"
    ~count:200
    QCheck.(pair (make bitset_list_gen) (make bitset_list_gen))
    (fun (la, lb) ->
      let a = Bitset.of_list 200 la and b = Bitset.of_list 200 lb in
      Bitset.disjoint (Bitset.diff a b) b)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_reproducible () =
  let draw seed =
    let r = Rng.create seed in
    Array.init 10 (fun _ -> Rng.int r 1000)
  in
  Alcotest.(check (array int)) "same seed same stream" (draw 42) (draw 42);
  check_bool "different seeds differ" true (draw 42 <> draw 43)

let test_rng_split_independent () =
  let r = Rng.create 7 in
  let a = Rng.split r ~label:"a" and b = Rng.split r ~label:"b" in
  let da = Array.init 8 (fun _ -> Rng.int a 1_000_000) in
  let db = Array.init 8 (fun _ -> Rng.int b 1_000_000) in
  check_bool "labels give distinct streams" true (da <> db);
  let a' = Rng.split (Rng.create 7) ~label:"a" in
  let da' = Array.init 8 (fun _ -> Rng.int a' 1_000_000) in
  Alcotest.(check (array int)) "split is deterministic" da da'

let test_rng_split_int () =
  let r = Rng.create 7 in
  let stream g = Array.init 8 (fun _ -> Rng.int g 1_000_000) in
  let a = stream (Rng.split_int r 0) and b = stream (Rng.split_int r 1) in
  check_bool "keys give distinct streams" true (a <> b);
  Alcotest.(check (array int))
    "split_int is deterministic" a
    (stream (Rng.split_int (Rng.create 7) 0));
  (* derivation depends on the seed only, never the draw position — the
     property the per-interval simulator fan-out relies on *)
  let r' = Rng.create 7 in
  ignore (Rng.int r' 100);
  ignore (Rng.float r' 1.0);
  Alcotest.(check (array int))
    "split_int ignores consumed draws" a
    (stream (Rng.split_int r' 0));
  (* and it must not collide with the string-labelled splits *)
  check_bool "distinct from split ~label" true
    (a <> stream (Rng.split r ~label:"0"))

let test_rng_bool_bias () =
  let r = Rng.create 11 in
  let n = 20_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bool r ~p:0.3 then incr hits
  done;
  let f = float_of_int !hits /. float_of_int n in
  check_bool "p=0.3 within 3 sigma" true (abs_float (f -. 0.3) < 0.012)

let test_rng_bool_extremes () =
  let r = Rng.create 1 in
  check_bool "p=0 never" false (Rng.bool r ~p:0.0);
  check_bool "p=1 always" true (Rng.bool r ~p:1.0)

let test_rng_sample () =
  let r = Rng.create 3 in
  let a = Array.init 20 (fun i -> i) in
  let s = Rng.sample r a 8 in
  check_int "sample size" 8 (Array.length s);
  let sorted = Array.to_list s |> List.sort_uniq compare in
  check_int "sample distinct" 8 (List.length sorted);
  Alcotest.check_raises "oversample rejected"
    (Invalid_argument "Rng.sample: bad sample size") (fun () ->
      ignore (Rng.sample r a 21))

let test_rng_pick_weighted () =
  let r = Rng.create 5 in
  let counts = Array.make 3 0 in
  for _ = 1 to 10_000 do
    let i = Rng.pick_weighted r [| 1.0; 0.0; 3.0 |] in
    counts.(i) <- counts.(i) + 1
  done;
  check_int "zero weight never chosen" 0 counts.(1);
  check_bool "weights respected" true
    (float_of_int counts.(2) /. float_of_int counts.(0) > 2.0)

let test_rng_uniform_range () =
  let r = Rng.create 9 in
  for _ = 1 to 1000 do
    let x = Rng.uniform r ~lo:0.01 ~hi:1.0 in
    if x < 0.01 || x >= 1.0 then Alcotest.fail "uniform out of range"
  done

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_basic () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "mean" 2.5 (Stats.mean xs);
  check_float "variance" (5.0 /. 3.0) (Stats.variance xs);
  check_float "median" 2.5 (Stats.median xs);
  check_float "min" 1.0 (Stats.minimum xs);
  check_float "max" 4.0 (Stats.maximum xs)

let test_stats_quantile () =
  let xs = [| 10.0; 20.0; 30.0 |] in
  check_float "q0" 10.0 (Stats.quantile xs 0.0);
  check_float "q1" 30.0 (Stats.quantile xs 1.0);
  check_float "q0.5" 20.0 (Stats.quantile xs 0.5);
  check_float "q0.25 interpolates" 15.0 (Stats.quantile xs 0.25)

let test_stats_mae () =
  check_float "mae" 0.5
    (Stats.mean_abs_error [| 0.0; 1.0 |] [| 0.5; 0.5 |]);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Stats.mean_abs_error: length mismatch") (fun () ->
      ignore (Stats.mean_abs_error [| 1.0 |] [| 1.0; 2.0 |]))

let test_stats_cdf () =
  let xs = [| 0.1; 0.2; 0.2; 0.9 |] in
  let pts = Stats.cdf xs ~points:[| 0.0; 0.2; 1.0 |] in
  match pts with
  | [ (_, f0); (_, f1); (_, f2) ] ->
      check_float "F(0)" 0.0 f0;
      check_float "F(0.2)" 0.75 f1;
      check_float "F(1)" 1.0 f2
  | _ -> Alcotest.fail "wrong number of CDF points"

let test_stats_histogram () =
  let xs = [| 0.05; 0.15; 0.15; 0.95; -1.0; 2.0 |] in
  let h = Stats.histogram xs ~bins:10 ~lo:0.0 ~hi:1.0 in
  check_int "bin0 (incl. clamped low)" 2 h.(0);
  check_int "bin1" 2 h.(1);
  check_int "last bin (incl. clamped high)" 2 h.(9)

let sum = Array.fold_left ( + ) 0

let test_stats_histogram_edges () =
  (* x in (lo - width, lo): int_of_float truncation used to file this
     under bin 0 as if it were in range; [`Drop] must exclude it. *)
  let h =
    Stats.histogram ~out_of_range:`Drop [| -0.05 |] ~bins:10 ~lo:0.0 ~hi:1.0
  in
  check_int "just-below-lo is out of range" 0 (sum h);
  let h =
    Stats.histogram ~out_of_range:`Clamp [| -0.05 |] ~bins:10 ~lo:0.0 ~hi:1.0
  in
  check_int "just-below-lo clamps to bin 0" 1 h.(0);
  (* x = hi sits outside [lo, hi): last bin under clamp, gone under
     drop — both ends handled the same way. *)
  let clamp = Stats.histogram [| 1.0 |] ~bins:10 ~lo:0.0 ~hi:1.0 in
  check_int "x = hi clamps to the last bin" 1 clamp.(9);
  let drop =
    Stats.histogram ~out_of_range:`Drop [| 1.0 |] ~bins:10 ~lo:0.0 ~hi:1.0
  in
  check_int "x = hi drops" 0 (sum drop);
  (* NaN is dropped in both modes *)
  check_int "NaN dropped (clamp)" 1
    (sum (Stats.histogram [| nan; 0.5 |] ~bins:4 ~lo:0.0 ~hi:1.0));
  check_int "NaN dropped (drop)" 1
    (sum
       (Stats.histogram ~out_of_range:`Drop
          [| nan; 0.5 |]
          ~bins:4 ~lo:0.0 ~hi:1.0))

let test_stats_nan_rejected () =
  Alcotest.check_raises "quantile"
    (Invalid_argument "Stats.quantile: NaN sample") (fun () ->
      ignore (Stats.quantile [| 0.1; nan |] 0.5));
  Alcotest.check_raises "minimum"
    (Invalid_argument "Stats.minimum: NaN sample") (fun () ->
      ignore (Stats.minimum [| nan; 0.1 |]));
  Alcotest.check_raises "maximum"
    (Invalid_argument "Stats.maximum: NaN sample") (fun () ->
      ignore (Stats.maximum [| 0.1; nan |]))

let finite_samples =
  QCheck.(array_of_size Gen.(int_range 1 60) (float_range (-2.0) 2.0))

let prop_histogram_conservation =
  QCheck.Test.make ~name:"histogram: clamp counts every sample" ~count:200
    finite_samples (fun xs ->
      sum (Stats.histogram xs ~bins:7 ~lo:0.0 ~hi:1.0) = Array.length xs)

let prop_histogram_drop_vs_clamp =
  QCheck.Test.make
    ~name:"histogram: drop differs from clamp only in the edge bins"
    ~count:200 finite_samples (fun xs ->
      let bins = 7 in
      let clamp = Stats.histogram xs ~bins ~lo:0.0 ~hi:1.0 in
      let drop = Stats.histogram ~out_of_range:`Drop xs ~bins ~lo:0.0 ~hi:1.0 in
      let ok = ref (drop.(0) <= clamp.(0) && drop.(bins - 1) <= clamp.(bins - 1)) in
      for b = 1 to bins - 2 do
        if drop.(b) <> clamp.(b) then ok := false
      done;
      !ok)

let prop_quantile_ends =
  QCheck.Test.make ~name:"quantile: q=0 is minimum, q=1 is maximum"
    ~count:200 finite_samples (fun xs ->
      Stats.quantile xs 0.0 = Stats.minimum xs
      && Stats.quantile xs 1.0 = Stats.maximum xs)

let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantile: monotone in q" ~count:200
    QCheck.(pair finite_samples (pair (float_bound_inclusive 1.0) (float_bound_inclusive 1.0)))
    (fun (xs, (q1, q2)) ->
      let lo = min q1 q2 and hi = max q1 q2 in
      Stats.quantile xs lo <= Stats.quantile xs hi +. 1e-12)

let prop_stats_mean_bounds =
  QCheck.Test.make ~name:"mean between min and max" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 50) (float_bound_exclusive 100.))
    (fun xs ->
      let m = Stats.mean xs in
      m >= Stats.minimum xs -. 1e-9 && m <= Stats.maximum xs +. 1e-9)

let prop_stats_cdf_monotone =
  QCheck.Test.make ~name:"cdf monotone, ends at 1" ~count:100
    QCheck.(array_of_size Gen.(int_range 1 60) (float_bound_exclusive 1.0))
    (fun xs ->
      let curve = Stats.cdf_curve xs ~steps:20 ~max_x:1.0 in
      let fs = List.map snd curve in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-12 && mono rest
        | _ -> true
      in
      mono fs && abs_float (List.nth fs (List.length fs - 1) -. 1.0) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Combin                                                              *)
(* ------------------------------------------------------------------ *)

let test_choose () =
  check_int "C(5,2)" 10 (Combin.choose 5 2);
  check_int "C(5,0)" 1 (Combin.choose 5 0);
  check_int "C(5,5)" 1 (Combin.choose 5 5);
  check_int "C(5,6)" 0 (Combin.choose 5 6);
  check_int "C(5,-1)" 0 (Combin.choose 5 (-1));
  check_int "C(40,20)" 137846528820 (Combin.choose 40 20)

(* Saturation at the overflow boundary.  C(66,33) ≈ 7.2e18 exceeds
   [max_int] on 64-bit; the old guard multiplied first and checked the
   wrapped product afterwards, which could land back in range and
   return garbage instead of [max_int]. *)
let test_choose_overflow () =
  check_int "C(66,33) saturates" max_int (Combin.choose 66 33);
  check_int "C(1000,500) saturates" max_int (Combin.choose 1000 500);
  check_int "C(n,1) = n stays exact at huge n" (max_int / 2)
    (Combin.choose (max_int / 2) 1);
  check_int "C(10000,2)" 49995000 (Combin.choose 10000 2);
  (* The guard is conservative: a value may saturate even though the
     exact result fits (its intermediate product overflows).  Either
     way the result must never be a wrapped (negative or small) int. *)
  check_bool "C(64,32) exact or saturated" true
    (let v = Combin.choose 64 32 in
     v = 1832624140942590534 || v = max_int)

(* Reference via Pascal's triangle with saturating addition: exact
   whenever the true value fits in [int], [max_int] when it genuinely
   overflows.  [choose] may additionally saturate conservatively, but
   must never return anything other than the exact value or
   [max_int]. *)
let prop_choose_exact_or_saturated =
  QCheck.Test.make ~name:"choose is exact or saturates to max_int"
    ~count:200
    QCheck.(pair (int_range 0 120) (int_range 0 120))
    (fun (n, k) ->
      let sat_add a b = if a + b < 0 then max_int else a + b in
      let row = ref [| 1 |] in
      for i = 1 to n do
        let prev = !row in
        row :=
          Array.init (i + 1) (fun j ->
              let get x = if x < 0 || x >= i then 0 else prev.(x) in
              sat_add (get (j - 1)) (get j))
      done;
      let reference = if k > n then 0 else !row.(k) in
      let c = Combin.choose n k in
      c = reference || (c = max_int && reference > 1_000_000))

let test_combinations () =
  let cs = Combin.combinations [| 1; 2; 3; 4 |] 2 in
  check_int "C(4,2) count" 6 (List.length cs);
  Alcotest.(check (list (list int)))
    "lexicographic order"
    [ [ 1; 2 ]; [ 1; 3 ]; [ 1; 4 ]; [ 2; 3 ]; [ 2; 4 ]; [ 3; 4 ] ]
    (List.map Array.to_list cs)

let test_combinations_edge () =
  check_int "k=0 yields the empty set" 1
    (List.length (Combin.combinations [| 1; 2 |] 0));
  check_int "k>n yields nothing" 0
    (List.length (Combin.combinations [| 1; 2 |] 3))

let test_subsets_by_size () =
  let subsets = Combin.subsets_up_to [| 1; 2; 3 |] ~max_size:2 ~limit:100 in
  check_int "3 singletons + 3 pairs" 6 (List.length subsets);
  (* Increasing size: all singletons come before any pair. *)
  let sizes = List.map Array.length subsets in
  Alcotest.(check (list int)) "size order" [ 1; 1; 1; 2; 2; 2 ] sizes

let test_subsets_limit () =
  let subsets = Combin.subsets_up_to [| 1; 2; 3; 4 |] ~max_size:4 ~limit:5 in
  check_int "limit respected" 5 (List.length subsets)

let test_subsets_stop () =
  let seen = ref 0 in
  let n =
    Combin.iter_subsets_by_size [| 1; 2; 3 |] ~max_size:3 ~limit:100
      (fun _ ->
        incr seen;
        if !seen = 2 then `Stop else `Continue)
  in
  check_int "stopped after 2" 2 n

let test_iter_sized () =
  let collect ~size ~limit =
    let acc = ref [] in
    let n =
      Combin.iter_sized [| 1; 2; 3; 4 |] ~size ~limit (fun c ->
          acc := Array.to_list c :: !acc;
          `Continue)
    in
    (n, List.rev !acc)
  in
  let n, cs = collect ~size:2 ~limit:100 in
  check_int "all pairs visited" 6 n;
  Alcotest.(check (list (list int)))
    "lexicographic order"
    [ [ 1; 2 ]; [ 1; 3 ]; [ 1; 4 ]; [ 2; 3 ]; [ 2; 4 ]; [ 3; 4 ] ]
    cs;
  let n, cs = collect ~size:2 ~limit:4 in
  check_int "limit stops before the 5th visit" 4 n;
  check_int "limited prefix" 4 (List.length cs);
  let n, _ = collect ~size:0 ~limit:100 in
  check_int "size 0 visits the empty set" 1 n;
  let stopped = ref 0 in
  let n =
    Combin.iter_sized [| 1; 2; 3; 4 |] ~size:1 ~limit:100 (fun _ ->
        incr stopped;
        if !stopped = 2 then `Stop else `Continue)
  in
  check_int "callback stop counts the stopping visit" 2 n

let prop_combination_count =
  QCheck.Test.make ~name:"combination count equals binomial" ~count:50
    QCheck.(pair (int_range 0 9) (int_range 0 9))
    (fun (n, k) ->
      let xs = Array.init n (fun i -> i) in
      List.length (Combin.combinations xs k) = Combin.choose n k)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "util"
    [
      ( "bitset",
        [
          Alcotest.test_case "basic set/get/clear" `Quick test_bitset_basic;
          Alcotest.test_case "set_all/clear_all" `Quick test_bitset_set_all;
          Alcotest.test_case "bounds checking" `Quick test_bitset_bounds;
          Alcotest.test_case "set operations" `Quick test_bitset_ops;
          Alcotest.test_case "iteration" `Quick test_bitset_iteration;
          qc prop_bitset_roundtrip;
          qc prop_bitset_demorgan;
          qc prop_bitset_diff_disjoint;
          qc prop_bitset_word_ops_invariant;
          qc prop_bitset_inplace_equals_fresh;
          qc prop_bitset_word_iterators;
          qc prop_bitset_iter_matches_to_list;
          qc prop_bitset_unsafe_agrees;
        ] );
      ( "rng",
        [
          Alcotest.test_case "reproducible" `Quick test_rng_reproducible;
          Alcotest.test_case "split independence" `Quick
            test_rng_split_independent;
          Alcotest.test_case "biased bool" `Quick test_rng_bool_bias;
          Alcotest.test_case "bool extremes" `Quick test_rng_bool_extremes;
          Alcotest.test_case "sampling" `Quick test_rng_sample;
          Alcotest.test_case "weighted pick" `Quick test_rng_pick_weighted;
          Alcotest.test_case "uniform range" `Quick test_rng_uniform_range;
          Alcotest.test_case "integer-keyed split" `Quick test_rng_split_int;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/variance/median" `Quick test_stats_basic;
          Alcotest.test_case "quantiles" `Quick test_stats_quantile;
          Alcotest.test_case "mean abs error" `Quick test_stats_mae;
          Alcotest.test_case "cdf" `Quick test_stats_cdf;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
          Alcotest.test_case "histogram edges" `Quick
            test_stats_histogram_edges;
          Alcotest.test_case "NaN rejection" `Quick test_stats_nan_rejected;
          qc prop_stats_mean_bounds;
          qc prop_stats_cdf_monotone;
          qc prop_histogram_conservation;
          qc prop_histogram_drop_vs_clamp;
          qc prop_quantile_ends;
          qc prop_quantile_monotone;
        ] );
      ( "combin",
        [
          Alcotest.test_case "binomial" `Quick test_choose;
          Alcotest.test_case "binomial overflow saturation" `Quick
            test_choose_overflow;
          Alcotest.test_case "sized iteration" `Quick test_iter_sized;
          Alcotest.test_case "combinations" `Quick test_combinations;
          Alcotest.test_case "combination edges" `Quick
            test_combinations_edge;
          Alcotest.test_case "subsets by size" `Quick test_subsets_by_size;
          Alcotest.test_case "subset limit" `Quick test_subsets_limit;
          Alcotest.test_case "early stop" `Quick test_subsets_stop;
          qc prop_combination_count;
          qc prop_choose_exact_or_saturated;
        ] );
    ]
