(* Cross-backend differential harness for the flat-memory substrate.

   The production kernels run on flat storage — row-major [Matrix]
   buffers, CSR snapshots, packed bit words — with unsafe accessors in
   the hot loops.  Each test here re-implements the same algorithm over
   naive boxed storage ([float array array], fresh vectors, closure
   dispatch) with the *identical* floating-point operation sequence, and
   asserts the two backends agree bit for bit on random fixtures.  A
   layout or indexing bug in the flat path (wrong stride, stale offset,
   missed tail word) shows up as a bitwise mismatch long before it is
   large enough to trip an approximate tolerance. *)

module Matrix = Tomo_linalg.Matrix
module Gauss = Tomo_linalg.Gauss
module Sparse = Tomo_linalg.Sparse
module Sparse_gauss = Tomo_linalg.Sparse_gauss
module Nullspace = Tomo_linalg.Nullspace
module Cgls = Tomo_linalg.Cgls
module Rng = Tomo_util.Rng

let bits_equal a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(* Bitwise comparison of a flat matrix against a boxed reference.  The
   optional [loose_zeros] flag relaxes only the zero-sign distinction
   (the sparse kernel never stores a zero, so it cannot reproduce a
   dense [-0.0]). *)
let matrices_agree ?(loose_zeros = false) m (ref_rows : float array array) =
  Matrix.rows m = Array.length ref_rows
  && (Matrix.rows m = 0 || Matrix.cols m = Array.length ref_rows.(0))
  &&
  let ok = ref true in
  for i = 0 to Matrix.rows m - 1 do
    for j = 0 to Matrix.cols m - 1 do
      let x = Matrix.get m i j and y = ref_rows.(i).(j) in
      let same =
        if loose_zeros && x = 0.0 && y = 0.0 then true else bits_equal x y
      in
      if not same then ok := false
    done
  done;
  !ok

let vectors_agree x y =
  Array.length x = Array.length y
  &&
  let ok = ref true in
  Array.iteri (fun i v -> if not (bits_equal v y.(i)) then ok := false) x;
  !ok

(* ------------------------------------------------------------------ *)
(* Random fixtures                                                     *)
(* ------------------------------------------------------------------ *)

let random_dense rng r c =
  Matrix.init r c (fun _ _ ->
      (* Mix exact small integers (likely cancellations, rank deficiency)
         with irrational-looking noise (real rounding behaviour). *)
      if Rng.bool rng ~p:0.4 then float_of_int (Rng.int rng 5 - 2)
      else Rng.uniform rng ~lo:(-1.0) ~hi:1.0)

(* A random incidence system: each row names a distinct ascending subset
   of [cols] variables — the shape every tomography candidate row has. *)
let random_incidence rng ~rows ~cols =
  Array.init rows (fun _ ->
      let acc = ref [] in
      for j = cols - 1 downto 0 do
        if Rng.bool rng ~p:0.35 then acc := j :: !acc
      done;
      Array.of_list !acc)

let matrix_of_incidence ~rows ~cols idxs =
  let m = Matrix.make rows cols 0.0 in
  Array.iteri (fun i row -> Array.iter (fun j -> Matrix.set m i j 1.0) row) idxs;
  m

(* ------------------------------------------------------------------ *)
(* Reference kernels (boxed storage, identical operation sequence)     *)
(* ------------------------------------------------------------------ *)

(* Mirror of [Gauss.rref_dense] over [float array array]: same partial
   pivoting (strictly-greater keeps the earliest row), same relative
   threshold, same normalise-then-eliminate order. *)
let ref_rref ?(tol = Gauss.default_tol) (rows : float array array) nc =
  let a = Array.map Array.copy rows in
  let nr = Array.length a in
  let scale =
    let m = ref 0.0 in
    Array.iter
      (Array.iter (fun x -> if abs_float x > !m then m := abs_float x))
      a;
    max 1.0 !m
  in
  let threshold = tol *. scale in
  let pivots = ref [] in
  let r = ref 0 and j = ref 0 in
  while !r < nr && !j < nc do
    let best = ref !r in
    let best_abs = ref (abs_float a.(!r).(!j)) in
    for i = !r + 1 to nr - 1 do
      let v = abs_float a.(i).(!j) in
      if v > !best_abs then begin
        best := i;
        best_abs := v
      end
    done;
    if !best_abs <= threshold then begin
      for i = !r to nr - 1 do
        a.(i).(!j) <- 0.0
      done;
      incr j
    end
    else begin
      let tmp = a.(!r) in
      a.(!r) <- a.(!best);
      a.(!best) <- tmp;
      let pr = a.(!r) in
      let pivot = pr.(!j) in
      for k = 0 to nc - 1 do
        pr.(k) <- pr.(k) /. pivot
      done;
      for i = 0 to nr - 1 do
        if i <> !r then begin
          let ri = a.(i) in
          let factor = ri.(!j) in
          if factor <> 0.0 then
            for k = 0 to nc - 1 do
              ri.(k) <- ri.(k) -. (factor *. pr.(k))
            done
        end
      done;
      pivots := !j :: !pivots;
      incr r;
      incr j
    end
  done;
  (a, List.rev !pivots, !r)

(* Mirror of [Nullspace.basis ~backend:`Dense]: reference rref, then the
   free-column basis extraction, all on boxed storage. *)
let ref_basis ?tol (rows : float array array) n =
  let reduced, pivot_cols, rank = ref_rref ?tol rows n in
  let is_pivot = Array.make n false in
  let pivot_row = Array.make n (-1) in
  List.iteri
    (fun row col ->
      is_pivot.(col) <- true;
      pivot_row.(col) <- row)
    pivot_cols;
  let free_cols =
    List.filter (fun j -> not is_pivot.(j)) (List.init n (fun j -> j))
  in
  let p = n - rank in
  let out = Array.make_matrix n p 0.0 in
  List.iteri
    (fun k fc ->
      out.(fc).(k) <- 1.0;
      Array.iteri
        (fun col piv -> if piv >= 0 then out.(col).(k) <- -.reduced.(piv).(fc))
        pivot_row)
    free_cols;
  out

(* Mirror of [Cgls.solve] (and, through coefficient-1 rows, of
   [Cgls.solve_sparse] on an incidence system): fresh boxed work vectors,
   incidence closures, same iteration and early exits. *)
let ref_cgls ~n_vars ~rows ~b ~tol =
  let m = Array.length rows in
  let max_iter = (4 * n_vars) + 100 in
  let x = Array.make n_vars 0.0 in
  if m = 0 || n_vars = 0 then x
  else begin
    let r = Array.copy b in
    let s = Array.make n_vars 0.0 in
    let p = Array.make n_vars 0.0 in
    let q = Array.make m 0.0 in
    let dot a b n =
      let acc = ref 0.0 in
      for i = 0 to n - 1 do
        acc := !acc +. (a.(i) *. b.(i))
      done;
      !acc
    in
    let apply_a v out =
      for i = 0 to m - 1 do
        let acc = ref 0.0 in
        Array.iter (fun j -> acc := !acc +. v.(j)) rows.(i);
        out.(i) <- !acc
      done
    in
    let apply_at w out =
      Array.fill out 0 n_vars 0.0;
      for i = 0 to m - 1 do
        if w.(i) <> 0.0 then
          Array.iter (fun j -> out.(j) <- out.(j) +. w.(i)) rows.(i)
      done
    in
    apply_at r s;
    Array.blit s 0 p 0 n_vars;
    let gamma = ref (dot s s n_vars) in
    let target = tol *. sqrt !gamma in
    (try
       for _ = 1 to max_iter do
         if sqrt !gamma <= target || !gamma = 0.0 then raise Exit;
         apply_a p q;
         let qq = dot q q m in
         if qq <= 0.0 then raise Exit;
         let alpha = !gamma /. qq in
         for j = 0 to n_vars - 1 do
           x.(j) <- x.(j) +. (alpha *. p.(j))
         done;
         for i = 0 to m - 1 do
           r.(i) <- r.(i) -. (alpha *. q.(i))
         done;
         apply_at r s;
         let gamma' = dot s s n_vars in
         let beta = gamma' /. !gamma in
         for j = 0 to n_vars - 1 do
           p.(j) <- s.(j) +. (beta *. p.(j))
         done;
         gamma := gamma'
       done
     with Exit -> ());
    x
  end

(* Mirror of [Sparse_gauss.select_independent]: the same forward
   elimination in row space, on dense boxed rows.  The dense pivot rows
   carry explicit zeros where the sparse version stores nothing;
   subtracting [x ·. 0.0] only perturbs zero signs, which none of the
   keep/reject decisions can observe. *)
let ref_select ?(tol = 1e-8) ~cols rows =
  let nr = Array.length rows in
  let keep = Array.make nr false in
  if cols > 0 then begin
    let piv = Array.make cols [||] in
    Array.iteri
      (fun ri idxs ->
        let row = Array.make cols 0.0 in
        Array.iter (fun j -> row.(j) <- row.(j) +. 1.0) idxs;
        let lead = ref (-1) in
        let j = ref 0 in
        while !lead < 0 && !j < cols do
          let x = row.(!j) in
          if x <> 0.0 then begin
            if Array.length piv.(!j) > 0 then begin
              let pv = piv.(!j) in
              for c = 0 to cols - 1 do
                row.(c) <- row.(c) -. (x *. pv.(c))
              done;
              row.(!j) <- 0.0
            end
            else if abs_float x > tol then lead := !j
            else row.(!j) <- 0.0
          end;
          if !lead < 0 then incr j
        done;
        if !lead >= 0 then begin
          keep.(ri) <- true;
          let l = !lead in
          let pivot = row.(l) in
          let pv = Array.make cols 0.0 in
          for c = l to cols - 1 do
            pv.(c) <- row.(c) /. pivot
          done;
          piv.(l) <- pv
        end)
      rows
  end;
  keep

(* ------------------------------------------------------------------ *)
(* Differential properties                                             *)
(* ------------------------------------------------------------------ *)

let seeded_rng (seed, r, c) = Rng.create (seed + (1009 * r) + (100003 * c))

let dims_gen = QCheck.(triple (int_range 0 1000) (int_range 0 10) (int_range 1 10))

let prop_rref_dense_matches_reference =
  QCheck.Test.make ~name:"flat rref_dense == boxed reference (bitwise)"
    ~count:120 dims_gen (fun ((_, r, c) as k) ->
      let rng = seeded_rng k in
      let m = random_dense rng r c in
      let { Gauss.reduced; pivot_cols; rank } = Gauss.rref_dense m in
      let ref_red, ref_pivots, ref_rank = ref_rref (Matrix.to_rows m) c in
      rank = ref_rank && pivot_cols = ref_pivots
      && matrices_agree reduced ref_red)

let prop_rref_incidence_matches_reference =
  QCheck.Test.make
    ~name:"flat rref_dense == boxed reference on incidence fixtures"
    ~count:120 dims_gen (fun ((_, r, c) as k) ->
      let rng = seeded_rng k in
      let idxs = random_incidence rng ~rows:r ~cols:c in
      let m = matrix_of_incidence ~rows:r ~cols:c idxs in
      let { Gauss.reduced; pivot_cols; rank } = Gauss.rref_dense m in
      let ref_red, ref_pivots, ref_rank = ref_rref (Matrix.to_rows m) c in
      rank = ref_rank && pivot_cols = ref_pivots
      && matrices_agree reduced ref_red)

let prop_rref_sparse_matches_reference =
  QCheck.Test.make
    ~name:"sparse rref == boxed reference (values; zero signs free)"
    ~count:120 dims_gen (fun ((_, r, c) as k) ->
      let rng = seeded_rng k in
      let idxs = random_incidence rng ~rows:r ~cols:c in
      let m = matrix_of_incidence ~rows:r ~cols:c idxs in
      let { Sparse_gauss.reduced; pivot_cols; rank } =
        Sparse_gauss.rref (Sparse.of_matrix m)
      in
      let ref_red, ref_pivots, ref_rank = ref_rref (Matrix.to_rows m) c in
      rank = ref_rank && pivot_cols = ref_pivots
      && matrices_agree ~loose_zeros:true (Sparse.to_matrix reduced) ref_red)

let prop_nullspace_matches_reference =
  QCheck.Test.make ~name:"flat null-space basis == boxed reference (bitwise)"
    ~count:120 dims_gen (fun ((_, r, c) as k) ->
      let rng = seeded_rng k in
      let idxs = random_incidence rng ~rows:r ~cols:c in
      let m = matrix_of_incidence ~rows:r ~cols:c idxs in
      let basis = Nullspace.basis ~backend:`Dense m in
      let ref_b = ref_basis (Matrix.to_rows m) c in
      matrices_agree basis ref_b)

let prop_cgls_matches_reference =
  QCheck.Test.make ~name:"flat CGLS == boxed reference (bitwise)" ~count:80
    dims_gen (fun ((_, r, c) as k) ->
      let rng = seeded_rng k in
      let rows = random_incidence rng ~rows:r ~cols:c in
      let b =
        Array.init r (fun _ -> Rng.uniform rng ~lo:(-2.0) ~hi:2.0)
      in
      let x = Cgls.solve ~n_vars:c ~rows ~b () in
      let ref_x = ref_cgls ~n_vars:c ~rows ~b ~tol:1e-12 in
      vectors_agree x ref_x)

let prop_cgls_sparse_matches_reference =
  QCheck.Test.make ~name:"flat-CSR CGLS == boxed reference (bitwise)"
    ~count:80 dims_gen (fun ((_, r, c) as k) ->
      let rng = seeded_rng k in
      let rows = random_incidence rng ~rows:r ~cols:c in
      let b =
        Array.init r (fun _ -> Rng.uniform rng ~lo:(-2.0) ~hi:2.0)
      in
      let a = Sparse.of_incidence ~rows:r ~cols:c rows in
      let x = Cgls.solve_sparse ~a ~b () in
      let ref_x = ref_cgls ~n_vars:c ~rows ~b ~tol:1e-12 in
      vectors_agree x ref_x)

let prop_select_matches_reference =
  QCheck.Test.make
    ~name:"sparse greedy selection == boxed reference decisions" ~count:150
    dims_gen (fun ((_, r, c) as k) ->
      let rng = seeded_rng k in
      let rows = random_incidence rng ~rows:r ~cols:c in
      Sparse_gauss.select_independent ~cols:c rows = ref_select ~cols:c rows)

(* A fixed regression case exercising the flat kernels at a size where
   stride bugs cannot hide in a single cache line. *)
let test_large_fixture () =
  let rng = Rng.create 0xD1FF in
  let r = 60 and c = 45 in
  let idxs = random_incidence rng ~rows:r ~cols:c in
  let m = matrix_of_incidence ~rows:r ~cols:c idxs in
  let { Gauss.reduced; pivot_cols; rank } = Gauss.rref_dense m in
  let ref_red, ref_pivots, ref_rank = ref_rref (Matrix.to_rows m) c in
  Alcotest.(check int) "rank" ref_rank rank;
  Alcotest.(check (list int)) "pivots" ref_pivots pivot_cols;
  Alcotest.(check bool) "reduced bits" true (matrices_agree reduced ref_red);
  let basis = Nullspace.basis ~backend:`Dense m in
  Alcotest.(check bool) "basis bits" true
    (matrices_agree basis (ref_basis (Matrix.to_rows m) c));
  let b = Array.init r (fun i -> float_of_int (i mod 7) /. 3.0) in
  let x = Cgls.solve ~n_vars:c ~rows:idxs ~b () in
  Alcotest.(check bool) "cgls bits" true
    (vectors_agree x (ref_cgls ~n_vars:c ~rows:idxs ~b ~tol:1e-12))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "differential"
    [
      ( "rref",
        [
          qc prop_rref_dense_matches_reference;
          qc prop_rref_incidence_matches_reference;
          qc prop_rref_sparse_matches_reference;
        ] );
      ("nullspace", [ qc prop_nullspace_matches_reference ]);
      ( "cgls",
        [ qc prop_cgls_matches_reference; qc prop_cgls_sparse_matches_reference ]
      );
      ("selection", [ qc prop_select_matches_reference ]);
      ( "fixtures",
        [ Alcotest.test_case "large incidence fixture" `Quick test_large_fixture ]
      );
    ]
