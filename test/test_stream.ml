(* Tests for the online sliding-window engine: window ring mechanics,
   snapshot round-trips (save → restore → continue must be bit-identical
   to a run that never stopped), corruption rejection, replay-source
   diagnostics, and the headline acceptance property — windowed
   streaming estimates exactly equal the batch pipeline over the same
   intervals of a simulated Netsim trace. *)

module Bitset = Tomo_util.Bitset
module Rng = Tomo_util.Rng
module Window = Tomo_stream.Window
module Snapshot = Tomo_stream.Snapshot
module Source = Tomo_stream.Source
module Engine = Tomo_stream.Engine
module W = Tomo_experiments.Workload

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let check_failure_containing name needle f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Failure" name
  | exception Failure msg ->
      if not (contains ~needle msg) then
        Alcotest.failf "%s: %S not in %S" name needle msg

(* ------------------------------------------------------------------ *)
(* Random tiny models and streams (for the qcheck properties)          *)
(* ------------------------------------------------------------------ *)

let shuffled_prefix rng n k =
  let a = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.sub a 0 k

let random_model rng =
  let n_links = 4 + Rng.int rng 6 in
  let n_paths = 3 + Rng.int rng 5 in
  let paths =
    Array.init n_paths (fun _ ->
        let k = 1 + Rng.int rng (min 4 n_links) in
        shuffled_prefix rng n_links k)
  in
  let sets = ref [] and i = ref 0 in
  while !i < n_links do
    let k = min (n_links - !i) (1 + Rng.int rng 3) in
    sets := Array.init k (fun j -> !i + j) :: !sets;
    i := !i + k
  done;
  Tomo.Model.make ~n_links ~paths
    ~corr_sets:(Array.of_list (List.rev !sets))

let random_column rng n_paths =
  let b = Bitset.create n_paths in
  for p = 0 to n_paths - 1 do
    if Rng.bool rng ~p:0.7 then Bitset.set b p
  done;
  b

(* Everything an estimate exposes, as a structurally comparable value;
   float arrays compare bit-for-bit under (=) here, which is the point. *)
let fingerprint = function
  | None -> None
  | Some (e : Engine.estimate) ->
      Some
        ( e.Engine.tick,
          Array.copy e.Engine.result.Tomo.Pc_result.marginals,
          Array.copy e.Engine.result.Tomo.Pc_result.identifiable,
          e.Engine.result.Tomo.Pc_result.n_rows,
          e.Engine.result.Tomo.Pc_result.n_vars )

(* ------------------------------------------------------------------ *)
(* Window ring mechanics                                               *)
(* ------------------------------------------------------------------ *)

let test_window_ring () =
  let rng = Rng.create 42 in
  let n_paths = 7 and capacity = 5 and total = 17 in
  let cols = Array.init total (fun _ -> random_column rng n_paths) in
  let w = Window.create ~capacity ~n_paths in
  check_bool "empty" false (Window.is_full w);
  check_int "occupancy 0" 0 (Window.occupancy w);
  for i = 0 to total - 1 do
    let evicted = Window.push w (Bitset.copy cols.(i)) in
    check_int "ticks" (i + 1) (Window.ticks w);
    check_int "occupancy" (min (i + 1) capacity) (Window.occupancy w);
    (match evicted with
    | Some b ->
        check_bool "evicts in FIFO order" true
          (i >= capacity && Bitset.equal b cols.(i - capacity))
    | None -> check_bool "no eviction during warm-up" true (i < capacity));
    (* always_good_paths == intersection of the filled columns *)
    let expect = Bitset.create n_paths in
    Bitset.set_all expect;
    for j = max 0 (i + 1 - capacity) to i do
      Bitset.inter_into ~into:expect cols.(j)
    done;
    check_bool "always_good == column intersection" true
      (Bitset.equal (Window.always_good_paths w) expect)
  done

(* ------------------------------------------------------------------ *)
(* qcheck: save → restore → continue is bit-identical                  *)
(* ------------------------------------------------------------------ *)

let prop_snapshot_resume seed =
  let rng = Rng.create seed in
  let model = random_model rng in
  let n_paths = model.Tomo.Model.n_paths in
  let window = 2 + Rng.int rng 4 in
  let total = window + 1 + Rng.int rng 10 in
  let cut = Rng.int rng (total + 1) in
  let cols = Array.init total (fun _ -> random_column rng n_paths) in
  (* Run A: never interrupted. *)
  let a = Engine.create ~model ~window () in
  let expected =
    Array.init total (fun i ->
        fingerprint (Engine.ingest a (Bitset.copy cols.(i))))
  in
  (* Run B: killed after [cut] ticks, serialized, restored, continued. *)
  let b = Engine.create ~model ~window () in
  let ok = ref true in
  for i = 0 to cut - 1 do
    if fingerprint (Engine.ingest b (Bitset.copy cols.(i))) <> expected.(i)
    then ok := false
  done;
  let restored =
    Engine.of_snapshot ~model
      (Snapshot.of_string (Snapshot.to_string (Engine.snapshot b)))
  in
  if Engine.ticks restored <> cut then ok := false;
  (* current() after a restore must agree with run A's estimate there *)
  if cut > 0 && fingerprint (Engine.current restored) <> expected.(cut - 1)
  then ok := false;
  for i = cut to total - 1 do
    if
      fingerprint (Engine.ingest restored (Bitset.copy cols.(i)))
      <> expected.(i)
    then ok := false
  done;
  !ok

let snapshot_resume_qcheck =
  QCheck.Test.make ~count:40
    ~name:"snapshot round-trip continues bit-identically"
    QCheck.(int_range 0 100_000)
    prop_snapshot_resume

(* ------------------------------------------------------------------ *)
(* Snapshot corruption rejection                                       *)
(* ------------------------------------------------------------------ *)

let sample_snapshot () =
  let rng = Rng.create 9 in
  let model = Tomo.Toy.case1 () in
  let e = Engine.create ~model ~window:3 () in
  for _ = 1 to 5 do
    ignore (Engine.ingest e (random_column rng model.Tomo.Model.n_paths))
  done;
  Snapshot.to_string (Engine.snapshot e)

let test_snapshot_corruption () =
  let s = sample_snapshot () in
  (* sanity: the pristine string parses *)
  ignore (Snapshot.of_string s);
  (* flip one status bit inside a column line *)
  let col_at =
    let rec find i =
      if i + 4 > String.length s then Alcotest.fail "no col line"
      else if String.sub s i 4 = "col " then i
      else find (i + 1)
    in
    find 0
  in
  let bit_at =
    let rec find i =
      match s.[i] with
      | '0' | '1' -> i
      | _ -> find (i + 1)
    in
    find (col_at + 6)
  in
  let flipped = Bytes.of_string s in
  Bytes.set flipped bit_at (if s.[bit_at] = '1' then '0' else '1');
  check_failure_containing "bit flip" "corrupted snapshot" (fun () ->
      Snapshot.of_string (Bytes.to_string flipped));
  (* truncation: a torn write that lost the tail *)
  check_failure_containing "truncated" "corrupted snapshot" (fun () ->
      Snapshot.of_string (String.sub s 0 (String.length s / 2)));
  (* tampered checksum trailer *)
  let tampered =
    let b = Bytes.of_string s in
    let i = String.length s - 2 in
    Bytes.set b i (if s.[i] = '0' then '1' else '0');
    Bytes.to_string b
  in
  check_failure_containing "bad checksum" "corrupted snapshot" (fun () ->
      Snapshot.of_string tampered);
  (* empty file (e.g. crash before any write) *)
  check_failure_containing "empty" "corrupted snapshot" (fun () ->
      Snapshot.of_string "")

(* ------------------------------------------------------------------ *)
(* Replay sources: diagnostics and fast-forward                        *)
(* ------------------------------------------------------------------ *)

let with_temp_file contents f =
  let path = Filename.temp_file "tomo_stream_test" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      f path)

let test_trace_source_errors () =
  (* ragged tick line: 2 status chars for 3 paths, on line 4 *)
  with_temp_file "tomo-trace v1\npaths 3\ntick 0 101\ntick 1 10\n"
    (fun path ->
      let src = Source.of_trace_file path in
      Fun.protect
        ~finally:(fun () -> Source.close src)
        (fun () ->
          ignore (Source.next src);
          check_failure_containing "ragged tick" (path ^ ":4") (fun () ->
              Source.next src)));
  (* bad header fails eagerly, naming line 1 *)
  with_temp_file "bogus v9\n" (fun path ->
      check_failure_containing "bad header" (path ^ ":1") (fun () ->
          Source.of_trace_file path));
  (* out-of-order tick index *)
  with_temp_file "tomo-trace v1\npaths 2\ntick 1 10\n" (fun path ->
      let src = Source.of_trace_file path in
      Fun.protect
        ~finally:(fun () -> Source.close src)
        (fun () ->
          check_failure_containing "out-of-order tick" (path ^ ":3")
            (fun () -> Source.next src)))

(* The serve --replay sniffer: dispatch by header, and name BOTH
   accepted formats when the file is empty, truncated, or alien. *)
let test_replay_sniffing () =
  with_temp_file "tomo-trace v1\npaths 2\ntick 0 10\n" (fun path ->
      let src = Source.of_replay_file path in
      Fun.protect
        ~finally:(fun () -> Source.close src)
        (fun () -> check_int "trace dispatch" 2 (Source.n_paths src)));
  with_temp_file "tomo-observations v1\npaths 2 intervals 1\nrow 0 1\nrow 1 0\n"
    (fun path ->
      let src = Source.of_replay_file path in
      Fun.protect
        ~finally:(fun () -> Source.close src)
        (fun () -> check_int "observations dispatch" 2 (Source.n_paths src)));
  let expect_both_formats name contents =
    with_temp_file contents (fun path ->
        check_failure_containing name "tomo-trace v1" (fun () ->
            Source.of_replay_file path);
        check_failure_containing name "tomo-observations v1" (fun () ->
            Source.of_replay_file path);
        check_failure_containing name path (fun () ->
            Source.of_replay_file path))
  in
  expect_both_formats "empty file" "";
  expect_both_formats "blank-only file" "\n\n";
  expect_both_formats "alien header" "csv,of,course\n1,2,3\n"

let test_observations_io_errors () =
  (* ragged row *)
  check_failure_containing "ragged row" "<string>:4" (fun () ->
      Tomo.Observations_io.of_string
        "tomo-observations v1\npaths 2 intervals 3\nrow 0 101\nrow 1 10\n");
  (* truncated: a row short *)
  check_failure_containing "truncated" "truncated input" (fun () ->
      Tomo.Observations_io.of_string
        "tomo-observations v1\npaths 2 intervals 3\nrow 0 101\n")

let test_source_drop () =
  let rng = Rng.create 5 in
  let n_paths = 4 and total = 8 in
  let cols = Array.init total (fun _ -> random_column rng n_paths) in
  let obs = Tomo.Observations.create ~t_intervals:total ~n_paths in
  Array.iteri
    (fun i c -> Tomo.Observations.set_interval_statuses obs ~interval:i ~good:c)
    cols;
  let src = Source.of_observations obs in
  check_int "drop skips what it can" 3 (Source.drop src 3);
  (match Source.next src with
  | Some c -> check_bool "resumes at the right interval" true (Bitset.equal c cols.(3))
  | None -> Alcotest.fail "stream ended early");
  check_int "drop past the end reports the shortfall" 4 (Source.drop src 10);
  check_bool "then the stream is dry" true (Source.next src = None)

(* ------------------------------------------------------------------ *)
(* Acceptance: streaming == batch on a simulated Netsim trace          *)
(* ------------------------------------------------------------------ *)

let test_streaming_equals_batch () =
  let window = 40 and total = 60 in
  let w =
    W.prepare
      (W.spec ~scale:W.Small ~seed:3 ~t_override:total W.Brite
         Tomo_netsim.Scenario.Random)
  in
  let model = w.W.model in
  (* Stream the run through Trace_io text and a replay source, exactly
     as `tomo_cli serve --replay` would. *)
  let last =
    with_temp_file (Tomo_netsim.Trace_io.to_string w.W.run) (fun path ->
        let src = Source.of_trace_file path in
        Fun.protect
          ~finally:(fun () -> Source.close src)
          (fun () ->
            let engine = Engine.create ~model ~window () in
            Source.fold src (fun last col -> Engine.ingest engine col |> Option.fold ~none:last ~some:Option.some) None))
  in
  let est =
    match last with
    | Some e -> e
    | None -> Alcotest.fail "window never filled"
  in
  check_int "saw the whole trace" total est.Engine.tick;
  (* Batch pipeline over the same (final) window of intervals. *)
  let obs =
    Tomo.Observations.create ~t_intervals:window
      ~n_paths:model.Tomo.Model.n_paths
  in
  for i = 0 to window - 1 do
    Tomo.Observations.set_interval_statuses obs ~interval:i
      ~good:
        (Tomo_netsim.Trace_io.interval_statuses w.W.run
           ~interval:(total - window + i))
  done;
  let batch, _ = Tomo.Correlation_complete.compute model obs in
  let s = est.Engine.result in
  check_int "rows" batch.Tomo.Pc_result.n_rows s.Tomo.Pc_result.n_rows;
  check_int "vars" batch.Tomo.Pc_result.n_vars s.Tomo.Pc_result.n_vars;
  check_bool "identifiable sets equal" true
    (batch.Tomo.Pc_result.identifiable = s.Tomo.Pc_result.identifiable);
  (* the acceptance bound is 1e-9; the design claim is bit-equality *)
  Array.iteri
    (fun e m ->
      if m <> s.Tomo.Pc_result.marginals.(e) then
        Alcotest.failf "link %d: batch %.17g <> stream %.17g" e m
          s.Tomo.Pc_result.marginals.(e))
    batch.Tomo.Pc_result.marginals;
  (* and the diffable report rendering agrees too *)
  let batch_est =
    { Engine.tick = est.Engine.tick; result = batch; engine = snd (Tomo.Correlation_complete.compute model obs) }
  in
  Alcotest.(check string)
    "tomo-report renders identically"
    (Engine.report_to_string ~window batch_est)
    (Engine.report_to_string ~window est)

let () =
  Tomo_par.Pool.set_default_jobs 1;
  Alcotest.run "stream"
    [
      ( "window",
        [ Alcotest.test_case "ring mechanics" `Quick test_window_ring ] );
      ( "snapshot",
        [
          QCheck_alcotest.to_alcotest snapshot_resume_qcheck;
          Alcotest.test_case "corruption rejected" `Quick
            test_snapshot_corruption;
        ] );
      ( "source",
        [
          Alcotest.test_case "trace diagnostics" `Quick
            test_trace_source_errors;
          Alcotest.test_case "replay format sniffing" `Quick
            test_replay_sniffing;
          Alcotest.test_case "observations diagnostics" `Quick
            test_observations_io_errors;
          Alcotest.test_case "drop fast-forward" `Quick test_source_drop;
        ] );
      ( "acceptance",
        [
          Alcotest.test_case "streaming == batch on a Netsim trace" `Slow
            test_streaming_equals_batch;
        ] );
    ]
