(* Tests for the core model layer: Model, Observations, Subsets, Eqn —
   including exact reproduction of the worked examples in the paper
   (Fig. 1 coverage tables, §5.2 definitions, Fig. 2(b) equations). *)

module Bitset = Tomo_util.Bitset
module Model = Tomo.Model
module Observations = Tomo.Observations
module Subsets = Tomo.Subsets
module Eqn = Tomo.Eqn
module Toy = Tomo.Toy

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_ints = Alcotest.(check (list int))
let checkf = Alcotest.(check (float 1e-9))

let e1, e2, e3, e4 = (Toy.e1, Toy.e2, Toy.e3, Toy.e4)
let p1, p2, p3 = (Toy.p1, Toy.p2, Toy.p3)

(* ------------------------------------------------------------------ *)
(* Model                                                               *)
(* ------------------------------------------------------------------ *)

let test_model_build () =
  let m = Toy.case1 () in
  check_int "links" 4 m.Model.n_links;
  check_int "paths" 3 m.Model.n_paths;
  check_int "correlation sets" 3 (Model.n_corr_sets m);
  check_ints "corr of links" [ 0; 1; 1; 2 ]
    (Array.to_list m.Model.corr_of_link)

let test_model_coverage_paths () =
  (* §5.2: Paths({e1,e2}) = {p1,p2}; Paths({e1,e3}) = {p1,p2,p3}. *)
  let m = Toy.case1 () in
  check_ints "Paths({e1,e2})" [ p1; p2 ]
    (Bitset.to_list (Model.paths_of_links m [| e1; e2 |]));
  check_ints "Paths({e1,e3})" [ p1; p2; p3 ]
    (Bitset.to_list (Model.paths_of_links m [| e1; e3 |]))

let test_model_coverage_links () =
  (* §5.2: Links({p1}) = {e1,e2}; Links({p1,p2}) = {e1,e2,e3}. *)
  let m = Toy.case1 () in
  check_ints "Links({p1})" [ e1; e2 ]
    (Bitset.to_list (Model.links_of_paths m [| p1 |]));
  check_ints "Links({p1,p2})" [ e1; e2; e3 ]
    (Bitset.to_list (Model.links_of_paths m [| p1; p2 |]))

let test_model_identifiability () =
  (* Condition 1 holds in the toy topology: link path-sets all differ. *)
  let m = Toy.case1 () in
  check_bool "toy satisfies Condition 1" true
    (Model.identifiability m = None);
  (* Two links in series on the same single path violate it. *)
  let m2 =
    Model.make ~n_links:2 ~paths:[| [| 0; 1 |] |] ~corr_sets:[| [| 0; 1 |] |]
  in
  match Model.identifiability m2 with
  | Some (0, 1) -> ()
  | _ -> Alcotest.fail "expected violating pair (0,1)"

let test_model_validation () =
  Alcotest.check_raises "non-partition rejected"
    (Invalid_argument "Model.make: link missing from correlation sets")
    (fun () ->
      ignore
        (Model.make ~n_links:2 ~paths:[| [| 0 |] |] ~corr_sets:[| [| 0 |] |]));
  Alcotest.check_raises "duplicate corr membership"
    (Invalid_argument "Model.make: link in two correlation sets")
    (fun () ->
      ignore
        (Model.make ~n_links:1 ~paths:[| [| 0 |] |]
           ~corr_sets:[| [| 0 |]; [| 0 |] |]));
  Alcotest.check_raises "loopy path rejected"
    (Invalid_argument "Model.make: path traverses a link twice") (fun () ->
      ignore
        (Model.make ~n_links:1 ~paths:[| [| 0; 0 |] |]
           ~corr_sets:[| [| 0 |] |]))

(* ------------------------------------------------------------------ *)
(* Observations                                                        *)
(* ------------------------------------------------------------------ *)

(* Four intervals with congested links {e1}, {e2}, {e3}, {e4}: every
   path is congested at least once. *)
let busy_obs () =
  Toy.observations
    ~interval_states:[| [ e1 ]; [ e2 ]; [ e3 ]; [ e4 ] |]

let test_obs_counts () =
  let obs = busy_obs () in
  check_int "T" 4 (Observations.t_intervals obs);
  check_int "paths" 3 (Observations.n_paths obs);
  (* p1 = (e1,e2): congested at t0 and t1, good at t2, t3. *)
  check_int "p1 good twice" 2 (Observations.all_good_count obs [| p1 |]);
  (* p1 and p2 jointly good only at t3 (t2 kills p2 via e3). *)
  check_int "p1,p2 jointly good once" 1
    (Observations.all_good_count obs [| p1; p2 |]);
  check_int "empty set good always" 4 (Observations.all_good_count obs [||])

let test_obs_log_prob_smoothing () =
  let obs = busy_obs () in
  checkf "add-half smoothing"
    (log ((2.0 +. 0.5) /. 5.0))
    (Observations.log_all_good_prob obs [| p1 |]);
  (* All three paths never jointly good; smoothing keeps log finite. *)
  let lp = Observations.log_all_good_prob obs [| p1; p2; p3 |] in
  check_bool "finite log of zero count" true (Float.is_finite lp);
  checkf "zero count value" (log (0.5 /. 5.0)) lp

let test_obs_always_good () =
  (* Only e1 ever congested: p3 = (e4,e3) is always good. *)
  let obs = Toy.observations ~interval_states:[| [ e1 ]; [ e1 ]; [] |] in
  check_bool "p3 always good" true (Observations.always_good obs ~path:p3);
  check_bool "p1 not always good" false
    (Observations.always_good obs ~path:p1);
  checkf "p1 good frac" (1.0 /. 3.0) (Observations.good_frac obs ~path:p1)

let test_obs_interval_views () =
  let obs = busy_obs () in
  (* t0: e1 congested => p1, p2 congested; p3 good. *)
  check_ints "congested paths at t0" [ p1; p2 ]
    (Bitset.to_list (Observations.congested_paths_at obs ~interval:0));
  check_ints "good paths at t0" [ p3 ]
    (Bitset.to_list (Observations.good_paths_at obs ~interval:0));
  check_bool "cell query" true
    (Observations.good_in_interval obs ~path:p3 ~interval:0)

(* ------------------------------------------------------------------ *)
(* Subsets                                                             *)
(* ------------------------------------------------------------------ *)

let test_effective_links () =
  (* §5.2 example: "suppose path p3 is always good, whereas the other two
     paths are not; this means that links e3 and e4 are always good,
     hence, the potentially congested correlation subsets are {e1} and
     {e2}." *)
  let m = Toy.case1 () in
  let obs =
    Toy.observations ~interval_states:[| [ e1 ]; [ e2 ]; [] |]
  in
  let eff = Subsets.effective_links m obs in
  check_ints "potentially congested links" [ e1; e2 ] (Bitset.to_list eff);
  let subsets =
    Subsets.enumerate m ~effective:eff ~max_size:3 ~limit_per_set:100
  in
  check_ints "potentially congested subsets"
    [ e1; e2 ]
    (List.map (fun s -> s.Subsets.links.(0)) subsets);
  check_bool "all singletons" true
    (List.for_all (fun s -> Array.length s.Subsets.links = 1) subsets)

let all_effective m =
  let eff = Bitset.create m.Model.n_links in
  Bitset.set_all eff;
  eff

let test_complement () =
  (* §5.2: complements within correlation sets — {e2}ᶜ = {e3},
     {e3}ᶜ = {e2}, {e1}ᶜ = ∅, {e2,e3}ᶜ = ∅. *)
  let m = Toy.case1 () in
  let eff = all_effective m in
  let comp links corr =
    Array.to_list
      (Subsets.complement m ~effective:eff (Subsets.make m ~corr links))
  in
  check_ints "complement of {e2}" [ e3 ] (comp [| e2 |] 1);
  check_ints "complement of {e3}" [ e2 ] (comp [| e3 |] 1);
  check_ints "complement of {e1}" [] (comp [| e1 |] 0);
  check_ints "complement of {e2,e3}" [] (comp [| e2; e3 |] 1)

let test_candidate_paths_table () =
  (* The Paths(E) \ Paths(Ē) table of the Algorithm 1 walkthrough. *)
  let m = Toy.case1 () in
  let eff = all_effective m in
  let pool links corr =
    Bitset.to_list
      (Subsets.candidate_paths m ~effective:eff (Subsets.make m ~corr links))
  in
  check_ints "{e1} -> {p1,p2}" [ p1; p2 ] (pool [| e1 |] 0);
  check_ints "{e2} -> {p1}" [ p1 ] (pool [| e2 |] 1);
  check_ints "{e3} -> {p2,p3}" [ p2; p3 ] (pool [| e3 |] 1);
  check_ints "{e4} -> {p3}" [ p3 ] (pool [| e4 |] 2);
  check_ints "{e2,e3} -> {p1,p2,p3}" [ p1; p2; p3 ] (pool [| e2; e3 |] 1)

let test_inducible () =
  let m = Toy.case2 () in
  let eff = all_effective m in
  check_bool "{e1,e4} inducible in Case 2" true
    (Subsets.inducible m ~effective:eff (Subsets.make m ~corr:0 [| e1; e4 |]));
  (* A chain: every path through link a also crosses link b of the same
     correlation set => {a} alone can never be induced. *)
  let chain =
    Model.make ~n_links:2
      ~paths:[| [| 0; 1 |]; [| 1 |] |]
      ~corr_sets:[| [| 0; 1 |] |]
  in
  let eff2 = all_effective chain in
  check_bool "chained singleton not inducible" false
    (Subsets.inducible chain ~effective:eff2
       (Subsets.make chain ~corr:0 [| 0 |]));
  check_bool "chain pair inducible" true
    (Subsets.inducible chain ~effective:eff2
       (Subsets.make chain ~corr:0 [| 0; 1 |]))

let test_enumerate_case1 () =
  (* With everything potentially congested, Case 1's subsets are exactly
     the paper's Ê = {e1}, {e2}, {e3}, {e4}, {e2,e3}. *)
  let m = Toy.case1 () in
  let eff = all_effective m in
  let subsets =
    Subsets.enumerate m ~effective:eff ~max_size:3 ~limit_per_set:100
  in
  let keys = List.map Subsets.key subsets |> List.sort compare in
  Alcotest.(check (list string))
    "case-1 subsets"
    (List.sort compare [ "0:0"; "1:1"; "1:2"; "1:1,2"; "2:3" ])
    keys

(* Both truncation paths of [enumerate] must count once into
   [subsets_enumeration_capped] — the visit-budget path used to stop
   silently, under-reporting Ê incompleteness. *)
let with_metrics f =
  Tomo_obs.Metrics.set_enabled true;
  Tomo_obs.Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Tomo_obs.Metrics.set_enabled false;
      Tomo_obs.Metrics.reset ())
    f

let counter name = Tomo_obs.Metrics.counter_value (Tomo_obs.Metrics.counter name)

let test_enumerate_found_cap () =
  (* Three independent links (one path each): all 7 subsets inducible,
     so a find cap of 2 stops at the third visit with work remaining. *)
  let m =
    Model.make ~n_links:3
      ~paths:[| [| 0 |]; [| 1 |]; [| 2 |] |]
      ~corr_sets:[| [| 0; 1; 2 |] |]
  in
  let eff = all_effective m in
  with_metrics (fun () ->
      let subsets =
        Subsets.enumerate m ~effective:eff ~max_size:3 ~limit_per_set:2
      in
      check_int "find cap respected" 2 (List.length subsets);
      check_int "truncation counted once" 1
        (counter "subsets_enumeration_capped");
      check_int "found counted" 2 (counter "subsets_enumerated"))

let test_enumerate_budget_cap () =
  (* A 6-link chain covered by one path: nothing of size <= 3 is
     inducible, and the visit budget (limit_per_set * 4 = 4) runs out
     during size 1 with subsets left — the truncation the old code
     forgot to count.  With pruning the skipped visits are charged
     arithmetically, so the counter and result are identical; only
     [ident_pruned_sets] records the saved work. *)
  let m =
    Model.make ~n_links:6
      ~paths:[| [| 0; 1; 2; 3; 4; 5 |] |]
      ~corr_sets:[| [| 0; 1; 2; 3; 4; 5 |] |]
  in
  let eff = all_effective m in
  let saved = Subsets.ident_prune_enabled () in
  Fun.protect
    ~finally:(fun () -> Subsets.set_ident_prune saved)
    (fun () ->
      List.iter
        (fun prune ->
          Subsets.set_ident_prune prune;
          with_metrics (fun () ->
              let subsets =
                Subsets.enumerate m ~effective:eff ~max_size:3
                  ~limit_per_set:1
              in
              let tag = if prune then "pruned" else "exhaustive" in
              check_int (tag ^ ": nothing found") 0 (List.length subsets);
              check_int
                (tag ^ ": budget truncation counted once")
                1
                (counter "subsets_enumeration_capped");
              check_int
                (tag ^ ": pruned visits recorded")
                (if prune then 4 else 0)
                (counter "ident_pruned_sets")))
        [ false; true ])

(* ------------------------------------------------------------------ *)
(* Direct array filters vs the list-based originals                    *)
(* ------------------------------------------------------------------ *)

let random_model rng =
  let n_links = 1 + Tomo_util.Rng.int rng 10 in
  (* Random partition into correlation sets. *)
  let n_corr = 1 + Tomo_util.Rng.int rng n_links in
  let assignment = Array.init n_links (fun _ -> Tomo_util.Rng.int rng n_corr) in
  let corr_sets =
    Array.init n_corr (fun c ->
        Array.of_list
          (List.filter
             (fun e -> assignment.(e) = c)
             (List.init n_links Fun.id)))
    |> Array.to_list
    |> List.filter (fun s -> Array.length s > 0)
    |> Array.of_list
  in
  let n_paths = 1 + Tomo_util.Rng.int rng 8 in
  let paths =
    Array.init n_paths (fun _ ->
        let links =
          List.filter
            (fun _ -> Tomo_util.Rng.bool rng ~p:0.4)
            (List.init n_links Fun.id)
        in
        match links with
        | [] -> [| Tomo_util.Rng.int rng n_links |]
        | l -> Array.of_list l)
  in
  Model.make ~n_links ~paths ~corr_sets

let random_effective rng m =
  let eff = Bitset.create m.Model.n_links in
  for e = 0 to m.Model.n_links - 1 do
    if Tomo_util.Rng.bool rng ~p:0.7 then Bitset.set eff e
  done;
  eff

let prop_effective_corr_set_matches_list =
  QCheck.Test.make ~name:"effective_corr_set equals list filter" ~count:100
    QCheck.small_int (fun seed ->
      let rng = Tomo_util.Rng.create (7919 * (seed + 1)) in
      let m = random_model rng in
      let eff = random_effective rng m in
      let ok = ref true in
      for c = 0 to Model.n_corr_sets m - 1 do
        let reference =
          Array.to_list (Model.corr_set_links m c)
          |> List.filter (Bitset.get eff)
        in
        if
          Array.to_list (Subsets.effective_corr_set m ~effective:eff c)
          <> reference
        then ok := false
      done;
      !ok)

let prop_complement_matches_list =
  QCheck.Test.make ~name:"complement equals list filter" ~count:100
    QCheck.small_int (fun seed ->
      let rng = Tomo_util.Rng.create (104729 * (seed + 1)) in
      let m = random_model rng in
      let eff = random_effective rng m in
      let ok = ref true in
      for c = 0 to Model.n_corr_sets m - 1 do
        let links = Model.corr_set_links m c in
        (* every non-empty subset of the first few links of the set *)
        let pool = Array.sub links 0 (min 3 (Array.length links)) in
        List.iter
          (fun subset ->
            if subset <> [] then begin
              let s = Subsets.make m ~corr:c (Array.of_list subset) in
              let reference =
                Array.to_list links
                |> List.filter (fun e ->
                       Bitset.get eff e && not (List.mem e subset))
              in
              if
                Array.to_list (Subsets.complement m ~effective:eff s)
                <> reference
              then ok := false
            end)
          (List.filteri (fun _ _ -> true)
             (let rec powerset = function
                | [] -> [ [] ]
                | x :: rest ->
                    let p = powerset rest in
                    p @ List.map (fun s -> x :: s) p
              in
              powerset (Array.to_list pool)))
      done;
      !ok)

let test_subset_canonicalization () =
  let m = Toy.case1 () in
  let a = Subsets.make m ~corr:1 [| e3; e2 |] in
  let b = Subsets.make m ~corr:1 [| e2; e3 |] in
  check_bool "order-insensitive" true (Subsets.equal a b);
  Alcotest.check_raises "duplicate rejected"
    (Invalid_argument "Subsets.make: duplicate link") (fun () ->
      ignore (Subsets.make m ~corr:1 [| e2; e2 |]));
  Alcotest.check_raises "foreign link rejected"
    (Invalid_argument "Subsets.make: link outside correlation set")
    (fun () -> ignore (Subsets.make m ~corr:1 [| e1 |]))

(* ------------------------------------------------------------------ *)
(* Eqn                                                                 *)
(* ------------------------------------------------------------------ *)

let test_induced_subsets_fig2b () =
  (* Fig. 2(b): the equation for {p1,p2} involves P(Xe1=0) and
     P(Xe2=0,Xe3=0); for {p2,p3}: P(Xe1=0), P(Xe3=0), P(Xe4=0). *)
  let m = Toy.case1 () in
  let eff = all_effective m in
  let induced paths =
    Eqn.induced_subsets m ~effective:eff
      ~links:(Model.links_of_paths m paths)
    |> List.map Subsets.key |> List.sort compare
  in
  Alcotest.(check (list string))
    "{p1,p2} induces {e1},{e2,e3}"
    [ "0:0"; "1:1,2" ]
    (induced [| p1; p2 |]);
  Alcotest.(check (list string))
    "{p2,p3} induces {e1},{e3},{e4}"
    [ "0:0"; "1:2"; "2:3" ]
    (induced [| p2; p3 |]);
  Alcotest.(check (list string))
    "{p1,p2,p3} induces {e1},{e2,e3},{e4}"
    [ "0:0"; "1:1,2"; "2:3" ]
    (induced [| p1; p2; p3 |])

let test_row_frozen_vs_grow () =
  let m = Toy.case1 () in
  let eff = all_effective m in
  let reg = Eqn.registry () in
  (* Frozen lookup on an empty registry fails... *)
  (match Eqn.row m ~effective:eff reg ~paths:[| p1 |] with
  | None -> ()
  | Some _ -> Alcotest.fail "row should be unrepresentable");
  (* ...growing registers {e1} and {e2}. *)
  (match Eqn.row_grow m ~effective:eff reg ~paths:[| p1 |] with
  | Some r -> check_int "two vars" 2 (Array.length r.Eqn.vars)
  | None -> Alcotest.fail "row_grow must succeed");
  check_int "registry grew" 2 (Eqn.n_vars reg);
  (* Now the frozen lookup succeeds too. *)
  match Eqn.row m ~effective:eff reg ~paths:[| p1 |] with
  | Some r -> check_int "same two vars" 2 (Array.length r.Eqn.vars)
  | None -> Alcotest.fail "row must now be representable"

let test_row_no_effective_links () =
  let m = Toy.case1 () in
  let eff = Bitset.create 4 in
  (* nothing effective *)
  let reg = Eqn.registry () in
  match Eqn.row_grow m ~effective:eff reg ~paths:[| p1 |] with
  | None -> ()
  | Some _ -> Alcotest.fail "no effective links => no row"

let test_register_single_path_vars () =
  let m = Toy.case1 () in
  let eff = all_effective m in
  let reg = Eqn.registry () in
  let added = Eqn.register_single_path_vars m ~effective:eff reg in
  (* p1: {e1},{e2}; p2: {e1},{e3}; p3: {e3},{e4} -> 4 distinct vars. *)
  check_int "4 single-path vars" 4 added;
  check_int "registry size" 4 (Eqn.n_vars reg)

let test_registry_roundtrip () =
  let m = Toy.case1 () in
  let reg = Eqn.registry () in
  let s = Subsets.make m ~corr:1 [| e2; e3 |] in
  let v = Eqn.add reg s in
  check_int "stable id" v (Eqn.add reg s);
  check_bool "roundtrip" true (Subsets.equal s (Eqn.subset_of_var reg v));
  Alcotest.check_raises "unknown var"
    (Invalid_argument "Eqn.subset_of_var: unknown variable") (fun () ->
      ignore (Eqn.subset_of_var reg 99))

(* ------------------------------------------------------------------ *)
(* Observations serialization                                          *)
(* ------------------------------------------------------------------ *)

module Observations_io = Tomo.Observations_io

let obs_equal a b =
  Observations.t_intervals a = Observations.t_intervals b
  && Observations.n_paths a = Observations.n_paths b
  &&
  let ok = ref true in
  for p = 0 to Observations.n_paths a - 1 do
    for i = 0 to Observations.t_intervals a - 1 do
      if
        Observations.good_in_interval a ~path:p ~interval:i
        <> Observations.good_in_interval b ~path:p ~interval:i
      then ok := false
    done
  done;
  !ok

let test_obs_io_roundtrip () =
  let obs = busy_obs () in
  let obs' = Observations_io.of_string (Observations_io.to_string obs) in
  check_bool "roundtrip" true (obs_equal obs obs')

let test_obs_io_file_roundtrip () =
  let obs = busy_obs () in
  let path = Filename.temp_file "tomo_obs" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Observations_io.save path obs;
      check_bool "file roundtrip" true
        (obs_equal obs (Observations_io.load path)))

let test_obs_io_rejects_garbage () =
  (try
     ignore (Observations_io.of_string "nope");
     Alcotest.fail "garbage accepted"
   with Failure _ -> ());
  (try
     ignore
       (Observations_io.of_string
          "tomo-observations v1\npaths 1 intervals 3\nrow 0 10\n");
     Alcotest.fail "short row accepted"
   with Failure _ -> ());
  try
    ignore
      (Observations_io.of_string
         "tomo-observations v1\npaths 2 intervals 2\nrow 0 11\n");
    Alcotest.fail "missing row accepted"
  with Failure _ -> ()

let test_obs_resample_preserves_shape () =
  let obs = busy_obs () in
  let rng = Tomo_util.Rng.create 3 in
  let r = Observations.resample obs rng in
  check_int "same T" (Observations.t_intervals obs)
    (Observations.t_intervals r);
  check_int "same paths" (Observations.n_paths obs)
    (Observations.n_paths r)

let prop_resample_frequency_stable =
  QCheck.Test.make
    ~name:"bootstrap resampling keeps good-fractions near the original"
    ~count:20 (QCheck.int_range 0 5_000) (fun seed ->
      let rng = Tomo_util.Rng.create seed in
      let states =
        Array.init 400 (fun _ ->
            if Tomo_util.Rng.bool rng ~p:0.3 then [ e1 ] else [])
      in
      let obs = Toy.observations ~interval_states:states in
      let r = Observations.resample obs (Tomo_util.Rng.create (seed + 1)) in
      abs_float
        (Observations.good_frac obs ~path:p1
        -. Observations.good_frac r ~path:p1)
      < 0.15)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "core"
    [
      ( "model",
        [
          Alcotest.test_case "construction" `Quick test_model_build;
          Alcotest.test_case "Paths(E) (paper §5.2)" `Quick
            test_model_coverage_paths;
          Alcotest.test_case "Links(P) (paper §5.2)" `Quick
            test_model_coverage_links;
          Alcotest.test_case "Condition 1 check" `Quick
            test_model_identifiability;
          Alcotest.test_case "validation" `Quick test_model_validation;
        ] );
      ( "observations",
        [
          Alcotest.test_case "joint good counts" `Quick test_obs_counts;
          Alcotest.test_case "log-prob smoothing" `Quick
            test_obs_log_prob_smoothing;
          Alcotest.test_case "always-good paths" `Quick test_obs_always_good;
          Alcotest.test_case "interval views" `Quick test_obs_interval_views;
        ] );
      ( "subsets",
        [
          Alcotest.test_case "potentially congested (paper §5.2)" `Quick
            test_effective_links;
          Alcotest.test_case "complements (paper §5.2)" `Quick
            test_complement;
          Alcotest.test_case "Paths(E)\\Paths(Ē) table (Alg. 1)" `Quick
            test_candidate_paths_table;
          Alcotest.test_case "inducibility" `Quick test_inducible;
          Alcotest.test_case "Case-1 enumeration = paper Ê" `Quick
            test_enumerate_case1;
          Alcotest.test_case "canonicalization" `Quick
            test_subset_canonicalization;
          Alcotest.test_case "find-cap truncation counted" `Quick
            test_enumerate_found_cap;
          Alcotest.test_case "budget truncation counted (both modes)"
            `Quick test_enumerate_budget_cap;
          qc prop_effective_corr_set_matches_list;
          qc prop_complement_matches_list;
        ] );
      ( "eqn",
        [
          Alcotest.test_case "Fig. 2(b) induced subsets" `Quick
            test_induced_subsets_fig2b;
          Alcotest.test_case "frozen vs growing rows" `Quick
            test_row_frozen_vs_grow;
          Alcotest.test_case "no effective links" `Quick
            test_row_no_effective_links;
          Alcotest.test_case "single-path var registration" `Quick
            test_register_single_path_vars;
          Alcotest.test_case "registry roundtrip" `Quick
            test_registry_roundtrip;
        ] );
      ( "observations_io",
        [
          Alcotest.test_case "string roundtrip" `Quick
            test_obs_io_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick
            test_obs_io_file_roundtrip;
          Alcotest.test_case "rejects malformed input" `Quick
            test_obs_io_rejects_garbage;
          Alcotest.test_case "resample shape" `Quick
            test_obs_resample_preserves_shape;
          QCheck_alcotest.to_alcotest prop_resample_frequency_stable;
        ] );
    ]
