(* Regression for the default-pool at_exit hook (lib/par/pool.ml):
   [set_default_jobs] called before any [Pool.default ()] must still
   install the shutdown hook.  Without it the worker domains spawned
   here stay parked on the pool's condition variable forever and the
   runtime hangs at exit waiting to join them — the alarm turns that
   hang into a loud SIGALRM kill (non-zero exit) instead of a wedged
   test runner. *)
let () =
  ignore (Unix.alarm 60);
  (* the bug requires this to be the first touch of the default pool *)
  Tomo_par.Pool.set_default_jobs 4;
  let ys =
    Tomo_par.Pool.parallel_map (fun i -> i + 1) (Array.init 1000 (fun i -> i))
  in
  assert (Array.length ys = 1000 && ys.(999) = 1000);
  print_endline "pool exit hook: ok"
