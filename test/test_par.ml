(* Tests for the domain pool: combinator laws (order, exceptions,
   nesting), determinism of the parallel experiment harness (bit-equal
   to the sequential run), and equivalence of the in-place null-space
   tracker with the functional Algorithm-2 update it replaced. *)

module Pool = Tomo_par.Pool
module Matrix = Tomo_linalg.Matrix
module Nullspace = Tomo_linalg.Nullspace
module Rng = Tomo_util.Rng
module Bitset = Tomo_util.Bitset
module Brite = Tomo_topology.Brite
module Scenario = Tomo_netsim.Scenario
module Run = Tomo_netsim.Run
module W = Tomo_experiments.Workload
module Fig3 = Tomo_experiments.Fig3
module Fig4 = Tomo_experiments.Fig4

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let with_pool jobs f =
  let pool = Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* ------------------------------------------------------------------ *)
(* Pool laws                                                           *)
(* ------------------------------------------------------------------ *)

let test_map_order () =
  List.iter
    (fun jobs ->
      with_pool jobs @@ fun pool ->
      List.iter
        (fun n ->
          let xs = Array.init n (fun i -> i) in
          let ys = Pool.parallel_map ~pool (fun i -> (3 * i) + 1) xs in
          Alcotest.(check (array int))
            (Printf.sprintf "jobs=%d n=%d" jobs n)
            (Array.map (fun i -> (3 * i) + 1) xs)
            ys)
        [ 0; 1; 2; 7; 100; 1000 ])
    [ 1; 2; 4 ]

let test_map_matches_sequential_shuffle () =
  (* Uneven task durations force out-of-order completion; slots must
     still come back in input order. *)
  with_pool 4 @@ fun pool ->
  let xs = Array.init 64 (fun i -> i) in
  let ys =
    Pool.parallel_map ~pool
      (fun i ->
        if i land 3 = 0 then begin
          (* a little busy work to skew completion order *)
          let acc = ref 0 in
          for k = 0 to 20_000 do
            acc := !acc + (k lxor i)
          done;
          ignore !acc
        end;
        i * i)
      xs
  in
  Alcotest.(check (array int)) "squares" (Array.map (fun i -> i * i) xs) ys

exception Boom of int

let test_exception_propagates () =
  List.iter
    (fun jobs ->
      with_pool jobs @@ fun pool ->
      let raised =
        try
          ignore
            (Pool.parallel_map ~pool
               (fun i -> if i = 13 then raise (Boom i) else i)
               (Array.init 40 (fun i -> i)));
          None
        with Boom i -> Some i
      in
      Alcotest.(check (option int))
        (Printf.sprintf "jobs=%d" jobs)
        (Some 13) raised)
    [ 1; 4 ]

let test_pool_usable_after_exception () =
  with_pool 4 @@ fun pool ->
  (try
     Pool.parallel_iter ~pool
       (fun i -> if i = 2 then failwith "boom")
       (Array.init 8 (fun i -> i))
   with Failure _ -> ());
  let ys = Pool.parallel_map ~pool succ (Array.init 8 (fun i -> i)) in
  Alcotest.(check (array int)) "still works"
    (Array.init 8 (fun i -> i + 1))
    ys

let test_nested_map () =
  (* Each outer task runs an inner parallel_map on the same pool; the
     caller-participation design means this must not deadlock. *)
  with_pool 3 @@ fun pool ->
  let ys =
    Pool.parallel_map ~pool
      (fun i ->
        let inner =
          Pool.parallel_map ~pool (fun j -> i + j) (Array.init 10 (fun j -> j))
        in
        Array.fold_left ( + ) 0 inner)
      (Array.init 12 (fun i -> i))
  in
  Alcotest.(check (array int))
    "nested sums"
    (Array.init 12 (fun i -> (10 * i) + 45))
    ys

let test_iter_runs_all () =
  with_pool 4 @@ fun pool ->
  let n = 200 in
  let cells = Array.init n (fun _ -> Atomic.make 0) in
  Pool.parallel_iter ~pool
    (fun i -> Atomic.incr cells.(i))
    (Array.init n (fun i -> i));
  Array.iteri
    (fun i c -> check_int (Printf.sprintf "cell %d" i) 1 (Atomic.get c))
    cells

let test_jobs_clamped () =
  with_pool 0 @@ fun pool ->
  check_int "jobs >= 1" 1 (Pool.jobs pool);
  let ys = Pool.parallel_map ~pool succ [| 1; 2; 3 |] in
  Alcotest.(check (array int)) "sequential fallback" [| 2; 3; 4 |] ys

let test_shutdown_rejects () =
  let pool = Pool.create ~jobs:2 () in
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool.parallel_map: pool is shut down") (fun () ->
      ignore (Pool.parallel_map ~pool succ [| 1; 2 |]))

(* [set_default_jobs] must behave exactly like the [default ()] path:
   install the pool it was given and leave it usable.  The at_exit half
   of the regression (set_default_jobs as the *first* touch of the
   default pool, then a clean process exit) lives in test_pool_exit.ml,
   which would be killed by SIGALRM if the shutdown hook were missing. *)
let test_set_default_jobs_installs () =
  Pool.set_default_jobs 3;
  check_int "default pool has the requested size" 3
    (Pool.jobs (Pool.default ()));
  let ys = Pool.parallel_map succ (Array.init 64 (fun i -> i)) in
  Alcotest.(check (array int))
    "default pool is usable"
    (Array.init 64 (fun i -> i + 1))
    ys;
  Pool.set_default_jobs 1

(* ------------------------------------------------------------------ *)
(* Determinism: parallel experiments == sequential experiments         *)
(* ------------------------------------------------------------------ *)

let test_fig3_bit_identical () =
  Pool.set_default_jobs 1;
  let seq = Fig3.run_averaged ~scale:W.Small ~seeds:[ 3; 4 ] in
  Pool.set_default_jobs 4;
  let par = Fig3.run_averaged ~scale:W.Small ~seeds:[ 3; 4 ] in
  Pool.set_default_jobs 1;
  (* Structural equality on floats: bit-identical, not approximately. *)
  check_bool "fig3 -j1 == -j4" true (seq = par)

let test_fig4a_bit_identical () =
  Pool.set_default_jobs 1;
  let seq = Fig4.run_mae_averaged ~topology:W.Brite ~scale:W.Small ~seeds:[ 5 ] in
  Pool.set_default_jobs 4;
  let par = Fig4.run_mae_averaged ~topology:W.Brite ~scale:W.Small ~seeds:[ 5 ] in
  Pool.set_default_jobs 1;
  check_bool "fig4a -j1 == -j4" true (seq = par)

let matrices_equal a b =
  Matrix.rows a = Matrix.rows b
  && Matrix.cols a = Matrix.cols b
  &&
  let ok = ref true in
  for i = 0 to Matrix.rows a - 1 do
    for j = 0 to Matrix.cols a - 1 do
      if Matrix.get a i j <> Matrix.get b i j then ok := false
    done
  done;
  !ok

(* Sparse-kernel path under the pool: every worker runs the sparse
   elimination and a sparse CGLS solve (per-domain DLS scratch) on its
   own systems; results must be bit-equal to the sequential run.  This
   guards against scratch sharing leaking across domains. *)
let test_sparse_kernel_bit_identical () =
  let module Sparse = Tomo_linalg.Sparse in
  let module Sparse_gauss = Tomo_linalg.Sparse_gauss in
  let module Cgls = Tomo_linalg.Cgls in
  let n_tasks = 16 in
  let run_task seed =
    let rng = Rng.create (1000 + seed) in
    let nvars = 60 and nrows = 75 in
    let idxs =
      Array.init nrows (fun _ ->
          let r = ref [] in
          for j = nvars - 1 downto 0 do
            if Rng.bool rng ~p:0.1 then r := j :: !r
          done;
          Array.of_list !r)
    in
    let a = Sparse.of_incidence ~rows:nrows ~cols:nvars idxs in
    let { Sparse_gauss.reduced; pivot_cols; rank } = Sparse_gauss.rref a in
    let b = Array.init nrows (fun _ -> Rng.uniform rng ~lo:(-1.) ~hi:1.) in
    let x = Cgls.solve_sparse ~a ~b () in
    let basis = Nullspace.basis ~backend:`Sparse (Sparse.to_matrix a) in
    (Sparse.to_matrix reduced, pivot_cols, rank, x, basis)
  in
  let seeds = Array.init n_tasks (fun i -> i) in
  let seq = Array.map run_task seeds in
  with_pool 4 @@ fun pool ->
  let par = Pool.parallel_map ~pool run_task seeds in
  Array.iteri
    (fun i (rd, pc, rk, x, bs) ->
      let rd', pc', rk', x', bs' = par.(i) in
      check_bool "reduced" true (matrices_equal rd rd');
      check_bool "pivots" true (pc = pc');
      check_int "rank" rk rk';
      check_bool "cgls solution" true (x = x');
      check_bool "nullspace basis" true (matrices_equal bs bs'))
    seq

(* The simulator itself under the pool: every interval derives its own
   RNG streams from its index, so the interval fan-out inside [Run.run]
   must be bit-identical whatever the pool size — across dynamics and
   both measurement models. *)
let run_fingerprint (r : Run.result) =
  ( Array.map Bitset.to_list r.Run.link_congested,
    Array.map Bitset.to_list r.Run.path_good,
    List.map (fun (e : Run.epoch) -> (e.Run.length, e.Run.probs)) r.Run.epochs
  )

let prop_run_bit_identical (seed, nonstationary, probed) =
  let simulate () =
    let ov =
      Brite.generate
        ~params:{ Brite.default with Brite.n_ases = 30; n_paths = 80 }
        ~seed ()
    in
    let rng = Rng.create (seed * 7919) in
    let scenario =
      Scenario.make ov ~kind:Scenario.Random ~frac:0.1
        ~rng:(Rng.split rng ~label:"scenario")
    in
    let dynamics =
      if nonstationary then Run.Redraw_every 17 else Run.Stationary
    in
    let measurement =
      if probed then Run.Probes { per_path = 25; f = 0.01 } else Run.Ideal
    in
    run_fingerprint
      (Run.run ~scenario ~dynamics ~measurement ~t_intervals:50
         ~rng:(Rng.split rng ~label:"run"))
  in
  Pool.set_default_jobs 1;
  let seq = simulate () in
  Pool.set_default_jobs 4;
  let par = simulate () in
  Pool.set_default_jobs 1;
  seq = par

let run_bit_identical_qcheck =
  QCheck.Test.make ~count:8 ~name:"Run.run -j1 == -j4 (bit-identical)"
    QCheck.(triple (int_range 0 10_000) bool bool)
    prop_run_bit_identical

(* ------------------------------------------------------------------ *)
(* Tracker == functional null-space update                             *)
(* ------------------------------------------------------------------ *)

let random_01_row rng n p = Array.init n (fun _ -> if Rng.bool rng ~p then 1.0 else 0.0)

(* Feed the same random 0/1 rows to (a) the functional [update] chain
   and (b) the in-place tracker; they must agree exactly — same accept/
   reject verdicts, same basis matrix bit for bit, same weights. *)
let prop_tracker_equals_update (seed, n, rows) =
  let rng = Rng.create seed in
  let tracker = Nullspace.tracker n in
  let basis = ref (Matrix.identity n) in
  let ok = ref true in
  for _ = 1 to rows do
    let row = random_01_row rng n 0.35 in
    let before = Matrix.cols !basis in
    let updated = Nullspace.update !basis row in
    let accepted_fn = Matrix.cols updated < before in
    basis := updated;
    let accepted_tr = Nullspace.add_row tracker row in
    if accepted_fn <> accepted_tr then ok := false
  done;
  let m = Nullspace.to_matrix tracker in
  if not (matrices_equal m !basis) then ok := false;
  (* weights must match a recount of the final basis *)
  for v = 0 to n - 1 do
    let w = ref 0 in
    for j = 0 to Matrix.cols m - 1 do
      if abs_float (Matrix.get m v j) > 1e-8 then incr w
    done;
    if !w <> Nullspace.row_weight tracker v then ok := false
  done;
  Nullspace.dim tracker = Matrix.cols !basis && !ok

let tracker_qcheck =
  QCheck.Test.make ~count:60 ~name:"tracker == functional update"
    QCheck.(
      triple (int_range 0 1000) (int_range 1 24) (int_range 0 40))
    prop_tracker_equals_update

let test_tracker_incidence_equals_update_incidence () =
  let rng = Rng.create 11 in
  let n = 18 in
  let tracker = Nullspace.tracker n in
  let basis = ref (Matrix.identity n) in
  for _ = 1 to 30 do
    let k = 1 + Rng.int rng 5 in
    let idxs =
      Array.init k (fun _ -> Rng.int rng n)
      |> Array.to_list |> List.sort_uniq compare |> Array.of_list
    in
    let accepted_fn =
      match Nullspace.update_incidence !basis idxs with
      | Some n' ->
          basis := n';
          true
      | None -> false
    in
    let accepted_tr = Nullspace.add_incidence tracker idxs in
    check_bool "verdict" accepted_fn accepted_tr
  done;
  check_bool "final basis" true (matrices_equal (Nullspace.to_matrix tracker) !basis)

let () =
  Pool.set_default_jobs 1;
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "map order" `Quick test_map_order;
          Alcotest.test_case "map skewed durations" `Quick
            test_map_matches_sequential_shuffle;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagates;
          Alcotest.test_case "usable after exception" `Quick
            test_pool_usable_after_exception;
          Alcotest.test_case "nested map" `Quick test_nested_map;
          Alcotest.test_case "iter runs all" `Quick test_iter_runs_all;
          Alcotest.test_case "jobs clamped" `Quick test_jobs_clamped;
          Alcotest.test_case "shutdown" `Quick test_shutdown_rejects;
          Alcotest.test_case "set_default_jobs installs the pool" `Quick
            test_set_default_jobs_installs;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "fig3 bit-identical" `Slow
            test_fig3_bit_identical;
          Alcotest.test_case "fig4a bit-identical" `Slow
            test_fig4a_bit_identical;
          Alcotest.test_case "sparse kernels bit-identical" `Quick
            test_sparse_kernel_bit_identical;
          QCheck_alcotest.to_alcotest run_bit_identical_qcheck;
        ] );
      ( "tracker",
        [
          QCheck_alcotest.to_alcotest tracker_qcheck;
          Alcotest.test_case "incidence parity" `Quick
            test_tracker_incidence_equals_update_incidence;
        ] );
    ]
