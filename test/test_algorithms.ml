(* Tests for the tomography algorithms: Algorithm 1 selection,
   Prob_engine solving, the three Probability Computation algorithms,
   Sparsity, Bayesian inference and metrics — against the paper's worked
   examples and against sampled data with known ground truth. *)

module Bitset = Tomo_util.Bitset
module Rng = Tomo_util.Rng
module Matrix = Tomo_linalg.Matrix
module Model = Tomo.Model
module Observations = Tomo.Observations
module Subsets = Tomo.Subsets
module Eqn = Tomo.Eqn
module Algorithm1 = Tomo.Algorithm1
module Prob_engine = Tomo.Prob_engine
module Independence_pc = Tomo.Independence_pc
module Correlation_heuristic = Tomo.Correlation_heuristic
module Correlation_complete = Tomo.Correlation_complete
module Sparsity = Tomo.Sparsity
module Bayesian = Tomo.Bayesian
module Metrics = Tomo.Metrics
module Toy = Tomo.Toy
module Pc_result = Tomo.Pc_result

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_ints = Alcotest.(check (list int))
let checkf tol = Alcotest.(check (float tol))

let e1, e2, e3, e4 = (Toy.e1, Toy.e2, Toy.e3, Toy.e4)
let p1, p2, p3 = (Toy.p1, Toy.p2, Toy.p3)

(* Sample toy observations from an explicit factor model:
   f1 -> {e1} with q1; fa -> {e2,e3} with qa (the correlation);
   fb -> {e2}; fc -> {e3}; f4 -> {e4}. *)
type toy_truth = { q1 : float; qa : float; qb : float; qc : float; q4 : float }

let toy_truth = { q1 = 0.2; qa = 0.3; qb = 0.25; qc = 0.15; q4 = 0.1 }

let toy_good_probs tt =
  (* Closed-form good probabilities of the correlation subsets. *)
  let g1 = 1.0 -. tt.q1 in
  let g2 = (1.0 -. tt.qa) *. (1.0 -. tt.qb) in
  let g3 = (1.0 -. tt.qa) *. (1.0 -. tt.qc) in
  let g23 = (1.0 -. tt.qa) *. (1.0 -. tt.qb) *. (1.0 -. tt.qc) in
  let g4 = 1.0 -. tt.q4 in
  (g1, g2, g3, g23, g4)

let sample_toy_states tt ~t ~seed =
  let rng = Rng.create seed in
  Array.init t (fun _ ->
      let f1 = Rng.bool rng ~p:tt.q1 in
      let fa = Rng.bool rng ~p:tt.qa in
      let fb = Rng.bool rng ~p:tt.qb in
      let fc = Rng.bool rng ~p:tt.qc in
      let f4 = Rng.bool rng ~p:tt.q4 in
      List.concat
        [
          (if f1 then [ e1 ] else []);
          (if fa || fb then [ e2 ] else []);
          (if fa || fc then [ e3 ] else []);
          (if f4 then [ e4 ] else []);
        ])

let toy_obs ?(t = 8000) ?(seed = 42) tt =
  Toy.observations ~interval_states:(sample_toy_states tt ~t ~seed)

(* ------------------------------------------------------------------ *)
(* Algorithm 1                                                         *)
(* ------------------------------------------------------------------ *)

let test_alg1_case1_full_rank () =
  (* Case 1 satisfies Identifiability++: the selected system must have
     full column rank over the paper's 5 unknowns. *)
  let m = Toy.case1 () in
  let obs = toy_obs toy_truth in
  let sel = Algorithm1.select m obs in
  check_int "5 unknowns (paper's Ê)" 5 (Eqn.n_vars sel.Algorithm1.registry);
  check_int "full rank: empty null space" 0
    (Matrix.cols sel.Algorithm1.nullspace);
  check_int "minimum equations = unknowns" 5
    (Array.length sel.Algorithm1.rows);
  check_int "all identifiable" 5 (Algorithm1.n_identifiable sel)

let test_alg1_case2_nonidentifiable () =
  (* Case 2 violates Identifiability++: {e1,e4} and {e2,e3} are traversed
     by the same paths. The system has 6 unknowns, reaches rank 5, and no
     unknown is individually identifiable. *)
  let m = Toy.case2 () in
  let obs = toy_obs toy_truth in
  let sel = Algorithm1.select m obs in
  check_int "6 unknowns" 6 (Eqn.n_vars sel.Algorithm1.registry);
  check_int "nullity 1" 1 (Matrix.cols sel.Algorithm1.nullspace);
  check_int "nothing identifiable" 0 (Algorithm1.n_identifiable sel)

let test_alg1_rows_are_independent () =
  (* The selection never contains a linearly dependent row: the number of
     rows equals the rank, i.e. vars - nullity. *)
  let m = Toy.case2 () in
  let obs = toy_obs toy_truth in
  let sel = Algorithm1.select m obs in
  check_int "rows = rank"
    (Eqn.n_vars sel.Algorithm1.registry
    - Matrix.cols sel.Algorithm1.nullspace)
    (Array.length sel.Algorithm1.rows)

let test_alg1_reports_equations_formed () =
  (* Algorithm 1 reports its work through the observability registry:
     with metrics enabled, a selection run advances equations_formed by
     one per kept equation. *)
  let c = Tomo_obs.Metrics.counter "equations_formed" in
  Tomo_obs.Metrics.set_enabled true;
  Tomo_obs.Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Tomo_obs.Metrics.set_enabled false;
      Tomo_obs.Metrics.reset ())
    (fun () ->
      let m = Toy.case1 () in
      let obs = toy_obs toy_truth in
      let sel = Algorithm1.select m obs in
      check_bool "equations_formed >= 1" true
        (Tomo_obs.Metrics.counter_value c >= 1);
      check_int "equations_formed counts the kept equations"
        (Array.length sel.Algorithm1.rows)
        (Tomo_obs.Metrics.counter_value c))

let test_alg1_effective_restriction () =
  (* With p3 always good, only {e1} and {e2} remain unknowns (paper §5.2
     example) and both are identifiable. *)
  let m = Toy.case1 () in
  let obs = Toy.observations ~interval_states:[| [ e1 ]; [ e2 ]; [] |] in
  let sel = Algorithm1.select m obs in
  check_int "2 unknowns" 2 (Eqn.n_vars sel.Algorithm1.registry);
  check_int "both identifiable" 2 (Algorithm1.n_identifiable sel)

(* ------------------------------------------------------------------ *)
(* Prob_engine on the toy topology                                     *)
(* ------------------------------------------------------------------ *)

let solve_case1 ?(t = 8000) ?(seed = 42) () =
  let m = Toy.case1 () in
  let obs = toy_obs ~t ~seed toy_truth in
  let sel = Algorithm1.select m obs in
  (m, Prob_engine.solve sel obs)

let test_engine_recovers_good_probs () =
  let m, eng = solve_case1 () in
  let g1, g2, g3, g23, g4 = toy_good_probs toy_truth in
  let get corr links =
    match Prob_engine.good_prob eng (Subsets.make m ~corr links) with
    | Some g -> g
    | None -> Alcotest.fail "expected identifiable"
  in
  checkf 0.03 "G(e1)" g1 (get 0 [| e1 |]);
  checkf 0.03 "G(e2)" g2 (get 1 [| e2 |]);
  checkf 0.03 "G(e3)" g3 (get 1 [| e3 |]);
  checkf 0.03 "G(e2,e3)" g23 (get 1 [| e2; e3 |]);
  checkf 0.03 "G(e4)" g4 (get 2 [| e4 |])

let test_engine_link_marginals () =
  let _, eng = solve_case1 () in
  let g1, g2, g3, _, g4 = toy_good_probs toy_truth in
  checkf 0.03 "P(Xe1=1)" (1.0 -. g1) (Prob_engine.link_marginal eng e1);
  checkf 0.03 "P(Xe2=1)" (1.0 -. g2) (Prob_engine.link_marginal eng e2);
  checkf 0.03 "P(Xe3=1)" (1.0 -. g3) (Prob_engine.link_marginal eng e3);
  checkf 0.03 "P(Xe4=1)" (1.0 -. g4) (Prob_engine.link_marginal eng e4);
  List.iter
    (fun e ->
      check_bool "identifiable" true (Prob_engine.link_identifiable eng e))
    [ e1; e2; e3; e4 ]

let test_engine_congestion_prob () =
  (* P(e2, e3 both congested) = 1 - G2 - G3 + G23; and across correlation
     sets probabilities multiply. *)
  let m, eng = solve_case1 () in
  ignore m;
  let _, g2, g3, g23, g4 = toy_good_probs toy_truth in
  let truth_pair = 1.0 -. g2 -. g3 +. g23 in
  (match Prob_engine.congestion_prob eng ~corr:1 [| e2; e3 |] with
  | Some p -> checkf 0.03 "P(e2,e3 congested)" truth_pair p
  | None -> Alcotest.fail "pair should be identifiable");
  match Prob_engine.set_congestion_prob eng [| e2; e3; e4 |] with
  | Some p ->
      checkf 0.03 "cross-set product" (truth_pair *. (1.0 -. g4)) p
  | None -> Alcotest.fail "cross-set query should succeed"

let test_engine_case2_unidentifiable () =
  let m = Toy.case2 () in
  let obs = toy_obs toy_truth in
  let sel = Algorithm1.select m obs in
  let eng = Prob_engine.solve sel obs in
  (* The pair {e2,e3} exists as a variable but is not identifiable. *)
  (match Prob_engine.good_prob eng (Subsets.make m ~corr:1 [| e2; e3 |]) with
  | None -> ()
  | Some _ -> Alcotest.fail "Case 2 pair must not be identifiable");
  (* The minimum-norm estimate still exists. *)
  match Prob_engine.good_prob_est eng (Subsets.make m ~corr:1 [| e2; e3 |])
  with
  | Some g -> check_bool "estimate in range" true (g >= 0.0 && g <= 1.0)
  | None -> Alcotest.fail "estimate must exist"

let test_engine_always_good_marginal_zero () =
  let m = Toy.case1 () in
  let obs = Toy.observations ~interval_states:[| [ e1 ]; [ e2 ]; [] |] in
  let sel = Algorithm1.select m obs in
  let eng = Prob_engine.solve sel obs in
  checkf 1e-12 "e3 certified good" 0.0 (Prob_engine.link_marginal eng e3);
  checkf 1e-12 "e4 certified good" 0.0 (Prob_engine.link_marginal eng e4);
  check_bool "certified good counts as identifiable" true
    (Prob_engine.link_identifiable eng e3)

let test_engine_pattern_logprob () =
  let m, eng = solve_case1 () in
  ignore m;
  let _, g2, g3, g23, _ = toy_good_probs toy_truth in
  (* Pattern within corr set 1: e2 congested, e3 good:
     P = G(e3) - G(e2,e3). *)
  let lp =
    Prob_engine.pattern_logprob eng ~corr:1 ~congested:[| e2 |]
      ~good:[| e3 |]
  in
  checkf 0.1 "P(e2 cong, e3 good)" (log (g3 -. g23)) lp;
  (* Both good: log G23. *)
  let lp2 =
    Prob_engine.pattern_logprob eng ~corr:1 ~congested:[||]
      ~good:[| e2; e3 |]
  in
  checkf 0.1 "P(both good)" (log g23) lp2;
  ignore g2

(* ------------------------------------------------------------------ *)
(* Probability Computation baselines                                   *)
(* ------------------------------------------------------------------ *)

let test_independence_pc_uncorrelated () =
  (* Without correlation (qa = 0) Independence is consistent and must
     recover the marginals. *)
  let tt = { toy_truth with qa = 0.0 } in
  let m = Toy.case1 () in
  let obs = toy_obs ~t:8000 ~seed:7 tt in
  let r = Independence_pc.compute m obs in
  checkf 0.03 "e1" tt.q1 r.Pc_result.marginals.(e1);
  checkf 0.03 "e2" tt.qb r.Pc_result.marginals.(e2);
  checkf 0.03 "e3" tt.qc r.Pc_result.marginals.(e3);
  checkf 0.03 "e4" tt.q4 r.Pc_result.marginals.(e4)

let test_independence_pc_breaks_under_correlation () =
  (* §3.1: with e2, e3 strongly correlated the Independence equations are
     wrong. Correlation-complete must beat Independence on the correlated
     links. *)
  let tt = { q1 = 0.1; qa = 0.45; qb = 0.0; qc = 0.0; q4 = 0.1 } in
  let m = Toy.case1 () in
  let obs = toy_obs ~t:8000 ~seed:11 tt in
  let ind = Independence_pc.compute m obs in
  let cc, _ = Correlation_complete.compute m obs in
  let truth = [| tt.q1; tt.qa; tt.qa; tt.q4 |] in
  let err r =
    Metrics.mean_abs_error ~truth ~estimate:r.Pc_result.marginals
      ~over:[ e2; e3 ]
  in
  check_bool "correlation-complete beats independence on correlated pair"
    true
    (err cc < err ind)

let test_correlation_heuristic_runs () =
  let m = Toy.case1 () in
  let obs = toy_obs toy_truth in
  let r, _eng = Correlation_heuristic.compute m obs in
  let g1, _, _, _, _ = toy_good_probs toy_truth in
  checkf 0.05 "heuristic recovers e1" (1.0 -. g1)
    r.Pc_result.marginals.(e1);
  (* On the 3-path toy the pool is tiny; at scale it dwarfs the unknown
     count (asserted by the integration tests). *)
  check_bool "forms at least as many equations as unknowns" true
    (r.Pc_result.n_rows >= r.Pc_result.n_vars)

let test_correlation_complete_fewer_rows () =
  (* The paper's claim: Correlation-complete forms the minimum number of
     equations; the heuristic forms significantly more. *)
  let m = Toy.case1 () in
  let obs = toy_obs toy_truth in
  let cc, _ = Correlation_complete.compute m obs in
  let ch, _ = Correlation_heuristic.compute m obs in
  check_bool "complete never uses more equations" true
    (cc.Pc_result.n_rows <= ch.Pc_result.n_rows);
  check_bool "complete rows = vars here" true
    (cc.Pc_result.n_rows = cc.Pc_result.n_vars)

(* ------------------------------------------------------------------ *)
(* Sparsity                                                            *)
(* ------------------------------------------------------------------ *)

let infer_sparsity m congested =
  let n_paths = m.Model.n_paths in
  let congested_paths = Bitset.of_list n_paths congested in
  let good_paths = Bitset.create n_paths in
  Bitset.set_all good_paths;
  Bitset.diff_into ~into:good_paths congested_paths;
  Sparsity.infer m ~congested_paths ~good_paths

let test_sparsity_paper_example () =
  (* §3.1: "if the congested paths are {p1,p2,p3}, Sparsity will infer
     that the congested links are {e1,e3}". *)
  let m = Toy.case1 () in
  let inferred = infer_sparsity m [ p1; p2; p3 ] in
  check_ints "paper's inference" [ e1; e3 ] (Bitset.to_list inferred)

let test_sparsity_counterexample_metrics () =
  (* §3.1 continued: if e2 and e3 were actually congested, Sparsity
     "will miss one congested link and falsely blame one good link". *)
  let m = Toy.case1 () in
  let inferred = infer_sparsity m [ p1; p2; p3 ] in
  let actual = Bitset.of_list 4 [ e2; e3 ] in
  (match Metrics.detection_rate ~actual ~inferred with
  | Some dr -> checkf 1e-9 "detects half" 0.5 dr
  | None -> Alcotest.fail "defined");
  match Metrics.false_positive_rate ~actual ~inferred with
  | Some fpr -> checkf 1e-9 "half the blame is false" 0.5 fpr
  | None -> Alcotest.fail "defined"

let test_sparsity_good_paths_exonerate () =
  (* If p3 is good, e3 and e4 are exonerated; congested p2 must be blamed
     on e1. *)
  let m = Toy.case1 () in
  let inferred = infer_sparsity m [ p1; p2 ] in
  check_ints "only e1" [ e1 ] (Bitset.to_list inferred)

let test_sparsity_all_good () =
  let m = Toy.case1 () in
  let inferred = infer_sparsity m [] in
  check_bool "nothing inferred" true (Bitset.is_empty inferred)

(* ------------------------------------------------------------------ *)
(* Bayesian inference                                                  *)
(* ------------------------------------------------------------------ *)

let test_bayesian_independence_worked_example () =
  (* §3.1 worked example: congested paths {p1,p2}, p3 good. Solutions are
     {e1} (probability 0.8 of occurring) and {e1,e2} (0.1). The MAP
     choice is {e1}. With marginals P(e1)=0.9, P(e2)=0.1 the greedy
     picks exactly that. *)
  let m = Toy.case1 () in
  let congested_paths = Bitset.of_list 3 [ p1; p2 ] in
  let good_paths = Bitset.of_list 3 [ p3 ] in
  let inferred =
    Bayesian.infer_independence m
      ~marginals:[| 0.9; 0.1; 0.0; 0.0 |]
      ~congested_paths ~good_paths
  in
  check_ints "MAP solution {e1}" [ e1 ] (Bitset.to_list inferred)

let test_bayesian_independence_prefers_likely () =
  (* All paths congested; e2,e3 highly likely congested, e1 rarely. The
     pruning must drop e1 when {e2,e3} explains everything more
     probably... but e4 and e3 also cover p3. With P(e2)=P(e3)=0.8 and
     P(e1)=P(e4)=0.01 the likeliest consistent cover is {e2,e3}. *)
  let m = Toy.case1 () in
  let congested_paths = Bitset.of_list 3 [ p1; p2; p3 ] in
  let good_paths = Bitset.create 3 in
  let inferred =
    Bayesian.infer_independence m
      ~marginals:[| 0.01; 0.8; 0.8; 0.01 |]
      ~congested_paths ~good_paths
  in
  check_ints "picks the probable pair" [ e2; e3 ] (Bitset.to_list inferred)

let test_bayesian_correlation_uses_joint () =
  (* e2 and e3 perfectly correlated (factor a only): when all paths are
     congested, the correlation-aware MAP must pick {e2,e3} (the actual
     frequent event) over Sparsity's {e1,e3}. *)
  let tt = { q1 = 0.05; qa = 0.4; qb = 0.0; qc = 0.0; q4 = 0.05 } in
  let m = Toy.case1 () in
  let obs = toy_obs ~t:8000 ~seed:3 tt in
  let sel = Algorithm1.select m obs in
  let eng = Prob_engine.solve sel obs in
  let congested_paths = Bitset.of_list 3 [ p1; p2; p3 ] in
  let good_paths = Bitset.create 3 in
  let inferred =
    Bayesian.infer_correlation m ~engine:eng ~congested_paths ~good_paths
  in
  check_bool "e2 in solution" true (Bitset.get inferred e2);
  check_bool "e3 in solution" true (Bitset.get inferred e3)

let test_solution_logprob_ranks_truth () =
  let tt = { q1 = 0.05; qa = 0.4; qb = 0.0; qc = 0.0; q4 = 0.05 } in
  let m = Toy.case1 () in
  let obs = toy_obs ~t:8000 ~seed:3 tt in
  let sel = Algorithm1.select m obs in
  let eng = Prob_engine.solve sel obs in
  let lp links = Bayesian.solution_logprob m ~engine:eng
      (Bitset.of_list 4 links)
  in
  (* {e2,e3} happens with probability ~qa(1-q1)(1-q4) ≈ 0.36;
     {e1,e3} alone is impossible under perfect correlation (≈ 0). *)
  check_bool "correlated pair more probable than split" true
    (lp [ e2; e3 ] > lp [ e1; e3 ])

(* ------------------------------------------------------------------ *)
(* Confidence intervals                                                *)
(* ------------------------------------------------------------------ *)

module Confidence = Tomo.Confidence

let test_confidence_brackets_point () =
  let m, eng = solve_case1 ~t:2000 () in
  ignore m;
  let cis =
    Confidence.link_marginal_cis eng ~resamples:40 ~level:0.9
      ~rng:(Rng.create 77)
  in
  check_int "one ci per link" 4 (Array.length cis);
  Array.iter
    (fun ci ->
      check_bool "lo <= hi" true (ci.Confidence.lo <= ci.Confidence.hi);
      check_bool "interval in [0,1]" true
        (ci.Confidence.lo >= 0.0 && ci.Confidence.hi <= 1.0))
    cis;
  (* With 2000 intervals the CI half-width should be modest and the true
     values covered for most links. *)
  let truths = [| 0.2; 0.475; 0.405; 0.1 |] in
  (* truth from toy_truth: e1 = q1; e2 = 1-(1-qa)(1-qb); e3 =
     1-(1-qa)(1-qc); e4 = q4. *)
  let covered = ref 0 in
  Array.iteri
    (fun e ci ->
      if truths.(e) >= ci.Confidence.lo -. 0.02
         && truths.(e) <= ci.Confidence.hi +. 0.02
      then incr covered)
    cis;
  check_bool "CIs cover most true marginals" true (!covered >= 3)

let test_confidence_narrows_with_t () =
  let width eng =
    let cis =
      Confidence.link_marginal_cis eng ~resamples:30 ~level:0.9
        ~rng:(Rng.create 5)
    in
    Array.fold_left
      (fun acc ci -> acc +. (ci.Confidence.hi -. ci.Confidence.lo))
      0.0 cis
  in
  let _, eng_short = solve_case1 ~t:300 ~seed:9 () in
  let _, eng_long = solve_case1 ~t:6000 ~seed:9 () in
  check_bool "longer experiments give narrower intervals" true
    (width eng_long < width eng_short)

let test_confidence_subset_ci () =
  let m, eng = solve_case1 ~t:2000 () in
  let subset = Subsets.make m ~corr:1 [| e2; e3 |] in
  match
    Confidence.subset_good_prob_ci eng ~subset ~resamples:30 ~level:0.9
      ~rng:(Rng.create 3)
  with
  | Some ci ->
      let _, _, _, g23, _ = toy_good_probs toy_truth in
      check_bool "covers truth" true
        (g23 >= ci.Tomo.Confidence.lo -. 0.05
        && g23 <= ci.Tomo.Confidence.hi +. 0.05)
  | None -> Alcotest.fail "subset is registered; CI expected"

let test_confidence_validation () =
  let _, eng = solve_case1 ~t:300 () in
  Alcotest.check_raises "resamples >= 2"
    (Invalid_argument "Confidence: need >= 2 resamples") (fun () ->
      ignore
        (Confidence.link_marginal_cis eng ~resamples:1 ~level:0.9
           ~rng:(Rng.create 1)));
  Alcotest.check_raises "level in (0,1)"
    (Invalid_argument "Confidence: level outside (0,1)") (fun () ->
      ignore
        (Confidence.link_marginal_cis eng ~resamples:5 ~level:1.5
           ~rng:(Rng.create 1)))

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_edge_cases () =
  let actual = Bitset.of_list 4 [ 0 ] in
  let nothing = Bitset.create 4 in
  check_bool "DR undefined when nothing congested" true
    (Metrics.detection_rate ~actual:nothing ~inferred:actual = None);
  check_bool "FPR undefined when nothing inferred" true
    (Metrics.false_positive_rate ~actual ~inferred:nothing = None);
  (match Metrics.detection_rate ~actual ~inferred:actual with
  | Some dr -> checkf 1e-12 "perfect detection" 1.0 dr
  | None -> Alcotest.fail "defined");
  match Metrics.mean_opt [ Some 1.0; None; Some 0.0 ] with
  | Some v -> checkf 1e-12 "mean over defined" 0.5 v
  | None -> Alcotest.fail "defined"

let test_metrics_mae () =
  checkf 1e-12 "mae over subset" 0.25
    (Metrics.mean_abs_error ~truth:[| 0.0; 1.0; 0.5 |]
       ~estimate:[| 0.5; 1.0; 0.5 |]
       ~over:[ 0; 1 ])

let prop_metrics_bounds =
  QCheck.Test.make ~name:"DR and FPR always within [0,1]" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(int_bound 10) (int_bound 19))
        (list_of_size Gen.(int_bound 10) (int_bound 19)))
    (fun (a, i) ->
      let actual = Bitset.of_list 20 a and inferred = Bitset.of_list 20 i in
      let ok_opt = function
        | None -> true
        | Some v -> v >= 0.0 && v <= 1.0
      in
      ok_opt (Metrics.detection_rate ~actual ~inferred)
      && ok_opt (Metrics.false_positive_rate ~actual ~inferred))

let prop_engine_probabilities_in_range =
  QCheck.Test.make
    ~name:"toy engine marginals stay in [0,1] across random truths"
    ~count:15 (QCheck.int_range 0 10_000) (fun seed ->
      let rng = Rng.create seed in
      let tt =
        {
          q1 = Rng.float rng 0.9;
          qa = Rng.float rng 0.9;
          qb = Rng.float rng 0.9;
          qc = Rng.float rng 0.9;
          q4 = Rng.float rng 0.9;
        }
      in
      let m = Toy.case1 () in
      let obs = toy_obs ~t:600 ~seed tt in
      let sel = Algorithm1.select m obs in
      let eng = Prob_engine.solve sel obs in
      List.for_all
        (fun e ->
          let p = Prob_engine.link_marginal eng e in
          p >= 0.0 && p <= 1.0)
        [ e1; e2; e3; e4 ])

(* ------------------------------------------------------------------ *)
(* SCFS (Duffield's tree algorithm, reference [8])                     *)
(* ------------------------------------------------------------------ *)

module Scfs = Tomo.Scfs

(* A 3-level binary-ish tree:
        root
       /    \
      0      1
     / \      \
    2   3      4
   leaves: 2, 3, 4 => paths p0=(0,2), p1=(0,3), p2=(1,4). *)
let tree () =
  Scfs.make ~parent:[| None; None; Some 0; Some 0; Some 1 |]

let test_scfs_structure () =
  let t = tree () in
  check_int "links" 5 (Scfs.n_links t);
  Alcotest.(check (array int)) "leaves" [| 2; 3; 4 |] (Scfs.leaves t);
  Alcotest.(check (array int)) "path of leaf 3" [| 0; 3 |]
    (Scfs.path_links t ~leaf:3)

let test_scfs_blames_subtree_root () =
  (* Both leaves under link 0 congested: SCFS blames 0 alone. *)
  let t = tree () in
  let inferred = Scfs.infer t ~congested_paths:(Bitset.of_list 3 [ 0; 1 ]) in
  check_ints "blames the common parent" [ 0 ] (Bitset.to_list inferred)

let test_scfs_blames_leaf () =
  (* Only one leaf under link 0 congested: the leaf link is blamed. *)
  let t = tree () in
  let inferred = Scfs.infer t ~congested_paths:(Bitset.of_list 3 [ 0 ]) in
  check_ints "blames the leaf" [ 2 ] (Bitset.to_list inferred)

let test_scfs_all_good () =
  let t = tree () in
  let inferred = Scfs.infer t ~congested_paths:(Bitset.create 3) in
  check_bool "nothing blamed" true (Bitset.is_empty inferred)

let test_scfs_validation () =
  Alcotest.check_raises "cycle rejected"
    (Invalid_argument "Scfs.make: cycle in parent relation") (fun () ->
      ignore (Scfs.make ~parent:[| Some 1; Some 0 |]));
  Alcotest.check_raises "range checked"
    (Invalid_argument "Scfs.make: parent out of range") (fun () ->
      ignore (Scfs.make ~parent:[| Some 9 |]))

let test_scfs_to_model () =
  let t = tree () in
  let m = Scfs.to_model t in
  check_int "5 links" 5 m.Model.n_links;
  check_int "3 paths" 3 m.Model.n_paths;
  (* Sparsity on the tree model agrees with SCFS on the subtree-root
     case: link 0 explains both congested paths with one pick. *)
  let congested_paths = Bitset.of_list 3 [ 0; 1 ] in
  let good_paths = Bitset.of_list 3 [ 2 ] in
  let sparsity = Sparsity.infer m ~congested_paths ~good_paths in
  check_ints "sparsity = scfs here" [ 0 ] (Bitset.to_list sparsity)

let prop_scfs_consistent_and_minimal =
  QCheck.Test.make
    ~name:"SCFS explains every congested leaf and only maximal subtrees"
    ~count:80
    QCheck.(pair (int_range 0 5_000) (int_range 2 12))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      (* Random forest: each link's parent is a lower-numbered link or
         the root. *)
      let parent =
        Array.init n (fun k ->
            if k = 0 || Rng.bool rng ~p:0.3 then None
            else Some (Rng.int rng k))
      in
      let t = Scfs.make ~parent in
      let n_leaves = Array.length (Scfs.leaves t) in
      let congested =
        Tomo_util.Bitset.of_list n_leaves
          (List.filter
             (fun _ -> Rng.bool rng ~p:0.4)
             (List.init n_leaves (fun i -> i)))
      in
      let inferred = Scfs.infer t ~congested_paths:congested in
      (* every congested leaf's path hits an inferred link, and no good
         leaf's path does *)
      let ok = ref true in
      Array.iteri
        (fun i leaf ->
          let path = Scfs.path_links t ~leaf in
          let covered =
            Array.exists (Tomo_util.Bitset.get inferred) path
          in
          if covered <> Tomo_util.Bitset.get congested i then ok := false)
        (Scfs.leaves t);
      !ok)

(* ------------------------------------------------------------------ *)
(* Cross-cutting properties on random small models                      *)
(* ------------------------------------------------------------------ *)

(* Random small mesh model: n links in k correlation sets, m random
   paths. *)
let random_model rng =
  let n_links = 3 + Rng.int rng 8 in
  let n_sets = 1 + Rng.int rng 3 in
  let corr_of = Array.init n_links (fun _ -> Rng.int rng n_sets) in
  let corr_sets =
    Array.init n_sets (fun c ->
        Array.of_list
          (List.filter
             (fun e -> corr_of.(e) = c)
             (List.init n_links (fun e -> e))))
    |> Array.to_list
    |> List.filter (fun s -> Array.length s > 0)
    |> Array.of_list
  in
  let n_paths = 2 + Rng.int rng 6 in
  let paths =
    Array.init n_paths (fun _ ->
        let len = 1 + Rng.int rng (min 4 n_links) in
        Rng.sample rng (Array.init n_links (fun e -> e)) len)
  in
  Model.make ~n_links ~paths ~corr_sets

let random_obs rng model ~t =
  let probs = Array.init model.Model.n_links (fun _ -> Rng.float rng 0.6) in
  let states =
    Array.init t (fun _ ->
        List.filter
          (fun e -> Rng.bool rng ~p:probs.(e))
          (List.init model.Model.n_links (fun e -> e)))
  in
  let path_good =
    Array.map
      (fun links ->
        let b = Bitset.create t in
        Array.iteri
          (fun i congested ->
            if
              not
                (List.exists
                   (fun e -> Array.exists (fun l -> l = e) links)
                   congested)
            then Bitset.set b i)
          states;
        b)
      (Array.init model.Model.n_paths (fun p ->
           Array.of_list (Bitset.to_list model.Model.path_links.(p))))
  in
  Observations.make ~t_intervals:t ~path_good

let prop_selection_rows_well_formed =
  QCheck.Test.make
    ~name:"Algorithm 1 rows: vars sorted, distinct, registered" ~count:40
    (QCheck.int_range 0 10_000) (fun seed ->
      let rng = Rng.create seed in
      let model = random_model rng in
      let obs = random_obs rng model ~t:60 in
      let sel = Algorithm1.select model obs in
      Array.for_all
        (fun row ->
          let vars = row.Eqn.vars in
          let sorted = ref true in
          Array.iteri
            (fun i v ->
              if i > 0 && vars.(i - 1) >= v then sorted := false;
              if v < 0 || v >= Eqn.n_vars sel.Algorithm1.registry then
                sorted := false)
            vars;
          !sorted)
        sel.Algorithm1.rows)

(* The witness prefilter is a pure short-circuit: across random
   topologies, a selection with it on must be bit-identical to one with
   it forced off — same rows (paths and variables), same registry size,
   same null-space basis entry for entry. *)
let prop_selection_witness_parity =
  QCheck.Test.make
    ~name:"Algorithm 1: witness-on selection ≡ witness-off (bit-identical)"
    ~count:40 (QCheck.int_range 0 10_000) (fun seed ->
      let rng = Rng.create (seed + 70_000) in
      let model = random_model rng in
      let obs = random_obs rng model ~t:60 in
      let base = Algorithm1.select model obs in
      let off =
        Algorithm1.select
          ~config:
            { Algorithm1.default_config with Algorithm1.witness_k = Some 0 }
          model obs
      in
      let rows_equal =
        Array.length base.Algorithm1.rows = Array.length off.Algorithm1.rows
        && Array.for_all2
             (fun (a : Eqn.row) (b : Eqn.row) ->
               a.Eqn.paths = b.Eqn.paths && a.Eqn.vars = b.Eqn.vars)
             base.Algorithm1.rows off.Algorithm1.rows
      in
      let ns_equal =
        let a = base.Algorithm1.nullspace and b = off.Algorithm1.nullspace in
        Matrix.rows a = Matrix.rows b
        && Matrix.cols a = Matrix.cols b
        &&
        let ok = ref true in
        for i = 0 to Matrix.rows a - 1 do
          for j = 0 to Matrix.cols a - 1 do
            if Matrix.get a i j <> Matrix.get b i j then ok := false
          done
        done;
        !ok
      in
      rows_equal && ns_equal
      && Eqn.n_vars base.Algorithm1.registry
         = Eqn.n_vars off.Algorithm1.registry)

let prop_selection_rank_consistent =
  QCheck.Test.make
    ~name:"Algorithm 1: rows + nullity = unknowns (independent selection)"
    ~count:40 (QCheck.int_range 0 10_000) (fun seed ->
      let rng = Rng.create (seed + 50_000) in
      let model = random_model rng in
      let obs = random_obs rng model ~t:60 in
      let sel = Algorithm1.select model obs in
      Array.length sel.Algorithm1.rows
      + Matrix.cols sel.Algorithm1.nullspace
      = Eqn.n_vars sel.Algorithm1.registry)

let consistent_inference infer =
  QCheck.Test.make
    ~name:
      ("inference is consistent: covers congested paths, avoids \
        good-path links (" ^ fst infer ^ ")")
    ~count:40 (QCheck.int_range 0 10_000) (fun seed ->
      let rng = Rng.create (seed + 90_000) in
      let model = random_model rng in
      let obs = random_obs rng model ~t:40 in
      let interval = Rng.int rng 40 in
      let congested_paths = Observations.congested_paths_at obs ~interval in
      let good_paths = Observations.good_paths_at obs ~interval in
      let inferred = (snd infer) model obs ~congested_paths ~good_paths in
      (* no inferred link lies on a good path *)
      let good_links =
        Model.links_of_paths model
          (Array.of_list (Bitset.to_list good_paths))
      in
      Bitset.disjoint inferred good_links
      && (* every congested path is covered, except paths with no
            candidate link at all (impossible under ideal measurement,
            tolerated for robustness) *)
      Bitset.fold
        (fun ok p ->
          ok
          &&
          let links = model.Model.path_links.(p) in
          (not (Bitset.disjoint links inferred))
          || Bitset.subset links good_links)
        true congested_paths)

let prop_sparsity_consistent =
  consistent_inference
    ( "sparsity",
      fun model _obs ~congested_paths ~good_paths ->
        Sparsity.infer model ~congested_paths ~good_paths )

let prop_bayesian_ind_consistent =
  consistent_inference
    ( "bayesian-independence",
      fun model obs ~congested_paths ~good_paths ->
        let pc = Independence_pc.compute model obs in
        Bayesian.infer_independence model
          ~marginals:pc.Pc_result.marginals ~congested_paths ~good_paths )

let prop_bayesian_corr_consistent =
  consistent_inference
    ( "bayesian-correlation",
      fun model obs ~congested_paths ~good_paths ->
        let _, engine = Correlation_complete.compute model obs in
        Bayesian.infer_correlation model ~engine ~congested_paths
          ~good_paths )

let prop_identifiable_good_probs_in_range =
  QCheck.Test.make
    ~name:"identifiable good-probabilities stay within [0,1]" ~count:30
    (QCheck.int_range 0 10_000) (fun seed ->
      let rng = Rng.create (seed + 130_000) in
      let model = random_model rng in
      let obs = random_obs rng model ~t:80 in
      let sel = Algorithm1.select model obs in
      let eng = Prob_engine.solve sel obs in
      let ok = ref true in
      for v = 0 to Eqn.n_vars sel.Algorithm1.registry - 1 do
        let s = Eqn.subset_of_var sel.Algorithm1.registry v in
        match Prob_engine.good_prob eng s with
        | Some g -> if g < 0.0 || g > 1.0 then ok := false
        | None -> ()
      done;
      !ok)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "algorithms"
    [
      ( "algorithm1",
        [
          Alcotest.test_case "Case 1: full rank, 5 equations" `Quick
            test_alg1_case1_full_rank;
          Alcotest.test_case "Case 2: Identifiability++ fails" `Quick
            test_alg1_case2_nonidentifiable;
          Alcotest.test_case "selected rows are independent" `Quick
            test_alg1_rows_are_independent;
          Alcotest.test_case "restriction to potentially congested" `Quick
            test_alg1_effective_restriction;
          Alcotest.test_case "reports equations_formed via registry" `Quick
            test_alg1_reports_equations_formed;
        ] );
      ( "prob_engine",
        [
          Alcotest.test_case "recovers subset good-probs" `Slow
            test_engine_recovers_good_probs;
          Alcotest.test_case "link marginals" `Slow
            test_engine_link_marginals;
          Alcotest.test_case "congestion probabilities" `Slow
            test_engine_congestion_prob;
          Alcotest.test_case "Case-2 non-identifiability" `Slow
            test_engine_case2_unidentifiable;
          Alcotest.test_case "always-good links report 0" `Quick
            test_engine_always_good_marginal_zero;
          Alcotest.test_case "pattern log-probabilities" `Slow
            test_engine_pattern_logprob;
          qc prop_engine_probabilities_in_range;
        ] );
      ( "pc_baselines",
        [
          Alcotest.test_case "Independence correct when independent" `Slow
            test_independence_pc_uncorrelated;
          Alcotest.test_case "Independence breaks under correlation" `Slow
            test_independence_pc_breaks_under_correlation;
          Alcotest.test_case "Correlation-heuristic sane" `Slow
            test_correlation_heuristic_runs;
          Alcotest.test_case "complete forms fewer equations" `Slow
            test_correlation_complete_fewer_rows;
        ] );
      ( "sparsity",
        [
          Alcotest.test_case "paper's Fig.1 inference" `Quick
            test_sparsity_paper_example;
          Alcotest.test_case "paper's counterexample scoring" `Quick
            test_sparsity_counterexample_metrics;
          Alcotest.test_case "good paths exonerate links" `Quick
            test_sparsity_good_paths_exonerate;
          Alcotest.test_case "no congestion" `Quick test_sparsity_all_good;
        ] );
      ( "bayesian",
        [
          Alcotest.test_case "§3.1 worked example" `Quick
            test_bayesian_independence_worked_example;
          Alcotest.test_case "prefers likely links" `Quick
            test_bayesian_independence_prefers_likely;
          Alcotest.test_case "correlation-aware MAP" `Slow
            test_bayesian_correlation_uses_joint;
          Alcotest.test_case "solution likelihood ranking" `Slow
            test_solution_logprob_ranks_truth;
        ] );
      ( "scfs",
        [
          Alcotest.test_case "tree structure" `Quick test_scfs_structure;
          Alcotest.test_case "blames subtree root" `Quick
            test_scfs_blames_subtree_root;
          Alcotest.test_case "blames single leaf" `Quick
            test_scfs_blames_leaf;
          Alcotest.test_case "all good" `Quick test_scfs_all_good;
          Alcotest.test_case "validation" `Quick test_scfs_validation;
          Alcotest.test_case "tree-to-mesh bridge" `Quick
            test_scfs_to_model;
          qc prop_scfs_consistent_and_minimal;
        ] );
      ( "properties",
        [
          qc prop_selection_rows_well_formed;
          qc prop_selection_witness_parity;
          qc prop_selection_rank_consistent;
          qc prop_sparsity_consistent;
          qc prop_bayesian_ind_consistent;
          qc prop_bayesian_corr_consistent;
          qc prop_identifiable_good_probs_in_range;
        ] );
      ( "confidence",
        [
          Alcotest.test_case "CIs bracket estimates" `Slow
            test_confidence_brackets_point;
          Alcotest.test_case "narrower with more data" `Slow
            test_confidence_narrows_with_t;
          Alcotest.test_case "subset CI" `Slow test_confidence_subset_ci;
          Alcotest.test_case "validation" `Quick test_confidence_validation;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "edge cases" `Quick test_metrics_edge_cases;
          Alcotest.test_case "mean absolute error" `Quick test_metrics_mae;
          qc prop_metrics_bounds;
        ] );
    ]
