(* Command-line entry point: regenerate any table or figure of the
   paper's evaluation, plus the ablation/sensitivity experiments.

     tomo_cli fig3    --scale medium --seed 1 --seeds 3
     tomo_cli fig4a / fig4b / fig4c / fig4d / table2 / all
     tomo_cli ablation / probes / convergence
     tomo_cli summary

   Scale "paper" matches §3.2 (1000/2000 links, 1500 paths, 1000
   intervals) and takes tens of minutes; "medium" (default) preserves the
   qualitative shape in about a minute. `--seeds N` averages figures over
   N independently generated topologies (seed, seed+1, ...). *)

open Cmdliner

let ppf = Format.std_formatter

let scale_arg =
  let parse s =
    match Tomo_experiments.Workload.scale_of_string s with
    | Ok v -> Ok v
    | Error e -> Error (`Msg e)
  in
  let print ppf s =
    Format.fprintf ppf "%s" (Tomo_experiments.Workload.scale_to_string s)
  in
  Arg.(
    value
    & opt (conv (parse, print)) Tomo_experiments.Workload.Medium
    & info [ "scale" ] ~docv:"SCALE"
        ~doc:"Experiment scale: small, medium or paper.")

let seed_arg =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed for the experiment.")

let seeds_arg =
  Arg.(
    value & opt int 1
    & info [ "seeds" ] ~docv:"N"
        ~doc:
          "Average figures over N topologies (seeds SEED..SEED+N-1). \
           Applies to fig3, fig4a, fig4b and all.")

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"DIR"
        ~doc:
          "Also write the figure's data as CSV files into $(docv) \
           (created if missing). Applies to fig3, fig4a-d and all.")

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Record spans and metrics while the command runs, then print \
           the span tree and a metrics table (same as TOMO_TRACE=1).")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Run experiment cells on $(docv) domains (default: \
           TOMO_JOBS, or one less than the available cores). $(docv)=1 \
           forces sequential execution; results are identical either \
           way.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write a JSON snapshot of every counter, gauge and histogram \
           to $(docv) (\"-\" for stdout; same as TOMO_METRICS_OUT).")

(* Configure the observability sinks from the CLI flags (falling back to
   the TOMO_TRACE / TOMO_METRICS_OUT environment) and flush them once
   the command is done. *)
let with_obs jobs trace metrics_out f =
  Option.iter Tomo_par.Pool.set_default_jobs jobs;
  Tomo_obs.Sink.init
    ?trace:(if trace then Some Tomo_obs.Sink.Trace_human else None)
    ?metrics_out ();
  f ();
  Tomo_obs.Sink.flush ()

let ensure_dir = function
  | None -> ()
  | Some dir -> if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let csv_path dir name = Filename.concat dir name

let seed_list seed n = List.init (max 1 n) (fun i -> seed + i)

let announce name scale seed seeds =
  Format.fprintf ppf "Running %s (scale=%s, seed=%d%s)...@." name
    (Tomo_experiments.Workload.scale_to_string scale)
    seed
    (if seeds > 1 then Printf.sprintf ", %d seeds averaged" seeds else "")

let run_fig3 scale seed seeds csv =
  announce "Figure 3" scale seed seeds;
  let rows =
    Tomo_experiments.Fig3.run_averaged ~scale ~seeds:(seed_list seed seeds)
  in
  Tomo_experiments.Render.fig3 ppf rows;
  ensure_dir csv;
  Option.iter
    (fun dir ->
      Tomo_experiments.Render.fig3_csv (csv_path dir "fig3.csv") rows)
    csv

let run_fig4_mae topology title scale seed seeds csv csv_name =
  announce title scale seed seeds;
  let rows =
    Tomo_experiments.Fig4.run_mae_averaged ~topology ~scale
      ~seeds:(seed_list seed seeds)
  in
  Tomo_experiments.Render.fig4_mae ppf ~title rows;
  ensure_dir csv;
  Option.iter
    (fun dir ->
      Tomo_experiments.Render.fig4_mae_csv (csv_path dir csv_name) rows)
    csv

let fig4a scale seed seeds csv =
  run_fig4_mae Tomo_experiments.Workload.Brite
    "Figure 4(a): mean absolute error of link congestion probability \
     (Brite)"
    scale seed seeds csv "fig4a.csv"

let fig4b scale seed seeds csv =
  run_fig4_mae Tomo_experiments.Workload.Sparse
    "Figure 4(b): mean absolute error of link congestion probability \
     (Sparse)"
    scale seed seeds csv "fig4b.csv"

let run_fig4c scale seed seeds csv =
  announce "Figure 4(c)" scale seed seeds;
  let curves = Tomo_experiments.Fig4.run_cdf ~scale ~seed ~steps:10 in
  Tomo_experiments.Render.fig4_cdf ppf curves;
  ensure_dir csv;
  Option.iter
    (fun dir ->
      Tomo_experiments.Render.fig4_cdf_csv (csv_path dir "fig4c.csv") curves)
    csv

let run_fig4d scale seed seeds csv =
  announce "Figure 4(d)" scale seed seeds;
  let cells = Tomo_experiments.Fig4.run_subsets ~scale ~seed in
  Tomo_experiments.Render.fig4_subsets ppf cells;
  ensure_dir csv;
  Option.iter
    (fun dir ->
      Tomo_experiments.Render.fig4_subsets_csv
        (csv_path dir "fig4d.csv")
        cells)
    csv

let run_ablation scale seed seeds =
  announce "subset-size ablation" scale seed seeds;
  Tomo_experiments.Ablation.render_subset_rows ppf
    (Tomo_experiments.Ablation.subset_size_sweep ~scale ~seed
       ~sizes:[ 1; 2; 3; 4 ])

let run_fallback scale seed seeds =
  announce "fallback-strategy ablation" scale seed seeds;
  Tomo_experiments.Ablation.render_fallback_rows ppf
    (Tomo_experiments.Ablation.fallback_sweep ~scale ~seed)

let run_probes scale seed seeds =
  announce "probing sensitivity" scale seed seeds;
  Tomo_experiments.Ablation.render_probe_rows ppf
    (Tomo_experiments.Ablation.probe_sweep ~scale ~seed
       ~budgets:[ 1600; 400; 100; 25 ])

let run_convergence scale seed seeds =
  announce "estimation convergence" scale seed seeds;
  Tomo_experiments.Ablation.render_interval_rows ppf
    (Tomo_experiments.Ablation.interval_sweep ~scale ~seed
       ~lengths:[ 50; 100; 200; 400; 800; 1600 ])

let run_report scale seed _seeds =
  Format.fprintf ppf
    "Monitoring report: peers of the source ISP (scale=%s, seed=%d)@."
    (Tomo_experiments.Workload.scale_to_string scale)
    seed;
  let w =
    Tomo_experiments.Workload.prepare
      (Tomo_experiments.Workload.spec ~scale ~seed
         Tomo_experiments.Workload.Brite Tomo_netsim.Scenario.Random)
  in
  let _, engine =
    Tomo.Correlation_complete.compute w.Tomo_experiments.Workload.model
      w.Tomo_experiments.Workload.obs
  in
  let peers =
    Tomo_experiments.Peer_report.build
      ~model:w.Tomo_experiments.Workload.model ~engine
      ~overlay:w.Tomo_experiments.Workload.overlay ~resamples:30
      ~rng:(Tomo_util.Rng.create (seed + 1))
  in
  Tomo_experiments.Peer_report.render ppf ~top:15 peers

let run_summary scale seed _seeds =
  List.iter
    (fun topology ->
      let spec =
        Tomo_experiments.Workload.spec ~scale ~seed topology
          Tomo_netsim.Scenario.Random
      in
      let w = Tomo_experiments.Workload.prepare spec in
      Format.fprintf ppf "@.%s topology:@.%a@."
        (Tomo_experiments.Workload.topology_to_string topology)
        Tomo_topology.Overlay.pp_summary w.Tomo_experiments.Workload.overlay)
    [ Tomo_experiments.Workload.Brite; Tomo_experiments.Workload.Sparse ]

let all scale seed seeds csv =
  run_fig3 scale seed seeds csv;
  fig4a scale seed seeds csv;
  fig4b scale seed seeds csv;
  run_fig4c scale seed seeds csv;
  run_fig4d scale seed seeds csv;
  Tomo_experiments.Render.table2 ppf

let cmd name doc f =
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const (fun scale seed seeds jobs trace mout ->
          with_obs jobs trace mout (fun () -> f scale seed seeds))
      $ scale_arg $ seed_arg $ seeds_arg $ jobs_arg $ trace_arg
      $ metrics_out_arg)

let cmd_csv name doc f =
  Cmd.v
    (Cmd.info name ~doc)
    Term.(
      const (fun scale seed seeds csv jobs trace mout ->
          with_obs jobs trace mout (fun () -> f scale seed seeds csv))
      $ scale_arg $ seed_arg $ seeds_arg $ csv_arg $ jobs_arg $ trace_arg
      $ metrics_out_arg)

let table2_cmd =
  Cmd.v
    (Cmd.info "table2" ~doc:"Print the paper's Table 2 (static).")
    Term.(const (fun () -> Tomo_experiments.Render.table2 ppf) $ const ())

let () =
  let info =
    Cmd.info "tomo_cli" ~version:"1.0.0"
      ~doc:
        "Reproduce the evaluation of 'Shifting Network Tomography Toward \
         A Practical Goal' (CoNEXT 2011)."
  in
  let cmds =
    [
      cmd_csv "fig3" "Figure 3: Boolean-Inference accuracy (both panels)."
        run_fig3;
      cmd_csv "fig4a" "Figure 4(a): PC error on Brite topologies." fig4a;
      cmd_csv "fig4b" "Figure 4(b): PC error on Sparse topologies." fig4b;
      cmd_csv "fig4c" "Figure 4(c): error CDF (No Independence, Sparse)."
        run_fig4c;
      cmd_csv "fig4d" "Figure 4(d): links vs correlation subsets." run_fig4d;
      cmd "ablation" "Subset-size budget ablation (§4)." run_ablation;
      cmd "fallback" "Chain-link fallback strategy ablation." run_fallback;
      cmd "probes" "E2E-Monitoring sensitivity under packet probing."
        run_probes;
      cmd "convergence" "Accuracy vs experiment length." run_convergence;
      cmd "report" "Operator-facing peer congestion report (§1 scenario)."
        run_report;
      cmd "summary" "Print generated topology statistics." run_summary;
      cmd_csv "all" "Run every figure and table." all;
      table2_cmd;
    ]
  in
  exit (Cmd.eval (Cmd.group info cmds))
