(* Command-line entry point: regenerate any table or figure of the
   paper's evaluation, plus the ablation/sensitivity experiments.

     tomo_cli fig3    --scale medium --seed 1 --seeds 3
     tomo_cli fig4a / fig4b / fig4c / fig4d / table2 / all
     tomo_cli ablation / probes / convergence
     tomo_cli summary

   Scale "paper" matches §3.2 (1000/2000 links, 1500 paths, 1000
   intervals) and takes tens of minutes; "medium" (default) preserves the
   qualitative shape in about a minute. `--seeds N` averages figures over
   N independently generated topologies (seed, seed+1, ...). *)

open Cmdliner

let ppf = Format.std_formatter

let scale_arg =
  let parse s =
    match Tomo_experiments.Workload.scale_of_string s with
    | Ok v -> Ok v
    | Error e -> Error (`Msg e)
  in
  let print ppf s =
    Format.fprintf ppf "%s" (Tomo_experiments.Workload.scale_to_string s)
  in
  Arg.(
    value
    & opt (conv (parse, print)) Tomo_experiments.Workload.Medium
    & info [ "scale" ] ~docv:"SCALE"
        ~doc:"Experiment scale: small, medium or paper.")

let seed_arg =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed for the experiment.")

let seeds_arg =
  Arg.(
    value & opt int 1
    & info [ "seeds" ] ~docv:"N"
        ~doc:
          "Average figures over N topologies (seeds SEED..SEED+N-1). \
           Applies to fig3, fig4a, fig4b and all.")

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"DIR"
        ~doc:
          "Also write the figure's data as CSV files into $(docv) \
           (created if missing). Applies to fig3, fig4a-d and all.")

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Record spans and metrics while the command runs, then print \
           the span tree and a metrics table (same as TOMO_TRACE=1).")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Run experiment cells — and the per-interval probe \
           simulation inside each cell, including gen-trace — on \
           $(docv) domains (default: TOMO_JOBS, or one less than the \
           available cores). $(docv)=1 forces sequential execution; \
           results are bit-identical either way.")

let sparse_threshold_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "sparse-threshold" ] ~docv:"D"
        ~doc:
          "Route auto-dispatched elimination through the sparse kernel \
           when the system density is at most $(docv) (default 0.25; 0 \
           forces the dense kernel everywhere; same as \
           TOMO_SPARSE_THRESHOLD). Results are bit-identical either \
           way.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write a JSON snapshot of every counter, gauge and histogram \
           to $(docv) (\"-\" for stdout; same as TOMO_METRICS_OUT). \
           Written atomically, and periodically with --flush-every.")

let ident_prune_arg =
  Arg.(
    value
    & opt (some bool) None
    & info [ "ident-prune" ] ~docv:"BOOL"
        ~doc:
          "Enable or disable the identifiability pruner: subset sizes \
           proven to contain no inducible correlation subset are \
           skipped before fanning out combinations (default enabled; \
           same as TOMO_IDENT_PRUNE). Results are bit-identical either \
           way — only the work done differs.")

let events_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "events-out" ] ~docv:"FILE"
        ~doc:
          "Append lifecycle events (source open/EOF, re-selection, \
           snapshot written/restored, pool resize) as JSON lines to \
           $(docv) (\"-\" for stderr; same as TOMO_EVENTS_OUT).")

(* Configure the observability sinks from the CLI flags (falling back to
   the TOMO_TRACE / TOMO_METRICS_OUT / TOMO_EVENTS_OUT environment) and
   flush them once the command is done.  Events are configured before
   the pool resize so the startup [pool_resize] lands in the log. *)
let with_obs ?ident_prune sparse jobs trace metrics_out events_out f =
  Option.iter Tomo.Subsets.set_ident_prune ident_prune;
  let events_out =
    match events_out with
    | Some p -> Some p
    | None -> (
        match Sys.getenv_opt "TOMO_EVENTS_OUT" with
        | None | Some "" -> None
        | some -> some)
  in
  Tomo_obs.Events.configure events_out;
  Option.iter Tomo_linalg.Sparse.set_density_threshold sparse;
  Option.iter Tomo_par.Pool.set_default_jobs jobs;
  Tomo_obs.Sink.init
    ?trace:(if trace then Some Tomo_obs.Sink.Trace_human else None)
    ?metrics_out ();
  f ();
  Tomo_obs.Sink.flush ();
  Tomo_obs.Events.close ()

let ensure_dir = function
  | None -> ()
  | Some dir -> if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let csv_path dir name = Filename.concat dir name

let seed_list seed n = List.init (max 1 n) (fun i -> seed + i)

let announce name scale seed seeds =
  Format.fprintf ppf "Running %s (scale=%s, seed=%d%s)...@." name
    (Tomo_experiments.Workload.scale_to_string scale)
    seed
    (if seeds > 1 then Printf.sprintf ", %d seeds averaged" seeds else "")

let run_fig3 scale seed seeds csv =
  announce "Figure 3" scale seed seeds;
  let rows =
    Tomo_experiments.Fig3.run_averaged ~scale ~seeds:(seed_list seed seeds)
  in
  Tomo_experiments.Render.fig3 ppf rows;
  ensure_dir csv;
  Option.iter
    (fun dir ->
      Tomo_experiments.Render.fig3_csv (csv_path dir "fig3.csv") rows)
    csv

let run_fig4_mae topology title scale seed seeds csv csv_name =
  announce title scale seed seeds;
  let rows =
    Tomo_experiments.Fig4.run_mae_averaged ~topology ~scale
      ~seeds:(seed_list seed seeds)
  in
  Tomo_experiments.Render.fig4_mae ppf ~title rows;
  ensure_dir csv;
  Option.iter
    (fun dir ->
      Tomo_experiments.Render.fig4_mae_csv (csv_path dir csv_name) rows)
    csv

let fig4a scale seed seeds csv =
  run_fig4_mae Tomo_experiments.Workload.Brite
    "Figure 4(a): mean absolute error of link congestion probability \
     (Brite)"
    scale seed seeds csv "fig4a.csv"

let fig4b scale seed seeds csv =
  run_fig4_mae Tomo_experiments.Workload.Sparse
    "Figure 4(b): mean absolute error of link congestion probability \
     (Sparse)"
    scale seed seeds csv "fig4b.csv"

let run_fig4c scale seed seeds csv =
  announce "Figure 4(c)" scale seed seeds;
  let curves = Tomo_experiments.Fig4.run_cdf ~scale ~seed ~steps:10 in
  Tomo_experiments.Render.fig4_cdf ppf curves;
  ensure_dir csv;
  Option.iter
    (fun dir ->
      Tomo_experiments.Render.fig4_cdf_csv (csv_path dir "fig4c.csv") curves)
    csv

let run_fig4d scale seed seeds csv =
  announce "Figure 4(d)" scale seed seeds;
  let cells = Tomo_experiments.Fig4.run_subsets ~scale ~seed in
  Tomo_experiments.Render.fig4_subsets ppf cells;
  ensure_dir csv;
  Option.iter
    (fun dir ->
      Tomo_experiments.Render.fig4_subsets_csv
        (csv_path dir "fig4d.csv")
        cells)
    csv

let run_ablation scale seed seeds =
  announce "subset-size ablation" scale seed seeds;
  Tomo_experiments.Ablation.render_subset_rows ppf
    (Tomo_experiments.Ablation.subset_size_sweep ~scale ~seed
       ~sizes:[ 1; 2; 3; 4 ])

let run_fallback scale seed seeds =
  announce "fallback-strategy ablation" scale seed seeds;
  Tomo_experiments.Ablation.render_fallback_rows ppf
    (Tomo_experiments.Ablation.fallback_sweep ~scale ~seed)

let run_probes scale seed seeds =
  announce "probing sensitivity" scale seed seeds;
  Tomo_experiments.Ablation.render_probe_rows ppf
    (Tomo_experiments.Ablation.probe_sweep ~scale ~seed
       ~budgets:[ 1600; 400; 100; 25 ])

let run_convergence scale seed seeds =
  announce "estimation convergence" scale seed seeds;
  Tomo_experiments.Ablation.render_interval_rows ppf
    (Tomo_experiments.Ablation.interval_sweep ~scale ~seed
       ~lengths:[ 50; 100; 200; 400; 800; 1600 ])

let run_report scale seed _seeds =
  Format.fprintf ppf
    "Monitoring report: peers of the source ISP (scale=%s, seed=%d)@."
    (Tomo_experiments.Workload.scale_to_string scale)
    seed;
  let w =
    Tomo_experiments.Workload.prepare
      (Tomo_experiments.Workload.spec ~scale ~seed
         Tomo_experiments.Workload.Brite Tomo_netsim.Scenario.Random)
  in
  let _, engine =
    Tomo.Correlation_complete.compute w.Tomo_experiments.Workload.model
      w.Tomo_experiments.Workload.obs
  in
  let peers =
    Tomo_experiments.Peer_report.build
      ~model:w.Tomo_experiments.Workload.model ~engine
      ~overlay:w.Tomo_experiments.Workload.overlay ~resamples:30
      ~rng:(Tomo_util.Rng.create (seed + 1))
  in
  Tomo_experiments.Peer_report.render ppf ~top:15 peers

let run_summary scale seed _seeds =
  List.iter
    (fun topology ->
      let spec =
        Tomo_experiments.Workload.spec ~scale ~seed topology
          Tomo_netsim.Scenario.Random
      in
      let w = Tomo_experiments.Workload.prepare spec in
      Format.fprintf ppf "@.%s topology:@.%a@."
        (Tomo_experiments.Workload.topology_to_string topology)
        Tomo_topology.Overlay.pp_summary w.Tomo_experiments.Workload.overlay)
    [ Tomo_experiments.Workload.Brite; Tomo_experiments.Workload.Sparse ]

let run_identifiability scale seed _seeds =
  List.iter
    (fun topology ->
      let spec =
        Tomo_experiments.Workload.spec ~scale ~seed topology
          Tomo_netsim.Scenario.Random
      in
      let model =
        Tomo_experiments.Workload.model_of_overlay
          (Tomo_experiments.Workload.generate_overlay spec)
      in
      let effective = Tomo.Identifiability.covered_links model in
      let t = Tomo.Identifiability.analyze model ~effective in
      Format.fprintf ppf "@.%s topology (scale=%s, seed=%d):@.%a@."
        (Tomo_experiments.Workload.topology_to_string topology)
        (Tomo_experiments.Workload.scale_to_string scale)
        seed Tomo.Identifiability.pp t)
    [ Tomo_experiments.Workload.Brite; Tomo_experiments.Workload.Sparse ]

(* ------------------------------------------------------------------ *)
(* Streaming mode: gen-trace / serve / batch-report                     *)
(* ------------------------------------------------------------------ *)

module W = Tomo_experiments.Workload
module Stream = Tomo_stream

let topology_arg =
  let parse = function
    | "brite" -> Ok W.Brite
    | "sparse" -> Ok W.Sparse
    | s -> Error (`Msg (Printf.sprintf "unknown topology %S (brite|sparse)" s))
  in
  let print ppf t = Format.fprintf ppf "%s" (W.topology_to_string t) in
  Arg.(
    value
    & opt (conv (parse, print)) W.Brite
    & info [ "topology" ] ~docv:"TOPO"
        ~doc:
          "Topology family the trace was measured on: brite or sparse. \
           Together with --scale and --seed this deterministically \
           rebuilds the model (link/path incidence, correlation sets).")

let scenario_arg =
  let parse = function
    | "random" -> Ok Tomo_netsim.Scenario.Random
    | "concentrated" -> Ok Tomo_netsim.Scenario.Concentrated
    | "no-independence" -> Ok Tomo_netsim.Scenario.No_independence
    | s ->
        Error
          (`Msg
            (Printf.sprintf
               "unknown scenario %S (random|concentrated|no-independence)" s))
  in
  let print ppf k =
    Format.fprintf ppf "%s" (Tomo_netsim.Scenario.kind_to_string k)
  in
  Arg.(
    value
    & opt (conv (parse, print)) Tomo_netsim.Scenario.Random
    & info [ "scenario" ] ~docv:"SCENARIO"
        ~doc:"Congestion scenario for the simulated trace.")

let replay_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "replay" ] ~docv:"FILE"
        ~doc:
          "Measurement stream to replay: a tomo-trace file (\"-\" for \
           stdin) or an archived tomo-observations file (detected by \
           header).")

let replay_opt_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay" ] ~docv:"FILE"
        ~doc:
          "Measurement stream to replay: a tomo-trace file (\"-\" for \
           stdin) or an archived tomo-observations file (detected by \
           header). Mutually exclusive with --ingest.")

let window_arg =
  Arg.(
    value & opt int 100
    & info [ "window" ] ~docv:"W"
        ~doc:
          "Sliding-window capacity in measurement intervals (ignored \
           when restoring from a snapshot, which fixes it).")

let intervals_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "intervals" ] ~docv:"T"
        ~doc:"Trace length in intervals (default: the scale's length).")

let nonstationary_arg =
  Arg.(
    value & flag
    & info [ "nonstationary" ]
        ~doc:"Redraw congestion probabilities every few intervals (§3.2).")

let out_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE" ~doc:"Output file.")

let report_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "report-out" ] ~docv:"FILE"
        ~doc:
          "Write the final-window estimate as a diffable tomo-report \
           (\"-\" for stdout).")

let snapshot_in_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "snapshot-in" ] ~docv:"FILE"
        ~doc:
          "Resume from a snapshot: restores the window bit-identically \
           and fast-forwards the replay past already-ingested ticks.")

let snapshot_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "snapshot-out" ] ~docv:"FILE"
        ~doc:
          "Write a checksummed snapshot (atomic rename) every \
           --snapshot-every ticks and at shutdown.")

let snapshot_every_arg =
  Arg.(
    value & opt int 10
    & info [ "snapshot-every" ] ~docv:"K"
        ~doc:"Snapshot cadence in ticks (with --snapshot-out).")

let max_ticks_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-ticks" ] ~docv:"K"
        ~doc:
          "Stop after ingesting K batches in this run — a deterministic \
           stand-in for killing the server mid-stream (the final \
           snapshot still captures the stopping point).")

let progress_arg =
  Arg.(
    value & opt int 0
    & info [ "progress" ] ~docv:"N"
        ~doc:"Print a status line every N ticks (0 = quiet).")

let listen_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "listen" ] ~docv:"ADDR"
        ~doc:
          "Serve live telemetry while the engine runs: Prometheus text \
           metrics at /metrics, health JSON at /healthz, an engine \
           status view at /status. $(docv) is a Unix-socket path, \
           HOST:PORT, or a bare PORT (TCP on 127.0.0.1). Scraping only \
           reads published state — streaming results are bit-identical \
           with or without it.")

let flush_every_arg =
  Arg.(
    value & opt float 0.0
    & info [ "flush-every" ] ~docv:"SECONDS"
        ~doc:
          "Flush the metrics/trace sinks every $(docv) seconds (atomic \
           write + rename) instead of only at exit, so a long run's \
           telemetry files stay current. 0 disables periodic flushing.")

let linger_arg =
  Arg.(
    value & opt float 0.0
    & info [ "linger" ] ~docv:"SECONDS"
        ~doc:
          "With --listen: keep serving the telemetry endpoints for \
           $(docv) seconds after the replay drains, so a final scrape \
           can observe the finished run.")

let ingest_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "ingest" ] ~docv:"ADDR"
        ~doc:
          "Accept live framed tomo-trace streams (the send-trace wire \
           format) instead of replaying a file: $(docv) is a Unix-socket \
           path, HOST:PORT, or a bare PORT, like --listen. Each \
           connected peer gets its own sliding-window engine; run until \
           SIGINT/SIGTERM (or --max-ticks). Mutually exclusive with \
           --replay.")

let ingest_queue_arg =
  Arg.(
    value & opt int 64
    & info [ "ingest-queue" ] ~docv:"N"
        ~doc:
          "Per-peer bounded queue capacity in ticks: how far a peer's \
           reader may run ahead of its engine before backpressure (see \
           --ingest-policy) kicks in.")

let ingest_policy_arg =
  Arg.(
    value & opt string "block"
    & info [ "ingest-policy" ] ~docv:"POLICY"
        ~doc:
          "What to do when a peer's queue is full: \"block\" parks the \
           reader (the peer's TCP writes eventually stall — ordinary \
           backpressure), \"drop\" disconnects the slow peer to protect \
           the rest.")

let idle_timeout_arg =
  Arg.(
    value & opt float 0.0
    & info [ "idle-timeout" ] ~docv:"SECONDS"
        ~doc:
          "Drop a peer that sends nothing for $(docv) seconds (guards \
           against half-open connections). 0 waits forever.")

let snapshot_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "snapshot-dir" ] ~docv:"DIR"
        ~doc:
          "With --ingest: write per-peer snapshots to $(docv)/NAME.snap \
           every --snapshot-every ticks and at shutdown; a reconnecting \
           peer of the same name is restored and its re-sent ticks \
           skipped, so a killed daemon resumes bit-identically.")

let report_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "report-dir" ] ~docv:"DIR"
        ~doc:
          "With --ingest: write each cleanly ended peer's final-window \
           tomo-report to $(docv)/NAME.report — byte-identical to serve \
           --replay of the same trace.")

let to_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "to" ] ~docv:"ADDR"
        ~doc:
          "Daemon ingest address (same syntax as --ingest: Unix-socket \
           path, HOST:PORT, or bare PORT).")

let trace_in_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"tomo-trace v1 file to send (\"-\" for stdin).")

let peer_name_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "peer" ] ~docv:"NAME"
        ~doc:
          "Announce this peer name ([A-Za-z0-9_.-]) in a hello frame — \
           the daemon keys snapshots and reports by it, so re-sending \
           under the same name resumes after a daemon restart. Unnamed \
           senders get a per-connection name with no cross-restart \
           identity.")

let chunk_arg =
  Arg.(
    value & opt int 65536
    & info [ "chunk" ] ~docv:"BYTES"
        ~doc:"Batch roughly $(docv) bytes of frames per write.")

let best_effort_arg =
  Arg.(
    value & flag
    & info [ "best-effort" ]
        ~doc:
          "Exit 0 even if the daemon hangs up mid-send (it stopped, or \
           dropped this peer) — for harnesses that race a sender \
           against a bounded daemon.")

(* Sniff the stream format so `serve --replay` accepts both the
   line-per-interval trace format and archived batch observations (an
   unknown or missing header names both accepted formats). *)
let open_replay_source = Stream.Source.of_replay_file

let check_source_paths source model =
  let sp = Stream.Source.n_paths source
  and mp = model.Tomo.Model.n_paths in
  if sp <> mp then
    failwith
      (Printf.sprintf
         "replay source has %d paths but the model has %d — wrong \
          --topology/--scale/--seed for this trace?"
         sp mp)

let model_for scale seed topology =
  let spec = W.spec ~scale ~seed topology Tomo_netsim.Scenario.Random in
  W.model_of_overlay (W.generate_overlay spec)

let write_report path report =
  match path with
  | None -> ()
  | Some "-" -> print_string report
  | Some p ->
      let oc = open_out p in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc report)

let summarize (est : Stream.Engine.estimate) ~window =
  let r = est.Stream.Engine.result in
  let n_links = Array.length r.Tomo.Pc_result.marginals in
  let identifiable =
    Array.fold_left (fun a b -> if b then a + 1 else a) 0
      r.Tomo.Pc_result.identifiable
  in
  let congested =
    Array.fold_left (fun a m -> if m > 0.1 then a + 1 else a) 0
      r.Tomo.Pc_result.marginals
  in
  Format.fprintf ppf
    "Final window estimate: tick %d, window %d, %d equations over %d \
     variables; %d/%d links identifiable, %d links with P(congested) > \
     0.1@."
    est.Stream.Engine.tick window r.Tomo.Pc_result.n_rows
    r.Tomo.Pc_result.n_vars identifiable n_links congested

let run_gen_trace scale seed topology scenario nonstationary intervals out =
  let spec =
    W.spec ~scale ~seed ~nonstationary ?t_override:intervals topology
      scenario
  in
  let w = W.prepare spec in
  Tomo_netsim.Trace_io.save out w.W.run;
  Format.fprintf ppf "Wrote %d intervals x %d paths to %s@."
    w.W.run.Tomo_netsim.Run.t_intervals
    (Array.length w.W.run.Tomo_netsim.Run.path_good)
    out

(* The exporter's callbacks run on its own thread; they read an
   immutable status record republished by the engine thread each tick
   under [lock], never the live engine. *)
type published_status = {
  lock : Mutex.t;
  mutable published : Stream.Engine.status;
  started_at : float;
}

let json_str s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let start_telemetry ~spec ~scale ~seed ~topology ~replay ~window engine =
  let listen =
    match Tomo_obs.Exporter.listen_of_string spec with
    | Ok l -> l
    | Error e -> failwith ("--listen: " ^ e)
  in
  (* Scrapes must see live histograms even when no file sink is
     configured. *)
  Tomo_obs.Metrics.set_enabled true;
  (* A daemon accumulates spans forever unless bounded; the periodic
     flusher drains them, the cap is the backstop. *)
  Tomo_obs.Trace.set_max_roots (Some 1024);
  let t =
    {
      lock = Mutex.create ();
      published = Stream.Engine.status engine;
      started_at = Unix.gettimeofday ();
    }
  in
  let read_status () =
    Mutex.lock t.lock;
    let s = t.published in
    Mutex.unlock t.lock;
    s
  in
  let engine_json () =
    let now = Unix.gettimeofday () in
    Stream.Engine.status_json ~uptime_s:(now -. t.started_at)
      ?snapshot_age_s:
        (Option.map (fun t0 -> now -. t0) (Stream.Snapshot.last_saved_at ()))
      ?last_error:(Tomo_obs.Sink.last_error ())
      (read_status ())
  in
  let status_body () =
    Printf.sprintf
      "{\"config\":{\"scale\":%s,\"seed\":%d,\"topology\":%s,\"replay\":%s,\
       \"window\":%d},\"engine\":%s}"
      (json_str (W.scale_to_string scale))
      seed
      (json_str (W.topology_to_string topology))
      (json_str replay) window (engine_json ())
  in
  let exporter =
    Tomo_obs.Exporter.start ~health:engine_json ~status:status_body listen
  in
  Format.fprintf ppf "Telemetry on %s: /metrics /healthz /status@."
    (Tomo_obs.Exporter.listen_to_string listen);
  ( exporter,
    fun engine ->
      let s = Stream.Engine.status engine in
      Mutex.lock t.lock;
      t.published <- s;
      Mutex.unlock t.lock )

let run_serve_replay scale seed topology replay window snapshot_in
    snapshot_out snapshot_every max_ticks report_out progress listen
    flush_every linger =
  let model = model_for scale seed topology in
  let engine =
    match snapshot_in with
    | Some path ->
        let snap = Stream.Snapshot.load path in
        Format.fprintf ppf
          "Restored snapshot %s: %d ticks ingested, window %d@." path
          snap.Stream.Snapshot.ticks snap.Stream.Snapshot.capacity;
        Stream.Engine.of_snapshot ~model snap
    | None -> Stream.Engine.create ~model ~window ()
  in
  let telemetry =
    Option.map
      (fun spec ->
        start_telemetry ~spec ~scale ~seed ~topology ~replay ~window engine)
      listen
  in
  let publish =
    match telemetry with Some (_, publish) -> publish | None -> ignore
  in
  let flusher =
    if flush_every > 0.0 then
      Some (Tomo_obs.Flusher.start ~period_s:flush_every ())
    else None
  in
  let source = open_replay_source replay in
  check_source_paths source model;
  let already = Stream.Engine.ticks engine in
  if already > 0 then begin
    let skipped = Stream.Source.drop source already in
    if skipped < already then
      failwith
        (Printf.sprintf
           "replay has only %d of the %d intervals the snapshot already \
            ingested — wrong trace for this snapshot?"
           skipped already)
  end;
  let on_tick engine est =
    publish engine;
    if progress > 0 && Stream.Engine.ticks engine mod progress = 0 then
      Format.fprintf ppf "tick %d: %s@."
        (Stream.Engine.ticks engine)
        (match est with
        | None -> "warming up"
        | Some e ->
            Printf.sprintf "%d eqs / %d vars"
              e.Stream.Engine.result.Tomo.Pc_result.n_rows
              e.Stream.Engine.result.Tomo.Pc_result.n_vars)
  in
  let last =
    Stream.Engine.run ?snapshot_out ~snapshot_every ?max_ticks engine source
      ~on_tick
  in
  Stream.Source.close source;
  publish engine;
  (match telemetry with
  | Some _ when linger > 0.0 ->
      Format.fprintf ppf "Replay drained; telemetry lingers %gs@." linger;
      Thread.delay linger
  | _ -> ());
  Option.iter (Tomo_obs.Flusher.stop ?final_flush:None) flusher;
  (match telemetry with
  | Some (exporter, _) -> Tomo_obs.Exporter.stop exporter
  | None -> ());
  let cap = Stream.Window.capacity (Stream.Engine.window engine) in
  match
    (match last with Some _ -> last | None -> Stream.Engine.current engine)
  with
  | None ->
      Format.fprintf ppf
        "Stream ended after %d ticks — window (capacity %d) never \
         filled; no estimate.@."
        (Stream.Engine.ticks engine)
        cap
  | Some est ->
      summarize est ~window:cap;
      write_report report_out (Stream.Engine.report_to_string ~window:cap est)

(* ------------------------------------------------------------------ *)
(* Network ingestion: serve --ingest / send-trace                      *)
(* ------------------------------------------------------------------ *)

let parse_addr ~flag spec =
  match Tomo_obs.Exporter.listen_of_string spec with
  | Ok l -> l
  | Error e -> failwith (flag ^ ": " ^ e)

let rec mkdir_p dir =
  if dir <> "" && dir <> Filename.dirname dir && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let start_ingest_telemetry ~spec ~scale ~seed ~topology ~ingest ~window hub =
  let listen = parse_addr ~flag:"--listen" spec in
  (* Scrapes must see live counters even when no file sink is
     configured. *)
  Tomo_obs.Metrics.set_enabled true;
  Tomo_obs.Trace.set_max_roots (Some 1024);
  let status_body () =
    Printf.sprintf
      "{\"config\":{\"scale\":%s,\"seed\":%d,\"topology\":%s,\"ingest\":%s,\
       \"window\":%d},\"hub\":%s}"
      (json_str (W.scale_to_string scale))
      seed
      (json_str (W.topology_to_string topology))
      (json_str ingest) window
      (Tomo_net.Hub.status_json hub)
  in
  let exporter = Tomo_obs.Exporter.start ~status:status_body listen in
  Format.fprintf ppf "Telemetry on %s: /metrics /healthz /status@."
    (Tomo_obs.Exporter.listen_to_string listen);
  exporter

let run_serve_ingest scale seed topology ingest window snapshot_every
    max_ticks listen flush_every ingest_queue ingest_policy idle_timeout
    snapshot_dir report_dir =
  (* A peer hanging up mid-write must surface as EPIPE, not kill the
     daemon. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let model = model_for scale seed topology in
  let policy =
    match Tomo_net.Hub.policy_of_string ingest_policy with
    | Ok p -> p
    | Error e -> failwith ("--ingest-policy: " ^ e)
  in
  let addr = parse_addr ~flag:"--ingest" ingest in
  Option.iter mkdir_p snapshot_dir;
  Option.iter mkdir_p report_dir;
  let hub =
    Tomo_net.Hub.create ~queue_capacity:ingest_queue ~policy ~idle_timeout
      ?snapshot_dir ?report_dir ~snapshot_every ?max_ticks ~model ~window ()
  in
  (* Graceful shutdown: the handler only flips the hub's stop atomic
     (signal-safe); the drain loop notices within its ticker period. *)
  let on_signal _ = Tomo_net.Hub.request_stop hub in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  let telemetry =
    Option.map
      (fun spec ->
        start_ingest_telemetry ~spec ~scale ~seed ~topology ~ingest ~window
          hub)
      listen
  in
  let flusher =
    if flush_every > 0.0 then
      Some (Tomo_obs.Flusher.start ~period_s:flush_every ())
    else None
  in
  let listener =
    Tomo_net.Listener.start addr ~on_accept:(Tomo_net.Hub.attach hub)
  in
  Format.fprintf ppf
    "Ingesting framed tomo-trace streams on %s (window %d, queue %d, \
     policy %s)@."
    (Tomo_obs.Exporter.listen_to_string addr)
    window ingest_queue
    (Tomo_net.Hub.policy_to_string policy);
  Tomo_net.Hub.run hub;
  Tomo_net.Listener.stop listener;
  Option.iter (Tomo_obs.Flusher.stop ?final_flush:None) flusher;
  Option.iter Tomo_obs.Exporter.stop telemetry;
  let s = Tomo_net.Hub.stats hub in
  Format.fprintf ppf
    "Ingest done: %d peers served, %d dropped, %d ticks ingested, %d \
     frames (%d bytes), %d reports written@."
    s.Tomo_net.Hub.peers_connected s.Tomo_net.Hub.peers_dropped
    s.Tomo_net.Hub.ticks_ingested s.Tomo_net.Hub.frames_total
    s.Tomo_net.Hub.bytes_total s.Tomo_net.Hub.reports_written

let run_serve scale seed topology replay ingest window snapshot_in
    snapshot_out snapshot_every max_ticks report_out progress listen
    flush_every linger ingest_queue ingest_policy idle_timeout snapshot_dir
    report_dir =
  match (replay, ingest) with
  | Some _, Some _ ->
      failwith "--replay and --ingest are mutually exclusive"
  | None, None ->
      failwith "serve needs a stream: --replay FILE or --ingest ADDR"
  | Some replay, None ->
      run_serve_replay scale seed topology replay window snapshot_in
        snapshot_out snapshot_every max_ticks report_out progress listen
        flush_every linger
  | None, Some ingest ->
      run_serve_ingest scale seed topology ingest window snapshot_every
        max_ticks listen flush_every ingest_queue ingest_policy idle_timeout
        snapshot_dir report_dir

let connect_to addr =
  match addr with
  | Tomo_obs.Exporter.Unix_sock path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
  | Tomo_obs.Exporter.Tcp (host, port) ->
      let inet =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (inet, port));
      fd

let write_all_fd fd bytes len =
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd bytes !off (len - !off)
  done

let run_send_trace to_addr trace peer chunk best_effort =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let addr = parse_addr ~flag:"--to" to_addr in
  let ic = if trace = "-" then stdin else open_in trace in
  let fd = connect_to addr in
  let buf = Buffer.create (chunk + 4096) in
  let records = ref 0 in
  let bytes = ref 0 in
  let flush_buf () =
    if Buffer.length buf > 0 then begin
      let b = Buffer.to_bytes buf in
      write_all_fd fd b (Bytes.length b);
      bytes := !bytes + Bytes.length b;
      Buffer.clear buf
    end
  in
  let send_record line =
    Tomo_net.Frame.encode_into buf line;
    incr records;
    if Buffer.length buf >= chunk then flush_buf ()
  in
  let hung_up = ref None in
  (try
     Option.iter (fun name -> send_record ("peer " ^ name)) peer;
     let rec go () =
       match In_channel.input_line ic with
       | None -> ()
       | Some line ->
           if String.trim line <> "" then send_record line;
           go ()
     in
     go ();
     flush_buf ()
   with Unix.Unix_error (((Unix.EPIPE | Unix.ECONNRESET) as e), _, _) ->
     hung_up := Some (Unix.error_message e));
  if trace <> "-" then close_in ic;
  (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  match !hung_up with
  | None ->
      Format.fprintf ppf "Sent %d records (%d bytes) to %s@." !records
        !bytes
        (Tomo_obs.Exporter.listen_to_string addr)
  | Some reason when best_effort ->
      Format.fprintf ppf
        "Daemon hung up after %d bytes (%s) — best-effort, exiting 0@."
        !bytes reason
  | Some reason ->
      failwith
        (Printf.sprintf "daemon hung up mid-send after %d bytes: %s" !bytes
           reason)

let run_batch_report scale seed topology replay window report_out =
  let model = model_for scale seed topology in
  let source = open_replay_source replay in
  check_source_paths source model;
  let cols = List.rev (Stream.Source.fold source (fun acc c -> c :: acc) []) in
  Stream.Source.close source;
  let total = List.length cols in
  if total < window then
    failwith
      (Printf.sprintf
         "trace has only %d intervals; --window %d never fills" total
         window);
  let last = Array.of_list cols in
  let first = total - window in
  let obs =
    Tomo.Observations.create ~t_intervals:window
      ~n_paths:model.Tomo.Model.n_paths
  in
  for i = 0 to window - 1 do
    Tomo.Observations.set_interval_statuses obs ~interval:i
      ~good:last.(first + i)
  done;
  let result, engine = Tomo.Correlation_complete.compute model obs in
  let est = { Stream.Engine.tick = total; result; engine } in
  summarize est ~window;
  write_report report_out (Stream.Engine.report_to_string ~window est)

let all scale seed seeds csv =
  run_fig3 scale seed seeds csv;
  fig4a scale seed seeds csv;
  fig4b scale seed seeds csv;
  run_fig4c scale seed seeds csv;
  run_fig4d scale seed seeds csv;
  Tomo_experiments.Render.table2 ppf

let cmd name doc f =
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const (fun scale seed seeds sparse jobs ident trace mout eout ->
          with_obs ?ident_prune:ident sparse jobs trace mout eout (fun () ->
              f scale seed seeds))
      $ scale_arg $ seed_arg $ seeds_arg $ sparse_threshold_arg $ jobs_arg
      $ ident_prune_arg $ trace_arg $ metrics_out_arg $ events_out_arg)

let cmd_csv name doc f =
  Cmd.v
    (Cmd.info name ~doc)
    Term.(
      const (fun scale seed seeds csv sparse jobs ident trace mout eout ->
          with_obs ?ident_prune:ident sparse jobs trace mout eout (fun () ->
              f scale seed seeds csv))
      $ scale_arg $ seed_arg $ seeds_arg $ csv_arg $ sparse_threshold_arg
      $ jobs_arg $ ident_prune_arg $ trace_arg $ metrics_out_arg
      $ events_out_arg)

let gen_trace_cmd =
  Cmd.v
    (Cmd.info "gen-trace"
       ~doc:
         "Simulate a workload and write its per-interval measurement \
          stream as a replayable tomo-trace file.")
    Term.(
      const (fun scale seed topology scenario nonstationary intervals out
                sparse jobs trace mout eout ->
          with_obs sparse jobs trace mout eout (fun () ->
              run_gen_trace scale seed topology scenario nonstationary
                intervals out))
      $ scale_arg $ seed_arg $ topology_arg $ scenario_arg
      $ nonstationary_arg $ intervals_arg $ out_arg $ sparse_threshold_arg
      $ jobs_arg $ trace_arg $ metrics_out_arg $ events_out_arg)

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the online sliding-window engine over a measurement \
          stream — a replayed file (--replay) or live framed streams \
          from send-trace peers (--ingest), re-estimating congestion \
          probabilities every interval; snapshots allow a killed server \
          to resume bit-identically, and --listen serves scrapeable \
          live telemetry while it runs.")
    Term.(
      const (fun scale seed topology replay ingest window snapshot_in
                snapshot_out snapshot_every max_ticks report_out progress
                listen flush_every linger ingest_queue ingest_policy
                idle_timeout snapshot_dir report_dir sparse jobs trace mout
                eout ->
          with_obs sparse jobs trace mout eout (fun () ->
              run_serve scale seed topology replay ingest window snapshot_in
                snapshot_out snapshot_every max_ticks report_out progress
                listen flush_every linger ingest_queue ingest_policy
                idle_timeout snapshot_dir report_dir))
      $ scale_arg $ seed_arg $ topology_arg $ replay_opt_arg $ ingest_arg
      $ window_arg $ snapshot_in_arg $ snapshot_out_arg $ snapshot_every_arg
      $ max_ticks_arg $ report_out_arg $ progress_arg $ listen_arg
      $ flush_every_arg $ linger_arg $ ingest_queue_arg $ ingest_policy_arg
      $ idle_timeout_arg $ snapshot_dir_arg $ report_dir_arg
      $ sparse_threshold_arg $ jobs_arg $ trace_arg $ metrics_out_arg
      $ events_out_arg)

let send_trace_cmd =
  Cmd.v
    (Cmd.info "send-trace"
       ~doc:
         "Stream a tomo-trace file to a serve --ingest daemon over its \
          Unix or TCP socket, length-prefix framing each record; with \
          --peer the daemon keys the stream's snapshots/reports by that \
          name, so re-sending the same trace resumes a killed daemon \
          bit-identically.")
    Term.(
      const run_send_trace
      $ to_arg $ trace_in_arg $ peer_name_arg $ chunk_arg $ best_effort_arg)

let batch_report_cmd =
  Cmd.v
    (Cmd.info "batch-report"
       ~doc:
         "Run the batch pipeline over the last --window intervals of a \
          replay file and write the same tomo-report format as serve — \
          the two must diff equal.")
    Term.(
      const (fun scale seed topology replay window report_out sparse jobs
                trace mout eout ->
          with_obs sparse jobs trace mout eout (fun () ->
              run_batch_report scale seed topology replay window report_out))
      $ scale_arg $ seed_arg $ topology_arg $ replay_arg $ window_arg
      $ report_out_arg $ sparse_threshold_arg $ jobs_arg $ trace_arg
      $ metrics_out_arg $ events_out_arg)

let table2_cmd =
  Cmd.v
    (Cmd.info "table2" ~doc:"Print the paper's Table 2 (static).")
    Term.(const (fun () -> Tomo_experiments.Render.table2 ppf) $ const ())

let () =
  let info =
    Cmd.info "tomo_cli" ~version:"1.0.0"
      ~doc:
        "Reproduce the evaluation of 'Shifting Network Tomography Toward \
         A Practical Goal' (CoNEXT 2011)."
  in
  let cmds =
    [
      cmd_csv "fig3" "Figure 3: Boolean-Inference accuracy (both panels)."
        run_fig3;
      cmd_csv "fig4a" "Figure 4(a): PC error on Brite topologies." fig4a;
      cmd_csv "fig4b" "Figure 4(b): PC error on Sparse topologies." fig4b;
      cmd_csv "fig4c" "Figure 4(c): error CDF (No Independence, Sparse)."
        run_fig4c;
      cmd_csv "fig4d" "Figure 4(d): links vs correlation subsets." run_fig4d;
      cmd "ablation" "Subset-size budget ablation (§4)." run_ablation;
      cmd "fallback" "Chain-link fallback strategy ablation." run_fallback;
      cmd "probes" "E2E-Monitoring sensitivity under packet probing."
        run_probes;
      cmd "convergence" "Accuracy vs experiment length." run_convergence;
      cmd "report" "Operator-facing peer congestion report (§1 scenario)."
        run_report;
      cmd "summary" "Print generated topology statistics." run_summary;
      cmd "identifiability"
        "Structural identifiability analysis of the generated topologies: \
         ambiguous links, per-correlation-set inducible-subset bounds."
        run_identifiability;
      cmd_csv "all" "Run every figure and table." all;
      table2_cmd;
      gen_trace_cmd;
      serve_cmd;
      send_trace_cmd;
      batch_report_cmd;
    ]
  in
  exit (Cmd.eval (Cmd.group info cmds))
