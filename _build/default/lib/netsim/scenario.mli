(** Congestion scenarios of the paper's evaluation (§3.2, §5.4).

    A scenario fixes which ~10% of the links have a non-zero congestion
    probability (the *congestible* set) and a policy for how that
    probability is realized in terms of router-level factors:

    - {b Random}: congestible links chosen uniformly at random, any
      backing factor may carry the probability — most links independent,
      with incidental correlations when a shared factor is picked
      (matching the paper's remark that under random congestion "some of
      the congested links happen to be correlated").
    - {b Concentrated}: congestible links drawn from whole destination
      edge regions (edge links grouped by owning AS); private factors
      preferred, so the scenario stresses *concentration*, not
      correlation ("there is no congestion at the core").
    - {b No_independence}: links covered by *shared* factors — thinnest
      factors first — so every congestible link is correlated with at
      least one other, on links where inference actually has to choose
      among explanations.

    [draw_probs] draws one *epoch*: per congestible link it activates one
    eligible factor with a probability uniform in (0.01, 0.99).  Under
    the paper's "No Stationarity" dynamics it is called every few
    intervals, so both the magnitudes and the underlying router-level
    causes shift over time while the congestible link set stays fixed —
    long-run averages then genuinely mislead per-interval (Bayesian)
    inference, which is the paper's point. *)

type kind = Random | Concentrated | No_independence

val kind_to_string : kind -> string

type t

(** [make overlay ~kind ~frac ~rng] selects the congestible link set.
    [frac] is the fraction of links with non-zero congestion probability
    (the paper uses 0.1). *)
val make :
  Tomo_topology.Overlay.t -> kind:kind -> frac:float -> rng:Tomo_util.Rng.t -> t

val kind : t -> kind
val overlay : t -> Tomo_topology.Overlay.t

(** [congestible_links t] is the fixed set of links with non-zero
    marginal congestion probability. *)
val congestible_links : t -> int array

(** [active_factors t] is the set of factors that may carry probability
    in some epoch (the union over possible [draw_probs] outcomes). *)
val active_factors : t -> int array

(** [draw_probs t rng] draws one epoch's per-factor probabilities; all
    factors of non-congestible-only links stay at 0, and every
    congestible link ends up backed by at least one positive factor. *)
val draw_probs : t -> Tomo_util.Rng.t -> float array

(** [edge_links overlay] is the pool Concentrated draws from: links that
    appear as the last link of at least one path (the destination edge of
    the network). *)
val edge_links : Tomo_topology.Overlay.t -> int array
