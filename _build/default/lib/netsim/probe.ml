module Rng = Tomo_util.Rng

let loss_rate rng ~congested =
  if congested then Rng.uniform rng ~lo:0.01 ~hi:1.0
  else Rng.uniform rng ~lo:0.0 ~hi:0.01

let path_threshold ~f ~hops =
  if hops < 0 then invalid_arg "Probe.path_threshold: negative hops";
  1.0 -. ((1.0 -. f) ** float_of_int hops)

let binomial rng ~n ~p =
  if n < 0 then invalid_arg "Probe.binomial: negative n";
  if p <= 0.0 then 0
  else if p >= 1.0 then n
  else
    let var = float_of_int n *. p *. (1.0 -. p) in
    if n >= 50 && var >= 9.0 then begin
      (* Normal approximation with continuity correction. *)
      let u1 = max 1e-12 (Rng.float rng 1.0) in
      let u2 = Rng.float rng 1.0 in
      let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
      let x = (float_of_int n *. p) +. (sqrt var *. z) in
      max 0 (min n (int_of_float (Float.round x)))
    end
    else begin
      let hits = ref 0 in
      for _ = 1 to n do
        if Rng.bool rng ~p then incr hits
      done;
      !hits
    end

let measure_path rng ~losses ~links ~n_probes ~f =
  if n_probes <= 0 then invalid_arg "Probe.measure_path: no probes";
  let survive =
    Array.fold_left (fun acc l -> acc *. (1.0 -. losses.(l))) 1.0 links
  in
  let dropped = binomial rng ~n:n_probes ~p:(1.0 -. survive) in
  let measured = float_of_int dropped /. float_of_int n_probes in
  measured > path_threshold ~f ~hops:(Array.length links)
