module Overlay = Tomo_topology.Overlay
module Rng = Tomo_util.Rng

type kind = Random | Concentrated | No_independence

let kind_to_string = function
  | Random -> "random"
  | Concentrated -> "concentrated"
  | No_independence -> "no-independence"

type t = {
  ov : Overlay.t;
  k : kind;
  congestible : int array;  (* fixed 10%-of-links set, marginals > 0 *)
  sharing : int array array;  (* factor -> links backed *)
}

let kind t = t.k
let overlay t = t.ov
let congestible_links t = t.congestible

let edge_links ov =
  let is_edge = Array.make (Overlay.n_links ov) false in
  Array.iter
    (fun (p : Overlay.path) ->
      let n = Array.length p.Overlay.links in
      if n > 0 then is_edge.(p.Overlay.links.(n - 1)) <- true)
    ov.Overlay.paths;
  let acc = ref [] in
  Array.iteri (fun l e -> if e then acc := l :: !acc) is_edge;
  Array.of_list (List.rev !acc)

let target_count ov frac =
  max 1 (int_of_float (frac *. float_of_int (Overlay.n_links ov)))

let make ov ~kind:k ~frac ~rng =
  if frac <= 0.0 || frac > 1.0 then invalid_arg "Scenario.make: bad frac";
  let sharing = Overlay.links_sharing_factor ov in
  let target = target_count ov frac in
  let pick_set seeds =
    (* First [target] distinct links in seed order. *)
    let chosen = Hashtbl.create 64 in
    let acc = ref [] in
    Array.iter
      (fun e ->
        if Hashtbl.length chosen < target && not (Hashtbl.mem chosen e)
        then begin
          Hashtbl.add chosen e ();
          acc := e :: !acc
        end)
      seeds;
    Array.of_list (List.rev !acc)
  in
  let congestible =
    match k with
    | Random ->
        let seeds = Array.init (Overlay.n_links ov) (fun i -> i) in
        Rng.shuffle rng seeds;
        pick_set seeds
    | Concentrated ->
        (* Whole edge regions: group the edge pool by owning AS and
           consume whole groups in random order, so sibling
           destination-edge links congest in the same experiment — the
           regime in which Sparsity over-blames the aggregation links
           above them. *)
        let pool = edge_links ov in
        let by_as = Hashtbl.create 64 in
        Array.iter
          (fun e ->
            let owner = ov.Overlay.links.(e).Overlay.owner_as in
            let prev =
              try Hashtbl.find by_as owner with Not_found -> []
            in
            Hashtbl.replace by_as owner (e :: prev))
          pool;
        let groups =
          Hashtbl.fold (fun _ ls acc -> Array.of_list ls :: acc) by_as []
          |> Array.of_list
        in
        Rng.shuffle rng groups;
        pick_set (Array.concat (Array.to_list groups))
    | No_independence ->
        (* Links covered by *shared* factors, in random order: every
           chosen link has a correlated partner. *)
        let shared =
          Array.to_list sharing
          |> List.filter (fun ls -> Array.length ls >= 2)
          |> Array.of_list
        in
        if Array.length shared = 0 then
          invalid_arg
            "Scenario.make: topology has no shared factors for \
             No_independence";
        Rng.shuffle rng shared;
        (* Consume whole factor groups so every selected link keeps its
           correlation partner (a cut group would leave a partner-less
           link). May slightly overshoot the target. *)
        let chosen = Hashtbl.create 64 in
        let acc = ref [] in
        Array.iter
          (fun group ->
            if Hashtbl.length chosen < target then
              Array.iter
                (fun e ->
                  if not (Hashtbl.mem chosen e) then begin
                    Hashtbl.add chosen e ();
                    acc := e :: !acc
                  end)
                group)
          shared;
        Array.of_list (List.rev !acc)
  in
  { ov; k; congestible; sharing }

(* Factors of [e] eligible under the scenario's correlation policy. *)
let eligible_factors t e =
  let fs = t.ov.Overlay.links.(e).Overlay.factors in
  let is_congestible = Hashtbl.create 64 in
  Array.iter (fun l -> Hashtbl.add is_congestible l ()) t.congestible;
  let filtered =
    match t.k with
    | Random -> fs
    | Concentrated ->
        (* Prefer private factors: concentration without correlation. *)
        let private_fs =
          Array.of_list
            (List.filter
               (fun f -> Array.length t.sharing.(f) = 1)
               (Array.to_list fs))
        in
        if Array.length private_fs > 0 then private_fs else fs
    | No_independence ->
        (* Prefer factors shared with another congestible link, so the
           correlation survives every epoch. *)
        let shared_fs =
          Array.of_list
            (List.filter
               (fun f ->
                 Array.exists
                   (fun l -> l <> e && Hashtbl.mem is_congestible l)
                   t.sharing.(f))
               (Array.to_list fs))
        in
        if Array.length shared_fs > 0 then shared_fs else fs
  in
  filtered

let draw_probs t rng =
  let probs = Array.make t.ov.Overlay.n_factors 0.0 in
  let order = Array.copy t.congestible in
  Rng.shuffle rng order;
  Array.iter
    (fun e ->
      (* Skip links already congestible through a factor activated for an
         earlier link this epoch. *)
      let already =
        Array.exists
          (fun f -> probs.(f) > 0.0)
          t.ov.Overlay.links.(e).Overlay.factors
      in
      if not already then begin
        let fs = eligible_factors t e in
        let f = fs.(Rng.int rng (Array.length fs)) in
        probs.(f) <- Rng.uniform rng ~lo:0.01 ~hi:0.99
      end)
    order;
  probs

let active_factors t =
  (* Union over possible epochs: every eligible factor of every
     congestible link. *)
  let acc = Hashtbl.create 64 in
  Array.iter
    (fun e ->
      Array.iter
        (fun f -> if not (Hashtbl.mem acc f) then Hashtbl.add acc f ())
        (eligible_factors t e))
    t.congestible;
  Hashtbl.fold (fun f () l -> f :: l) acc []
  |> List.sort compare |> Array.of_list
