(** Packet-loss model and end-to-end probing (paper §3.2).

    Per interval, each link gets a loss rate depending on its congestion
    status, following the loss model of Padmanabhan et al. [12] as used by
    the paper: good links drop a fraction uniform in [0, 0.01), congested
    links a fraction uniform in [0.01, 1).

    A path of [d] links is declared congested when its measured loss
    fraction exceeds [1 − (1 − f)^d] with [f = 0.01]: if every link is
    good (loss < f each), the expected path loss stays below the
    threshold, so the E2E Monitoring assumption holds up to probe noise.

    The experiment harness defaults to ideal measurement (path congested
    iff some link congested — the paper assumes E2E Monitoring holds);
    probing is provided to quantify how measurement noise affects the
    algorithms. *)

(** [loss_rate rng ~congested] draws a loss rate per the model above. *)
val loss_rate : Tomo_util.Rng.t -> congested:bool -> float

(** [path_threshold ~f ~hops] is [1 − (1 − f)^hops]. *)
val path_threshold : f:float -> hops:int -> float

(** [binomial rng ~n ~p] samples the number of successes of [n] Bernoulli
    trials (normal approximation for large [n·p·(1−p)], exact loop
    otherwise). *)
val binomial : Tomo_util.Rng.t -> n:int -> p:float -> int

(** [measure_path rng ~losses ~links ~n_probes ~f] sends [n_probes]
    packets along [links] with per-link loss rates [losses] and returns
    [true] iff the measured loss fraction exceeds the path threshold. *)
val measure_path :
  Tomo_util.Rng.t ->
  losses:float array ->
  links:int array ->
  n_probes:int ->
  f:float ->
  bool
