module Overlay = Tomo_topology.Overlay
module Bitset = Tomo_util.Bitset
module Rng = Tomo_util.Rng

type t = { ov : Overlay.t; probs : float array }

let make ov probs =
  if Array.length probs <> ov.Overlay.n_factors then
    invalid_arg "Factor_model.make: wrong number of factor probabilities";
  Array.iter
    (fun p ->
      if p < 0.0 || p > 1.0 || Float.is_nan p then
        invalid_arg "Factor_model.make: probability outside [0,1]")
    probs;
  { ov; probs }

let overlay t = t.ov
let factor_prob t f = t.probs.(f)

let draw_interval t rng =
  let factor_state = Array.map (fun q -> Rng.bool rng ~p:q) t.probs in
  let congested = Bitset.create (Overlay.n_links t.ov) in
  Array.iter
    (fun (l : Overlay.link) ->
      if Array.exists (fun f -> factor_state.(f)) l.Overlay.factors then
        Bitset.set congested l.Overlay.id)
    t.ov.Overlay.links;
  congested

(* Distinct factors backing a set of links. *)
let factors_of_set t s =
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun e ->
      Array.iter
        (fun f -> if not (Hashtbl.mem seen f) then Hashtbl.add seen f ())
        t.ov.Overlay.links.(e).Overlay.factors)
    s;
  seen

let good_prob t s =
  let seen = factors_of_set t s in
  Hashtbl.fold (fun f () acc -> acc *. (1.0 -. t.probs.(f))) seen 1.0

let link_marginal t e = 1.0 -. good_prob t [| e |]

let congestion_prob t s =
  let n = Array.length s in
  if n > 25 then invalid_arg "Factor_model.congestion_prob: set too large";
  (* P(all congested) = Σ_{sub ⊆ s} (−1)^{|sub|} P(sub all good). *)
  let total = ref 0.0 in
  for mask = 0 to (1 lsl n) - 1 do
    let sub = ref [] and bits = ref 0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then begin
        sub := s.(i) :: !sub;
        incr bits
      end
    done;
    let sign = if !bits mod 2 = 0 then 1.0 else -1.0 in
    total := !total +. (sign *. good_prob t (Array.of_list !sub))
  done;
  max 0.0 (min 1.0 !total)
