lib/netsim/scenario.mli: Tomo_topology Tomo_util
