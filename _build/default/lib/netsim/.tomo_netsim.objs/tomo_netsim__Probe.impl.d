lib/netsim/probe.ml: Array Float Tomo_util
