lib/netsim/factor_model.mli: Tomo_topology Tomo_util
