lib/netsim/probe.mli: Tomo_util
