lib/netsim/factor_model.ml: Array Float Hashtbl Tomo_topology Tomo_util
