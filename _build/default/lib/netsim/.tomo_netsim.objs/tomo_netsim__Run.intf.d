lib/netsim/run.mli: Scenario Tomo_topology Tomo_util
