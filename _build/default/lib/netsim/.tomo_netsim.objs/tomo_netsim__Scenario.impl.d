lib/netsim/scenario.ml: Array Hashtbl List Tomo_topology Tomo_util
