lib/netsim/run.ml: Array Factor_model List Option Probe Scenario Tomo_topology Tomo_util
