(** Joint congestion model over AS-level links (paper §3.2 simulator).

    Each router-level factor [f] is congested independently with
    probability [q_f] during an interval; an AS-level link is congested
    iff at least one of its backing factors is.  Links sharing factors are
    therefore positively correlated, links of different ASes independent
    (factors never cross ASes), and — crucially for evaluation — every
    joint probability has a closed form:

    - [P(all links of S good) = Π_{f ∈ factors(S)} (1 − q_f)]
    - [P(all links of E congested)] by inclusion–exclusion over the good
      probabilities of subsets of [E].

    That closed form is the ground truth Figures 4(a)–(d) measure
    estimation error against. *)

type t

(** [make overlay probs] pairs an overlay with per-factor congestion
    probabilities.  @raise Invalid_argument if [probs] has the wrong
    length or a probability is outside [0, 1]. *)
val make : Tomo_topology.Overlay.t -> float array -> t

val overlay : t -> Tomo_topology.Overlay.t
val factor_prob : t -> int -> float

(** [draw_interval t rng] samples one interval's joint congestion state:
    a bit set over links, bit set = link congested. *)
val draw_interval : t -> Tomo_util.Rng.t -> Tomo_util.Bitset.t

(** [link_marginal t e] is [P(X_e = 1)]. *)
val link_marginal : t -> int -> float

(** [good_prob t s] is [P(∩_{e ∈ s} X_e = 0)] — the probability that
    every link in [s] is good.  [good_prob t [||] = 1]. *)
val good_prob : t -> int array -> float

(** [congestion_prob t s] is [P(∩_{e ∈ s} X_e = 1)] — the probability
    that every link in [s] is congested — computed by inclusion–exclusion
    over [good_prob].  Exponential in [Array.length s]; intended for the
    small subsets (≤ 5 links) the evaluation reports on. *)
val congestion_prob : t -> int array -> float
