(** Figure 4: accuracy of the Probability Computation algorithms.

    - Fig. 4(a): mean absolute error of per-link congestion probability,
      Brite topologies, scenarios Random / Concentrated / No-Independence
      (each with non-stationary probabilities layered on top, as in
      §5.4).
    - Fig. 4(b): the same on Sparse topologies.
    - Fig. 4(c): CDF of the absolute error in the hardest cell
      (No-Independence, Sparse).
    - Fig. 4(d): Correlation-complete's error on individual links vs on
      correlation subsets (size ≥ 2), No-Independence, Brite vs Sparse.

    Errors are averaged over the potentially congested links (paper:
    "all links which are not traversed by any path that is always
    good"). *)

type algorithm = Independence | Correlation_heuristic | Correlation_complete

val algorithm_to_string : algorithm -> string
val algorithms : algorithm list

(** [scenarios ~topology ~scale ~seed] is the three-column scenario list
    of Fig. 4(a)/(b) (non-stationarity included, per §5.4). *)
val scenarios :
  topology:Workload.topology ->
  scale:Workload.scale ->
  seed:int ->
  (string * Workload.spec) list

(** [run_pc prepared algorithm] runs one Probability Computation
    algorithm and returns its per-link result (plus the engine when the
    algorithm has one, for subset queries). *)
val run_pc :
  Workload.prepared ->
  algorithm ->
  Tomo.Pc_result.t * Tomo.Prob_engine.t option

(** [link_errors prepared result] is the per-link absolute error over
    the potentially congested links. *)
val link_errors : Workload.prepared -> Tomo.Pc_result.t -> float array

(** [mean_link_error prepared result] averages {!link_errors} (0 when
    the potentially congested set is empty). *)
val mean_link_error : Workload.prepared -> Tomo.Pc_result.t -> float

type mae_row = { label : string; cells : (algorithm * float) list }

(** [run_mae ~topology ~scale ~seed] produces Fig. 4(a) (Brite) or (b)
    (Sparse). *)
val run_mae :
  topology:Workload.topology -> scale:Workload.scale -> seed:int ->
  mae_row list

(** [run_mae_averaged ~topology ~scale ~seeds] averages {!run_mae} over
    several seeds. *)
val run_mae_averaged :
  topology:Workload.topology ->
  scale:Workload.scale ->
  seeds:int list ->
  mae_row list

(** [run_cdf ~scale ~seed ~steps] produces Fig. 4(c): for each algorithm,
    the CDF of the absolute error in the (No-Independence, Sparse)
    cell, sampled at [steps+1] points of [0, 1]. *)
val run_cdf :
  scale:Workload.scale -> seed:int -> steps:int ->
  (algorithm * (float * float) list) list

type subsets_cell = {
  links_mae : float;
  subsets_mae : float;
  n_subsets_scored : int;
      (** identifiable subsets of size ≥ 2 that were scored — the
          paper's "significant number (depending on available resources)
          of correlation subsets" *)
}

(** [run_subsets ~scale ~seed] produces Fig. 4(d): Correlation-complete
    on the No-Independence scenario, Brite and Sparse. *)
val run_subsets :
  scale:Workload.scale -> seed:int -> (string * subsets_cell) list
