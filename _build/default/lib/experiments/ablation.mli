(** Ablations and sensitivity experiments beyond the paper's figures.

    These exercise design choices the paper discusses but does not plot:

    - {b Subset-size budget} (§4): "we can configure our algorithm to
      compute only the congestion probability of each individual link,
      or the congestion probability of each set of one, two, or three
      links. This allows us to control the complexity of the algorithm."
      [subset_size_sweep] measures accuracy, system size and runtime as
      the budget grows.
    - {b Measurement noise} (§2): E2E Monitoring is an assumption;
      real probing "may incur false negatives and false positives".
      [probe_sweep] re-runs a Probability Computation cell under
      packet-level probing with decreasing probe budgets.
    - {b Estimation convergence}: accuracy of Correlation-complete as a
      function of the experiment length [T] (the paper fixes T = 1000).
      [interval_sweep].
    - {b Incremental null space} (Algorithm 2): cost of Algorithm 1 with
      the incremental update vs recomputing a basis per accepted row is
      covered by the micro-benchmarks in [bench/main.exe]. *)

type subset_row = {
  max_subset_size : int;
  n_vars : int;
  n_rows : int;
  n_identifiable : int;
  links_mae : float;
  seconds : float;
}

(** [subset_size_sweep ~scale ~seed ~sizes] runs Correlation-complete on
    the (No-Independence, Brite) cell with each subset-size budget. *)
val subset_size_sweep :
  scale:Workload.scale -> seed:int -> sizes:int list -> subset_row list

type probe_row = {
  probes_per_path : int option;  (** [None] = ideal measurement *)
  status_flip_frac : float;
      (** fraction of (path, interval) statuses that differ from ideal *)
  links_mae : float;
}

(** [probe_sweep ~scale ~seed ~budgets] runs the (Random, Brite) cell
    under ideal measurement and under probing with each budget. *)
val probe_sweep :
  scale:Workload.scale -> seed:int -> budgets:int list -> probe_row list

type fallback_row = {
  strategy : string;
  fallback_links : int;  (** links answered by the fallback *)
  fallback_mae : float;  (** error over those links only *)
  overall_mae : float;
}

(** [fallback_sweep ~scale ~seed] compares the chain-link fallback
    strategies of {!Tomo.Prob_engine.link_marginal_with} on the
    (No-Independence, Sparse) cell — the regime with the most
    unidentifiable chains. *)
val fallback_sweep :
  scale:Workload.scale -> seed:int -> fallback_row list

type interval_row = { t_intervals : int; links_mae : float }

(** [interval_sweep ~scale ~seed ~lengths] measures Correlation-complete
    accuracy against experiment length on the (No-Independence, Brite)
    cell. *)
val interval_sweep :
  scale:Workload.scale -> seed:int -> lengths:int list -> interval_row list

val render_subset_rows : Format.formatter -> subset_row list -> unit
val render_fallback_rows : Format.formatter -> fallback_row list -> unit
val render_probe_rows : Format.formatter -> probe_row list -> unit
val render_interval_rows : Format.formatter -> interval_row list -> unit
