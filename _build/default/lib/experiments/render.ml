let hr ppf width = Format.fprintf ppf "%s@." (String.make width '-')

let fig3 ppf rows =
  let algs = Fig3.algorithms in
  let width = 26 + (24 * List.length algs) in
  let header title =
    Format.fprintf ppf "@.%s@." title;
    hr ppf width;
    Format.fprintf ppf "%-26s" "Scenario";
    List.iter
      (fun a -> Format.fprintf ppf "%24s" (Fig3.algorithm_to_string a))
      algs;
    Format.fprintf ppf "@.";
    hr ppf width
  in
  header "Figure 3(a): Detection Rate";
  List.iter
    (fun (r : Fig3.row) ->
      Format.fprintf ppf "%-26s" r.Fig3.label;
      List.iter
        (fun (_, c) -> Format.fprintf ppf "%24.3f" c.Fig3.detection)
        r.Fig3.cells;
      Format.fprintf ppf "@.")
    rows;
  header "Figure 3(b): False Positive Rate";
  List.iter
    (fun (r : Fig3.row) ->
      Format.fprintf ppf "%-26s" r.Fig3.label;
      List.iter
        (fun (_, c) -> Format.fprintf ppf "%24.3f" c.Fig3.false_positive)
        r.Fig3.cells;
      Format.fprintf ppf "@.")
    rows

let fig4_mae ppf ~title rows =
  let algs = Fig4.algorithms in
  let width = 26 + (24 * List.length algs) in
  Format.fprintf ppf "@.%s@." title;
  hr ppf width;
  Format.fprintf ppf "%-26s" "Scenario";
  List.iter
    (fun a -> Format.fprintf ppf "%24s" (Fig4.algorithm_to_string a))
    algs;
  Format.fprintf ppf "@.";
  hr ppf width;
  List.iter
    (fun (r : Fig4.mae_row) ->
      Format.fprintf ppf "%-26s" r.Fig4.label;
      List.iter (fun (_, v) -> Format.fprintf ppf "%24.4f" v) r.Fig4.cells;
      Format.fprintf ppf "@.")
    rows

let fig4_cdf ppf curves =
  Format.fprintf ppf
    "@.Figure 4(c): CDF of the absolute error (No Independence, Sparse)@.";
  hr ppf 70;
  Format.fprintf ppf "%-12s" "abs. error";
  List.iter
    (fun (a, _) -> Format.fprintf ppf "%24s" (Fig4.algorithm_to_string a))
    curves;
  Format.fprintf ppf "@.";
  hr ppf 70;
  match curves with
  | [] -> ()
  | (_, first) :: _ ->
      List.iteri
        (fun i (x, _) ->
          Format.fprintf ppf "%-12.2f" x;
          List.iter
            (fun (_, curve) ->
              let _, y = List.nth curve i in
              Format.fprintf ppf "%24.3f" y)
            curves;
          Format.fprintf ppf "@.")
        first

let fig4_subsets ppf cells =
  Format.fprintf ppf
    "@.Figure 4(d): Correlation-complete, links vs correlation subsets \
     (No Independence)@.";
  hr ppf 78;
  Format.fprintf ppf "%-10s%18s%24s%26s@." "Topology" "links MAE"
    "corr. subsets MAE" "subsets scored (size>=2)";
  hr ppf 78;
  List.iter
    (fun (label, c) ->
      Format.fprintf ppf "%-10s%18.4f%24.4f%26d@." label c.Fig4.links_mae
        c.Fig4.subsets_mae c.Fig4.n_subsets_scored)
    cells

let with_csv path f =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> f (Format.formatter_of_out_channel oc))

(* Quote a CSV field only when needed (labels contain no quotes). *)
let csv_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ s ^ "\""
  else s

let fig3_csv path rows =
  with_csv path (fun ppf ->
      Format.fprintf ppf "scenario,algorithm,detection,false_positive@.";
      List.iter
        (fun (r : Fig3.row) ->
          List.iter
            (fun (a, c) ->
              Format.fprintf ppf "%s,%s,%.6f,%.6f@."
                (csv_field r.Fig3.label)
                (Fig3.algorithm_to_string a)
                c.Fig3.detection c.Fig3.false_positive)
            r.Fig3.cells)
        rows;
      Format.pp_print_flush ppf ())

let fig4_mae_csv path rows =
  with_csv path (fun ppf ->
      Format.fprintf ppf "scenario,algorithm,mae@.";
      List.iter
        (fun (r : Fig4.mae_row) ->
          List.iter
            (fun (a, v) ->
              Format.fprintf ppf "%s,%s,%.6f@."
                (csv_field r.Fig4.label)
                (Fig4.algorithm_to_string a)
                v)
            r.Fig4.cells)
        rows;
      Format.pp_print_flush ppf ())

let fig4_cdf_csv path curves =
  with_csv path (fun ppf ->
      Format.fprintf ppf "algorithm,abs_error,cdf@.";
      List.iter
        (fun (a, curve) ->
          List.iter
            (fun (x, y) ->
              Format.fprintf ppf "%s,%.6f,%.6f@."
                (Fig4.algorithm_to_string a)
                x y)
            curve)
        curves;
      Format.pp_print_flush ppf ())

let fig4_subsets_csv path cells =
  with_csv path (fun ppf ->
      Format.fprintf ppf "topology,links_mae,subsets_mae,n_subsets_scored@.";
      List.iter
        (fun (label, c) ->
          Format.fprintf ppf "%s,%.6f,%.6f,%d@." (csv_field label)
            c.Fig4.links_mae c.Fig4.subsets_mae c.Fig4.n_subsets_scored)
        cells;
      Format.pp_print_flush ppf ())

let table2 ppf =
  let rows =
    [
      ("Separability", [ "x"; "x"; "x"; "x"; "x" ]);
      ("E2E Monitoring", [ "x"; "x"; "x"; "x"; "x" ]);
      ("Homogeneity", [ "x"; ""; ""; ""; "" ]);
      ("Independence", [ ""; "x"; "x"; ""; "" ]);
      ("Correlation Sets", [ ""; ""; ""; "x"; "x" ]);
      ("Identifiability", [ "x"; "x"; "x"; ""; "" ]);
      ("Identifiability++", [ ""; ""; ""; "x"; "x" ]);
      ("Other approx./heuristic", [ "x"; ""; "x"; ""; "x" ]);
    ]
  in
  Format.fprintf ppf
    "@.Table 2: Sources of inaccuracy for Boolean Inference algorithms@.";
  hr ppf 100;
  Format.fprintf ppf "%-26s%10s%16s%16s%16s%16s@." "" "Sparsity"
    "B-Indep. S1" "B-Indep. S2" "B-Corr. S1" "B-Corr. S2";
  hr ppf 100;
  List.iter
    (fun (label, marks) ->
      Format.fprintf ppf "%-26s" label;
      List.iteri
        (fun i m ->
          Format.fprintf ppf "%*s" (if i = 0 then 10 else 16) m)
        marks;
      Format.fprintf ppf "@.")
    rows;
  Format.fprintf ppf
    "(S1 = Probability Computation step, S2 = Probabilistic Inference \
     step)@."
