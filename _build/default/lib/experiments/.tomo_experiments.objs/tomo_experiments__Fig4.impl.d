lib/experiments/fig4.ml: Array List Option Tomo Tomo_netsim Tomo_util Workload
