lib/experiments/ablation.mli: Format Workload
