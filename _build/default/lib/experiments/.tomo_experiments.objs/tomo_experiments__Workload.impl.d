lib/experiments/workload.ml: Array Printf Tomo Tomo_netsim Tomo_topology Tomo_util
