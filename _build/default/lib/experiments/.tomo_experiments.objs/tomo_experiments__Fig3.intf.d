lib/experiments/fig3.mli: Workload
