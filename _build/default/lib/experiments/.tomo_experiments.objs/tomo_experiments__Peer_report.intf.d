lib/experiments/peer_report.mli: Format Tomo Tomo_topology Tomo_util
