lib/experiments/fig4.mli: Tomo Workload
