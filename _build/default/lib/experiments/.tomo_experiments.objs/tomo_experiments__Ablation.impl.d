lib/experiments/ablation.ml: Array Fig4 Format List String Tomo Tomo_netsim Tomo_util Unix Workload
