lib/experiments/fig3.ml: Array List Option Tomo Tomo_netsim Tomo_util Workload
