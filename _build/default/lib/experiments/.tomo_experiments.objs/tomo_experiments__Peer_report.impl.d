lib/experiments/peer_report.ml: Array Format List String Tomo Tomo_topology
