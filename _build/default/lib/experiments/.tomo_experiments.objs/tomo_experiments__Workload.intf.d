lib/experiments/workload.mli: Tomo Tomo_netsim Tomo_topology
