lib/experiments/render.mli: Fig3 Fig4 Format
