lib/experiments/render.ml: Fig3 Fig4 Format Fun List String
