(** Plain-text rendering of the reproduced figures and tables. *)

(** [fig3 ppf rows] prints the detection-rate and false-positive-rate
    tables (Fig. 3a and 3b). *)
val fig3 : Format.formatter -> Fig3.row list -> unit

(** [fig4_mae ppf ~title rows] prints one mean-absolute-error table
    (Fig. 4a or 4b). *)
val fig4_mae : Format.formatter -> title:string -> Fig4.mae_row list -> unit

(** [fig4_cdf ppf curves] prints the error-CDF series (Fig. 4c). *)
val fig4_cdf :
  Format.formatter -> (Fig4.algorithm * (float * float) list) list -> unit

(** [fig4_subsets ppf cells] prints the links-vs-subsets comparison
    (Fig. 4d). *)
val fig4_subsets :
  Format.formatter -> (string * Fig4.subsets_cell) list -> unit

(** [table2 ppf] prints the paper's Table 2 (sources of inaccuracy of the
    Boolean-Inference algorithms) — static content, kept here so the CLI
    can reproduce every table of the paper. *)
val table2 : Format.formatter -> unit

(** CSV writers, for external plotting.  Each produces one file with a
    header row; floats use enough digits to round-trip. *)

val fig3_csv : string -> Fig3.row list -> unit
(** columns: [scenario,algorithm,detection,false_positive] *)

val fig4_mae_csv : string -> Fig4.mae_row list -> unit
(** columns: [scenario,algorithm,mae] *)

val fig4_cdf_csv :
  string -> (Fig4.algorithm * (float * float) list) list -> unit
(** columns: [algorithm,abs_error,cdf] *)

val fig4_subsets_csv : string -> (string * Fig4.subsets_cell) list -> unit
(** columns: [topology,links_mae,subsets_mae,n_subsets_scored] *)
