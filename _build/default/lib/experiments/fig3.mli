(** Figure 3: performance of Boolean Inference algorithms under the
    paper's five congestion scenarios.

    Scenarios (all with 10% congestible links):
    - Random Congestion (Brite)
    - Concentrated Congestion (Brite, edge links)
    - No Independence (Brite, correlated links)
    - No Stationarity (Brite, correlated + probabilities redrawn)
    - Sparse Topology (Sparse, random congestion)

    Algorithms: Sparsity, Bayesian-Independence, Bayesian-Correlation.
    Metrics: detection rate (Fig. 3a) and false-positive rate (Fig. 3b),
    averaged over all intervals of the experiment. *)

type algorithm = Sparsity | Bayesian_independence | Bayesian_correlation

val algorithm_to_string : algorithm -> string
val algorithms : algorithm list

type cell = { detection : float; false_positive : float }

type row = {
  label : string;
  cells : (algorithm * cell) list;
}

(** [scenarios ~scale ~seed] is the five-column scenario list of the
    figure. *)
val scenarios : scale:Workload.scale -> seed:int -> (string * Workload.spec) list

(** [run_cell prepared algorithm] scores one (scenario, algorithm) cell:
    runs the algorithm's probability-computation step once over the whole
    experiment (Bayesian variants), then infers per interval and averages
    detection / false-positive rates. *)
val run_cell : Workload.prepared -> algorithm -> cell

(** [run ~scale ~seed] produces the whole figure. *)
val run : scale:Workload.scale -> seed:int -> row list

(** [run_averaged ~scale ~seeds] averages the figure over several
    seeds (independent topologies + congestion draws), damping the
    single-topology variance the paper's "representative topology"
    presentation hides. *)
val run_averaged : scale:Workload.scale -> seeds:int list -> row list
