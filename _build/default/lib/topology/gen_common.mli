(** Shared machinery for the topology generators: a two-level "internet"
    (AS-level peering graph + per-AS router-level internals) and the
    expansion of AS-level routes into AS-level link sequences backed by
    router-level factors.

    Both the Brite-like generator and the Sparse (traceroute-campaign)
    generator drive this module; they differ only in the shape of the AS
    graph and in how measurement paths are collected. *)

type internet = {
  as_graph : Graph.t;  (** peering relationships between ASes *)
  internals : Graph.t array;
      (** per-AS router-level topology, local router ids [0..r-1] *)
  borders : (int * int, int * int) Hashtbl.t;
      (** AS adjacency [(a, b)] with [a < b] → (border router in [a],
          border router in [b]) *)
}

(** [generate_internet rng ~n_ases ~attach ~extra_edge_frac ~routers_lo
    ~routers_hi] builds a random internet:

    - the AS graph grows by preferential attachment, each new AS peering
      with [attach] existing ASes (degree-weighted), then
      [extra_edge_frac · n_ases] extra random peerings are added;
    - each AS gets a connected internal router graph (ring plus random
      chords) with between [routers_lo] and [routers_hi] routers;
    - each peering is pinned to one border router on each side. *)
val generate_internet :
  Tomo_util.Rng.t ->
  n_ases:int ->
  attach:int ->
  extra_edge_frac:float ->
  routers_lo:int ->
  routers_hi:int ->
  internet

(** [hub_as inet] is the AS of maximum peering degree — the natural
    "source ISP" for the Brite scenario. *)
val hub_as : internet -> int

(** [expand_route b inet rng ~vantage_router ~dest_router ~as_route]
    expands an AS-level route (node list, starting at the vantage AS) into
    a sequence of AS-level link ids registered in builder [b]:

    - consecutive ASes contribute an inter-domain link (owned by the
      downstream AS, backed by one private factor);
    - movement between routers inside one AS contributes an intra-domain
      link backed by the factors (router-level edges) of the internal
      shortest path, so intra-domain links of one AS share factors — the
      correlation ground truth.

    [vantage_router] is the local router id where the probing end-host
    attaches in the first AS; [dest_router] the attachment in the last
    AS.  Returns [None] if the route degenerates (single AS with vantage =
    destination). *)
val expand_route :
  Overlay.Builder.b ->
  internet ->
  Tomo_util.Rng.t ->
  vantage_router:int ->
  dest_router:int ->
  as_route:int list ->
  int array option
