(** Plain-text serialization of overlays.

    A monitoring deployment measures paths continuously but re-derives
    the topology rarely; persisting the overlay lets operators pin the
    exact graph a report was computed against (and lets experiments be
    archived/replayed).  The format is line-oriented and versioned:

    {v
    tomo-overlay v1
    ases <n> source <as>
    factors <n>
    factor <id> <owner-as>          (one per factor)
    links <n>
    link <id> <owner-as> inter|intra <factor-id>...
    paths <n>
    path <id> <link-id>...
    v} *)

(** [write ppf overlay] serializes. *)
val write : Format.formatter -> Overlay.t -> unit

(** [to_string overlay] serializes to a string. *)
val to_string : Overlay.t -> string

(** [of_string s] parses and validates.
    @raise Failure with a line-anchored message on malformed input. *)
val of_string : string -> Overlay.t

(** [save path overlay] / [load path]: file convenience wrappers. *)
val save : string -> Overlay.t -> unit

val load : string -> Overlay.t
