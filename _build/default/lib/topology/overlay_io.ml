let write ppf (t : Overlay.t) =
  Format.fprintf ppf "tomo-overlay v1@.";
  Format.fprintf ppf "ases %d source %d@." t.Overlay.n_ases
    t.Overlay.source_as;
  Format.fprintf ppf "factors %d@." t.Overlay.n_factors;
  Array.iteri
    (fun id owner -> Format.fprintf ppf "factor %d %d@." id owner)
    t.Overlay.factor_owner;
  Format.fprintf ppf "links %d@." (Overlay.n_links t);
  Array.iter
    (fun (l : Overlay.link) ->
      Format.fprintf ppf "link %d %d %s" l.Overlay.id l.Overlay.owner_as
        (match l.Overlay.kind with
        | Overlay.Inter -> "inter"
        | Overlay.Intra -> "intra");
      Array.iter (fun f -> Format.fprintf ppf " %d" f) l.Overlay.factors;
      Format.fprintf ppf "@.")
    t.Overlay.links;
  Format.fprintf ppf "paths %d@." (Overlay.n_paths t);
  Array.iter
    (fun (p : Overlay.path) ->
      Format.fprintf ppf "path %d" p.Overlay.id;
      Array.iter (fun l -> Format.fprintf ppf " %d" l) p.Overlay.links;
      Format.fprintf ppf "@.")
    t.Overlay.paths

let to_string t =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  write ppf t;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

(* Parsing: split into significant lines, dispatch on the first token. *)
let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let fail line fmt =
    Format.kasprintf (fun msg -> failwith (Printf.sprintf "%s: %s" line msg)) fmt
  in
  let words l = String.split_on_char ' ' l |> List.filter (( <> ) "") in
  let int_of l w =
    match int_of_string_opt w with
    | Some v -> v
    | None -> fail l "expected integer, got %S" w
  in
  match lines with
  | header :: rest when header = "tomo-overlay v1" -> (
      let n_ases = ref 0
      and source_as = ref 0
      and factor_owner = ref [||]
      and links = ref []
      and paths = ref [] in
      List.iter
        (fun line ->
          match words line with
          | [ "ases"; n; "source"; s ] ->
              n_ases := int_of line n;
              source_as := int_of line s
          | [ "factors"; n ] ->
              factor_owner := Array.make (int_of line n) (-1)
          | [ "factor"; id; owner ] ->
              let id = int_of line id in
              if id < 0 || id >= Array.length !factor_owner then
                fail line "factor id out of range";
              !factor_owner.(id) <- int_of line owner
          | "link" :: id :: owner :: kind :: factors ->
              let kind =
                match kind with
                | "inter" -> Overlay.Inter
                | "intra" -> Overlay.Intra
                | k -> fail line "unknown link kind %S" k
              in
              links :=
                {
                  Overlay.id = int_of line id;
                  owner_as = int_of line owner;
                  kind;
                  factors =
                    Array.of_list (List.map (int_of line) factors);
                }
                :: !links
          | "path" :: id :: link_ids ->
              paths :=
                {
                  Overlay.id = int_of line id;
                  links = Array.of_list (List.map (int_of line) link_ids);
                }
                :: !paths
          | [ "links"; _ ] | [ "paths"; _ ] -> ()
          | _ -> fail line "unrecognized line")
        rest;
      let sort_by_id arr id_of =
        let a = Array.of_list arr in
        Array.sort (fun x y -> compare (id_of x) (id_of y)) a;
        a
      in
      let overlay =
        {
          Overlay.n_ases = !n_ases;
          source_as = !source_as;
          links = sort_by_id !links (fun (l : Overlay.link) -> l.Overlay.id);
          paths = sort_by_id !paths (fun (p : Overlay.path) -> p.Overlay.id);
          n_factors = Array.length !factor_owner;
          factor_owner = !factor_owner;
        }
      in
      Overlay.validate overlay;
      overlay)
  | header :: _ -> failwith ("unknown overlay format: " ^ header)
  | [] -> failwith "empty overlay file"

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let ppf = Format.formatter_of_out_channel oc in
      write ppf t;
      Format.pp_print_flush ppf ())

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (In_channel.input_all ic))
