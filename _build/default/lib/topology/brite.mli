(** Brite-like dense topologies (paper §3.2).

    The paper evaluates on topologies from the Brite generator: a full
    AS-level internet with preferential-attachment structure, yielding
    relatively dense graphs where measurement paths criss-cross.  This
    module reproduces that regime: a Barabási–Albert AS graph, router-
    level internals per AS, and end-to-end paths from vantage end-hosts
    inside the source AS to end-hosts in random destination ASes.

    Defaults target the paper's scale: roughly 1000 AS-level links and
    1500 paths. *)

type params = {
  n_ases : int;  (** AS count (default 150) *)
  attach : int;  (** preferential-attachment edges per AS (default 2) *)
  extra_edge_frac : float;  (** extra random peerings / AS (default 0.2) *)
  routers_lo : int;  (** min routers per AS (default 4) *)
  routers_hi : int;  (** max routers per AS (default 8) *)
  n_paths : int;  (** measurement paths to collect (default 1500) *)
  n_vantages : int;  (** probing end-hosts in the source AS (default 5) *)
  border_attach_frac : float;
      (** fraction of destination end-hosts attached directly at the
          entry border router (default 0.5).  Border-attached
          destinations make the inter-domain link the path's last hop,
          which keeps the dense criss-cross structure — and hence
          Identifiability++ — that the paper attributes to Brite
          topologies; router-attached destinations add the intra-domain
          tail links that edge-congestion scenarios exercise. *)
}

val default : params

(** [generate ?params ~seed ()] builds the overlay.  The source AS is the
    highest-degree AS (a tier-1 hub).  Generation is deterministic in
    [seed]. *)
val generate : ?params:params -> seed:int -> unit -> Overlay.t
