(** Two-level network topologies: AS-level links over router-level
    factors.

    This mirrors the paper's measurement setup (§3.2).  The monitored
    graph is AS-level: each *link* is either an inter-domain link between
    border routers of peering ASes or an intra-domain path between two
    border routers of the same AS.  Each AS-level link is backed by one or
    more router-level links, called *factors* here.  Two AS-level links of
    the same AS that share a factor become congested together when that
    factor is congested — this is exactly the paper's correlation model
    ("if a router-level link becomes congested, then all the AS-level
    links that share this router-level link become congested at the same
    time").

    Invariant: a factor is owned by a single AS and only backs links of
    that AS, so links of different ASes are independent — the paper's
    Correlation Sets assumption (one correlation set per AS) holds by
    construction in the simulated ground truth. *)

type kind = Inter  (** inter-domain link between peering ASes *)
          | Intra  (** intra-domain path between border routers of one AS *)

type link = {
  id : int;
  owner_as : int;  (** correlation set this link belongs to *)
  kind : kind;
  factors : int array;  (** router-level links backing this link *)
}

type path = {
  id : int;
  links : int array;  (** AS-level link ids, in traversal order *)
}

type t = {
  n_ases : int;
  source_as : int;  (** the monitoring ("source") ISP *)
  links : link array;
  paths : path array;
  n_factors : int;
  factor_owner : int array;  (** owning AS of each factor *)
}

val n_links : t -> int
val n_paths : t -> int

(** [correlation_sets t] groups link ids by owning AS: one array of link
    ids per AS that owns at least one link, in increasing AS order. *)
val correlation_sets : t -> int array array

(** [links_sharing_factor t] maps each factor to the links it backs. *)
val links_sharing_factor : t -> int array array

(** [validate t] checks structural invariants (factor ownership matches
    link ownership, path links exist and never repeat within a path,
    every path is non-empty).  @raise Failure describing the first
    violation. *)
val validate : t -> unit

(** [pp_summary] prints node/link/path counts and sparsity indicators. *)
val pp_summary : Format.formatter -> t -> unit

(** Incremental construction with get-or-create semantics for links and
    factors, plus optional pruning of links no surviving path uses. *)
module Builder : sig
  type overlay = t
  type b

  (** [create ~n_ases ~source_as] starts an empty builder. *)
  val create : n_ases:int -> source_as:int -> b

  (** [factor b ~owner ~key] returns the factor registered under
      [(owner, key)], creating it on first use. *)
  val factor : b -> owner:int -> key:string -> int

  (** [link b ~owner ~key ~kind ~factors] returns the link registered
      under [(owner, key)], creating it with the given backing factors on
      first use.  [factors] is only evaluated on creation.
      @raise Invalid_argument if a factor is owned by a different AS. *)
  val link :
    b -> owner:int -> key:string -> kind:kind -> factors:(unit -> int array)
    -> int

  (** [add_path b links] records a path; returns [None] if an identical
      link sequence was already recorded (duplicate probes carry no
      information), [Some id] otherwise. *)
  val add_path : b -> int array -> int option

  (** [finalize b] produces the overlay, pruning links and factors unused
      by any path and compacting all identifiers. *)
  val finalize : b -> overlay
end
