type kind = Inter | Intra

type link = {
  id : int;
  owner_as : int;
  kind : kind;
  factors : int array;
}

type path = { id : int; links : int array }

type t = {
  n_ases : int;
  source_as : int;
  links : link array;
  paths : path array;
  n_factors : int;
  factor_owner : int array;
}

let n_links t = Array.length t.links
let n_paths t = Array.length t.paths

let correlation_sets t =
  let by_as = Hashtbl.create 64 in
  Array.iter
    (fun l ->
      let prev = try Hashtbl.find by_as l.owner_as with Not_found -> [] in
      Hashtbl.replace by_as l.owner_as (l.id :: prev))
    t.links;
  Hashtbl.fold (fun as_id ids acc -> (as_id, ids) :: acc) by_as []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (_, ids) -> Array.of_list (List.rev ids))
  |> Array.of_list

let links_sharing_factor t =
  let buckets = Array.make t.n_factors [] in
  Array.iter
    (fun (l : link) ->
      Array.iter (fun f -> buckets.(f) <- l.id :: buckets.(f)) l.factors)
    t.links;
  Array.map (fun ids -> Array.of_list (List.rev ids)) buckets

let validate t =
  let fail fmt = Format.kasprintf failwith fmt in
  Array.iteri
    (fun i (l : link) ->
      if l.id <> i then fail "link %d has id %d" i l.id;
      if l.owner_as < 0 || l.owner_as >= t.n_ases then
        fail "link %d owned by unknown AS %d" i l.owner_as;
      if Array.length l.factors = 0 then fail "link %d has no factors" i;
      Array.iter
        (fun f ->
          if f < 0 || f >= t.n_factors then
            fail "link %d references unknown factor %d" i f;
          if t.factor_owner.(f) <> l.owner_as then
            fail "link %d (AS %d) uses factor %d of AS %d" i l.owner_as f
              t.factor_owner.(f))
        l.factors)
    t.links;
  Array.iteri
    (fun i p ->
      if p.id <> i then fail "path %d has id %d" i p.id;
      if Array.length p.links = 0 then fail "path %d is empty" i;
      let seen = Hashtbl.create 8 in
      Array.iter
        (fun l ->
          if l < 0 || l >= n_links t then
            fail "path %d uses unknown link %d" i l;
          if Hashtbl.mem seen l then
            fail "path %d traverses link %d twice (loop)" i l;
          Hashtbl.add seen l ())
        p.links)
    t.paths

let pp_summary ppf t =
  let used = Array.make (n_links t) 0 in
  Array.iter
    (fun (p : path) -> Array.iter (fun l -> used.(l) <- used.(l) + 1) p.links)
    t.paths;
  let single = Array.fold_left (fun a c -> if c = 1 then a + 1 else a) 0 used
  and total_hops =
    Array.fold_left (fun a (p : path) -> a + Array.length p.links) 0 t.paths
  in
  Format.fprintf ppf
    "@[<v>ASes: %d@,links: %d (%d traversed by a single path)@,paths: %d \
     (mean length %.1f links)@,factors: %d@]"
    t.n_ases (n_links t) single (n_paths t)
    (float_of_int total_hops /. float_of_int (max 1 (n_paths t)))
    t.n_factors

module Builder = struct
  type overlay = t

  type proto_link = {
    p_owner : int;
    p_kind : kind;
    p_factors : int array;
  }

  type b = {
    b_n_ases : int;
    b_source_as : int;
    factor_ids : (int * string, int) Hashtbl.t;
    mutable factor_owners : int list;  (* reversed *)
    mutable b_n_factors : int;
    link_ids : (int * string, int) Hashtbl.t;
    mutable proto_links : proto_link list;  (* reversed *)
    mutable b_n_links : int;
    path_sigs : (string, unit) Hashtbl.t;
    mutable b_paths : int array list;  (* reversed *)
    mutable b_n_paths : int;
  }

  let create ~n_ases ~source_as =
    if n_ases <= 0 then invalid_arg "Builder.create: no ASes";
    if source_as < 0 || source_as >= n_ases then
      invalid_arg "Builder.create: source AS out of range";
    {
      b_n_ases = n_ases;
      b_source_as = source_as;
      factor_ids = Hashtbl.create 1024;
      factor_owners = [];
      b_n_factors = 0;
      link_ids = Hashtbl.create 1024;
      proto_links = [];
      b_n_links = 0;
      path_sigs = Hashtbl.create 1024;
      b_paths = [];
      b_n_paths = 0;
    }

  let factor b ~owner ~key =
    match Hashtbl.find_opt b.factor_ids (owner, key) with
    | Some id -> id
    | None ->
        let id = b.b_n_factors in
        Hashtbl.add b.factor_ids (owner, key) id;
        b.factor_owners <- owner :: b.factor_owners;
        b.b_n_factors <- id + 1;
        id

  let link b ~owner ~key ~kind ~factors =
    match Hashtbl.find_opt b.link_ids (owner, key) with
    | Some id -> id
    | None ->
        let fs = factors () in
        if Array.length fs = 0 then
          invalid_arg "Builder.link: link needs at least one factor";
        let owners = Array.of_list (List.rev b.factor_owners) in
        Array.iter
          (fun f ->
            if f < 0 || f >= b.b_n_factors then
              invalid_arg "Builder.link: unknown factor";
            if owners.(f) <> owner then
              invalid_arg "Builder.link: factor owned by a different AS")
          fs;
        let id = b.b_n_links in
        Hashtbl.add b.link_ids (owner, key) id;
        b.proto_links <-
          { p_owner = owner; p_kind = kind; p_factors = fs }
          :: b.proto_links;
        b.b_n_links <- id + 1;
        id

  let add_path b links =
    if Array.length links = 0 then invalid_arg "Builder.add_path: empty";
    let sig_ =
      String.concat "," (Array.to_list (Array.map string_of_int links))
    in
    if Hashtbl.mem b.path_sigs sig_ then None
    else begin
      Hashtbl.add b.path_sigs sig_ ();
      let id = b.b_n_paths in
      b.b_paths <- links :: b.b_paths;
      b.b_n_paths <- id + 1;
      Some id
    end

  let finalize b =
    let proto = Array.of_list (List.rev b.proto_links) in
    let paths = Array.of_list (List.rev b.b_paths) in
    (* Keep only links traversed by at least one path: the observable
       topology is the union of the measured paths. *)
    let used = Array.make (Array.length proto) false in
    Array.iter (Array.iter (fun l -> used.(l) <- true)) paths;
    let new_link_id = Array.make (Array.length proto) (-1) in
    let kept = ref [] and n_kept = ref 0 in
    Array.iteri
      (fun i p ->
        if used.(i) then begin
          new_link_id.(i) <- !n_kept;
          kept := p :: !kept;
          incr n_kept
        end)
      proto;
    let kept = Array.of_list (List.rev !kept) in
    (* Compact factors of surviving links. *)
    let old_factor_owner = Array.of_list (List.rev b.factor_owners) in
    let new_factor_id = Array.make b.b_n_factors (-1) in
    let factor_owner_rev = ref [] and n_factors = ref 0 in
    let remap_factor f =
      if new_factor_id.(f) < 0 then begin
        new_factor_id.(f) <- !n_factors;
        factor_owner_rev := old_factor_owner.(f) :: !factor_owner_rev;
        incr n_factors
      end;
      new_factor_id.(f)
    in
    let links =
      Array.mapi
        (fun i p ->
          {
            id = i;
            owner_as = p.p_owner;
            kind = p.p_kind;
            factors = Array.map remap_factor p.p_factors;
          })
        kept
    in
    let paths =
      Array.mapi
        (fun i ls -> { id = i; links = Array.map (fun l -> new_link_id.(l)) ls })
        paths
    in
    {
      n_ases = b.b_n_ases;
      source_as = b.b_source_as;
      links;
      paths;
      n_factors = !n_factors;
      factor_owner = Array.of_list (List.rev !factor_owner_rev);
    }
end
