(** Sparse topologies: synthetic stand-in for the source ISP's traceroute
    campaign (paper §3.2).

    The paper's "Sparse" topologies were assembled from traceroutes taken
    at a Tier-1 ISP; most traceroutes were incomplete and discarded, so
    the observed graph is much sparser than a full internet — few paths
    intersect one another, many links are traversed by a single path, and
    the tomography equation system has low rank relative to the number of
    links.  That regime, not any particular IP-level detail, is what
    breaks Boolean Inference, so we reproduce the regime:

    - a near-tree AS graph (preferential attachment with one peering per
      AS, plus a small fraction of extra edges),
    - a small number of vantage points,
    - destinations spread over the whole AS set,
    - per-path random destination end-hosts, so destination-edge links
      tend to be covered by a single path (chains of equal-coverage links
      appear, so Identifiability — and Identifiability++ — fail, exactly
      as the paper reports for its Sparse topologies).

    Defaults target the paper's scale: roughly 2000 AS-level links and
    1500 paths. *)

type params = {
  n_ases : int;  (** AS count (default 700) *)
  extra_edge_frac : float;  (** extra random peerings / AS (default 0.04) *)
  routers_lo : int;  (** min routers per AS (default 3) *)
  routers_hi : int;  (** max routers per AS (default 6) *)
  n_paths : int;  (** surviving traceroutes (default 1500) *)
  n_vantages : int;  (** vantage end-hosts in the source AS (default 3) *)
  border_attach_frac : float;
      (** fraction of traceroute targets whose AS-level trace ends at the
          destination AS's entry border router (default 0.7): at AS-level
          granularity most traces end on the inter-domain link into the
          destination AS; the rest terminate at an internal router and
          contribute an intra-domain tail link *)
}

val default : params

(** [generate ?params ~seed ()] builds the overlay.  The source AS is the
    highest-degree AS.  Deterministic in [seed]. *)
val generate : ?params:params -> seed:int -> unit -> Overlay.t
