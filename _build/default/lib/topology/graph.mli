(** Simple undirected graphs with BFS routing.

    Used for the AS-level peering graph (over which end-to-end routes are
    computed) and for the router-level topology inside each AS (over
    which intra-domain paths are expanded into shared physical links). *)

type t

(** [create n] is an edgeless graph on nodes [0 .. n-1]. *)
val create : int -> t

val n_nodes : t -> int

(** [add_edge g u v] adds an undirected edge.  Self-loops and duplicate
    edges are rejected with [Invalid_argument]. *)
val add_edge : t -> int -> int -> unit

(** [has_edge g u v] is [true] iff the edge exists (in either
    orientation). *)
val has_edge : t -> int -> int -> bool

(** [neighbors g u] is the adjacency list of [u] in insertion order. *)
val neighbors : t -> int -> int list

val degree : t -> int -> int
val n_edges : t -> int

(** [edges g] lists each undirected edge once, as [(min, max)] pairs. *)
val edges : t -> (int * int) list

(** [shortest_path ?rng g ~src ~dst] is a minimum-hop node sequence from
    [src] to [dst] (inclusive), or [None] if disconnected.  When [rng] is
    given, ties between equal-length routes are broken randomly, which
    diversifies the link-level expansion of AS-level routes. *)
val shortest_path :
  ?rng:Tomo_util.Rng.t -> t -> src:int -> dst:int -> int list option

(** [connected g] is [true] iff the graph has one component (vacuously
    true for the empty graph). *)
val connected : t -> bool
