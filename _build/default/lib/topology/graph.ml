module Rng = Tomo_util.Rng

type t = { n : int; adj : int list array; mutable m : int }

let create n =
  if n < 0 then invalid_arg "Graph.create: negative size";
  { n; adj = Array.make n []; m = 0 }

let n_nodes g = g.n

let check g u =
  if u < 0 || u >= g.n then invalid_arg "Graph: node out of range"

let has_edge g u v =
  check g u;
  check g v;
  List.mem v g.adj.(u)

let add_edge g u v =
  check g u;
  check g v;
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  if has_edge g u v then invalid_arg "Graph.add_edge: duplicate edge";
  g.adj.(u) <- v :: g.adj.(u);
  g.adj.(v) <- u :: g.adj.(v);
  g.m <- g.m + 1

let neighbors g u =
  check g u;
  List.rev g.adj.(u)

let degree g u =
  check g u;
  List.length g.adj.(u)

let n_edges g = g.m

let edges g =
  let acc = ref [] in
  for u = 0 to g.n - 1 do
    List.iter (fun v -> if u < v then acc := (u, v) :: !acc) g.adj.(u)
  done;
  List.rev !acc

let shortest_path ?rng g ~src ~dst =
  check g src;
  check g dst;
  if src = dst then Some [ src ]
  else begin
    let parent = Array.make g.n (-1) in
    let visited = Array.make g.n false in
    visited.(src) <- true;
    let queue = Queue.create () in
    Queue.add src queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      let ns = Array.of_list (neighbors g u) in
      (match rng with Some r -> Rng.shuffle r ns | None -> ());
      Array.iter
        (fun v ->
          if not visited.(v) then begin
            visited.(v) <- true;
            parent.(v) <- u;
            if v = dst then found := true;
            Queue.add v queue
          end)
        ns
    done;
    if not visited.(dst) then None
    else begin
      let rec build v acc =
        if v = src then src :: acc else build parent.(v) (v :: acc)
      in
      Some (build dst [])
    end
  end

let connected g =
  if g.n = 0 then true
  else begin
    let visited = Array.make g.n false in
    let queue = Queue.create () in
    visited.(0) <- true;
    Queue.add 0 queue;
    let count = ref 1 in
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun v ->
          if not visited.(v) then begin
            visited.(v) <- true;
            incr count;
            Queue.add v queue
          end)
        g.adj.(u)
    done;
    !count = g.n
  end
