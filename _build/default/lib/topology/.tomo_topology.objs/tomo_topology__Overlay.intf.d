lib/topology/overlay.mli: Format
