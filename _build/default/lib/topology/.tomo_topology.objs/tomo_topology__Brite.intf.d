lib/topology/brite.mli: Overlay
