lib/topology/gen_common.mli: Graph Hashtbl Overlay Tomo_util
