lib/topology/gen_common.ml: Array Graph Hashtbl List Overlay Printf Tomo_util
