lib/topology/graph.mli: Tomo_util
