lib/topology/sparse_topo.mli: Overlay
