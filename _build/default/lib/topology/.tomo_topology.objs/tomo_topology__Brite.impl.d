lib/topology/brite.ml: Array Gen_common Graph Hashtbl List Overlay Tomo_util
