lib/topology/overlay.ml: Array Format Hashtbl List String
