lib/topology/overlay_io.mli: Format Overlay
