lib/topology/sparse_topo.ml: Array Gen_common Graph Hashtbl List Overlay Tomo_util
