lib/topology/graph.ml: Array List Queue Tomo_util
