lib/topology/overlay_io.ml: Array Buffer Format Fun In_channel List Overlay Printf String
