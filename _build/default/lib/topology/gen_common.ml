module Rng = Tomo_util.Rng

type internet = {
  as_graph : Graph.t;
  internals : Graph.t array;
  borders : (int * int, int * int) Hashtbl.t;
}

let generate_as_graph rng ~n_ases ~attach ~extra_edge_frac =
  if n_ases < 2 then invalid_arg "generate_internet: need at least 2 ASes";
  let attach = max 1 attach in
  let g = Graph.create n_ases in
  let seed_size = min n_ases (attach + 1) in
  (* Seed: a small clique so early nodes have targets to attach to. *)
  for u = 0 to seed_size - 1 do
    for v = u + 1 to seed_size - 1 do
      Graph.add_edge g u v
    done
  done;
  for u = seed_size to n_ases - 1 do
    let targets = min attach u in
    let chosen = Hashtbl.create 4 in
    let tries = ref 0 in
    while Hashtbl.length chosen < targets && !tries < 200 do
      incr tries;
      (* Degree-weighted (preferential) attachment; +1 smooths the seed. *)
      let weights =
        Array.init u (fun v ->
            if Hashtbl.mem chosen v then 0.0
            else float_of_int (Graph.degree g v + 1))
      in
      let v = Rng.pick_weighted rng weights in
      if not (Hashtbl.mem chosen v) then begin
        Hashtbl.add chosen v ();
        Graph.add_edge g u v
      end
    done
  done;
  let extra = int_of_float (extra_edge_frac *. float_of_int n_ases) in
  let added = ref 0 and tries = ref 0 in
  while !added < extra && !tries < extra * 50 do
    incr tries;
    let u = Rng.int rng n_ases and v = Rng.int rng n_ases in
    if u <> v && not (Graph.has_edge g u v) then begin
      Graph.add_edge g u v;
      incr added
    end
  done;
  g

let generate_internal rng ~n_routers =
  let n = max 1 n_routers in
  let g = Graph.create n in
  (* Ring guarantees connectivity; chords create shared shortest-path
     segments between border pairs, i.e. intra-AS link correlations. *)
  if n > 1 then
    for u = 0 to n - 1 do
      let v = (u + 1) mod n in
      if not (Graph.has_edge g u v) then Graph.add_edge g u v
    done;
  let chords = n / 3 in
  let added = ref 0 and tries = ref 0 in
  while !added < chords && !tries < chords * 30 do
    incr tries;
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v && not (Graph.has_edge g u v) then begin
      Graph.add_edge g u v;
      incr added
    end
  done;
  g

let generate_internet rng ~n_ases ~attach ~extra_edge_frac ~routers_lo
    ~routers_hi =
  if routers_lo < 1 || routers_hi < routers_lo then
    invalid_arg "generate_internet: bad router range";
  let as_graph = generate_as_graph rng ~n_ases ~attach ~extra_edge_frac in
  let internals =
    Array.init n_ases (fun _ ->
        let n_routers =
          routers_lo + Rng.int rng (routers_hi - routers_lo + 1)
        in
        generate_internal rng ~n_routers)
  in
  let borders = Hashtbl.create (Graph.n_edges as_graph) in
  List.iter
    (fun (a, b) ->
      let ra = Rng.int rng (Graph.n_nodes internals.(a)) in
      let rb = Rng.int rng (Graph.n_nodes internals.(b)) in
      Hashtbl.add borders (a, b) (ra, rb))
    (Graph.edges as_graph);
  { as_graph; internals; borders }

let hub_as inet =
  let best = ref 0 in
  for v = 1 to Graph.n_nodes inet.as_graph - 1 do
    if Graph.degree inet.as_graph v > Graph.degree inet.as_graph !best then
      best := v
  done;
  !best

let border_pair inet a b =
  if a < b then Hashtbl.find inet.borders (a, b)
  else
    let rb, ra = Hashtbl.find inet.borders (b, a) in
    (ra, rb)

(* Intra-domain AS-level link from router [u] to router [v] of AS [a]:
   factors are the router-level edges of the internal shortest path, which
   intra links of the same AS share. *)
let intra_link b inet rng ~as_id ~from_r ~to_r =
  let key = Printf.sprintf "intra:%d:%d->%d" as_id from_r to_r in
  Overlay.Builder.link b ~owner:as_id ~key ~kind:Overlay.Intra
    ~factors:(fun () ->
      match
        Graph.shortest_path ~rng inet.internals.(as_id) ~src:from_r
          ~dst:to_r
      with
      | None | Some [ _ ] ->
          invalid_arg "expand_route: broken internal topology"
      | Some nodes ->
          let rec edges = function
            | x :: (y :: _ as rest) ->
                let lo = min x y and hi = max x y in
                Overlay.Builder.factor b ~owner:as_id
                  ~key:(Printf.sprintf "redge:%d-%d" lo hi)
                :: edges rest
            | _ -> []
          in
          Array.of_list (edges nodes))

let inter_link b ~from_as ~to_as =
  let key = Printf.sprintf "inter:%d->%d" from_as to_as in
  (* Owned by the downstream AS; one private factor per direction so that
     correlation sets never straddle AS boundaries. *)
  Overlay.Builder.link b ~owner:to_as ~key ~kind:Overlay.Inter
    ~factors:(fun () ->
      [| Overlay.Builder.factor b ~owner:to_as ~key:("x" ^ key) |])

let expand_route b inet rng ~vantage_router ~dest_router ~as_route =
  match as_route with
  | [] -> None
  | [ only_as ] ->
      if vantage_router = dest_router then None
      else
        Some
          [|
            intra_link b inet rng ~as_id:only_as ~from_r:vantage_router
              ~to_r:dest_router;
          |]
  | first :: _ ->
      let acc = ref [] in
      let cur = ref vantage_router in
      let rec walk = function
        | a :: (next :: _ as rest) ->
            let exit_r, entry_r = border_pair inet a next in
            if !cur <> exit_r then
              acc :=
                intra_link b inet rng ~as_id:a ~from_r:!cur ~to_r:exit_r
                :: !acc;
            acc := inter_link b ~from_as:a ~to_as:next :: !acc;
            cur := entry_r;
            walk rest
        | [ last ] ->
            if !cur <> dest_router then
              acc :=
                intra_link b inet rng ~as_id:last ~from_r:!cur
                  ~to_r:dest_router
                :: !acc
        | [] -> ()
      in
      ignore first;
      walk as_route;
      match !acc with
      | [] -> None
      | links -> Some (Array.of_list (List.rev links))
