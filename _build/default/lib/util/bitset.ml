type t = { len : int; words : int array }

let bits_per_word = Sys.int_size

let create len =
  if len < 0 then invalid_arg "Bitset.create: negative capacity";
  { len; words = Array.make ((len + bits_per_word - 1) / bits_per_word) 0 }

let length t = t.len

let check t i =
  if i < 0 || i >= t.len then invalid_arg "Bitset: index out of range"

let set t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let clear t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl b)

let assign t i b = if b then set t i else clear t i

let get t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) land (1 lsl b) <> 0

(* Bits beyond [len] in the last word must stay zero so that [count],
   [equal] and friends can work word-wise. [mask_tail] re-establishes that
   invariant after whole-word operations such as [set_all]. *)
let mask_tail t =
  let r = t.len mod bits_per_word in
  if r <> 0 && Array.length t.words > 0 then begin
    let last = Array.length t.words - 1 in
    t.words.(last) <- t.words.(last) land ((1 lsl r) - 1)
  end

let set_all t =
  Array.fill t.words 0 (Array.length t.words) (-1);
  mask_tail t

let clear_all t = Array.fill t.words 0 (Array.length t.words) 0
let copy t = { len = t.len; words = Array.copy t.words }

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let count t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words
let is_empty t = Array.for_all (fun w -> w = 0) t.words

let equal a b =
  a.len = b.len
  && Array.length a.words = Array.length b.words
  &&
  let rec go i =
    i >= Array.length a.words || (a.words.(i) = b.words.(i) && go (i + 1))
  in
  go 0

let check_same a b =
  if a.len <> b.len then invalid_arg "Bitset: capacity mismatch"

let inter_into ~into src =
  check_same into src;
  for i = 0 to Array.length into.words - 1 do
    into.words.(i) <- into.words.(i) land src.words.(i)
  done

let union_into ~into src =
  check_same into src;
  for i = 0 to Array.length into.words - 1 do
    into.words.(i) <- into.words.(i) lor src.words.(i)
  done

let diff_into ~into src =
  check_same into src;
  for i = 0 to Array.length into.words - 1 do
    into.words.(i) <- into.words.(i) land lnot src.words.(i)
  done

let inter a b =
  let r = copy a in
  inter_into ~into:r b;
  r

let union a b =
  let r = copy a in
  union_into ~into:r b;
  r

let diff a b =
  let r = copy a in
  diff_into ~into:r b;
  r

let count_inter a b =
  check_same a b;
  let acc = ref 0 in
  for i = 0 to Array.length a.words - 1 do
    acc := !acc + popcount (a.words.(i) land b.words.(i))
  done;
  !acc

let disjoint a b =
  check_same a b;
  let rec go i =
    i >= Array.length a.words
    || (a.words.(i) land b.words.(i) = 0 && go (i + 1))
  in
  go 0

let subset a b =
  check_same a b;
  let rec go i =
    i >= Array.length a.words
    || (a.words.(i) land lnot b.words.(i) = 0 && go (i + 1))
  in
  go 0

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = t.words.(w) in
    if word <> 0 then
      for b = 0 to bits_per_word - 1 do
        if word land (1 lsl b) <> 0 then f ((w * bits_per_word) + b)
      done
  done

let fold f init t =
  let acc = ref init in
  iter (fun i -> acc := f !acc i) t;
  !acc

let to_list t = List.rev (fold (fun acc i -> i :: acc) [] t)

let of_list n l =
  let t = create n in
  List.iter (set t) l;
  t

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Format.pp_print_int)
    (to_list t)
