type t = { state : Random.State.t; seed : int }

let create seed = { state = Random.State.make [| seed; 0x746f6d6f |]; seed }

let split t ~label =
  let h = Hashtbl.hash (t.seed, label) in
  (* Mix the label hash with the parent seed through a second hash round so
     that children of adjacent seeds do not share low bits. *)
  let mixed = Hashtbl.hash (h, t.seed lxor 0x9e3779b9) in
  create ((h * 65599) lxor mixed)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  Random.State.int t.state bound

let float t bound = Random.State.float t.state bound

let uniform t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.uniform: hi < lo";
  lo +. Random.State.float t.state (hi -. lo)

let bool t ~p =
  if p <= 0. then false
  else if p >= 1. then true
  else Random.State.float t.state 1.0 < p

let exponential t ~rate =
  if rate <= 0. then invalid_arg "Rng.exponential: non-positive rate";
  let u = 1.0 -. Random.State.float t.state 1.0 in
  -.log u /. rate

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int t.state (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(Random.State.int t.state (Array.length a))

let sample t a k =
  let n = Array.length a in
  if k < 0 || k > n then invalid_arg "Rng.sample: bad sample size";
  let idx = Array.init n (fun i -> i) in
  (* Partial Fisher-Yates: only the first [k] positions need settling. *)
  for i = 0 to k - 1 do
    let j = i + Random.State.int t.state (n - i) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  Array.init k (fun i -> a.(idx.(i)))

let pick_weighted t weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Rng.pick_weighted: weights sum to zero";
  let x = Random.State.float t.state total in
  let rec go i acc =
    if i = Array.length weights - 1 then i
    else
      let acc = acc +. weights.(i) in
      if x < acc then i else go (i + 1) acc
  in
  go 0 0.0
