lib/util/stats.mli:
