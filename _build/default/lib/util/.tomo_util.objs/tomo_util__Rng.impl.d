lib/util/rng.ml: Array Hashtbl Random
