lib/util/combin.ml: Array List
