lib/util/rng.mli:
