lib/util/combin.mli:
