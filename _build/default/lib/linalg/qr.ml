type t = {
  qr : Matrix.t;
  betas : float array;
  perm : int array;
  rank : int;
}

let default_tol = 1e-10

(* Squared Euclidean norm of column [j], rows [from..m-1]. *)
let col_norm2 a ~from j =
  let acc = ref 0.0 in
  for i = from to Matrix.rows a - 1 do
    let x = Matrix.get a i j in
    acc := !acc +. (x *. x)
  done;
  !acc

let decompose ?(tol = default_tol) a0 =
  let a = Matrix.copy a0 in
  let m = Matrix.rows a and n = Matrix.cols a in
  let kmax = min m n in
  let betas = Array.make kmax 0.0 in
  let perm = Array.init n (fun j -> j) in
  let initial_max =
    let mx = ref 0.0 in
    for j = 0 to n - 1 do
      mx := max !mx (sqrt (col_norm2 a ~from:0 j))
    done;
    max !mx 1e-300
  in
  let rank = ref 0 in
  (try
     for k = 0 to kmax - 1 do
       (* Column pivot: the remaining column with the largest trailing
          norm. Recomputed exactly; matrix sizes here are modest. *)
       let best = ref k and best_norm = ref (col_norm2 a ~from:k k) in
       for j = k + 1 to n - 1 do
         let nj = col_norm2 a ~from:k j in
         if nj > !best_norm then begin
           best := j;
           best_norm := nj
         end
       done;
       if sqrt !best_norm <= tol *. initial_max then raise Exit;
       if !best <> k then begin
         Matrix.swap_cols a k !best;
         let tmp = perm.(k) in
         perm.(k) <- perm.(!best);
         perm.(!best) <- tmp
       end;
       (* Householder reflection annihilating column k below the
          diagonal: v = x + sign(x0)·||x||·e1, H = I - beta·v·vᵀ. *)
       let norm = sqrt !best_norm in
       let x0 = Matrix.get a k k in
       let alpha = if x0 >= 0.0 then -.norm else norm in
       let v0 = x0 -. alpha in
       let vnorm2 = !best_norm -. (x0 *. x0) +. (v0 *. v0) in
       if vnorm2 <= 0.0 then begin
         betas.(k) <- 0.0;
         Matrix.set a k k alpha
       end
       else begin
         let beta = 2.0 /. vnorm2 in
         betas.(k) <- beta;
         (* Apply H to the trailing columns.  The Householder vector is
            (v0, a(k+1..m-1, k)). *)
         for j = k + 1 to n - 1 do
           let dot = ref (v0 *. Matrix.get a k j) in
           for i = k + 1 to m - 1 do
             dot := !dot +. (Matrix.get a i k *. Matrix.get a i j)
           done;
           let s = beta *. !dot in
           Matrix.set a k j (Matrix.get a k j -. (s *. v0));
           for i = k + 1 to m - 1 do
             Matrix.set a i j
               (Matrix.get a i j -. (s *. Matrix.get a i k))
           done
         done;
         (* Store alpha on the diagonal and v (scaled so its head is v0)
            below it; v0 itself is kept in a side array via beta scaling.
            We normalize v so that its first component is 1, folding v0
            into beta, which lets us store only the below-diagonal part. *)
         for i = k + 1 to m - 1 do
           Matrix.set a i k (Matrix.get a i k /. v0)
         done;
         betas.(k) <- beta *. v0 *. v0;
         Matrix.set a k k alpha
       end;
       incr rank
     done
   with Exit -> ());
  { qr = a; betas; perm; rank = !rank }

(* Apply the k-th stored reflection to vector [y] (length m). *)
let apply_reflection t k y =
  let m = Matrix.rows t.qr in
  let beta = t.betas.(k) in
  if beta <> 0.0 then begin
    let dot = ref y.(k) in
    for i = k + 1 to m - 1 do
      dot := !dot +. (Matrix.get t.qr i k *. y.(i))
    done;
    let s = beta *. !dot in
    y.(k) <- y.(k) -. s;
    for i = k + 1 to m - 1 do
      y.(i) <- y.(i) -. (s *. Matrix.get t.qr i k)
    done
  end

let apply_qt t b =
  let m = Matrix.rows t.qr in
  if Array.length b <> m then invalid_arg "Qr.apply_qt: length mismatch";
  let y = Array.copy b in
  for k = 0 to t.rank - 1 do
    apply_reflection t k y
  done;
  y

let solve_r t y =
  let n = Matrix.cols t.qr in
  let x = Array.make n 0.0 in
  for i = t.rank - 1 downto 0 do
    let acc = ref y.(i) in
    for j = i + 1 to t.rank - 1 do
      acc := !acc -. (Matrix.get t.qr i j *. x.(j))
    done;
    x.(i) <- !acc /. Matrix.get t.qr i i
  done;
  let out = Array.make n 0.0 in
  for j = 0 to n - 1 do
    out.(t.perm.(j)) <- x.(j)
  done;
  out

let q t =
  let m = Matrix.rows t.qr in
  let out = Matrix.identity m in
  (* Q = H_0 · H_1 · ... applied to each basis vector. *)
  for c = 0 to m - 1 do
    let y = Matrix.col out c in
    for k = t.rank - 1 downto 0 do
      apply_reflection t k y
    done;
    for i = 0 to m - 1 do
      Matrix.set out i c y.(i)
    done
  done;
  out

let r t =
  let m = Matrix.rows t.qr and n = Matrix.cols t.qr in
  Matrix.init m n (fun i j -> if j >= i then Matrix.get t.qr i j else 0.0)
