(** Householder QR factorization with column pivoting.

    [A · P = Q · R] where [P] is a column permutation, [Q] orthogonal and
    [R] upper trapezoidal.  Column pivoting makes the factorization
    rank-revealing, which the least-squares driver uses to solve
    rank-deficient tomography systems: free variables are set to zero and
    only the well-determined part of the solution is trusted. *)

type t = {
  qr : Matrix.t;
      (** packed factors: [R] in the upper triangle, Householder vectors
          below the diagonal *)
  betas : float array;  (** Householder scalars, one per reflection *)
  perm : int array;  (** [perm.(k)] is the original index of column [k] *)
  rank : int;  (** numerical rank at the decomposition tolerance *)
}

(** [decompose ?tol a] factorizes [a].  [tol] (default [1e-10]) is the
    relative threshold under which a remaining column is considered
    zero. *)
val decompose : ?tol:float -> Matrix.t -> t

(** [apply_qt t b] overwrites nothing; returns [Qᵀ · b] as a fresh array.
    @raise Invalid_argument if [b] does not match the row count. *)
val apply_qt : t -> float array -> float array

(** [solve_r t y] back-substitutes [R(0..rank-1, 0..rank-1) · x = y(0..rank-1)],
    zero-fills free variables, and undoes the column permutation,
    returning a full-length solution vector. *)
val solve_r : t -> float array -> float array

(** [q t] materializes the orthogonal factor as an [m × m] matrix
    (test/debug use). *)
val q : t -> Matrix.t

(** [r t] materializes the upper-trapezoidal factor as an [m × n] matrix
    (test/debug use). *)
val r : t -> Matrix.t
