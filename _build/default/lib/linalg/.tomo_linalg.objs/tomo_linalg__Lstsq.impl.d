lib/linalg/lstsq.ml: Array Matrix Qr
