lib/linalg/qr.ml: Array Matrix
