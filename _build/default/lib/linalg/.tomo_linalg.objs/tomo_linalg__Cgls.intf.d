lib/linalg/cgls.mli:
