lib/linalg/svd.mli: Matrix
