lib/linalg/gauss.mli: Matrix
