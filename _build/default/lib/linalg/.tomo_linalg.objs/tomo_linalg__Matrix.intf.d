lib/linalg/matrix.mli: Format
