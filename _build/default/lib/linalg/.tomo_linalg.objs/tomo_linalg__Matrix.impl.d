lib/linalg/matrix.ml: Array Format
