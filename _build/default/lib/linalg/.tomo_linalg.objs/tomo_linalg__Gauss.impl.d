lib/linalg/gauss.ml: Array List Matrix
