lib/linalg/qr.mli: Matrix
