lib/linalg/nullspace.mli: Matrix
