lib/linalg/nullspace.ml: Array Gauss List Matrix
