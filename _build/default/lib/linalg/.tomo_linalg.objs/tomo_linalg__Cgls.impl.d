lib/linalg/cgls.ml: Array
