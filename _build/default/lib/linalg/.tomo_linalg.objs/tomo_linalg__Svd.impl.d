lib/linalg/svd.ml: Array Matrix
