lib/linalg/lstsq.mli: Matrix
