(** Least-squares solver for (possibly rank-deficient) linear systems.

    Given [A · x ≈ b], returns the basic least-squares solution computed
    from a column-pivoted QR factorization: free variables (beyond the
    numerical rank) are set to zero.  Coordinates of [x] that are
    identifiable — i.e. constant over the whole set of least-squares
    minimizers — are the ones the tomography engine reports; use
    {!Nullspace} to decide identifiability. *)

type result = {
  solution : float array;
  rank : int;
  residual_norm : float;  (** ‖A·x − b‖₂ of the returned solution *)
}

(** [solve ?tol a b] computes the basic least-squares solution.
    @raise Invalid_argument if [Array.length b <> Matrix.rows a]. *)
val solve : ?tol:float -> Matrix.t -> float array -> result
