(** Singular value decomposition by one-sided Jacobi rotations.

    The paper's Algorithm 1 (line 7) computes the initial null-space
    basis "using standard techniques, like singular value decomposition
    or QR factorization"; this module provides the SVD route, used by
    tests as an independent oracle for ranks and null spaces and
    available to callers who want singular values (e.g. to inspect the
    conditioning of a tomography system).

    One-sided Jacobi orthogonalizes the columns of [A] by repeated plane
    rotations: on convergence [A·V = U·Σ] with [V] orthogonal, [Σ]
    diagonal with non-negative entries, and the non-zero columns of
    [U·Σ] orthogonal.  Accurate for small-to-medium dense matrices,
    which is all the oracle role requires. *)

type t = {
  u : Matrix.t;  (** [m × n], orthonormal columns where [sigma > 0] *)
  sigma : float array;  (** [n] singular values, descending *)
  v : Matrix.t;  (** [n × n], orthogonal *)
}

(** [decompose ?eps ?max_sweeps a] factorizes [a] ([m × n] with
    [m >= n]; transpose first otherwise).  [eps] (default [1e-12])
    bounds the off-diagonal mass at convergence; [max_sweeps] (default
    [60]) bounds the Jacobi sweeps.
    @raise Invalid_argument if [m < n]. *)
val decompose : ?eps:float -> ?max_sweeps:int -> Matrix.t -> t

(** [reconstruct t] is [U · diag(sigma) · Vᵀ] (testing aid). *)
val reconstruct : t -> Matrix.t

(** [rank ?tol t] counts singular values above [tol · max sigma]
    (default [tol = 1e-8]). *)
val rank : ?tol:float -> t -> int

(** [nullspace_basis ?tol t] is the orthonormal null-space basis of the
    decomposed matrix: the columns of [V] whose singular values fall at
    or below the tolerance, as an [n × (n − rank)] matrix. *)
val nullspace_basis : ?tol:float -> t -> Matrix.t

(** [condition t] is [max sigma / min positive sigma] ([infinity] when
    rank-deficient with rank < n... i.e. some sigma is exactly 0). *)
val condition : t -> float
