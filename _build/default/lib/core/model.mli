(** The network as tomography algorithms see it (paper §2).

    A model is the known side of the inverse problem: the set of links
    [E*], the set of paths [P*] with their link incidence, and the
    correlation sets [C*] (one per AS — Assumption 5).  Everything hidden
    (congestion states, probabilities) lives elsewhere.

    The module also provides the paper's coverage functions:
    [Paths(E)] — paths traversing at least one link of [E] — and
    [Links(P)] — links traversed by at least one path of [P] (§5.2). *)

type t = private {
  n_links : int;
  n_paths : int;
  path_links : Tomo_util.Bitset.t array;
      (** per path: set of links it traverses *)
  link_paths : Tomo_util.Bitset.t array;
      (** per link: set of paths traversing it *)
  corr_sets : int array array;
      (** links grouped by correlation set, each sorted *)
  corr_of_link : int array;  (** link → index into [corr_sets] *)
}

(** [make ~n_links ~paths ~corr_sets] builds a model.  [paths] gives the
    links of each path; [corr_sets] must partition [0 .. n_links-1].
    @raise Invalid_argument on out-of-range links, empty or duplicate-link
    paths, or a non-partition. *)
val make :
  n_links:int -> paths:int array array -> corr_sets:int array array -> t

(** [paths_of_links t links] is the paper's [Paths(E)]: the set of paths
    (as a bit set) traversing at least one link in [links]. *)
val paths_of_links : t -> int array -> Tomo_util.Bitset.t

(** [links_of_paths t paths] is the paper's [Links(P)]: the set of links
    (as a bit set) traversed by at least one path in [paths]. *)
val links_of_paths : t -> int array -> Tomo_util.Bitset.t

(** [corr_set_links t c] is the (sorted) links of correlation set [c]. *)
val corr_set_links : t -> int -> int array

val n_corr_sets : t -> int

(** [identifiability t] checks the paper's Condition 1: no two links are
    traversed by exactly the same set of paths.  Returns the offending
    pair if the condition fails. *)
val identifiability : t -> (int * int) option
