module Bitset = Tomo_util.Bitset

let write ppf obs =
  let n = Observations.n_paths obs in
  let t = Observations.t_intervals obs in
  Format.fprintf ppf "tomo-observations v1@.";
  Format.fprintf ppf "paths %d intervals %d@." n t;
  for p = 0 to n - 1 do
    let buf = Bytes.make t '0' in
    for i = 0 to t - 1 do
      if Observations.good_in_interval obs ~path:p ~interval:i then
        Bytes.set buf i '1'
    done;
    Format.fprintf ppf "row %d %s@." p (Bytes.to_string buf)
  done

let to_string obs =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  write ppf obs;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let fail line fmt =
    Format.kasprintf
      (fun msg -> failwith (Printf.sprintf "%s: %s" line msg))
      fmt
  in
  let words l = String.split_on_char ' ' l |> List.filter (( <> ) "") in
  let int_of l w =
    match int_of_string_opt w with
    | Some v -> v
    | None -> fail l "expected integer, got %S" w
  in
  match lines with
  | header :: rest when header = "tomo-observations v1" ->
      let n_paths = ref 0 and t_intervals = ref 0 in
      let rows = ref [] in
      List.iter
        (fun line ->
          match words line with
          | [ "paths"; n; "intervals"; t ] ->
              n_paths := int_of line n;
              t_intervals := int_of line t
          | [ "row"; id; bits ] ->
              if String.length bits <> !t_intervals then
                fail line "expected %d status characters, got %d"
                  !t_intervals (String.length bits);
              let b = Bitset.create !t_intervals in
              String.iteri
                (fun i c ->
                  match c with
                  | '1' -> Bitset.set b i
                  | '0' -> ()
                  | c -> fail line "bad status character %C" c)
                bits;
              rows := (int_of line id, b) :: !rows
          | _ -> fail line "unrecognized line")
        rest;
      if List.length !rows <> !n_paths then
        failwith
          (Printf.sprintf "expected %d rows, found %d" !n_paths
             (List.length !rows));
      let path_good = Array.make !n_paths (Bitset.create 1) in
      List.iter
        (fun (id, b) ->
          if id < 0 || id >= !n_paths then
            failwith (Printf.sprintf "row id %d out of range" id);
          path_good.(id) <- b)
        !rows;
      Observations.make ~t_intervals:!t_intervals ~path_good
  | header :: _ -> failwith ("unknown observations format: " ^ header)
  | [] -> failwith "empty observations file"

let save path obs =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let ppf = Format.formatter_of_out_channel oc in
      write ppf obs;
      Format.pp_print_flush ppf ())

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (In_channel.input_all ic))
