(** Path observations over [T] intervals and the empirical probability
    estimates the equation systems are built from.

    The observable input to every algorithm in the paper is, per interval
    [t], which paths were good and which congested ([Y_p(t)],
    Assumption 2).  From those, Probability Computation needs empirical
    estimates of [P(∩_{p ∈ P} Y_p = 0)] — the probability that all paths
    of a set were simultaneously good — which it takes logs of to get
    linear equations (Eq. 1, footnote 3).

    Frequencies are smoothed with an add-half (Krichevsky–Trofimov) rule,
    [(count + 1/2) / (T + 1)], so the logarithm is defined even for path
    sets never observed jointly good. *)

type t

(** [make ~t_intervals ~path_good] wraps per-path status rows: bit [t] of
    [path_good.(p)] must be set iff path [p] was good during interval
    [t].  @raise Invalid_argument if a row has the wrong capacity or
    there are no paths/intervals. *)
val make : t_intervals:int -> path_good:Tomo_util.Bitset.t array -> t

val t_intervals : t -> int
val n_paths : t -> int

(** [good_in_interval t ~path ~interval]: status of one cell. *)
val good_in_interval : t -> path:int -> interval:int -> bool

(** [all_good_count t paths] is the number of intervals in which every
    path in [paths] was good.  [all_good_count t [||]] = [t_intervals]. *)
val all_good_count : t -> int array -> int

(** [log_all_good_prob t paths] is [log ((count + 1/2) / (T + 1))] where
    [count = all_good_count t paths]. *)
val log_all_good_prob : t -> int array -> float

(** [good_frac t ~path] is the unsmoothed fraction of intervals in which
    the path was good. *)
val good_frac : t -> path:int -> float

(** [always_good t ~path] is [true] iff the path was good in every
    interval — such paths certify all their links good (Separability). *)
val always_good : t -> path:int -> bool

(** [congested_paths_at t ~interval] is the set of paths congested during
    one interval (the Boolean-Inference input [P^c(t)]). *)
val congested_paths_at : t -> interval:int -> Tomo_util.Bitset.t

(** [good_paths_at t ~interval] is its complement. *)
val good_paths_at : t -> interval:int -> Tomo_util.Bitset.t

(** [resample t rng] draws an interval bootstrap replicate: [T] intervals
    sampled from [t] with replacement (iid resampling is consistent with
    the paper's model of intervals as iid draws of the congestion
    state).  Used by {!Confidence} to put error bars on estimated
    probabilities. *)
val resample : t -> Tomo_util.Rng.t -> t
