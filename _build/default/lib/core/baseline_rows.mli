(** Path-set pools for the baseline Probability Computation algorithms.

    Independence [11] and Correlation-heuristic [9] do not select a
    minimal equation system the way Algorithm 1 does; they form equations
    for a large fixed pool of path sets — every single path plus pairs of
    intersecting paths (a pair of link-disjoint paths is linearly
    redundant: its equation is the sum of the two single-path equations).
    This is the "significantly larger number of equations" the paper
    contrasts with Correlation-complete in §5.4. *)

(** [pools model ~effective ~max_pairs] returns the path sets: all single
    paths that traverse at least one effective link, followed by

    - pairs of paths sharing an effective link (capped per link), and
    - pairs of paths whose links meet the same correlation set (capped
      per link pair) — these are the equations that are *wrong* under
      the Independence assumption when the links are actually
      correlated, the paper's §3.1 failure mechanism for CLINK.

    Deterministic and globally capped at [max_pairs] pairs. *)
val pools :
  Model.t -> effective:Tomo_util.Bitset.t -> max_pairs:int ->
  int array array
