(** The Independence algorithm [11] — the Probability Computation step of
    CLINK / Bayesian-Independence (paper §2, §3.1, §5.4 "Independence").

    Under Assumption 4 (all links independent), the unknowns are the
    per-link log good-probabilities and the equation for a path set [P]
    is [Σ_{e ∈ Links(P)} z_e = log P(all P good)].  Equations are formed
    for every single path and every intersecting pair of paths
    ({!Baseline_rows}); the system is solved by least squares.

    Its characteristic failure (paper §3.1): when links are correlated,
    [P(X_i = 0, X_j = 0) ≠ P(X_i = 0) · P(X_j = 0)], so equations mixing
    correlated links are simply wrong, and the recovered marginals drift
    — the paper's "No Independence" scenario. *)

type config = { max_pairs : int }

val default_config : config

(** [compute ?config model obs] estimates every link's congestion
    probability. *)
val compute : ?config:config -> Model.t -> Observations.t -> Pc_result.t
