module Bitset = Tomo_util.Bitset

let detection_rate ~actual ~inferred =
  let n_actual = Bitset.count actual in
  if n_actual = 0 then None
  else
    Some
      (float_of_int (Bitset.count_inter actual inferred)
      /. float_of_int n_actual)

let false_positive_rate ~actual ~inferred =
  let n_inferred = Bitset.count inferred in
  if n_inferred = 0 then None
  else
    let false_pos = Bitset.count (Bitset.diff inferred actual) in
    Some (float_of_int false_pos /. float_of_int n_inferred)

let mean_opt xs =
  let defined = List.filter_map Fun.id xs in
  match defined with
  | [] -> None
  | _ ->
      Some
        (List.fold_left ( +. ) 0.0 defined
        /. float_of_int (List.length defined))

let abs_errors ~truth ~estimate ~over =
  Array.of_list
    (List.map (fun e -> abs_float (truth.(e) -. estimate.(e))) over)

let mean_abs_error ~truth ~estimate ~over =
  if over = [] then invalid_arg "Metrics.mean_abs_error: empty link set";
  Tomo_util.Stats.mean (abs_errors ~truth ~estimate ~over)
