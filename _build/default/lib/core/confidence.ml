module Rng = Tomo_util.Rng
module Stats = Tomo_util.Stats

type ci = { point : float; lo : float; hi : float }

let validate ~resamples ~level =
  if resamples < 2 then invalid_arg "Confidence: need >= 2 resamples";
  if level <= 0.0 || level >= 1.0 then
    invalid_arg "Confidence: level outside (0,1)"

let replicate_engines engine ~resamples ~rng =
  List.init resamples (fun _ ->
      let obs' = Observations.resample engine.Prob_engine.obs rng in
      Prob_engine.solve engine.Prob_engine.selection obs')

let percentile samples ~level =
  let alpha = (1.0 -. level) /. 2.0 in
  (Stats.quantile samples alpha, Stats.quantile samples (1.0 -. alpha))

let link_marginal_cis engine ~resamples ~level ~rng =
  validate ~resamples ~level;
  let replicates = replicate_engines engine ~resamples ~rng in
  let model = engine.Prob_engine.selection.Algorithm1.model in
  Array.init model.Model.n_links (fun e ->
      let point = Prob_engine.link_marginal engine e in
      let samples =
        Array.of_list
          (List.map (fun rep -> Prob_engine.link_marginal rep e) replicates)
      in
      let lo, hi = percentile samples ~level in
      { point; lo; hi })

let subset_good_prob_ci engine ~subset ~resamples ~level ~rng =
  validate ~resamples ~level;
  match Prob_engine.good_prob_est engine subset with
  | None -> None
  | Some point ->
      let replicates = replicate_engines engine ~resamples ~rng in
      let samples =
        List.filter_map
          (fun rep -> Prob_engine.good_prob_est rep subset)
          replicates
      in
      if samples = [] then None
      else
        let lo, hi = percentile (Array.of_list samples) ~level in
        Some { point; lo; hi }
