module Bitset = Tomo_util.Bitset

let infer model ~congested_paths ~good_paths =
  let n_links = model.Model.n_links in
  let good_links = Model.links_of_paths model
      (Array.of_list (Bitset.to_list good_paths))
  in
  (* Candidates: links on some congested path that are not certified
     good. *)
  let candidates = ref [] in
  for e = 0 to n_links - 1 do
    if
      (not (Bitset.get good_links e))
      && not (Bitset.disjoint model.Model.link_paths.(e) congested_paths)
    then candidates := e :: !candidates
  done;
  let candidates = Array.of_list (List.rev !candidates) in
  let uncovered = Bitset.copy congested_paths in
  let solution = Bitset.create n_links in
  let continue_ = ref true in
  while !continue_ && not (Bitset.is_empty uncovered) do
    (* Greedy choice: the candidate covering the most uncovered congested
       paths; ties go to the lower link id (stable order). *)
    let best = ref (-1) and best_cover = ref 0 in
    Array.iter
      (fun e ->
        if not (Bitset.get solution e) then begin
          let cover = Bitset.count_inter model.Model.link_paths.(e) uncovered in
          if cover > !best_cover then begin
            best := e;
            best_cover := cover
          end
        end)
      candidates;
    if !best < 0 then continue_ := false
    else begin
      Bitset.set solution !best;
      Bitset.diff_into ~into:uncovered model.Model.link_paths.(!best)
    end
  done;
  solution
