(** Correlation-complete — the paper's contribution (§5): Probability
    Computation under the Correlation Sets assumption, via Algorithm 1
    (path-set selection) and Algorithm 2 (incremental null-space
    maintenance).

    Compared to the baselines it (paper §4):
    - assumes only Separability, E2E Monitoring and Correlation Sets;
    - solves no NP-complete problem (it never infers per-interval states);
    - never approximates a random variable by its expected value — the
      output *is* the long-run frequency;
    - forms the minimum number of equations, which keeps sparse-topology
      noise down;
    - computes a configurable subset of the computable probabilities
      (subset size cap) to control complexity. *)

(** [compute ?config model obs] runs Algorithm 1 and solves the system.
    Returns the per-link summary and the full engine, which additionally
    answers subset good/congestion probability queries (Figure 4(d)). *)
val compute :
  ?config:Algorithm1.config ->
  Model.t ->
  Observations.t ->
  Pc_result.t * Prob_engine.t
