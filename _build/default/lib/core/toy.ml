module Bitset = Tomo_util.Bitset

let e1 = 0
let e2 = 1
let e3 = 2
let e4 = 3
let p1 = 0
let p2 = 1
let p3 = 2

let paths = [| [| e1; e2 |]; [| e1; e3 |]; [| e4; e3 |] |]

let case1 () =
  Model.make ~n_links:4 ~paths
    ~corr_sets:[| [| e1 |]; [| e2; e3 |]; [| e4 |] |]

let case2 () =
  Model.make ~n_links:4 ~paths ~corr_sets:[| [| e1; e4 |]; [| e2; e3 |] |]

let observations ~interval_states =
  let t_intervals = Array.length interval_states in
  if t_intervals = 0 then invalid_arg "Toy.observations: no intervals";
  let path_good =
    Array.map
      (fun links ->
        let b = Bitset.create t_intervals in
        Array.iteri
          (fun t congested ->
            let path_congested =
              List.exists (fun e -> Array.exists (fun l -> l = e) links)
                congested
            in
            if not path_congested then Bitset.set b t)
          interval_states;
        b)
      paths
  in
  Observations.make ~t_intervals ~path_good
