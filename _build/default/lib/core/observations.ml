module Bitset = Tomo_util.Bitset

type t = {
  t_intervals : int;
  path_good : Bitset.t array;
  scratch : Bitset.t;  (* reused by all_good_count *)
}

let make ~t_intervals ~path_good =
  if t_intervals <= 0 then invalid_arg "Observations.make: no intervals";
  if Array.length path_good = 0 then
    invalid_arg "Observations.make: no paths";
  Array.iter
    (fun b ->
      if Bitset.length b <> t_intervals then
        invalid_arg "Observations.make: status row has wrong capacity")
    path_good;
  { t_intervals; path_good; scratch = Bitset.create t_intervals }

let t_intervals t = t.t_intervals
let n_paths t = Array.length t.path_good

let check_path t p =
  if p < 0 || p >= n_paths t then
    invalid_arg "Observations: path out of range"

let good_in_interval t ~path ~interval =
  check_path t path;
  Bitset.get t.path_good.(path) interval

let all_good_count t paths =
  match Array.length paths with
  | 0 -> t.t_intervals
  | 1 ->
      check_path t paths.(0);
      Bitset.count t.path_good.(paths.(0))
  | _ ->
      check_path t paths.(0);
      let acc = t.scratch in
      Bitset.clear_all acc;
      Bitset.union_into ~into:acc t.path_good.(paths.(0));
      Array.iter
        (fun p ->
          check_path t p;
          Bitset.inter_into ~into:acc t.path_good.(p))
        paths;
      Bitset.count acc

let log_all_good_prob t paths =
  let count = all_good_count t paths in
  log
    ((float_of_int count +. 0.5) /. (float_of_int t.t_intervals +. 1.0))

let good_frac t ~path =
  check_path t path;
  float_of_int (Bitset.count t.path_good.(path))
  /. float_of_int t.t_intervals

let always_good t ~path =
  check_path t path;
  Bitset.count t.path_good.(path) = t.t_intervals

let good_paths_at t ~interval =
  if interval < 0 || interval >= t.t_intervals then
    invalid_arg "Observations: interval out of range";
  let b = Bitset.create (n_paths t) in
  Array.iteri
    (fun p row -> if Bitset.get row interval then Bitset.set b p)
    t.path_good;
  b

let congested_paths_at t ~interval =
  let good = good_paths_at t ~interval in
  let b = Bitset.create (n_paths t) in
  Bitset.set_all b;
  Bitset.diff_into ~into:b good;
  b

let resample t rng =
  let draw =
    Array.init t.t_intervals (fun _ -> Tomo_util.Rng.int rng t.t_intervals)
  in
  let path_good =
    Array.map
      (fun row ->
        let fresh = Bitset.create t.t_intervals in
        Array.iteri
          (fun dst src -> if Bitset.get row src then Bitset.set fresh dst)
          draw;
        fresh)
      t.path_good
  in
  make ~t_intervals:t.t_intervals ~path_good
