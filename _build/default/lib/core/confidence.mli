(** Bootstrap confidence intervals for estimated probabilities.

    The paper reports point estimates; a practical monitoring tool also
    needs error bars — an operator deciding whether to confront a peer
    over an SLA should know whether "congested 12% of the time" could be
    sampling noise.  We use the interval bootstrap: resample the [T]
    observation intervals with replacement, re-solve the *same* selected
    equation system (the structural selection is held fixed — a
    conditional bootstrap), and read percentile intervals off the
    replicate distribution. *)

type ci = {
  point : float;  (** estimate on the original observations *)
  lo : float;
  hi : float;
}

(** [link_marginal_cis engine ~resamples ~level ~rng] computes, for every
    link, a [level] (e.g. [0.95]) percentile bootstrap interval around
    the estimated congestion probability.  [resamples] replicates are
    solved (50–200 is typical).
    @raise Invalid_argument if [resamples < 2] or [level] outside
    (0, 1). *)
val link_marginal_cis :
  Prob_engine.t ->
  resamples:int ->
  level:float ->
  rng:Tomo_util.Rng.t ->
  ci array

(** [subset_good_prob_cis engine ~subset ~resamples ~level ~rng] is the
    same for one correlation subset's good probability; [None] if the
    subset is not a registered variable. *)
val subset_good_prob_ci :
  Prob_engine.t ->
  subset:Subsets.t ->
  resamples:int ->
  level:float ->
  rng:Tomo_util.Rng.t ->
  ci option
