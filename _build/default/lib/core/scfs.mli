(** Duffield's tree algorithm — the Smallest Consistent Failure Set
    (reference [8] of the paper, "Network Tomography of Binary Network
    Performance Characteristics").

    The paper's Sparsity baseline is "an adaptation of Duffield's
    inference algorithm for trees to mesh networks"; this module provides
    the original: measurements flow from one root to many leaves over a
    logical tree, each leaf observes its root-to-leaf path, and the
    smallest set of link failures consistent with the observation is

    - a link is inferred congested iff every leaf below it is congested
      and its parent (if any) has at least one good leaf below it,

    i.e. the maximal all-bad subtrees are blamed on their root links.
    SCFS is exact when failures are sparse in the tree sense and — like
    every Boolean method the paper studies — under-counts when a failed
    link's whole sibling subtree fails too.  Useful both as the
    historical baseline and as a fast special case when a measurement
    campaign really is a tree (single vantage point). *)

type t

(** [make ~parent] builds a link tree: [parent.(k)] is the parent link of
    [k] ([None] for links attached to the root).  Leaves are the links
    with no children; each leaf [k] defines one measurement path (the
    links from the root to [k]).
    @raise Invalid_argument on cycles, out-of-range parents, or an empty
    forest. *)
val make : parent:int option array -> t

val n_links : t -> int

(** [leaves t] is the sorted array of leaf links; leaf index [i] in this
    array is path [i]. *)
val leaves : t -> int array

(** [path_links t ~leaf] is the root-to-leaf link sequence of a leaf. *)
val path_links : t -> leaf:int -> int array

(** [to_model t] is the equivalent mesh {!Model} (one path per leaf, one
    correlation set per link), so the paper's mesh algorithms can run on
    tree instances for comparison. *)
val to_model : t -> Model.t

(** [infer t ~congested_paths] is the Smallest Consistent Failure Set
    for one interval's observation ([congested_paths] indexed like
    {!leaves}). *)
val infer : t -> congested_paths:Tomo_util.Bitset.t -> Tomo_util.Bitset.t
