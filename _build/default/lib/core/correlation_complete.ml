let compute ?config model obs =
  let selection = Algorithm1.select ?config model obs in
  let engine = Prob_engine.solve selection obs in
  let n_links = model.Model.n_links in
  let marginals = Array.init n_links (Prob_engine.link_marginal engine) in
  let identifiable =
    Array.init n_links (Prob_engine.link_identifiable engine)
  in
  ( {
      Pc_result.marginals;
      identifiable;
      effective = selection.Algorithm1.effective;
      n_vars = Eqn.n_vars selection.Algorithm1.registry;
      n_rows = Array.length selection.Algorithm1.rows;
    },
    engine )
