module Bitset = Tomo_util.Bitset

type t = {
  parent : int option array;
  children : int list array;
  leaves : int array;  (* sorted; leaf index = path id *)
}

let make ~parent =
  let n = Array.length parent in
  if n = 0 then invalid_arg "Scfs.make: empty forest";
  Array.iter
    (function
      | Some p when p < 0 || p >= n ->
          invalid_arg "Scfs.make: parent out of range"
      | _ -> ())
    parent;
  (* Cycle check: walking up from any link must reach a root within n
     steps. *)
  Array.iteri
    (fun k _ ->
      let rec climb node steps =
        if steps > n then invalid_arg "Scfs.make: cycle in parent relation"
        else
          match parent.(node) with
          | None -> ()
          | Some p -> climb p (steps + 1)
      in
      climb k 0)
    parent;
  let children = Array.make n [] in
  Array.iteri
    (fun k -> function
      | Some p -> children.(p) <- k :: children.(p)
      | None -> ())
    parent;
  let leaves =
    Array.of_list
      (List.filter
         (fun k -> children.(k) = [])
         (List.init n (fun k -> k)))
  in
  { parent; children; leaves }

let n_links t = Array.length t.parent
let leaves t = t.leaves

let path_links t ~leaf =
  if not (Array.exists (fun k -> k = leaf) t.leaves) then
    invalid_arg "Scfs.path_links: not a leaf";
  let rec climb node acc =
    match t.parent.(node) with
    | None -> node :: acc
    | Some p -> climb p (node :: acc)
  in
  Array.of_list (climb leaf [])

let to_model t =
  let paths =
    Array.map (fun leaf -> path_links t ~leaf) t.leaves
  in
  let corr_sets =
    Array.init (n_links t) (fun k -> [| k |])
  in
  Model.make ~n_links:(n_links t) ~paths ~corr_sets

let infer t ~congested_paths =
  let n = n_links t in
  if Bitset.length congested_paths <> Array.length t.leaves then
    invalid_arg "Scfs.infer: observation size mismatch";
  (* all_bad.(k): every leaf in k's subtree is congested. Computed
     bottom-up; leaves read the observation directly. *)
  let all_bad = Array.make n false in
  let rec compute k =
    match t.children.(k) with
    | [] ->
        let idx = ref (-1) in
        Array.iteri (fun i l -> if l = k then idx := i) t.leaves;
        all_bad.(k) <- Bitset.get congested_paths !idx;
        all_bad.(k)
    | kids ->
        (* materialize first: for_all would short-circuit and leave
           sibling subtrees uncomputed *)
        let results = List.map compute kids in
        let bad = List.for_all Fun.id results in
        all_bad.(k) <- bad;
        bad
  in
  Array.iteri
    (fun k -> function None -> ignore (compute k) | Some _ -> ())
    t.parent;
  let inferred = Bitset.create n in
  for k = 0 to n - 1 do
    let parent_all_bad =
      match t.parent.(k) with None -> false | Some p -> all_bad.(p)
    in
    if all_bad.(k) && not parent_all_bad then Bitset.set inferred k
  done;
  inferred
