(** Plain-text serialization of path observations.

    Real deployments collect path statuses continuously; this format lets
    a measurement pipeline hand data to the tomography engine (and lets
    experiments archive what was observed).  Line-oriented, versioned:

    {v
    tomo-observations v1
    paths <n> intervals <t>
    row <path-id> <status-string>      (one per path)
    v}

    The status string has one character per interval, ['1'] = good,
    ['0'] = congested. *)

val write : Format.formatter -> Observations.t -> unit
val to_string : Observations.t -> string

(** [of_string s] parses and validates.
    @raise Failure with a line-anchored message on malformed input. *)
val of_string : string -> Observations.t

val save : string -> Observations.t -> unit
val load : string -> Observations.t
