module Bitset = Tomo_util.Bitset

type t = {
  n_links : int;
  n_paths : int;
  path_links : Bitset.t array;
  link_paths : Bitset.t array;
  corr_sets : int array array;
  corr_of_link : int array;
}

let make ~n_links ~paths ~corr_sets =
  if n_links <= 0 then invalid_arg "Model.make: no links";
  let n_paths = Array.length paths in
  if n_paths = 0 then invalid_arg "Model.make: no paths";
  let path_links =
    Array.map
      (fun links ->
        if Array.length links = 0 then invalid_arg "Model.make: empty path";
        let b = Bitset.create n_links in
        Array.iter
          (fun e ->
            if e < 0 || e >= n_links then
              invalid_arg "Model.make: link out of range";
            if Bitset.get b e then
              invalid_arg "Model.make: path traverses a link twice";
            Bitset.set b e)
          links;
        b)
      paths
  in
  let link_paths = Array.init n_links (fun _ -> Bitset.create n_paths) in
  Array.iteri
    (fun p b -> Bitset.iter (fun e -> Bitset.set link_paths.(e) p) b)
    path_links;
  let corr_of_link = Array.make n_links (-1) in
  Array.iteri
    (fun c links ->
      Array.iter
        (fun e ->
          if e < 0 || e >= n_links then
            invalid_arg "Model.make: correlation set link out of range";
          if corr_of_link.(e) >= 0 then
            invalid_arg "Model.make: link in two correlation sets";
          corr_of_link.(e) <- c)
        links)
    corr_sets;
  if Array.exists (fun c -> c < 0) corr_of_link then
    invalid_arg "Model.make: link missing from correlation sets";
  let corr_sets =
    Array.map
      (fun links ->
        let s = Array.copy links in
        Array.sort compare s;
        s)
      corr_sets
  in
  { n_links; n_paths; path_links; link_paths; corr_sets; corr_of_link }

let paths_of_links t links =
  let acc = Bitset.create t.n_paths in
  Array.iter (fun e -> Bitset.union_into ~into:acc t.link_paths.(e)) links;
  acc

let links_of_paths t paths =
  let acc = Bitset.create t.n_links in
  Array.iter (fun p -> Bitset.union_into ~into:acc t.path_links.(p)) paths;
  acc

let corr_set_links t c = t.corr_sets.(c)
let n_corr_sets t = Array.length t.corr_sets

let identifiability t =
  let tbl = Hashtbl.create t.n_links in
  let result = ref None in
  (try
     for e = 0 to t.n_links - 1 do
       let key =
         String.concat ","
           (List.map string_of_int (Bitset.to_list t.link_paths.(e)))
       in
       match Hashtbl.find_opt tbl key with
       | Some e' ->
           result := Some (e', e);
           raise Exit
       | None -> Hashtbl.add tbl key e
     done
   with Exit -> ());
  !result
