(** The paper's running example: the toy topology of Figure 1.

    Links [E* = {e1, e2, e3, e4}] (ids 0–3 here), paths
    [P* = {p1, p2, p3}] (ids 0–2) with [p1 = (e1, e2)],
    [p2 = (e1, e3)], [p3 = (e4, e3)].

    Case 1: correlation sets [{e1}, {e2, e3}, {e4}].
    Case 2: correlation sets [{e1, e4}, {e2, e3}] — the example where
    Identifiability++ fails: [{e1, e4}] and [{e2, e3}] are traversed by
    the same paths, so their good probabilities cannot be told apart.

    Used by the unit tests to reproduce every worked computation in the
    paper (coverage tables, the Fig. 2(b) equation system, the Case-2
    non-identifiability, the Sparsity counter-example) and by the
    quickstart example. *)

val e1 : int
val e2 : int
val e3 : int
val e4 : int
val p1 : int
val p2 : int
val p3 : int

(** [case1 ()] / [case2 ()] build the model with the respective
    correlation sets. *)
val case1 : unit -> Model.t

val case2 : unit -> Model.t

(** [observations ~t_intervals ~interval_states] builds observations for
    this topology from explicit per-interval congested-link lists, using
    exact Separability (a path is good iff none of its links is listed).
    Handy for scripted tests. *)
val observations : interval_states:int list array -> Observations.t
