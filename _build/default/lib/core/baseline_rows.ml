module Bitset = Tomo_util.Bitset

let pools model ~effective ~max_pairs =
  let singles = ref [] in
  for p = model.Model.n_paths - 1 downto 0 do
    if not (Bitset.disjoint model.Model.path_links.(p) effective) then
      singles := [| p |] :: !singles
  done;
  let seen = Hashtbl.create 1024 in
  let pairs = ref [] and n_pairs = ref 0 in
  let per_link_cap = 300 in
  let add_pair a b =
    let a, b = (min a b, max a b) in
    if a <> b && not (Hashtbl.mem seen (a, b)) then begin
      Hashtbl.add seen (a, b) ();
      pairs := [| a; b |] :: !pairs;
      incr n_pairs;
      true
    end
    else false
  in
  (* Cross pairs over links of the same correlation set: for each pair of
     effective links of one set, a few path pairs that cover one link
     each. *)
  let cross_pairs_per_link_pair = 5 in
  (try
     for c = 0 to Model.n_corr_sets model - 1 do
       let eff_links =
         Array.of_list
           (List.filter (Bitset.get effective)
              (Array.to_list (Model.corr_set_links model c)))
       in
       let n = Array.length eff_links in
       for i = 0 to n - 1 do
         for j = i + 1 to n - 1 do
           let ps_a = Bitset.to_list model.Model.link_paths.(eff_links.(i)) in
           let ps_b = Bitset.to_list model.Model.link_paths.(eff_links.(j)) in
           let added = ref 0 in
           List.iter
             (fun p ->
               List.iter
                 (fun q ->
                   if !added < cross_pairs_per_link_pair && add_pair p q
                   then begin
                     incr added;
                     if !n_pairs >= max_pairs then raise Exit
                   end)
                 ps_b)
             ps_a
         done
       done
     done
   with Exit -> ());
  (try
     for e = 0 to model.Model.n_links - 1 do
       if Bitset.get effective e then begin
         let arr = Array.of_list (Bitset.to_list model.Model.link_paths.(e)) in
         let k = Array.length arr in
         if k >= 2 then begin
           let from_link = ref 0 in
           (try
              for i = 0 to k - 1 do
                for j = i + 1 to k - 1 do
                  if add_pair arr.(i) arr.(j) then begin
                    incr from_link;
                    if !n_pairs >= max_pairs then raise Exit;
                    if !from_link >= per_link_cap then raise Not_found
                  end
                done
              done
            with Not_found -> ())
         end
       end
     done
   with Exit -> ());
  Array.of_list (!singles @ List.rev !pairs)
