module Bitset = Tomo_util.Bitset

let clamp_p p = min (1.0 -. 1e-6) (max 1e-6 p)

(* Links consistent with this interval's observation: on some congested
   path and on no good path. Links with no path at all are unconstrained
   and never inferred. *)
let candidate_links model ~congested_paths ~good_paths =
  let good_links =
    Model.links_of_paths model (Array.of_list (Bitset.to_list good_paths))
  in
  let acc = ref [] in
  for e = model.Model.n_links - 1 downto 0 do
    if
      (not (Bitset.get good_links e))
      && not (Bitset.disjoint model.Model.link_paths.(e) congested_paths)
    then acc := e :: !acc
  done;
  Array.of_list !acc

let infer_independence ?(include_likely = true) model ~marginals
    ~congested_paths ~good_paths =
  let candidates = candidate_links model ~congested_paths ~good_paths in
  let solution = Bitset.create model.Model.n_links in
  let uncovered = Bitset.copy congested_paths in
  (* MAP under independence: a consistent link with p > 1/2 raises the
     posterior whether or not it covers anything new, so CLINK's optimum
     includes it. This is exactly where wrong marginals (correlated
     links mis-learned by the Independence PC step) turn into false
     positives. The correlation-aware variant seeds without this rule
     and lets the joint-probability hill-climb decide instead. *)
  if include_likely then
    Array.iter
      (fun e ->
        if clamp_p marginals.(e) > 0.5 then begin
          Bitset.set solution e;
          Bitset.diff_into ~into:uncovered model.Model.link_paths.(e)
        end)
      candidates;
  (* Greedy weighted cover: cost log((1-p)/p) per link (clamped to a
     small positive value for p >= 1/2, so near-certain links are picked
     first), benefit = newly covered congested paths. *)
  let continue_ = ref true in
  while !continue_ && not (Bitset.is_empty uncovered) do
    let best = ref (-1) and best_ratio = ref neg_infinity in
    Array.iter
      (fun e ->
        if not (Bitset.get solution e) then begin
          let cover =
            Bitset.count_inter model.Model.link_paths.(e) uncovered
          in
          if cover > 0 then begin
            let p = clamp_p marginals.(e) in
            let cost = max 1e-9 (log ((1.0 -. p) /. p)) in
            let ratio = float_of_int cover /. cost in
            if ratio > !best_ratio then begin
              best := e;
              best_ratio := ratio
            end
          end
        end)
      candidates;
    if !best < 0 then continue_ := false
    else begin
      Bitset.set solution !best;
      Bitset.diff_into ~into:uncovered model.Model.link_paths.(!best)
    end
  done;
  (* Prune: drop links made redundant by later picks, most unlikely
     first; each drop strictly improves the likelihood (p < 1/2). *)
  let members = Bitset.to_list solution in
  let by_cost =
    List.sort
      (fun a b -> compare marginals.(a) marginals.(b))
      (List.filter (fun e -> clamp_p marginals.(e) <= 0.5) members)
  in
  List.iter
    (fun e ->
      Bitset.clear solution e;
      (* Still a cover? Every congested path must retain a solution
         link. *)
      let still_covered =
        Bitset.fold
          (fun ok p ->
            ok && not (Bitset.disjoint model.Model.path_links.(p) solution))
          true congested_paths
      in
      if not still_covered then Bitset.set solution e)
    by_cost;
  solution

let effective_of_corr model ~engine c =
  let eff = engine.Prob_engine.selection.Algorithm1.effective in
  Array.of_list
    (List.filter
       (fun e -> Bitset.get eff e)
       (Array.to_list (Model.corr_set_links model c)))

let corr_logprob model ~engine solution c =
  let eff_links = effective_of_corr model ~engine c in
  if Array.length eff_links = 0 then 0.0
  else begin
    let congested, good =
      Array.to_list eff_links
      |> List.partition (fun e -> Bitset.get solution e)
    in
    Prob_engine.pattern_logprob engine ~corr:c
      ~congested:(Array.of_list congested) ~good:(Array.of_list good)
  end

let solution_logprob model ~engine solution =
  let total = ref 0.0 in
  for c = 0 to Model.n_corr_sets model - 1 do
    total := !total +. corr_logprob model ~engine solution c
  done;
  !total

let infer_correlation model ~engine ~congested_paths ~good_paths =
  let marginals =
    Array.init model.Model.n_links (Prob_engine.link_marginal engine)
  in
  let solution =
    infer_independence ~include_likely:false model ~marginals
      ~congested_paths ~good_paths
  in
  let candidates = candidate_links model ~congested_paths ~good_paths in
  (* Hill-climb on the correlation-aware likelihood. Only the moved
     link's correlation set changes, so score deltas are local. *)
  let contrib =
    Array.init (Model.n_corr_sets model) (fun c ->
        corr_logprob model ~engine solution c)
  in
  let covers_without e =
    Bitset.clear solution e;
    let ok =
      Bitset.fold
        (fun ok p ->
          ok && not (Bitset.disjoint model.Model.path_links.(p) solution))
        true congested_paths
    in
    Bitset.set solution e;
    ok
  in
  let improved = ref true and passes = ref 0 in
  while !improved && !passes < 4 do
    improved := false;
    incr passes;
    Array.iter
      (fun e ->
        let c = model.Model.corr_of_link.(e) in
        let was = Bitset.get solution e in
        (* Removals are always on the table; additions only when driven
           by correlation evidence — another link of the same set is
           already blamed — so the independence fallback cannot inflate
           the solution with merely-likely links. *)
        let allowed =
          if was then covers_without e
          else
            Array.exists
              (fun e' -> e' <> e && Bitset.get solution e')
              (Model.corr_set_links model c)
        in
        if allowed then begin
          Bitset.assign solution e (not was);
          let after = corr_logprob model ~engine solution c in
          if after > contrib.(c) +. 1e-12 then begin
            contrib.(c) <- after;
            improved := true
          end
          else Bitset.assign solution e was
        end)
      candidates
  done;
  solution
