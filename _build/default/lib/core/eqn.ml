module Bitset = Tomo_util.Bitset

type registry = {
  by_key : (string, int) Hashtbl.t;
  mutable subsets : Subsets.t option array;  (* dynamic array *)
  mutable count : int;
}

let registry () =
  { by_key = Hashtbl.create 256; subsets = Array.make 64 None; count = 0 }

let n_vars reg = reg.count
let find reg s = Hashtbl.find_opt reg.by_key (Subsets.key s)

let add reg s =
  let k = Subsets.key s in
  match Hashtbl.find_opt reg.by_key k with
  | Some v -> v
  | None ->
      let v = reg.count in
      Hashtbl.add reg.by_key k v;
      if v >= Array.length reg.subsets then begin
        let grown = Array.make (2 * Array.length reg.subsets) None in
        Array.blit reg.subsets 0 grown 0 (Array.length reg.subsets);
        reg.subsets <- grown
      end;
      reg.subsets.(v) <- Some s;
      reg.count <- v + 1;
      v

let subset_of_var reg v =
  if v < 0 || v >= reg.count then
    invalid_arg "Eqn.subset_of_var: unknown variable";
  Option.get reg.subsets.(v)

type row = { paths : int array; vars : int array }

let induced_subsets model ~effective ~links =
  let by_corr = Hashtbl.create 8 in
  let order = ref [] in
  Bitset.iter
    (fun e ->
      if Bitset.get effective e then begin
        let c = model.Model.corr_of_link.(e) in
        match Hashtbl.find_opt by_corr c with
        | Some es -> Hashtbl.replace by_corr c (e :: es)
        | None ->
            Hashtbl.add by_corr c [ e ];
            order := c :: !order
      end)
    links;
  List.rev_map
    (fun c ->
      let es = Array.of_list (List.rev (Hashtbl.find by_corr c)) in
      Subsets.make model ~corr:c es)
    !order

let build_row model ~effective reg ~paths ~lookup =
  let links = Model.links_of_paths model paths in
  let subsets = induced_subsets model ~effective ~links in
  if subsets = [] then None
  else begin
    let rec resolve acc = function
      | [] -> Some (List.rev acc)
      | s :: rest -> (
          match lookup reg s with
          | Some v -> resolve (v :: acc) rest
          | None -> None)
    in
    match resolve [] subsets with
    | None -> None
    | Some vars ->
        let vars = Array.of_list vars in
        Array.sort compare vars;
        Some { paths; vars }
  end

let row model ~effective reg ~paths =
  build_row model ~effective reg ~paths ~lookup:find

let row_grow model ~effective reg ~paths =
  build_row model ~effective reg ~paths ~lookup:(fun reg s ->
      Some (add reg s))

let register_single_path_vars model ~effective reg =
  let before = n_vars reg in
  for p = 0 to model.Model.n_paths - 1 do
    let links = model.Model.path_links.(p) in
    List.iter
      (fun s -> ignore (add reg s))
      (induced_subsets model ~effective ~links)
  done;
  n_vars reg - before
