(** Reconstruction of the Correlation-heuristic [9] (Ghita et al.,
    IMC 2010), the paper's second Figure-4 baseline.

    Like Correlation-complete it respects the Correlation Sets assumption
    (unknowns are correlation-subset good-probabilities, never products
    over correlated links), but instead of selecting a minimal
    independent system it throws the whole baseline equation pool at the
    solver — every single path and every intersecting pair
    ({!Baseline_rows}) — and reads the per-link marginals out of the
    least-squares solution.  On sparse topologies this "significantly
    larger number of equations … introduces more noise when solving the
    system" (paper §5.4), which is exactly the behaviour the figure
    contrasts with Correlation-complete. *)

type config = { max_pairs : int }

val default_config : config

(** [compute ?config model obs] estimates every link's congestion
    probability.  Returns both the per-link summary and the underlying
    engine (for subset-probability queries in tests). *)
val compute :
  ?config:config -> Model.t -> Observations.t -> Pc_result.t * Prob_engine.t
