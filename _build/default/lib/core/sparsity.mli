(** The Sparsity inference algorithm (paper §3: "Tomo" [6], Duffield's
    tree algorithm [8] adapted to mesh networks).

    Given one interval's observation — which paths were congested, which
    good — it infers a small set of congested links:

    - every link on a good path is good (Separability);
    - among the remaining candidates, greedily pick the link that covers
      the most still-uncovered congested paths (ties broken toward the
      lower link id), until every congested path is explained.

    Its characteristic failure (paper §3.1): assuming Homogeneity it
    favours links shared by many congested paths — core links — so with
    congestion concentrated at the network edge it blames cores it
    shouldn't and misses edges it should. *)

(** [infer model ~congested_paths ~good_paths] returns the inferred
    congested links as a bit set.  Congested paths none of whose
    candidate links remain (possible only under noisy measurement, where
    a path may be flagged congested while all its links lie on good
    paths) are left uncovered. *)
val infer :
  Model.t ->
  congested_paths:Tomo_util.Bitset.t ->
  good_paths:Tomo_util.Bitset.t ->
  Tomo_util.Bitset.t
