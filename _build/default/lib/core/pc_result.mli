(** Common result shape of the three Probability Computation algorithms
    compared in the paper's Figure 4: Independence [11],
    Correlation-heuristic [9], and Correlation-complete (§5). *)

type t = {
  marginals : float array;
      (** per link: estimated congestion probability [P(X_e = 1)];
          [0] for links certified good or unobserved *)
  identifiable : bool array;
      (** per link: whether the estimate is uniquely determined by the
          equation system (always-good links count as identifiable) *)
  effective : Tomo_util.Bitset.t;  (** the potentially congested links *)
  n_vars : int;  (** unknowns in the equation system *)
  n_rows : int;  (** equations formed *)
}

(** [potentially_congested t] lists the links Fig. 4 averages errors
    over. *)
val potentially_congested : t -> int list
