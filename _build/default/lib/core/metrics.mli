(** Evaluation metrics (paper §3.2 and §5.4).

    For Boolean Inference, per interval:
    - detection rate — fraction of actually congested links the
      algorithm identified;
    - false-positive rate — fraction of links incorrectly identified as
      congested out of all links the algorithm inferred as congested.

    Both are undefined on degenerate intervals (no congested links / no
    inferred links), which the paper averages over 1000 intervals; we
    return [None] there and average over the defined ones.

    For Probability Computation: mean absolute error between true and
    estimated probabilities over the potentially congested links. *)

(** [detection_rate ~actual ~inferred] — [None] when nothing was actually
    congested. *)
val detection_rate :
  actual:Tomo_util.Bitset.t -> inferred:Tomo_util.Bitset.t -> float option

(** [false_positive_rate ~actual ~inferred] — [None] when nothing was
    inferred. *)
val false_positive_rate :
  actual:Tomo_util.Bitset.t -> inferred:Tomo_util.Bitset.t -> float option

(** [mean_opt xs] averages the defined values; [None] if none are. *)
val mean_opt : float option list -> float option

(** [abs_errors ~truth ~estimate ~over] is [|truth.(e) − estimate.(e)|]
    for each link in [over]. *)
val abs_errors :
  truth:float array -> estimate:float array -> over:int list -> float array

(** [mean_abs_error ~truth ~estimate ~over] averages [abs_errors].
    @raise Invalid_argument when [over] is empty. *)
val mean_abs_error :
  truth:float array -> estimate:float array -> over:int list -> float
