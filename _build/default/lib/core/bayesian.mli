(** Bayesian Boolean Inference (paper §2, §3.1): pose Boolean Inference
    as maximum-likelihood estimation over the solutions consistent with
    one interval's path observations, using probabilities learned by a
    Probability Computation step.

    Consistency means: the solution contains no link of a good path and
    covers every congested path (Separability in both directions).
    Finding the most probable consistent solution is NP-complete [11], so
    both variants use approximations:

    - {b Bayesian-Independence} (CLINK [11]): greedy weighted set cover —
      each candidate link [e] costs [log((1−p_e)/p_e)] (cheap if likely
      congested), pick the candidate minimizing cost per newly covered
      congested path; then prune links made redundant by later picks
      (each removal strictly improves the independence likelihood since
      [p_e < 1/2] in practice).
    - {b Bayesian-Correlation} (the paper's own [10]): same greedy seed,
      then hill-climbing over add/remove/swap moves scored by the
      correlation-aware log-likelihood
      [Σ_C log P(pattern of C)] from {!Prob_engine.pattern_logprob}.

    Its characteristic failures (§3.1) are inherent and intentionally
    reproduced: both variants substitute long-run probabilities for the
    current interval's state (hurts under non-stationarity), and the
    correlation variant additionally needs Identifiability++ to have all
    the probabilities it wants (on sparse topologies it falls back to
    independence approximations for the missing ones). *)

(** [infer_independence model ~marginals ~congested_paths ~good_paths]
    runs the CLINK-style MAP approximation with per-link congestion
    probabilities [marginals].  [include_likely] (default [true])
    includes every consistent link with [p > 1/2] — part of the
    independence MAP optimum, and the conduit through which wrong
    marginals become false positives. *)
val infer_independence :
  ?include_likely:bool ->
  Model.t ->
  marginals:float array ->
  congested_paths:Tomo_util.Bitset.t ->
  good_paths:Tomo_util.Bitset.t ->
  Tomo_util.Bitset.t

(** [infer_correlation model ~engine ~congested_paths ~good_paths] runs
    the correlation-aware MAP approximation on top of a solved
    Probability Computation engine. *)
val infer_correlation :
  Model.t ->
  engine:Prob_engine.t ->
  congested_paths:Tomo_util.Bitset.t ->
  good_paths:Tomo_util.Bitset.t ->
  Tomo_util.Bitset.t

(** [solution_logprob model ~engine solution] is the correlation-aware
    log-probability of a full network state: for each correlation set,
    the probability of the exact pattern (its links in [solution]
    congested, its other effective links good).  Exposed for tests and
    the examples. *)
val solution_logprob :
  Model.t -> engine:Prob_engine.t -> Tomo_util.Bitset.t -> float
