lib/core/observations_io.mli: Format Observations
