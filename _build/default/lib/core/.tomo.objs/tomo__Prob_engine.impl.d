lib/core/prob_engine.ml: Algorithm1 Array Eqn Hashtbl List Model Observations Option Subsets Tomo_linalg Tomo_util
