lib/core/correlation_heuristic.ml: Algorithm1 Array Baseline_rows Eqn List Model Pc_result Prob_engine Subsets Tomo_linalg Tomo_util
