lib/core/model.ml: Array Hashtbl List String Tomo_util
