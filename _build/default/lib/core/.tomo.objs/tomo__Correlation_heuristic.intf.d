lib/core/correlation_heuristic.mli: Model Observations Pc_result Prob_engine
