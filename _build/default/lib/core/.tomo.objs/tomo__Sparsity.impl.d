lib/core/sparsity.ml: Array List Model Tomo_util
