lib/core/correlation_complete.ml: Algorithm1 Array Eqn Model Pc_result Prob_engine
