lib/core/observations_io.ml: Array Buffer Bytes Format Fun In_channel List Observations Printf String Tomo_util
