lib/core/bayesian.mli: Model Prob_engine Tomo_util
