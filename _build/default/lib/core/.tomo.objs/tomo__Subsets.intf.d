lib/core/subsets.mli: Format Model Observations Tomo_util
