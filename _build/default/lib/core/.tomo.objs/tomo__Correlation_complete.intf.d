lib/core/correlation_complete.mli: Algorithm1 Model Observations Pc_result Prob_engine
