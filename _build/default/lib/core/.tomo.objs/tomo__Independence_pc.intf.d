lib/core/independence_pc.mli: Model Observations Pc_result
