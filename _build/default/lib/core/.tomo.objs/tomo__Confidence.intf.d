lib/core/confidence.mli: Prob_engine Subsets Tomo_util
