lib/core/scfs.mli: Model Tomo_util
