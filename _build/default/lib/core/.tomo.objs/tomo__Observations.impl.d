lib/core/observations.ml: Array Tomo_util
