lib/core/observations.mli: Tomo_util
