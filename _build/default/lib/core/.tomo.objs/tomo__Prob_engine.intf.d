lib/core/prob_engine.mli: Algorithm1 Observations Subsets
