lib/core/metrics.ml: Array Fun List Tomo_util
