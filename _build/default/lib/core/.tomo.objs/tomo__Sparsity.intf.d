lib/core/sparsity.mli: Model Tomo_util
