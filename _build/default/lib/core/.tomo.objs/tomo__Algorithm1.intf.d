lib/core/algorithm1.mli: Eqn Model Observations Tomo_linalg Tomo_util
