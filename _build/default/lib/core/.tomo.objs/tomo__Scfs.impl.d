lib/core/scfs.ml: Array Fun List Model Tomo_util
