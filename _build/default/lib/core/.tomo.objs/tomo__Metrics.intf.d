lib/core/metrics.mli: Tomo_util
