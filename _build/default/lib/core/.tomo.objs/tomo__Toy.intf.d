lib/core/toy.mli: Model Observations
