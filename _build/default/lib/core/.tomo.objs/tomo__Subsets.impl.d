lib/core/subsets.ml: Array Format Hashtbl List Model Observations Printf Stdlib String Tomo_util
