lib/core/bayesian.ml: Algorithm1 Array List Model Prob_engine Tomo_util
