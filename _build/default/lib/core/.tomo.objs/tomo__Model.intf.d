lib/core/model.mli: Tomo_util
