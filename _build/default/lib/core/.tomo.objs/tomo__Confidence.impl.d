lib/core/confidence.ml: Algorithm1 Array List Model Observations Prob_engine Tomo_util
