lib/core/toy.ml: Array List Model Observations Tomo_util
