lib/core/pc_result.ml: Tomo_util
