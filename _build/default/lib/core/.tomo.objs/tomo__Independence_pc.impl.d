lib/core/independence_pc.ml: Array Baseline_rows List Model Observations Pc_result Subsets Tomo_linalg Tomo_util
