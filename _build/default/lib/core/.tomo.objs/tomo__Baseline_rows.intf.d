lib/core/baseline_rows.mli: Model Tomo_util
