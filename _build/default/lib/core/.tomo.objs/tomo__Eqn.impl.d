lib/core/eqn.ml: Array Hashtbl List Model Option Subsets Tomo_util
