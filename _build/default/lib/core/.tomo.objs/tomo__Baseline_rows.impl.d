lib/core/baseline_rows.ml: Array Hashtbl List Model Tomo_util
