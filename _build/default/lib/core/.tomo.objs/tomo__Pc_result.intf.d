lib/core/pc_result.mli: Tomo_util
