lib/core/algorithm1.ml: Array Eqn List Logs Model Subsets Tomo_linalg Tomo_util
