lib/core/eqn.mli: Model Subsets Tomo_util
