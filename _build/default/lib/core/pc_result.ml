type t = {
  marginals : float array;
  identifiable : bool array;
  effective : Tomo_util.Bitset.t;
  n_vars : int;
  n_rows : int;
}

let potentially_congested t = Tomo_util.Bitset.to_list t.effective
