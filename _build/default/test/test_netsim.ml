(* Tests for the congestion/loss simulator: factor model exactness,
   scenario selection, probing, and full runs. *)

module Overlay = Tomo_topology.Overlay
module Brite = Tomo_topology.Brite
module Factor_model = Tomo_netsim.Factor_model
module Scenario = Tomo_netsim.Scenario
module Probe = Tomo_netsim.Probe
module Run = Tomo_netsim.Run
module Bitset = Tomo_util.Bitset
module Rng = Tomo_util.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let checkf tol = Alcotest.(check (float tol))

(* A hand-built overlay with a known correlation structure:
   AS 1 owns links 0 (factor a), 1 (factors a, b) — correlated via a;
   AS 2 owns link 2 (factor c).
   Paths: p0 = [0], p1 = [0; 2], p2 = [1; 2]. *)
let tiny_overlay () =
  let b = Overlay.Builder.create ~n_ases:3 ~source_as:0 in
  let fa = Overlay.Builder.factor b ~owner:1 ~key:"a" in
  let fb = Overlay.Builder.factor b ~owner:1 ~key:"b" in
  let fc = Overlay.Builder.factor b ~owner:2 ~key:"c" in
  let l0 =
    Overlay.Builder.link b ~owner:1 ~key:"l0" ~kind:Overlay.Inter
      ~factors:(fun () -> [| fa |])
  in
  let l1 =
    Overlay.Builder.link b ~owner:1 ~key:"l1" ~kind:Overlay.Intra
      ~factors:(fun () -> [| fa; fb |])
  in
  let l2 =
    Overlay.Builder.link b ~owner:2 ~key:"l2" ~kind:Overlay.Inter
      ~factors:(fun () -> [| fc |])
  in
  ignore (Overlay.Builder.add_path b [| l0 |]);
  ignore (Overlay.Builder.add_path b [| l0; l2 |]);
  ignore (Overlay.Builder.add_path b [| l1; l2 |]);
  Overlay.Builder.finalize b

(* ------------------------------------------------------------------ *)
(* Factor model                                                        *)
(* ------------------------------------------------------------------ *)

let test_factor_marginals () =
  let ov = tiny_overlay () in
  (* qa = 0.2, qb = 0.5, qc = 0.3 (factor order = creation order). *)
  let m = Factor_model.make ov [| 0.2; 0.5; 0.3 |] in
  checkf 1e-9 "l0 marginal = qa" 0.2 (Factor_model.link_marginal m 0);
  checkf 1e-9 "l1 marginal = 1-(1-qa)(1-qb)" 0.6
    (Factor_model.link_marginal m 1);
  checkf 1e-9 "l2 marginal = qc" 0.3 (Factor_model.link_marginal m 2)

let test_factor_joint () =
  let ov = tiny_overlay () in
  let m = Factor_model.make ov [| 0.2; 0.5; 0.3 |] in
  (* G({l0,l1}) = (1-qa)(1-qb): factor a counted once (correlation!). *)
  checkf 1e-9 "good prob correlated pair" 0.4
    (Factor_model.good_prob m [| 0; 1 |]);
  (* Cross-AS independence: G({l0,l2}) = (1-qa)(1-qc). *)
  checkf 1e-9 "good prob independent pair" (0.8 *. 0.7)
    (Factor_model.good_prob m [| 0; 2 |]);
  (* P(l0 and l1 both congested) = P(a) + P(¬a)·0 ... by
     inclusion-exclusion: 1 - G0 - G1 + G01 = 1 - .8 - .4 + .4 = 0.2. *)
  checkf 1e-9 "joint congestion of correlated pair" 0.2
    (Factor_model.congestion_prob m [| 0; 1 |]);
  (* Independent pair: product of marginals. *)
  checkf 1e-9 "joint congestion independent pair" (0.2 *. 0.3)
    (Factor_model.congestion_prob m [| 0; 2 |])

let test_factor_empirical_match () =
  (* The sampled joint distribution must match the closed form. *)
  let ov = tiny_overlay () in
  let m = Factor_model.make ov [| 0.2; 0.5; 0.3 |] in
  let rng = Rng.create 99 in
  let n = 50_000 in
  let both_01 = ref 0 and l1_cong = ref 0 in
  for _ = 1 to n do
    let st = Factor_model.draw_interval m rng in
    if Bitset.get st 0 && Bitset.get st 1 then incr both_01;
    if Bitset.get st 1 then incr l1_cong
  done;
  let f_both = float_of_int !both_01 /. float_of_int n in
  let f_l1 = float_of_int !l1_cong /. float_of_int n in
  check_bool "joint freq matches closed form" true
    (abs_float (f_both -. 0.2) < 0.01);
  check_bool "marginal freq matches closed form" true
    (abs_float (f_l1 -. 0.6) < 0.01)

let test_factor_validation () =
  let ov = tiny_overlay () in
  Alcotest.check_raises "wrong length"
    (Invalid_argument
       "Factor_model.make: wrong number of factor probabilities")
    (fun () -> ignore (Factor_model.make ov [| 0.1 |]));
  Alcotest.check_raises "bad probability"
    (Invalid_argument "Factor_model.make: probability outside [0,1]")
    (fun () -> ignore (Factor_model.make ov [| 0.1; 1.5; 0.2 |]))

let prop_inclusion_exclusion_consistent =
  QCheck.Test.make
    ~name:"congestion_prob of singleton equals link marginal" ~count:50
    (QCheck.int_range 0 5_000) (fun seed ->
      let ov = tiny_overlay () in
      let rng = Rng.create seed in
      let probs = Array.init 3 (fun _ -> Rng.float rng 1.0) in
      let m = Factor_model.make ov probs in
      List.for_all
        (fun e ->
          abs_float
            (Factor_model.congestion_prob m [| e |]
            -. Factor_model.link_marginal m e)
          < 1e-12)
        [ 0; 1; 2 ])

let prop_congestion_le_min_marginal =
  QCheck.Test.make
    ~name:"P(all congested) <= min marginal (positive correlation model)"
    ~count:50 (QCheck.int_range 0 5_000) (fun seed ->
      let ov = tiny_overlay () in
      let rng = Rng.create seed in
      let probs = Array.init 3 (fun _ -> Rng.float rng 1.0) in
      let m = Factor_model.make ov probs in
      let p = Factor_model.congestion_prob m [| 0; 1; 2 |] in
      List.for_all
        (fun e -> p <= Factor_model.link_marginal m e +. 1e-12)
        [ 0; 1; 2 ])

(* ------------------------------------------------------------------ *)
(* Scenario                                                            *)
(* ------------------------------------------------------------------ *)

let small_brite =
  { Brite.default with Brite.n_ases = 40; n_paths = 150; n_vantages = 2 }

let test_scenario_random_frac () =
  let ov = Brite.generate ~params:small_brite ~seed:2 () in
  let rng = Rng.create 1 in
  let s = Scenario.make ov ~kind:Scenario.Random ~frac:0.1 ~rng in
  let n = Array.length (Scenario.congestible_links s) in
  let target = float_of_int (Overlay.n_links ov) *. 0.1 in
  check_bool "congestible ≈ 10% of links" true
    (float_of_int n >= target *. 0.8 && float_of_int n <= target *. 1.8)

let test_scenario_concentrated_edges () =
  let ov = Brite.generate ~params:small_brite ~seed:2 () in
  let rng = Rng.create 1 in
  let s = Scenario.make ov ~kind:Scenario.Concentrated ~frac:0.1 ~rng in
  let edges = Scenario.edge_links ov in
  let is_edge = Array.make (Overlay.n_links ov) false in
  Array.iter (fun e -> is_edge.(e) <- true) edges;
  let cong = Scenario.congestible_links s in
  check_bool "some congestible links" true (Array.length cong > 0);
  Array.iter
    (fun e -> check_bool "congestible link at edge" true is_edge.(e))
    cong

let test_scenario_no_independence_correlated () =
  let ov = Brite.generate ~params:small_brite ~seed:2 () in
  let rng = Rng.create 1 in
  let s = Scenario.make ov ~kind:Scenario.No_independence ~frac:0.1 ~rng in
  let sharing = Overlay.links_sharing_factor ov in
  let cong = Scenario.congestible_links s in
  check_bool "some congestible links" true (Array.length cong > 0);
  (* Every congestible link shares some factor with another congestible
     link — it has a potential correlation partner. *)
  let congestible = Hashtbl.create 16 in
  Array.iter (fun e -> Hashtbl.add congestible e ()) cong;
  Array.iter
    (fun e ->
      let has_partner =
        Array.exists
          (fun f ->
            Array.exists
              (fun l -> l <> e && Hashtbl.mem congestible l)
              sharing.(f))
          ov.Overlay.links.(e).Overlay.factors
      in
      check_bool "congestible link has correlated partner" true has_partner)
    cong

let test_scenario_draw_probs () =
  let ov = Brite.generate ~params:small_brite ~seed:2 () in
  let rng = Rng.create 1 in
  let s = Scenario.make ov ~kind:Scenario.Random ~frac:0.1 ~rng in
  let probs = Scenario.draw_probs s (Rng.create 5) in
  let cong = Scenario.congestible_links s in
  let congestible = Hashtbl.create 16 in
  Array.iter (fun e -> Hashtbl.add congestible e ()) cong;
  (* Every congestible link is backed by a positive factor; no factor of
     an entirely non-congestible link carries probability. *)
  Array.iter
    (fun e ->
      check_bool "congestible link backed" true
        (Array.exists
           (fun f -> probs.(f) > 0.0)
           ov.Overlay.links.(e).Overlay.factors))
    cong;
  let sharing = Overlay.links_sharing_factor ov in
  Array.iteri
    (fun f q ->
      if q <> 0.0 then begin
        if q < 0.01 || q > 0.99 then Alcotest.fail "active prob range";
        check_bool "positive factor backs a congestible link" true
          (Array.exists (Hashtbl.mem congestible) sharing.(f))
      end)
    probs

let test_scenario_epochs_vary () =
  (* Successive epochs may activate different factors for the same
     congestible set — the non-stationarity mechanism. *)
  let ov = Brite.generate ~params:small_brite ~seed:2 () in
  let rng = Rng.create 1 in
  let s = Scenario.make ov ~kind:Scenario.No_independence ~frac:0.1 ~rng in
  let epoch_rng = Rng.create 9 in
  let p1 = Scenario.draw_probs s epoch_rng in
  let p2 = Scenario.draw_probs s epoch_rng in
  check_bool "epochs differ" true (p1 <> p2)

(* ------------------------------------------------------------------ *)
(* Probe                                                               *)
(* ------------------------------------------------------------------ *)

let test_loss_rates () =
  let rng = Rng.create 4 in
  for _ = 1 to 500 do
    let g = Probe.loss_rate rng ~congested:false in
    if g < 0.0 || g >= 0.01 then Alcotest.fail "good loss out of range";
    let c = Probe.loss_rate rng ~congested:true in
    if c < 0.01 || c >= 1.0 then Alcotest.fail "congested loss out of range"
  done

let test_path_threshold () =
  checkf 1e-12 "1 hop" 0.01 (Probe.path_threshold ~f:0.01 ~hops:1);
  checkf 1e-9 "3 hops" (1.0 -. (0.99 ** 3.0))
    (Probe.path_threshold ~f:0.01 ~hops:3);
  checkf 1e-12 "0 hops" 0.0 (Probe.path_threshold ~f:0.01 ~hops:0)

let test_binomial_moments () =
  let rng = Rng.create 8 in
  let n = 400 and p = 0.3 in
  let total = ref 0 in
  let reps = 3000 in
  for _ = 1 to reps do
    total := !total + Probe.binomial rng ~n ~p
  done;
  let mean = float_of_int !total /. float_of_int reps in
  check_bool "binomial mean ≈ np" true (abs_float (mean -. 120.0) < 2.0);
  check_int "p=0" 0 (Probe.binomial rng ~n:100 ~p:0.0);
  check_int "p=1" 100 (Probe.binomial rng ~n:100 ~p:1.0)

let test_measure_path_extremes () =
  let rng = Rng.create 9 in
  (* All links lossless: never congested. *)
  let losses = [| 0.0; 0.0 |] in
  check_bool "lossless path good" false
    (Probe.measure_path rng ~losses ~links:[| 0; 1 |] ~n_probes:200 ~f:0.01);
  (* One link drops half the traffic: always detected. *)
  let losses = [| 0.5; 0.0 |] in
  check_bool "heavy loss detected" true
    (Probe.measure_path rng ~losses ~links:[| 0; 1 |] ~n_probes:200 ~f:0.01)

(* ------------------------------------------------------------------ *)
(* Run                                                                 *)
(* ------------------------------------------------------------------ *)

let make_run ?(kind = Scenario.Random) ?(dynamics = Run.Stationary)
    ?(measurement = Run.Ideal) ?(t = 200) ~seed () =
  let ov = Brite.generate ~params:small_brite ~seed () in
  let rng = Rng.create (seed * 7919) in
  let scenario =
    Scenario.make ov ~kind ~frac:0.1 ~rng:(Rng.split rng ~label:"scenario")
  in
  Run.run ~scenario ~dynamics ~measurement ~t_intervals:t
    ~rng:(Rng.split rng ~label:"run")

let test_run_shapes () =
  let r = make_run ~seed:3 () in
  check_int "intervals" 200 r.Run.t_intervals;
  check_int "one status row per path"
    (Overlay.n_paths r.Run.overlay)
    (Array.length r.Run.path_good);
  check_int "one link-state per interval" 200
    (Array.length r.Run.link_congested);
  check_int "stationary => one epoch" 1 (List.length r.Run.epochs)

let test_run_separability_ideal () =
  (* Under ideal measurement, path status must equal the AND of link
     statuses — Separability holds exactly. *)
  let r = make_run ~seed:5 () in
  let ov = r.Run.overlay in
  for t = 0 to r.Run.t_intervals - 1 do
    Array.iter
      (fun (p : Overlay.path) ->
        let any_link_congested =
          Array.exists (Bitset.get r.Run.link_congested.(t)) p.Overlay.links
        in
        let path_good = Bitset.get r.Run.path_good.(p.Overlay.id) t in
        if path_good = any_link_congested then
          Alcotest.fail "separability violated")
      ov.Overlay.paths
  done

let test_run_marginal_matches_truth () =
  (* Empirical congestion frequency of each link over a long run must be
     close to the closed-form marginal. *)
  let r = make_run ~seed:11 ~t:3000 () in
  let n_links = Overlay.n_links r.Run.overlay in
  let freq = Array.make n_links 0 in
  Array.iter
    (fun st -> Bitset.iter (fun e -> freq.(e) <- freq.(e) + 1) st)
    r.Run.link_congested;
  let worst = ref 0.0 in
  for e = 0 to n_links - 1 do
    let f = float_of_int freq.(e) /. 3000.0 in
    let truth = Run.true_link_marginal r e in
    worst := max !worst (abs_float (f -. truth))
  done;
  check_bool "worst |freq - marginal| < 0.05" true (!worst < 0.05)

let test_run_nonstationary_epochs () =
  let r = make_run ~dynamics:(Run.Redraw_every 50) ~seed:3 () in
  check_int "200/50 epochs" 4 (List.length r.Run.epochs);
  List.iter
    (fun e -> check_int "epoch length" 50 e.Run.length)
    r.Run.epochs;
  (* Probabilities actually change across epochs. *)
  match r.Run.epochs with
  | e1 :: e2 :: _ ->
      check_bool "epoch probs differ" true (e1.Run.probs <> e2.Run.probs)
  | _ -> Alcotest.fail "expected epochs"

let test_run_truth_time_average () =
  let r = make_run ~dynamics:(Run.Redraw_every 100) ~seed:3 ~t:200 () in
  match r.Run.epochs with
  | [ e1; e2 ] ->
      let m1 = Factor_model.make r.Run.overlay e1.Run.probs in
      let m2 = Factor_model.make r.Run.overlay e2.Run.probs in
      let e = 0 in
      checkf 1e-9 "marginal is epoch average"
        ((Factor_model.link_marginal m1 e +. Factor_model.link_marginal m2 e)
        /. 2.0)
        (Run.true_link_marginal r e)
  | _ -> Alcotest.fail "expected 2 epochs"

let test_run_probing_mostly_agrees () =
  (* Probing with many probes should agree with ideal status in the vast
     majority of (path, interval) cells. *)
  let seed = 21 in
  let ideal = make_run ~seed ~t:100 () in
  let probed =
    make_run ~seed ~t:100
      ~measurement:(Run.Probes { per_path = 400; f = 0.01 })
      ()
  in
  (* Same seed => same topology, same congestion states. *)
  let agree = ref 0 and total = ref 0 in
  Array.iteri
    (fun p row ->
      for t = 0 to 99 do
        incr total;
        if Bitset.get row t = Bitset.get probed.Run.path_good.(p) t then
          incr agree
      done)
    ideal.Run.path_good;
  let frac = float_of_int !agree /. float_of_int !total in
  check_bool "probing agrees with ideal > 90%" true (frac > 0.9)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "netsim"
    [
      ( "factor_model",
        [
          Alcotest.test_case "marginals" `Quick test_factor_marginals;
          Alcotest.test_case "joint probabilities" `Quick test_factor_joint;
          Alcotest.test_case "empirical match" `Slow
            test_factor_empirical_match;
          Alcotest.test_case "validation" `Quick test_factor_validation;
          qc prop_inclusion_exclusion_consistent;
          qc prop_congestion_le_min_marginal;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "random frac" `Quick test_scenario_random_frac;
          Alcotest.test_case "concentrated at edges" `Quick
            test_scenario_concentrated_edges;
          Alcotest.test_case "no-independence correlated" `Quick
            test_scenario_no_independence_correlated;
          Alcotest.test_case "draw_probs ranges" `Quick
            test_scenario_draw_probs;
          Alcotest.test_case "epochs vary" `Quick test_scenario_epochs_vary;
        ] );
      ( "probe",
        [
          Alcotest.test_case "loss rate ranges" `Quick test_loss_rates;
          Alcotest.test_case "path threshold" `Quick test_path_threshold;
          Alcotest.test_case "binomial moments" `Quick test_binomial_moments;
          Alcotest.test_case "measure extremes" `Quick
            test_measure_path_extremes;
        ] );
      ( "run",
        [
          Alcotest.test_case "shapes" `Quick test_run_shapes;
          Alcotest.test_case "ideal separability" `Quick
            test_run_separability_ideal;
          Alcotest.test_case "marginals match truth" `Slow
            test_run_marginal_matches_truth;
          Alcotest.test_case "non-stationary epochs" `Quick
            test_run_nonstationary_epochs;
          Alcotest.test_case "truth time-averages" `Quick
            test_run_truth_time_average;
          Alcotest.test_case "probing agrees with ideal" `Slow
            test_run_probing_mostly_agrees;
        ] );
    ]
