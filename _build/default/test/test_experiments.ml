(* Integration tests: workload preparation, figure harnesses, and the
   paper's qualitative orderings at reduced scale (fixed seeds). *)

module W = Tomo_experiments.Workload
module Fig3 = Tomo_experiments.Fig3
module Fig4 = Tomo_experiments.Fig4
module Render = Tomo_experiments.Render
module Scenario = Tomo_netsim.Scenario
module Overlay = Tomo_topology.Overlay
module Bitset = Tomo_util.Bitset

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* substring search, Boyer-Moore not needed at this size *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  go 0


let prepare ?(topology = W.Brite) ?(scenario = Scenario.Random)
    ?(nonstationary = false) ?(seed = 3) () =
  W.prepare (W.spec ~scale:W.Small ~seed ~nonstationary topology scenario)

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)
(* ------------------------------------------------------------------ *)

let test_workload_shapes () =
  let w = prepare () in
  let n_links = Overlay.n_links w.W.overlay in
  check_int "model links" n_links w.W.model.Tomo.Model.n_links;
  check_int "model paths" (Overlay.n_paths w.W.overlay)
    w.W.model.Tomo.Model.n_paths;
  check_int "obs intervals" (W.t_intervals W.Small)
    (Tomo.Observations.t_intervals w.W.obs);
  check_int "truth per link" n_links (Array.length w.W.truth_marginals)

let test_workload_truth_range () =
  let w = prepare ~scenario:Scenario.No_independence () in
  Array.iter
    (fun p ->
      if p < 0.0 || p > 1.0 then Alcotest.fail "truth outside [0,1]")
    w.W.truth_marginals;
  (* roughly 10% of links have a positive marginal *)
  let positive =
    Array.fold_left (fun a p -> if p > 0.0 then a + 1 else a) 0
      w.W.truth_marginals
  in
  let n = Array.length w.W.truth_marginals in
  check_bool "about 10% congestible" true
    (positive > n / 20 && positive < n / 3)

let test_workload_model_corr_sets_partition () =
  let w = prepare ~topology:W.Sparse () in
  let m = w.W.model in
  let seen = Array.make m.Tomo.Model.n_links 0 in
  Array.iter
    (Array.iter (fun e -> seen.(e) <- seen.(e) + 1))
    m.Tomo.Model.corr_sets;
  Array.iteri
    (fun e c ->
      if c <> 1 then
        Alcotest.failf "link %d appears %d times in correlation sets" e c)
    seen

let test_workload_deterministic () =
  let w1 = prepare ~seed:11 () and w2 = prepare ~seed:11 () in
  check_int "same topology"
    (Overlay.n_links w1.W.overlay)
    (Overlay.n_links w2.W.overlay);
  Alcotest.(check (array (float 0.0)))
    "same truth" w1.W.truth_marginals w2.W.truth_marginals

(* ------------------------------------------------------------------ *)
(* Fig3                                                                *)
(* ------------------------------------------------------------------ *)

let test_fig3_cells_in_range () =
  let w = prepare () in
  List.iter
    (fun a ->
      let c = Fig3.run_cell w a in
      if
        c.Fig3.detection < 0.0 || c.Fig3.detection > 1.0
        || c.Fig3.false_positive < 0.0
        || c.Fig3.false_positive > 1.0
      then
        Alcotest.failf "out-of-range metrics for %s"
          (Fig3.algorithm_to_string a))
    Fig3.algorithms

let test_fig3_scenarios_cover_paper () =
  let scenarios = Fig3.scenarios ~scale:W.Small ~seed:1 in
  check_int "five scenarios" 5 (List.length scenarios);
  let labels = List.map fst scenarios in
  check_bool "sparse last" true
    (List.nth labels 4 = "Sparse Topology")

let test_fig3_sparse_degrades () =
  (* The paper's central negative result: inference on the Sparse
     topology is much worse than on Brite under the same (random)
     congestion. Averaged over the three algorithms. *)
  let brite = prepare ~seed:5 () in
  let sparse = prepare ~topology:W.Sparse ~seed:5 () in
  let mean_det w =
    List.fold_left
      (fun acc a -> acc +. (Fig3.run_cell w a).Fig3.detection)
      0.0 Fig3.algorithms
    /. 3.0
  in
  check_bool "sparse detection below brite" true
    (mean_det sparse < mean_det brite)

(* ------------------------------------------------------------------ *)
(* Fig4                                                                *)
(* ------------------------------------------------------------------ *)

let test_fig4_pc_in_range () =
  let w = prepare ~scenario:Scenario.No_independence () in
  List.iter
    (fun a ->
      let r, _ = Fig4.run_pc w a in
      Array.iter
        (fun p ->
          if p < 0.0 || p > 1.0 then
            Alcotest.failf "marginal out of range for %s"
              (Fig4.algorithm_to_string a))
        r.Tomo.Pc_result.marginals)
    Fig4.algorithms

let test_fig4_correlation_beats_independence () =
  (* The paper's central positive result: under correlated congestion,
     Correlation-complete's per-link error is below Independence's.
     Small-scale single-seed runs are noisy, so average over seeds. *)
  let seeds = [ 1; 2; 3; 4; 5 ] in
  let total_ind = ref 0.0 and total_cc = ref 0.0 in
  List.iter
    (fun seed ->
      let w =
        prepare ~scenario:Scenario.No_independence ~nonstationary:true
          ~seed ()
      in
      let err a =
        let r, _ = Fig4.run_pc w a in
        Fig4.mean_link_error w r
      in
      total_ind := !total_ind +. err Fig4.Independence;
      total_cc := !total_cc +. err Fig4.Correlation_complete)
    seeds;
  check_bool "CC < Independence under correlation (seed average)" true
    (!total_cc < !total_ind)

let test_fig4_complete_uses_fewer_equations () =
  (* §5.4: the baselines "create a significantly larger number of
     equations than ours". *)
  let w = prepare ~topology:W.Sparse ~seed:5 () in
  let cc, _ = Fig4.run_pc w Fig4.Correlation_complete in
  let ch, _ = Fig4.run_pc w Fig4.Correlation_heuristic in
  check_bool "at scale, heuristic forms far more equations" true
    (ch.Tomo.Pc_result.n_rows > 2 * cc.Tomo.Pc_result.n_rows)

let test_fig4_cdf_monotone () =
  let curves = Fig4.run_cdf ~scale:W.Small ~seed:3 ~steps:10 in
  check_int "three curves" 3 (List.length curves);
  List.iter
    (fun (_, curve) ->
      let ys = List.map snd curve in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && mono rest
        | _ -> true
      in
      check_bool "monotone" true (mono ys);
      check_bool "ends at 1" true
        (abs_float (List.nth ys (List.length ys - 1) -. 1.0) < 1e-9))
    curves

let test_fig4_subsets_scored () =
  let cells = Fig4.run_subsets ~scale:W.Small ~seed:3 in
  check_int "brite and sparse" 2 (List.length cells);
  List.iter
    (fun (label, c) ->
      check_bool (label ^ " scored subsets") true (c.Fig4.n_subsets_scored > 0);
      check_bool (label ^ " link mae range") true
        (c.Fig4.links_mae >= 0.0 && c.Fig4.links_mae <= 1.0);
      check_bool (label ^ " subset mae range") true
        (c.Fig4.subsets_mae >= 0.0 && c.Fig4.subsets_mae <= 1.0))
    cells

(* ------------------------------------------------------------------ *)
(* Ablations & averaging                                               *)
(* ------------------------------------------------------------------ *)

module Ablation = Tomo_experiments.Ablation

let test_ablation_subset_sweep () =
  let rows =
    Ablation.subset_size_sweep ~scale:W.Small ~seed:3 ~sizes:[ 1; 2; 3 ]
  in
  check_int "three rows" 3 (List.length rows);
  (* A larger subset budget can only add unknowns, never remove them. *)
  let vars = List.map (fun r -> r.Ablation.n_vars) rows in
  (match vars with
  | [ a; b; c ] ->
      check_bool "vars grow with budget" true (a <= b && b <= c)
  | _ -> Alcotest.fail "unexpected");
  List.iter
    (fun (r : Ablation.subset_row) ->
      check_bool "mae in range" true
        (r.Ablation.links_mae >= 0.0 && r.Ablation.links_mae <= 1.0))
    rows

let test_ablation_probe_sweep () =
  let rows =
    Ablation.probe_sweep ~scale:W.Small ~seed:3 ~budgets:[ 800; 50 ]
  in
  match rows with
  | [ ideal; heavy; light ] ->
      check_bool "ideal has no flips" true
        (ideal.Ablation.status_flip_frac = 0.0);
      check_bool "fewer probes flip more statuses" true
        (heavy.Ablation.status_flip_frac < light.Ablation.status_flip_frac);
      check_bool "fewer probes, larger error" true
        (heavy.Ablation.links_mae <= light.Ablation.links_mae +. 0.02)
  | _ -> Alcotest.fail "expected ideal + two budgets"

let test_ablation_interval_sweep () =
  let rows =
    Ablation.interval_sweep ~scale:W.Small ~seed:3 ~lengths:[ 60; 900 ]
  in
  match rows with
  | [ short; long ] ->
      check_int "t recorded" 60 short.Ablation.t_intervals;
      check_bool "longer experiment at least as accurate" true
        (long.Ablation.links_mae <= short.Ablation.links_mae +. 0.01)
  | _ -> Alcotest.fail "expected two rows"

let test_fig3_seed_average_identity () =
  (* Averaging over a single seed must equal the plain run. *)
  let single = Fig3.run ~scale:W.Small ~seed:4 in
  let averaged = Fig3.run_averaged ~scale:W.Small ~seeds:[ 4 ] in
  List.iter2
    (fun (r : Fig3.row) (r' : Fig3.row) ->
      List.iter2
        (fun (_, c) (_, c') ->
          if abs_float (c.Fig3.detection -. c'.Fig3.detection) > 1e-12 then
            Alcotest.fail "averaged run differs from single run")
        r.Fig3.cells r'.Fig3.cells)
    single averaged

let test_fig4_seed_average_in_range () =
  let rows =
    Fig4.run_mae_averaged ~topology:W.Brite ~scale:W.Small ~seeds:[ 1; 2 ]
  in
  List.iter
    (fun (r : Fig4.mae_row) ->
      List.iter
        (fun (_, v) ->
          if v < 0.0 || v > 1.0 then Alcotest.fail "averaged mae range")
        r.Fig4.cells)
    rows

(* ------------------------------------------------------------------ *)
(* Peer report                                                         *)
(* ------------------------------------------------------------------ *)

module Peer_report = Tomo_experiments.Peer_report

let test_peer_report_build () =
  let w = prepare ~seed:7 () in
  let _, engine = Tomo.Correlation_complete.compute w.W.model w.W.obs in
  let peers =
    Peer_report.build ~model:w.W.model ~engine ~overlay:w.W.overlay
      ~resamples:0
      ~rng:(Tomo_util.Rng.create 1)
  in
  check_bool "some peers reported" true (List.length peers > 0);
  (* Sorted by expected congestion, descending; CI collapses without
     resamples; identifiable counts bounded by link counts. *)
  let rec sorted = function
    | (a : Peer_report.peer) :: (b :: _ as rest) ->
        a.Peer_report.expected_congested >= b.Peer_report.expected_congested
        && sorted rest
    | _ -> true
  in
  check_bool "sorted" true (sorted peers);
  List.iter
    (fun (p : Peer_report.peer) ->
      check_bool "ci = point without bootstrap" true
        (abs_float (p.Peer_report.ci_lo -. p.Peer_report.expected_congested)
         < 1e-9);
      check_bool "identifiable <= links" true
        (p.Peer_report.n_identifiable <= p.Peer_report.n_links))
    peers

let test_peer_report_ci_brackets () =
  let w = prepare ~seed:7 () in
  let _, engine = Tomo.Correlation_complete.compute w.W.model w.W.obs in
  let peers =
    Peer_report.build ~model:w.W.model ~engine ~overlay:w.W.overlay
      ~resamples:15
      ~rng:(Tomo_util.Rng.create 1)
  in
  List.iter
    (fun (p : Peer_report.peer) ->
      check_bool "lo <= hi" true (p.Peer_report.ci_lo <= p.Peer_report.ci_hi))
    peers

let test_peer_report_render () =
  let w = prepare ~seed:7 () in
  let _, engine = Tomo.Correlation_complete.compute w.W.model w.W.obs in
  let peers =
    Peer_report.build ~model:w.W.model ~engine ~overlay:w.W.overlay
      ~resamples:0
      ~rng:(Tomo_util.Rng.create 1)
  in
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Peer_report.render ppf ~top:5 peers;
  Format.pp_print_flush ppf ();
  check_bool "renders header" true (contains (Buffer.contents buf) "peer AS")

(* ------------------------------------------------------------------ *)
(* Render                                                              *)
(* ------------------------------------------------------------------ *)

let render_to_string f =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let test_render_table2 () =
  let s = render_to_string Render.table2 in
  check_bool "mentions homogeneity" true
    (contains s "Homogeneity");
  check_bool "mentions identifiability++" true
    (contains s "Identifiability++")

let test_render_fig3_smoke () =
  let rows =
    [
      {
        Fig3.label = "Test";
        cells =
          List.map
            (fun a -> (a, { Fig3.detection = 0.5; false_positive = 0.1 }))
            Fig3.algorithms;
      };
    ]
  in
  let s = render_to_string (fun ppf -> Render.fig3 ppf rows) in
  check_bool "has detection header" true
    (contains s "Detection Rate");
  check_bool "has scenario row" true (contains s "Test")

let () =
  Alcotest.run "experiments"
    [
      ( "workload",
        [
          Alcotest.test_case "shapes" `Quick test_workload_shapes;
          Alcotest.test_case "truth in range" `Quick
            test_workload_truth_range;
          Alcotest.test_case "correlation sets partition" `Quick
            test_workload_model_corr_sets_partition;
          Alcotest.test_case "deterministic" `Quick
            test_workload_deterministic;
        ] );
      ( "fig3",
        [
          Alcotest.test_case "cells in range" `Slow test_fig3_cells_in_range;
          Alcotest.test_case "paper scenario grid" `Quick
            test_fig3_scenarios_cover_paper;
          Alcotest.test_case "sparse topologies degrade inference" `Slow
            test_fig3_sparse_degrades;
        ] );
      ( "fig4",
        [
          Alcotest.test_case "marginals in range" `Slow test_fig4_pc_in_range;
          Alcotest.test_case "correlation beats independence" `Slow
            test_fig4_correlation_beats_independence;
          Alcotest.test_case "minimal equation count" `Slow
            test_fig4_complete_uses_fewer_equations;
          Alcotest.test_case "error CDF monotone" `Slow test_fig4_cdf_monotone;
          Alcotest.test_case "subset probabilities scored" `Slow
            test_fig4_subsets_scored;
        ] );
      ( "ablation",
        [
          Alcotest.test_case "subset-size sweep" `Slow
            test_ablation_subset_sweep;
          Alcotest.test_case "probe sweep" `Slow test_ablation_probe_sweep;
          Alcotest.test_case "interval sweep" `Slow
            test_ablation_interval_sweep;
          Alcotest.test_case "fig3 seed-average identity" `Slow
            test_fig3_seed_average_identity;
          Alcotest.test_case "fig4 seed-average range" `Slow
            test_fig4_seed_average_in_range;
        ] );
      ( "peer_report",
        [
          Alcotest.test_case "build" `Slow test_peer_report_build;
          Alcotest.test_case "bootstrap CIs" `Slow
            test_peer_report_ci_brackets;
          Alcotest.test_case "render" `Slow test_peer_report_render;
        ] );
      ( "render",
        [
          Alcotest.test_case "table 2" `Quick test_render_table2;
          Alcotest.test_case "fig3 smoke" `Quick test_render_fig3_smoke;
        ] );
    ]
