(* The paper's motivating scenario (§1): a Tier-1 "source ISP" monitors
   the congestion behaviour of its peers using only end-to-end path
   measurements.

     dune exec examples/isp_monitoring.exe

   We generate a Brite-style internet, simulate a day of measurement
   with random congestion, run Correlation-complete, and produce the
   report the source ISP actually wants: peers ranked by how many of
   their links are congested at a typical moment, with bootstrap
   confidence intervals and the strongest identified intra-peer
   correlations. The (normally unknowable) simulator ground truth is
   shown for the top peers as a sanity check. *)

module W = Tomo_experiments.Workload
module Peer_report = Tomo_experiments.Peer_report
module Overlay = Tomo_topology.Overlay
module Run = Tomo_netsim.Run

let () =
  Format.printf "Generating internet and simulating measurements...@.";
  let w =
    W.prepare
      (W.spec ~scale:W.Medium ~seed:7 W.Brite Tomo_netsim.Scenario.Random)
  in
  Format.printf "%a@.@." Overlay.pp_summary w.W.overlay;

  let _, engine = Tomo.Correlation_complete.compute w.W.model w.W.obs in
  let peers =
    Peer_report.build ~model:w.W.model ~engine ~overlay:w.W.overlay
      ~resamples:30
      ~rng:(Tomo_util.Rng.create 99)
  in
  Format.printf
    "Peers ranked by expected number of simultaneously congested links@.";
  Peer_report.render Format.std_formatter ~top:12 peers;

  (* Sanity check against the simulator's closed-form truth. *)
  Format.printf "@.Ground-truth check (top 5):@.";
  let cs = Overlay.correlation_sets w.W.overlay in
  let truth_of_peer peer_as =
    Array.to_list cs
    |> List.filter_map (fun links ->
           if
             Array.length links > 0
             && w.W.overlay.Overlay.links.(links.(0)).Overlay.owner_as
                = peer_as
           then
             Some
               (Array.fold_left
                  (fun a e -> a +. Run.true_link_marginal w.W.run e)
                  0.0 links)
           else None)
    |> List.fold_left ( +. ) 0.0
  in
  List.iteri
    (fun i (p : Peer_report.peer) ->
      if i < 5 then
        Format.printf "  peer %d: estimated %.3f, truth %.3f@."
          p.Peer_report.peer_as p.Peer_report.expected_congested
          (truth_of_peer p.Peer_report.peer_as))
    peers;
  Format.printf
    "@.The source ISP reads this as: 'peer X has, at any moment, on \
     average N@.of its links congested' — the long-run view the paper \
     argues is both@.obtainable and sufficient in practice.@."
