(* The paper's non-stationarity story (§3.1): "consider a link that is
   normally congested very rarely ... suppose this link incurs a
   technical failure or comes under a flooding attack and becomes
   severely congested for a few time intervals; unless we already know
   when this failure/attack occurs, Probabilistic Inference will not
   pick this link as congested (because it has a low congestion
   probability associated with it)."

     dune exec examples/flash_crowd.exe

   We script exactly that on the toy topology: e4 is quiet for 95% of
   the experiment, then a flash crowd congests it for a short burst.
   Bayesian inference — fed the long-run probabilities — under-detects
   e4 during the burst, while Probability Computation still reports the
   exactly right long-run frequency: the paper's argument for shifting
   the goal. *)

module Toy = Tomo.Toy
module Bitset = Tomo_util.Bitset
module Rng = Tomo_util.Rng

let () =
  let t = 2000 in
  let burst_start = 1800 and burst_len = 100 in
  let rng = Rng.create 99 in
  (* e1 congests half the time, e3 a quarter of the time — chronic
     moderate congestion. e4 is quiet except for the burst, when it is
     fully congested. During a burst interval p3 = (e4,e3) is congested;
     whenever p2 = (e1,e3) is also congested (e1's doing), e3 is not
     exonerated and inference must *choose* between e3 (high long-run
     prior) and e4 (low prior). *)
  let states =
    Array.init t (fun i ->
        let burst = i >= burst_start && i < burst_start + burst_len in
        List.concat
          [
            (if Rng.bool rng ~p:0.5 then [ Toy.e1 ] else []);
            (if Rng.bool rng ~p:0.25 then [ Toy.e3 ] else []);
            (if burst then [ Toy.e4 ] else []);
          ])
  in
  let obs = Toy.observations ~interval_states:states in
  let model = Toy.case1 () in
  let selection = Tomo.Algorithm1.select model obs in
  let engine = Tomo.Prob_engine.solve selection obs in

  Format.printf "Long-run congestion probability of e4 (truth %.3f): %.3f@."
    (float_of_int burst_len /. float_of_int t)
    (Tomo.Prob_engine.link_marginal engine Toy.e4);
  Format.printf
    "Probability Computation nails the frequency — 'e4 was congested \
     for %.0f%% of the time'.@."
    (100.0 *. Tomo.Prob_engine.link_marginal engine Toy.e4);

  (* Now per-interval Boolean inference during the burst. p3 = (e4,e3)
     is congested; so is p2 whenever e1 is also congested — the
     ambiguous intervals where probabilities decide. *)
  let marginals =
    Array.init 4 (Tomo.Prob_engine.link_marginal engine)
  in
  let detected = ref 0 and burst_intervals = ref 0 in
  for i = burst_start to burst_start + burst_len - 1 do
    incr burst_intervals;
    let congested_paths = Tomo.Observations.congested_paths_at obs ~interval:i in
    let good_paths = Tomo.Observations.good_paths_at obs ~interval:i in
    let inferred =
      Tomo.Bayesian.infer_independence model ~marginals ~congested_paths
        ~good_paths
    in
    if Bitset.get inferred Toy.e4 then incr detected
  done;
  Format.printf
    "@.During the %d burst intervals, Bayesian-Independence blamed e4 in \
     %d (%.0f%%).@."
    !burst_intervals !detected
    (100.0 *. float_of_int !detected /. float_of_int !burst_intervals);
  Format.printf
    "Whenever e3's path status leaves room for doubt, the long-run prior \
     (%.3f)@.votes against the link that is actually melting down right \
     now.@."
    marginals.(Toy.e4);
  Format.printf
    "@.Moral (paper §4): per-interval diagnosis needs information no \
     tomographic@.system has under non-stationarity; long-run \
     frequencies are both computable@.and what an operator can act \
     on.@."
