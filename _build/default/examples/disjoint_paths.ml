(* Failure-disjoint path selection (paper §5.4, Fig. 4(d) motivation):
   "Knowing these probabilities reveals which links within each peer are
   actually correlated; this can be useful for computing 'disjoint'
   paths to some destination, i.e., paths that are not likely to fail at
   the same time."

     dune exec examples/disjoint_paths.exe

   We estimate, for every pair of measurement paths, the probability
   that both are congested simultaneously — combining the subset
   congestion probabilities where identifiable — and contrast the pair
   ranking with what a link-disjointness check alone would say. *)

module W = Tomo_experiments.Workload
module Bitset = Tomo_util.Bitset

(* Estimated probability that both paths fail together: 1 - P(p good)
   - P(q good) + P(both good), with the joint term taken directly from
   the observations (it is observable!) and the marginals from the
   engine, falling back to empirical path frequencies. *)
let joint_failure obs p q =
  let t = float_of_int (Tomo.Observations.t_intervals obs) in
  let gp = float_of_int (Tomo.Observations.all_good_count obs [| p |]) /. t in
  let gq = float_of_int (Tomo.Observations.all_good_count obs [| q |]) /. t in
  let gpq =
    float_of_int (Tomo.Observations.all_good_count obs [| p; q |]) /. t
  in
  1.0 -. gp -. gq +. gpq

let () =
  let w =
    W.prepare
      (W.spec ~scale:W.Medium ~seed:13 W.Brite
         Tomo_netsim.Scenario.No_independence)
  in
  let model = w.W.model and obs = w.W.obs in
  let _, engine = Tomo.Correlation_complete.compute model obs in

  (* Pick a destination served by several paths: the path pair reaching
     it with the smallest joint failure probability is the "disjoint"
     choice. We scan all path pairs that do not share any link. *)
  let n_paths = model.Tomo.Model.n_paths in
  let pairs = ref [] in
  for p = 0 to n_paths - 1 do
    for q = p + 1 to min (n_paths - 1) (p + 40) do
      if Bitset.disjoint model.Tomo.Model.path_links.(p)
           model.Tomo.Model.path_links.(q)
      then begin
        let jf = joint_failure obs p q in
        pairs := (p, q, jf) :: !pairs
      end
    done
  done;
  let sorted = List.sort (fun (_, _, a) (_, _, b) -> compare a b) !pairs in
  Format.printf
    "Link-disjoint path pairs ranked by P(both congested) — the pairs a@.\
     naive link-disjointness check treats as equally safe:@.@.";
  Format.printf "%-14s%24s@." "pair" "P(joint failure)";
  Format.printf "%s@." (String.make 38 '-');
  let show (p, q, jf) = Format.printf "(%4d,%4d)  %22.4f@." p q jf in
  List.iteri (fun i pr -> if i < 5 then show pr) sorted;
  Format.printf "   ...@.";
  let rev = List.rev sorted in
  List.iteri (fun i pr -> if i < 5 then show pr) (List.rev (List.filteri (fun i _ -> i < 5) rev));

  (* Explain the worst pair through correlated link subsets. *)
  (match rev with
  | (p, q, jf) :: _ ->
      Format.printf
        "@.Worst pair (%d,%d): joint failure %.3f despite sharing no \
         link.@."
        p q jf;
      (* Find cross-path link pairs in the same correlation set with a
         high estimated joint congestion probability. *)
      let culprits = ref [] in
      Bitset.iter
        (fun a ->
          Bitset.iter
            (fun b ->
              if
                model.Tomo.Model.corr_of_link.(a)
                = model.Tomo.Model.corr_of_link.(b)
              then
                match
                  Tomo.Prob_engine.congestion_prob engine
                    ~corr:model.Tomo.Model.corr_of_link.(a)
                    [| min a b; max a b |]
                with
                | Some jp when jp > 0.05 -> culprits := (a, b, jp) :: !culprits
                | _ -> ())
            model.Tomo.Model.path_links.(q))
        model.Tomo.Model.path_links.(p);
      (match !culprits with
      | [] ->
          Format.printf
            "No identifiable correlated subset explains it; the risk \
             comes from@.independently shaky links on both sides:@.";
          List.iter
            (fun path_id ->
              let worst_links =
                Bitset.fold
                  (fun acc e ->
                    (e, Tomo.Prob_engine.link_marginal engine e) :: acc)
                  []
                  model.Tomo.Model.path_links.(path_id)
                |> List.sort (fun (_, a) (_, b) -> compare b a)
              in
              match worst_links with
              | (e, pr) :: _ ->
                  Format.printf
                    "  path %d: shakiest link %d, P(congested) = %.3f@."
                    path_id e pr
              | [] -> ())
            [ p; q ]
      | cs ->
          Format.printf
            "Correlated link pairs across the two paths (same AS):@.";
          List.iter
            (fun (a, b, jp) ->
              Format.printf "  links (%d,%d): P(both congested) = %.3f@." a
                b jp)
            cs)
  | [] -> Format.printf "no disjoint pairs found@.");
  Format.printf
    "@.Tomography over correlation sets exposes shared-fate risk that@.\
     topology alone cannot: pick path pairs from the top of this list.@."
