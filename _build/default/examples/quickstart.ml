(* Quickstart: Congestion Probability Computation on the paper's toy
   topology (Fig. 1).

     dune exec examples/quickstart.exe

   Walks through the whole pipeline on four links and three paths:
   build a model, feed it per-interval path observations, run
   Algorithm 1 + the solver, and read out link and subset congestion
   probabilities. Also shows why Case 2 (Identifiability++ violated)
   yields no identifiable probabilities. *)

module Toy = Tomo.Toy
module Rng = Tomo_util.Rng

let banner title = Format.printf "@.=== %s ===@." title

(* Simulate the toy network: e1 congested 20%, e2 and e3 perfectly
   correlated (one shared cause, 35%), e4 congested 10%. *)
let simulate ~t ~seed =
  let rng = Rng.create seed in
  Array.init t (fun _ ->
      List.concat
        [
          (if Rng.bool rng ~p:0.2 then [ Toy.e1 ] else []);
          (if Rng.bool rng ~p:0.35 then [ Toy.e2; Toy.e3 ] else []);
          (if Rng.bool rng ~p:0.1 then [ Toy.e4 ] else []);
        ])

let () =
  let t = 5000 in
  let states = simulate ~t ~seed:2024 in
  let obs = Toy.observations ~interval_states:states in

  banner "Case 1: correlation sets {e1}, {e2,e3}, {e4}";
  let model = Toy.case1 () in
  let selection = Tomo.Algorithm1.select model obs in
  Format.printf "unknowns: %d, equations selected: %d, identifiable: %d@."
    (Tomo.Eqn.n_vars selection.Tomo.Algorithm1.registry)
    (Array.length selection.Tomo.Algorithm1.rows)
    (Tomo.Algorithm1.n_identifiable selection);
  let engine = Tomo.Prob_engine.solve selection obs in

  Format.printf "@.per-link congestion probabilities (truth in parens):@.";
  List.iter
    (fun (name, e, truth) ->
      Format.printf "  %s: %.3f  (%.2f)@." name
        (Tomo.Prob_engine.link_marginal engine e)
        truth)
    [
      ("e1", Toy.e1, 0.2);
      ("e2", Toy.e2, 0.35);
      ("e3", Toy.e3, 0.35);
      ("e4", Toy.e4, 0.1);
    ];

  let pair = [| Toy.e2; Toy.e3 |] in
  (match Tomo.Prob_engine.congestion_prob engine ~corr:1 pair with
  | Some p ->
      Format.printf
        "@.P(e2 and e3 both congested) = %.3f  (truth 0.35 — they share \
         a cause;@.an independence-based tool would report %.3f)@."
        p (0.35 *. 0.35)
  | None -> Format.printf "pair not identifiable?!@.");

  banner "Case 2: correlation sets {e1,e4}, {e2,e3}";
  (* Both pairs are traversed by exactly the same paths, so
     Identifiability++ fails: no probability is uniquely determined. *)
  let model2 = Toy.case2 () in
  let sel2 = Tomo.Algorithm1.select model2 obs in
  Format.printf "unknowns: %d, identifiable: %d (Identifiability++ fails)@."
    (Tomo.Eqn.n_vars sel2.Tomo.Algorithm1.registry)
    (Tomo.Algorithm1.n_identifiable sel2);

  banner "Boolean Inference on one bad interval";
  (* All three paths congested: the paper's ill-posed example with 8
     possible solutions. Sparsity picks {e1,e3}; the correlation-aware
     MAP recognizes that {e2,e3} congest together. *)
  let congested_paths = Tomo_util.Bitset.of_list 3 [ Toy.p1; Toy.p2; Toy.p3 ] in
  let good_paths = Tomo_util.Bitset.create 3 in
  let show name inferred =
    Format.printf "  %s blames links: %a@." name Tomo_util.Bitset.pp inferred
  in
  show "Sparsity            "
    (Tomo.Sparsity.infer model ~congested_paths ~good_paths);
  show "Bayesian-Correlation"
    (Tomo.Bayesian.infer_correlation model ~engine ~congested_paths
       ~good_paths);
  Format.printf
    "(link ids: e1=%d e2=%d e3=%d e4=%d; the likely truth is {e2,e3})@."
    Toy.e1 Toy.e2 Toy.e3 Toy.e4
