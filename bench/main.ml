(* Benchmark harness.

     dune exec bench/main.exe                 -- everything
     TOMO_BENCH_SCALE=small dune exec bench/main.exe
     TOMO_BENCH_FIGURES=0  dune exec bench/main.exe  -- skip figures
     TOMO_BENCH_PERF=0     dune exec bench/main.exe  -- skip Bechamel

   Two parts:

   1. Reproduction pass — regenerates every table and figure of the
      paper's evaluation (Fig. 3a/3b, Fig. 4a–d, Table 2) at the chosen
      scale and prints the same rows/series the paper reports.

   2. Bechamel micro-benchmarks — one [Test.make] per table/figure
      workload (the per-interval inference kernels behind Fig. 3, the
      probability-computation solves behind Fig. 4) plus the substrate
      kernels (topology generation, simulation, estimator, and the
      Algorithm-2 incremental null-space update vs a from-scratch
      recomputation — the ablation for the paper's design choice). *)

open Bechamel
open Toolkit
module W = Tomo_experiments.Workload
module Fig3 = Tomo_experiments.Fig3
module Fig4 = Tomo_experiments.Fig4
module Render = Tomo_experiments.Render
module Scenario = Tomo_netsim.Scenario
module Run = Tomo_netsim.Run
module Pool = Tomo_par.Pool
module Bitset = Tomo_util.Bitset
module Matrix = Tomo_linalg.Matrix
module Gauss = Tomo_linalg.Gauss
module Sparse = Tomo_linalg.Sparse
module Sparse_gauss = Tomo_linalg.Sparse_gauss
module Nullspace = Tomo_linalg.Nullspace
module Rng = Tomo_util.Rng

let ppf = Format.std_formatter

let scale =
  match Sys.getenv_opt "TOMO_BENCH_SCALE" with
  | Some s -> (
      match W.scale_of_string s with
      | Ok v -> v
      | Error e -> failwith e)
  | None -> W.Medium

let seed =
  match Sys.getenv_opt "TOMO_BENCH_SEED" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v -> v
      | None ->
          failwith
            (Printf.sprintf "TOMO_BENCH_SEED: expected an integer, got %S" s))
  | None -> 1

let enabled name =
  match Sys.getenv_opt name with Some "0" -> false | _ -> true

(* ------------------------------------------------------------------ *)
(* Part 1: figure reproduction                                         *)
(* ------------------------------------------------------------------ *)

let reproduction_pass () =
  Format.fprintf ppf
    "==================================================================@.";
  Format.fprintf ppf
    "Reproduction pass (scale=%s, seed=%d) — every table and figure@."
    (W.scale_to_string scale) seed;
  Format.fprintf ppf
    "==================================================================@.";
  let t0 = Unix.gettimeofday () in
  Render.fig3 ppf (Fig3.run ~scale ~seed);
  Render.fig4_mae ppf
    ~title:
      "Figure 4(a): mean absolute error of link congestion probability \
       (Brite)"
    (Fig4.run_mae ~topology:W.Brite ~scale ~seed);
  Render.fig4_mae ppf
    ~title:
      "Figure 4(b): mean absolute error of link congestion probability \
       (Sparse)"
    (Fig4.run_mae ~topology:W.Sparse ~scale ~seed);
  Render.fig4_cdf ppf (Fig4.run_cdf ~scale ~seed ~steps:10);
  Render.fig4_subsets ppf (Fig4.run_subsets ~scale ~seed);
  Render.table2 ppf;
  Format.fprintf ppf "@.(reproduction pass took %.1f s)@.@."
    (Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel micro-benchmarks                                   *)
(* ------------------------------------------------------------------ *)

(* Shared fixtures, small enough that each benched call is sub-second. *)
let fixture_spec = W.spec ~scale:W.Small ~seed:2 W.Brite Scenario.Random

let fixture = lazy (W.prepare fixture_spec)

let fixture_corr =
  lazy (W.prepare (W.spec ~scale:W.Small ~seed:2 W.Brite Scenario.No_independence))

let interval_inputs w =
  let obs = w.W.obs in
  (Tomo.Observations.congested_paths_at obs ~interval:0,
   Tomo.Observations.good_paths_at obs ~interval:0)

(* Paper-scale incidence fixture for the sparse-kernel benchmarks: ~400
   correlation-subset variables, 520 equations, each touching a short
   block of consecutive variables (the shape Algorithm 1's selections
   produce once subsets are numbered in discovery order).  Density ≈ 2%,
   comfortably under the routing threshold. *)
let paper_incidence =
  lazy
    (let nvars = 400 and nrows = 520 in
     let rng = Rng.create 11 in
     let idxs =
       Array.init nrows (fun i ->
           let base = i * 7 mod (nvars - 8) in
           let cols = ref [] in
           for k = 7 downto 0 do
             if k = 0 || Rng.bool rng ~p:0.75 then cols := (base + k) :: !cols
           done;
           Array.of_list !cols)
     in
     let sp = Sparse.of_incidence ~rows:nrows ~cols:nvars idxs in
     (sp, Sparse.to_matrix sp, idxs))

(* The guarantee the routing relies on, checked on the bench workload
   every run (CI greps for the OK line): the sparse elimination must be
   bit-identical to the dense one — same rank, same pivot columns, every
   entry of the reduced matrix equal. *)
let check_sparse_parity () =
  let _, dense, _ = Lazy.force paper_incidence in
  let d = Gauss.rref_dense dense in
  let s = Gauss.rref_sparse dense in
  let entries_equal =
    let ok = ref (Matrix.rows d.Gauss.reduced = Matrix.rows s.Gauss.reduced
                  && Matrix.cols d.Gauss.reduced = Matrix.cols s.Gauss.reduced)
    in
    if !ok then
      for i = 0 to Matrix.rows d.Gauss.reduced - 1 do
        for j = 0 to Matrix.cols d.Gauss.reduced - 1 do
          if Matrix.get d.Gauss.reduced i j <> Matrix.get s.Gauss.reduced i j
          then ok := false
        done
      done;
    !ok
  in
  if
    d.Gauss.rank = s.Gauss.rank
    && d.Gauss.pivot_cols = s.Gauss.pivot_cols
    && entries_equal
  then Format.fprintf ppf "sparse rref parity: OK@."
  else
    failwith
      (Printf.sprintf
         "sparse rref parity: FAILED (dense rank %d, sparse rank %d, \
          entries %s)"
         d.Gauss.rank s.Gauss.rank
         (if entries_equal then "equal" else "diverged"))

(* ------------------------------------------------------------------ *)
(* Parallel interval simulation: bit-equality guarantee + wall-clock   *)
(* ------------------------------------------------------------------ *)

(* [Run.run] fans the interval loop over the domain pool; the contract
   (lib/netsim/run.mli) is that the result is bit-identical whatever the
   worker count.  Checked here on every bench run with probe-based
   measurement so both the state and loss RNG streams are exercised (CI
   greps for the OK line). *)
let run_fingerprint (r : Run.result) =
  ( Array.map Bitset.to_list r.Run.link_congested,
    Array.map Bitset.to_list r.Run.path_good,
    List.map (fun (e : Run.epoch) -> (e.Run.length, e.Run.probs)) r.Run.epochs
  )

let simulate ~overlay ~t ~seed =
  let rng = Rng.create seed in
  let scenario =
    Scenario.make overlay ~kind:Scenario.Random ~frac:0.1
      ~rng:(Rng.split rng ~label:"scenario")
  in
  Run.run ~scenario
    ~dynamics:(Run.Redraw_every (max 2 (t / 200)))
    ~measurement:(Run.Probes { per_path = 20; f = 0.01 })
    ~t_intervals:t
    ~rng:(Rng.split rng ~label:"run")

let check_sim_parity () =
  let overlay = (Lazy.force fixture).W.overlay in
  let saved = Pool.default_jobs () in
  Pool.set_default_jobs 1;
  let a = run_fingerprint (simulate ~overlay ~t:120 ~seed:13) in
  Pool.set_default_jobs 4;
  let b = run_fingerprint (simulate ~overlay ~t:120 ~seed:13) in
  Pool.set_default_jobs saved;
  if a = b then Format.fprintf ppf "sim -j1 == -j4 bit-equality: OK@."
  else failwith "sim -j1 == -j4 bit-equality: FAILED"

(* The guarantee the witness prefilter relies on, checked on the bench
   workload every run (CI greps for the OK line): a selection with the
   prefilter enabled must be bit-identical to one with it disabled —
   same rows (paths and variables), same registry size, every entry of
   the null-space basis equal.  The prefilter only short-circuits
   dependent rows; a witness hit on an independent row would change the
   selection and trip this gate. *)
let check_witness_parity () =
  let w = Lazy.force fixture in
  let model = w.W.model and obs = w.W.obs in
  let base = Tomo.Algorithm1.select model obs in
  let off =
    Tomo.Algorithm1.select
      ~config:
        { Tomo.Algorithm1.default_config with Tomo.Algorithm1.witness_k = Some 0 }
      model obs
  in
  let open Tomo.Algorithm1 in
  let rows_equal =
    Array.length base.rows = Array.length off.rows
    && Array.for_all2
         (fun (a : Tomo.Eqn.row) (b : Tomo.Eqn.row) ->
           a.Tomo.Eqn.paths = b.Tomo.Eqn.paths
           && a.Tomo.Eqn.vars = b.Tomo.Eqn.vars)
         base.rows off.rows
  in
  let ns_equal =
    let a = base.nullspace and b = off.nullspace in
    let ok = ref (Matrix.rows a = Matrix.rows b && Matrix.cols a = Matrix.cols b) in
    if !ok then
      for i = 0 to Matrix.rows a - 1 do
        for j = 0 to Matrix.cols a - 1 do
          if Matrix.get a i j <> Matrix.get b i j then ok := false
        done
      done;
    !ok
  in
  let vars_equal =
    Tomo.Eqn.n_vars base.registry = Tomo.Eqn.n_vars off.registry
  in
  if rows_equal && ns_equal && vars_equal then
    Format.fprintf ppf "witness prefilter parity: OK@."
  else
    failwith
      (Printf.sprintf
         "witness prefilter parity: FAILED (rows %s, nullspace %s, registry \
          %s)"
         (if rows_equal then "equal" else "diverged")
         (if ns_equal then "equal" else "diverged")
         (if vars_equal then "equal" else "diverged"))

(* The guarantee the identifiability pruner relies on, checked on the
   bench workload every run (CI greps for the OK line): the pruned
   enumeration must be bit-identical to the exhaustive fan-out — every
   link marginal equal to the last bit, same identifiability flags,
   same system dimensions.  The pruner only skips subset sizes with a
   proof of emptiness and charges their would-be visits against the
   enumeration budget arithmetically; a wrong proof or a budget
   mismatch would change the estimates and trip this gate. *)
let check_ident_prune_parity () =
  let w = Lazy.force fixture in
  let model = w.W.model and obs = w.W.obs in
  (* Fire the ambiguity classification once on the bench workload so the
     [ident_ambiguous_links] counter lands in the JSON snapshot. *)
  ignore
    (Tomo.Identifiability.ambiguous_links model
       ~effective:(Tomo.Subsets.effective_links model obs));
  let saved = Tomo.Subsets.ident_prune_enabled () in
  Tomo.Subsets.set_ident_prune true;
  let on, _ = Tomo.Correlation_complete.compute model obs in
  Tomo.Subsets.set_ident_prune false;
  let off, _ = Tomo.Correlation_complete.compute model obs in
  Tomo.Subsets.set_ident_prune saved;
  let open Tomo.Pc_result in
  let marginals_equal =
    Array.length on.marginals = Array.length off.marginals
    && Array.for_all2
         (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
         on.marginals off.marginals
  in
  let flags_equal = on.identifiable = off.identifiable in
  let dims_equal = on.n_rows = off.n_rows && on.n_vars = off.n_vars in
  if marginals_equal && flags_equal && dims_equal then
    Format.fprintf ppf "identifiability prune parity: OK@."
  else
    failwith
      (Printf.sprintf
         "identifiability prune parity: FAILED (marginals %s, flags %s, \
          dims %s)"
         (if marginals_equal then "equal" else "diverged")
         (if flags_equal then "equal" else "diverged")
         (if dims_equal then "equal" else "diverged"))

(* Wall-clock scaling of the simulation itself on the paper-scale cell
   (Brite default topology, 1000 intervals — the Fig. 4 setting): one
   timed [Run.run] at 1 worker vs 4.  Skip with TOMO_BENCH_SIM=0. *)
let sim_parallel_pass () =
  Format.fprintf ppf
    "==================================================================@.";
  Format.fprintf ppf "Parallel interval simulation (paper scale, t=1000)@.";
  Format.fprintf ppf
    "==================================================================@.";
  let overlay =
    Tomo_topology.Brite.generate ~params:Tomo_topology.Brite.default ~seed:9 ()
  in
  let t = 1000 in
  let saved = Pool.default_jobs () in
  let time_at jobs =
    Pool.set_default_jobs jobs;
    let best = ref infinity in
    for _ = 1 to 2 do
      let t0 = Unix.gettimeofday () in
      ignore (simulate ~overlay ~t ~seed:29);
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let j1 = time_at 1 in
  let j4 = time_at 4 in
  Pool.set_default_jobs saved;
  let speedup = j1 /. j4 in
  Format.fprintf ppf "sim/run-paper -j1: %.2f s@." j1;
  Format.fprintf ppf "sim/run-paper -j4: %.2f s@." j4;
  Format.fprintf ppf "sim/run-paper speedup at 4 domains: %.2fx@.@." speedup;
  (t, j1, j4, speedup)

(* ------------------------------------------------------------------ *)
(* Telemetry overhead: the disabled instrumentation path               *)
(* ------------------------------------------------------------------ *)

(* The serve loop calls [Metrics.observe] four times per tick (the stage
   profile) and [Events.emit] on lifecycle edges, always through the
   same call sites whether or not a sink is configured.  This pass pins
   the contract that the disabled path is a single predictable branch:
   the printed rows land in BENCH_perf.json and CI greps the
   "obs/observe-disabled" line.  Hand-timed rather than Bechamel'd
   because the enabled/disabled split needs explicit global toggling
   around each loop. *)
let obs_overhead_pass () =
  Format.fprintf ppf
    "==================================================================@.";
  Format.fprintf ppf "Telemetry overhead (disabled-path contract)@.";
  Format.fprintf ppf
    "==================================================================@.";
  let h = Tomo_obs.Metrics.histogram "bench_obs_overhead_s" in
  let attrs = [ ("tick", "0"); ("rows", "565") ] in
  let time_ns n f =
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      for i = 1 to n do
        f i
      done;
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best *. 1e9 /. float_of_int n
  in
  let n = 5_000_000 in
  let was = Tomo_obs.Metrics.enabled () in
  Tomo_obs.Metrics.set_enabled false;
  let observe_off =
    time_ns n (fun i ->
        Tomo_obs.Metrics.observe h (float_of_int i *. 1e-9))
  in
  Tomo_obs.Metrics.set_enabled true;
  let observe_on =
    time_ns n (fun i ->
        Tomo_obs.Metrics.observe h (float_of_int i *. 1e-9))
  in
  Tomo_obs.Metrics.set_enabled was;
  (* Events must be unconfigured here (Sink.init never enables them);
     this is the cost every engine call site pays in a plain run. *)
  assert (not (Tomo_obs.Events.enabled ()));
  let emit_off =
    time_ns n (fun _ -> Tomo_obs.Events.emit "bench_noop" attrs)
  in
  let rows =
    [
      ("obs/observe-disabled", observe_off, nan);
      ("obs/observe-enabled", observe_on, nan);
      ("obs/emit-disabled", emit_off, nan);
    ]
  in
  List.iter
    (fun (name, ns, _) -> Format.fprintf ppf "%s: %.1f ns/call@." name ns)
    rows;
  Format.fprintf ppf "@.";
  rows

(* Network ingestion plane: the frame decoder alone (ns per decoded
   frame, fed in socket-sized chunks), and end-to-end single-peer
   ingest throughput over a real Unix socketpair into a Hub whose
   window never fills (so the numbers isolate the transport + parse +
   queue path, not the solver).  Hand-timed: both are wall-clock
   passes over a fixed workload, not a Bechamel closure. *)
let net_pass () =
  Format.fprintf ppf
    "==================================================================@.";
  Format.fprintf ppf "Network ingestion (frame decode, socket ingest)@.";
  Format.fprintf ppf
    "==================================================================@.";
  let w = Lazy.force fixture in
  let model = w.W.model in
  let n_paths = model.Tomo.Model.n_paths in
  let rng = Rng.create 9 in
  let column () =
    String.init n_paths (fun _ -> if Rng.bool rng ~p:0.7 then '1' else '0')
  in
  let n_ticks = 2000 in
  let wire =
    let b = Buffer.create (n_ticks * (n_paths + 16)) in
    Tomo_net.Frame.encode_into b "peer bench";
    Tomo_net.Frame.encode_into b "tomo-trace v1";
    Tomo_net.Frame.encode_into b (Printf.sprintf "paths %d" n_paths);
    for i = 0 to n_ticks - 1 do
      Tomo_net.Frame.encode_into b (Printf.sprintf "tick %d %s" i (column ()))
    done;
    Buffer.contents b
  in
  let n_frames = n_ticks + 3 in
  (* decode alone, fed in 64 KiB chunks as a socket reader would *)
  let decode_ns =
    let best = ref infinity in
    for _ = 1 to 5 do
      let dec = Tomo_net.Frame.create () in
      let t0 = Unix.gettimeofday () in
      let off = ref 0 in
      while !off < String.length wire do
        let len = min 65536 (String.length wire - !off) in
        Tomo_net.Frame.feed dec
          (Bytes.unsafe_of_string wire)
          ~off:!off ~len;
        while Tomo_net.Frame.next dec <> None do
          ()
        done;
        off := !off + len
      done;
      assert (Tomo_net.Frame.frames_decoded dec = n_frames);
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best *. 1e9 /. float_of_int n_frames
  in
  (* end-to-end: socketpair → reader thread → record parse → queue →
     drain loop (window larger than the trace, so no estimates) *)
  let ingest_ns =
    let best = ref infinity in
    for _ = 1 to 3 do
      let hub =
        Tomo_net.Hub.create ~model ~window:(n_ticks + 1)
          ~queue_capacity:256 ()
      in
      let server, client =
        Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0
      in
      let t0 = Unix.gettimeofday () in
      Tomo_net.Hub.attach hub server;
      let runner = Thread.create Tomo_net.Hub.run hub in
      let writer =
        Thread.create
          (fun () ->
            let b = Bytes.unsafe_of_string wire in
            let off = ref 0 in
            (try
               while !off < Bytes.length b do
                 off :=
                   !off + Unix.write client b !off (Bytes.length b - !off)
               done
             with Unix.Unix_error _ -> ());
            try Unix.close client with Unix.Unix_error _ -> ())
          ()
      in
      while
        (Tomo_net.Hub.stats hub).Tomo_net.Hub.ticks_ingested < n_ticks
      do
        Thread.yield ()
      done;
      let dt = Unix.gettimeofday () -. t0 in
      Tomo_net.Hub.request_stop hub;
      Thread.join runner;
      Thread.join writer;
      best := Float.min !best dt
    done;
    !best *. 1e9 /. float_of_int n_ticks
  in
  Format.fprintf ppf "net/decode-frame: %.1f ns/frame@." decode_ns;
  Format.fprintf ppf "net/ingest-throughput: %.1f ns/tick (%.0f ticks/s)@.@."
    ingest_ns
    (1e9 /. ingest_ns);
  [ ("net/decode-frame", decode_ns, nan);
    ("net/ingest-throughput", ingest_ns, nan) ]

let bench_tests () =
  let w = Lazy.force fixture in
  let wc = Lazy.force fixture_corr in
  let model = w.W.model and obs = w.W.obs in
  let congested_paths, good_paths = interval_inputs w in
  (* Fig. 3 kernels: the per-interval inference each cell runs 1000×. *)
  let pc_ind = Tomo.Independence_pc.compute model obs in
  let _, engine = Tomo.Correlation_complete.compute model obs in
  let selection = Tomo.Algorithm1.select model obs in
  let fig3_tests =
    [
      Test.make ~name:"fig3/sparsity-interval"
        (Staged.stage (fun () ->
             Tomo.Sparsity.infer model ~congested_paths ~good_paths));
      Test.make ~name:"fig3/bayesian-independence-interval"
        (Staged.stage (fun () ->
             Tomo.Bayesian.infer_independence model
               ~marginals:pc_ind.Tomo.Pc_result.marginals ~congested_paths
               ~good_paths));
      Test.make ~name:"fig3/bayesian-correlation-interval"
        (Staged.stage (fun () ->
             Tomo.Bayesian.infer_correlation model ~engine ~congested_paths
               ~good_paths));
    ]
  in
  (* Fig. 4 workloads: one Probability Computation solve per algorithm
     (the unit of work behind every bar of Fig. 4a/4b). *)
  let fig4_tests =
    [
      Test.make ~name:"fig4/independence-pc"
        (Staged.stage (fun () -> Tomo.Independence_pc.compute model obs));
      Test.make ~name:"fig4/correlation-heuristic"
        (Staged.stage (fun () ->
             Tomo.Correlation_heuristic.compute model obs));
      Test.make ~name:"fig4/correlation-complete"
        (Staged.stage (fun () ->
             Tomo.Correlation_complete.compute model obs));
      Test.make ~name:"fig4c/error-cdf"
        (Staged.stage (fun () ->
             let r = Tomo.Independence_pc.compute wc.W.model wc.W.obs in
             Fig4.link_errors wc r));
      (let reg =
         engine.Tomo.Prob_engine.selection.Tomo.Algorithm1.registry
       in
       (* The unit of work behind Fig. 4(d): one correlation-subset
          congestion probability. *)
       let subset =
         let found = ref None in
         for v = 0 to Tomo.Eqn.n_vars reg - 1 do
           let s = Tomo.Eqn.subset_of_var reg v in
           if !found = None && Array.length s.Tomo.Subsets.links >= 2 then
             found := Some s
         done;
         !found
       in
       Test.make ~name:"fig4d/subset-congestion-prob"
         (Staged.stage (fun () ->
              match subset with
              | Some s ->
                  ignore
                    (Tomo.Prob_engine.congestion_prob engine
                       ~corr:s.Tomo.Subsets.corr s.Tomo.Subsets.links)
              | None -> ())));
    ]
  in
  (* Substrate kernels + the Algorithm 2 ablation. *)
  let rng = Rng.create 5 in
  let amatrix =
    Matrix.init 60 80 (fun _ _ -> if Rng.bool rng ~p:0.3 then 1.0 else 0.0)
  in
  let nsp = Nullspace.basis amatrix in
  let new_row =
    Array.init 80 (fun _ -> if Rng.bool rng ~p:0.3 then 1.0 else 0.0)
  in
  (* Fixed mixed batch for the Algorithm 2 row, built outside the timed
     region: rows of [amatrix] (already in the row space, exercising the
     reject path) interleaved with fresh random rows (the accept path).
     The old single-row version timed one sub-µs rejection and fit
     poorly (r² ≈ 0.09); folding a constant 16-row batch gives the OLS
     a stable, representative unit of work. *)
  let alg2_batch =
    Array.init 16 (fun i ->
        if i mod 2 = 0 then
          Array.init 80 (fun j -> Matrix.get amatrix (i * 3) j)
        else Array.init 80 (fun _ -> if Rng.bool rng ~p:0.3 then 1.0 else 0.0))
  in
  let stacked =
    Matrix.init 61 80 (fun i j ->
        if i < 60 then Matrix.get amatrix i j else new_row.(j))
  in
  let scenario =
    Scenario.make w.W.overlay ~kind:Scenario.Random ~rng:(Rng.create 3)
      ~frac:0.1
  in
  let factor_probs = Scenario.draw_probs scenario (Rng.create 4) in
  let fmodel = Tomo_netsim.Factor_model.make w.W.overlay factor_probs in
  let some_paths =
    Array.init (min 4 model.Tomo.Model.n_paths) (fun i -> i)
  in
  let kernel_tests =
    [
      Test.make ~name:"kernel/topology-brite-small"
        (Staged.stage (fun () ->
             Tomo_topology.Brite.generate
               ~params:
                 {
                   Tomo_topology.Brite.default with
                   Tomo_topology.Brite.n_ases = 40;
                   n_paths = 150;
                 }
               ~seed:7 ()));
      Test.make ~name:"kernel/topology-sparse-small"
        (Staged.stage (fun () ->
             Tomo_topology.Sparse_topo.generate
               ~params:
                 {
                   Tomo_topology.Sparse_topo.default with
                   Tomo_topology.Sparse_topo.n_ases = 120;
                   n_paths = 150;
                 }
               ~seed:7 ()));
      Test.make ~name:"kernel/simulate-interval"
        (Staged.stage (fun () ->
             Tomo_netsim.Factor_model.draw_interval fmodel rng));
      Test.make ~name:"kernel/estimator-all-good-count"
        (Staged.stage (fun () ->
             Tomo.Observations.all_good_count obs some_paths));
      Test.make ~name:"kernel/algorithm1-select"
        (Staged.stage (fun () -> Tomo.Algorithm1.select model obs));
      (let effective = Tomo.Subsets.effective_links model obs in
       Test.make ~name:"kernel/identifiability-analysis"
         (Staged.stage (fun () ->
              Tomo.Identifiability.analyze model ~effective)));
      Test.make ~name:"kernel/prob-engine-solve"
        (Staged.stage (fun () -> Tomo.Prob_engine.solve selection obs));
      Test.make ~name:"kernel/nullspace-update-alg2"
        (Staged.stage (fun () ->
             Array.fold_left (fun m r -> Nullspace.update m r) nsp alg2_batch));
      Test.make ~name:"kernel/nullspace-tracker-add"
        (Staged.stage (fun () ->
             (* clone + in-place add: the stateful analogue of [update] *)
             let tr = Nullspace.tracker_of_matrix nsp in
             Nullspace.add_row tr new_row));
      Test.make ~name:"kernel/nullspace-recompute"
        (Staged.stage (fun () -> Nullspace.basis stacked));
    ]
  in
  (* Flat-substrate micro-rows: the word-level bit-set combine and the
     O(1) row-view handoff that the elimination/CG kernels are built
     on.  Fixtures sized so the work is memory-streaming, not
     call-overhead. *)
  let bs_a = Bitset.create 4096 and bs_b = Bitset.create 4096 in
  let bs_scratch = Bitset.create 4096 in
  let bs_rng = Rng.create 0xB5 in
  for i = 0 to 4095 do
    if Rng.bool bs_rng ~p:0.4 then Bitset.set bs_a i;
    if Rng.bool bs_rng ~p:0.4 then Bitset.set bs_b i
  done;
  let rv_matrix =
    Matrix.init 64 256 (fun i j -> float_of_int (((i * 7) + j) mod 13))
  in
  let flat_tests =
    [
      Test.make ~name:"kernel/bitset-union-words"
        (Staged.stage (fun () ->
             Bitset.copy_into ~into:bs_scratch bs_a;
             Bitset.union_into ~into:bs_scratch bs_b;
             Bitset.count bs_scratch));
      Test.make ~name:"kernel/matrix-row-view"
        (Staged.stage (fun () ->
             (* Sum every row through its (buffer, offset) view: the
                zero-copy access pattern of the flat rref/CG loops. *)
             let acc = ref 0.0 in
             for i = 0 to Matrix.rows rv_matrix - 1 do
               let buf, off = Matrix.row_view rv_matrix i in
               for k = 0 to Matrix.cols rv_matrix - 1 do
                 acc := !acc +. Array.unsafe_get buf (off + k)
               done
             done;
             !acc));
    ]
  in
  (* Sparse-vs-dense elimination on the paper-scale incidence fixture:
     the dense pair quantifies what the auto-routing buys. *)
  let paper_sparse, paper_dense, paper_rows = Lazy.force paper_incidence in
  (* The dependent-row tax, isolated: rejecting a row already in the
     span, with the witness prefilter's O(k·nnz) short-circuit vs the
     exact O(nnz·p) projection.  A row of the incidence system is in its
     row space by construction, and a rejection never mutates the
     tracker, so one tracker per variant is reused across timed calls. *)
  let paper_basis = Nullspace.basis ~backend:`Sparse paper_dense in
  let dep_row = paper_rows.(0) in
  let tr_wit = Nullspace.tracker_of_matrix ~witness_k:2 paper_basis in
  let tr_exact = Nullspace.tracker_of_matrix ~witness_k:0 paper_basis in
  assert (not (Nullspace.add_incidence tr_wit dep_row));
  assert (not (Nullspace.add_incidence tr_exact dep_row));
  let sparse_tests =
    [
      Test.make ~name:"kernel/witness-reject-dependent"
        (Staged.stage (fun () -> Nullspace.add_incidence tr_wit dep_row));
      Test.make ~name:"kernel/exact-reject-dependent"
        (Staged.stage (fun () -> Nullspace.add_incidence tr_exact dep_row));
      Test.make ~name:"kernel/sparse-rref"
        (Staged.stage (fun () -> Sparse_gauss.rref paper_sparse));
      Test.make ~name:"kernel/dense-rref-paper"
        (Staged.stage (fun () -> Gauss.rref_dense paper_dense));
      Test.make ~name:"kernel/sparse-nullspace"
        (Staged.stage (fun () -> Nullspace.basis ~backend:`Sparse paper_dense));
      Test.make ~name:"kernel/nullspace-recompute-dense-paper"
        (Staged.stage (fun () -> Nullspace.basis ~backend:`Dense paper_dense));
    ]
  in
  Test.make_grouped ~name:"tomo" ~fmt:"%s %s"
    (fig3_tests @ fig4_tests @ kernel_tests @ flat_tests @ sparse_tests)

let run_benchmarks () =
  Format.fprintf ppf
    "==================================================================@.";
  Format.fprintf ppf "Bechamel micro-benchmarks (ns per call, OLS fit)@.";
  Format.fprintf ppf
    "==================================================================@.";
  let tests = bench_tests () in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~stabilize:false
      ~quota:(Time.second 0.5) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> x
        | _ -> nan
      in
      let r2 =
        match Analyze.OLS.r_square ols_result with
        | Some r -> r
        | None -> nan
      in
      rows := (name, ns, r2) :: !rows)
    results;
  let rows = List.sort compare !rows in
  Format.fprintf ppf "%-45s%18s%10s@." "benchmark" "time/call" "r²";
  Format.fprintf ppf "%s@." (String.make 73 '-');
  let pp_time ppf ns =
    if ns > 1e9 then Format.fprintf ppf "%10.3f s " (ns /. 1e9)
    else if ns > 1e6 then Format.fprintf ppf "%10.3f ms" (ns /. 1e6)
    else if ns > 1e3 then Format.fprintf ppf "%10.3f us" (ns /. 1e3)
    else Format.fprintf ppf "%10.1f ns" ns
  in
  List.iter
    (fun (name, ns, r2) ->
      Format.fprintf ppf "%-45s%a%10.3f@." name pp_time ns r2)
    rows;
  rows

(* ------------------------------------------------------------------ *)
(* Machine-readable output                                             *)
(* ------------------------------------------------------------------ *)

(* One JSON file per bench run, BENCH_perf.json at the workspace root by
   default (dune exec runs with the workspace root as cwd).  Override
   the path with TOMO_BENCH_JSON; set it to the empty string to skip.
   Schema: {"schema","scale","seed","jobs","benchmarks":[{"name",
   "ns_per_call","r_square"}],"metrics":{counters,gauges,histograms}}
   — the metrics object is the same shape Sink.snapshot_json writes, so
   tooling can diff pipeline counters across commits alongside the
   timings. *)
let bench_json_path () =
  match Sys.getenv_opt "TOMO_BENCH_JSON" with
  | Some "" -> None
  | Some p -> Some p
  | None -> Some "BENCH_perf.json"

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  if Float.is_nan f then "null" else Printf.sprintf "%.6g" f

let write_bench_json ~rows ~sim ~snapshot =
  match bench_json_path () with
  | None -> ()
  | Some path ->
      let b = Buffer.create 4096 in
      Buffer.add_string b "{\n";
      Buffer.add_string b "  \"schema\": \"tomo-bench/1\",\n";
      Printf.bprintf b "  \"scale\": \"%s\",\n"
        (json_escape (W.scale_to_string scale));
      Printf.bprintf b "  \"seed\": %d,\n" seed;
      Printf.bprintf b "  \"jobs\": %d,\n" (Tomo_par.Pool.default_jobs ());
      (* Host fingerprint: timing rows only compare meaningfully between
         runs on like hardware, and the -j4 sim speedup not at all when
         the core counts differ — check_bench_regression.py keys off
         [cpu_cores] to skip that comparison. *)
      Printf.bprintf b
        "  \"host\": {\"cpu_cores\": %d, \"ocaml_version\": \"%s\", \
         \"word_size\": %d},\n"
        (Domain.recommended_domain_count ())
        (json_escape Sys.ocaml_version)
        Sys.word_size;
      Buffer.add_string b "  \"benchmarks\": [";
      List.iteri
        (fun i (name, ns, r2) ->
          if i > 0 then Buffer.add_char b ',';
          Printf.bprintf b
            "\n    {\"name\": \"%s\", \"ns_per_call\": %s, \"r_square\": %s}"
            (json_escape name) (json_float ns) (json_float r2))
        rows;
      Buffer.add_string b "\n  ],\n";
      (match sim with
      | None -> ()
      | Some (t_intervals, j1, j4, speedup) ->
          Printf.bprintf b
            "  \"sim_run_paper\": {\"t_intervals\": %d, \"j1_s\": %s, \
             \"j4_s\": %s, \"speedup_j4\": %s},\n"
            t_intervals (json_float j1) (json_float j4) (json_float speedup));
      Printf.bprintf b "  \"metrics\": %s\n"
        (Tomo_obs.Sink.snapshot_json snapshot);
      Buffer.add_string b "}\n";
      let oc = open_out path in
      output_string oc (Buffer.contents b);
      close_out oc;
      Format.fprintf ppf "@.wrote %s@." path

(* When TOMO_METRICS_OUT / TOMO_TRACE are set, print the counter
   snapshot next to the Bechamel numbers (and write the JSON file via
   the sink's exit hook), so BENCH_*.json trajectories carry the
   structural counters — equations formed, null-space updates, CGLS
   iterations — behind the timings.  With neither variable set the
   instrumentation stays disabled and adds no measurable cost. *)
let emit_metrics_snapshot () =
  if Tomo_obs.Metrics.enabled () then begin
    Format.fprintf ppf
      "@.==================================================================@.";
    Format.fprintf ppf "Metrics snapshot (pipeline counters)@.";
    Format.fprintf ppf
      "==================================================================@.";
    Tomo_obs.Sink.pp_metrics_table ppf ()
  end

let () =
  Tomo_obs.Sink.init ();
  (* Count the pipeline work of the reproduction pass (equations formed,
     null-space updates, CGLS iterations, pool batches) for the JSON
     file, then restore the sink-chosen state so the Bechamel loops run
     with exactly the instrumentation cost the sinks asked for. *)
  let metrics_were_enabled = Tomo_obs.Metrics.enabled () in
  Tomo_obs.Metrics.set_enabled true;
  check_sparse_parity ();
  check_sim_parity ();
  check_witness_parity ();
  check_ident_prune_parity ();
  if enabled "TOMO_BENCH_FIGURES" then reproduction_pass ();
  let pipeline_snapshot = Tomo_obs.Metrics.snapshot () in
  Tomo_obs.Metrics.set_enabled metrics_were_enabled;
  let rows =
    if enabled "TOMO_BENCH_PERF" then run_benchmarks () else []
  in
  let sim =
    if enabled "TOMO_BENCH_SIM" then Some (sim_parallel_pass ()) else None
  in
  let obs_rows =
    if enabled "TOMO_BENCH_OBS" then obs_overhead_pass () else []
  in
  let net_rows = if enabled "TOMO_BENCH_NET" then net_pass () else [] in
  let rows =
    rows @ obs_rows @ net_rows
    @
    match sim with
    | None -> []
    | Some (_, j1, j4, _) ->
        [
          ("sim/run-paper-j1", j1 *. 1e9, nan);
          ("sim/run-paper-j4", j4 *. 1e9, nan);
        ]
  in
  emit_metrics_snapshot ();
  write_bench_json ~rows ~sim ~snapshot:pipeline_snapshot;
  Format.fprintf ppf "@.done.@."
